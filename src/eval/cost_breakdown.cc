#include "eval/cost_breakdown.h"

// CostBreakdown is header-only; this file anchors the build target.
