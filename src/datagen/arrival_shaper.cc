#include "datagen/arrival_shaper.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "text/tokenizer.h"
#include "util/rng.h"

namespace terids {

std::vector<Record> ArrivalShaper::Shape(const std::vector<Record>& records,
                                         TokenDict* dict, int64_t next_rid,
                                         const Options& opts) {
  Rng rng(opts.seed);
  Tokenizer tok(dict);

  // 1. Concept drift: records past each drift period mix phase-marked
  // tokens into their values, rotating the value distribution — imputation
  // neighborhoods and match structure shift between phases.
  std::vector<Record> drifted = records;
  if (opts.drift_period > 0) {
    for (size_t i = 0; i < drifted.size(); ++i) {
      const int phase =
          static_cast<int>(i / static_cast<size_t>(opts.drift_period));
      if (phase == 0) {
        continue;
      }
      for (AttrValue& v : drifted[i].values) {
        if (v.missing || !rng.NextBool(opts.drift_rate)) {
          continue;
        }
        v.text += " drift" + std::to_string(phase) + "w" +
                  std::to_string(rng.NextBounded(8));
        v.tokens = tok.Tokenize(v.text);
      }
    }
  }

  // 2. Duplicate storms: each record independently schedules a re-emission
  // 1..duplicate_max_lag slots downstream under a fresh rid; re-emissions
  // scheduled at the same slot keep their scheduling order.
  std::vector<std::vector<Record>> extra(drifted.size() + 1);
  size_t num_extra = 0;
  if (opts.duplicate_p > 0) {
    const uint64_t lag =
        static_cast<uint64_t>(std::max(1, opts.duplicate_max_lag));
    for (size_t i = 0; i < drifted.size(); ++i) {
      if (!rng.NextBool(opts.duplicate_p)) {
        continue;
      }
      Record dup = drifted[i];
      dup.rid = next_rid++;
      if (rng.NextBool(opts.near_duplicate_p)) {
        // Near-duplicate: perturb one non-missing attribute value so the
        // copy is similar but not identical (a distinct token set).
        std::vector<int> present;
        for (int a = 0; a < dup.num_attributes(); ++a) {
          if (!dup.values[a].missing) {
            present.push_back(a);
          }
        }
        if (!present.empty()) {
          AttrValue& v =
              dup.values[present[rng.NextBounded(present.size())]];
          v.text += " neardup" + std::to_string(rng.NextBounded(16));
          v.tokens = tok.Tokenize(v.text);
        }
      }
      const size_t at = std::min(
          drifted.size(), i + 1 + static_cast<size_t>(rng.NextBounded(lag)));
      extra[at].push_back(std::move(dup));
      ++num_extra;
    }
  }
  std::vector<Record> merged;
  merged.reserve(drifted.size() + num_extra);
  for (size_t i = 0; i < drifted.size(); ++i) {
    for (Record& dup : extra[i]) {
      merged.push_back(std::move(dup));
    }
    merged.push_back(std::move(drifted[i]));
  }
  for (Record& dup : extra[drifted.size()]) {
    merged.push_back(std::move(dup));
  }

  // 3. Bounded out-of-order delivery: release slot = index + U[0, horizon],
  // stable sort by slot. For output positions where record j overtakes
  // record i (j originally behind i): j <= release_j < release_i <= i +
  // horizon, so no record is overtaken by one more than `horizon` positions
  // behind it.
  if (opts.reorder_horizon > 0) {
    struct Slot {
      size_t release;
      size_t idx;
    };
    std::vector<Slot> slots(merged.size());
    const uint64_t span = static_cast<uint64_t>(opts.reorder_horizon) + 1;
    for (size_t i = 0; i < merged.size(); ++i) {
      slots[i] = {i + static_cast<size_t>(rng.NextBounded(span)), i};
    }
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot& a, const Slot& b) {
                       return a.release < b.release;
                     });
    std::vector<Record> out;
    out.reserve(merged.size());
    for (const Slot& s : slots) {
      out.push_back(std::move(merged[s.idx]));
    }
    return out;
  }
  return merged;
}

std::vector<double> ArrivalShaper::OfferedTimeline(size_t n,
                                                   const Options& opts) {
  // Independent draw stream from Shape's (same seed, distinct derivation),
  // so pacing and content can be composed or used alone deterministically.
  Rng rng(opts.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<double> gaps;
  gaps.reserve(n);
  bool burst = false;
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(burst ? opts.burst_off_p : opts.burst_on_p)) {
      burst = !burst;
    }
    // Exponential inter-arrival gaps, mean scaled by the burst state:
    // trains of closely spaced arrivals separated by idle stretches.
    const double u = rng.NextDouble();
    const double e = -std::log(1.0 - u);
    gaps.push_back((burst ? opts.burst_gap_scale : opts.idle_gap_scale) * e);
  }
  return gaps;
}

}  // namespace terids
