#ifndef TERIDS_ER_SIMILARITY_H_
#define TERIDS_ER_SIMILARITY_H_

#include "tuple/imputed_tuple.h"
#include "tuple/record.h"

namespace terids {

/// The ER similarity function of Definition 5: the sum over all d
/// attributes of the per-attribute Jaccard similarities. Range [0, d].
double RecordSimilarity(const Record& a, const Record& b);

/// Definition 5 between two materialized instances of imputed tuples,
/// computed over the tuples' flat token-arena views.
double InstanceSimilarity(const ImputedTuple& a, int inst_a,
                          const ImputedTuple& b, int inst_b);

/// The refinement hot-path kernel: decides InstanceSimilarity(a, b) > gamma
/// without necessarily running any merge. With `signature_filter`, the
/// per-attribute signature Jaccard upper bounds are summed first — if even
/// the bound cannot exceed gamma the pair is rejected in O(d) popcounts —
/// and the exact per-attribute merges that do run terminate early once the
/// accumulated exact sum either exceeds gamma or provably cannot. The
/// returned verdict is always exactly `InstanceSimilarity(...) > gamma`:
/// bounds only skip work whose outcome is decided, never change it.
bool InstanceSimilarityExceeds(const ImputedTuple& a, int inst_a,
                               const ImputedTuple& b, int inst_b, double gamma,
                               bool signature_filter);

/// The equivalent distance form used by the pivot bounds: dist(a, b) =
/// d - sim(a, b) = sum of per-attribute Jaccard distances.
double InstanceDistance(const ImputedTuple& a, int inst_a,
                        const ImputedTuple& b, int inst_b);

/// Similarity for heterogeneous schemas (Section 2.3's discussion): the
/// Jaccard similarity of the union token sets T(r) and T(r') over all
/// attributes. Range [0, 1]; missing attributes contribute nothing. The
/// Record overload unions into thread-local scratch (no per-call
/// allocation); the ImputedTuple overload reads the unions cached in the
/// tuples' token arenas.
double HeterogeneousRecordSimilarity(const Record& a, const Record& b);
double HeterogeneousRecordSimilarity(const ImputedTuple& a,
                                     const ImputedTuple& b);

}  // namespace terids

#endif  // TERIDS_ER_SIMILARITY_H_
