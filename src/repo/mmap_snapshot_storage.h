#ifndef TERIDS_REPO_MMAP_SNAPSHOT_STORAGE_H_
#define TERIDS_REPO_MMAP_SNAPSHOT_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "repo/repo_storage.h"
#include "text/token_dict.h"

namespace terids {

/// Read-mostly Repository backend over a build-once columnar snapshot file
/// (DESIGN.md §8), opened read-only via mmap.
///
/// The base image is immutable: the numeric geometry tables — per-pivot
/// distance columns, the sorted main-pivot coordinate lists, sample
/// ValueIds, and value frequencies — are served zero-copy from the
/// mapping, so the kernel pages them in on demand and can evict them under
/// pressure (the path to repositories larger than RAM). Domain token sets,
/// display texts, and sample records are materialized at open in this v1;
/// making them lazy is future work and does not change the interface.
///
/// Dynamic-repository writes (Section 5.5: the constraint imputer's
/// RegisterValue, AbsorbRepositoryBatch's AddSample) land in an in-memory
/// delta overlay: new values get ValueIds after the base domain, frequency
/// bumps on base values go to a side map, and coordinate-range scans merge
/// the base column with the overlay's sorted list in (coord, ValueId)
/// order — read results stay bit-identical to the in-memory oracle.
/// AttachPivots is not supported: the pivot geometry is baked into the
/// snapshot at write time.
class MmapSnapshotStorage final : public RepoStorage {
 public:
  /// Maps and validates `path` (magic, version, attribute count, payload
  /// checksum, token ids against `dict`). Returns InvalidArgument /
  /// FailedPrecondition with a precise reason on any mismatch.
  static Result<std::unique_ptr<MmapSnapshotStorage>> Open(
      int num_attributes, const TokenDict* dict, const std::string& path);

  ~MmapSnapshotStorage() override;

  MmapSnapshotStorage(const MmapSnapshotStorage&) = delete;
  MmapSnapshotStorage& operator=(const MmapSnapshotStorage&) = delete;

  const char* name() const override { return "mmap"; }

  // ---- Read path -------------------------------------------------------

  size_t domain_size(int attr) const override;
  const TokenSet& value_tokens(int attr, ValueId id) const override;
  const std::string& value_text(int attr, ValueId id) const override;
  int value_frequency(int attr, ValueId id) const override;
  ValueId FindValue(int attr, const TokenSet& tokens) const override;

  size_t num_samples() const override;
  const Record& sample(size_t i) const override;
  ValueId sample_value_id(size_t i, int attr) const override;

  bool has_pivots() const override { return has_pivots_; }
  int num_pivots(int attr) const override;
  const TokenSet& pivot_tokens(int attr, int pivot_idx) const override;
  double pivot_distance(int attr, int pivot_idx, ValueId vid) const override;
  void AppendValuesInCoordRange(int attr, const Interval& interval,
                                std::vector<ValueId>* out) const override;

  // ---- Write path (delta overlay) --------------------------------------

  ValueId RegisterValue(int attr, const TokenSet& tokens,
                        const std::string& text) override;
  void BumpFrequency(int attr, ValueId id) override;
  void AppendSample(const Record& record, std::vector<ValueId> vids) override;
  bool SupportsAttachPivots() const override { return false; }
  void AttachPivots(std::vector<AttributePivots> pivots) override;

 private:
  MmapSnapshotStorage() = default;

  Status MapFile(const std::string& path);
  Status Parse(int num_attributes, const TokenDict* dict);
  void Unmap();

  /// One attribute's immutable base image.
  struct BaseDomain {
    size_t size = 0;
    std::vector<TokenSet> tokens;
    std::vector<std::string> texts;
    const int32_t* freqs = nullptr;  // zero-copy column
    std::unordered_multimap<uint64_t, ValueId> by_hash;
    // Pivot geometry (zero-copy columns; empty when !has_pivots_).
    std::vector<const double*> dists;  // dists[a][vid]
    const double* coord_keys = nullptr;
    const uint32_t* coord_vids = nullptr;
  };

  /// One attribute's dynamic delta.
  struct DomainOverlay {
    AttributeDomain extra;  // local ids; global id = base.size + local
    std::unordered_map<ValueId, int> base_freq_delta;
    std::vector<std::vector<double>> dists;  // dists[a][local id]
    std::vector<std::pair<double, ValueId>> sorted_coords;  // global ids
  };

  // Mapping ownership: exactly one of map_base_ (mmap) or heap_ (portable
  // read fallback) backs data_.
  void* map_base_ = nullptr;
  size_t map_len_ = 0;
  std::vector<char> heap_;
  const char* data_ = nullptr;
  size_t size_ = 0;

  int d_ = 0;
  bool has_pivots_ = false;
  std::vector<BaseDomain> base_;
  std::vector<AttributePivots> pivots_;

  size_t base_samples_ = 0;
  std::vector<Record> base_records_;
  const uint32_t* base_sample_vids_ = nullptr;  // row-major [i * d_ + attr]

  std::vector<DomainOverlay> overlay_;
  std::vector<Record> extra_records_;
  std::vector<std::vector<ValueId>> extra_sample_vids_;
};

}  // namespace terids

#endif  // TERIDS_REPO_MMAP_SNAPSHOT_STORAGE_H_
