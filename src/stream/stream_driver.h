#ifndef TERIDS_STREAM_STREAM_DRIVER_H_
#define TERIDS_STREAM_STREAM_DRIVER_H_

#include <cstdint>
#include <vector>

#include "tuple/record.h"

namespace terids {

/// Interleaves n record sources into one global arrival order (Definition
/// 1: one tuple per timestamp). Round-robin across sources, which models
/// the paper's setting of n streams progressing together; a seeded random
/// interleaving is also available for robustness tests.
class StreamDriver {
 public:
  /// `sources[i]` becomes stream id i. Records receive their stream id and
  /// arrival timestamps 0,1,2,... in interleaved order.
  explicit StreamDriver(std::vector<std::vector<Record>> sources);

  /// Whether another arrival is available.
  bool HasNext() const;

  /// Next arriving record (stream id and timestamp already stamped).
  Record Next();

  /// Next micro-batch: up to `max_records` arrivals in global timestamp
  /// order (the batched operator's unit of work). Returns fewer records
  /// only when the sources run dry; empty once exhausted. Equivalent to
  /// calling Next() `max_records` times.
  std::vector<Record> NextBatch(size_t max_records);

  /// Remaining arrivals.
  size_t remaining() const { return total_ - emitted_; }
  size_t total() const { return total_; }

  void Reset();

 private:
  std::vector<std::vector<Record>> sources_;
  std::vector<size_t> cursor_;
  size_t next_stream_ = 0;
  size_t emitted_ = 0;
  size_t total_ = 0;
  int64_t clock_ = 0;
};

}  // namespace terids

#endif  // TERIDS_STREAM_STREAM_DRIVER_H_
