#include "eval/cost_breakdown.h"

#include <cstdio>

namespace terids {

CostBreakdown CostBreakdown::Scaled(double factor) const {
  CostBreakdown out;
  out.cdd_select_seconds = cdd_select_seconds * factor;
  out.impute_seconds = impute_seconds * factor;
  out.er_seconds = er_seconds * factor;
  out.refine_seconds = refine_seconds * factor;
  out.batch_seconds = batch_seconds * factor;
  out.candidate_seconds = candidate_seconds * factor;
  out.queue_wait_seconds = queue_wait_seconds * factor;
  out.maintain_seconds = maintain_seconds * factor;
  out.cdd_memo_queries = cdd_memo_queries * factor;
  out.cdd_memo_repeats = cdd_memo_repeats * factor;
  return out;
}

CostBreakdown CostBreakdown::PerArrival(long long arrivals) const {
  if (arrivals <= 0) {
    return CostBreakdown();
  }
  return Scaled(1.0 / static_cast<double>(arrivals));
}

CostBreakdown::Shares CostBreakdown::PhaseShares() const {
  Shares shares;
  const double total = total_seconds();
  if (total <= 0.0) {
    return shares;
  }
  shares.cdd_select = cdd_select_seconds / total;
  shares.impute = impute_seconds / total;
  shares.er = er_seconds / total;
  return shares;
}

std::string CostBreakdown::ToJson() const {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\"cdd_select_seconds\":%.9g,\"impute_seconds\":%.9g,"
                "\"er_seconds\":%.9g,\"refine_seconds\":%.9g,"
                "\"batch_seconds\":%.9g,\"candidate_seconds\":%.9g,"
                "\"queue_wait_seconds\":%.9g,\"maintain_seconds\":%.9g,"
                "\"cdd_memo_queries\":%.9g,"
                "\"cdd_memo_repeats\":%.9g,\"cdd_memo_hit_rate\":%.9g,"
                "\"total_seconds\":%.9g}",
                cdd_select_seconds, impute_seconds, er_seconds,
                refine_seconds, batch_seconds, candidate_seconds,
                queue_wait_seconds, maintain_seconds, cdd_memo_queries,
                cdd_memo_repeats, cdd_memo_hit_rate(), total_seconds());
  return std::string(buf);
}

}  // namespace terids
