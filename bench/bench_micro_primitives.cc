// Google-benchmark microbenchmarks of the hot primitives: Jaccard over
// interned token sets, aR-tree range queries, and end-to-end TER-iDS
// arrival processing (one-at-a-time and micro-batched + parallel).
//
// Results additionally flow through the shared JsonReporter (set
// TERIDS_BENCH_JSON) by bridging Google Benchmark's reporter interface, so
// this bench emits the same machine-readable artifacts as every
// custom-output bench.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/terids_engine.h"
#include "datagen/profiles.h"
#include "index/artree.h"
#include "stream/stream_driver.h"
#include "text/token_set.h"
#include "util/rng.h"

namespace {

using namespace terids;

TokenSet RandomSet(Rng* rng, int size, int vocab) {
  std::vector<Token> tokens;
  for (int i = 0; i < size; ++i) {
    tokens.push_back(static_cast<Token>(rng->NextBounded(vocab)));
  }
  return TokenSet::FromTokens(std::move(tokens));
}

void BM_JaccardSimilarity(benchmark::State& state) {
  Rng rng(1);
  const int size = static_cast<int>(state.range(0));
  TokenSet a = RandomSet(&rng, size, 10000);
  TokenSet b = RandomSet(&rng, size, 10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardSimilarity(a, b));
  }
}
BENCHMARK(BM_JaccardSimilarity)->Arg(8)->Arg(32)->Arg(128);

void BM_ArTreeRangeQuery(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  const int dims = 4;
  std::vector<ArTreeEntry> entries;
  for (int i = 0; i < n; ++i) {
    ArTreeEntry e;
    e.payload = i;
    for (int d = 0; d < dims; ++d) {
      e.box.push_back(Interval::Point(rng.NextDouble()));
    }
    entries.push_back(std::move(e));
  }
  ArTree tree(dims);
  tree.BulkLoad(std::move(entries));
  std::vector<Interval> query(dims, Interval::Of(0.4, 0.6));
  for (auto _ : state) {
    size_t hits = 0;
    tree.Query(
        [&query](const ArTree::NodeView& node) {
          for (int d = 0; d < 4; ++d) {
            if (!node.box[d].Overlaps(query[d])) return false;
          }
          return true;
        },
        [&hits](const ArTreeEntry&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_ArTreeRangeQuery)->Arg(1000)->Arg(10000);

Experiment* SharedCitationsExperiment() {
  using namespace terids::bench;
  ExperimentParams params = BaseParams("Citations");
  params.max_arrivals = 1;  // Offline phase only in the fixture.
  static Experiment* experiment =
      new Experiment(ProfileByName("Citations"), params);
  return experiment;
}

void BM_TerIdsArrival(benchmark::State& state) {
  Experiment* experiment = SharedCitationsExperiment();
  std::unique_ptr<Repository> repo = experiment->BuildRepository();
  auto engine = std::make_unique<TerIdsEngine>(
      repo.get(), experiment->MakeConfig(), 2, experiment->cdds());
  std::vector<Record> inc_a = DataGenerator::WithMissing(
      experiment->dataset().source_a, 0.3, 1, 1);
  std::vector<Record> inc_b = DataGenerator::WithMissing(
      experiment->dataset().source_b, 0.3, 1, 2);
  StreamDriver driver({inc_a, inc_b});
  for (auto _ : state) {
    if (!driver.HasNext()) {
      // Replaying the stream re-feeds rids that may still be
      // window-resident; restart the engine with it.
      state.PauseTiming();
      driver.Reset();
      engine = std::make_unique<TerIdsEngine>(
          repo.get(), experiment->MakeConfig(), 2, experiment->cdds());
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(engine->ProcessArrival(driver.Next()));
  }
}
BENCHMARK(BM_TerIdsArrival);

// Micro-batched arrival processing; range(0) = batch size, range(1) =
// refinement threads. Reported per arrival for comparability with
// BM_TerIdsArrival.
void BM_TerIdsArrivalBatch(benchmark::State& state) {
  Experiment* experiment = SharedCitationsExperiment();
  const int batch_size = static_cast<int>(state.range(0));
  std::unique_ptr<Repository> repo = experiment->BuildRepository();
  EngineConfig config = experiment->MakeConfig();
  config.batch_size = batch_size;
  config.refine_threads = static_cast<int>(state.range(1));
  auto engine = std::make_unique<TerIdsEngine>(repo.get(), config, 2,
                                               experiment->cdds());
  std::vector<Record> inc_a = DataGenerator::WithMissing(
      experiment->dataset().source_a, 0.3, 1, 1);
  std::vector<Record> inc_b = DataGenerator::WithMissing(
      experiment->dataset().source_b, 0.3, 1, 2);
  StreamDriver driver({inc_a, inc_b});
  size_t arrivals = 0;
  for (auto _ : state) {
    if (driver.remaining() < static_cast<size_t>(batch_size)) {
      state.PauseTiming();
      driver.Reset();
      engine = std::make_unique<TerIdsEngine>(repo.get(), config, 2,
                                              experiment->cdds());
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        engine->ProcessBatch(driver.NextBatch(batch_size)));
    arrivals += batch_size;
  }
  state.SetItemsProcessed(static_cast<int64_t>(arrivals));
}
BENCHMARK(BM_TerIdsArrivalBatch)
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({32, 4});

/// Forwards every finished run into the shared bench JSON artifact while
/// delegating the human-readable table to the stock console reporter.
class JsonBridgeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonBridgeReporter(terids::bench::JsonReporter* json)
      : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      json_->AddRow()
          .Str("name", run.benchmark_name())
          .Num("iterations", static_cast<double>(run.iterations))
          .Num("real_time_ns", run.GetAdjustedRealTime())
          .Num("cpu_time_ns", run.GetAdjustedCPUTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  terids::bench::JsonReporter* json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  terids::bench::JsonReporter json("micro_primitives");
  JsonBridgeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
