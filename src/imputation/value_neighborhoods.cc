#include "imputation/value_neighborhoods.h"

#include <algorithm>

namespace terids {

ValueNeighborhoods::ValueNeighborhoods(const Repository* repo,
                                       std::vector<double> radius)
    : repo_(repo), radius_(std::move(radius)) {
  TERIDS_CHECK(repo != nullptr);
  TERIDS_CHECK(static_cast<int>(radius_.size()) == repo->num_attributes());
  cache_.resize(radius_.size());
}

std::vector<double> ValueNeighborhoods::MaxRadiusPerAttr(
    const std::vector<CddRule>& rules, int num_attributes) {
  std::vector<double> radius(num_attributes, 0.0);
  for (const CddRule& rule : rules) {
    radius[rule.dependent] =
        std::max(radius[rule.dependent], rule.dep_interval.hi);
  }
  return radius;
}

const std::vector<std::pair<double, ValueId>>& ValueNeighborhoods::Neighborhood(
    int attr, ValueId vid) {
  auto it = cache_[attr].find(vid);
  if (it != cache_[attr].end()) {
    return it->second;
  }
  const double radius = radius_[attr];
  const TokenSet& center = repo_->value_tokens(attr, vid);
  const double coord = repo_->coord(attr, vid);
  std::vector<std::pair<double, ValueId>> neighbors;
  // |coord(v) - coord(center)| <= dist(v, center): the coordinate band is a
  // sound prefilter for the radius ball.
  for (ValueId other : repo_->ValuesInCoordRange(
           attr, Interval::Of(coord - radius, coord + radius))) {
    const double dist =
        JaccardDistance(center, repo_->value_tokens(attr, other));
    if (dist <= radius) {
      neighbors.emplace_back(dist, other);
    }
  }
  std::sort(neighbors.begin(), neighbors.end());
  return cache_[attr].emplace(vid, std::move(neighbors)).first->second;
}

void ValueNeighborhoods::AccumulateRange(
    int attr, ValueId svid, const Interval& dep,
    std::unordered_map<ValueId, double>* freq) {
  const auto& neighbors = Neighborhood(attr, svid);
  auto lo = std::lower_bound(neighbors.begin(), neighbors.end(),
                             std::make_pair(dep.lo, static_cast<ValueId>(0)));
  for (auto it = lo; it != neighbors.end() && it->first <= dep.hi; ++it) {
    (*freq)[it->second] += 1.0;
  }
}

void ValueNeighborhoods::Invalidate() {
  for (auto& per_attr : cache_) {
    per_attr.clear();
  }
}

}  // namespace terids
