#include "exec/thread_pool.h"

#include "util/status.h"

namespace terids {

ThreadPool::ThreadPool(int concurrency)
    : concurrency_(concurrency < 1 ? 1 : concurrency) {
  workers_.reserve(concurrency_ - 1);
  for (int i = 0; i < concurrency_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      MutexLock lock(&mu_);
      while (!(shutdown_ || (job_ != nullptr && job_epoch_ != seen_epoch))) {
        work_ready_.Wait(&mu_);
      }
      if (shutdown_) {
        return;
      }
      seen_epoch = job_epoch_;
    }
    DrainCurrentJob();
  }
}

void ThreadPool::DrainCurrentJob() {
  while (true) {
    int64_t task;
    const std::function<void(int64_t)>* fn;
    {
      MutexLock lock(&mu_);
      if (job_ == nullptr || next_task_ >= tasks_total_) {
        return;
      }
      task = next_task_++;
      fn = job_;
    }
    (*fn)(task);
    {
      MutexLock lock(&mu_);
      if (++tasks_finished_ == tasks_total_) {
        job_ = nullptr;
        job_done_.NotifyAll();
      }
    }
  }
}

void ThreadPool::ParallelFor(int64_t num_tasks,
                             const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) {
    return;
  }
  if (concurrency_ == 1 || num_tasks == 1) {
    for (int64_t i = 0; i < num_tasks; ++i) {
      fn(i);
    }
    return;
  }
  {
    MutexLock lock(&mu_);
    TERIDS_CHECK(job_ == nullptr);  // one ParallelFor at a time
    job_ = &fn;
    ++job_epoch_;
    next_task_ = 0;
    tasks_total_ = num_tasks;
    tasks_finished_ = 0;
  }
  work_ready_.NotifyAll();
  DrainCurrentJob();  // the caller participates
  MutexLock lock(&mu_);
  while (job_ != nullptr) {
    job_done_.Wait(&mu_);
  }
}

}  // namespace terids
