#ifndef TERIDS_EXEC_SCHEDULER_H_
#define TERIDS_EXEC_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "eval/latency_histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace terids {

/// The unified execution scheduler (DESIGN.md §10): one fixed worker pool
/// serving every parallel phase of the arrival pipeline — ER-grid probe
/// fan-out (kCandidate), pair refinement (kRefine), sharded window/grid
/// maintenance (kMaintain), and the chained ingest stage of async
/// ProcessStream (kIngest) — through one multi-producer submission queue,
/// replacing the per-subsystem ThreadPools and the dedicated SPSC ingest
/// thread of the §6–§9 execution model.
///
/// Thread-safety: every public method is safe to call concurrently from any
/// thread. Each ParallelFor is an independent job with its own completion
/// barrier, so fan-outs from different threads (e.g. the ingest chain's
/// candidate probe and the caller's refinement) interleave freely on the
/// shared workers — the restriction that forced per-subsystem pools
/// (ThreadPool serves one ParallelFor at a time) is gone.
///
/// Blocking discipline: a ParallelFor caller first drains every unclaimed
/// task of its own job inline, then waits only for tasks already claimed by
/// workers. A job therefore completes even when every worker is busy or
/// blocked elsewhere, which makes nested fan-outs (a kIngest item running a
/// kMaintain fan-out) and a bounded-queue handoff inside a work item
/// deadlock-free: at most the ingest chain's single in-flight item ever
/// blocks, and the thread it waits on (the stream consumer) never needs a
/// free worker to make progress.
///
/// Determinism: which worker runs which task is nondeterministic; callers
/// needing deterministic output must write into per-task slots exactly as
/// with ThreadPool (RefinementExecutor, ShardedErGrid do).
///
/// Locking model (DESIGN.md §12): the submission queue, the in-flight
/// count, and the shutdown flag are guarded by `mu_` (rank
/// lock_rank::kScheduler); the external callers' latency ring is guarded by
/// `ext_mu_` (rank kLatencyRing, the one mutex legitimately acquired while
/// holding `mu_` — ConsumeLatencies). Work items always run with both
/// released, so an item may take lower-ranked locks (the ingest chain's
/// BatchQueue push).
class Scheduler {
 public:
  /// Spawns `num_workers` >= 1 persistent workers. (A zero-worker scheduler
  /// is meaningless — EngineConfig::sched_threads == 0 selects the legacy
  /// per-subsystem pools instead of constructing a Scheduler at all.)
  explicit Scheduler(int num_workers);
  /// Drains every pending and in-flight work item (nothing submitted is
  /// ever lost), then joins the workers. Callers must not submit
  /// concurrently with destruction.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_workers() const { return num_workers_; }
  /// Parallelism a fork-join fan-out can reach: the workers plus the
  /// participating caller.
  int concurrency() const { return num_workers_ + 1; }

  /// Fork-join: runs fn(i) for every i in [0, num_tasks) on the workers and
  /// the calling thread, returning when all calls finished (the per-job
  /// completion barrier). Safe to call concurrently from multiple threads
  /// and to nest inside a work item. If fn throws on the calling thread,
  /// remaining unclaimed tasks are cancelled, in-flight tasks are awaited,
  /// and the exception is rethrown; fn must not throw on a worker (as with
  /// ThreadPool, that would terminate).
  void ParallelFor(ExecPhase phase, int64_t num_tasks,
                   const std::function<void(int64_t)>& fn);

  /// Fire-and-forget: enqueues one work item for any worker to run. Items
  /// submitted from the same thread run in submission order relative to
  /// each other only if a chain resubmits from inside the item (the ingest
  /// pattern); unrelated items may interleave. `fn` must not throw.
  void Submit(ExecPhase phase, std::function<void()> fn);

  /// Blocks until every submitted work item (fork-join and detached) has
  /// finished and the queue is empty. Concurrent submitters can starve the
  /// drain; the intended use is quiescing between streams.
  void Drain();

  /// Drains, then merges and clears every worker's latency ring: per-phase
  /// histograms of work-item service times (queue wait excluded), including
  /// tasks executed inline by ParallelFor callers. The `end_to_end`
  /// histogram is left empty — arrival latency is the pipeline's to
  /// measure.
  LatencyStats ConsumeLatencies();

  /// Snapshot of the per-phase backlog: unclaimed tasks of every queued job,
  /// bucketed by the job's phase (claimed-but-unfinished tasks are not
  /// attributed — they are already running, not waiting). Approximate by
  /// nature: stale the instant the lock drops — the overload pressure
  /// signal's second input (DESIGN.md §13), never a synchronization
  /// primitive.
  std::array<int64_t, kNumExecPhases> ApproxBacklogByPhase();

 private:
  /// One submitted unit: either a fork-join job of `total` indexed tasks or
  /// a detached single item (total == 1, `single` set). Lifetime is managed
  /// by shared_ptr: the queue and every claiming worker hold references, so
  /// a detached job dies with its last task and a fork-join job lives on
  /// the caller's stack frame past the barrier. The mutable counters
  /// (`next`, `total`, `finished`) are guarded by the owning scheduler's
  /// `mu_` — expressed here as a comment rather than an annotation because
  /// the analysis cannot name another object's member as the capability.
  struct Job {
    ExecPhase phase = ExecPhase::kIngest;
    const std::function<void(int64_t)>* fn = nullptr;
    std::function<void()> single;
    int64_t next = 0;      // first unclaimed task index
    int64_t total = 0;     // one past the last task index
    int64_t finished = 0;  // tasks completed (== claims, eventually)
    bool IsDone() const { return next >= total && finished >= next; }
  };

  /// Per-worker single-writer sample ring. The worker appends (phase,
  /// nanos) pairs lock-free; when the ring fills it folds into the
  /// worker-local histogram set. ConsumeLatencies reads both only after
  /// Drain, whose queue mutex provides the happens-before edge.
  struct LatencyRing {
    static constexpr size_t kCapacity = 1024;
    struct Sample {
      ExecPhase phase;
      uint64_t nanos;
    };
    std::vector<Sample> samples;
    LatencyStats folded;

    void Record(ExecPhase phase, uint64_t nanos);
    void FoldInto(LatencyStats* out);
  };

  void WorkerLoop(int worker_index);
  /// Claims the front job's next task (popping the job once fully
  /// claimed); returns false when the queue is empty.
  bool ClaimTask(std::shared_ptr<Job>* job, int64_t* task)
      TERIDS_REQUIRES(mu_);
  /// Runs one claimed task, records its service time into `ring`, and
  /// settles the job's completion under `mu_`. Called with `mu_` released.
  void RunTask(const std::shared_ptr<Job>& job, int64_t task,
               LatencyRing* ring);
  void Enqueue(std::shared_ptr<Job> job);
  /// True when nothing is in flight and nothing claimable remains queued.
  bool QuiescedLocked() const TERIDS_REQUIRES(mu_);

  const int num_workers_;
  std::vector<std::thread> workers_;

  Mutex mu_{lock_rank::kScheduler};
  CondVar work_ready_;  // queue became non-empty / shutdown
  CondVar job_done_;    // some job finished a task batch
  std::deque<std::shared_ptr<Job>> queue_ TERIDS_GUARDED_BY(mu_);
  // Claimed-but-unfinished tasks, all jobs.
  int64_t in_flight_ TERIDS_GUARDED_BY(mu_) = 0;
  bool shutdown_ TERIDS_GUARDED_BY(mu_) = false;

  // Ring 0..num_workers-1 belong to the workers (single-writer, lock-free;
  // ConsumeLatencies reads them under `mu_` after Drain quiesced the
  // workers); the last ring is shared by every external ParallelFor caller
  // and guarded by `ext_mu_` (caller participation is rare enough that one
  // mutex beats per-thread registration). Not TERIDS_GUARDED_BY: elements
  // of one vector split between the single-writer discipline and `ext_mu_`,
  // which the per-member annotation cannot express.
  std::vector<LatencyRing> rings_;
  Mutex ext_mu_{lock_rank::kLatencyRing};
};

}  // namespace terids

#endif  // TERIDS_EXEC_SCHEDULER_H_
