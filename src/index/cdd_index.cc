#include "index/cdd_index.h"

#include <cmath>

#include "util/bits.h"

namespace terids {

namespace {
// Geometry markers (see class comment). Constants live in [0,1], so the
// markers are disjoint from real coordinates.
constexpr double kIntervalMarker = -1.0;
constexpr double kUnusedMarker = -2.0;
// Exact-match tolerance for coordinate equality of constants.
constexpr double kCoordEps = 1e-9;
}  // namespace

CddIndex::CddIndex(const Repository* repo, const std::vector<CddRule>* rules)
    : repo_(repo), rules_(rules) {
  TERIDS_CHECK(repo != nullptr);
  TERIDS_CHECK(rules != nullptr);
}

ArTreeEntry CddIndex::MakeEntry(int rule_idx) const {
  const CddRule& rule = (*rules_)[rule_idx];
  const int d = repo_->num_attributes();
  ArTreeEntry entry;
  entry.payload = rule_idx;
  entry.box.assign(d, Interval::Point(kUnusedMarker));
  entry.agg.dep_interval = rule.dep_interval;
  entry.agg.aux_dist.resize(d);
  for (const auto& [attr, constraint] : rule.determinants) {
    if (constraint.kind == AttrConstraint::Kind::kConstant) {
      const double coord = repo_->coord(attr, constraint.constant_vid);
      entry.box[attr] = Interval::Point(coord);
      const int np = repo_->num_pivots(attr);
      for (int a = 1; a < np; ++a) {
        entry.agg.aux_dist[attr].push_back(Interval::Point(
            repo_->pivot_distance(attr, a, constraint.constant_vid)));
      }
    } else {
      entry.box[attr] = Interval::Point(kIntervalMarker);
    }
  }
  return entry;
}

int CddIndex::FindOrAddGroup(int dependent, uint32_t det_mask) {
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].dependent == dependent && groups_[g].det_mask == det_mask) {
      return static_cast<int>(g);
    }
  }
  groups_.emplace_back(repo_->num_attributes());
  Group& group = groups_.back();
  group.dependent = dependent;
  group.det_mask = det_mask;
  group.level = PopCount(det_mask);
  return static_cast<int>(groups_.size()) - 1;
}

void CddIndex::Build() {
  groups_.clear();
  // Partition rules into lattice groups, then bulk load each group's tree.
  std::vector<std::vector<ArTreeEntry>> group_entries;
  for (size_t i = 0; i < rules_->size(); ++i) {
    const CddRule& rule = (*rules_)[i];
    const int g = FindOrAddGroup(rule.dependent, rule.det_mask);
    if (static_cast<size_t>(g) >= group_entries.size()) {
      group_entries.resize(g + 1);
    }
    group_entries[g].push_back(MakeEntry(static_cast<int>(i)));
  }
  for (size_t g = 0; g < group_entries.size(); ++g) {
    groups_[g].tree.BulkLoad(std::move(group_entries[g]));
  }
}

void CddIndex::InsertRule(int rule_idx) {
  const CddRule& rule = (*rules_)[rule_idx];
  const int g = FindOrAddGroup(rule.dependent, rule.det_mask);
  groups_[g].tree.Insert(MakeEntry(rule_idx));
}

bool CddIndex::RemoveRule(int rule_idx) {
  const CddRule& rule = (*rules_)[rule_idx];
  for (Group& group : groups_) {
    if (group.dependent == rule.dependent && group.det_mask == rule.det_mask) {
      return group.tree.Remove(rule_idx);
    }
  }
  return false;
}

void CddIndex::ProbeGroup(
    const Group& group, const Record& r, const ProbeCoords& pc,
    const std::function<void(const CddRule&, int)>& on_rule) const {
  group.tree.Query(
      [&](const ArTree::NodeView& node) {
        // Per determinant dimension, the node must contain the interval
        // marker or a constant compatible with the probe coordinate.
        for (int x = 0; x < repo_->num_attributes(); ++x) {
          if ((group.det_mask & (1u << x)) == 0) {
            continue;
          }
          const Interval& box = node.box[x];
          const bool has_marker = box.lo <= kIntervalMarker + kCoordEps;
          const Interval probe_band = Interval::Of(pc.main(x) - kCoordEps,
                                                   pc.main(x) + kCoordEps);
          if (!has_marker && !box.Overlaps(probe_band)) {
            return false;
          }
        }
        return true;
      },
      [&](const ArTreeEntry& entry) {
        const int rule_idx = static_cast<int>(entry.payload);
        const CddRule& rule = (*rules_)[rule_idx];
        // Exact verification of constant constraints against the probe.
        for (const auto& [attr, constraint] : rule.determinants) {
          if (constraint.kind != AttrConstraint::Kind::kConstant) {
            continue;
          }
          if (std::abs(pc.main(attr) -
                       repo_->coord(attr, constraint.constant_vid)) >
              kCoordEps) {
            return;
          }
          if (!(r.values[attr].tokens ==
                repo_->value_tokens(attr, constraint.constant_vid))) {
            return;
          }
        }
        on_rule(rule, rule_idx);
      });
  last_leaves_ += group.tree.last_query_leaves_visited;
}

std::vector<int> CddIndex::SelectRules(const Record& r, const ProbeCoords& pc,
                                       int dependent) const {
  last_leaves_ = 0;
  std::vector<int> out;
  const uint32_t missing = r.MissingMask();
  for (const Group& group : groups_) {
    if (group.dependent != dependent) {
      continue;
    }
    if ((group.det_mask & missing) != 0) {
      continue;  // A determinant is missing in r; group inapplicable.
    }
    ProbeGroup(group, r, pc,
               [&out](const CddRule& rule, int idx) {
                 (void)rule;
                 out.push_back(idx);
               });
  }
  return out;
}

Interval CddIndex::CoarseDependentBound(const Record& r, const ProbeCoords& pc,
                                        int dependent) const {
  Interval bound = Interval::Empty();
  const uint32_t missing = r.MissingMask();
  for (const Group& group : groups_) {
    if (group.dependent != dependent || (group.det_mask & missing) != 0) {
      continue;
    }
    ProbeGroup(group, r, pc,
               [&bound](const CddRule& rule, int idx) {
                 (void)idx;
                 bound.Union(rule.dep_interval);
               });
  }
  return bound;
}

}  // namespace terids
