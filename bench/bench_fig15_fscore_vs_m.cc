// Figure 15: TER-iDS effectiveness (F-score) vs the number m of missing
// attributes per incomplete tuple.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  FscoreSweep("Figure 15", "m", {1, 2, 3},
              [](ExperimentParams* p, double v) {
                p->m = static_cast<int>(v);
              },
              AccuracyPipelines());
  return 0;
}
