// Parameterized end-to-end soundness sweeps.
//
// 1. Across combinations of (alpha, rho, xi), the fully indexed + pruned
//    TER-iDS engine must report exactly the same pair set as the
//    unindexed, unpruned CDD+ER baseline. This is the strongest property
//    the system has — every index, synopsis, bound, and pruning theorem
//    changes cost, never results — checked over a grid of query
//    parameters rather than a single configuration.
// 2. Across every datagen profile and (batch_size, refine_threads,
//    grid_shards, ingest_queue_depth, maintain_shards, signature_filter,
//    sched_threads, sig_width) combination, the batched / parallel /
//    sharded-grid / async-ingest operator (ProcessStream over ProcessBatch
//    + RefinementExecutor + ShardedErGrid + BatchQueue, dispatched either
//    on the legacy per-subsystem pools or the unified Scheduler, with
//    signatures at any supported width) must be bit-identical to
//    one-at-a-time ProcessArrival: same per-arrival matches in the same
//    order, same final MatchSet, same cumulative PruneStats.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/pipeline.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"
#include "stream/stream_driver.h"

namespace terids {
namespace {

using Combo = std::tuple<double, double, double>;  // alpha, rho, xi

class EquivalenceSweepTest : public ::testing::TestWithParam<Combo> {};

TEST_P(EquivalenceSweepTest, TerIdsEqualsUnprunedBaseline) {
  const auto [alpha, rho, xi] = GetParam();
  ExperimentParams params;
  params.scale = 0.04;
  params.w = 50;
  params.max_arrivals = 220;
  params.alpha = alpha;
  params.rho = rho;
  params.xi = xi;
  Experiment experiment(CitationsProfile(), params);

  auto collect = [&](PipelineKind kind) {
    std::unique_ptr<Repository> repo = experiment.BuildRepository();
    std::unique_ptr<ErPipeline> pipeline = MakePipeline(
        kind, repo.get(), experiment.MakeConfig(), 2, experiment.cdds(),
        experiment.dds(), experiment.editing_rules());
    std::vector<Record> inc_a = DataGenerator::WithMissing(
        experiment.dataset().source_a, xi, params.m, params.seed);
    std::vector<Record> inc_b = DataGenerator::WithMissing(
        experiment.dataset().source_b, xi, params.m, params.seed + 1);
    StreamDriver driver({inc_a, inc_b});
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (int i = 0; i < params.max_arrivals && driver.HasNext(); ++i) {
      for (const MatchPair& p :
           pipeline->ProcessArrival(driver.Next()).new_matches) {
        pairs.emplace_back(p.rid_a, p.rid_b);
      }
    }
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };

  const auto terids = collect(PipelineKind::kTerIds);
  const auto baseline = collect(PipelineKind::kCddEr);
  EXPECT_EQ(terids, baseline)
      << "alpha=" << alpha << " rho=" << rho << " xi=" << xi;
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, EquivalenceSweepTest,
    ::testing::Values(Combo{0.1, 0.5, 0.3}, Combo{0.5, 0.5, 0.3},
                      Combo{0.8, 0.5, 0.3}, Combo{0.5, 0.3, 0.3},
                      Combo{0.5, 0.7, 0.3}, Combo{0.5, 0.5, 0.0},
                      Combo{0.5, 0.5, 0.6}, Combo{0.2, 0.4, 0.5},
                      Combo{0.7, 0.6, 0.2}));

// --- Batched / parallel / sharded / async operator equivalence -------------

// profile, batch, refine_threads, grid_shards, ingest_queue_depth,
// maintain_shards, signature_filter, sched_threads, sig_width
using BatchCombo =
    std::tuple<std::string, int, int, int, int, int, bool, int, int>;

class BatchEquivalenceSweepTest
    : public ::testing::TestWithParam<BatchCombo> {};

struct ReplayResult {
  std::vector<std::pair<int64_t, int64_t>> emitted;  // in emission order
  std::vector<MatchPair> final_set;                  // sorted snapshot
  PruneStats stats;
};

// Deliberately compares only the outcome counters: the sig_* observability
// counters (sig_probes / sig_saturated / sig_rejects) legitimately vary
// with signature_filter and sig_width — they count filter work, not
// results — so they are excluded from the bit-identity contract.
void ExpectSameStats(const PruneStats& a, const PruneStats& b) {
  EXPECT_EQ(a.total_pairs, b.total_pairs);
  EXPECT_EQ(a.topic_pruned, b.topic_pruned);
  EXPECT_EQ(a.sim_ub_pruned, b.sim_ub_pruned);
  EXPECT_EQ(a.prob_ub_pruned, b.prob_ub_pruned);
  EXPECT_EQ(a.instance_pruned, b.instance_pruned);
  EXPECT_EQ(a.refined, b.refined);
  EXPECT_EQ(a.matched, b.matched);
  // Degradation is required to be *visible*: outside the degrade policy
  // under pressure, no pair may ever be recorded as deferred.
  EXPECT_EQ(a.deferred, b.deferred);
}

TEST_P(BatchEquivalenceSweepTest, ProcessBatchEqualsOneAtATime) {
  const auto [profile, batch_size, refine_threads, grid_shards, queue_depth,
              maintain_shards, signature_filter, sched_threads, sig_width] =
      GetParam();
  ExperimentParams params;
  // Per-profile scale mirrors bench::BaseParams ratios: EBooks (long token
  // sets) and Songs (the 1M-tuple dataset) blow up wall time at a uniform
  // scale without adding coverage.
  params.scale = 0.04;
  if (profile == "EBooks") params.scale = 0.012;
  if (profile == "Songs") params.scale = 0.002;
  params.w = 50;
  params.max_arrivals = 220;
  Experiment experiment(ProfileByName(profile), params);

  // The TER-iDS engine covers grid candidates + the pruning cascade (and,
  // in queue > 0 combos, the async ingest thread); the con+ER baseline
  // covers linear candidates, the unpruned exact path, and a stateful
  // stream imputer whose OnArrival/OnEvict ordering the batched operator
  // must reproduce — its imputer mutates refinement-visible state, so its
  // pipeline must transparently stay synchronous at any queue depth.
  for (PipelineKind kind :
       {PipelineKind::kTerIds, PipelineKind::kConstraintEr}) {
    auto replay = [&](int bs, int threads, int shards, int queue,
                      int maintain, bool sigfilter, int sched, int width) {
      std::unique_ptr<Repository> repo = experiment.BuildRepository();
      EngineConfig config = experiment.MakeConfig();
      config.batch_size = bs;
      config.refine_threads = threads;
      config.grid_shards = shards;
      config.ingest_queue_depth = queue;
      config.maintain_shards = maintain;
      config.signature_filter = sigfilter;
      config.sched_threads = sched;
      config.sig_width = width;
      std::unique_ptr<ErPipeline> pipeline =
          MakePipeline(kind, repo.get(), config, 2, experiment.cdds(),
                       experiment.dds(), experiment.editing_rules());
      std::vector<Record> inc_a = DataGenerator::WithMissing(
          experiment.dataset().source_a, params.xi, params.m, params.seed);
      std::vector<Record> inc_b = DataGenerator::WithMissing(
          experiment.dataset().source_b, params.xi, params.m,
          params.seed + 1);
      StreamDriver driver({inc_a, inc_b});
      ReplayResult result;
      // ProcessStream is the one operator entry point under test: the
      // synchronous NextBatch/ProcessBatch loop when queue == 0, the async
      // double-buffered ingest pipeline when queue > 0.
      pipeline->ProcessStream(&driver,
                              static_cast<size_t>(params.max_arrivals),
                              static_cast<size_t>(bs),
                              [&result](ArrivalOutcome&& out) {
                                for (const MatchPair& p : out.new_matches) {
                                  result.emitted.emplace_back(p.rid_a,
                                                              p.rid_b);
                                }
                              });
      result.final_set = pipeline->results().ToVector();
      result.stats = pipeline->cumulative_stats();
      return result;
    };

    // The oracle is the seed configuration: one-at-a-time, single shard,
    // serial maintain, signature filter off (plain merges everywhere) at
    // the seed's 64-bit width, legacy per-pool execution (no scheduler).
    const ReplayResult sequential =
        replay(1, 1, 1, 0, /*maintain=*/1, /*sigfilter=*/false, /*sched=*/0,
               /*width=*/64);
    const ReplayResult batched =
        replay(batch_size, refine_threads, grid_shards, queue_depth,
               maintain_shards, signature_filter, sched_threads, sig_width);
    EXPECT_EQ(batched.emitted, sequential.emitted)
        << profile << " " << PipelineKindName(kind) << " batch=" << batch_size
        << " threads=" << refine_threads << " shards=" << grid_shards
        << " queue=" << queue_depth << " maintain=" << maintain_shards
        << " sigfilter=" << signature_filter << " sched=" << sched_threads
        << " width=" << sig_width;
    ASSERT_EQ(batched.final_set.size(), sequential.final_set.size());
    for (size_t i = 0; i < batched.final_set.size(); ++i) {
      EXPECT_EQ(batched.final_set[i].rid_a, sequential.final_set[i].rid_a);
      EXPECT_EQ(batched.final_set[i].rid_b, sequential.final_set[i].rid_b);
      EXPECT_DOUBLE_EQ(batched.final_set[i].probability,
                       sequential.final_set[i].probability);
    }
    ExpectSameStats(batched.stats, sequential.stats);
  }
}

// --- Storage-backend equivalence -------------------------------------------

// Across every datagen profile, an engine reading the repository through
// MmapSnapshotStorage (snapshot write -> mmap reopen, DESIGN.md §8) must be
// bit-identical to the InMemoryStorage oracle: same per-arrival matches in
// the same order, same final MatchSet, same cumulative PruneStats. TER-iDS
// exercises the full read path (domains, pivot tables, coordinate scans,
// DR-index build over samples); con+ER additionally exercises the dynamic
// overlay, because its imputer registers stream values into the domains
// after the snapshot was opened. The mmap backend runs under both v2
// decode modes: kEager (everything materialized at open, the v1-equivalent
// oracle path) and kLazy (sections decode on first touch mid-replay), so
// lazy first-touch decode is proven output-invariant on every profile.
class RepoBackendEquivalenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RepoBackendEquivalenceTest, MmapSnapshotEqualsInMemoryOracle) {
  const std::string profile = GetParam();
  ExperimentParams params;
  params.scale = 0.04;
  if (profile == "EBooks") params.scale = 0.012;
  if (profile == "Songs") params.scale = 0.002;
  params.w = 50;
  params.max_arrivals = 220;
  Experiment experiment(ProfileByName(profile), params);

  for (PipelineKind kind :
       {PipelineKind::kTerIds, PipelineKind::kConstraintEr}) {
    auto replay = [&](RepoBackend backend, SnapshotDecode decode) {
      std::unique_ptr<Repository> repo =
          experiment.BuildRepository(backend, decode);
      EXPECT_STREQ(repo->backend_name(), RepoBackendName(backend));
      EngineConfig config = experiment.MakeConfig();
      config.repo_backend = backend;
      config.snapshot_decode = decode;
      std::unique_ptr<ErPipeline> pipeline =
          MakePipeline(kind, repo.get(), config, 2, experiment.cdds(),
                       experiment.dds(), experiment.editing_rules());
      std::vector<Record> inc_a = DataGenerator::WithMissing(
          experiment.dataset().source_a, params.xi, params.m, params.seed);
      std::vector<Record> inc_b = DataGenerator::WithMissing(
          experiment.dataset().source_b, params.xi, params.m,
          params.seed + 1);
      StreamDriver driver({inc_a, inc_b});
      ReplayResult result;
      pipeline->ProcessStream(&driver,
                              static_cast<size_t>(params.max_arrivals),
                              /*batch_size=*/1,
                              [&result](ArrivalOutcome&& out) {
                                for (const MatchPair& p : out.new_matches) {
                                  result.emitted.emplace_back(p.rid_a,
                                                              p.rid_b);
                                }
                              });
      result.final_set = pipeline->results().ToVector();
      result.stats = pipeline->cumulative_stats();
      return result;
    };

    const ReplayResult memory =
        replay(RepoBackend::kInMemory, SnapshotDecode::kEager);
    for (SnapshotDecode decode :
         {SnapshotDecode::kEager, SnapshotDecode::kLazy}) {
      const ReplayResult mmap = replay(RepoBackend::kMmapSnapshot, decode);
      EXPECT_EQ(mmap.emitted, memory.emitted)
          << profile << " " << PipelineKindName(kind) << " decode="
          << SnapshotDecodeName(decode);
      ASSERT_EQ(mmap.final_set.size(), memory.final_set.size());
      for (size_t i = 0; i < mmap.final_set.size(); ++i) {
        EXPECT_EQ(mmap.final_set[i].rid_a, memory.final_set[i].rid_a);
        EXPECT_EQ(mmap.final_set[i].rid_b, memory.final_set[i].rid_b);
        EXPECT_DOUBLE_EQ(mmap.final_set[i].probability,
                         memory.final_set[i].probability);
      }
      ExpectSameStats(mmap.stats, memory.stats);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, RepoBackendEquivalenceTest,
                         ::testing::Values("Citations", "Anime", "Bikes",
                                           "EBooks", "Songs"),
                         [](const ::testing::TestParamInfo<std::string>&
                                info) { return info.param; });

// --- Overload-policy equivalence -------------------------------------------

// The admission-control layer (DESIGN.md §13) must be invisible whenever it
// is allowed to be: overload_policy=block is the backpressure oracle and
// must be bit-identical to the sequential run on every profile, on both the
// ingest-thread path (sched=0) and the scheduler's kIngest chain (sched=4).
// The shedding/degrading policies must be bit-identical whenever the
// pressure signal never fires — enforced here with a queue deep enough
// that the replay's batch count can never fill it.
//
// profile, policy, ingest_queue_depth, sched_threads
using OverloadCombo = std::tuple<std::string, OverloadPolicy, int, int>;

class OverloadPolicyEquivalenceTest
    : public ::testing::TestWithParam<OverloadCombo> {};

TEST_P(OverloadPolicyEquivalenceTest, PolicyInertWithoutPressure) {
  const auto [profile, policy, queue_depth, sched_threads] = GetParam();
  ExperimentParams params;
  params.scale = 0.04;
  if (profile == "EBooks") params.scale = 0.012;
  if (profile == "Songs") params.scale = 0.002;
  params.w = 50;
  params.max_arrivals = 220;
  Experiment experiment(ProfileByName(profile), params);

  auto replay = [&](OverloadPolicy pol, int queue, int sched) {
    std::unique_ptr<Repository> repo = experiment.BuildRepository();
    EngineConfig config = experiment.MakeConfig();
    config.batch_size = 8;
    config.refine_threads = queue > 0 ? 4 : 1;
    config.ingest_queue_depth = queue;
    config.sched_threads = sched;
    config.overload_policy = pol;
    std::unique_ptr<ErPipeline> pipeline =
        MakePipeline(PipelineKind::kTerIds, repo.get(), config, 2,
                     experiment.cdds(), experiment.dds(),
                     experiment.editing_rules());
    std::vector<Record> inc_a = DataGenerator::WithMissing(
        experiment.dataset().source_a, params.xi, params.m, params.seed);
    std::vector<Record> inc_b = DataGenerator::WithMissing(
        experiment.dataset().source_b, params.xi, params.m, params.seed + 1);
    StreamDriver driver({inc_a, inc_b});
    ReplayResult result;
    pipeline->ProcessStream(&driver,
                            static_cast<size_t>(params.max_arrivals),
                            /*batch_size=*/8,
                            [&result](ArrivalOutcome&& out) {
                              for (const MatchPair& p : out.new_matches) {
                                result.emitted.emplace_back(p.rid_a,
                                                            p.rid_b);
                              }
                            });
    result.final_set = pipeline->results().ToVector();
    result.stats = pipeline->cumulative_stats();
    if (pol != OverloadPolicy::kBlock) {
      // No pressure, no shedding: the accounting must agree.
      const ShedStats* shed = pipeline->shed_stats();
      EXPECT_NE(shed, nullptr);
      if (shed != nullptr) {
        EXPECT_EQ(shed->shed_arrivals, 0);
        EXPECT_EQ(shed->degraded_arrivals, 0);
        EXPECT_EQ(shed->pressure_events, 0);
      }
    }
    return result;
  };

  const ReplayResult sequential =
      replay(OverloadPolicy::kBlock, /*queue=*/0, /*sched=*/0);
  const ReplayResult policy_run = replay(policy, queue_depth, sched_threads);
  EXPECT_EQ(policy_run.emitted, sequential.emitted)
      << profile << " policy=" << OverloadPolicyName(policy)
      << " queue=" << queue_depth << " sched=" << sched_threads;
  ASSERT_EQ(policy_run.final_set.size(), sequential.final_set.size());
  for (size_t i = 0; i < policy_run.final_set.size(); ++i) {
    EXPECT_EQ(policy_run.final_set[i].rid_a, sequential.final_set[i].rid_a);
    EXPECT_EQ(policy_run.final_set[i].rid_b, sequential.final_set[i].rid_b);
    EXPECT_DOUBLE_EQ(policy_run.final_set[i].probability,
                     sequential.final_set[i].probability);
  }
  ExpectSameStats(policy_run.stats, sequential.stats);
}

std::vector<OverloadCombo> OverloadCombos() {
  std::vector<OverloadCombo> combos;
  // block is the oracle under real backpressure (shallow queue): every
  // profile, both async execution paths.
  for (const char* profile :
       {"Citations", "Anime", "Bikes", "EBooks", "Songs"}) {
    combos.emplace_back(profile, OverloadPolicy::kBlock, 2, 0);
    combos.emplace_back(profile, OverloadPolicy::kBlock, 2, 4);
  }
  // Non-block policies with a queue the replay cannot fill: the pressure
  // signal stays quiet, so they must be bit-identical too.
  for (OverloadPolicy policy :
       {OverloadPolicy::kShedNewest, OverloadPolicy::kShedOldest,
        OverloadPolicy::kDegrade}) {
    combos.emplace_back("Citations", policy, 64, 0);
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, OverloadPolicyEquivalenceTest,
    ::testing::ValuesIn(OverloadCombos()),
    [](const ::testing::TestParamInfo<OverloadCombo>& info) {
      return std::get<0>(info.param) +
             std::string("_") +
             OverloadPolicyName(std::get<1>(info.param)) + "_q" +
             std::to_string(std::get<2>(info.param)) + "_c" +
             std::to_string(std::get<3>(info.param));
    });

std::vector<BatchCombo> BatchCombos() {
  std::vector<BatchCombo> combos;
  for (const char* profile :
       {"Citations", "Anime", "Bikes", "EBooks", "Songs"}) {
    // The PR-2 batch x threads matrix (shards 1, synchronous, signature
    // filter on — every profile exercises the signature kernel against the
    // sigfilter-off oracle)...
    for (const auto& [batch, threads] :
         std::vector<std::pair<int, int>>{{1, 4}, {8, 1}, {8, 4}}) {
      combos.emplace_back(profile, batch, threads, 1, 0, 1, true, 0, 64);
    }
    // ...plus the everything-on configuration per profile, once on the
    // legacy per-subsystem pools and once on the unified scheduler: sharded
    // grid + async ingest + parallel refinement + parallel maintain +
    // signature filter (the TSan job's main data-race surface). The two
    // runs split the wide-signature coverage between them: every profile
    // replays everything-on at both 128 and 256 bits against the 64-bit
    // sigfilter-off oracle.
    combos.emplace_back(profile, 8, 4, 4, 2, 4, true, 0, 128);
    combos.emplace_back(profile, 8, 4, 4, 2, 4, true, 4, 256);
  }
  // Full shards x queue x threads cross on one profile (the acceptance
  // matrix): isolates each new axis against the sequential oracle.
  combos.emplace_back("Citations", 8, 1, 4, 0, 1, true, 0, 64);
  combos.emplace_back("Citations", 8, 4, 4, 0, 1, true, 0, 64);
  combos.emplace_back("Citations", 8, 1, 1, 2, 1, true, 0, 64);
  combos.emplace_back("Citations", 8, 4, 1, 2, 1, true, 0, 64);
  combos.emplace_back("Citations", 8, 1, 4, 2, 1, true, 0, 64);
  // async, batch 1
  combos.emplace_back("Citations", 1, 1, 4, 2, 1, true, 0, 64);
  // Maintain-shard and signature-filter axes in isolation: parallel
  // maintain with everything else sequential, the sig filter both ways,
  // and parallel maintain under async ingest (maintain fan-out runs on the
  // ingest thread there).
  combos.emplace_back("Citations", 1, 1, 4, 0, 4, false, 0, 64);
  combos.emplace_back("Citations", 1, 1, 4, 0, 4, true, 0, 64);
  combos.emplace_back("Citations", 8, 4, 4, 0, 4, false, 0, 64);
  combos.emplace_back("Citations", 8, 4, 4, 2, 4, false, 0, 64);
  combos.emplace_back("Bikes", 8, 4, 4, 2, 4, false, 0, 64);
  // Unified-scheduler axes in isolation (Citations): scheduler constructed
  // but no phase fans out; each phase fanning out alone on the shared
  // workers (refine / candidate probe / maintain / the kIngest chain); the
  // single-worker and two-worker edges of the caller-participation
  // discipline under the everything-on load; and sigfilter-off + scheduler
  // against the sigfilter-off oracle.
  combos.emplace_back("Citations", 1, 1, 1, 0, 1, true, 4, 64);
  combos.emplace_back("Citations", 8, 4, 1, 0, 1, true, 4, 64);
  combos.emplace_back("Citations", 1, 1, 4, 0, 1, true, 4, 64);
  combos.emplace_back("Citations", 1, 1, 4, 0, 4, true, 4, 64);
  combos.emplace_back("Citations", 8, 1, 1, 2, 1, true, 4, 64);
  // chain, batch 1
  combos.emplace_back("Citations", 1, 1, 4, 2, 1, true, 4, 64);
  combos.emplace_back("Citations", 8, 4, 4, 2, 4, true, 1, 64);
  combos.emplace_back("Citations", 8, 4, 4, 2, 4, true, 2, 64);
  combos.emplace_back("Citations", 8, 4, 4, 2, 4, false, 4, 64);
  combos.emplace_back("Bikes", 8, 4, 4, 2, 4, false, 4, 64);
  // sig_width axis in isolation (Citations, everything else sequential):
  // wide signatures + filter against the 64-bit sigfilter-off oracle, plus
  // a sigfilter-off run at 256 bits (widths must be inert with the filter
  // off). The parallel-refinement combos additionally route the wide
  // widths through the executor's batched prefilter.
  combos.emplace_back("Citations", 1, 1, 1, 0, 1, true, 0, 128);
  combos.emplace_back("Citations", 1, 1, 1, 0, 1, true, 0, 256);
  combos.emplace_back("Citations", 1, 1, 1, 0, 1, false, 0, 256);
  combos.emplace_back("Citations", 1, 4, 1, 0, 1, true, 0, 256);
  combos.emplace_back("Citations", 8, 4, 1, 0, 1, true, 0, 128);
  combos.emplace_back("EBooks", 8, 4, 1, 0, 1, true, 0, 256);
  return combos;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, BatchEquivalenceSweepTest,
                         ::testing::ValuesIn(BatchCombos()),
                         [](const ::testing::TestParamInfo<BatchCombo>& info) {
                           return std::get<0>(info.param) + "_b" +
                                  std::to_string(std::get<1>(info.param)) +
                                  "_t" +
                                  std::to_string(std::get<2>(info.param)) +
                                  "_s" +
                                  std::to_string(std::get<3>(info.param)) +
                                  "_q" +
                                  std::to_string(std::get<4>(info.param)) +
                                  "_m" +
                                  std::to_string(std::get<5>(info.param)) +
                                  (std::get<6>(info.param) ? "_sig1"
                                                           : "_sig0") +
                                  "_c" +
                                  std::to_string(std::get<7>(info.param)) +
                                  "_w" +
                                  std::to_string(std::get<8>(info.param));
                         });

}  // namespace
}  // namespace terids
