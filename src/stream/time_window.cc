#include "stream/time_window.h"

#include "util/status.h"

namespace terids {

TimeBasedWindow::TimeBasedWindow(int64_t duration) : duration_(duration) {
  TERIDS_CHECK(duration > 0);
}

std::vector<std::shared_ptr<WindowTuple>> TimeBasedWindow::Push(
    std::shared_ptr<WindowTuple> t) {
  TERIDS_CHECK(t != nullptr);
  const int64_t ts = t->tuple->timestamp();
  TERIDS_CHECK(ts >= now_ || tuples_.empty());
  std::vector<std::shared_ptr<WindowTuple>> evicted = AdvanceTo(ts);
  tuples_.push_back(std::move(t));
  return evicted;
}

std::vector<std::shared_ptr<WindowTuple>> TimeBasedWindow::AdvanceTo(
    int64_t now) {
  if (now > now_) {
    now_ = now;
  }
  std::vector<std::shared_ptr<WindowTuple>> evicted;
  while (!tuples_.empty() &&
         now_ - tuples_.front()->tuple->timestamp() >= duration_) {
    evicted.push_back(std::move(tuples_.front()));
    tuples_.pop_front();
  }
  return evicted;
}

}  // namespace terids
