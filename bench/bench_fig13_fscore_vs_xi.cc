// Figure 13: TER-iDS effectiveness (F-score) vs the missing rate xi.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  FscoreSweep("Figure 13", "xi", {0.1, 0.2, 0.3, 0.4, 0.5, 0.8},
              [](ExperimentParams* p, double v) { p->xi = v; },
              AccuracyPipelines());
  return 0;
}
