#include "er/pruning.h"

#include "er/bounds.h"
#include "er/probability.h"

namespace terids {

PairEvaluation EvaluatePair(const ImputedTuple& a,
                            const TopicQuery::TupleTopic& a_topic,
                            const ImputedTuple& b,
                            const TopicQuery::TupleTopic& b_topic,
                            double gamma, double alpha,
                            bool signature_filter) {
  PairEvaluation eval;

  // Theorem 4.1: no instance of either tuple contains a query keyword.
  if (!a_topic.any && !b_topic.any) {
    eval.outcome = PairOutcome::kTopicPruned;
    return eval;
  }

  // Theorem 4.2 via Lemmas 4.1 and 4.2.
  if (UbSim(a, b) <= gamma) {
    eval.outcome = PairOutcome::kSimUbPruned;
    return eval;
  }

  // Theorem 4.3 via Lemma 4.3.
  if (UbProbPaleyZygmund(a, b, gamma) <= alpha) {
    eval.outcome = PairOutcome::kProbUbPruned;
    return eval;
  }

  // Refinement with Theorem 4.4 early termination.
  SigFilterCounters sig;
  RefineResult refine = RefineProbability(a, a_topic, b, b_topic, gamma,
                                          alpha, signature_filter, &sig);
  eval.sig_probes = sig.probes;
  eval.sig_saturated = sig.saturated;
  eval.sig_rejects = sig.rejects;
  if (refine.early_pruned) {
    eval.outcome = PairOutcome::kInstancePruned;
    return eval;
  }
  if (refine.probability > alpha) {
    eval.outcome = PairOutcome::kMatched;
    eval.probability = refine.probability;
    return eval;
  }
  eval.outcome = PairOutcome::kRefuted;
  return eval;
}

}  // namespace terids
