// terids::Mutex / MutexLock / CondVar and the Debug lock-rank checker
// (DESIGN.md §12): in-order nested acquisition passes, out-of-order and
// re-entrant acquisition abort with a "lock-rank violation" report, and the
// CondVar wait/reacquire path is exempt from the order re-check. The death
// expectations only exist in Debug builds — in Release the bookkeeping is
// compiled out (kLockRankChecksEnabled) and those tests skip.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "util/mutex.h"

namespace terids {
namespace {

TEST(MutexTest, InOrderNestedAcquisitionPasses) {
  // The sanctioned direction: low rank outside, high rank inside — the
  // same shape as Scheduler::ConsumeLatencies (kScheduler -> kLatencyRing).
  Mutex low(lock_rank::kBatchQueue);
  Mutex mid(lock_rank::kScheduler);
  Mutex high(lock_rank::kLatencyRing);
  {
    MutexLock l1(&low);
    MutexLock l2(&mid);
    MutexLock l3(&high);
    low.AssertHeld();
    mid.AssertHeld();
    high.AssertHeld();
  }
  // Fully released: the same chain must be reacquirable.
  {
    MutexLock l1(&low);
    MutexLock l2(&mid);
  }
}

TEST(MutexTest, UnrankedMutexesAreExemptFromTheOrderCheck) {
  // Unranked under ranked and ranked under unranked both pass; only
  // ranked-vs-ranked pairs are ordered. Each direction uses fresh
  // heap-allocated mutex objects: locking the *same* pair both ways round
  // would be a genuine lock-order inversion (TSan's deadlock detector
  // rightly reports it — and tracks stack objects by address across
  // scopes, since std::mutex never announces destruction), and the
  // unranked exemption exists for locks that never form cycles.
  {
    auto ranked = std::make_unique<Mutex>(lock_rank::kScheduler);
    auto unranked = std::make_unique<Mutex>();  // lock_rank::kUnranked
    MutexLock l1(ranked.get());
    MutexLock l2(unranked.get());
  }
  {
    auto ranked = std::make_unique<Mutex>(lock_rank::kScheduler);
    auto unranked = std::make_unique<Mutex>();
    MutexLock l1(unranked.get());
    MutexLock l2(ranked.get());
  }
}

TEST(MutexTest, CondVarWaitReleasesAndReacquiresWithoutOrderViolation) {
  Mutex mu(lock_rank::kScheduler);
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) {
      cv.Wait(&mu);
    }
    // The reacquisition after the wait must leave the checker's held-stack
    // consistent: AssertHeld sees the mutex, and the release on scope exit
    // must not report a not-held violation.
    mu.AssertHeld();
  }
  signaller.join();
}

TEST(MutexTest, CondVarWaitWhileHoldingALowerRankedLockPasses) {
  // Waiting on a high-ranked mutex while holding a lower-ranked one is the
  // in-order shape; the wait's reacquisition must not re-run the order
  // check against the still-held low-ranked lock in a way that misfires.
  Mutex low(lock_rank::kBatchQueue);
  Mutex high(lock_rank::kScheduler);
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(&high);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock l1(&low);
    MutexLock l2(&high);
    while (!ready) {
      cv.Wait(&high);
    }
  }
  signaller.join();
}

TEST(MutexDeathTest, OutOfOrderAcquisitionAborts) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (Release build)";
  }
  EXPECT_DEATH(
      {
        Mutex high(lock_rank::kScheduler);
        Mutex low(lock_rank::kBatchQueue);
        MutexLock l1(&high);
        MutexLock l2(&low);  // 100 after 400: order inversion
      },
      "lock-rank violation: out-of-order acquisition");
}

TEST(MutexDeathTest, EqualRankAcquisitionAborts) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (Release build)";
  }
  // Two locks of the same rank cannot nest either — "strictly greater"
  // is what makes the global order acyclic.
  EXPECT_DEATH(
      {
        Mutex a(lock_rank::kThreadPool);
        Mutex b(lock_rank::kThreadPool);
        MutexLock l1(&a);
        MutexLock l2(&b);
      },
      "lock-rank violation: out-of-order acquisition");
}

TEST(MutexDeathTest, ReentrantAcquisitionAborts) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (Release build)";
  }
  // Must abort with a report rather than deadlock inside std::mutex —
  // the checker runs before the underlying lock for exactly this case.
  // Re-entrancy is fatal even for unranked mutexes.
  EXPECT_DEATH(
      {
        Mutex mu;
        mu.Lock();
        mu.Lock();
      },
      "lock-rank violation: re-entrant acquisition");
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (Release build)";
  }
  EXPECT_DEATH(
      {
        Mutex mu(lock_rank::kScheduler);
        mu.AssertHeld();
      },
      "AssertHeld failed");
}

}  // namespace
}  // namespace terids
