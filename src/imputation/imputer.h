#ifndef TERIDS_IMPUTATION_IMPUTER_H_
#define TERIDS_IMPUTATION_IMPUTER_H_

#include <vector>

#include "eval/cost_breakdown.h"
#include "tuple/imputed_tuple.h"
#include "tuple/record.h"

namespace terids {

/// Interface of all imputation strategies (Section 3 and the baselines of
/// Section 6.1). An imputer turns the missing attributes of an incomplete
/// record into candidate value distributions; the caller materializes the
/// probabilistic tuple via ImputedTuple::FromImputation.
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Produces one candidate distribution per missing attribute of `r` that
  /// this strategy can fill (attributes it cannot fill are simply absent
  /// from the result). `cost`, if non-null, receives the rule-selection and
  /// imputation time of this call.
  virtual std::vector<ImputedTuple::ImputedAttr> ImputeRecord(
      const Record& r, CostBreakdown* cost) = 0;

  /// Stream lifecycle hooks: imputers that learn from the stream itself
  /// (the constraint-based baseline) observe arrivals and evictions here.
  virtual void OnArrival(const Record& r) { (void)r; }
  virtual void OnEvict(const Record& r) { (void)r; }

  /// Whether imputation mutates state that pair refinement also reads. The
  /// constraint-based imputer registers stream values into the
  /// repository's attribute domains, which refinement dereferences through
  /// ImputedTuple::instance_tokens — overlapping the two stages would race
  /// on the domain vectors. PipelineBase::ProcessStream falls back to the
  /// synchronous loop for such imputers (output is identical either way;
  /// only the overlap is lost).
  virtual bool MutatesRefinementState() const { return false; }
};

}  // namespace terids

#endif  // TERIDS_IMPUTATION_IMPUTER_H_
