#include <gtest/gtest.h>

#include <algorithm>

#include "index/cdd_index.h"
#include "index/dr_index.h"
#include "rules/rule_miner.h"
#include "test_util.h"
#include "util/rng.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

class DrIndexTest : public ::testing::Test {
 protected:
  DrIndexTest() : world_(MakeHealthWorld()), index_(world_.repo.get()) {
    index_.Build();
  }
  ToyWorld world_;
  DrIndex index_;
};

TEST_F(DrIndexTest, UnconstrainedRetrievalReturnsAllSamples) {
  std::vector<AttrBand> bands(world_.repo->num_attributes());
  std::vector<size_t> got = index_.Retrieve(bands);
  EXPECT_EQ(got.size(), world_.repo->num_samples());
}

TEST_F(DrIndexTest, MainBandRetrievalIsSupersetOfExactMatches) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const int attr =
        static_cast<int>(rng.NextBounded(world_.repo->num_attributes()));
    const double center = rng.NextDouble();
    const double eps = 0.05 + rng.NextDouble() * 0.3;
    std::vector<AttrBand> bands(world_.repo->num_attributes());
    bands[attr].pivot_bands.push_back(
        Interval::Of(center - eps, center + eps));
    std::vector<size_t> got = index_.Retrieve(bands);
    std::sort(got.begin(), got.end());
    // Brute-force expectation.
    std::vector<size_t> want;
    for (size_t i = 0; i < world_.repo->num_samples(); ++i) {
      const double coord = world_.repo->coord(
          attr, world_.repo->sample_value_id(i, attr));
      if (coord >= center - eps && coord <= center + eps) {
        want.push_back(i);
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST_F(DrIndexTest, SizeBandFiltersByTokenCount) {
  std::vector<AttrBand> bands(world_.repo->num_attributes());
  bands[1].size_band = Interval::Of(4.0, 10.0);  // Long symptom lists only.
  std::vector<size_t> got = index_.Retrieve(bands);
  for (size_t i : got) {
    EXPECT_GE(world_.repo->sample(i).values[1].tokens.size(), 4u);
  }
  // And nothing matching was dropped.
  size_t expect = 0;
  for (size_t i = 0; i < world_.repo->num_samples(); ++i) {
    if (world_.repo->sample(i).values[1].tokens.size() >= 4) ++expect;
  }
  EXPECT_EQ(got.size(), expect);
}

TEST_F(DrIndexTest, DynamicInsertIsRetrievable) {
  Record extra = world_.Make(
      5000, {"female", "sore throat", "strep", "antibiotics rest"});
  ASSERT_TRUE(world_.repo->AddSample(extra).ok());
  index_.InsertSample(world_.repo->num_samples() - 1);
  std::vector<AttrBand> bands(world_.repo->num_attributes());
  std::vector<size_t> got = index_.Retrieve(bands);
  EXPECT_EQ(got.size(), world_.repo->num_samples());
}

class CddIndexTest : public ::testing::Test {
 protected:
  CddIndexTest() : world_(MakeHealthWorld()) {
    MinerOptions opts;
    opts.min_support = 2;
    opts.min_const_freq = 2;
    RuleMiner miner(world_.repo.get(), opts);
    rules_ = miner.MineCdds();
    index_ = std::make_unique<CddIndex>(world_.repo.get(), &rules_);
    index_->Build();
  }

  std::vector<int> BruteForceSelect(const Record& r, int dependent) const {
    std::vector<int> out;
    for (size_t i = 0; i < rules_.size(); ++i) {
      const CddRule& rule = rules_[i];
      if (rule.dependent != dependent || !rule.ApplicableTo(r)) {
        continue;
      }
      // Constant constraints must match the probe exactly (the index
      // verifies the probe side; interval rules pass selection).
      bool ok = true;
      for (const auto& [attr, c] : rule.determinants) {
        if (c.kind == AttrConstraint::Kind::kConstant &&
            !(r.values[attr].tokens ==
              world_.repo->domain(attr).tokens(c.constant_vid))) {
          ok = false;
        }
      }
      if (ok) out.push_back(static_cast<int>(i));
    }
    return out;
  }

  ToyWorld world_;
  std::vector<CddRule> rules_;
  std::unique_ptr<CddIndex> index_;
};

TEST_F(CddIndexTest, MinesNonTrivialRuleSet) {
  EXPECT_GT(rules_.size(), 4u);
  EXPECT_GT(index_->num_groups(), 1u);
}

TEST_F(CddIndexTest, SelectRulesMatchesBruteForce) {
  const std::vector<Record> probes = {
      world_.Make(1, {"male", "blurred vision", "-", "drug therapy"}),
      world_.Make(2, {"female", "fever cough", "-", "-"}),
      world_.Make(3, {"male", "loss of weight", "-", "dietary therapy"}),
      world_.Make(4, {"female", "-", "-", "eye drop"}),
  };
  for (const Record& r : probes) {
    const ProbeCoords pc = ProbeCoords::Compute(r, *world_.repo);
    for (int j : r.MissingAttributes()) {
      std::vector<int> got = index_->SelectRules(r, pc, j);
      std::sort(got.begin(), got.end());
      std::vector<int> want = BruteForceSelect(r, j);
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "dependent attr " << j;
    }
  }
}

TEST_F(CddIndexTest, CoarseDependentBoundCoversSelectedRules) {
  Record r = world_.Make(1, {"male", "blurred vision", "-", "drug therapy"});
  const ProbeCoords pc = ProbeCoords::Compute(r, *world_.repo);
  const Interval bound = index_->CoarseDependentBound(r, pc, 2);
  for (int idx : index_->SelectRules(r, pc, 2)) {
    EXPECT_LE(bound.lo, rules_[idx].dep_interval.lo);
    EXPECT_GE(bound.hi, rules_[idx].dep_interval.hi);
  }
}

TEST_F(CddIndexTest, InsertAndRemoveRule) {
  CddRule extra;
  extra.dependent = 3;
  extra.det_mask = 1u << 0;
  extra.determinants.emplace_back(0, AttrConstraint::MakeInterval(0.0, 0.2));
  extra.dep_interval = Interval::Of(0.0, 0.3);
  rules_.push_back(extra);
  const int idx = static_cast<int>(rules_.size()) - 1;
  index_->InsertRule(idx);

  Record r = world_.Make(9, {"male", "fever", "flu", "-"});
  const ProbeCoords pc = ProbeCoords::Compute(r, *world_.repo);
  std::vector<int> got = index_->SelectRules(r, pc, 3);
  EXPECT_NE(std::find(got.begin(), got.end(), idx), got.end());

  EXPECT_TRUE(index_->RemoveRule(idx));
  got = index_->SelectRules(r, pc, 3);
  EXPECT_EQ(std::find(got.begin(), got.end(), idx), got.end());
  EXPECT_FALSE(index_->RemoveRule(idx));
}

TEST(ProbeCoordsTest, MissingAttributesHaveNoCoords) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(1, {"male", "-", "flu", "-"});
  const ProbeCoords pc = ProbeCoords::Compute(r, *world.repo);
  EXPECT_FALSE(pc.missing(0));
  EXPECT_TRUE(pc.missing(1));
  EXPECT_FALSE(pc.missing(2));
  EXPECT_TRUE(pc.missing(3));
  EXPECT_DOUBLE_EQ(
      pc.main(2),
      JaccardDistance(r.values[2].tokens, world.repo->pivot_tokens(2, 0)));
}

}  // namespace
}  // namespace terids
