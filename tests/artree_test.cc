#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/artree.h"
#include "util/rng.h"

namespace terids {
namespace {

ArTreeEntry RandomEntry(Rng* rng, int dims, int64_t payload) {
  ArTreeEntry e;
  e.payload = payload;
  e.box.resize(dims);
  for (int d = 0; d < dims; ++d) {
    const double lo = rng->NextDouble();
    const double width = rng->NextDouble() * 0.2;
    e.box[d] = Interval::Of(lo, std::min(1.0, lo + width));
  }
  e.agg.dep_interval = Interval::Of(rng->NextDouble() * 0.5,
                                    0.5 + rng->NextDouble() * 0.5);
  e.agg.topic_mask = rng->NextU64() & 0xF;
  return e;
}

std::vector<Interval> RandomQueryBox(Rng* rng, int dims) {
  std::vector<Interval> box(dims);
  for (int d = 0; d < dims; ++d) {
    const double lo = rng->NextDouble();
    box[d] = Interval::Of(lo, std::min(1.0, lo + rng->NextDouble() * 0.4));
  }
  return box;
}

std::vector<int64_t> TreeRangeQuery(const ArTree& tree,
                                    const std::vector<Interval>& query) {
  std::vector<int64_t> got;
  tree.Query(
      [&query](const ArTree::NodeView& node) {
        for (size_t d = 0; d < query.size(); ++d) {
          if (!node.box[d].Overlaps(query[d])) {
            return false;
          }
        }
        return true;
      },
      [&got, &query](const ArTreeEntry& entry) {
        for (size_t d = 0; d < query.size(); ++d) {
          if (!entry.box[d].Overlaps(query[d])) {
            return;
          }
        }
        got.push_back(entry.payload);
      });
  std::sort(got.begin(), got.end());
  return got;
}

class ArTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArTreePropertyTest, BulkLoadedRangeQueryMatchesBruteForce) {
  Rng rng(GetParam());
  const int dims = 1 + static_cast<int>(rng.NextBounded(5));
  const int n = 20 + static_cast<int>(rng.NextBounded(300));
  std::vector<ArTreeEntry> entries;
  for (int i = 0; i < n; ++i) {
    entries.push_back(RandomEntry(&rng, dims, i));
  }
  ArTree tree(dims, 8);
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));

  for (int q = 0; q < 20; ++q) {
    const std::vector<Interval> query = RandomQueryBox(&rng, dims);
    std::vector<int64_t> want;
    for (const ArTreeEntry& e : entries) {
      bool hit = true;
      for (int d = 0; d < dims; ++d) {
        hit = hit && e.box[d].Overlaps(query[d]);
      }
      if (hit) want.push_back(e.payload);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(TreeRangeQuery(tree, query), want);
  }
}

TEST_P(ArTreePropertyTest, IncrementalInsertMatchesBruteForce) {
  Rng rng(GetParam() * 101 + 7);
  const int dims = 2;
  ArTree tree(dims, 4);
  std::vector<ArTreeEntry> entries;
  for (int i = 0; i < 150; ++i) {
    ArTreeEntry e = RandomEntry(&rng, dims, i);
    entries.push_back(e);
    tree.Insert(e);
  }
  for (int q = 0; q < 15; ++q) {
    const std::vector<Interval> query = RandomQueryBox(&rng, dims);
    std::vector<int64_t> want;
    for (const ArTreeEntry& e : entries) {
      if (e.box[0].Overlaps(query[0]) && e.box[1].Overlaps(query[1])) {
        want.push_back(e.payload);
      }
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(TreeRangeQuery(tree, query), want);
  }
}

TEST_P(ArTreePropertyTest, RemoveHidesEntries) {
  Rng rng(GetParam() * 13 + 5);
  const int dims = 3;
  std::vector<ArTreeEntry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back(RandomEntry(&rng, dims, i));
  }
  ArTree tree(dims, 8);
  tree.BulkLoad(entries);
  // Remove every third entry.
  std::vector<bool> removed(entries.size(), false);
  for (size_t i = 0; i < entries.size(); i += 3) {
    EXPECT_TRUE(tree.Remove(static_cast<int64_t>(i)));
    removed[i] = true;
  }
  EXPECT_FALSE(tree.Remove(0));  // Already gone.
  const std::vector<Interval> everything(dims, Interval::Of(0.0, 1.0));
  std::vector<int64_t> got = TreeRangeQuery(tree, everything);
  std::vector<int64_t> want;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (!removed[i]) want.push_back(static_cast<int64_t>(i));
  }
  EXPECT_EQ(got, want);
}

/// Aggregate soundness: every node's aggregates must cover the aggregates
/// of all live entries below it (otherwise aggregate-based pruning would be
/// unsound).
TEST_P(ArTreePropertyTest, NodeAggregatesCoverEntries) {
  Rng rng(GetParam() * 7 + 3);
  const int dims = 2;
  std::vector<ArTreeEntry> entries;
  for (int i = 0; i < 120; ++i) {
    entries.push_back(RandomEntry(&rng, dims, i));
  }
  ArTree tree(dims, 8);
  tree.BulkLoad(entries);
  for (int i = 0; i < 40; ++i) {
    tree.Insert(RandomEntry(&rng, dims, 1000 + i));
  }

  // Visit with an always-true predicate and check, per leaf, that the
  // node's aggregate covers each emitted entry (the visitor sees entries
  // only under nodes whose view we just inspected).
  std::vector<const ArTreeEntry*> seen;
  Interval root_dep = Interval::Empty();
  uint64_t root_mask = 0;
  tree.Query(
      [&](const ArTree::NodeView& node) {
        if (node.is_leaf) {
          root_dep.Union(node.agg.dep_interval);
          root_mask |= node.agg.topic_mask;
        }
        return true;
      },
      [&](const ArTreeEntry& entry) { seen.push_back(&entry); });
  for (const ArTreeEntry* e : seen) {
    EXPECT_LE(root_dep.lo, e->agg.dep_interval.lo);
    EXPECT_GE(root_dep.hi, e->agg.dep_interval.hi);
    EXPECT_EQ(e->agg.topic_mask & ~root_mask, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArTreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(ArTreeTest, EmptyTreeQueriesCleanly) {
  ArTree tree(3);
  int visits = 0;
  tree.Query([](const ArTree::NodeView&) { return true; },
             [&visits](const ArTreeEntry&) { ++visits; });
  EXPECT_EQ(visits, 0);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(NodeAggregatesTest, MergeUnionsEverything) {
  NodeAggregates a;
  a.topic_mask = 0b01;
  a.dep_interval = Interval::Of(0.1, 0.2);
  a.aux_dist = {{Interval::Of(0.0, 0.1)}};
  a.size_intervals = {Interval::Of(2, 4)};

  NodeAggregates b;
  b.topic_mask = 0b10;
  b.dep_interval = Interval::Of(0.3, 0.5);
  b.aux_dist = {{Interval::Of(0.4, 0.6), Interval::Of(0.2, 0.3)}};
  b.size_intervals = {Interval::Of(1, 9)};

  a.Merge(b);
  EXPECT_EQ(a.topic_mask, 0b11u);
  EXPECT_EQ(a.dep_interval, Interval::Of(0.1, 0.5));
  ASSERT_EQ(a.aux_dist[0].size(), 2u);
  EXPECT_EQ(a.aux_dist[0][0], Interval::Of(0.0, 0.6));
  EXPECT_EQ(a.aux_dist[0][1], Interval::Of(0.2, 0.3));
  EXPECT_EQ(a.size_intervals[0], Interval::Of(1, 9));
}

}  // namespace
}  // namespace terids
