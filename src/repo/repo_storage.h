#ifndef TERIDS_REPO_REPO_STORAGE_H_
#define TERIDS_REPO_REPO_STORAGE_H_

#include <string>
#include <string_view>
#include <vector>

#include "repo/attribute_domain.h"
#include "repo/repo_backend.h"
#include "text/token_set.h"
#include "tuple/record.h"
#include "util/interval.h"

namespace terids {

/// Pivot attribute values selected for one attribute: pivots[0] is the main
/// pivot (defines the metric-embedding coordinate), pivots[1..] are the
/// auxiliary pivots used only for aggregate pruning intervals (Section 5.1).
struct AttributePivots {
  std::vector<TokenSet> pivots;
  int count() const { return static_cast<int>(pivots.size()); }
};

/// Physical storage behind a Repository (DESIGN.md §8): per-attribute value
/// domains, the complete sample tuples with their ValueIds, and — once
/// pivots are attached — the pivot-distance tables and sorted main-pivot
/// coordinate lists that back the DR-index, the CDD-index geometry, and
/// imputation candidate retrieval.
///
/// The read path is the hot interface every engine layer goes through (via
/// the Repository facade). The write path exists for repository maintenance:
/// AddSample / the constraint imputer's RegisterValue (Section 5.5 dynamic
/// repository). Implementations must keep reads bit-identical across
/// backends: same ValueIds, same pivot distances, same coordinate-range scan
/// order — the equivalence sweep holds them to that.
class RepoStorage {
 public:
  virtual ~RepoStorage() = default;

  /// Stable backend identifier ("memory", "mmap").
  virtual const char* name() const = 0;

  // ---- Domains ---------------------------------------------------------

  [[nodiscard]] virtual size_t domain_size(int attr) const = 0;
  [[nodiscard]] virtual const TokenSet& value_tokens(int attr, ValueId id) const = 0;
  /// Display text of a domain value. Returned as a view so snapshot
  /// backends can serve it straight from the mapped text blob; it stays
  /// valid for the storage's lifetime.
  [[nodiscard]] virtual std::string_view value_text(int attr, ValueId id) const = 0;
  [[nodiscard]] virtual int value_frequency(int attr, ValueId id) const = 0;
  /// Id of an existing value of dom(attr) with this exact token set, or
  /// kInvalidValueId.
  [[nodiscard]] virtual ValueId FindValue(int attr, const TokenSet& tokens) const = 0;

  // ---- Samples ---------------------------------------------------------

  [[nodiscard]] virtual size_t num_samples() const = 0;
  [[nodiscard]] virtual const Record& sample(size_t i) const = 0;
  [[nodiscard]] virtual ValueId sample_value_id(size_t i, int attr) const = 0;

  // ---- Pivot geometry --------------------------------------------------

  [[nodiscard]] virtual bool has_pivots() const = 0;
  [[nodiscard]] virtual int num_pivots(int attr) const = 0;
  [[nodiscard]] virtual const TokenSet& pivot_tokens(int attr, int pivot_idx) const = 0;
  [[nodiscard]] virtual double pivot_distance(int attr, int pivot_idx,
                                ValueId vid) const = 0;
  /// Appends, in ascending (coordinate, ValueId) order, every domain value
  /// of `attr` whose main-pivot coordinate lies in [interval.lo,
  /// interval.hi]; both endpoints are inclusive hits. Empty intervals yield
  /// nothing.
  virtual void AppendValuesInCoordRange(int attr, const Interval& interval,
                                        std::vector<ValueId>* out) const = 0;

  // ---- Write path (repository maintenance, Section 5.5) ---------------

  /// Adds (or finds) a domain value; when pivots are attached, extends the
  /// pivot-distance tables and the sorted coordinate list incrementally.
  virtual ValueId RegisterValue(int attr, const TokenSet& tokens,
                                const std::string& text) = 0;
  virtual void BumpFrequency(int attr, ValueId id) = 0;
  /// Appends one complete sample whose per-attribute ValueIds were already
  /// registered. `vids` has one entry per attribute.
  virtual void AppendSample(const Record& record,
                            std::vector<ValueId> vids) = 0;
  /// Whether AttachPivots may be called (false for snapshot backends, whose
  /// pivot geometry is baked into the file at write time).
  [[nodiscard]] virtual bool SupportsAttachPivots() const = 0;
  virtual void AttachPivots(std::vector<AttributePivots> pivots) = 0;
};

}  // namespace terids

#endif  // TERIDS_REPO_REPO_STORAGE_H_
