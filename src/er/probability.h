#ifndef TERIDS_ER_PROBABILITY_H_
#define TERIDS_ER_PROBABILITY_H_

#include <vector>

#include "er/similarity.h"
#include "er/topic.h"
#include "tuple/imputed_tuple.h"

namespace terids {

/// Result of the exact TER-iDS probability refinement.
struct RefineResult {
  /// The accumulated probability. Exact when `early_pruned` and
  /// `early_accepted` are both false; otherwise a certified partial value.
  double probability = 0.0;
  /// True iff Theorem 4.4 terminated the enumeration early because even an
  /// optimistic completion could not exceed alpha.
  bool early_pruned = false;
  /// True iff enumeration stopped because the accumulated probability
  /// already exceeds alpha (the pair is certainly a match).
  bool early_accepted = false;
  /// Instance pairs actually evaluated.
  int pairs_evaluated = 0;
};

/// Computes Pr_TER-iDS(a, b) of Equation (2) by enumerating instance pairs,
/// with the instance-pair-level early termination of Theorem 4.4: after each
/// evaluated pair, if (accumulated) + (unprocessed mass) <= alpha the pair is
/// certified a non-match; if (accumulated) > alpha it is certified a match.
///
/// `a_topic` / `b_topic` carry the precomputed per-instance 𝜛 flags of the
/// two tuples under the query topic. With `signature_filter` each instance
/// pair's sim > gamma verdict goes through the signature-bounded kernel
/// (InstanceSimilarityExceeds), which may skip merges but never changes a
/// verdict — the result is bit-identical either way. `sig_counters`, when
/// non-null, accumulates the filter's saturation observability counters
/// (SigFilterCounters) across the evaluated instance pairs.
RefineResult RefineProbability(const ImputedTuple& a,
                               const TopicQuery::TupleTopic& a_topic,
                               const ImputedTuple& b,
                               const TopicQuery::TupleTopic& b_topic,
                               double gamma, double alpha,
                               bool signature_filter = true,
                               SigFilterCounters* sig_counters = nullptr);

/// Exact (never early-terminated) form, for tests, ground-truth
/// computation, and the unpruned baselines.
double ExactProbability(const ImputedTuple& a,
                        const TopicQuery::TupleTopic& a_topic,
                        const ImputedTuple& b,
                        const TopicQuery::TupleTopic& b_topic, double gamma,
                        bool signature_filter = true,
                        SigFilterCounters* sig_counters = nullptr);

}  // namespace terids

#endif  // TERIDS_ER_PROBABILITY_H_
