#include <gtest/gtest.h>

#include <limits>

#include <cmath>
#include <vector>

#include "util/interval.h"
#include "util/rng.h"
#include "util/status.h"

namespace terids {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("w must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: w must be positive");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FAILED_PRECONDITION: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::Ok();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(IntervalTest, DefaultIsEmpty) {
  Interval i;
  EXPECT_TRUE(i.empty());
  EXPECT_EQ(i.width(), 0.0);
}

TEST(IntervalTest, CoverGrows) {
  Interval i;
  i.Cover(0.5);
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.Contains(0.5));
  i.Cover(0.2);
  EXPECT_EQ(i.lo, 0.2);
  EXPECT_EQ(i.hi, 0.5);
}

TEST(IntervalTest, UnionWithEmptyIsNoOp) {
  Interval i = Interval::Of(0.1, 0.3);
  i.Union(Interval::Empty());
  EXPECT_EQ(i, Interval::Of(0.1, 0.3));
}

TEST(IntervalTest, OverlapsSemantics) {
  EXPECT_TRUE(Interval::Of(0, 1).Overlaps(Interval::Of(1, 2)));
  EXPECT_FALSE(Interval::Of(0, 1).Overlaps(Interval::Of(1.01, 2)));
  EXPECT_FALSE(Interval::Empty().Overlaps(Interval::Of(0, 1)));
}

TEST(IntervalTest, MinAbsDiffDisjoint) {
  EXPECT_DOUBLE_EQ(Interval::Of(0.7, 0.9).MinAbsDiff(Interval::Of(0.1, 0.3)),
                   0.4);
  EXPECT_DOUBLE_EQ(Interval::Of(0.1, 0.3).MinAbsDiff(Interval::Of(0.7, 0.9)),
                   0.4);
  EXPECT_DOUBLE_EQ(Interval::Of(0.1, 0.5).MinAbsDiff(Interval::Of(0.4, 0.9)),
                   0.0);
}

// Empty-interval semantics are contractual (see interval.h): CDD pruning
// consumes intervals that may never have been grown, and every predicate
// must degrade vacuously instead of leaking the sentinel bounds.
TEST(IntervalTest, EmptyIntervalSemanticsArePinnedDown) {
  const Interval empty = Interval::Empty();
  const double inf = std::numeric_limits<double>::infinity();

  EXPECT_FALSE(empty.Contains(0.0));
  EXPECT_FALSE(empty.Contains(-inf));
  EXPECT_FALSE(empty.Contains(inf));
  EXPECT_DOUBLE_EQ(empty.width(), 0.0);

  EXPECT_FALSE(empty.Overlaps(Interval::Of(0.0, 1.0)));
  EXPECT_FALSE(Interval::Of(0.0, 1.0).Overlaps(empty));
  EXPECT_FALSE(empty.Overlaps(empty));
}

TEST(IntervalTest, MinAbsDiffOfEmptyIsInfinity) {
  const Interval empty = Interval::Empty();
  const Interval unit = Interval::Of(0.25, 0.75);
  const double inf = std::numeric_limits<double>::infinity();

  EXPECT_EQ(empty.MinAbsDiff(unit), inf);
  EXPECT_EQ(unit.MinAbsDiff(empty), inf);
  EXPECT_EQ(empty.MinAbsDiff(empty), inf);
  // Regression: the old sentinel comparisons fell through to the overlap
  // branch for empty vs an interval unbounded on both ends, reporting
  // distance 0 ("touching") for a set with no points at all.
  const Interval everything = Interval::Of(-inf, inf);
  EXPECT_EQ(empty.MinAbsDiff(everything), inf);
  EXPECT_EQ(everything.MinAbsDiff(empty), inf);
  const Interval unbounded = Interval::Of(0.0, inf);
  EXPECT_EQ(empty.MinAbsDiff(unbounded), inf);
  EXPECT_EQ(unbounded.MinAbsDiff(empty), inf);
}

/// Property: MinAbsDiff is a true lower bound of |x - y| over the two
/// intervals, and it is attained.
TEST(IntervalTest, MinAbsDiffIsTightLowerBound) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    double a1 = rng.NextDouble(), a2 = rng.NextDouble();
    double b1 = rng.NextDouble(), b2 = rng.NextDouble();
    Interval a = Interval::Of(std::min(a1, a2), std::max(a1, a2));
    Interval b = Interval::Of(std::min(b1, b2), std::max(b1, b2));
    const double bound = a.MinAbsDiff(b);
    for (int i = 0; i <= 10; ++i) {
      const double x = a.lo + (a.hi - a.lo) * i / 10.0;
      for (int j = 0; j <= 10; ++j) {
        const double y = b.lo + (b.hi - b.lo) * j / 10.0;
        EXPECT_LE(bound, std::abs(x - y) + 1e-12);
      }
    }
    if (a.Overlaps(b)) {
      // Overlapping intervals attain |x - y| = 0 at any shared point.
      EXPECT_DOUBLE_EQ(bound, 0.0);
    } else {
      // Disjoint intervals attain the minimum at the facing endpoints.
      const double attained =
          a.lo > b.hi ? a.lo - b.hi : b.lo - a.hi;
      EXPECT_NEAR(bound, attained, 1e-12);
    }
  }
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 1.2) < 10) ++low;
  }
  // A uniform draw would put ~1% in the first 10 ranks; Zipf(1.2) puts far
  // more.
  EXPECT_GT(low, n / 10);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace terids
