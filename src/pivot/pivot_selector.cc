#include "pivot/pivot_selector.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/rng.h"

namespace terids {

PivotSelector::PivotSelector(const Repository* repo, PivotOptions options)
    : repo_(repo), options_(options) {
  TERIDS_CHECK(repo != nullptr);
  TERIDS_CHECK(options_.buckets >= 2);
  TERIDS_CHECK(options_.cnt_max >= 1);
}

double PivotSelector::Entropy(const std::vector<double>& coords, int buckets) {
  if (coords.empty()) {
    return 0.0;
  }
  std::vector<int> counts(buckets, 0);
  for (double c : coords) {
    int b = static_cast<int>(c * buckets);
    if (b >= buckets) b = buckets - 1;
    if (b < 0) b = 0;
    ++counts[b];
  }
  double h = 0.0;
  const double n = static_cast<double>(coords.size());
  for (int count : counts) {
    if (count == 0) continue;
    const double p = count / n;
    h -= p * std::log2(p);
  }
  return h;
}

double PivotSelector::JointEntropy(
    const std::vector<std::vector<double>>& coords, int buckets) {
  if (coords.empty() || coords[0].empty()) {
    return 0.0;
  }
  const size_t n = coords[0].size();
  std::unordered_map<uint64_t, int> counts;
  for (size_t i = 0; i < n; ++i) {
    uint64_t cell = 0;
    for (const std::vector<double>& list : coords) {
      TERIDS_CHECK(list.size() == n);
      int b = static_cast<int>(list[i] * buckets);
      if (b >= buckets) b = buckets - 1;
      if (b < 0) b = 0;
      cell = cell * static_cast<uint64_t>(buckets) + static_cast<uint64_t>(b);
    }
    ++counts[cell];
  }
  double h = 0.0;
  const double nd = static_cast<double>(n);
  for (const auto& [cell, count] : counts) {
    (void)cell;
    const double p = count / nd;
    h -= p * std::log2(p);
  }
  return h;
}

AttributePivots PivotSelector::SelectForAttribute(int attr) const {
  const size_t dom_size = repo_->domain_size(attr);
  AttributePivots result;
  if (dom_size == 0) {
    result.pivots.push_back(TokenSet());
    return result;
  }

  Rng rng(options_.seed + static_cast<uint64_t>(attr) * 1000003ULL);

  // Evaluation set: the domain values whose converted-coordinate spread the
  // entropy is estimated over.
  std::vector<ValueId> eval_set;
  if (options_.eval_samples <= 0 ||
      dom_size <= static_cast<size_t>(options_.eval_samples)) {
    for (ValueId v = 0; v < dom_size; ++v) eval_set.push_back(v);
  } else {
    for (int i = 0; i < options_.eval_samples; ++i) {
      eval_set.push_back(static_cast<ValueId>(rng.NextBounded(dom_size)));
    }
  }

  // Candidate pivots.
  std::vector<ValueId> candidates;
  if (options_.candidate_samples <= 0 ||
      dom_size <= static_cast<size_t>(options_.candidate_samples)) {
    for (ValueId v = 0; v < dom_size; ++v) candidates.push_back(v);
  } else {
    for (int i = 0; i < options_.candidate_samples; ++i) {
      candidates.push_back(static_cast<ValueId>(rng.NextBounded(dom_size)));
    }
  }

  // Coordinates of the eval set under each candidate pivot.
  std::vector<std::vector<double>> cand_coords(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    cand_coords[c].reserve(eval_set.size());
    const TokenSet& piv = repo_->value_tokens(attr, candidates[c]);
    for (ValueId v : eval_set) {
      cand_coords[c].push_back(
          JaccardDistance(repo_->value_tokens(attr, v), piv));
    }
  }

  // Greedy selection: first maximize single-pivot entropy; then add the
  // auxiliary pivot maximizing joint entropy until eMin or cntMax.
  std::vector<size_t> chosen;
  std::vector<std::vector<double>> chosen_coords;
  double best_h = -1.0;
  size_t best_c = 0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const double h = Entropy(cand_coords[c], options_.buckets);
    if (h > best_h) {
      best_h = h;
      best_c = c;
    }
  }
  chosen.push_back(best_c);
  chosen_coords.push_back(cand_coords[best_c]);
  double joint = best_h;

  while (joint < options_.min_entropy &&
         static_cast<int>(chosen.size()) < options_.cnt_max) {
    double best_joint = joint;
    size_t next = candidates.size();
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (std::find(chosen.begin(), chosen.end(), c) != chosen.end()) {
        continue;
      }
      chosen_coords.push_back(cand_coords[c]);
      const double h = JointEntropy(chosen_coords, options_.buckets);
      chosen_coords.pop_back();
      if (h > best_joint) {
        best_joint = h;
        next = c;
      }
    }
    if (next == candidates.size()) {
      break;  // No candidate improves the joint entropy.
    }
    chosen.push_back(next);
    chosen_coords.push_back(cand_coords[next]);
    joint = best_joint;
  }

  for (size_t c : chosen) {
    result.pivots.push_back(repo_->value_tokens(attr, candidates[c]));
  }
  return result;
}

std::vector<AttributePivots> PivotSelector::SelectAll() const {
  std::vector<AttributePivots> out;
  out.reserve(repo_->num_attributes());
  for (int x = 0; x < repo_->num_attributes(); ++x) {
    out.push_back(SelectForAttribute(x));
  }
  return out;
}

}  // namespace terids
