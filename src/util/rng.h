#ifndef TERIDS_UTIL_RNG_H_
#define TERIDS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace terids {

/// Deterministic pseudo-random number generator (xoshiro256** core with a
/// splitmix64 seeding stage). All data generation, rule-mining sampling, and
/// missing-attribute injection in the library route through this class so
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p);

  /// Approximately Zipf-distributed rank in [0, n) with exponent s. Used by
  /// the data generators to produce realistic skewed token frequencies.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffle of a vector of indices.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (uint64_t i = v->size() - 1; i > 0; --i) {
      uint64_t j = NextBounded(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace terids

#endif  // TERIDS_UTIL_RNG_H_
