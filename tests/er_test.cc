#include <gtest/gtest.h>

#include <algorithm>

#include "er/bounds.h"
#include "er/probability.h"
#include "er/pruning.h"
#include "er/similarity.h"
#include "er/topic.h"
#include "test_util.h"
#include "util/rng.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

TEST(SimilarityTest, RecordSimilaritySumsPerAttributeJaccard) {
  ToyWorld world = MakeHealthWorld();
  Record a = world.Make(1, {"male", "fever cough", "flu", "rest"});
  Record b = world.Make(2, {"male", "fever", "flu", "rest"});
  // gender 1 + symptom 0.5 + diagnosis 1 + treatment 1.
  EXPECT_DOUBLE_EQ(RecordSimilarity(a, b), 3.5);
}

TEST(SimilarityTest, MissingAttributesActAsEmptySets) {
  ToyWorld world = MakeHealthWorld();
  Record a = world.Make(1, {"male", "fever", "-", "rest"});
  Record b = world.Make(2, {"male", "fever", "flu", "rest"});
  EXPECT_DOUBLE_EQ(RecordSimilarity(a, b), 3.0);
}

TEST(TopicQueryTest, UnconstrainedMatchesEverything) {
  TopicQuery topic;
  EXPECT_TRUE(topic.IsUnconstrained());
  EXPECT_TRUE(topic.Matches(TokenSet()));
}

TEST(TopicQueryTest, MatchesKeywordTokens) {
  ToyWorld world = MakeHealthWorld();
  TopicQuery topic(*world.dict, {"diabetes"});
  Tokenizer tok(world.dict.get());
  EXPECT_TRUE(topic.Matches(tok.TokenizeFrozen("diagnosed with diabetes")));
  EXPECT_FALSE(topic.Matches(tok.TokenizeFrozen("flu and cough")));
}

TEST(TopicQueryTest, UnknownKeywordsNeverMatch) {
  ToyWorld world = MakeHealthWorld();
  TopicQuery topic(*world.dict, {"nonexistentword"});
  EXPECT_FALSE(topic.IsUnconstrained());
  Tokenizer tok(world.dict.get());
  EXPECT_FALSE(topic.Matches(tok.TokenizeFrozen("male fever diabetes")));
}

TEST(TopicQueryTest, ClassifyFlagsInstancesIndividually) {
  ToyWorld world = MakeHealthWorld();
  TopicQuery topic(*world.dict, {"diabetes"});
  Record r = world.Make(1, {"male", "blurred vision", "-", "drug therapy"});
  const AttributeDomain& dom = world.repo->domain(2);
  ValueId diabetes = kInvalidValueId;
  ValueId flu = kInvalidValueId;
  for (ValueId v = 0; v < dom.size(); ++v) {
    if (dom.text(v) == "diabetes") diabetes = v;
    if (dom.text(v) == "flu") flu = v;
  }
  ImputedTuple::ImputedAttr ia;
  ia.attr = 2;
  ia.candidates = {{diabetes, 0.6}, {flu, 0.4}};
  ImputedTuple t =
      ImputedTuple::FromImputation(r, world.repo.get(), {ia}, 8);
  TopicQuery::TupleTopic tt = topic.Classify(t);
  EXPECT_TRUE(tt.any);
  EXPECT_FALSE(tt.all);
  EXPECT_TRUE(tt.instance_matches[0]);   // diabetes instance
  EXPECT_FALSE(tt.instance_matches[1]);  // flu instance
  EXPECT_NE(tt.possible_mask, 0u);
}

// ---------------------------------------------------------------------
// Property tests: every bound must dominate the exact quantity it bounds.
// ---------------------------------------------------------------------

class BoundsPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  BoundsPropertyTest() : world_(MakeHealthWorld()) {}

  /// Random (possibly imputed) tuple over the toy repository.
  ImputedTuple RandomTuple(Rng* rng, int64_t rid) {
    const std::vector<std::vector<std::string>> pool = {
        {"male", "loss of weight", "diabetes", "drug therapy"},
        {"female", "fever cough", "flu", "rest"},
        {"male", "blurred vision", "diabetes", "dietary therapy"},
        {"female", "red eye shed tears", "conjunctivitis", "eye drop"},
        {"male", "fever poor appetite", "flu", "drink more"},
    };
    std::vector<std::string> texts = pool[rng->NextBounded(pool.size())];
    std::vector<ImputedTuple::ImputedAttr> imputed;
    // Randomly knock out one attribute and impute it with 1-4 candidates.
    if (rng->NextBool(0.7)) {
      const int attr = static_cast<int>(rng->NextBounded(4));
      texts[attr] = "-";
      const AttributeDomain& dom = world_.repo->domain(attr);
      ImputedTuple::ImputedAttr ia;
      ia.attr = attr;
      const int n = 1 + static_cast<int>(rng->NextBounded(4));
      double remaining = 1.0;
      for (int c = 0; c < n; ++c) {
        const double p = (c == n - 1) ? remaining : remaining * 0.5;
        ia.candidates.push_back(
            {static_cast<ValueId>(rng->NextBounded(dom.size())), p});
        remaining -= p;
      }
      // Dedup candidate vids (cross product requires distinct choices not
      // to collapse probabilities, but duplicates are legal; keep as-is).
      imputed.push_back(std::move(ia));
    }
    Record r = world_.Make(rid, texts);
    if (imputed.empty()) {
      return ImputedTuple::FromComplete(r, world_.repo.get());
    }
    return ImputedTuple::FromImputation(r, world_.repo.get(),
                                        std::move(imputed), 8);
  }

  ToyWorld world_;
};

TEST_P(BoundsPropertyTest, SimilarityUpperBoundsDominateAllInstancePairs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    ImputedTuple a = RandomTuple(&rng, 2 * trial);
    ImputedTuple b = RandomTuple(&rng, 2 * trial + 1);
    const double ub_size = UbSimTokenSize(a, b);
    const double ub_pivot = UbSimPivot(a, b);
    const double ub = UbSim(a, b);
    EXPECT_LE(ub, ub_size + 1e-12);
    EXPECT_LE(ub, ub_pivot + 1e-12);
    for (int m = 0; m < a.num_instances(); ++m) {
      for (int mp = 0; mp < b.num_instances(); ++mp) {
        const double sim = InstanceSimilarity(a, m, b, mp);
        EXPECT_LE(sim, ub_size + 1e-9) << "Lemma 4.1 violated";
        EXPECT_LE(sim, ub_pivot + 1e-9) << "Lemma 4.2 violated";
      }
    }
  }
}

TEST_P(BoundsPropertyTest, PaleyZygmundBoundDominatesExactProbability) {
  Rng rng(GetParam() * 97 + 11);
  TopicQuery topic;  // Unconstrained: bound must hold even for 𝜛 == true.
  for (int trial = 0; trial < 60; ++trial) {
    ImputedTuple a = RandomTuple(&rng, 2 * trial);
    ImputedTuple b = RandomTuple(&rng, 2 * trial + 1);
    TopicQuery::TupleTopic ta = topic.Classify(a);
    TopicQuery::TupleTopic tb = topic.Classify(b);
    for (double gamma : {1.0, 2.0, 2.5, 3.0, 3.5}) {
      const double ub = UbProbPaleyZygmund(a, b, gamma);
      const double exact = ExactProbability(a, ta, b, tb, gamma);
      EXPECT_GE(ub, exact - 1e-9)
          << "Lemma 4.3 violated at gamma=" << gamma;
    }
  }
}

TEST_P(BoundsPropertyTest, RefineAgreesWithExactWhenNotTerminatedEarly) {
  Rng rng(GetParam() * 31 + 7);
  TopicQuery topic;
  for (int trial = 0; trial < 60; ++trial) {
    ImputedTuple a = RandomTuple(&rng, 2 * trial);
    ImputedTuple b = RandomTuple(&rng, 2 * trial + 1);
    TopicQuery::TupleTopic ta = topic.Classify(a);
    TopicQuery::TupleTopic tb = topic.Classify(b);
    const double gamma = 2.0;
    const double alpha = 0.5;
    const double exact = ExactProbability(a, ta, b, tb, gamma);
    RefineResult refine = RefineProbability(a, ta, b, tb, gamma, alpha);
    // Theorem 4.4: early termination must never flip the alpha decision.
    EXPECT_EQ(refine.early_accepted || (!refine.early_pruned &&
                                        refine.probability > alpha),
              exact > alpha);
    if (!refine.early_accepted && !refine.early_pruned) {
      EXPECT_NEAR(refine.probability, exact, 1e-12);
    }
  }
}

TEST_P(BoundsPropertyTest, EvaluatePairNeverPrunesARealMatch) {
  Rng rng(GetParam() * 53 + 29);
  ToyWorld& world = world_;
  TopicQuery topic(*world.dict, {"diabetes", "flu"});
  PruneStats stats;
  for (int trial = 0; trial < 80; ++trial) {
    ImputedTuple a = RandomTuple(&rng, 2 * trial);
    ImputedTuple b = RandomTuple(&rng, 2 * trial + 1);
    TopicQuery::TupleTopic ta = topic.Classify(a);
    TopicQuery::TupleTopic tb = topic.Classify(b);
    const double gamma = 2.0;
    const double alpha = 0.4;
    const double exact = ExactProbability(a, ta, b, tb, gamma);
    const PairEvaluation eval = EvaluatePair(a, ta, b, tb, gamma, alpha);
    stats.Record(eval.outcome);
    EXPECT_EQ(eval.matched(), exact > alpha)
        << "pruning changed the decision (exact=" << exact << ")";
    if (eval.matched()) {
      EXPECT_GT(eval.probability, alpha);
    }
  }
  EXPECT_EQ(stats.total_pairs, 80u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RefineTest, TopicGatesProbability) {
  ToyWorld world = MakeHealthWorld();
  TopicQuery topic(*world.dict, {"conjunctivitis"});
  Record a = world.Make(1, {"male", "fever", "flu", "rest"});
  Record b = world.Make(2, {"male", "fever", "flu", "rest"});
  ImputedTuple ta = ImputedTuple::FromComplete(a, world.repo.get());
  ImputedTuple tb = ImputedTuple::FromComplete(b, world.repo.get());
  // Identical tuples (sim = 4) but no topical keyword: probability 0.
  EXPECT_DOUBLE_EQ(ExactProbability(ta, topic.Classify(ta), tb,
                                    topic.Classify(tb), 2.0),
                   0.0);
}

}  // namespace
}  // namespace terids
