#ifndef TERIDS_TEXT_SIMILARITY_KERNELS_H_
#define TERIDS_TEXT_SIMILARITY_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "text/token_dict.h"
#include "util/bits.h"

namespace terids {

/// Flat, allocation-free primitives behind every Jaccard evaluation: sorted
/// token spans (raw pointer + length, as stored by TokenArena), set
/// intersection (linear merge for balanced sizes, galloping for skewed
/// ones), and the hashed-bitmap signature whose popcount yields an O(1)
/// upper bound on intersection size. Signatures are width-parameterized
/// (64 / 128 / 256 bits, stored as `uint64_t words[bits/64]`, DESIGN.md
/// §11): wider bitmaps saturate later on long token sets, tightening the
/// bound. All kernels are exact or sound: the two intersection algorithms
/// return identical counts, and the signature bound is always >= the exact
/// intersection size at every width — it can only skip merges whose verdict
/// is already decided, never change one.

/// Spans whose larger side is at least this many times the smaller one are
/// intersected by galloping instead of the linear merge: the merge is
/// O(n + m) while galloping is O(n log m), which wins once m >> n.
inline constexpr size_t kGallopSkewRatio = 8;

/// The supported signature widths and their word counts. 64 is the PR-5
/// layout and the equivalence oracle; 128/256 trade 1-3 extra words per
/// range for a tighter bound on long token sets.
inline constexpr int kMaxSigBits = 256;
inline constexpr int kMaxSigWords = kMaxSigBits / 64;

inline constexpr bool ValidSigBits(int sig_bits) {
  return sig_bits == 64 || sig_bits == 128 || sig_bits == 256;
}
inline constexpr int SigWords(int sig_bits) { return sig_bits / 64; }

/// The one multiplicative-hash constant behind every signature bit, hoisted
/// so the kernel, the arena build, and the tests can never drift apart
/// (2^64 / phi — the Fibonacci hashing multiplier).
inline constexpr uint64_t kSigHashMul = UINT64_C(0x9E3779B97F4A7C15);

/// Bit index of one token in a width-`sig_bits` signature: the top
/// log2(sig_bits) bits of the multiplicative hash (shift 58 / 57 / 56 for
/// 64 / 128 / 256). Tokens are dense dictionary ids, so taking low bits
/// directly would alias consecutive ids into runs; the multiply spreads
/// them uniformly. Because the widths share one hash, the 64-bit index is
/// the 256-bit index >> 2: every narrower signature is an exact OR-
/// coarsening of the wider one (what makes saturation monotone in width).
inline int SignatureBit(Token t, int sig_bits) {
  const uint64_t h = static_cast<uint64_t>(t) * kSigHashMul;
  const int shift = sig_bits == 64 ? 58 : sig_bits == 128 ? 57 : 56;
  return static_cast<int>(h >> shift);
}
inline int SignatureBit(Token t) { return SignatureBit(t, 64); }

/// Builds the width-`sig_bits` hashed-bitmap signature of a sorted,
/// deduplicated token span into `out[0 .. SigWords(sig_bits))`.
inline void BuildTokenSignature(const Token* tokens, size_t n, int sig_bits,
                                uint64_t* out) {
  const int words = SigWords(sig_bits);
  for (int w = 0; w < words; ++w) {
    out[w] = 0;
  }
  for (size_t i = 0; i < n; ++i) {
    const int bit = SignatureBit(tokens[i], sig_bits);
    out[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

/// The 64-bit signature as a single word (the width-64 special case).
inline uint64_t TokenSignature(const Token* tokens, size_t n) {
  uint64_t sig = 0;
  BuildTokenSignature(tokens, n, 64, &sig);
  return sig;
}

/// |A ∩ B| by linear merge over two sorted spans (the seed algorithm).
[[nodiscard]] size_t IntersectLinear(const Token* a, size_t na, const Token* b, size_t nb);

/// |A ∩ B| by galloping (exponential + binary search) of the smaller span
/// into the larger one. Identical result to IntersectLinear; preferable
/// when the sizes are heavily skewed.
[[nodiscard]] size_t IntersectGallop(const Token* a, size_t na, const Token* b, size_t nb);

/// |A ∩ B| with automatic algorithm choice (kGallopSkewRatio).
[[nodiscard]] inline size_t IntersectSize(const Token* a, size_t na, const Token* b,
                            size_t nb) {
  const size_t small = std::min(na, nb);
  const size_t large = std::max(na, nb);
  if (small * kGallopSkewRatio < large) {
    return IntersectGallop(a, na, b, nb);
  }
  return IntersectLinear(a, na, b, nb);
}

/// The three popcounts one signature pair reduces to; every bound below is
/// pure arithmetic over them, so batched (SIMD) and per-pair (scalar) paths
/// share one definition and stay bit-identical.
struct SigPopCounts {
  int common = 0;  // popcount(sa & sb)
  int a = 0;       // popcount(sa)
  int b = 0;       // popcount(sb)
};

[[nodiscard]] inline SigPopCounts SigPopCount(const uint64_t* sa, const uint64_t* sb,
                                int words) {
  SigPopCounts p;
  for (int w = 0; w < words; ++w) {
    p.common += PopCount64(sa[w] & sb[w]);
    p.a += PopCount64(sa[w]);
    p.b += PopCount64(sb[w]);
  }
  return p;
}

/// Signature-based upper bound on |A ∩ B| from the popcounts and exact set
/// sizes. Any common token sets the same bit in both signatures, so
/// disjoint signatures prove an empty intersection outright. Otherwise,
/// let c = popcount(sa & sb) and d_A = popcount(sa): every bit set in sa
/// but not in sb is occupied by at least one token of A that cannot be in
/// B (B has no token hashing there), so at least d_A - c tokens of A are
/// outside the intersection and |A ∩ B| <= |A| - (d_A - c); symmetrically
/// for B. Both are also <= the trivial min(|A|, |B|) bound because
/// c <= d_A and c <= d_B.
[[nodiscard]] inline size_t SigIntersectionUpperBoundFromPops(size_t na, size_t nb,
                                                const SigPopCounts& p) {
  if (p.common == 0) {
    return 0;
  }
  const size_t common = static_cast<size_t>(p.common);
  const size_t ub_a = na - static_cast<size_t>(p.a) + common;
  const size_t ub_b = nb - static_cast<size_t>(p.b) + common;
  return std::min(ub_a, ub_b);
}

/// Upper bound on the Jaccard similarity of two sets from sizes +
/// popcounts alone. Jaccard = i / (|A| + |B| - i) is increasing in i, so
/// substituting the intersection upper bound is sound. Two empty sets have
/// similarity 1 by convention (mirrors JaccardSimilarity).
[[nodiscard]] inline double SigJaccardUpperBoundFromPops(size_t na, size_t nb,
                                           const SigPopCounts& p) {
  if (na == 0 && nb == 0) {
    return 1.0;
  }
  const size_t ub = SigIntersectionUpperBoundFromPops(na, nb, p);
  return static_cast<double>(ub) / static_cast<double>(na + nb - ub);
}

/// Width-parameterized bounds over multi-word signatures.
[[nodiscard]] inline size_t SigIntersectionUpperBound(size_t na, const uint64_t* sa,
                                        size_t nb, const uint64_t* sb,
                                        int words) {
  return SigIntersectionUpperBoundFromPops(na, nb, SigPopCount(sa, sb, words));
}
[[nodiscard]] inline double SigJaccardUpperBound(size_t na, const uint64_t* sa, size_t nb,
                                   const uint64_t* sb, int words) {
  return SigJaccardUpperBoundFromPops(na, nb, SigPopCount(sa, sb, words));
}

/// The single-word (width-64) forms the PR-5 call sites and tests use.
[[nodiscard]] inline size_t SigIntersectionUpperBound(size_t na, uint64_t sa, size_t nb,
                                        uint64_t sb) {
  return SigIntersectionUpperBound(na, &sa, nb, &sb, 1);
}
[[nodiscard]] inline double SigJaccardUpperBound(size_t na, uint64_t sa, size_t nb,
                                   uint64_t sb) {
  return SigJaccardUpperBound(na, &sa, nb, &sb, 1);
}

/// Exact Jaccard similarity of two sorted spans; bit-identical to
/// JaccardSimilarity over the equivalent TokenSets (same integer
/// intersection, same division).
[[nodiscard]] inline double JaccardFromSpans(const Token* a, size_t na, const Token* b,
                               size_t nb) {
  if (na == 0 && nb == 0) {
    return 1.0;
  }
  const size_t inter = IntersectSize(a, na, b, nb);
  const size_t uni = na + nb - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

// --- Batched candidate-list filtering (DESIGN.md §11) -----------------------

/// Computes the per-entry signature popcounts (popcount(a), popcount(b),
/// popcount(a & b)) for `entries` signature pairs laid out contiguously
/// (entry i occupies sig_a[i*words .. i*words+words)), dispatching to the
/// widest SIMD implementation the CPU supports — AVX2 on x86-64 (runtime
/// feature detection, no -mavx2 build flag required), NEON on aarch64 —
/// unless `force_scalar` or the TERIDS_SIMD=off environment override is
/// set. Integer popcounts only, so every implementation is bit-identical
/// to the portable scalar core.
void SigPopCountBatch(const uint64_t* sig_a, const uint64_t* sig_b,
                      size_t entries, int words, uint32_t* pa, uint32_t* pb,
                      uint32_t* pc, bool force_scalar = false);

/// The active SigPopCountBatch dispatch target: "avx2", "neon", or
/// "scalar" (resolved once at first use; TERIDS_SIMD=off forces scalar).
const char* SimdDispatchName();

/// One batched filter pass over a candidate list: `num_pairs` rows of `d`
/// attribute spans each, flattened row-major (lens at [row * d + k],
/// signature words at [(row * d + k) * SigWords(sig_bits)]). The SoA
/// layout mirrors the TokenArena's so gathering is a straight copy.
struct SigFilterBatch {
  size_t num_pairs = 0;
  int d = 0;
  int sig_bits = 64;
  const uint32_t* len_a = nullptr;
  const uint32_t* len_b = nullptr;
  const uint64_t* sig_a = nullptr;
  const uint64_t* sig_b = nullptr;
};

/// Runs the signature upper-bound pass over every pair of the batch in one
/// sweep: row i survives iff the per-attribute Jaccard bounds, summed in
/// attribute order exactly as InstanceSimilarityExceeds' pass 1 sums them,
/// exceed `gamma`. Non-survivors are rows pass 1 would certify as
/// sim <= gamma — provably merge-free. Sets bit i of `survivors` (caller-
/// allocated, (num_pairs + 63) / 64 words, zeroed here) and returns the
/// survivor count. The popcount sweep is SIMD-dispatched
/// (SigPopCountBatch); the double accumulation stays scalar per row in
/// every implementation, so the decision is bit-identical across scalar,
/// AVX2, and NEON.
[[nodiscard]] size_t SigFilterCandidates(const SigFilterBatch& batch, double gamma,
                           uint64_t* survivors);

}  // namespace terids

#endif  // TERIDS_TEXT_SIMILARITY_KERNELS_H_
