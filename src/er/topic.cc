#include "er/topic.h"

#include <algorithm>

namespace terids {

TopicQuery::TopicQuery(const TokenDict& dict,
                       const std::vector<std::string>& keywords) {
  unconstrained_ = keywords.empty();
  for (const std::string& kw : keywords) {
    Token t = dict.Find(kw);
    if (t != kInvalidToken) {
      keyword_tokens_.push_back(t);
    }
  }
  std::sort(keyword_tokens_.begin(), keyword_tokens_.end());
  keyword_tokens_.erase(
      std::unique(keyword_tokens_.begin(), keyword_tokens_.end()),
      keyword_tokens_.end());
}

bool TopicQuery::Matches(const TokenSet& tokens) const {
  if (unconstrained_) {
    return true;
  }
  for (Token t : keyword_tokens_) {
    if (tokens.Contains(t)) {
      return true;
    }
  }
  return false;
}

uint64_t TopicQuery::MaskOf(const TokenSet& tokens) const {
  uint64_t mask = 0;
  for (size_t i = 0; i < keyword_tokens_.size(); ++i) {
    if (tokens.Contains(keyword_tokens_[i])) {
      mask |= (1ULL << (i % 64));
    }
  }
  return mask;
}

TopicQuery::TupleTopic TopicQuery::Classify(const ImputedTuple& tuple) const {
  TupleTopic result;
  const int d = tuple.num_attributes();
  result.instance_matches.assign(tuple.num_instances(), false);
  if (unconstrained_) {
    result.instance_matches.assign(tuple.num_instances(), true);
    result.any = true;
    result.all = true;
    result.possible_mask = ~0ULL;
    return result;
  }
  result.all = tuple.num_instances() > 0;
  for (int m = 0; m < tuple.num_instances(); ++m) {
    bool matched = false;
    for (int k = 0; k < d; ++k) {
      const TokenSet& tokens = tuple.instance_tokens(m, k);
      const uint64_t mask = MaskOf(tokens);
      if (mask != 0) {
        result.possible_mask |= mask;
        matched = true;
      }
    }
    result.instance_matches[m] = matched;
    result.any = result.any || matched;
    result.all = result.all && matched;
  }
  return result;
}

}  // namespace terids
