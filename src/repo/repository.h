#ifndef TERIDS_REPO_REPOSITORY_H_
#define TERIDS_REPO_REPOSITORY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/token_dict.h"
#include "text/token_set.h"
#include "tuple/record.h"
#include "tuple/schema.h"
#include "util/interval.h"
#include "util/status.h"

namespace terids {

/// Identifier of a distinct attribute value inside an AttributeDomain.
using ValueId = uint32_t;
inline constexpr ValueId kInvalidValueId = static_cast<ValueId>(-1);

/// The domain dom(A_x) of one attribute: all distinct values observed in the
/// data repository R, deduplicated by token set. Imputation candidates are
/// always ValueIds into a domain (Section 3).
class AttributeDomain {
 public:
  AttributeDomain() = default;

  /// Adds (or finds) a value; returns its id. `text` is kept for display.
  ValueId FindOrAdd(const TokenSet& tokens, const std::string& text);

  /// Id of an existing value with this exact token set, or kInvalidValueId.
  ValueId Find(const TokenSet& tokens) const;

  size_t size() const { return values_.size(); }
  const TokenSet& tokens(ValueId id) const;
  const std::string& text(ValueId id) const;

  /// Number of repository samples carrying this value (editing-rule mining
  /// uses this to pick frequent constants).
  int frequency(ValueId id) const;
  void BumpFrequency(ValueId id) { ++frequencies_[id]; }

 private:
  static uint64_t HashTokens(const TokenSet& tokens);

  std::vector<TokenSet> values_;
  std::vector<std::string> texts_;
  std::vector<int> frequencies_;
  std::unordered_multimap<uint64_t, ValueId> by_hash_;
};

/// Pivot attribute values selected for one attribute: pivots[0] is the main
/// pivot (defines the metric-embedding coordinate), pivots[1..] are the
/// auxiliary pivots used only for aggregate pruning intervals (Section 5.1).
struct AttributePivots {
  std::vector<TokenSet> pivots;
  int count() const { return static_cast<int>(pivots.size()); }
};

/// The static complete data repository R (Section 2.2).
///
/// Holds complete sample tuples, per-attribute domains, and — once pivots
/// are attached — precomputed pivot-distance tables that back the DR-index,
/// the CDD-index constraint geometry, and imputation candidate retrieval.
class Repository {
 public:
  Repository(const Schema* schema, const TokenDict* dict);

  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;
  Repository(Repository&&) = default;
  Repository& operator=(Repository&&) = default;

  /// Adds a complete sample tuple. Returns InvalidArgument if the record has
  /// missing attributes or the wrong arity. May be called after
  /// AttachPivots() (dynamic repository, Section 5.5): pivot-distance
  /// tables are extended incrementally for any new domain values.
  Status AddSample(const Record& record);

  /// Registers a value in dom(`attr`) without adding a sample (used by the
  /// constraint-based imputer, whose candidates come from the stream rather
  /// than from R). Extends pivot tables if pivots are attached.
  ValueId RegisterValue(int attr, const TokenSet& tokens,
                        const std::string& text);

  const Schema& schema() const { return *schema_; }
  const TokenDict& dict() const { return *dict_; }
  int num_attributes() const { return schema_->num_attributes(); }
  size_t num_samples() const { return samples_.size(); }

  const Record& sample(size_t i) const { return samples_[i]; }
  /// ValueId of sample i's attribute x within dom(A_x).
  ValueId sample_value_id(size_t i, int attr) const;

  const AttributeDomain& domain(int attr) const;
  AttributeDomain& mutable_domain(int attr);

  // ---- Pivot machinery -----------------------------------------------

  /// Installs pivots and precomputes, for every attribute x, pivot a, and
  /// domain value v: dist(v, piv_a[A_x]). Also builds the sorted
  /// (main-pivot-coordinate, ValueId) lists used for candidate retrieval.
  void AttachPivots(std::vector<AttributePivots> pivots);

  bool has_pivots() const { return !pivots_.empty(); }
  int num_pivots(int attr) const;
  const TokenSet& pivot_tokens(int attr, int pivot_idx) const;

  /// dist(domain value `vid` of `attr`, pivot `pivot_idx` of `attr`).
  double pivot_distance(int attr, int pivot_idx, ValueId vid) const;

  /// Main-pivot coordinate of a domain value (pivot_distance with pivot 0).
  double coord(int attr, ValueId vid) const {
    return pivot_distance(attr, 0, vid);
  }

  /// All domain values of `attr` whose main-pivot coordinate lies in
  /// [coord_interval.lo, coord_interval.hi]. This is the necessary-condition
  /// filter |coord(v) - coord(u)| <= eps used before exact verification.
  std::vector<ValueId> ValuesInCoordRange(int attr,
                                          const Interval& coord_interval) const;

 private:
  const Schema* schema_;
  const TokenDict* dict_;
  std::vector<Record> samples_;
  // sample_vids_[i][x] = ValueId of sample i's attribute x.
  std::vector<std::vector<ValueId>> sample_vids_;
  std::vector<AttributeDomain> domains_;

  std::vector<AttributePivots> pivots_;
  // pivot_dists_[x][a][vid] = dist(dom value vid, pivot a of attr x).
  std::vector<std::vector<std::vector<double>>> pivot_dists_;
  // sorted_coords_[x] = (main-pivot coord, vid) pairs sorted by coord.
  std::vector<std::vector<std::pair<double, ValueId>>> sorted_coords_;
};

}  // namespace terids

#endif  // TERIDS_REPO_REPOSITORY_H_
