#include "synopsis/er_grid.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace terids {

ErGrid::ErGrid(int dims, double cell_width)
    : dims_(dims), cell_width_(cell_width) {
  TERIDS_CHECK(dims >= 1);
  TERIDS_CHECK(cell_width > 0.0);
}

ErGrid::CellKey ErGrid::KeyOf(const std::vector<int32_t>& coords) const {
  // Coordinates are small non-negative cell indices (coord/width in [0,
  // ~1/width]); mix them with a 64-bit polynomial hash.
  uint64_t h = 1469598103934665603ULL;
  for (int32_t c : coords) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<ErGrid::CellKey> ErGrid::CellsOf(const ImputedTuple& tuple) const {
  std::vector<CellKey> keys;
  std::vector<int32_t> coords(dims_);
  for (int m = 0; m < tuple.num_instances(); ++m) {
    for (int k = 0; k < dims_; ++k) {
      coords[k] = static_cast<int32_t>(
          std::floor(tuple.instance_coord(m, k) / cell_width_));
    }
    keys.push_back(KeyOf(coords));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

void ErGrid::AddMember(Cell* cell, const WindowTuple* wt) const {
  cell->members.push_back(wt);
  cell->topic_mask |= wt->topic.possible_mask;
  cell->any_topic = cell->any_topic || wt->topic.any;
  if (cell->bounds.empty()) {
    cell->bounds.assign(dims_, Interval::Empty());
    cell->size_bounds.assign(dims_, Interval::Empty());
  }
  for (int k = 0; k < dims_; ++k) {
    cell->bounds[k].Union(wt->tuple->pivot_dist_interval(k, 0));
    cell->size_bounds[k].Union(wt->tuple->token_size_interval(k));
  }
}

void ErGrid::RebuildCell(Cell* cell) const {
  std::vector<const WindowTuple*> members = std::move(cell->members);
  *cell = Cell();
  for (const WindowTuple* wt : members) {
    AddMember(cell, wt);
  }
}

void ErGrid::Insert(const WindowTuple* wt) {
  TERIDS_CHECK(wt != nullptr);
  const int64_t rid = wt->rid();
  TERIDS_CHECK(tuple_cells_.count(rid) == 0);
  std::vector<CellKey> keys = CellsOf(*wt->tuple);
  for (CellKey key : keys) {
    AddMember(&cells_[key], wt);
  }
  tuple_cells_.emplace(rid, std::move(keys));
}

bool ErGrid::Remove(const WindowTuple* wt) {
  TERIDS_CHECK(wt != nullptr);
  auto it = tuple_cells_.find(wt->rid());
  if (it == tuple_cells_.end()) {
    return false;
  }
  for (CellKey key : it->second) {
    auto cit = cells_.find(key);
    TERIDS_CHECK(cit != cells_.end());
    Cell& cell = cit->second;
    cell.members.erase(
        std::remove(cell.members.begin(), cell.members.end(), wt),
        cell.members.end());
    if (cell.members.empty()) {
      cells_.erase(cit);
    } else {
      RebuildCell(&cell);
    }
  }
  tuple_cells_.erase(it);
  return true;
}

ErGrid::CandidateResult ErGrid::Candidates(const WindowTuple& probe,
                                           double gamma,
                                           bool topic_constrained) const {
  CandidateResult result;
  const ImputedTuple& q = *probe.tuple;
  const double dist_budget = static_cast<double>(dims_) - gamma;

  // Probe per-dimension coordinate intervals (main pivot).
  std::vector<Interval> q_bounds(dims_);
  for (int k = 0; k < dims_; ++k) {
    q_bounds[k] = q.pivot_dist_interval(k, 0);
  }

  // State per encountered tuple: 0 = topic-pruned, 1 = sim-pruned,
  // 2 = candidate. Upgrades monotonically across cells.
  std::unordered_map<int64_t, int> state;

  for (const auto& [key, cell] : cells_) {
    (void)key;
    ++result.cells_visited;

    // Cell-level topic pruning (Theorem 4.1): if the probe can never be
    // topical and no member of this cell can be topical, every pair with
    // this cell is out.
    const bool cell_topic_pass =
        !topic_constrained || probe.topic.any || cell.any_topic;

    // Cell-level distance lower bound (Lemma 4.2 with the cell's bounds).
    double lb_dist = 0.0;
    for (int k = 0; k < dims_ && lb_dist < dist_budget; ++k) {
      lb_dist += q_bounds[k].MinAbsDiff(cell.bounds[k]);
    }
    const bool cell_sim_pass = lb_dist < dist_budget;

    if (cell_topic_pass && !cell_sim_pass) {
      ++result.cells_pruned;
    }

    for (const WindowTuple* member : cell.members) {
      if (member->stream_id() == probe.stream_id() ||
          member->rid() == probe.rid()) {
        continue;
      }
      int verdict;
      if (topic_constrained && !probe.topic.any && !member->topic.any) {
        verdict = 0;  // Topic-pruned regardless of geometry.
      } else if (!cell_sim_pass) {
        verdict = 1;
      } else {
        verdict = 2;
      }
      auto [it, inserted] = state.emplace(member->rid(), verdict);
      const int prev = inserted ? -1 : it->second;
      if (verdict > it->second) {
        it->second = verdict;
      }
      // Emit exactly once, on the first transition to candidate status.
      if (verdict == 2 && prev != 2) {
        result.candidates.push_back(member);
      }
    }
  }

  for (const auto& [rid, verdict] : state) {
    (void)rid;
    if (verdict == 0) {
      ++result.topic_pruned;
    } else if (verdict == 1) {
      ++result.sim_pruned;
    }
  }
  return result;
}

}  // namespace terids
