#ifndef TERIDS_ER_PRUNING_H_
#define TERIDS_ER_PRUNING_H_

#include <cstdint>

#include "er/topic.h"
#include "tuple/imputed_tuple.h"

namespace terids {

/// Outcome of evaluating one candidate tuple pair.
enum class PairOutcome {
  kTopicPruned,     // Theorem 4.1
  kSimUbPruned,     // Theorem 4.2 (Lemmas 4.1 / 4.2)
  kProbUbPruned,    // Theorem 4.3 (Lemma 4.3)
  kInstancePruned,  // Theorem 4.4 early termination below alpha
  kRefuted,         // fully refined, probability <= alpha
  kMatched,         // probability > alpha
  /// Degrade-mode only (EvaluatePairBounds, DESIGN.md §13): none of the
  /// cheap bounds decided the pair and exact refinement was skipped under
  /// overload. Explicitly unresolved — not a refute, never a match.
  kDeferred,
};

/// Per-strategy pruning counters, reported as the "pruning power" of
/// Figure 4. Counters are at tuple-pair granularity and strategies are
/// applied in the paper's order: topic keyword (Theorem 4.1), similarity
/// upper bound (Theorem 4.2), probability upper bound (Theorem 4.3),
/// instance-pair-level (Theorem 4.4).
struct PruneStats {
  uint64_t total_pairs = 0;
  uint64_t topic_pruned = 0;
  uint64_t sim_ub_pruned = 0;
  uint64_t prob_ub_pruned = 0;
  uint64_t instance_pruned = 0;
  /// Pairs that survived all pruning and were fully refined.
  uint64_t refined = 0;
  uint64_t matched = 0;
  /// Signature-filter observability (SigFilterCounters, DESIGN.md §11):
  /// probes inspected by the popcount pass, how many were saturated (> 75%
  /// of bits set — the regime where the bound loosens), and how many
  /// instance pairs the pass certified merge-free. Unlike every counter
  /// above these are cost-side diagnostics, not outcome counts: saturated /
  /// rejects legitimately vary with EngineConfig::sig_width (probes does
  /// not), and all three are zero with the filter off, so the equivalence
  /// sweep's stats comparison deliberately excludes them.
  uint64_t sig_probes = 0;
  uint64_t sig_saturated = 0;
  uint64_t sig_rejects = 0;
  /// Pairs left undecided by degrade-mode bound-only evaluation (DESIGN.md
  /// §13). Always zero outside overload degradation, so the equivalence
  /// sweep's outcome comparison keeps it (a degraded run is *supposed* to
  /// differ, and visibly so).
  uint64_t deferred = 0;

  void Add(const PruneStats& other) {
    total_pairs += other.total_pairs;
    topic_pruned += other.topic_pruned;
    sim_ub_pruned += other.sim_ub_pruned;
    prob_ub_pruned += other.prob_ub_pruned;
    instance_pruned += other.instance_pruned;
    refined += other.refined;
    matched += other.matched;
    sig_probes += other.sig_probes;
    sig_saturated += other.sig_saturated;
    sig_rejects += other.sig_rejects;
    deferred += other.deferred;
  }

  /// Folds one pair evaluation into the counters. This is the only way the
  /// pipeline mutates stats: evaluation itself is stateless (EvaluatePair
  /// returns a value), so callers — including parallel refinement workers'
  /// consumers — thread their own accumulator explicitly.
  void Record(PairOutcome outcome) {
    ++total_pairs;
    switch (outcome) {
      case PairOutcome::kTopicPruned:
        ++topic_pruned;
        break;
      case PairOutcome::kSimUbPruned:
        ++sim_ub_pruned;
        break;
      case PairOutcome::kProbUbPruned:
        ++prob_ub_pruned;
        break;
      case PairOutcome::kInstancePruned:
        ++instance_pruned;
        break;
      case PairOutcome::kRefuted:
        ++refined;
        break;
      case PairOutcome::kMatched:
        ++refined;
        ++matched;
        break;
      case PairOutcome::kDeferred:
        ++deferred;
        break;
    }
  }

  double PowerOf(uint64_t count) const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(count) / static_cast<double>(total_pairs);
  }
  double TotalPower() const {
    return PowerOf(topic_pruned + sim_ub_pruned + prob_ub_pruned +
                   instance_pruned);
  }
  /// Fraction (in percent) of signature probes that were saturated — the
  /// production-visible signal that the configured sig_width is too narrow
  /// for the workload's token-set lengths.
  double SigSaturatedPct() const {
    return sig_probes == 0 ? 0.0
                           : 100.0 * static_cast<double>(sig_saturated) /
                                 static_cast<double>(sig_probes);
  }
};

/// Value result of one pair evaluation: the cascade outcome plus, for a
/// match, the (possibly partial, see RefineResult) probability.
struct PairEvaluation {
  PairOutcome outcome = PairOutcome::kRefuted;
  /// Meaningful only when `outcome == kMatched`.
  double probability = 0.0;
  /// Signature-filter observability for this pair (folded into PruneStats'
  /// sig_* counters by the pipeline); all zero when the filter is off or
  /// the cascade pruned the pair before refinement.
  uint64_t sig_probes = 0;
  uint64_t sig_saturated = 0;
  uint64_t sig_rejects = 0;

  bool matched() const { return outcome == PairOutcome::kMatched; }
};

/// Applies the four pruning strategies in the paper's order and, if none
/// fires, refines the exact probability. Pure function of its arguments —
/// no shared mutable state — so concurrent calls on distinct or identical
/// pairs are safe; callers fold the returned evaluation into their own
/// PruneStats via PruneStats::Record. `signature_filter` routes the
/// refinement's instance-level verdicts through the signature-bounded
/// Jaccard kernel; it skips merges only, so the outcome (and therefore
/// every PruneStats counter) is identical with it on or off.
PairEvaluation EvaluatePair(const ImputedTuple& a,
                            const TopicQuery::TupleTopic& a_topic,
                            const ImputedTuple& b,
                            const TopicQuery::TupleTopic& b_topic,
                            double gamma, double alpha,
                            bool signature_filter = true);

/// Degrade-mode evaluation (DESIGN.md §13): only the merge-free prefix of
/// the cascade runs — the Theorem 4.1 topic kill, the Theorem 4.2
/// similarity upper bound, the Theorem 4.3 probability bound, and, for
/// single-instance pairs, the signature-only Jaccard upper bound of
/// DESIGN.md §11 summed across attributes. No token merge and no exact
/// refinement ever execute, so the cost per pair is O(d · sig_words). Every
/// prune it reports is sound (the same bound EvaluatePair would have
/// applied); pairs none of the bounds decides come back as
/// PairOutcome::kDeferred — explicitly unresolved, never silently refuted
/// and never matched. Pure function, safe to call concurrently.
PairEvaluation EvaluatePairBounds(const ImputedTuple& a,
                                  const TopicQuery::TupleTopic& a_topic,
                                  const ImputedTuple& b,
                                  const TopicQuery::TupleTopic& b_topic,
                                  double gamma, double alpha);

}  // namespace terids

#endif  // TERIDS_ER_PRUNING_H_
