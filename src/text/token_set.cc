#include "text/token_set.h"

#include <algorithm>

namespace terids {

TokenSet TokenSet::FromTokens(std::vector<Token> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  TokenSet set;
  set.tokens_ = std::move(tokens);
  return set;
}

bool TokenSet::Contains(Token t) const {
  return std::binary_search(tokens_.begin(), tokens_.end(), t);
}

size_t TokenSet::IntersectionSize(const TokenSet& other) const {
  const std::vector<Token>& a = tokens_;
  const std::vector<Token>& b = other.tokens_;
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double JaccardSimilarity(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  const size_t inter = a.IntersectionSize(b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardDistance(const TokenSet& a, const TokenSet& b) {
  return 1.0 - JaccardSimilarity(a, b);
}

}  // namespace terids
