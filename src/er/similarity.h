#ifndef TERIDS_ER_SIMILARITY_H_
#define TERIDS_ER_SIMILARITY_H_

#include "tuple/imputed_tuple.h"
#include "tuple/record.h"

namespace terids {

/// The ER similarity function of Definition 5: the sum over all d
/// attributes of the per-attribute Jaccard similarities. Range [0, d].
double RecordSimilarity(const Record& a, const Record& b);

/// Definition 5 between two materialized instances of imputed tuples,
/// computed over the tuples' flat token-arena views.
double InstanceSimilarity(const ImputedTuple& a, int inst_a,
                          const ImputedTuple& b, int inst_b);

/// Observability counters for the signature filter pass (PruneStats'
/// sig_* fields; DESIGN.md §11). `probes` counts signatures inspected by
/// pass 1 (two per attribute per filtered instance pair) — invariant
/// across widths and execution modes, because the filter never changes
/// which instance pairs are visited. `saturated` counts probed signatures
/// with more than 75% of their bits set (the regime where the popcount
/// bound goes loose); `rejects` counts instance pairs pass 1 certified
/// merge-free. Both depend on the configured width — that is the point:
/// they are how a production run observes whether its width is wide
/// enough — so they are deliberately excluded from the equivalence
/// sweep's stats comparison.
struct SigFilterCounters {
  uint64_t probes = 0;
  uint64_t saturated = 0;
  uint64_t rejects = 0;
};

/// The refinement hot-path kernel: decides InstanceSimilarity(a, b) > gamma
/// without necessarily running any merge. With `signature_filter`, the
/// per-attribute signature Jaccard upper bounds are summed first — if even
/// the bound cannot exceed gamma the pair is rejected in O(d) popcounts
/// over the tuples' configured signature width — and the exact
/// per-attribute merges that do run terminate early once the accumulated
/// exact sum either exceeds gamma or provably cannot. The returned verdict
/// is always exactly `InstanceSimilarity(...) > gamma` at every width:
/// bounds only skip work whose outcome is decided, never change it.
/// `counters`, when non-null and the filter runs, accumulates the
/// saturation observability counters above.
bool InstanceSimilarityExceeds(const ImputedTuple& a, int inst_a,
                               const ImputedTuple& b, int inst_b, double gamma,
                               bool signature_filter,
                               SigFilterCounters* counters = nullptr);

/// The equivalent distance form used by the pivot bounds: dist(a, b) =
/// d - sim(a, b) = sum of per-attribute Jaccard distances.
double InstanceDistance(const ImputedTuple& a, int inst_a,
                        const ImputedTuple& b, int inst_b);

/// Similarity for heterogeneous schemas (Section 2.3's discussion): the
/// Jaccard similarity of the union token sets T(r) and T(r') over all
/// attributes. Range [0, 1]; missing attributes contribute nothing. The
/// Record overload unions into thread-local scratch (no per-call
/// allocation); the ImputedTuple overload reads the unions cached in the
/// tuples' token arenas.
double HeterogeneousRecordSimilarity(const Record& a, const Record& b);
double HeterogeneousRecordSimilarity(const ImputedTuple& a,
                                     const ImputedTuple& b);

}  // namespace terids

#endif  // TERIDS_ER_SIMILARITY_H_
