// Unit tests of the src/exec subsystem: the fixed-size ThreadPool and the
// RefinementExecutor's determinism contract (parallel evaluation must be
// indistinguishable from the sequential pair loop).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "er/probability.h"
#include "er/pruning.h"
#include "er/topic.h"
#include "exec/refinement_executor.h"
#include "exec/thread_pool.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

TEST(ThreadPoolTest, InlineWhenConcurrencyIsOne) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&](int64_t i) { order.push_back(i); });
  // Single-threaded execution is strictly in task order on the caller.
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(round, [&](int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), static_cast<int64_t>(round) * (round - 1) / 2);
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeTaskCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

class RefinementExecutorTest : public ::testing::Test {
 protected:
  RefinementExecutorTest() : world_(MakeHealthWorld()) {}

  /// Window tuple over a complete toy record.
  std::shared_ptr<WindowTuple> MakeTuple(int64_t rid,
                                         const std::vector<std::string>& texts,
                                         const TopicQuery& topic,
                                         int sig_bits = 64) {
    auto wt = std::make_shared<WindowTuple>();
    wt->tuple = std::make_shared<const ImputedTuple>(ImputedTuple::FromComplete(
        world_.Make(rid, texts), world_.repo.get(), sig_bits));
    wt->topic = topic.Classify(*wt->tuple);
    return wt;
  }

  ToyWorld world_;
};

TEST_F(RefinementExecutorTest, ParallelEqualsSequentialOnBothCascades) {
  TopicQuery topic(*world_.dict, {"diabetes", "flu"});
  // A probe against a spread of candidates: exact duplicates (matches),
  // near misses, topic-less tuples (topic-pruned), disjoint tuples
  // (similarity-pruned).
  std::vector<std::vector<std::string>> texts = {
      {"male", "fever cough", "flu", "drink more"},
      {"male", "fever cough headache", "flu", "drink more"},
      {"female", "red eye itchy", "conjunctivitis", "eye drop"},
      {"male", "loss of weight", "diabetes", "dietary therapy"},
      {"female", "fever low spirit", "pneumonia", "antibiotics"},
  };
  // Every width routes the parallel Run through the batched signature
  // prefilter (heavy/light placement); the evaluations must nevertheless
  // be bit-identical to the sequential executor's, including the sig_*
  // observability counters (Evaluate is pure, placement changes nothing).
  for (const int sig_bits : {64, 128, 256}) {
    std::shared_ptr<WindowTuple> probe = MakeTuple(
        1, {"male", "fever cough", "flu", "drink more"}, topic, sig_bits);
    std::vector<std::shared_ptr<WindowTuple>> cands;
    std::vector<RefinementExecutor::Task> tasks;
    for (size_t i = 0; i < texts.size(); ++i) {
      for (int rep = 0; rep < 13; ++rep) {  // enough tasks to shard
        cands.push_back(MakeTuple(static_cast<int64_t>(100 + cands.size()),
                                  texts[i], topic, sig_bits));
        tasks.push_back(
            {probe->tuple.get(), &probe->topic, cands.back().get()});
      }
    }

    for (bool use_prunings : {true, false}) {
      for (bool signature_filter : {true, false}) {
        RefinementExecutor sequential(1);
        RefinementExecutor parallel(4);
        std::vector<PairEvaluation> seq_evals;
        std::vector<PairEvaluation> par_evals;
        sequential.Run(tasks, use_prunings, signature_filter, 2.0, 0.4,
                       &seq_evals);
        parallel.Run(tasks, use_prunings, signature_filter, 2.0, 0.4,
                     &par_evals);
        ASSERT_EQ(seq_evals.size(), tasks.size());
        ASSERT_EQ(par_evals.size(), tasks.size());
        PruneStats seq_stats;
        PruneStats par_stats;
        for (size_t i = 0; i < tasks.size(); ++i) {
          EXPECT_EQ(par_evals[i].outcome, seq_evals[i].outcome)
              << "task " << i << " width " << sig_bits;
          EXPECT_DOUBLE_EQ(par_evals[i].probability, seq_evals[i].probability)
              << "task " << i << " width " << sig_bits;
          EXPECT_EQ(par_evals[i].sig_probes, seq_evals[i].sig_probes)
              << "task " << i << " width " << sig_bits;
          EXPECT_EQ(par_evals[i].sig_saturated, seq_evals[i].sig_saturated)
              << "task " << i << " width " << sig_bits;
          EXPECT_EQ(par_evals[i].sig_rejects, seq_evals[i].sig_rejects)
              << "task " << i << " width " << sig_bits;
          seq_stats.Record(seq_evals[i].outcome);
          par_stats.Record(par_evals[i].outcome);
        }
        EXPECT_EQ(seq_stats.total_pairs, tasks.size());
        EXPECT_EQ(par_stats.matched, seq_stats.matched);
        EXPECT_EQ(par_stats.refined, seq_stats.refined);
      }
    }
  }
}

TEST_F(RefinementExecutorTest, EmptyTaskSetYieldsEmptyEvaluations) {
  RefinementExecutor executor(4);
  std::vector<PairEvaluation> evals(3);
  executor.Run({}, /*use_prunings=*/true, /*signature_filter=*/true, 2.0,
               0.5, &evals);
  EXPECT_TRUE(evals.empty());
}

TEST(PruneStatsTest, RecordReproducesTheSequentialCounters) {
  PruneStats stats;
  stats.Record(PairOutcome::kTopicPruned);
  stats.Record(PairOutcome::kSimUbPruned);
  stats.Record(PairOutcome::kProbUbPruned);
  stats.Record(PairOutcome::kInstancePruned);
  stats.Record(PairOutcome::kRefuted);
  stats.Record(PairOutcome::kMatched);
  EXPECT_EQ(stats.total_pairs, 6u);
  EXPECT_EQ(stats.topic_pruned, 1u);
  EXPECT_EQ(stats.sim_ub_pruned, 1u);
  EXPECT_EQ(stats.prob_ub_pruned, 1u);
  EXPECT_EQ(stats.instance_pruned, 1u);
  EXPECT_EQ(stats.refined, 2u);  // refuted + matched both reach refinement
  EXPECT_EQ(stats.matched, 1u);
}

}  // namespace
}  // namespace terids
