#include <gtest/gtest.h>

#include "imputation/constraint_imputer.h"
#include "imputation/rule_based_imputer.h"
#include "imputation/value_neighborhoods.h"
#include "rules/rule_miner.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

class RuleBasedImputerTest : public ::testing::Test {
 protected:
  RuleBasedImputerTest() : world_(MakeHealthWorld()) {
    MinerOptions opts;
    opts.min_support = 2;
    opts.min_const_freq = 2;
    RuleMiner miner(world_.repo.get(), opts);
    rules_ = miner.MineCdds();
  }
  ToyWorld world_;
  std::vector<CddRule> rules_;
};

TEST_F(RuleBasedImputerTest, ImputesDiagnosisFromSymptoms) {
  RuleBasedImputer imputer(world_.repo.get(), rules_, RuleImputerOptions{});
  // Post a2 of the paper's Table 1: diabetic symptoms, missing diagnosis.
  Record r = world_.Make(1, {"male", "loss of weight blurred vision", "-",
                             "drug therapy"});
  auto imputed = imputer.ImputeRecord(r, nullptr);
  ASSERT_EQ(imputed.size(), 1u);
  EXPECT_EQ(imputed[0].attr, 2);
  ASSERT_FALSE(imputed[0].candidates.empty());
  // The top candidate must be "diabetes" (it dominates the frequency vote).
  const ValueId top = imputed[0].candidates[0].vid;
  EXPECT_EQ(world_.repo->domain(2).text(top), "diabetes");
  // Probabilities are a normalized distribution.
  double total = 0;
  for (const auto& c : imputed[0].candidates) {
    EXPECT_GT(c.prob, 0.0);
    total += c.prob;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST_F(RuleBasedImputerTest, CompleteRecordNeedsNoImputation) {
  RuleBasedImputer imputer(world_.repo.get(), rules_, RuleImputerOptions{});
  Record r = world_.Make(2, {"male", "fever", "flu", "rest"});
  EXPECT_TRUE(imputer.ImputeRecord(r, nullptr).empty());
}

TEST_F(RuleBasedImputerTest, CoordFilterDoesNotChangeCandidates) {
  // The sorted-coordinate prefilter is a pure optimization: candidate
  // distributions must be identical with and without it.
  RuleImputerOptions with_filter;
  with_filter.use_coord_filter = true;
  RuleImputerOptions without_filter;
  without_filter.use_coord_filter = false;
  RuleBasedImputer fast(world_.repo.get(), rules_, with_filter);
  RuleBasedImputer slow(world_.repo.get(), rules_, without_filter);
  const std::vector<Record> probes = {
      world_.Make(1, {"male", "loss of weight blurred vision", "-", "-"}),
      world_.Make(2, {"female", "fever cough", "-", "rest"}),
      world_.Make(3, {"male", "-", "diabetes", "-"}),
  };
  for (const Record& r : probes) {
    auto a = fast.ImputeRecord(r, nullptr);
    auto b = slow.ImputeRecord(r, nullptr);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].candidates.size(), b[i].candidates.size());
      for (size_t c = 0; c < a[i].candidates.size(); ++c) {
        EXPECT_EQ(a[i].candidates[c].vid, b[i].candidates[c].vid);
        EXPECT_DOUBLE_EQ(a[i].candidates[c].prob, b[i].candidates[c].prob);
      }
    }
  }
}

TEST_F(RuleBasedImputerTest, CostAccountingSplitsPhases) {
  RuleBasedImputer imputer(world_.repo.get(), rules_, RuleImputerOptions{});
  Record r = world_.Make(1, {"male", "loss of weight", "-", "-"});
  CostBreakdown cost;
  imputer.ImputeRecord(r, &cost);
  EXPECT_GT(cost.cdd_select_seconds + cost.impute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cost.er_seconds, 0.0);
}

TEST_F(RuleBasedImputerTest, RulesForDependentPartitionsRuleSet) {
  RuleBasedImputer imputer(world_.repo.get(), rules_, RuleImputerOptions{});
  size_t total = 0;
  for (int j = 0; j < world_.repo->num_attributes(); ++j) {
    for (int idx : imputer.RulesForDependent(j)) {
      EXPECT_EQ(imputer.rules()[idx].dependent, j);
      ++total;
    }
  }
  EXPECT_EQ(total, rules_.size());
}

TEST(ValueNeighborhoodsTest, SlicesMatchBruteForce) {
  ToyWorld world = MakeHealthWorld();
  std::vector<double> radius(world.repo->num_attributes(), 0.8);
  ValueNeighborhoods neighborhoods(world.repo.get(), radius);
  const int attr = 2;
  const AttributeDomain& dom = world.repo->domain(attr);
  for (ValueId center = 0; center < dom.size(); ++center) {
    for (const Interval dep : {Interval::Of(0.0, 0.3), Interval::Of(0.2, 0.6),
                               Interval::Of(0.0, 0.8)}) {
      std::unordered_map<ValueId, double> freq;
      neighborhoods.AccumulateRange(attr, center, dep, &freq);
      for (ValueId v = 0; v < dom.size(); ++v) {
        const double dist = JaccardDistance(dom.tokens(center), dom.tokens(v));
        EXPECT_EQ(freq.count(v) > 0, dep.Contains(dist))
            << "center=" << center << " v=" << v << " dist=" << dist;
      }
    }
  }
}

TEST(ValueNeighborhoodsTest, InvalidateRebuildsAfterDomainGrowth) {
  ToyWorld world = MakeHealthWorld();
  std::vector<double> radius(world.repo->num_attributes(), 1.0);
  ValueNeighborhoods neighborhoods(world.repo.get(), radius);
  const size_t before = neighborhoods.Neighborhood(2, 0).size();
  Tokenizer tok(world.dict.get());
  world.repo->RegisterValue(2, tok.Tokenize("brand new diagnosis"), "new");
  neighborhoods.Invalidate();
  EXPECT_EQ(neighborhoods.Neighborhood(2, 0).size(), before + 1);
}

TEST(ConstraintImputerTest, UsesMostRecentCompleteDonor) {
  ToyWorld world = MakeHealthWorld();
  ConstraintImputer imputer(world.repo.get(), /*history_cap=*/10);
  Record first = world.Make(1, {"male", "fever", "flu", "rest"});
  first.stream_id = 0;
  Record second = world.Make(2, {"female", "cough", "pneumonia", "antibiotics"});
  second.stream_id = 0;
  imputer.OnArrival(first);
  imputer.OnArrival(second);

  Record incomplete = world.Make(3, {"male", "headache", "-", "-"});
  incomplete.stream_id = 0;
  auto imputed = imputer.ImputeRecord(incomplete, nullptr);
  ASSERT_EQ(imputed.size(), 2u);
  // Sequential semantics [43]: the donor is the most recent (rid 2).
  EXPECT_EQ(world.repo->domain(2).text(imputed[0].candidates[0].vid),
            "pneumonia");
  EXPECT_DOUBLE_EQ(imputed[0].candidates[0].prob, 1.0);
}

TEST(ConstraintImputerTest, IgnoresOtherStreamsAndIncompleteDonors) {
  ToyWorld world = MakeHealthWorld();
  ConstraintImputer imputer(world.repo.get(), 10);
  Record other_stream = world.Make(1, {"male", "fever", "flu", "rest"});
  other_stream.stream_id = 1;
  Record incomplete_donor = world.Make(2, {"male", "fever", "-", "rest"});
  incomplete_donor.stream_id = 0;
  imputer.OnArrival(other_stream);
  imputer.OnArrival(incomplete_donor);

  Record probe = world.Make(3, {"male", "cough", "-", "rest"});
  probe.stream_id = 0;
  EXPECT_TRUE(imputer.ImputeRecord(probe, nullptr).empty());
}

TEST(ConstraintImputerTest, EvictionForgetsExpiredDonors) {
  ToyWorld world = MakeHealthWorld();
  ConstraintImputer imputer(world.repo.get(), 10);
  Record donor = world.Make(1, {"male", "fever", "flu", "rest"});
  donor.stream_id = 0;
  imputer.OnArrival(donor);
  imputer.OnEvict(donor);
  Record probe = world.Make(2, {"male", "cough", "-", "rest"});
  probe.stream_id = 0;
  EXPECT_TRUE(imputer.ImputeRecord(probe, nullptr).empty());
}

}  // namespace
}  // namespace terids
