#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace terids {

namespace {

/// Canonical (unperturbed) attribute values of one latent entity.
struct Entity {
  int topic = 0;
  // words[x] = canonical word list of attribute x; element 0 of attribute 0
  // is the topic marker keyword and is never perturbed.
  std::vector<std::vector<std::string>> words;
};

std::string WordName(int attr, int idx) {
  return "w" + std::to_string(attr) + "x" + std::to_string(idx);
}

std::string TopicKeyword(int topic) {
  return "topickw" + std::to_string(topic);
}

std::string CoreWord(int attr, int topic, int idx) {
  return "c" + std::to_string(attr) + "t" + std::to_string(topic) + "i" +
         std::to_string(idx);
}

Entity MakeEntity(const DatasetProfile& p, int topic, Rng* rng) {
  Entity e;
  e.topic = topic;
  const int d = p.num_attributes();
  e.words.resize(d);
  for (int x = 0; x < d; ++x) {
    const int count =
        static_cast<int>(rng->NextInt(p.min_tokens[x], p.max_tokens[x]));
    const int vocab = p.vocab_size[x];
    const int slice = std::max(1, vocab / p.num_topics);
    const double core_frac = x < static_cast<int>(p.topic_core_fraction.size())
                                 ? p.topic_core_fraction[x]
                                 : 0.0;
    const int core_count =
        static_cast<int>(std::lround(core_frac * count));
    if (x == 0) {
      e.words[x].push_back(TopicKeyword(topic));
    }
    // Shared topic core: identical tokens for every entity of the topic.
    // This is the cross-tuple attribute dependence CDD mining discovers
    // (e.g. all diabetes posts share diagnosis vocabulary).
    for (int i = 0; i < core_count; ++i) {
      e.words[x].push_back(CoreWord(x, topic, i));
    }
    // Entity-specific remainder: skewed draw from the topic's vocab slice
    // (70%) or the global vocabulary (30%).
    for (int i = core_count; i < count; ++i) {
      int idx;
      if (rng->NextBool(0.7)) {
        idx = topic * slice +
              static_cast<int>(rng->NextZipf(static_cast<uint64_t>(slice), 1.1));
      } else {
        idx = static_cast<int>(rng->NextBounded(vocab));
      }
      e.words[x].push_back(WordName(x, idx));
    }
  }
  return e;
}

/// Derives a record's raw attribute texts from an entity by token-wise
/// perturbation (the marker keyword is kept intact).
std::vector<std::string> PerturbEntity(const DatasetProfile& p,
                                       const Entity& e, Rng* rng) {
  const int d = p.num_attributes();
  std::vector<std::string> texts(d);
  for (int x = 0; x < d; ++x) {
    std::string text;
    for (size_t i = 0; i < e.words[x].size(); ++i) {
      const bool is_marker = (x == 0 && i == 0);
      std::string word = e.words[x][i];
      if (!is_marker && rng->NextBool(p.perturbation)) {
        if (rng->NextBool(0.25)) {
          continue;  // Token drop.
        }
        word = WordName(
            x, static_cast<int>(rng->NextBounded(p.vocab_size[x])));
      }
      if (!text.empty()) text += " ";
      text += word;
    }
    texts[x] = text;
  }
  return texts;
}

Record MakeRecord(const Schema& schema, Tokenizer* tokenizer, int64_t rid,
                  const std::vector<std::string>& texts) {
  Record r;
  r.rid = rid;
  r.values.resize(schema.num_attributes());
  for (int x = 0; x < schema.num_attributes(); ++x) {
    r.values[x].text = texts[x];
    r.values[x].tokens = tokenizer->Tokenize(texts[x]);
    r.values[x].missing = false;
  }
  return r;
}

}  // namespace

GeneratedDataset DataGenerator::Generate(const DatasetProfile& profile,
                                         const Options& options) {
  TERIDS_CHECK(options.scale > 0.0);
  GeneratedDataset ds;
  ds.name = profile.name;
  ds.schema = std::make_unique<Schema>(profile.attributes);
  ds.dict = std::make_unique<TokenDict>();
  Tokenizer tokenizer(ds.dict.get());
  Rng rng(options.seed);

  const int size_a =
      std::max(2, static_cast<int>(std::lround(profile.size_a * options.scale)));
  const int size_b =
      std::max(2, static_cast<int>(std::lround(profile.size_b * options.scale)));

  // Latent entities: one per source-A record, plus extras for unmatched
  // source-B records.
  std::vector<Entity> entities;
  entities.reserve(size_a + size_b);
  for (int i = 0; i < size_a; ++i) {
    entities.push_back(MakeEntity(
        profile, static_cast<int>(rng.NextBounded(profile.num_topics)), &rng));
  }

  for (int t = 0; t < profile.num_topics; ++t) {
    ds.topic_keywords.push_back(TopicKeyword(t));
  }

  // Source A: entity i -> rid i.
  for (int i = 0; i < size_a; ++i) {
    ds.source_a.push_back(
        MakeRecord(*ds.schema, &tokenizer, i,
                   PerturbEntity(profile, entities[i], &rng)));
  }

  // Source B: matched records duplicate a random A entity; the rest get
  // fresh entities.
  for (int i = 0; i < size_b; ++i) {
    const int64_t rid = size_a + i;
    if (rng.NextBool(profile.match_fraction)) {
      const int a_entity = static_cast<int>(rng.NextBounded(size_a));
      ds.source_b.push_back(
          MakeRecord(*ds.schema, &tokenizer, rid,
                     PerturbEntity(profile, entities[a_entity], &rng)));
      ds.ground_truth.push_back({a_entity, rid});
    } else {
      entities.push_back(MakeEntity(
          profile, static_cast<int>(rng.NextBounded(profile.num_topics)),
          &rng));
      ds.source_b.push_back(
          MakeRecord(*ds.schema, &tokenizer, rid,
                     PerturbEntity(profile, entities.back(), &rng)));
    }
  }

  // Repository pool: eta * (|A| + |B|) re-perturbed entity copies.
  const int repo_size = std::max(
      2, static_cast<int>(std::lround(options.repo_ratio * (size_a + size_b))));
  for (int i = 0; i < repo_size; ++i) {
    const Entity& e = entities[rng.NextBounded(entities.size())];
    ds.repo_records.push_back(MakeRecord(*ds.schema, &tokenizer, -1,
                                         PerturbEntity(profile, e, &rng)));
  }

  // Shuffle arrival orders within each source.
  rng.Shuffle(&ds.source_a);
  rng.Shuffle(&ds.source_b);
  return ds;
}

std::vector<Record> DataGenerator::WithMissing(
    const std::vector<Record>& records, double xi, int m, uint64_t seed) {
  TERIDS_CHECK(xi >= 0.0 && xi <= 1.0);
  TERIDS_CHECK(m >= 1);
  std::vector<Record> out = records;
  Rng rng(seed ^ 0x5eedbeefULL);
  for (Record& r : out) {
    if (!rng.NextBool(xi)) {
      continue;
    }
    const int d = r.num_attributes();
    const int missing_count = std::min(m, d - 1);  // Keep >= 1 attribute.
    std::vector<int> attrs(d);
    for (int x = 0; x < d; ++x) attrs[x] = x;
    rng.Shuffle(&attrs);
    for (int k = 0; k < missing_count; ++k) {
      r.values[attrs[k]] = AttrValue::Missing();
    }
  }
  return out;
}

}  // namespace terids
