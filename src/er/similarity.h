#ifndef TERIDS_ER_SIMILARITY_H_
#define TERIDS_ER_SIMILARITY_H_

#include "tuple/imputed_tuple.h"
#include "tuple/record.h"

namespace terids {

/// The ER similarity function of Definition 5: the sum over all d
/// attributes of the per-attribute Jaccard similarities. Range [0, d].
double RecordSimilarity(const Record& a, const Record& b);

/// Definition 5 between two materialized instances of imputed tuples.
double InstanceSimilarity(const ImputedTuple& a, int inst_a,
                          const ImputedTuple& b, int inst_b);

/// The equivalent distance form used by the pivot bounds: dist(a, b) =
/// d - sim(a, b) = sum of per-attribute Jaccard distances.
double InstanceDistance(const ImputedTuple& a, int inst_a,
                        const ImputedTuple& b, int inst_b);

/// Similarity for heterogeneous schemas (Section 2.3's discussion): the
/// Jaccard similarity of the union token sets T(r) and T(r') over all
/// attributes. Range [0, 1]; missing attributes contribute nothing.
double HeterogeneousRecordSimilarity(const Record& a, const Record& b);

}  // namespace terids

#endif  // TERIDS_ER_SIMILARITY_H_
