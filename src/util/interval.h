#ifndef TERIDS_UTIL_INTERVAL_H_
#define TERIDS_UTIL_INTERVAL_H_

#include <algorithm>
#include <limits>

namespace terids {

/// Closed real interval [lo, hi]. Used for CDD distance constraints, aR-tree
/// bounding ranges, token-set size intervals, and pivot-distance bounds.
///
/// Empty-interval semantics (lo > hi, the default state) are part of the
/// contract — CDD pruning consumes intervals that may never have been grown:
///   - Contains(v)      is false for every v (vacuously: no point is in it).
///   - Overlaps(other)  is false whenever either side is empty.
///   - width()          is 0.
///   - MinAbsDiff       is +infinity whenever either side is empty: there is
///     no (x, y) pair to take a difference over, and +inf is the identity
///     that makes an empty side maximally prunable in Lemma 4.2 sums.
struct Interval {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  /// The canonical default is *empty* (lo > hi); Cover()/Union() grow it.
  static Interval Empty() { return Interval(); }
  static Interval Point(double v) { return {v, v}; }
  static Interval Of(double lo, double hi) { return {lo, hi}; }

  bool empty() const { return lo > hi; }
  double width() const { return empty() ? 0.0 : hi - lo; }

  bool Contains(double v) const { return v >= lo && v <= hi; }

  bool Overlaps(const Interval& other) const {
    return !empty() && !other.empty() && lo <= other.hi && other.lo <= hi;
  }

  /// Grows to include v.
  void Cover(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  /// Grows to include another interval.
  void Union(const Interval& other) {
    if (other.empty()) return;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
  }

  /// Minimum |x - y| over x in this, y in other; 0 if they overlap.
  /// This is exactly the min_dist of Lemma 4.2. If either interval is
  /// empty the minimum ranges over no pairs at all and the result is
  /// +infinity — explicitly, rather than via comparisons on the empty
  /// sentinel bounds, which fell through to the overlap branch (returning
  /// 0, "touching") when the other side was unbounded on both ends.
  double MinAbsDiff(const Interval& other) const {
    if (empty() || other.empty()) {
      return std::numeric_limits<double>::infinity();
    }
    if (lo > other.hi) return lo - other.hi;
    if (other.lo > hi) return other.lo - hi;
    return 0.0;
  }

  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

}  // namespace terids

#endif  // TERIDS_UTIL_INTERVAL_H_
