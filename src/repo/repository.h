#ifndef TERIDS_REPO_REPOSITORY_H_
#define TERIDS_REPO_REPOSITORY_H_

#include <memory>
#include <string>
#include <vector>

#include "repo/repo_storage.h"
#include "text/token_dict.h"
#include "text/token_set.h"
#include "tuple/record.h"
#include "tuple/schema.h"
#include "util/interval.h"
#include "util/status.h"

namespace terids {

class AttributeDomain;
class InMemoryStorage;

/// The static complete data repository R (Section 2.2): a facade binding a
/// schema and token dictionary to a pluggable physical storage backend
/// (DESIGN.md §8).
///
/// All engine layers — the indexes, imputers, rule miner, pivot selector,
/// and pipelines — read R exclusively through this class's backend-neutral
/// accessors, so the same engine runs unchanged over the in-memory vectors
/// (the default) or a read-only mmap snapshot whose numeric geometry
/// tables, token columns, and display texts are served zero-copy from the
/// page cache instead of rebuilt on the heap — with v2 snapshots decoding
/// per-section on first touch (see DESIGN.md §8). Backends are required to
/// be bit-identical on the read path; the equivalence sweep enforces it
/// end to end.
class Repository {
 public:
  /// In-memory backend (the default).
  Repository(const Schema* schema, const TokenDict* dict);

  /// Explicit backend. `storage` must already agree with the schema's
  /// attribute count (backend factories validate this).
  Repository(const Schema* schema, const TokenDict* dict,
             std::unique_ptr<RepoStorage> storage);

  /// Opens a Repository over the snapshot file at `path` with the
  /// MmapSnapshotStorage backend. Fails with a precise Status if the file
  /// is missing, corrupt, or disagrees with `schema`/`dict`. `decode`
  /// picks the v2 materialization strategy (lazy first-touch decode vs
  /// decode-everything-at-open); v1 files always decode eagerly.
  static Result<std::unique_ptr<Repository>> OpenSnapshot(
      const Schema* schema, const TokenDict* dict, const std::string& path,
      SnapshotDecode decode = SnapshotDecode::kLazy);

  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;
  Repository(Repository&&) = default;
  Repository& operator=(Repository&&) = default;

  /// Adds a complete sample tuple. Returns InvalidArgument if the record has
  /// missing attributes or the wrong arity. May be called after
  /// AttachPivots() (dynamic repository, Section 5.5): pivot-distance
  /// tables are extended incrementally for any new domain values.
  Status AddSample(const Record& record);

  /// Registers a value in dom(`attr`) without adding a sample (used by the
  /// constraint-based imputer, whose candidates come from the stream rather
  /// than from R). Extends pivot tables if pivots are attached.
  ValueId RegisterValue(int attr, const TokenSet& tokens,
                        const std::string& text);

  const Schema& schema() const { return *schema_; }
  const TokenDict& dict() const { return *dict_; }
  int num_attributes() const { return schema_->num_attributes(); }
  size_t num_samples() const { return storage_->num_samples(); }

  const Record& sample(size_t i) const { return storage_->sample(i); }
  /// ValueId of sample i's attribute x within dom(A_x).
  ValueId sample_value_id(size_t i, int attr) const {
    return storage_->sample_value_id(i, attr);
  }

  // ---- Domain reads (backend-neutral) ---------------------------------

  size_t domain_size(int attr) const { return storage_->domain_size(attr); }
  const TokenSet& value_tokens(int attr, ValueId id) const {
    return storage_->value_tokens(attr, id);
  }
  std::string_view value_text(int attr, ValueId id) const {
    return storage_->value_text(attr, id);
  }
  int value_frequency(int attr, ValueId id) const {
    return storage_->value_frequency(attr, id);
  }
  /// Id of an existing value with this exact token set, or kInvalidValueId.
  ValueId FindValue(int attr, const TokenSet& tokens) const {
    return storage_->FindValue(attr, tokens);
  }

  /// Direct AttributeDomain access for tests and diagnostics. Only the
  /// in-memory backend materializes AttributeDomain objects; this CHECKs
  /// on any other backend — engine code must use the accessors above.
  const AttributeDomain& domain(int attr) const;

  // ---- Pivot machinery -----------------------------------------------

  /// Installs pivots and precomputes, for every attribute x, pivot a, and
  /// domain value v: dist(v, piv_a[A_x]). Also builds the sorted
  /// (main-pivot-coordinate, ValueId) lists used for candidate retrieval.
  /// Snapshot backends carry their geometry in the file and CHECK here.
  void AttachPivots(std::vector<AttributePivots> pivots);

  bool has_pivots() const { return storage_->has_pivots(); }
  int num_pivots(int attr) const { return storage_->num_pivots(attr); }
  const TokenSet& pivot_tokens(int attr, int pivot_idx) const {
    return storage_->pivot_tokens(attr, pivot_idx);
  }

  /// dist(domain value `vid` of `attr`, pivot `pivot_idx` of `attr`).
  double pivot_distance(int attr, int pivot_idx, ValueId vid) const {
    return storage_->pivot_distance(attr, pivot_idx, vid);
  }

  /// Main-pivot coordinate of a domain value (pivot_distance with pivot 0).
  double coord(int attr, ValueId vid) const {
    return pivot_distance(attr, 0, vid);
  }

  /// All domain values of `attr` whose main-pivot coordinate lies in
  /// [coord_interval.lo, coord_interval.hi] (both endpoints inclusive), in
  /// ascending (coordinate, ValueId) order. This is the necessary-condition
  /// filter |coord(v) - coord(u)| <= eps used before exact verification.
  std::vector<ValueId> ValuesInCoordRange(
      int attr, const Interval& coord_interval) const {
    std::vector<ValueId> out;
    storage_->AppendValuesInCoordRange(attr, coord_interval, &out);
    return out;
  }

  /// The active backend ("memory", "mmap").
  const char* backend_name() const { return storage_->name(); }

 private:
  const Schema* schema_;
  const TokenDict* dict_;
  std::unique_ptr<RepoStorage> storage_;
};

}  // namespace terids

#endif  // TERIDS_REPO_REPOSITORY_H_
