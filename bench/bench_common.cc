#include "bench_common.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>

#include "datagen/profiles.h"

namespace terids {
namespace bench {

double EnvScale() {
  const char* env = std::getenv("TERIDS_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

int EnvInt(const char* name, int fallback, int min_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') {
    // Unset — and the conventional exported-empty spelling of unset.
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    std::fprintf(stderr,
                 "%s: '%s' is not an integer (trailing garbage rejected); "
                 "using default %d\n",
                 name, env, fallback);
    return fallback;
  }
  if (errno == ERANGE ||
      v < static_cast<long>(std::numeric_limits<int>::min()) ||
      v > static_cast<long>(std::numeric_limits<int>::max())) {
    std::fprintf(stderr, "%s: '%s' overflows int; using default %d\n", name,
                 env, fallback);
    return fallback;
  }
  if (v < min_value) {
    std::fprintf(stderr, "%s: %ld is below the minimum %d; using default %d\n",
                 name, v, min_value, fallback);
    return fallback;
  }
  return static_cast<int>(v);
}

namespace {

RepoBackend EnvRepoBackend() {
  const char* env = std::getenv("TERIDS_BENCH_REPO_BACKEND");
  RepoBackend backend = RepoBackend::kInMemory;
  if (env == nullptr || env[0] == '\0') {
    return backend;
  }
  if (!ParseRepoBackend(env, &backend)) {
    std::fprintf(stderr,
                 "TERIDS_BENCH_REPO_BACKEND: '%s' is not a backend "
                 "(expected 'memory' or 'mmap'); using default 'memory'\n",
                 env);
  }
  return backend;
}

SnapshotDecode EnvSnapshotDecode() {
  const char* env = std::getenv("TERIDS_BENCH_SNAPDECODE");
  SnapshotDecode decode = SnapshotDecode::kLazy;
  if (env == nullptr || env[0] == '\0') {
    return decode;
  }
  if (!ParseSnapshotDecode(env, &decode)) {
    std::fprintf(stderr,
                 "TERIDS_BENCH_SNAPDECODE: '%s' is not a decode mode "
                 "(expected 'lazy' or 'eager'); using default 'lazy'\n",
                 env);
  }
  return decode;
}

OverloadPolicy EnvOverloadPolicy() {
  const char* env = std::getenv("TERIDS_BENCH_OVERLOAD");
  OverloadPolicy policy = OverloadPolicy::kBlock;
  if (env == nullptr || env[0] == '\0') {
    return policy;
  }
  if (!ParseOverloadPolicy(env, &policy)) {
    std::fprintf(stderr,
                 "TERIDS_BENCH_OVERLOAD: '%s' is not an overload policy "
                 "(expected 'block', 'shed_newest', 'shed_oldest' or "
                 "'degrade'); using default 'block'\n",
                 env);
  }
  return policy;
}

int EnvSigWidth() {
  const int v = EnvInt("TERIDS_BENCH_SIGWIDTH", 64, 64);
  if (v != 64 && v != 128 && v != 256) {
    std::fprintf(stderr,
                 "TERIDS_BENCH_SIGWIDTH: %d is not a signature width "
                 "(expected 64, 128 or 256); using default 64\n",
                 v);
    return 64;
  }
  return v;
}

}  // namespace

ExecKnobs EnvExecKnobs() {
  ExecKnobs knobs;
  knobs.batch_size = EnvInt("TERIDS_BENCH_BATCH", 1, 1);
  knobs.refine_threads = EnvInt("TERIDS_BENCH_THREADS", 1, 1);
  knobs.grid_shards = EnvInt("TERIDS_BENCH_SHARDS", 1, 1);
  knobs.ingest_queue_depth = EnvInt("TERIDS_BENCH_QUEUE", 0, 0);
  knobs.signature_filter = EnvInt("TERIDS_BENCH_SIGFILTER", 1, 0) != 0;
  knobs.sig_width = EnvSigWidth();
  knobs.maintain_shards = EnvInt("TERIDS_BENCH_MAINTAIN", 1, 1);
  knobs.sched_threads = EnvInt("TERIDS_BENCH_SCHED", 0, 0);
  knobs.repo_backend = EnvRepoBackend();
  knobs.snapshot_decode = EnvSnapshotDecode();
  knobs.overload_policy = EnvOverloadPolicy();
  return knobs;
}

ExperimentParams BaseParams(const std::string& dataset) {
  ExperimentParams params;
  // Per-dataset size scale: preserves the relative ordering of Table 4
  // while keeping the one-core suite runtime bounded. Songs (1M tuples in
  // the paper) is scaled hardest.
  double scale = 0.3;
  if (dataset == "EBooks") scale = 0.1;
  if (dataset == "Songs") scale = 0.004;
  params.scale = scale * EnvScale();
  params.w = static_cast<int>(200 * EnvScale());  // paper default w = 1000
  if (params.w < 40) params.w = 40;
  params.max_arrivals = 4 * params.w;
  const ExecKnobs knobs = EnvExecKnobs();
  params.batch_size = knobs.batch_size;
  params.refine_threads = knobs.refine_threads;
  params.grid_shards = knobs.grid_shards;
  params.ingest_queue_depth = knobs.ingest_queue_depth;
  params.signature_filter = knobs.signature_filter;
  params.sig_width = knobs.sig_width;
  params.maintain_shards = knobs.maintain_shards;
  params.sched_threads = knobs.sched_threads;
  params.repo_backend = knobs.repo_backend;
  params.snapshot_decode = knobs.snapshot_decode;
  params.overload_policy = knobs.overload_policy;
  return params;
}

const std::vector<std::string>& AllDatasets() {
  static const std::vector<std::string>* kDatasets =
      new std::vector<std::string>{"Citations", "Anime", "Bikes", "EBooks",
                                   "Songs"};
  return *kDatasets;
}

const std::vector<PipelineKind>& AllPipelines() {
  static const std::vector<PipelineKind>* kKinds =
      new std::vector<PipelineKind>{
          PipelineKind::kTerIds,    PipelineKind::kIjGer,
          PipelineKind::kCddEr,     PipelineKind::kDdEr,
          PipelineKind::kEditingEr, PipelineKind::kConstraintEr};
  return *kKinds;
}

const std::vector<PipelineKind>& AccuracyPipelines() {
  // Ij+GER and CDD+ER share TER-iDS's imputation and therefore its
  // F-score; the paper omits them from accuracy plots for the same reason.
  static const std::vector<PipelineKind>* kKinds =
      new std::vector<PipelineKind>{PipelineKind::kTerIds, PipelineKind::kDdEr,
                                    PipelineKind::kEditingEr,
                                    PipelineKind::kConstraintEr};
  return *kKinds;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string NumToJson(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return std::string(buf);
}

}  // namespace

JsonReporter::Row& JsonReporter::Row::Str(const std::string& key,
                                          const std::string& value) {
  return Raw(key, "\"" + JsonEscape(value) + "\"");
}

JsonReporter::Row& JsonReporter::Row::Num(const std::string& key,
                                          double value) {
  return Raw(key, NumToJson(value));
}

JsonReporter::Row& JsonReporter::Row::Raw(const std::string& key,
                                          const std::string& json) {
  if (!body_.empty()) {
    body_ += ",";
  }
  body_ += "\"" + JsonEscape(key) + "\":" + json;
  return *this;
}

JsonReporter::JsonReporter(std::string figure) : figure_(std::move(figure)) {
  const char* env = std::getenv("TERIDS_BENCH_JSON");
  if (env != nullptr && env[0] != '\0') {
    path_ = env;
  }
}

JsonReporter::Row& JsonReporter::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

JsonReporter::Row& JsonReporter::AddKnobRow(const ExecKnobs& knobs) {
  return AddRow()
      .Num("batch_size", knobs.batch_size)
      .Num("refine_threads", knobs.refine_threads)
      .Num("grid_shards", knobs.grid_shards)
      .Num("ingest_queue_depth", knobs.ingest_queue_depth)
      .Num("signature_filter", knobs.signature_filter ? 1 : 0)
      .Num("sig_width", knobs.sig_width)
      .Num("maintain_shards", knobs.maintain_shards)
      .Num("sched_threads", knobs.sched_threads)
      .Str("repo_backend", RepoBackendName(knobs.repo_backend))
      .Str("snapshot_decode", SnapshotDecodeName(knobs.snapshot_decode))
      .Str("overload_policy", OverloadPolicyName(knobs.overload_policy));
}

JsonReporter::~JsonReporter() {
  if (path_.empty()) {
    return;
  }
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "JsonReporter: cannot open %s\n", path_.c_str());
    return;
  }
  out << "{\"figure\":\"" << JsonEscape(figure_)
      << "\",\"bench_scale\":" << NumToJson(EnvScale()) << ",\"rows\":[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out << (i == 0 ? "" : ",") << "{" << rows_[i].body_ << "}";
  }
  out << "]}\n";
}

void PrintHeader(const std::string& figure, const std::string& title,
                 const ExperimentParams& params) {
  std::printf("==== %s: %s ====\n", figure.c_str(), title.c_str());
  std::printf(
      "defaults (Table 5, scaled): alpha=%.1f rho=%.1f xi=%.1f eta=%.1f "
      "w=%d m=%d scale=%.3f arrivals=%d bench_scale=%.2f batch=%d "
      "threads=%d shards=%d queue=%d sigfilter=%d sigwidth=%d maintain=%d "
      "sched=%d repo=%s snapdecode=%s overload=%s\n",
      params.alpha, params.rho, params.xi, params.eta, params.w, params.m,
      params.scale, params.max_arrivals, EnvScale(), params.batch_size,
      params.refine_threads, params.grid_shards, params.ingest_queue_depth,
      params.signature_filter ? 1 : 0, params.sig_width,
      params.maintain_shards, params.sched_threads,
      RepoBackendName(params.repo_backend),
      SnapshotDecodeName(params.snapshot_decode),
      OverloadPolicyName(params.overload_policy));
}

namespace {

void Sweep(const std::string& figure, const std::string& param_name,
           const std::vector<double>& values, const ParamSetter& setter,
           const std::vector<PipelineKind>& kinds, bool report_time) {
  ExperimentParams base = BaseParams("Citations");
  JsonReporter reporter(figure);
  const char* metric_name = report_time ? "ms_per_arrival" : "f_score";
  PrintHeader(figure,
              (report_time ? "wall clock time (ms/arrival) vs "
                           : "F-score vs ") +
                  param_name,
              base);
  for (const std::string& dataset : AllDatasets()) {
    std::printf("\n-- %s --\n%-10s", dataset.c_str(), "pipeline");
    for (double v : values) {
      std::printf(" %s=%-8.3g", param_name.c_str(), v);
    }
    std::printf("\n");
    // One experiment per swept value (dataset contents and rules depend on
    // eta / scale / xi), shared across pipelines for comparability.
    std::vector<std::unique_ptr<Experiment>> experiments;
    for (double v : values) {
      ExperimentParams params = BaseParams(dataset);
      // Sweeps multiply 5-6 values x 5 datasets x 6 pipelines; shrink the
      // per-point workload so a full figure stays in the minutes range on
      // one core (the parameter setter below may still override w).
      params.w = std::min(params.w, 120);
      params.max_arrivals = 3 * params.w;
      setter(&params, v);
      experiments.push_back(
          std::make_unique<Experiment>(ProfileByName(dataset), params));
    }
    for (PipelineKind kind : kinds) {
      std::printf("%-10s", PipelineKindName(kind));
      for (size_t i = 0; i < experiments.size(); ++i) {
        PipelineRun run = experiments[i]->Run(kind);
        const double metric = report_time ? 1e3 * run.avg_arrival_seconds
                                          : run.accuracy.f_score;
        std::printf(" %-11.4f", metric);
        std::fflush(stdout);
        reporter.AddRow()
            .Str("dataset", dataset)
            .Str("pipeline", PipelineKindName(kind))
            .Str("param", param_name)
            .Num("value", values[i])
            .Num(metric_name, metric);
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

}  // namespace

void TimeSweep(const std::string& figure, const std::string& param_name,
               const std::vector<double>& values, const ParamSetter& setter,
               const std::vector<PipelineKind>& kinds) {
  Sweep(figure, param_name, values, setter, kinds, /*report_time=*/true);
}

void FscoreSweep(const std::string& figure, const std::string& param_name,
                 const std::vector<double>& values, const ParamSetter& setter,
                 const std::vector<PipelineKind>& kinds) {
  Sweep(figure, param_name, values, setter, kinds, /*report_time=*/false);
}

}  // namespace bench
}  // namespace terids
