#ifndef TERIDS_CORE_ARRIVAL_CONTEXT_H_
#define TERIDS_CORE_ARRIVAL_CONTEXT_H_

#include <memory>
#include <vector>

#include "er/match_set.h"
#include "er/pruning.h"
#include "eval/cost_breakdown.h"
#include "stream/sliding_window.h"
#include "tuple/record.h"

namespace terids {

/// How the overload layer treated one arrival (DESIGN.md §13).
enum class ArrivalDisposition {
  /// Fully processed — the only disposition outside overload pressure.
  kProcessed = 0,
  /// Refinement was stripped (shed_oldest): evictions replayed, no pair
  /// verdicts, no matches. (shed_newest arrivals emit no outcome at all.)
  kShed = 1,
  /// Refined with signature-bound-only verdicts; undecided pairs deferred.
  kDegraded = 2,
};

/// What one arrival produced.
struct ArrivalOutcome {
  /// Pairs newly added to the result set ES by this arrival.
  std::vector<MatchPair> new_matches;
  /// Break-up cost of this arrival (Figure 6).
  CostBreakdown cost;
  /// Pair pruning statistics of this arrival (Figure 4).
  PruneStats stats;
  /// The arrival's global timestamp (StreamDriver stamp), so sinks can join
  /// outcomes back to release schedules even when shedding makes emission
  /// index != timestamp. -1 until ImputePhase stamps it.
  int64_t timestamp = -1;
  /// How the overload layer treated this arrival.
  ArrivalDisposition disposition = ArrivalDisposition::kProcessed;
};

/// Typed state flowing through the arrival pipeline's phases
/// (ImputePhase -> CandidatePhase -> RefinePhase -> MaintainPhase). Each
/// phase reads the fields earlier phases filled and writes its own; the
/// batched operator keeps one context per batch arrival so refinement can
/// be deferred and executed across the whole batch at once.
struct ArrivalContext {
  explicit ArrivalContext(const Record& r) : record(r) {}

  /// The arriving record (stream id and timestamp stamped).
  Record record;

  // --- ImputePhase outputs ------------------------------------------------
  /// The imputed probabilistic tuple.
  std::shared_ptr<const ImputedTuple> tuple;
  /// Window-resident wrapper (tuple + topic classification).
  std::shared_ptr<WindowTuple> wt;

  // --- CandidatePhase outputs ---------------------------------------------
  /// Surviving candidates after grid / linear generation. Raw pointers into
  /// window tuples; in batched mode `evicted` below keeps candidates a
  /// later batch arrival expires alive until refinement has run.
  std::vector<const WindowTuple*> candidates;

  // --- MaintainPhase outputs ----------------------------------------------
  /// The tuple this arrival expired from its stream's window (null if the
  /// window had room). In batched mode the result-set eviction cascade for
  /// it is replayed in arrival order after deferred refinement.
  std::shared_ptr<WindowTuple> evicted;

  /// Accumulated result of this arrival.
  ArrivalOutcome out;
};

}  // namespace terids

#endif  // TERIDS_CORE_ARRIVAL_CONTEXT_H_
