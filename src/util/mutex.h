#ifndef TERIDS_UTIL_MUTEX_H_
#define TERIDS_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace terids {

/// The global lock-acquisition order (DESIGN.md §12). A thread may only
/// acquire a ranked Mutex whose rank is *strictly greater* than the rank of
/// every ranked Mutex it already holds; in Debug builds the checker below
/// aborts on any violation (including re-entrant acquisition), and in
/// Release builds the bookkeeping compiles out entirely. Unranked mutexes
/// (the default) skip the order check but still participate in re-entrancy
/// detection.
///
/// The named ranks document the engine's only permitted nesting chains:
/// handoff queues lock before executor/shard state, which locks before the
/// latency-histogram rings — "queue before shard before histogram". Today
/// the single live nesting is Scheduler::mu_ -> Scheduler::ext_mu_
/// (ConsumeLatencies folds the external callers' ring while holding the
/// scheduler queue lock); every other mutex is acquired alone, and the
/// ranks keep it that way as the serving layer multiplies lock
/// interactions.
namespace lock_rank {

/// Default: exempt from the order check (re-entrancy still fatal).
inline constexpr int kUnranked = 0;
/// stream/batch_queue.h — the bounded ingest->refine handoff.
inline constexpr int kBatchQueue = 100;
/// core/pipeline.cc — the ProcessStreamScheduled chain-completion latch.
inline constexpr int kPipelineChain = 200;
/// exec/thread_pool.h — legacy per-subsystem pool job state.
inline constexpr int kThreadPool = 300;
/// exec/scheduler.h — the unified scheduler's submission queue (mu_).
inline constexpr int kScheduler = 400;
/// exec/scheduler.h — the external ParallelFor callers' latency ring
/// (ext_mu_); may be acquired while holding kScheduler, never the reverse.
inline constexpr int kLatencyRing = 500;

}  // namespace lock_rank

/// True when the Debug lock-rank checker is compiled in (tests use this to
/// skip death expectations in Release builds, where the bookkeeping — the
/// thread-local held-lock stack and every check — is compiled out).
#ifndef NDEBUG
inline constexpr bool kLockRankChecksEnabled = true;
#else
inline constexpr bool kLockRankChecksEnabled = false;
#endif

class Mutex;

namespace lock_debug {

/// Debug-build bookkeeping over a thread-local stack of held mutexes.
/// OnAcquire CHECK-fails on re-entrancy and on out-of-rank-order
/// acquisition; the Wait variants let CondVar::Wait release and reacquire
/// without re-running the order check (cv reacquisition is ordered by the
/// wait itself, not by the rank discipline).
void OnAcquire(const Mutex* mu, int rank);
void OnRelease(const Mutex* mu);
void OnWaitRelease(const Mutex* mu);
void OnWaitReacquire(const Mutex* mu, int rank);
bool IsHeldByThisThread(const Mutex* mu);

}  // namespace lock_debug

/// An annotated std::mutex: the capability type every subsystem locks
/// (DESIGN.md §12). Construction takes an optional lock_rank::* rank; Debug
/// builds enforce the global acquisition order on every Lock.
class TERIDS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TERIDS_ACQUIRE() {
    // The checker runs *before* the underlying lock: a re-entrant or
    // out-of-order acquisition is exactly the case that can deadlock inside
    // mu_.lock(), and a hung process reports nothing.
#ifndef NDEBUG
    lock_debug::OnAcquire(this, rank_);
#endif
    mu_.lock();
  }

  void Unlock() TERIDS_RELEASE() {
#ifndef NDEBUG
    lock_debug::OnRelease(this);
#endif
    mu_.unlock();
  }

  /// Debug assertion that the calling thread holds this mutex; tells the
  /// static analysis the capability is held in contexts it cannot follow.
  void AssertHeld() const TERIDS_ASSERT_CAPABILITY(this);

  int rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const int rank_ = lock_rank::kUnranked;
};

/// RAII lock for a Mutex; the scoped capability the analysis tracks.
class TERIDS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TERIDS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TERIDS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with terids::Mutex. No predicate overloads:
/// callers write the explicit `while (!cond) cv.Wait(&mu);` loop inside a
/// MutexLock scope, which keeps every guarded-member read visibly under the
/// capability for the analysis.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu` and blocks until notified (spurious wakeups
  /// possible, as with std::condition_variable), reacquiring before return.
  void Wait(Mutex* mu) TERIDS_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace terids

#endif  // TERIDS_UTIL_MUTEX_H_
