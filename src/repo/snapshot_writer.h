#ifndef TERIDS_REPO_SNAPSHOT_WRITER_H_
#define TERIDS_REPO_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace terids {

class Repository;

/// Serializes `repo`'s storage into the columnar snapshot format of
/// DESIGN.md §8 at `path`, ready to be opened by MmapSnapshotStorage.
/// `format_version` selects the on-disk layout: snapshot::kVersion (v2,
/// the default — section TOC with per-section checksums, lazily
/// decodable) or snapshot::kVersionEager (v1, the legacy monolithic
/// payload, kept writable for backward-compatibility tests and for
/// producing files older readers accept).
///
/// The write is atomic: bytes land in a same-directory temp file which is
/// flushed, fsync'd, and renamed over `path`. A crash or error mid-write
/// leaves any existing snapshot at `path` untouched, and every error path
/// unlinks the temp file.
///
/// The writer reads exclusively through the backend-neutral Repository
/// interface, so it works on any backend — including an mmap-backed
/// repository that has accumulated dynamic-overlay values, which makes
/// re-snapshotting a compaction. The sorted coordinate lists are rebuilt
/// from (coord, ValueId) pairs; since those pairs are distinct and the
/// in-memory backend maintains exactly the (coord, ValueId)-ascending
/// order, the rebuilt lists are bit-identical to the oracle's.
Status WriteRepositorySnapshot(const Repository& repo, const std::string& path);
Status WriteRepositorySnapshot(const Repository& repo, const std::string& path,
                               uint32_t format_version);

/// Collision-resistant path for a throwaway snapshot file under TMPDIR
/// (or /tmp): `<dir>/<prefix>-<pid>-<random tag>-<counter>.snap`. The
/// random per-process tag keeps paths distinct even where getpid is
/// unavailable and the counter keeps repeated calls distinct.
std::string UniqueSnapshotPath(const std::string& prefix);

}  // namespace terids

#endif  // TERIDS_REPO_SNAPSHOT_WRITER_H_
