#include "core/terids_engine.h"

#include <unordered_map>

#include "imputation/rule_based_imputer.h"
#include "rules/rule_miner.h"
#include "util/hash.h"
#include "util/stopwatch.h"

namespace terids {

TerIdsEngine::TerIdsEngine(Repository* repo, EngineConfig config,
                           int num_streams, std::vector<CddRule> rules)
    : PipelineBase(repo, std::move(config), num_streams, /*use_grid=*/true,
                   /*use_prunings=*/true, "TER-iDS"),
      rules_(std::move(rules)),
      cdd_index_(repo, &rules_),
      dr_index_(repo),
      neighborhoods_(repo, ValueNeighborhoods::MaxRadiusPerAttr(
                               rules_, repo->num_attributes())) {
  cdd_index_.Build();
  dr_index_.Build();
}

std::vector<AttrBand> TerIdsEngine::BandsForRule(const CddRule& rule,
                                                 const ProbeCoords& pc) const {
  const int d = repo_->num_attributes();
  std::vector<AttrBand> bands(d);
  for (const auto& [attr, constraint] : rule.determinants) {
    AttrBand& band = bands[attr];
    const int np = repo_->num_pivots(attr);
    if (constraint.kind == AttrConstraint::Kind::kInterval) {
      // Triangle inequality: |coord_a(s) - coord_a(r)| <= dist(r, s) <=
      // eps_max for every pivot a.
      const double eps = constraint.interval.hi;
      for (int a = 0; a < np && a < static_cast<int>(pc.coords[attr].size());
           ++a) {
        const double c = pc.coords[attr][a];
        band.pivot_bands.push_back(Interval::Of(c - eps, c + eps));
      }
    } else {
      // Constant: the sample must carry exactly this value.
      for (int a = 0; a < np; ++a) {
        const double c =
            repo_->pivot_distance(attr, a, constraint.constant_vid);
        band.pivot_bands.push_back(Interval::Of(c - 1e-9, c + 1e-9));
      }
    }
  }
  return bands;
}

void TerIdsEngine::BeginBatch() {
  if (config_.cdd_memo_probe) {
    batch_cdd_sigs_.clear();
  }
}

uint64_t TerIdsEngine::DeterminantSignature(const Record& r,
                                            int missing_attr) {
  // FNV-1a over the missing attribute index and every non-missing
  // attribute's (index, token ids). SelectRules reads nothing else from the
  // arrival, so equal signatures imply an identical selection result.
  uint64_t h = kFnv1aOffsetBasis;
  h = Fnv1aMix(h, static_cast<uint64_t>(static_cast<uint32_t>(missing_attr)));
  for (int a = 0; a < r.num_attributes(); ++a) {
    const AttrValue& value = r.values[a];
    if (value.missing) {
      continue;
    }
    h = Fnv1aMix(h, static_cast<uint64_t>(static_cast<uint32_t>(a)) |
                        (1ULL << 32));
    for (Token t : value.tokens) {
      h = Fnv1aMix(h, static_cast<uint64_t>(static_cast<uint32_t>(t)));
    }
  }
  return h;
}

std::vector<ImputedTuple::ImputedAttr> TerIdsEngine::Impute(
    const Record& r, const ProbeCoords& pc, CostBreakdown* cost) {
  std::vector<ImputedTuple::ImputedAttr> result;
  // The index join evaluates each (probe attribute, sample) Jaccard
  // distance at most once per arrival, no matter how many selected rules
  // constrain that attribute — this memo is the "simultaneous traversal"
  // payoff of Section 5.3 that the unindexed baselines do not get.
  std::unordered_map<uint64_t, double> dist_memo;
  auto probe_sample_dist = [&](int attr, size_t sample_idx) {
    const uint64_t key = (static_cast<uint64_t>(sample_idx) << 5) |
                         static_cast<uint64_t>(attr);
    auto it = dist_memo.find(key);
    if (it != dist_memo.end()) {
      return it->second;
    }
    const double dist = JaccardDistance(
        r.values[attr].tokens, repo_->sample(sample_idx).values[attr].tokens);
    dist_memo.emplace(key, dist);
    return dist;
  };
  auto determinants_satisfied = [&](const CddRule& rule, size_t sample_idx) {
    for (const auto& [attr, constraint] : rule.determinants) {
      if (constraint.kind == AttrConstraint::Kind::kConstant) {
        // Probe-side equality was verified by the CDD-index; check the
        // sample side.
        if (repo_->sample_value_id(sample_idx, attr) !=
            constraint.constant_vid) {
          return false;
        }
      } else if (!constraint.interval.Contains(
                     probe_sample_dist(attr, sample_idx))) {
        return false;
      }
    }
    return true;
  };
  for (int j : r.MissingAttributes()) {
    // Memoization probe: would a batch-scoped cache keyed by determinant
    // signature have answered this selection? Counted only — the selection
    // still runs, so results are unchanged while CostBreakdown reports the
    // would-be hit rate. Gated off by default: the measured rate was near
    // zero on every profile (ROADMAP), so the hot loop skips the signature
    // hashing unless a run explicitly re-measures.
    if (config_.cdd_memo_probe && cost != nullptr) {
      cost->cdd_memo_queries += 1.0;
      if (!batch_cdd_sigs_.insert(DeterminantSignature(r, j)).second) {
        cost->cdd_memo_repeats += 1.0;
      }
    }
    // CDD selection via the CDD-index.
    std::vector<int> selected;
    {
      ScopedTimer timer(cost ? &cost->cdd_select_seconds : nullptr);
      selected = cdd_index_.SelectRules(r, pc, j);
    }
    // Sample retrieval: ONE pruned DR-index pass shared by all selected
    // rules. The per-attribute filter is the union of the rules' coordinate
    // bands (sound whenever every selected rule constrains the attribute);
    // retrieved samples are verified against each rule with memoized
    // probe-sample distances, and candidate values come from the
    // precomputed neighbor lists. This is the "simultaneous traversal" of
    // Section 5.3: each distance is computed once per arrival (probe-side)
    // or once per engine lifetime (domain-side), not once per rule.
    std::unordered_map<ValueId, double> freq;
    {
      ScopedTimer timer(cost ? &cost->impute_seconds : nullptr);
      // Union bands per attribute.
      const int d = repo_->num_attributes();
      std::vector<AttrBand> union_bands(d);
      std::vector<bool> all_rules_constrain(d, !selected.empty());
      std::vector<std::vector<Interval>> unions(d);
      for (int rule_idx : selected) {
        const CddRule& rule = rules_[rule_idx];
        const std::vector<AttrBand> bands = BandsForRule(rule, pc);
        for (int x = 0; x < d; ++x) {
          if (bands[x].pivot_bands.empty()) {
            all_rules_constrain[x] = false;
            continue;
          }
          if (unions[x].size() < bands[x].pivot_bands.size()) {
            unions[x].resize(bands[x].pivot_bands.size(), Interval::Empty());
          }
          for (size_t a = 0; a < bands[x].pivot_bands.size(); ++a) {
            unions[x][a].Union(bands[x].pivot_bands[a]);
          }
        }
      }
      for (int x = 0; x < d; ++x) {
        if (all_rules_constrain[x]) {
          union_bands[x].pivot_bands = unions[x];
        }
      }

      if (!selected.empty()) {
        for (size_t sample_idx : dr_index_.Retrieve(union_bands)) {
          for (int rule_idx : selected) {
            const CddRule& rule = rules_[rule_idx];
            if (!determinants_satisfied(rule, sample_idx)) {
              continue;
            }
            // Candidate set cand(s[A_j]): a binary-searched slice of the
            // sample value's distance-sorted neighbor list.
            neighborhoods_.AccumulateRange(
                j, repo_->sample_value_id(sample_idx, j), rule.dep_interval,
                &freq);
          }
        }
      }
    }
    std::vector<ImputedTuple::Candidate> cands =
        FinalizeCandidates(freq, config_.max_candidates_per_attr);
    if (!cands.empty()) {
      ImputedTuple::ImputedAttr ia;
      ia.attr = j;
      ia.candidates = std::move(cands);
      result.push_back(std::move(ia));
    }
  }
  return result;
}

Status TerIdsEngine::AbsorbRepositoryBatch(const std::vector<Record>& batch) {
  for (const Record& record : batch) {
    const size_t sample_idx = repo_->num_samples();
    TERIDS_RETURN_IF_ERROR(repo_->AddSample(record));
    dr_index_.InsertSample(sample_idx);
    // New domain values invalidate the cached value neighborhoods.
    neighborhoods_.Invalidate();
    // Widen rules the new sample violates; rebuild index entries of the
    // widened rules (dependent interval is a leaf aggregate).
    RuleMiner miner(repo_, MinerOptions{});
    const int widened = miner.AbsorbNewSample(sample_idx, &rules_);
    if (widened > 0) {
      cdd_index_.Build();  // Aggregates changed; rebuild the lattice trees.
    }
  }
  return Status::Ok();
}

}  // namespace terids
