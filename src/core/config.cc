#include "core/config.h"

namespace terids {

const char* PipelineKindName(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::kTerIds:
      return "TER-iDS";
    case PipelineKind::kIjGer:
      return "Ij+GER";
    case PipelineKind::kCddEr:
      return "CDD+ER";
    case PipelineKind::kDdEr:
      return "DD+ER";
    case PipelineKind::kEditingEr:
      return "er+ER";
    case PipelineKind::kConstraintEr:
      return "con+ER";
  }
  return "unknown";
}

}  // namespace terids
