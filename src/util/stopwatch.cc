#include "util/stopwatch.h"

// Stopwatch and ScopedTimer are header-only; this translation unit exists so
// the build system has a stable object for the util target.
