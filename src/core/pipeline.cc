#include "core/pipeline.h"

#include "er/probability.h"
#include "util/stopwatch.h"

namespace terids {

PipelineBase::PipelineBase(Repository* repo, EngineConfig config,
                           int num_streams, bool use_grid, bool use_prunings,
                           std::string name)
    : repo_(repo),
      config_(std::move(config)),
      topic_(repo->dict(), config_.keywords),
      use_prunings_(use_prunings),
      name_(std::move(name)) {
  TERIDS_CHECK(repo != nullptr);
  TERIDS_CHECK(repo->has_pivots());
  TERIDS_CHECK(num_streams >= 2);
  windows_.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    windows_.emplace_back(config_.window_size);
  }
  if (use_grid) {
    grid_ = std::make_unique<ErGrid>(repo->num_attributes(),
                                     config_.cell_width);
  }
}

const SlidingWindow& PipelineBase::window(int stream_id) const {
  TERIDS_CHECK(stream_id >= 0 &&
               stream_id < static_cast<int>(windows_.size()));
  return windows_[stream_id];
}

std::vector<ImputedTuple::ImputedAttr> PipelineBase::Impute(
    const Record& r, const ProbeCoords& pc, CostBreakdown* cost) {
  (void)pc;
  TERIDS_CHECK(imputer_ != nullptr);
  return imputer_->ImputeRecord(r, cost);
}

std::vector<const WindowTuple*> PipelineBase::LinearCandidates(
    const WindowTuple& probe, PruneStats* stats) const {
  (void)stats;
  std::vector<const WindowTuple*> out;
  for (size_t s = 0; s < windows_.size(); ++s) {
    if (static_cast<int>(s) == probe.stream_id()) {
      continue;
    }
    for (const auto& wt : windows_[s].tuples()) {
      out.push_back(wt.get());
    }
  }
  return out;
}

ArrivalOutcome PipelineBase::ProcessArrival(const Record& r) {
  TERIDS_CHECK(r.stream_id >= 0 &&
               r.stream_id < static_cast<int>(windows_.size()));
  ArrivalOutcome out;

  if (imputer_ != nullptr) {
    imputer_->OnArrival(r);
  }

  // --- Imputation phase (Algorithm 2 lines 8-10) -----------------------
  const ProbeCoords pc = ProbeCoords::Compute(r, *repo_);
  std::shared_ptr<const ImputedTuple> tuple;
  if (r.IsComplete()) {
    tuple = std::make_shared<const ImputedTuple>(
        ImputedTuple::FromComplete(r, repo_));
  } else {
    std::vector<ImputedTuple::ImputedAttr> imputed =
        Impute(r, pc, &out.cost);
    tuple = std::make_shared<const ImputedTuple>(ImputedTuple::FromImputation(
        r, repo_, std::move(imputed), config_.max_instances));
  }
  auto wt = std::make_shared<WindowTuple>();
  wt->tuple = tuple;
  wt->topic = topic_.Classify(*tuple);

  // --- ER phase (Algorithm 2 lines 14-26) ------------------------------
  {
    ScopedTimer timer(&out.cost.er_seconds);
    const bool topic_constrained = !topic_.IsUnconstrained();
    std::vector<const WindowTuple*> candidates;
    if (grid_ != nullptr) {
      ErGrid::CandidateResult grid_result =
          grid_->Candidates(*wt, config_.gamma, topic_constrained);
      candidates = std::move(grid_result.candidates);
      // Grid-level prunes are Theorem 4.1 / Theorem 4.2 kills; account for
      // them in this arrival's pair statistics.
      out.stats.total_pairs +=
          grid_result.topic_pruned + grid_result.sim_pruned;
      out.stats.topic_pruned += grid_result.topic_pruned;
      out.stats.sim_ub_pruned += grid_result.sim_pruned;
    } else {
      candidates = LinearCandidates(*wt, &out.stats);
    }

    for (const WindowTuple* cand : candidates) {
      if (use_prunings_) {
        double prob = 0.0;
        const PairOutcome outcome =
            EvaluatePair(*tuple, wt->topic, *cand->tuple, cand->topic,
                         config_.gamma, config_.alpha, &out.stats, &prob);
        if (outcome == PairOutcome::kMatched) {
          matches_.Add(tuple->rid(), cand->rid(), prob);
          MatchPair pair;
          pair.rid_a = std::min(tuple->rid(), cand->rid());
          pair.rid_b = std::max(tuple->rid(), cand->rid());
          pair.probability = prob;
          out.new_matches.push_back(pair);
        }
      } else {
        ++out.stats.total_pairs;
        ++out.stats.refined;
        const double prob = ExactProbability(*tuple, wt->topic, *cand->tuple,
                                             cand->topic, config_.gamma);
        if (prob > config_.alpha) {
          ++out.stats.matched;
          matches_.Add(tuple->rid(), cand->rid(), prob);
          MatchPair pair;
          pair.rid_a = std::min(tuple->rid(), cand->rid());
          pair.rid_b = std::max(tuple->rid(), cand->rid());
          pair.probability = prob;
          out.new_matches.push_back(pair);
        }
      }
    }
  }
  cum_stats_.Add(out.stats);

  // --- Window maintenance (Algorithm 2 lines 2-7, 11-13) ---------------
  if (grid_ != nullptr) {
    grid_->Insert(wt.get());
  }
  std::shared_ptr<WindowTuple> evicted =
      windows_[r.stream_id].Push(std::move(wt));
  if (evicted != nullptr) {
    if (grid_ != nullptr) {
      grid_->Remove(evicted.get());
    }
    matches_.RemoveAllWith(evicted->rid());
    if (imputer_ != nullptr) {
      imputer_->OnEvict(evicted->tuple->base());
    }
  }
  return out;
}

}  // namespace terids
