#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace terids {

namespace {
uint64_t PairKey(int64_t a, int64_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}
}  // namespace

PrecisionRecall ComputeFScore(const std::vector<MatchPair>& returned,
                              const std::vector<GroundTruthPair>& truth) {
  PrecisionRecall pr;
  std::unordered_set<uint64_t> truth_keys;
  truth_keys.reserve(truth.size());
  for (const GroundTruthPair& t : truth) {
    truth_keys.insert(PairKey(t.rid_a, t.rid_b));
  }
  std::unordered_set<uint64_t> returned_keys;
  returned_keys.reserve(returned.size());
  for (const MatchPair& p : returned) {
    returned_keys.insert(PairKey(p.rid_a, p.rid_b));
  }
  pr.returned = returned_keys.size();
  pr.truth_size = truth_keys.size();
  for (uint64_t key : returned_keys) {
    if (truth_keys.count(key) > 0) {
      ++pr.true_positives;
    }
  }
  if (pr.returned > 0) {
    pr.precision =
        static_cast<double>(pr.true_positives) / static_cast<double>(pr.returned);
  }
  if (pr.truth_size > 0) {
    pr.recall = static_cast<double>(pr.true_positives) /
                static_cast<double>(pr.truth_size);
  }
  if (pr.precision + pr.recall > 0.0) {
    pr.f_score =
        2.0 * pr.precision * pr.recall / (pr.precision + pr.recall);
  }
  return pr;
}

}  // namespace terids
