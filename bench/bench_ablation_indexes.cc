// Ablation bench for the design choices called out in DESIGN.md §5:
//  (a) entropy-selected vs random pivots (does the Section 5.4 cost model
//      buy pruning power / speed?),
//  (b) ER-grid cell width sweep (synopsis granularity).

#include <cstdio>

#include "bench_common.h"
#include "core/terids_engine.h"
#include "datagen/profiles.h"
#include "stream/stream_driver.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace terids;

struct AblationResult {
  double ms_per_arrival = 0.0;
  double pruning_power = 0.0;
  size_t matches = 0;
};

AblationResult RunEngine(const Experiment& experiment,
                         std::unique_ptr<Repository> repo,
                         const EngineConfig& config) {
  TerIdsEngine engine(repo.get(), config, 2, experiment.cdds());
  ExperimentParams params = experiment.params();
  std::vector<Record> inc_a = DataGenerator::WithMissing(
      experiment.dataset().source_a, params.xi, params.m, params.seed);
  std::vector<Record> inc_b = DataGenerator::WithMissing(
      experiment.dataset().source_b, params.xi, params.m, params.seed + 1);
  StreamDriver driver({inc_a, inc_b});
  size_t arrivals = 0;
  size_t matches = 0;
  Stopwatch watch;
  while (driver.HasNext() &&
         arrivals < static_cast<size_t>(params.max_arrivals)) {
    matches += engine.ProcessArrival(driver.Next()).new_matches.size();
    ++arrivals;
  }
  AblationResult result;
  result.ms_per_arrival = 1e3 * watch.ElapsedSeconds() / arrivals;
  result.pruning_power = engine.cumulative_stats().TotalPower();
  result.matches = matches;
  return result;
}

/// Repository with pivots chosen uniformly at random instead of by the
/// entropy cost model.
std::unique_ptr<Repository> RandomPivotRepo(const Experiment& experiment,
                                            uint64_t seed) {
  const GeneratedDataset& ds = experiment.dataset();
  auto repo = std::make_unique<Repository>(ds.schema.get(), ds.dict.get());
  for (const Record& r : ds.repo_records) {
    TERIDS_CHECK(repo->AddSample(r).ok());
  }
  Rng rng(seed);
  std::vector<AttributePivots> pivots;
  for (int x = 0; x < repo->num_attributes(); ++x) {
    AttributePivots p;
    const AttributeDomain& dom = repo->domain(x);
    const int count = 2;
    for (int a = 0; a < count; ++a) {
      p.pivots.push_back(
          dom.tokens(static_cast<ValueId>(rng.NextBounded(dom.size()))));
    }
    pivots.push_back(std::move(p));
  }
  repo->AttachPivots(std::move(pivots));
  return repo;
}

}  // namespace

int main() {
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  JsonReporter reporter("Ablation");
  PrintHeader("Ablation", "index design choices", base);

  std::printf("\n(a) entropy-selected vs random pivots (TER-iDS engine)\n");
  std::printf("%-10s %18s %18s %14s %14s\n", "dataset", "entropy ms/arr",
              "random ms/arr", "entropy prune%", "random prune%");
  for (const std::string& name : {std::string("Citations"),
                                  std::string("Bikes")}) {
    Experiment experiment(ProfileByName(name), BaseParams(name));
    AblationResult entropy = RunEngine(experiment,
                                       experiment.BuildRepository(),
                                       experiment.MakeConfig());
    AblationResult random = RunEngine(
        experiment, RandomPivotRepo(experiment, 99), experiment.MakeConfig());
    std::printf("%-10s %18.4f %18.4f %14.2f %14.2f\n", name.c_str(),
                entropy.ms_per_arrival, random.ms_per_arrival,
                100.0 * entropy.pruning_power, 100.0 * random.pruning_power);
    std::fflush(stdout);
    reporter.AddRow()
        .Str("part", "pivots")
        .Str("dataset", name)
        .Num("entropy_ms_per_arrival", entropy.ms_per_arrival)
        .Num("random_ms_per_arrival", random.ms_per_arrival)
        .Num("entropy_prune_pct", 100.0 * entropy.pruning_power)
        .Num("random_prune_pct", 100.0 * random.pruning_power);
  }

  std::printf("\n(b) ER-grid cell width sweep (Citations, TER-iDS engine)\n");
  std::printf("%-10s %14s %14s %10s\n", "cell", "ms/arrival", "prune%",
              "matches");
  Experiment experiment(ProfileByName("Citations"), BaseParams("Citations"));
  for (double width : {0.05, 0.1, 0.2, 0.4, 1.0}) {
    EngineConfig config = experiment.MakeConfig();
    config.cell_width = width;
    AblationResult r =
        RunEngine(experiment, experiment.BuildRepository(), config);
    std::printf("%-10.2f %14.4f %14.2f %10zu\n", width, r.ms_per_arrival,
                100.0 * r.pruning_power, r.matches);
    std::fflush(stdout);
    reporter.AddRow()
        .Str("part", "cell_width")
        .Str("dataset", "Citations")
        .Num("cell_width", width)
        .Num("ms_per_arrival", r.ms_per_arrival)
        .Num("prune_pct", 100.0 * r.pruning_power)
        .Num("matches", static_cast<double>(r.matches));
  }
  std::printf(
      "\nexpected: entropy pivots match or beat random pivots in per-arrival\n"
      "cost at equal result quality; a cell width of 1.0 degenerates the\n"
      "grid to one cell (no geometric cell pruning) while very small cells\n"
      "pay insertion overhead for the same candidates.\n");
  return 0;
}
