#ifndef TERIDS_REPO_REPO_BACKEND_H_
#define TERIDS_REPO_REPO_BACKEND_H_

#include <string>

namespace terids {

/// Selects the physical storage backend behind a Repository (DESIGN.md §8).
/// Split into its own header so configuration layers can name the selector
/// without pulling in the full storage interface.
enum class RepoBackend {
  kInMemory,      // Vectors + interning multimaps; the default.
  kMmapSnapshot,  // Build-once columnar snapshot file, opened via mmap.
};

const char* RepoBackendName(RepoBackend backend);

/// Parses "memory" / "mmap" (the TERIDS_BENCH_REPO_BACKEND spellings).
/// Returns false, leaving *backend untouched, on any other input.
bool ParseRepoBackend(const std::string& name, RepoBackend* backend);

}  // namespace terids

#endif  // TERIDS_REPO_REPO_BACKEND_H_
