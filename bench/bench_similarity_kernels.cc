// Similarity-kernel microbenchmarks + the refine-phase end-to-end effect of
// the flat token arena and the signature-bounded Jaccard kernel (ISSUE 5 +
// ISSUE 7, DESIGN.md §9, §11). Not a paper figure — this tracks the
// refinement hot path the TokenSet header has always called "the hot path
// of the whole system".
//
// Section 1 (intersection): linear merge vs galloping vs the signature
// reject — at all three signature widths, with per-width skip rates and
// signature-saturation columns (mean fill %, % of signatures > 75% full) —
// on synthetic sorted token sets at several size-skew shapes, with a
// correctness oracle (all algorithms must agree; the signature bound must
// dominate the exact count).
// Section 1b (batched filter): SigFilterCandidates' one-sweep SoA popcount
// pass vs the equivalent per-pair loop, per width, stamped with the active
// SIMD dispatch (avx2 / neon / scalar).
// Section 2 (layout): per-attribute Jaccard sums over real imputed tuples
// read through heap TokenSets (instance_tokens) vs flat arena views
// (instance_token_view) — the locality payoff in isolation.
// Section 3 (end-to-end): full TER-iDS runs per profile with the signature
// filter off vs on at each width; identical matches / MatchSet / outcome
// PruneStats are asserted (the filter may only skip merges), and the
// refine-phase seconds plus the per-width saturation / skip rates are the
// reported effect.

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/profiles.h"
#include "er/similarity.h"
#include "text/similarity_kernels.h"
#include "text/token_set.h"
#include "tuple/imputed_tuple.h"
#include "util/stopwatch.h"

namespace {

using namespace terids;
using namespace terids::bench;

std::vector<Token> RandomSortedTokens(std::mt19937_64* rng, size_t len,
                                      Token universe) {
  std::uniform_int_distribution<Token> dist(0, universe);
  std::vector<Token> tokens;
  tokens.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    tokens.push_back(dist(*rng));
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

struct SetPair {
  std::vector<Token> a;
  std::vector<Token> b;
  // Signatures at every supported width, flattened per SigWords layout.
  uint64_t sig_a[kMaxSigWords * 3];
  uint64_t sig_b[kMaxSigWords * 3];
};

constexpr int kWidths[] = {64, 128, 256};

/// Offset of width w's words inside SetPair::sig_a / sig_b.
int WidthSlot(int bits) { return bits == 64 ? 0 : bits == 128 ? 1 : 2; }
int WidthOffset(int bits) { return WidthSlot(bits) * kMaxSigWords; }

}  // namespace

int main() {
  JsonReporter reporter("similarity_kernels");
  const ExecKnobs env_knobs = EnvExecKnobs();

  // --- Section 1: intersection algorithm throughput -----------------------
  std::printf("==== similarity_kernels: merge vs gallop vs signature ====\n");
  std::printf("(SIMD dispatch: %s)\n", SimdDispatchName());
  std::printf("\n-- intersection: 20k random pairs per shape, 5 rounds --\n");
  std::printf("%12s %12s %12s %12s %14s %12s\n", "|small|x|large|", "merge M/s",
              "gallop M/s", "auto M/s", "sig-reject M/s", "sig-skip %");
  std::mt19937_64 rng(20210620);
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {8, 8}, {8, 64}, {8, 512}, {64, 64}, {64, 1024}, {4, 4096}};
  const int pairs_per_shape = 2000;
  const int rounds = 5;
  for (const auto& [small, large] : shapes) {
    std::vector<SetPair> pairs(pairs_per_shape);
    for (SetPair& p : pairs) {
      // Universe sized for partial overlap so neither algorithm gets a
      // degenerate all-common or all-disjoint workload.
      const Token universe = static_cast<Token>(4 * large);
      p.a = RandomSortedTokens(&rng, small, universe);
      p.b = RandomSortedTokens(&rng, large, universe);
      for (const int bits : kWidths) {
        BuildTokenSignature(p.a.data(), p.a.size(), bits,
                            p.sig_a + WidthOffset(bits));
        BuildTokenSignature(p.b.data(), p.b.size(), bits,
                            p.sig_b + WidthOffset(bits));
      }
    }
    const double total =
        static_cast<double>(pairs.size()) * static_cast<double>(rounds);
    size_t sink_linear = 0;
    Stopwatch w_linear;
    for (int r = 0; r < rounds; ++r) {
      for (const SetPair& p : pairs) {
        sink_linear +=
            IntersectLinear(p.a.data(), p.a.size(), p.b.data(), p.b.size());
      }
    }
    const double s_linear = w_linear.ElapsedSeconds();
    size_t sink_gallop = 0;
    Stopwatch w_gallop;
    for (int r = 0; r < rounds; ++r) {
      for (const SetPair& p : pairs) {
        sink_gallop +=
            IntersectGallop(p.a.data(), p.a.size(), p.b.data(), p.b.size());
      }
    }
    const double s_gallop = w_gallop.ElapsedSeconds();
    size_t sink_auto = 0;
    Stopwatch w_auto;
    for (int r = 0; r < rounds; ++r) {
      for (const SetPair& p : pairs) {
        sink_auto +=
            IntersectSize(p.a.data(), p.a.size(), p.b.data(), p.b.size());
      }
    }
    const double s_auto = w_auto.ElapsedSeconds();
    if (sink_linear != sink_gallop || sink_linear != sink_auto) {
      std::fprintf(stderr,
                   "FATAL: intersection algorithms disagree (shape %zux%zu)\n",
                   small, large);
      return 1;
    }
    // Signature-reject at every width: the O(words) bound, falling back to
    // the exact merge only when the bound cannot decide "empty" — the
    // filter-then-verify shape refinement uses (here with threshold 0:
    // reject iff provably disjoint). Saturation columns report the
    // popcount distribution of the probed signatures: mean fill (popcount /
    // width) and the fraction above the 75% saturation threshold — the
    // regime where the bound loosens and wider widths pay off.
    const auto mps = [&](double s) { return s > 0 ? total / s / 1e6 : 0.0; };
    JsonReporter::Row& row =
        reporter.AddKnobRow(env_knobs)
            .Str("section", "intersection")
            .Str("simd", SimdDispatchName())
            .Num("small", static_cast<double>(small))
            .Num("large", static_cast<double>(large))
            .Num("merge_mpairs_per_sec", mps(s_linear))
            .Num("gallop_mpairs_per_sec", mps(s_gallop))
            .Num("auto_mpairs_per_sec", mps(s_auto));
    for (const int bits : kWidths) {
      const int words = SigWords(bits);
      const int off = WidthOffset(bits);
      size_t sink_sig = 0;
      size_t skipped = 0;
      Stopwatch w_sig;
      for (int r = 0; r < rounds; ++r) {
        for (const SetPair& p : pairs) {
          if (SigIntersectionUpperBound(p.a.size(), p.sig_a + off, p.b.size(),
                                        p.sig_b + off, words) == 0) {
            ++skipped;
            continue;
          }
          sink_sig +=
              IntersectSize(p.a.data(), p.a.size(), p.b.data(), p.b.size());
        }
      }
      const double s_sig = w_sig.ElapsedSeconds();
      if (sink_sig != sink_linear) {
        std::fprintf(stderr,
                     "FATAL: signature reject changed a result (width %d)\n",
                     bits);
        return 1;
      }
      // Saturation distribution over both sides' signatures (one probe per
      // side, mirroring SigFilterCounters accounting).
      uint64_t fill_sum = 0;
      size_t saturated = 0;
      const int sat_threshold = (3 * bits) / 4;
      for (const SetPair& p : pairs) {
        for (const uint64_t* sig : {p.sig_a + off, p.sig_b + off}) {
          int pc = 0;
          for (int w = 0; w < words; ++w) {
            pc += PopCount64(sig[w]);
          }
          fill_sum += static_cast<uint64_t>(pc);
          saturated += pc > sat_threshold ? 1 : 0;
        }
      }
      const double probes = 2.0 * static_cast<double>(pairs.size());
      const double fill_pct =
          100.0 * static_cast<double>(fill_sum) / (probes * bits);
      const double sat_pct = 100.0 * static_cast<double>(saturated) / probes;
      const double skip_pct = 100.0 * static_cast<double>(skipped) / total;
      if (bits == 64) {
        std::printf("%7zux%-7zu %12.2f %12.2f %12.2f %14.2f %11.1f%%\n",
                    small, large, mps(s_linear), mps(s_gallop), mps(s_auto),
                    mps(s_sig), skip_pct);
      }
      std::printf("%16s w%-3d %14.2f M/s  skip %5.1f%%  fill %5.1f%%  "
                  ">75%% %5.1f%%\n",
                  "", bits, mps(s_sig), skip_pct, fill_pct, sat_pct);
      std::fflush(stdout);
      const std::string suffix =
          bits == 64 ? "" : "_w" + std::to_string(bits);
      row.Num("sig_reject_mpairs_per_sec" + suffix, mps(s_sig))
          .Num("sig_skip_pct" + suffix, skip_pct)
          .Num("sig_fill_pct" + suffix, fill_pct)
          .Num("sig_saturated_pct" + suffix, sat_pct);
    }
  }

  // --- Section 1b: batched SoA filter vs per-pair loop --------------------
  // The same pass-1 decision (sum of per-attribute Jaccard bounds vs gamma)
  // computed two ways over a synthetic candidate list: one
  // SigFilterCandidates sweep (SIMD-dispatched popcounts over the SoA
  // signature table) vs the scalar per-pair loop the sequential kernel
  // runs. Rows/sec counts candidate pairs (d attributes each) per second.
  {
    std::printf("\n-- batched filter: %s dispatch, 4096 rows x 4 attrs, "
                "20 rounds --\n",
                SimdDispatchName());
    std::printf("%6s %18s %18s %9s %10s\n", "width", "per-pair Mrows/s",
                "batched Mrows/s", "speedup", "survive %");
    const size_t num_rows = 4096;
    const int dim = 4;
    const int batch_rounds = 20;
    const double gamma = 0.35 * dim;
    for (const int bits : kWidths) {
      const int words = SigWords(bits);
      std::vector<uint32_t> len_a, len_b;
      std::vector<uint64_t> sig_a, sig_b;
      for (size_t i = 0; i < num_rows; ++i) {
        for (int k = 0; k < dim; ++k) {
          const size_t len = 4 + (i * 7 + static_cast<size_t>(k) * 13) % 60;
          const Token universe = k % 2 == 0 ? 96 : 4096;
          const std::vector<Token> a = RandomSortedTokens(&rng, len, universe);
          const std::vector<Token> b = RandomSortedTokens(&rng, len, universe);
          len_a.push_back(static_cast<uint32_t>(a.size()));
          len_b.push_back(static_cast<uint32_t>(b.size()));
          uint64_t wa[kMaxSigWords];
          uint64_t wb[kMaxSigWords];
          BuildTokenSignature(a.data(), a.size(), bits, wa);
          BuildTokenSignature(b.data(), b.size(), bits, wb);
          sig_a.insert(sig_a.end(), wa, wa + words);
          sig_b.insert(sig_b.end(), wb, wb + words);
        }
      }
      SigFilterBatch batch;
      batch.num_pairs = num_rows;
      batch.d = dim;
      batch.sig_bits = bits;
      batch.len_a = len_a.data();
      batch.len_b = len_b.data();
      batch.sig_a = sig_a.data();
      batch.sig_b = sig_b.data();
      std::vector<uint64_t> survivors((num_rows + 63) / 64);
      size_t batched_count = 0;
      Stopwatch w_batched;
      for (int r = 0; r < batch_rounds; ++r) {
        batched_count = SigFilterCandidates(batch, gamma, survivors.data());
      }
      const double s_batched = w_batched.ElapsedSeconds();
      size_t scalar_count = 0;
      Stopwatch w_scalar;
      for (int r = 0; r < batch_rounds; ++r) {
        scalar_count = 0;
        for (size_t i = 0; i < num_rows; ++i) {
          double total_ub = 0.0;
          for (int k = 0; k < dim; ++k) {
            const size_t e = i * static_cast<size_t>(dim) +
                             static_cast<size_t>(k);
            total_ub += SigJaccardUpperBound(
                len_a[e], sig_a.data() + e * words, len_b[e],
                sig_b.data() + e * words, words);
          }
          scalar_count += total_ub > gamma ? 1 : 0;
        }
      }
      const double s_scalar = w_scalar.ElapsedSeconds();
      if (batched_count != scalar_count) {
        std::fprintf(stderr,
                     "FATAL: batched filter disagrees with per-pair loop "
                     "(width %d: %zu vs %zu)\n",
                     bits, batched_count, scalar_count);
        return 1;
      }
      const double row_total =
          static_cast<double>(num_rows) * static_cast<double>(batch_rounds);
      const double scalar_mrps = s_scalar > 0 ? row_total / s_scalar / 1e6
                                              : 0.0;
      const double batched_mrps = s_batched > 0 ? row_total / s_batched / 1e6
                                                : 0.0;
      const double survive_pct =
          100.0 * static_cast<double>(batched_count) /
          static_cast<double>(num_rows);
      std::printf("%6d %18.2f %18.2f %8.2fx %9.1f%%\n", bits, scalar_mrps,
                  batched_mrps,
                  scalar_mrps > 0 ? batched_mrps / scalar_mrps : 0.0,
                  survive_pct);
      std::fflush(stdout);
      reporter.AddKnobRow(env_knobs)
          .Str("section", "batched_filter")
          .Str("simd", SimdDispatchName())
          .Num("width", bits)
          .Num("rows", static_cast<double>(num_rows))
          .Num("d", dim)
          .Num("perpair_mrows_per_sec", scalar_mrps)
          .Num("batched_mrows_per_sec", batched_mrps)
          .Num("survive_pct", survive_pct);
    }
  }

  // --- Section 2: arena vs vector layout ----------------------------------
  // Real imputed tuples from a text-heavy profile; the workload is the
  // exact per-attribute Jaccard sum of InstanceSimilarity, read once
  // through the heap TokenSets and once through the flat arena views.
  const std::string layout_dataset = "Citations";
  ExperimentParams layout_params = BaseParams(layout_dataset);
  Experiment layout_experiment(ProfileByName(layout_dataset), layout_params);
  std::unique_ptr<Repository> repo = layout_experiment.BuildRepository();
  std::vector<ImputedTuple> tuples;
  for (const Record& r : layout_experiment.dataset().source_a) {
    if (tuples.size() >= 400) break;
    tuples.push_back(ImputedTuple::FromComplete(r, repo.get()));
  }
  std::printf("\n-- layout: %zu tuples, all-pairs instance similarity --\n",
              tuples.size());
  const int d = repo->num_attributes();
  double sum_vec = 0.0;
  Stopwatch w_vec;
  for (const ImputedTuple& a : tuples) {
    for (const ImputedTuple& b : tuples) {
      double sim = 0.0;
      for (int k = 0; k < d; ++k) {
        sim += JaccardSimilarity(a.instance_tokens(0, k),
                                 b.instance_tokens(0, k));
      }
      sum_vec += sim;
    }
  }
  const double s_vec = w_vec.ElapsedSeconds();
  double sum_arena = 0.0;
  Stopwatch w_arena;
  for (const ImputedTuple& a : tuples) {
    for (const ImputedTuple& b : tuples) {
      sum_arena += InstanceSimilarity(a, 0, b, 0);
    }
  }
  const double s_arena = w_arena.ElapsedSeconds();
  if (sum_vec != sum_arena) {
    std::fprintf(stderr, "FATAL: arena layout changed similarity sums\n");
    return 1;
  }
  const double n_pairs = static_cast<double>(tuples.size()) *
                         static_cast<double>(tuples.size());
  std::printf("%14s %14s %9s\n", "vector Mp/s", "arena Mp/s", "speedup");
  const double vec_mps = s_vec > 0 ? n_pairs / s_vec / 1e6 : 0.0;
  const double arena_mps = s_arena > 0 ? n_pairs / s_arena / 1e6 : 0.0;
  std::printf("%14.3f %14.3f %8.2fx\n", vec_mps, arena_mps,
              vec_mps > 0 ? arena_mps / vec_mps : 0.0);
  reporter.AddKnobRow(env_knobs)
      .Str("section", "layout")
      .Str("dataset", layout_dataset)
      .Num("pairs", n_pairs)
      .Num("vector_mpairs_per_sec", vec_mps)
      .Num("arena_mpairs_per_sec", arena_mps);

  // --- Section 3: end-to-end refine-phase effect per profile --------------
  std::printf(
      "\n-- end-to-end TER-iDS: signature filter off vs on (per width) --\n");
  std::printf("%-10s %6s %16s %9s %8s %8s %8s\n", "dataset", "width",
              "refine ms/ar", "speedup", "skip %", ">75% %", "matches");
  for (const std::string& dataset : AllDatasets()) {
    ExperimentParams params = BaseParams(dataset);
    Experiment experiment(ProfileByName(dataset), params);
    EngineConfig off_config = experiment.MakeConfig();
    off_config.signature_filter = false;
    PipelineRun off = experiment.Run(PipelineKind::kTerIds, off_config);
    const auto refine_ms = [](const PipelineRun& run) {
      return run.arrivals > 0 ? 1e3 * run.total_cost.refine_seconds /
                                    static_cast<double>(run.arrivals)
                              : 0.0;
    };
    const double off_ms = refine_ms(off);
    std::printf("%-10s %6s %16.4f %9s %8s %8s %8llu\n", dataset.c_str(),
                "off", off_ms, "-", "-", "-",
                static_cast<unsigned long long>(off.stats.matched));
    JsonReporter::Row& row =
        reporter.AddKnobRow(env_knobs)
            .Str("section", "end_to_end")
            .Str("dataset", dataset)
            .Str("simd", SimdDispatchName())
            .Num("refine_ms_per_arrival_sig_off", off_ms)
            .Num("total_ms_per_arrival_sig_off",
                 1e3 * off.avg_arrival_seconds)
            .Num("matched", static_cast<double>(off.stats.matched));
    const int attr_count =
        static_cast<int>(experiment.dataset().source_a.front().values.size());
    for (const int bits : kWidths) {
      EngineConfig on_config = experiment.MakeConfig();
      on_config.signature_filter = true;
      on_config.sig_width = bits;
      PipelineRun on = experiment.Run(PipelineKind::kTerIds, on_config);
      // The acceptance contract: the filter (at any width) skips merges,
      // never changes output. A run violating it must not report numbers
      // as if it passed.
      if (on.stats.matched != off.stats.matched ||
          on.stats.refined != off.stats.refined ||
          on.stats.total_pairs != off.stats.total_pairs ||
          on.final_result_size != off.final_result_size) {
        std::fprintf(stderr,
                     "FATAL: signature filter changed results on %s "
                     "(width %d)\n",
                     dataset.c_str(), bits);
        return 1;
      }
      const double on_ms = refine_ms(on);
      // Pass 1 probes both sides of every attribute of each visited
      // instance pair, so probed pairs = sig_probes / (2 * d) and the skip
      // rate is the fraction of them certified merge-free.
      const double probed_pairs =
          static_cast<double>(on.stats.sig_probes) / (2.0 * attr_count);
      const double skip_pct =
          probed_pairs > 0
              ? 100.0 * static_cast<double>(on.stats.sig_rejects) /
                    probed_pairs
              : 0.0;
      std::printf("%-10s %6d %16.4f %8.2fx %7.1f%% %7.1f%% %8llu\n",
                  dataset.c_str(), bits, on_ms,
                  on_ms > 0 ? off_ms / on_ms : 0.0, skip_pct,
                  on.stats.SigSaturatedPct(),
                  static_cast<unsigned long long>(on.stats.matched));
      std::fflush(stdout);
      const std::string suffix =
          bits == 64 ? "" : "_w" + std::to_string(bits);
      row.Num("refine_ms_per_arrival_sig_on" + suffix, on_ms)
          .Num("total_ms_per_arrival_sig_on" + suffix,
               1e3 * on.avg_arrival_seconds)
          .Num("sig_skip_pct" + suffix, skip_pct)
          .Num("sig_saturated_pct" + suffix, on.stats.SigSaturatedPct());
    }
  }
  std::printf(
      "\nexpected shape: gallop wins over the merge as the size skew grows;\n"
      "the signature reject approaches bitmap speed on disjoint-heavy\n"
      "workloads and skips more at wider widths on long token sets (high\n"
      "64-bit saturation, e.g. EBooks); the batched SoA sweep beats the\n"
      "per-pair loop; the arena layout wins on locality; and the end-to-end\n"
      "refine phase speeds up most on text-heavy profiles, with identical\n"
      "matches and outcome PruneStats in every cell.\n");
  return 0;
}
