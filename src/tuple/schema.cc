#include "tuple/schema.h"

#include "util/status.h"

namespace terids {

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {
  TERIDS_CHECK(!names_.empty());
}

const std::string& Schema::name(int attr) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  return names_[attr];
}

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (names_[i] == name) {
      return i;
    }
  }
  return -1;
}

}  // namespace terids
