#ifndef TERIDS_ER_MATCH_SET_H_
#define TERIDS_ER_MATCH_SET_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace terids {

/// One TER-iDS result pair (r_i, r_j) with its ER probability.
struct MatchPair {
  int64_t rid_a = -1;  // always the smaller rid
  int64_t rid_b = -1;
  double probability = 0.0;
};

/// The entity result set ES maintained by Algorithm 1/2: current matching
/// pairs over the live sliding windows, with O(1) insertion and efficient
/// removal of every pair involving an expired tuple.
class MatchSet {
 public:
  /// Inserts or updates a pair; order of the two rids is irrelevant.
  void Add(int64_t rid_a, int64_t rid_b, double probability);

  /// Removes one pair. Returns true if it was present.
  bool Remove(int64_t rid_a, int64_t rid_b);

  /// Removes every pair involving `rid` (tuple expiration). Returns the
  /// number of pairs removed.
  int RemoveAllWith(int64_t rid);

  bool Contains(int64_t rid_a, int64_t rid_b) const;

  /// Probability of a pair, or -1 if absent.
  double ProbabilityOf(int64_t rid_a, int64_t rid_b) const;

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  /// Snapshot of the current result set.
  std::vector<MatchPair> ToVector() const;

 private:
  static uint64_t Key(int64_t a, int64_t b);

  std::unordered_map<uint64_t, MatchPair> pairs_;
  // rid -> partner rids, for expiration.
  std::unordered_map<int64_t, std::unordered_set<int64_t>> partners_;
};

}  // namespace terids

#endif  // TERIDS_ER_MATCH_SET_H_
