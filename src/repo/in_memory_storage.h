#ifndef TERIDS_REPO_IN_MEMORY_STORAGE_H_
#define TERIDS_REPO_IN_MEMORY_STORAGE_H_

#include <string>
#include <utility>
#include <vector>

#include "repo/repo_storage.h"

namespace terids {

/// The default Repository backend: everything lives in process memory as
/// plain vectors plus the AttributeDomain interning multimaps. This is the
/// reference implementation every other backend must match bit-for-bit —
/// the snapshot writer serializes from the read interface, and the
/// equivalence sweep compares engine output against it.
class InMemoryStorage final : public RepoStorage {
 public:
  explicit InMemoryStorage(int num_attributes);

  const char* name() const override { return "memory"; }

  // ---- Read path -------------------------------------------------------

  size_t domain_size(int attr) const override;
  const TokenSet& value_tokens(int attr, ValueId id) const override;
  std::string_view value_text(int attr, ValueId id) const override;
  int value_frequency(int attr, ValueId id) const override;
  ValueId FindValue(int attr, const TokenSet& tokens) const override;

  size_t num_samples() const override { return samples_.size(); }
  const Record& sample(size_t i) const override;
  ValueId sample_value_id(size_t i, int attr) const override;

  bool has_pivots() const override { return !pivots_.empty(); }
  int num_pivots(int attr) const override;
  const TokenSet& pivot_tokens(int attr, int pivot_idx) const override;
  double pivot_distance(int attr, int pivot_idx, ValueId vid) const override;
  void AppendValuesInCoordRange(int attr, const Interval& interval,
                                std::vector<ValueId>* out) const override;

  // ---- Write path ------------------------------------------------------

  ValueId RegisterValue(int attr, const TokenSet& tokens,
                        const std::string& text) override;
  void BumpFrequency(int attr, ValueId id) override;
  void AppendSample(const Record& record, std::vector<ValueId> vids) override;
  bool SupportsAttachPivots() const override { return true; }
  /// Precomputes, for every attribute x, pivot a, and domain value v:
  /// dist(v, piv_a[A_x]), and builds the sorted (main-pivot-coordinate,
  /// ValueId) lists used for candidate retrieval.
  void AttachPivots(std::vector<AttributePivots> pivots) override;

  /// Direct domain access for tests and diagnostics (the facade's
  /// Repository::domain pass-through). Engine code uses the interface.
  const AttributeDomain& domain(int attr) const;

 private:
  int num_attributes_;
  std::vector<Record> samples_;
  // sample_vids_[i][x] = ValueId of sample i's attribute x.
  std::vector<std::vector<ValueId>> sample_vids_;
  std::vector<AttributeDomain> domains_;

  std::vector<AttributePivots> pivots_;
  // pivot_dists_[x][a][vid] = dist(dom value vid, pivot a of attr x).
  std::vector<std::vector<std::vector<double>>> pivot_dists_;
  // sorted_coords_[x] = (main-pivot coord, vid) pairs sorted by coord.
  std::vector<std::vector<std::pair<double, ValueId>>> sorted_coords_;
};

}  // namespace terids

#endif  // TERIDS_REPO_IN_MEMORY_STORAGE_H_
