#include "stream/overload.h"

#include <cstdio>

namespace terids {

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedNewest:
      return "shed_newest";
    case OverloadPolicy::kShedOldest:
      return "shed_oldest";
    case OverloadPolicy::kDegrade:
      return "degrade";
  }
  return "unknown";
}

bool ParseOverloadPolicy(const std::string& name, OverloadPolicy* policy) {
  if (name == "block") {
    *policy = OverloadPolicy::kBlock;
    return true;
  }
  if (name == "shed_newest") {
    *policy = OverloadPolicy::kShedNewest;
    return true;
  }
  if (name == "shed_oldest") {
    *policy = OverloadPolicy::kShedOldest;
    return true;
  }
  if (name == "degrade") {
    *policy = OverloadPolicy::kDegrade;
    return true;
  }
  return false;
}

void ShedStats::Add(const ShedStats& other) {
  offered_arrivals += other.offered_arrivals;
  admitted_arrivals += other.admitted_arrivals;
  shed_arrivals += other.shed_arrivals;
  shed_batches += other.shed_batches;
  degraded_arrivals += other.degraded_arrivals;
  degraded_batches += other.degraded_batches;
  pressure_events += other.pressure_events;
  admit_block_seconds += other.admit_block_seconds;
  shed_pairs += other.shed_pairs;
  deferred_pairs += other.deferred_pairs;
  for (int p = 0; p < kNumExecPhases; ++p) {
    shed_by_phase[p] += other.shed_by_phase[p];
  }
}

std::string ShedStats::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"offered_arrivals\":%lld,\"admitted_arrivals\":%lld,"
      "\"shed_arrivals\":%lld,"
      "\"shed_batches\":%lld,\"degraded_arrivals\":%lld,"
      "\"degraded_batches\":%lld,\"pressure_events\":%lld,"
      "\"admit_block_seconds\":%.9g,\"shed_pairs\":%lld,"
      "\"deferred_pairs\":%lld,\"shed_rate\":%.9g,\"shed_by_phase\":"
      "[%lld,%lld,%lld,%lld]}",
      static_cast<long long>(offered_arrivals),
      static_cast<long long>(admitted_arrivals),
      static_cast<long long>(shed_arrivals),
      static_cast<long long>(shed_batches),
      static_cast<long long>(degraded_arrivals),
      static_cast<long long>(degraded_batches),
      static_cast<long long>(pressure_events), admit_block_seconds,
      static_cast<long long>(shed_pairs),
      static_cast<long long>(deferred_pairs), ShedRate(),
      static_cast<long long>(shed_by_phase[0]),
      static_cast<long long>(shed_by_phase[1]),
      static_cast<long long>(shed_by_phase[2]),
      static_cast<long long>(shed_by_phase[3]));
  return buf;
}

}  // namespace terids
