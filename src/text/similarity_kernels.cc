#include "text/similarity_kernels.h"

namespace terids {

size_t IntersectLinear(const Token* a, size_t na, const Token* b, size_t nb) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

namespace {

/// Index of the first element >= t in the sorted span b[from, nb), found by
/// exponential probing from `from` followed by a binary search of the
/// bracketed range. O(log distance) instead of O(distance).
size_t GallopLowerBound(const Token* b, size_t nb, size_t from, Token t) {
  size_t step = 1;
  size_t lo = from;
  size_t hi = from;
  while (hi < nb && b[hi] < t) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  const Token* first = b + lo;
  const Token* last = b + std::min(hi, nb);
  return static_cast<size_t>(std::lower_bound(first, last, t) - b);
}

}  // namespace

size_t IntersectGallop(const Token* a, size_t na, const Token* b, size_t nb) {
  // Gallop the smaller span into the larger one; the cursor into the large
  // span only moves forward, so the whole intersection is O(n log m).
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  size_t count = 0;
  size_t pos = 0;
  for (size_t i = 0; i < na && pos < nb; ++i) {
    pos = GallopLowerBound(b, nb, pos, a[i]);
    if (pos < nb && b[pos] == a[i]) {
      ++count;
      ++pos;
    }
  }
  return count;
}

}  // namespace terids
