#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/profiles.h"
#include "er/similarity.h"
#include "er/topic.h"
#include "eval/experiment.h"

namespace terids {
namespace {

ExperimentParams TinyParams() {
  ExperimentParams params;
  params.scale = 0.04;
  params.w = 40;
  params.max_arrivals = 160;
  return params;
}

TEST(ExperimentTest, OfflineArtifactsAreBuilt) {
  Experiment experiment(CitationsProfile(), TinyParams());
  EXPECT_FALSE(experiment.cdds().empty());
  EXPECT_FALSE(experiment.dds().empty());
  EXPECT_GT(experiment.pivot_selection_seconds(), 0.0);
  EXPECT_GT(experiment.rule_mining_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(experiment.gamma(),
                   0.5 * CitationsProfile().num_attributes());
}

TEST(ExperimentTest, EffectiveTruthPairsSatisfyThePredicate) {
  Experiment experiment(CitationsProfile(), TinyParams());
  const GeneratedDataset& ds = experiment.dataset();
  std::unordered_map<int64_t, const Record*> by_rid;
  for (const Record& r : ds.source_a) by_rid[r.rid] = &r;
  for (const Record& r : ds.source_b) by_rid[r.rid] = &r;
  TopicQuery topic(*ds.dict, {ds.topic_keywords[0]});
  for (const GroundTruthPair& gt : experiment.effective_truth()) {
    const Record& a = *by_rid.at(gt.rid_a);
    const Record& b = *by_rid.at(gt.rid_b);
    // Equation (2) on complete data: similarity above gamma...
    EXPECT_GT(RecordSimilarity(a, b), experiment.gamma());
    // ...and at least one side topical.
    bool topical = false;
    for (const Record* r : {&a, &b}) {
      for (const AttrValue& v : r->values) {
        topical = topical || topic.Matches(v.tokens);
      }
    }
    EXPECT_TRUE(topical);
  }
}

TEST(ExperimentTest, RunsAreIsolated) {
  // Each Run() builds a fresh repository, so running con+ER (which
  // registers stream values into domains) must not change a later
  // TER-iDS run.
  Experiment experiment(CitationsProfile(), TinyParams());
  PipelineRun before = experiment.Run(PipelineKind::kTerIds);
  experiment.Run(PipelineKind::kConstraintEr);
  PipelineRun after = experiment.Run(PipelineKind::kTerIds);
  EXPECT_EQ(before.accuracy.returned, after.accuracy.returned);
  EXPECT_EQ(before.accuracy.true_positives, after.accuracy.true_positives);
  EXPECT_EQ(before.stats.total_pairs, after.stats.total_pairs);
}

TEST(ExperimentTest, ZeroMissingRateMakesImputersIrrelevant) {
  ExperimentParams params = TinyParams();
  params.xi = 0.0;
  Experiment experiment(CitationsProfile(), params);
  // With complete streams every pipeline computes the same predicate.
  PipelineRun terids = experiment.Run(PipelineKind::kTerIds);
  PipelineRun con = experiment.Run(PipelineKind::kConstraintEr);
  EXPECT_EQ(terids.accuracy.returned, con.accuracy.returned);
  EXPECT_EQ(terids.accuracy.true_positives, con.accuracy.true_positives);
  // And both reproduce the predicate ground truth exactly.
  EXPECT_DOUBLE_EQ(terids.accuracy.f_score, 1.0);
}

TEST(ExperimentTest, HigherMissingRateDoesNotImproveFScore) {
  ExperimentParams low = TinyParams();
  low.xi = 0.1;
  ExperimentParams high = TinyParams();
  high.xi = 0.8;
  const double f_low =
      Experiment(CitationsProfile(), low).Run(PipelineKind::kTerIds)
          .accuracy.f_score;
  const double f_high =
      Experiment(CitationsProfile(), high).Run(PipelineKind::kTerIds)
          .accuracy.f_score;
  EXPECT_GE(f_low + 1e-9, f_high);
}

TEST(ExperimentTest, CostBreakdownSumsToReasonableTotal) {
  Experiment experiment(CitationsProfile(), TinyParams());
  PipelineRun run = experiment.Run(PipelineKind::kTerIds);
  EXPECT_GT(run.total_cost.total_seconds(), 0.0);
  EXPECT_LE(run.total_cost.total_seconds(), run.total_seconds + 1e-6);
}

}  // namespace
}  // namespace terids
