#include "index/dr_index.h"

namespace terids {

ProbeCoords ProbeCoords::Compute(const Record& r, const Repository& repo) {
  ProbeCoords pc;
  const int d = repo.num_attributes();
  pc.coords.resize(d);
  for (int x = 0; x < d; ++x) {
    if (r.values[x].missing) {
      continue;  // left empty
    }
    const int np = repo.num_pivots(x);
    pc.coords[x].reserve(np);
    for (int a = 0; a < np; ++a) {
      pc.coords[x].push_back(
          JaccardDistance(r.values[x].tokens, repo.pivot_tokens(x, a)));
    }
  }
  return pc;
}

DrIndex::DrIndex(const Repository* repo)
    : repo_(repo), tree_(repo->num_attributes()) {
  TERIDS_CHECK(repo != nullptr);
}

ArTreeEntry DrIndex::MakeEntry(size_t sample_idx) const {
  const int d = repo_->num_attributes();
  ArTreeEntry entry;
  entry.payload = static_cast<int64_t>(sample_idx);
  entry.box.resize(d);
  entry.agg.aux_dist.resize(d);
  entry.agg.size_intervals.resize(d);
  for (int x = 0; x < d; ++x) {
    const ValueId vid = repo_->sample_value_id(sample_idx, x);
    entry.box[x] = Interval::Point(repo_->coord(x, vid));
    const int np = repo_->num_pivots(x);
    for (int a = 1; a < np; ++a) {
      entry.agg.aux_dist[x].push_back(
          Interval::Point(repo_->pivot_distance(x, a, vid)));
    }
    entry.agg.size_intervals[x] = Interval::Point(
        static_cast<double>(repo_->value_tokens(x, vid).size()));
  }
  return entry;
}

void DrIndex::Build() {
  TERIDS_CHECK(repo_->has_pivots());
  std::vector<ArTreeEntry> entries;
  entries.reserve(repo_->num_samples());
  for (size_t i = 0; i < repo_->num_samples(); ++i) {
    entries.push_back(MakeEntry(i));
  }
  tree_.BulkLoad(std::move(entries));
}

void DrIndex::InsertSample(size_t sample_idx) {
  tree_.Insert(MakeEntry(sample_idx));
}

namespace {
/// Shared band predicate, applied to internal nodes (aggregated boxes) and
/// to leaf entries (point boxes) alike.
bool PassesBands(const std::vector<Interval>& box, const NodeAggregates& agg,
                 const std::vector<AttrBand>& bands) {
  for (size_t x = 0; x < bands.size(); ++x) {
    const AttrBand& band = bands[x];
    if (band.pivot_bands.empty() && band.size_band.empty()) {
      continue;
    }
    if (!band.pivot_bands.empty()) {
      if (!box[x].Overlaps(band.pivot_bands[0])) {
        return false;
      }
      // Auxiliary pivot bands against the aggregates.
      if (x < agg.aux_dist.size()) {
        const auto& aux = agg.aux_dist[x];
        for (size_t a = 1; a < band.pivot_bands.size(); ++a) {
          if (a - 1 < aux.size() && !aux[a - 1].empty() &&
              !aux[a - 1].Overlaps(band.pivot_bands[a])) {
            return false;
          }
        }
      }
    }
    if (!band.size_band.empty() && x < agg.size_intervals.size() &&
        !agg.size_intervals[x].empty() &&
        !agg.size_intervals[x].Overlaps(band.size_band)) {
      return false;
    }
  }
  return true;
}
}  // namespace

std::vector<size_t> DrIndex::Retrieve(
    const std::vector<AttrBand>& bands) const {
  TERIDS_CHECK(static_cast<int>(bands.size()) == repo_->num_attributes());
  std::vector<size_t> out;
  tree_.Query(
      [&bands](const ArTree::NodeView& node) {
        return PassesBands(node.box, node.agg, bands);
      },
      [&out, &bands](const ArTreeEntry& entry) {
        if (PassesBands(entry.box, entry.agg, bands)) {
          out.push_back(static_cast<size_t>(entry.payload));
        }
      });
  return out;
}

}  // namespace terids
