// Ad-hoc topic query CLI: run a TER-iDS query with user-chosen parameters
// over a generated dataset and print the matched pairs.
//
// Usage:
//   example_topic_query_cli [dataset] [topics] [rho] [alpha] [w] [xi]
//     dataset: Citations | Anime | Bikes | EBooks | Songs  (default Citations)
//     topics:  number of topic keywords in K, 0 = unconstrained (default 1)
//     rho:     gamma / d in (0,1)                          (default 0.5)
//     alpha:   probability threshold in [0,1)              (default 0.5)
//     w:       sliding window size                         (default 150)
//     xi:      missing rate in [0,1]                       (default 0.3)
//
// Demonstrates that query keywords are online parameters: nothing is
// re-mined or re-indexed when K changes (the paper's "ad-hoc topics").

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace terids;

  const std::string dataset = argc > 1 ? argv[1] : "Citations";
  const int topics = argc > 2 ? std::atoi(argv[2]) : 1;
  const double rho = argc > 3 ? std::atof(argv[3]) : 0.5;
  const double alpha = argc > 4 ? std::atof(argv[4]) : 0.5;
  const int w = argc > 5 ? std::atoi(argv[5]) : 150;
  const double xi = argc > 6 ? std::atof(argv[6]) : 0.3;

  ExperimentParams params;
  params.scale = 0.1;
  params.rho = rho;
  params.alpha = alpha;
  params.w = w;
  params.xi = xi;
  params.topics_in_query = topics;
  params.max_arrivals = 4 * w;

  Experiment experiment(ProfileByName(dataset), params);
  std::printf("query: dataset=%s |K|=%d gamma=%.2f alpha=%.2f w=%d xi=%.2f\n",
              dataset.c_str(), topics, experiment.gamma(), alpha, w, xi);

  PipelineRun run = experiment.Run(PipelineKind::kTerIds);
  std::printf(
      "%zu arrivals in %.3fs (%.4f ms/arrival), %llu candidate pairs, "
      "%.2f%% pruned\n",
      run.arrivals, run.total_seconds, 1e3 * run.avg_arrival_seconds,
      static_cast<unsigned long long>(run.stats.total_pairs),
      100.0 * run.stats.TotalPower());
  std::printf("reported %zu pairs; precision=%.3f recall=%.3f F=%.3f "
              "(vs %zu predicate-truth pairs)\n",
              run.accuracy.returned, run.accuracy.precision,
              run.accuracy.recall, run.accuracy.f_score,
              run.accuracy.truth_size);
  std::printf("%zu pairs still live in ES at stream end\n",
              run.final_result_size);
  return 0;
}
