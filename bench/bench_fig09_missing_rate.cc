// Figure 9: TER-iDS efficiency vs the missing rate xi.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  TimeSweep("Figure 9", "xi", {0.1, 0.2, 0.3, 0.4, 0.5, 0.8},
            [](ExperimentParams* p, double v) { p->xi = v; },
            AllPipelines());
  return 0;
}
