// BatchQueue: bounded SPSC handoff semantics — FIFO order, capacity
// blocking, close-and-drain — under a real producer/consumer thread pair
// (also the TSan surface for the async-ingest handoff).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "stream/batch_queue.h"

namespace terids {
namespace {

TEST(BatchQueueTest, FifoOrderAcrossThreads) {
  BatchQueue<int> queue(2);
  constexpr int kItems = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(queue.Push(i));
    }
    queue.Close();
  });
  std::vector<int> popped;
  int item;
  while (queue.Pop(&item)) {
    popped.push_back(item);
  }
  producer.join();
  ASSERT_EQ(popped.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(popped[i], i);
  }
}

TEST(BatchQueueTest, PopAfterCloseDrainsThenReturnsFalse) {
  BatchQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  int item = 0;
  EXPECT_TRUE(queue.Pop(&item));
  EXPECT_EQ(item, 1);
  EXPECT_TRUE(queue.Pop(&item));
  EXPECT_EQ(item, 2);
  EXPECT_FALSE(queue.Pop(&item));
  EXPECT_FALSE(queue.Pop(&item));  // Stays closed.
}

TEST(BatchQueueTest, BoundBlocksProducerUntilConsumerDrains) {
  BatchQueue<int> queue(1);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(1));
    pushed.store(1);
    EXPECT_TRUE(queue.Push(2));  // Must block until the consumer pops item 1.
    pushed.store(2);
    queue.Close();
  });
  while (pushed.load() < 1) {
    std::this_thread::yield();
  }
  // Give the producer a chance to (incorrectly) run ahead of the bound.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pushed.load(), 1) << "queue of capacity 1 let a second Push by";
  int item = 0;
  EXPECT_TRUE(queue.Pop(&item));
  EXPECT_EQ(item, 1);
  EXPECT_TRUE(queue.Pop(&item));
  EXPECT_EQ(item, 2);
  EXPECT_FALSE(queue.Pop(&item));
  producer.join();
}

TEST(BatchQueueTest, CancelUnblocksAndStopsProducer) {
  BatchQueue<int> queue(1);
  std::atomic<bool> push_rejected{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(1));
    // Queue is full; this Push blocks until Cancel, then reports rejection
    // so the producer can stop instead of running the stream dry.
    if (!queue.Push(2)) {
      push_rejected.store(true);
      return;
    }
    queue.Close();
  });
  // Let the producer reach the blocking Push before cancelling.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Cancel();
  producer.join();
  EXPECT_TRUE(push_rejected.load());
  int item = 0;
  EXPECT_FALSE(queue.Pop(&item));  // Buffered items were dropped.
  EXPECT_FALSE(queue.Push(3));     // Still cancelled.
}

TEST(BatchQueueTest, MoveOnlyPayload) {
  BatchQueue<std::unique_ptr<int>> queue(2);
  ASSERT_TRUE(queue.Push(std::make_unique<int>(42)));
  queue.Close();
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.Pop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BatchQueueTest, PushAfterCloseReturnsFalseAndKeepsBufferPoppable) {
  BatchQueue<int> queue(2);
  EXPECT_TRUE(queue.Push(1));
  queue.Close();
  // Regression: this used to trip TERIDS_CHECK(!closed_) after winning the
  // not-full wait; the contract is now the same as the Cancel path — the
  // item is dropped and the producer is told to stop.
  EXPECT_FALSE(queue.Push(2));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));  // end-of-stream still drains the buffer
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_FALSE(queue.Push(3));  // and stays rejected after the drain
}

TEST(BatchQueueTest, CloseUnblocksAFullQueuePush) {
  BatchQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    // Blocks on the full queue until Close, then must report rejection
    // rather than enqueue behind end-of-stream.
    rejected = !queue.Push(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  EXPECT_TRUE(rejected.load());
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BatchQueueTest, SizeAndHighWatermarkTrackOccupancy) {
  BatchQueue<int> queue(4);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.high_watermark(), 0u);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.high_watermark(), 2u);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(queue.size(), 1u);
  // The watermark is a running maximum: draining never lowers it.
  EXPECT_EQ(queue.high_watermark(), 2u);
  ASSERT_TRUE(queue.Push(3));
  ASSERT_TRUE(queue.Push(4));
  ASSERT_TRUE(queue.Push(5));
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.high_watermark(), 4u);
}

TEST(BatchQueueTest, ForcePushExceedsCapacityWithoutBlocking) {
  BatchQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  // A blocking Push would deadlock a single-threaded test here; ForcePush
  // must admit past the bound immediately (the degrade policy's never-block
  // contract) and the watermark must record the overshoot.
  EXPECT_TRUE(queue.ForcePush(2));
  EXPECT_TRUE(queue.ForcePush(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.high_watermark(), 3u);
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(BatchQueueTest, ForcePushRejectedAfterCloseAndCancel) {
  BatchQueue<int> closed(2);
  closed.Close();
  EXPECT_FALSE(closed.ForcePush(1));
  BatchQueue<int> cancelled(2);
  ASSERT_TRUE(cancelled.Push(1));
  cancelled.Cancel();
  EXPECT_FALSE(cancelled.ForcePush(2));
  int out = 0;
  EXPECT_FALSE(cancelled.Pop(&out));
}

TEST(BatchQueueTest, MutateOldestIfFullOnlyFiresAtCapacity) {
  BatchQueue<int> queue(2);
  int calls = 0;
  EXPECT_FALSE(queue.MutateOldestIfFull([&](int*) { ++calls; }));
  ASSERT_TRUE(queue.Push(10));
  EXPECT_FALSE(queue.MutateOldestIfFull([&](int*) { ++calls; }));
  ASSERT_TRUE(queue.Push(20));
  EXPECT_TRUE(queue.MutateOldestIfFull([&](int* oldest) {
    ++calls;
    EXPECT_EQ(*oldest, 10);
    *oldest = -10;
  }));
  EXPECT_EQ(calls, 1);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, -10);  // Mutated in place, FIFO position unchanged.
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 20);
}

TEST(BatchQueueTest, MutateOldestRunsAtomicallyAgainstPop) {
  // The shed_oldest path marks the front batch while the consumer pops
  // concurrently; the mutation must apply to an item the consumer will
  // still observe (never to a popped-out copy). Popped values are either
  // marked or unmarked, but every mark lands on a value the consumer sees.
  BatchQueue<int> queue(2);
  constexpr int kItems = 2000;
  std::atomic<int> marked{0};
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(queue.Push(i));
      // Mark-once guard, exactly like the shed_oldest policy's
      // already-shed check: the same front item may be seen twice.
      queue.MutateOldestIfFull([&](int* oldest) {
        if (*oldest < 1000000) {
          *oldest += 1000000;
          marked.fetch_add(1);
        }
      });
    }
    queue.Close();
  });
  int observed_marks = 0;
  int item;
  while (queue.Pop(&item)) {
    if (item >= 1000000) {
      ++observed_marks;
    }
  }
  producer.join();
  EXPECT_EQ(observed_marks, marked.load());
}

}  // namespace
}  // namespace terids
