#include "er/similarity.h"

#include "text/token_set.h"
#include "util/status.h"

namespace terids {

double RecordSimilarity(const Record& a, const Record& b) {
  TERIDS_CHECK(a.num_attributes() == b.num_attributes());
  double sim = 0.0;
  static const TokenSet kEmpty;
  for (int k = 0; k < a.num_attributes(); ++k) {
    const TokenSet& ta = a.values[k].missing ? kEmpty : a.values[k].tokens;
    const TokenSet& tb = b.values[k].missing ? kEmpty : b.values[k].tokens;
    sim += JaccardSimilarity(ta, tb);
  }
  return sim;
}

double InstanceSimilarity(const ImputedTuple& a, int inst_a,
                          const ImputedTuple& b, int inst_b) {
  TERIDS_CHECK(a.num_attributes() == b.num_attributes());
  double sim = 0.0;
  for (int k = 0; k < a.num_attributes(); ++k) {
    sim += JaccardSimilarity(a.instance_tokens(inst_a, k),
                             b.instance_tokens(inst_b, k));
  }
  return sim;
}

double InstanceDistance(const ImputedTuple& a, int inst_a,
                        const ImputedTuple& b, int inst_b) {
  return static_cast<double>(a.num_attributes()) -
         InstanceSimilarity(a, inst_a, b, inst_b);
}

namespace {
TokenSet UnionTokens(const Record& r) {
  std::vector<Token> all;
  for (const AttrValue& v : r.values) {
    if (!v.missing) {
      all.insert(all.end(), v.tokens.tokens().begin(), v.tokens.tokens().end());
    }
  }
  return TokenSet::FromTokens(std::move(all));
}
}  // namespace

double HeterogeneousRecordSimilarity(const Record& a, const Record& b) {
  return JaccardSimilarity(UnionTokens(a), UnionTokens(b));
}

}  // namespace terids
