#ifndef TERIDS_CORE_TERIDS_ENGINE_H_
#define TERIDS_CORE_TERIDS_ENGINE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/pipeline.h"
#include "imputation/value_neighborhoods.h"
#include "index/cdd_index.h"
#include "index/dr_index.h"
#include "rules/rule.h"

namespace terids {

/// The full TER-iDS processing engine (Algorithm 2, Section 5.3).
///
/// Offline (construction): pivot tables are assumed attached to the
/// repository; the engine builds the CDD-index I_j over the mined CDD rules
/// and the DR-index I_R over the repository.
///
/// Online (per arrival): the index join. For each missing attribute of the
/// arriving tuple, the CDD-index selects compatible rules (constant
/// constraints verified against the probe coordinates); each selected rule
/// is turned into per-attribute coordinate bands that drive a pruned
/// DR-index retrieval of candidate samples; exact determinant verification
/// and candidate-value accumulation (Equation 4) complete the imputation.
/// The imputed tuple then probes the ER-grid, whose cell-level topic and
/// distance bounds feed the pair-level pruning cascade (Theorems 4.1-4.4).
class TerIdsEngine : public PipelineBase {
 public:
  /// The engine copies `rules` (it owns the vector its CDD-index points
  /// into). `dynamic_repository` enables the Section 5.5 extension hooks.
  TerIdsEngine(Repository* repo, EngineConfig config, int num_streams,
               std::vector<CddRule> rules);

  /// Dynamic repository maintenance (Section 5.5): adds a batch of new
  /// complete tuples to R, extends the DR-index incrementally, widens or
  /// adds CDD rules via the miner's absorb step, and refreshes the
  /// CDD-index entries of changed rules.
  Status AbsorbRepositoryBatch(const std::vector<Record>& batch);

  const CddIndex& cdd_index() const { return cdd_index_; }
  const DrIndex& dr_index() const { return dr_index_; }
  const std::vector<CddRule>& rules() const { return rules_; }

 protected:
  std::vector<ImputedTuple::ImputedAttr> Impute(const Record& r,
                                                const ProbeCoords& pc,
                                                CostBreakdown* cost) override;
  /// Resets the batch-scoped CDD-selection memoization probe (see below).
  void BeginBatch() override;

 private:
  std::vector<AttrBand> BandsForRule(const CddRule& rule,
                                     const ProbeCoords& pc) const;
  /// Determinant signature of one (record, missing attribute) CDD
  /// selection: a hash of the missing attribute index and every non-missing
  /// attribute's token set — exactly the inputs SelectRules depends on, so
  /// two arrivals with equal signatures would hit a selection cache.
  static uint64_t DeterminantSignature(const Record& r, int missing_attr);

  std::vector<CddRule> rules_;
  CddIndex cdd_index_;
  DrIndex dr_index_;
  ValueNeighborhoods neighborhoods_;
  /// CDD-selection memoization probe: determinant signatures seen since the
  /// last BeginBatch, reported via CostBreakdown::cdd_memo_{queries,
  /// repeats}. Only maintained when EngineConfig::cdd_memo_probe is set —
  /// the PR-3 measurement found a near-zero hit rate, so by default the
  /// hot loop pays nothing for it (ROADMAP decision).
  std::unordered_set<uint64_t> batch_cdd_sigs_;
};

}  // namespace terids

#endif  // TERIDS_CORE_TERIDS_ENGINE_H_
