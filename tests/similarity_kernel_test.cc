// Property tests of the flat similarity kernels (DESIGN.md §9, §11):
//
// 1. The three intersection algorithms — the seed linear merge (reproduced
//    here verbatim as the oracle), IntersectLinear, and IntersectGallop —
//    agree exactly on randomized token sets covering empty, duplicated, and
//    heavily skewed inputs.
// 2. The signature bound is sound at every width (64 / 128 / 256):
//    SigIntersectionUpperBound is always >= the exact intersection size and
//    SigJaccardUpperBound >= the exact Jaccard similarity, so the signature
//    filter can only skip merges, never flip a verdict; wider signatures
//    only tighten the bound (OR-coarsening monotonicity).
// 3. SignatureBit spreads dense dictionary ids uniformly across all three
//    widths (chi-square pinned), for both random and sequential ids.
// 4. The SIMD-dispatched batch popcounts (SigPopCountBatch) agree exactly
//    with the forced-scalar core, and SigFilterCandidates reproduces the
//    per-pair pass-1 decision bit for bit.
// 5. TokenArena views are faithful at every width: every (instance,
//    attribute) slot of an ImputedTuple holds exactly instance_tokens(),
//    with the matching signature words, and InstanceSimilarityExceeds
//    equals InstanceSimilarity > gamma for both filter settings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "er/similarity.h"
#include "text/similarity_kernels.h"
#include "text/token_arena.h"
#include "text/token_set.h"
#include "tuple/imputed_tuple.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

/// The seed implementation of TokenSet::IntersectionSize (PR-1 .. PR-4),
/// kept verbatim as the ground-truth oracle.
size_t SeedIntersectionSize(const std::vector<Token>& a,
                            const std::vector<Token>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Random (possibly empty / duplicated) token list; FromTokens handles the
/// sort + dedup exactly as production token sets do.
std::vector<Token> RandomTokens(std::mt19937_64* rng, size_t max_len,
                                Token universe) {
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<Token> tok_dist(0, universe);
  std::uniform_int_distribution<int> dup_dist(0, 3);
  const size_t len = len_dist(*rng);
  std::vector<Token> tokens;
  tokens.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    const Token t = tok_dist(*rng);
    tokens.push_back(t);
    if (dup_dist(*rng) == 0) {
      tokens.push_back(t);  // force duplicates pre-dedup
    }
  }
  return tokens;
}

TEST(SimilarityKernelTest, IntersectionAlgorithmsAgreeWithSeedOracle) {
  std::mt19937_64 rng(20210620);
  // Size pairs stressing both regimes: balanced (linear merge) and heavily
  // skewed (gallop), including empty sides.
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {0, 0},  {0, 40},  {1, 1},    {8, 8},     {5, 400},
      {3, 50}, {64, 64}, {2, 1000}, {300, 300}, {1, 2000}};
  for (const auto& [la, lb] : shapes) {
    for (int rep = 0; rep < 50; ++rep) {
      // Small universe => dense overlap; large => sparse.
      const Token universe = rep % 2 == 0 ? 64 : 100000;
      const TokenSet a = TokenSet::FromTokens(RandomTokens(&rng, la, universe));
      const TokenSet b = TokenSet::FromTokens(RandomTokens(&rng, lb, universe));
      const size_t seed =
          SeedIntersectionSize(std::vector<Token>(a.begin(), a.end()),
                               std::vector<Token>(b.begin(), b.end()));
      EXPECT_EQ(IntersectLinear(a.data(), a.size(),
                                b.data(), b.size()),
                seed);
      EXPECT_EQ(IntersectGallop(a.data(), a.size(),
                                b.data(), b.size()),
                seed);
      EXPECT_EQ(a.IntersectionSize(b), seed);  // the adaptive dispatch
    }
  }
}

TEST(SimilarityKernelTest, SignatureBoundDominatesExactIntersection) {
  std::mt19937_64 rng(42);
  for (int rep = 0; rep < 2000; ++rep) {
    const Token universe = rep % 3 == 0 ? 32 : 5000;
    const TokenSet a = TokenSet::FromTokens(RandomTokens(&rng, 120, universe));
    const TokenSet b = TokenSet::FromTokens(RandomTokens(&rng, 120, universe));
    const uint64_t sa = TokenSignature(a.data(), a.size());
    const uint64_t sb = TokenSignature(b.data(), b.size());
    const size_t exact = a.IntersectionSize(b);
    const size_t bound = SigIntersectionUpperBound(a.size(), sa, b.size(), sb);
    ASSERT_GE(bound, exact);
    ASSERT_LE(bound, std::min(a.size(), b.size()));
    ASSERT_GE(SigJaccardUpperBound(a.size(), sa, b.size(), sb),
              JaccardSimilarity(a, b));
  }
  // The both-empty convention matches JaccardSimilarity.
  EXPECT_DOUBLE_EQ(SigJaccardUpperBound(0, 0, 0, 0), 1.0);
}

TEST(SimilarityKernelTest, SignatureBoundSoundAndMonotoneAcrossWidths) {
  // At every width the bound dominates the exact intersection, and because
  // the widths share one hash (the 64-bit index is the 256-bit index >> 2,
  // so narrower signatures are OR-coarsenings of wider ones) the bound can
  // only tighten as the width grows.
  std::mt19937_64 rng(20210620);
  const int widths[] = {64, 128, 256};
  for (int rep = 0; rep < 1500; ++rep) {
    const Token universe = rep % 3 == 0 ? 48 : 20000;
    const TokenSet a = TokenSet::FromTokens(RandomTokens(&rng, 300, universe));
    const TokenSet b = TokenSet::FromTokens(RandomTokens(&rng, 300, universe));
    const size_t exact = a.IntersectionSize(b);
    const double exact_jac = JaccardSimilarity(a, b);
    size_t prev_bound = std::min(a.size(), b.size()) + 1;
    for (const int bits : widths) {
      uint64_t sa[kMaxSigWords];
      uint64_t sb[kMaxSigWords];
      BuildTokenSignature(a.data(), a.size(), bits, sa);
      BuildTokenSignature(b.data(), b.size(), bits, sb);
      const int words = SigWords(bits);
      const size_t bound =
          SigIntersectionUpperBound(a.size(), sa, b.size(), sb, words);
      ASSERT_GE(bound, exact) << "width " << bits;
      ASSERT_LE(bound, std::min(a.size(), b.size())) << "width " << bits;
      ASSERT_LE(bound, prev_bound) << "width " << bits;
      prev_bound = bound;
      ASSERT_GE(SigJaccardUpperBound(a.size(), sa, b.size(), sb, words),
                exact_jac)
          << "width " << bits;
      if (bits == 64) {
        // The legacy single-word overloads are the words=1 special case.
        ASSERT_EQ(bound,
                  SigIntersectionUpperBound(a.size(), sa[0], b.size(), sb[0]));
        ASSERT_EQ(sa[0], TokenSignature(a.data(), a.size()));
      }
    }
  }
}

TEST(SimilarityKernelTest, SignatureBitUniformAcrossWidths) {
  // Chi-square uniformity of SignatureBit over both random and sequential
  // (dense dictionary id) tokens, for all three widths. Threshold is
  // dof + 4 * sqrt(2 * dof) — about 4 standard deviations above the mean
  // of the chi-square distribution, and deterministic here since both the
  // hash and the PRNG seed are fixed.
  std::mt19937_64 rng(7);
  const int kSamples = 100000;
  std::vector<Token> random_tokens(kSamples);
  std::vector<Token> sequential_tokens(kSamples);
  std::uniform_int_distribution<Token> tok_dist(0, 1u << 30);
  for (int i = 0; i < kSamples; ++i) {
    random_tokens[i] = tok_dist(rng);
    sequential_tokens[i] = static_cast<Token>(i);
  }
  for (const int bits : {64, 128, 256}) {
    for (const auto* tokens : {&random_tokens, &sequential_tokens}) {
      std::vector<int> counts(bits, 0);
      for (const Token t : *tokens) {
        const int bit = SignatureBit(t, bits);
        ASSERT_GE(bit, 0);
        ASSERT_LT(bit, bits);
        ++counts[bit];
      }
      const double expected = static_cast<double>(kSamples) / bits;
      double chi2 = 0.0;
      for (const int c : counts) {
        const double d = c - expected;
        chi2 += d * d / expected;
      }
      const double dof = bits - 1;
      const double threshold = dof + 4.0 * std::sqrt(2.0 * dof);
      EXPECT_LT(chi2, threshold)
          << "width " << bits << " "
          << (tokens == &random_tokens ? "random" : "sequential");
    }
  }
}

TEST(SimilarityKernelTest, BatchPopcountsMatchScalarAcrossWidths) {
  // The dispatched SigPopCountBatch (AVX2 / NEON when the host supports
  // them) must agree word-for-word with the forced-scalar core — integer
  // popcounts leave no room for drift. Entry counts are chosen to cover
  // full vectors plus every tail length.
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<uint64_t> word_dist;
  for (const int bits : {64, 128, 256}) {
    const int words = SigWords(bits);
    for (const size_t entries : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 64u, 1001u}) {
      std::vector<uint64_t> sa(entries * words);
      std::vector<uint64_t> sb(entries * words);
      for (auto& w : sa) w = word_dist(rng);
      for (auto& w : sb) w = word_dist(rng);
      std::vector<uint32_t> pa_s(entries), pb_s(entries), pc_s(entries);
      std::vector<uint32_t> pa_v(entries), pb_v(entries), pc_v(entries);
      SigPopCountBatch(sa.data(), sb.data(), entries, words, pa_s.data(),
                       pb_s.data(), pc_s.data(), /*force_scalar=*/true);
      SigPopCountBatch(sa.data(), sb.data(), entries, words, pa_v.data(),
                       pb_v.data(), pc_v.data(), /*force_scalar=*/false);
      for (size_t i = 0; i < entries; ++i) {
        ASSERT_EQ(pa_s[i], pa_v[i]) << bits << " entry " << i;
        ASSERT_EQ(pb_s[i], pb_v[i]) << bits << " entry " << i;
        ASSERT_EQ(pc_s[i], pc_v[i]) << bits << " entry " << i;
        // Cross-check one entry against the per-pair SigPopCount.
        const SigPopCounts p =
            SigPopCount(sa.data() + i * words, sb.data() + i * words, words);
        ASSERT_EQ(static_cast<uint32_t>(p.a), pa_s[i]);
        ASSERT_EQ(static_cast<uint32_t>(p.b), pb_s[i]);
        ASSERT_EQ(static_cast<uint32_t>(p.common), pc_s[i]);
      }
    }
  }
}

TEST(SimilarityKernelTest, BatchedFilterMatchesPerPairPassOne) {
  // SigFilterCandidates over a flattened candidate list must reproduce the
  // per-pair decision of InstanceSimilarityExceeds' pass 1: sum the
  // per-attribute Jaccard upper bounds in attribute order, survive iff the
  // sum exceeds gamma.
  std::mt19937_64 rng(1234);
  for (const int bits : {64, 128, 256}) {
    const int words = SigWords(bits);
    for (const int d : {1, 3, 4}) {
      const size_t num_pairs = 257;  // covers several survivor bitmap words
      std::vector<uint32_t> len_a, len_b;
      std::vector<uint64_t> sig_a, sig_b;
      std::vector<std::vector<Token>> toks_a, toks_b;
      for (size_t i = 0; i < num_pairs; ++i) {
        for (int k = 0; k < d; ++k) {
          const Token universe = (i + k) % 2 == 0 ? 40 : 8000;
          const TokenSet a =
              TokenSet::FromTokens(RandomTokens(&rng, 60, universe));
          const TokenSet b =
              TokenSet::FromTokens(RandomTokens(&rng, 60, universe));
          len_a.push_back(static_cast<uint32_t>(a.size()));
          len_b.push_back(static_cast<uint32_t>(b.size()));
          uint64_t wa[kMaxSigWords];
          uint64_t wb[kMaxSigWords];
          BuildTokenSignature(a.data(), a.size(), bits, wa);
          BuildTokenSignature(b.data(), b.size(), bits, wb);
          sig_a.insert(sig_a.end(), wa, wa + words);
          sig_b.insert(sig_b.end(), wb, wb + words);
        }
      }
      SigFilterBatch batch;
      batch.num_pairs = num_pairs;
      batch.d = d;
      batch.sig_bits = bits;
      batch.len_a = len_a.data();
      batch.len_b = len_b.data();
      batch.sig_a = sig_a.data();
      batch.sig_b = sig_b.data();
      const double gamma = 0.35 * d;
      std::vector<uint64_t> survivors((num_pairs + 63) / 64, ~uint64_t{0});
      const size_t count = SigFilterCandidates(batch, gamma, survivors.data());
      size_t expect_count = 0;
      for (size_t i = 0; i < num_pairs; ++i) {
        double total_ub = 0.0;
        for (int k = 0; k < d; ++k) {
          const size_t e = i * d + k;
          total_ub += SigJaccardUpperBound(len_a[e], sig_a.data() + e * words,
                                           len_b[e], sig_b.data() + e * words,
                                           words);
        }
        const bool expect_survive = total_ub > gamma;
        expect_count += expect_survive ? 1 : 0;
        ASSERT_EQ((survivors[i >> 6] >> (i & 63)) & 1,
                  expect_survive ? 1u : 0u)
            << "width " << bits << " d " << d << " row " << i;
      }
      ASSERT_EQ(count, expect_count);
    }
  }
}

TEST(SimilarityKernelTest, SignatureDetectsDisjointBitsets) {
  // Two sets whose signatures share no bits must be provably disjoint.
  std::vector<Token> a_toks;
  std::vector<Token> b_toks;
  for (Token t = 0; t < 2000; ++t) {
    (SignatureBit(t) < 32 ? a_toks : b_toks).push_back(t);
  }
  const TokenSet a = TokenSet::FromTokens(a_toks);
  const TokenSet b = TokenSet::FromTokens(b_toks);
  const uint64_t sa = TokenSignature(a.data(), a.size());
  const uint64_t sb = TokenSignature(b.data(), b.size());
  EXPECT_EQ(sa & sb, 0u);
  EXPECT_EQ(SigIntersectionUpperBound(a.size(), sa, b.size(), sb), 0u);
  EXPECT_EQ(a.IntersectionSize(b), 0u);
}

TEST(SimilarityKernelTest, ArenaViewsMatchInstanceTokens) {
  ToyWorld world = MakeHealthWorld();
  // An incomplete record with an imputed diagnosis: several instances.
  Record r = world.Make(7, {"male", "blurred vision", "-", "drug therapy"});
  ImputedTuple::ImputedAttr ia;
  ia.attr = 2;
  const AttributeDomain& domain = world.repo->domain(2);
  for (ValueId vid = 0; vid < std::min<ValueId>(3, domain.size()); ++vid) {
    ia.candidates.push_back({vid, 0.3});
  }
  for (const int bits : {64, 128, 256}) {
    const ImputedTuple tuple = ImputedTuple::FromImputation(
        r, world.repo.get(), {ia}, /*max_instances=*/4, bits);
    ASSERT_EQ(tuple.token_arena().sig_bits(), bits);
    for (int m = 0; m < tuple.num_instances(); ++m) {
      for (int k = 0; k < tuple.num_attributes(); ++k) {
        const TokenSet& expect = tuple.instance_tokens(m, k);
        const TokenView view = tuple.instance_token_view(m, k);
        ASSERT_EQ(view.len, expect.size());
        EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                               view.data));
        uint64_t want[kMaxSigWords];
        BuildTokenSignature(view.data, view.len, bits, want);
        for (int w = 0; w < SigWords(bits); ++w) {
          EXPECT_EQ(view.sig[w], want[w]) << "width " << bits << " word " << w;
        }
      }
    }
  }
  const ImputedTuple tuple = ImputedTuple::FromImputation(
      r, world.repo.get(), {ia}, /*max_instances=*/4);
  ASSERT_EQ(tuple.token_arena().sig_bits(), 64);
  // The cached record union is the sorted, deduplicated union of the
  // base record's non-missing attributes.
  std::vector<Token> expect_union;
  for (const AttrValue& v : r.values) {
    if (!v.missing) {
      expect_union.insert(expect_union.end(), v.tokens.begin(),
                          v.tokens.end());
    }
  }
  const TokenSet union_set = TokenSet::FromTokens(expect_union);
  const TokenView union_view = tuple.union_token_view();
  ASSERT_EQ(union_view.len, union_set.size());
  EXPECT_TRUE(std::equal(union_set.begin(), union_set.end(),
                         union_view.data));
}

TEST(SimilarityKernelTest, ExceedsVerdictMatchesExactSimilarity) {
  ToyWorld world = MakeHealthWorld();
  std::mt19937_64 rng(7);
  const std::vector<std::vector<std::string>> texts = {
      {"male", "loss of weight", "diabetes", "drug therapy"},
      {"male", "blurred vision", "-", "drug therapy"},
      {"female", "fever cough", "-", "-"},
      {"-", "red eye itchy", "conjunctivitis", "eye drop"},
      {"male", "fever cough headache", "flu", "drink more"},
  };
  // The verdict must equal the exact comparison at every signature width,
  // with the filter on or off — widths change merge counts only.
  for (const int bits : {64, 128, 256}) {
    std::vector<ImputedTuple> tuples;
    for (size_t i = 0; i < texts.size(); ++i) {
      Record r = world.Make(static_cast<int64_t>(i), texts[i]);
      std::vector<ImputedTuple::ImputedAttr> imputed;
      for (int j : r.MissingAttributes()) {
        ImputedTuple::ImputedAttr ia;
        ia.attr = j;
        const AttributeDomain& domain = world.repo->domain(j);
        for (ValueId vid = 0; vid < std::min<ValueId>(3, domain.size());
             ++vid) {
          ia.candidates.push_back({vid, 0.25});
        }
        imputed.push_back(std::move(ia));
      }
      tuples.push_back(ImputedTuple::FromImputation(
          r, world.repo.get(), std::move(imputed), 4, bits));
    }
    std::uniform_real_distribution<double> gamma_dist(0.0, 4.0);
    for (const ImputedTuple& a : tuples) {
      for (const ImputedTuple& b : tuples) {
        // The cached-union overload must agree exactly with the Record
        // overload (both read the same one UnionRecordTokensInto semantics).
        EXPECT_DOUBLE_EQ(HeterogeneousRecordSimilarity(a, b),
                         HeterogeneousRecordSimilarity(a.base(), b.base()));
        for (int ma = 0; ma < a.num_instances(); ++ma) {
          for (int mb = 0; mb < b.num_instances(); ++mb) {
            const double exact = InstanceSimilarity(a, ma, b, mb);
            for (int rep = 0; rep < 8; ++rep) {
              const double gamma = gamma_dist(rng);
              const bool expect = exact > gamma;
              EXPECT_EQ(InstanceSimilarityExceeds(a, ma, b, mb, gamma, true),
                        expect)
                  << "width " << bits;
              EXPECT_EQ(InstanceSimilarityExceeds(a, ma, b, mb, gamma, false),
                        expect)
                  << "width " << bits;
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace terids
