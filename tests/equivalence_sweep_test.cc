// Parameterized end-to-end soundness sweep: across combinations of
// (alpha, rho, xi), the fully indexed + pruned TER-iDS engine must report
// exactly the same pair set as the unindexed, unpruned CDD+ER baseline.
// This is the strongest property the system has — every index, synopsis,
// bound, and pruning theorem changes cost, never results — checked over a
// grid of query parameters rather than a single configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/pipeline.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"
#include "stream/stream_driver.h"

namespace terids {
namespace {

using Combo = std::tuple<double, double, double>;  // alpha, rho, xi

class EquivalenceSweepTest : public ::testing::TestWithParam<Combo> {};

TEST_P(EquivalenceSweepTest, TerIdsEqualsUnprunedBaseline) {
  const auto [alpha, rho, xi] = GetParam();
  ExperimentParams params;
  params.scale = 0.04;
  params.w = 50;
  params.max_arrivals = 220;
  params.alpha = alpha;
  params.rho = rho;
  params.xi = xi;
  Experiment experiment(CitationsProfile(), params);

  auto collect = [&](PipelineKind kind) {
    std::unique_ptr<Repository> repo = experiment.BuildRepository();
    std::unique_ptr<ErPipeline> pipeline = MakePipeline(
        kind, repo.get(), experiment.MakeConfig(), 2, experiment.cdds(),
        experiment.dds(), experiment.editing_rules());
    std::vector<Record> inc_a = DataGenerator::WithMissing(
        experiment.dataset().source_a, xi, params.m, params.seed);
    std::vector<Record> inc_b = DataGenerator::WithMissing(
        experiment.dataset().source_b, xi, params.m, params.seed + 1);
    StreamDriver driver({inc_a, inc_b});
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (int i = 0; i < params.max_arrivals && driver.HasNext(); ++i) {
      for (const MatchPair& p :
           pipeline->ProcessArrival(driver.Next()).new_matches) {
        pairs.emplace_back(p.rid_a, p.rid_b);
      }
    }
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };

  const auto terids = collect(PipelineKind::kTerIds);
  const auto baseline = collect(PipelineKind::kCddEr);
  EXPECT_EQ(terids, baseline)
      << "alpha=" << alpha << " rho=" << rho << " xi=" << xi;
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, EquivalenceSweepTest,
    ::testing::Values(Combo{0.1, 0.5, 0.3}, Combo{0.5, 0.5, 0.3},
                      Combo{0.8, 0.5, 0.3}, Combo{0.5, 0.3, 0.3},
                      Combo{0.5, 0.7, 0.3}, Combo{0.5, 0.5, 0.0},
                      Combo{0.5, 0.5, 0.6}, Combo{0.2, 0.4, 0.5},
                      Combo{0.7, 0.6, 0.2}));

}  // namespace
}  // namespace terids
