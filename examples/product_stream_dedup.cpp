// E-commerce product deduplication (the introduction's second scenario):
// crawled product descriptions from two marketplaces arrive as incomplete
// streams; a customer tracks one product type (topic) and wants groups of
// the latest products with similar features.
//
// Demonstrates three API aspects beyond the quickstart:
//   * topical vs unconstrained queries on the same streams,
//   * the dynamic-repository extension (Section 5.5): absorbing a batch of
//     new complete tuples into R while the engine is live,
//   * per-arrival cost accounting.

#include <cstdio>

#include "core/terids_engine.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"
#include "stream/stream_driver.h"

using namespace terids;

namespace {

size_t RunQuery(const Experiment& experiment, const EngineConfig& config,
                const char* label) {
  std::unique_ptr<Repository> repo = experiment.BuildRepository();
  TerIdsEngine engine(repo.get(), config, 2, experiment.cdds());

  const ExperimentParams& params = experiment.params();
  std::vector<Record> stream_a = DataGenerator::WithMissing(
      experiment.dataset().source_a, params.xi, params.m, params.seed);
  std::vector<Record> stream_b = DataGenerator::WithMissing(
      experiment.dataset().source_b, params.xi, params.m, params.seed + 1);
  StreamDriver driver({stream_a, stream_b});

  size_t matches = 0;
  CostBreakdown cost;
  size_t arrivals = 0;
  while (driver.HasNext() && arrivals < 500) {
    ArrivalOutcome outcome = engine.ProcessArrival(driver.Next());
    matches += outcome.new_matches.size();
    cost.Add(outcome.cost);
    ++arrivals;

    // Midway through, the marketplace publishes a fresh batch of verified
    // complete listings: absorb them into the repository (Section 5.5).
    if (arrivals == 250) {
      std::vector<Record> batch(
          experiment.dataset().repo_records.begin(),
          experiment.dataset().repo_records.begin() + 10);
      TERIDS_CHECK(engine.AbsorbRepositoryBatch(batch).ok());
    }
  }
  std::printf(
      "%-14s matches=%-5zu live ES=%-5zu  per-arrival: select %.4f ms, "
      "impute %.4f ms, ER %.4f ms\n",
      label, matches, engine.results().size(),
      1e3 * cost.cdd_select_seconds / arrivals,
      1e3 * cost.impute_seconds / arrivals, 1e3 * cost.er_seconds / arrivals);
  return matches;
}

}  // namespace

int main() {
  ExperimentParams params;
  params.scale = 0.08;
  params.w = 120;
  params.xi = 0.3;
  params.max_arrivals = 500;
  Experiment experiment(BikesProfile(), params);
  std::printf("Bikes marketplace streams: |A|=%zu |B|=%zu, repository=%zu, "
              "%zu CDD rules\n\n",
              experiment.dataset().source_a.size(),
              experiment.dataset().source_b.size(),
              experiment.dataset().repo_records.size(),
              experiment.cdds().size());

  // Customer tracks one product type.
  EngineConfig topical = experiment.MakeConfig();
  const size_t topical_matches = RunQuery(experiment, topical, "one topic:");

  // Marketplace-wide deduplication: K = all keywords (unconstrained).
  EngineConfig broad = experiment.MakeConfig();
  broad.keywords.clear();
  const size_t broad_matches = RunQuery(experiment, broad, "all topics:");

  std::printf(
      "\ntopic-aware filtering reported %zu of %zu unconstrained matches\n"
      "(ad-hoc topics: no re-indexing was needed to change K).\n",
      topical_matches, broad_matches);
  return 0;
}
