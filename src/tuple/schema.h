#ifndef TERIDS_TUPLE_SCHEMA_H_
#define TERIDS_TUPLE_SCHEMA_H_

#include <string>
#include <vector>

namespace terids {

/// Relation schema: an ordered list of `d` textual attribute names.
///
/// TER-iDS assumes homogeneous schemas across the `n` streams and the data
/// repository R (Section 2.3), so one Schema instance is shared by all of
/// them within a run.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names);

  /// Number of attributes, the paper's `d`.
  int num_attributes() const { return static_cast<int>(names_.size()); }

  const std::string& name(int attr) const;
  const std::vector<std::string>& names() const { return names_; }

  /// Index of an attribute name, or -1 if absent.
  int IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace terids

#endif  // TERIDS_TUPLE_SCHEMA_H_
