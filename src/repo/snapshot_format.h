#ifndef TERIDS_REPO_SNAPSHOT_FORMAT_H_
#define TERIDS_REPO_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "util/hash.h"

namespace terids {
namespace snapshot {

/// On-disk layout of a repository snapshot (DESIGN.md §8).
///
/// A snapshot is a build-once columnar serialization of a Repository's
/// storage: per-attribute value domains (interned token sets, display
/// texts, frequencies), the pivot set, the pivot-distance tables, the
/// sorted main-pivot coordinate lists, and the complete sample tuples.
/// MmapSnapshotStorage opens it read-only via mmap and serves the numeric
/// geometry tables (distances, coordinates, ValueIds, frequencies)
/// zero-copy from the mapping.
///
/// Layout: a fixed header, then the payload. Every array in the payload is
/// preceded by padding to 8-byte alignment so doubles and 64-bit offsets
/// can be read in place. Integers are host-endian: the snapshot is a local
/// cache artifact regenerated from the source data, not an interchange
/// format. The header carries a version (bumped on any layout change).
///
/// **v1** (kVersionEager): the payload is one monolithic blob —
/// per-attribute domains, pivot tokens, distance columns, coordinate
/// lists, samples — and `payload_checksum` is the FNV-1a over all of it,
/// verified at open before any byte is trusted. Opening therefore reads
/// the whole file.
///
/// **v2** (kVersion, the current writer output): the payload begins with a
/// section TOC — a u64 section count followed by SectionEntry records —
/// and `payload_checksum` covers only those TOC bytes. Each section
/// carries its own FNV-1a checksum in its TOC entry, verified when that
/// section is first decoded, so a cold open validates O(header + TOC)
/// bytes and touches nothing else (DESIGN.md §8: the lazy zero-copy
/// decode). Sections are 8-aligned and self-describing; `aux` caches the
/// one size a reader needs before decoding (domain size, pivot count,
/// sample count).
inline constexpr char kMagic[8] = {'T', 'E', 'R', 'I', 'D', 'S', 'N', 'P'};
inline constexpr uint32_t kVersionEager = 1;  // legacy whole-payload checksum
inline constexpr uint32_t kVersion = 2;       // section TOC + lazy decode

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t num_attributes;
  uint64_t num_samples;
  uint64_t dict_tokens;  // TokenDict size at write; every token id is < this.
  uint64_t payload_bytes;
  uint64_t payload_checksum;  // v1: FNV-1a over the payload; v2: over the TOC.
  uint8_t has_pivots;
  uint8_t reserved[7];
};
static_assert(sizeof(Header) == 56, "snapshot header layout drifted");

/// v2 section kinds, in their required TOC order: one kDomain per
/// attribute, one kPivotTokens, one kGeometry per attribute, one kSamples.
enum class SectionKind : uint64_t {
  kDomain = 1,       // token ids+offsets, text blob+offsets, frequencies
  kPivotTokens = 2,  // every attribute's pivot token sets
  kGeometry = 3,     // distance columns + sorted coordinate key/vid lists
  kSamples = 4,      // rids, streams, timestamps, ValueIds, cell texts
};

/// One v2 TOC record. `offset` is relative to the payload start (the byte
/// after the header) and 8-aligned; `checksum` is the FNV-1a over the
/// section's `bytes`, verified on first decode of that section. `aux` is
/// kind-specific metadata served without decoding the section: the domain
/// size (kDomain), the attribute's pivot count (kGeometry), the sample
/// count (kSamples), 0 (kPivotTokens).
struct SectionEntry {
  uint64_t kind;
  uint64_t attr;  // attribute index for kDomain/kGeometry, 0 otherwise
  uint64_t offset;
  uint64_t bytes;
  uint64_t aux;
  uint64_t checksum;
};
static_assert(sizeof(SectionEntry) == 48, "snapshot TOC layout drifted");

inline uint64_t Checksum(const char* data, size_t n) {
  uint64_t h = kFnv1aOffsetBasis;
  for (size_t i = 0; i < n; ++i) {
    h = Fnv1aMix(h, static_cast<uint8_t>(data[i]));
  }
  return h;
}

/// Bounds-checked forward reader over the payload. All getters return
/// false / nullptr once any read has run past the end, so callers can
/// finish parsing and report one "truncated snapshot" error. Alignment is
/// tracked as an offset from the payload start; the payload itself must be
/// 8-aligned in memory (the header is 56 bytes, a multiple of 8, and both
/// the mmap base and the heap fallback buffer are at least 8-aligned).
class Cursor {
 public:
  Cursor(const char* data, size_t n) : base_(data), n_(n) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return n_ - off_; }

  bool ReadU64(uint64_t* v) {
    Align8();
    const size_t at = off_;
    if (!Take(sizeof(*v))) return false;
    std::memcpy(v, base_ + at, sizeof(*v));
    return true;
  }

  /// Aligned array view into the payload; nullptr on overflow. A zero-length
  /// array yields a valid one-past pointer so callers need no special case.
  template <typename T>
  const T* Array(size_t count) {
    Align8();
    const size_t at = off_;
    if (count > remaining() / sizeof(T) || !Take(count * sizeof(T))) {
      ok_ = false;
      return nullptr;
    }
    return reinterpret_cast<const T*>(base_ + at);
  }

 private:
  void Align8() {
    const size_t mis = off_ % 8;
    if (mis != 0) Take(8 - mis);
  }

  bool Take(size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    off_ += n;
    return true;
  }

  const char* base_;
  size_t off_ = 0;
  size_t n_;
  bool ok_ = true;
};

/// Payload serializer mirroring Cursor: byte-buffer appends with the same
/// align-to-8 rule before every array.
class Builder {
 public:
  void AppendU64(uint64_t v) {
    Align8();
    AppendBytes(&v, sizeof(v));
  }

  template <typename T>
  void AppendArray(const T* data, size_t count) {
    Align8();
    AppendBytes(data, count * sizeof(T));
  }

  const std::string& bytes() const { return buf_; }

 private:
  void Align8() { buf_.resize((buf_.size() + 7) / 8 * 8, '\0'); }

  void AppendBytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  std::string buf_;
};

}  // namespace snapshot
}  // namespace terids

#endif  // TERIDS_REPO_SNAPSHOT_FORMAT_H_
