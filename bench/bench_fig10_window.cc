// Figure 10: TER-iDS efficiency vs the sliding-window size w.
//
// Paper values {500, 800, 1000, 2000, 3000} map to {100, 160, 200, 400,
// 600} under the 1/5 window scaling of the bench harness.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  TimeSweep("Figure 10", "w", {100, 160, 200, 400, 600},
            [](ExperimentParams* p, double v) {
              p->w = static_cast<int>(v * EnvScale());
              if (p->w < 20) p->w = 20;
              p->max_arrivals = 4 * p->w;
            },
            AllPipelines());
  return 0;
}
