#ifndef TERIDS_STREAM_STREAM_DRIVER_H_
#define TERIDS_STREAM_STREAM_DRIVER_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "tuple/record.h"

namespace terids {

/// Interleaves n record sources into one global arrival order (Definition
/// 1: one tuple per timestamp). Round-robin across sources, which models
/// the paper's setting of n streams progressing together; a seeded random
/// interleaving is also available for robustness tests. Virtual so pacing
/// wrappers (PacedStreamDriver) can reshape *when* arrivals are handed out
/// without touching what they contain.
class StreamDriver {
 public:
  /// `sources[i]` becomes stream id i. Records receive their stream id and
  /// arrival timestamps 0,1,2,... in interleaved order.
  explicit StreamDriver(std::vector<std::vector<Record>> sources);
  virtual ~StreamDriver() = default;

  /// Whether another arrival is available.
  virtual bool HasNext() const;

  /// Next arriving record (stream id and timestamp already stamped).
  virtual Record Next();

  /// Next micro-batch: up to `max_records` arrivals in global timestamp
  /// order (the batched operator's unit of work). Returns fewer records
  /// only when the sources run dry; empty once exhausted. Equivalent to
  /// calling Next() `max_records` times.
  virtual std::vector<Record> NextBatch(size_t max_records);

  /// Remaining arrivals.
  size_t remaining() const { return total_ - emitted_; }
  size_t total() const { return total_; }
  /// Arrivals handed out so far == the next arrival's global timestamp.
  size_t emitted() const { return emitted_; }

  virtual void Reset();

 private:
  std::vector<std::vector<Record>> sources_;
  std::vector<size_t> cursor_;
  size_t next_stream_ = 0;
  size_t emitted_ = 0;
  size_t total_ = 0;
  int64_t clock_ = 0;
};

/// Real-time pacing wrapper for overload experiments (DESIGN.md §13): the
/// interleaving and contents are exactly the base driver's, but arrival i
/// carries a release offset (seconds from Start) and NextBatch blocks until
/// the next unreleased arrival is due, then returns every already due
/// arrival (up to the batch bound). Offered load is therefore set by the
/// release schedule, not by how fast the consumer polls. Determinism of
/// *content* is untouched — only wall-clock timing is introduced — which is
/// why this lives in the bench/test layer of the API and the engines never
/// construct one.
class PacedStreamDriver : public StreamDriver {
 public:
  /// `release_seconds[i]` is arrival i's offset from Start(); must be
  /// non-decreasing and cover at least StreamDriver::total() entries.
  PacedStreamDriver(std::vector<std::vector<Record>> sources,
                    std::vector<double> release_seconds);

  /// Starts the wall-clock timeline; NextBatch calls it lazily on first
  /// use, benches call it explicitly to anchor sojourn measurement.
  void Start();
  /// Seconds since Start() (0 if not started).
  double SecondsSinceStart() const;
  /// Arrival i's scheduled release offset.
  double release_seconds(size_t i) const { return release_[i]; }

  std::vector<Record> NextBatch(size_t max_records) override;
  void Reset() override;

 private:
  std::vector<double> release_;
  std::chrono::steady_clock::time_point start_;
  bool started_ = false;
};

}  // namespace terids

#endif  // TERIDS_STREAM_STREAM_DRIVER_H_
