#include "text/token_set.h"

#include <algorithm>

#include "text/similarity_kernels.h"

namespace terids {

const TokenSet kEmptyTokenSet;

TokenSet TokenSet::FromTokens(std::vector<Token> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  TokenSet set;
  set.tokens_ = std::move(tokens);
  return set;
}

bool TokenSet::Contains(Token t) const {
  return std::binary_search(tokens_.begin(), tokens_.end(), t);
}

size_t TokenSet::IntersectionSize(const TokenSet& other) const {
  return IntersectSize(tokens_.data(), tokens_.size(), other.tokens_.data(),
                       other.tokens_.size());
}

double JaccardSimilarity(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  const size_t inter = a.IntersectionSize(b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardDistance(const TokenSet& a, const TokenSet& b) {
  return 1.0 - JaccardSimilarity(a, b);
}

}  // namespace terids
