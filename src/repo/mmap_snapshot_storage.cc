#include "repo/mmap_snapshot_storage.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>

#if defined(__unix__) || defined(__APPLE__)
#define TERIDS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace terids {

namespace {

Status Truncated() {
  return Status::InvalidArgument("snapshot payload ran short while parsing");
}

/// Token runs are stored sorted + deduplicated (TokenSet invariant); the
/// lazy reader serves them as zero-copy views, so a malformed run must be
/// rejected here rather than healed — every merge/intersection kernel
/// downstream assumes strict ascending order.
Status ValidateTokenRun(const Token* run, size_t n, uint64_t dict_tokens,
                        const char* what) {
  for (size_t i = 0; i < n; ++i) {
    if (run[i] >= dict_tokens) {
      return Status::FailedPrecondition(
          "snapshot token id outside the dictionary it was built with");
    }
    if (i > 0 && run[i] <= run[i - 1]) {
      return Status::InvalidArgument(std::string("snapshot ") + what +
                                     " token run not sorted/deduplicated");
    }
  }
  return Status::Ok();
}

/// A section that passed open-time TOC validation failed its own checksum
/// or structure check on first touch: the file corrupted underneath a
/// running engine. There is no caller to return a Status to — every read
/// accessor would have to become fallible — so this is fatal, mirroring
/// what a wild pointer into the lost data would soon be anyway.
[[noreturn]] void DieOnFirstTouchFailure(const Status& status) {
  std::cerr << "FATAL: snapshot first-touch decode failed: "
            << status.ToString() << std::endl;
  std::abort();
}

}  // namespace

// ---------------------------------------------------------------------------
// Mapping
// ---------------------------------------------------------------------------

Status MmapSnapshotStorage::MapFile(const std::string& path) {
#if TERIDS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("cannot stat snapshot: " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    return Status::InvalidArgument("snapshot is empty: " + path);
  }
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive; the fd is not needed.
  if (base == MAP_FAILED) {
    return Status::Internal("mmap failed for snapshot: " + path);
  }
  map_base_ = base;
  map_len_ = len;
  data_ = static_cast<const char*>(base);
  size_ = len;
  return Status::Ok();
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  const std::streamsize len = in.tellg();
  if (len <= 0) {
    return Status::InvalidArgument("snapshot is empty: " + path);
  }
  heap_.resize(static_cast<size_t>(len));
  in.seekg(0);
  in.read(heap_.data(), len);
  if (!in) {
    return Status::Internal("short read from snapshot: " + path);
  }
  data_ = heap_.data();
  size_ = heap_.size();
  return Status::Ok();
#endif
}

void MmapSnapshotStorage::Unmap() {
#if TERIDS_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
    map_base_ = nullptr;
    map_len_ = 0;
  }
#endif
  data_ = nullptr;
  size_ = 0;
  payload_ = nullptr;
  payload_len_ = 0;
}

MmapSnapshotStorage::~MmapSnapshotStorage() { Unmap(); }

// ---------------------------------------------------------------------------
// Shared block parsers (v1 payload blocks == v2 section bodies)
// ---------------------------------------------------------------------------

Status MmapSnapshotStorage::ParseDomainBlock(snapshot::Cursor* cur, int attr,
                                             uint64_t* dom_size_out) const {
  BaseDomain& dom = base_[attr];
  uint64_t dom_size = 0;
  uint64_t total_tokens = 0;
  if (!cur->ReadU64(&dom_size)) return Truncated();
  if (!cur->ReadU64(&total_tokens)) return Truncated();
  const Token* token_ids = cur->Array<Token>(total_tokens);
  const uint64_t* token_offsets = cur->Array<uint64_t>(dom_size + 1);
  uint64_t text_bytes = 0;
  if (!cur->ok() || !cur->ReadU64(&text_bytes)) return Truncated();
  const char* text_blob = cur->Array<char>(text_bytes);
  const uint64_t* text_offsets = cur->Array<uint64_t>(dom_size + 1);
  const int32_t* freqs = cur->Array<int32_t>(dom_size);
  if (!cur->ok()) return Truncated();

  dom.tokens.clear();
  dom.tokens.reserve(dom_size);
  for (uint64_t v = 0; v < dom_size; ++v) {
    if (token_offsets[v] > token_offsets[v + 1] ||
        token_offsets[v + 1] > total_tokens ||
        text_offsets[v] > text_offsets[v + 1] ||
        text_offsets[v + 1] > text_bytes) {
      return Status::InvalidArgument("snapshot domain offsets corrupt");
    }
    const Token* run = token_ids + token_offsets[v];
    const size_t run_len = token_offsets[v + 1] - token_offsets[v];
    TERIDS_RETURN_IF_ERROR(
        ValidateTokenRun(run, run_len, dict_tokens_, "domain"));
    dom.tokens.push_back(TokenSet::View(run, run_len));
  }
  dom.text_blob = text_blob;
  dom.text_offsets = text_offsets;
  dom.freqs = freqs;
  *dom_size_out = dom_size;
  return Status::Ok();
}

Status MmapSnapshotStorage::ParseSamplesBlock(snapshot::Cursor* cur) const {
  const size_t n = base_samples_;
  const int64_t* rids = cur->Array<int64_t>(n);
  const int32_t* streams = cur->Array<int32_t>(n);
  const int64_t* timestamps = cur->Array<int64_t>(n);
  const uint32_t* vids = cur->Array<uint32_t>(n * static_cast<size_t>(d_));
  uint64_t text_bytes = 0;
  if (!cur->ok() || !cur->ReadU64(&text_bytes)) return Truncated();
  const char* texts = cur->Array<char>(text_bytes);
  const uint64_t* text_offsets =
      cur->Array<uint64_t>(n * static_cast<size_t>(d_) + 1);
  if (!cur->ok()) return Truncated();

  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Record r;
    r.rid = rids[i];
    r.stream_id = streams[i];
    r.timestamp = timestamps[i];
    r.values.resize(static_cast<size_t>(d_));
    for (int x = 0; x < d_; ++x) {
      const size_t cell = i * static_cast<size_t>(d_) + x;
      const ValueId vid = vids[cell];
      if (vid >= base_[x].size || text_offsets[cell] > text_offsets[cell + 1] ||
          text_offsets[cell + 1] > text_bytes) {
        return Status::InvalidArgument("snapshot sample table corrupt");
      }
      AttrValue& v = r.values[x];
      v.missing = false;
      v.tokens = base_[x].tokens[vid];
      v.text.assign(texts + text_offsets[cell], texts + text_offsets[cell + 1]);
    }
    records.push_back(std::move(r));
  }
  base_records_ = std::move(records);
  base_sample_vids_ = vids;
  return Status::Ok();
}

void MmapSnapshotStorage::BuildFindIndex(int attr) const {
  BaseDomain& dom = base_[attr];
  dom.by_hash.reserve(dom.size);
  for (uint64_t v = 0; v < dom.size; ++v) {
    dom.by_hash.emplace(AttributeDomain::HashTokens(dom.tokens[v]),
                        static_cast<ValueId>(v));
  }
}

// ---------------------------------------------------------------------------
// v1: monolithic payload, always decoded eagerly at open
// ---------------------------------------------------------------------------

Status MmapSnapshotStorage::ParseV1(const snapshot::Header& header) {
  if (snapshot::Checksum(payload_, payload_len_) != header.payload_checksum) {
    return Status::InvalidArgument("snapshot payload checksum mismatch");
  }
  snapshot::Cursor cur(payload_, payload_len_);

  // ---- Domains ---------------------------------------------------------
  for (int x = 0; x < d_; ++x) {
    uint64_t dom_size = 0;
    TERIDS_RETURN_IF_ERROR(ParseDomainBlock(&cur, x, &dom_size));
    base_[x].size = dom_size;
    BuildFindIndex(x);
  }

  // ---- Pivot geometry --------------------------------------------------
  if (has_pivots_) {
    pivots_.resize(static_cast<size_t>(d_));
    for (int x = 0; x < d_; ++x) {
      uint64_t np = 0;
      if (!cur.ReadU64(&np)) return Truncated();
      if (np == 0) {
        return Status::InvalidArgument("snapshot attribute has zero pivots");
      }
      num_pivots_[x] = static_cast<int>(np);
      for (uint64_t a = 0; a < np; ++a) {
        uint64_t ntokens = 0;
        if (!cur.ReadU64(&ntokens)) return Truncated();
        const Token* ptokens = cur.Array<Token>(ntokens);
        if (!cur.ok()) return Truncated();
        TERIDS_RETURN_IF_ERROR(
            ValidateTokenRun(ptokens, ntokens, dict_tokens_, "pivot"));
        pivots_[x].pivots.push_back(TokenSet::View(ptokens, ntokens));
      }
    }
    for (int x = 0; x < d_; ++x) {
      base_[x].dists.resize(pivots_[x].pivots.size());
      for (size_t a = 0; a < pivots_[x].pivots.size(); ++a) {
        base_[x].dists[a] = cur.Array<double>(base_[x].size);
      }
    }
    for (int x = 0; x < d_; ++x) {
      base_[x].coord_keys = cur.Array<double>(base_[x].size);
      base_[x].coord_vids = cur.Array<uint32_t>(base_[x].size);
    }
    if (!cur.ok()) return Truncated();
  }

  // ---- Samples ---------------------------------------------------------
  TERIDS_RETURN_IF_ERROR(ParseSamplesBlock(&cur));

  decoded_all_ = true;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// v2: TOC at open, per-section decode on first touch (or forced at open)
// ---------------------------------------------------------------------------

Status MmapSnapshotStorage::ParseToc(const snapshot::Header& header) {
  snapshot::Cursor cur(payload_, payload_len_);
  uint64_t count = 0;
  if (!cur.ReadU64(&count)) {
    return Status::InvalidArgument("snapshot TOC truncated");
  }
  const uint64_t expected_count = 2 * static_cast<uint64_t>(d_) + 2;
  if (count != expected_count) {
    return Status::InvalidArgument(
        "snapshot TOC section count mismatch: file has " +
        std::to_string(count) + ", schema implies " +
        std::to_string(expected_count));
  }
  const auto* entries = cur.Array<snapshot::SectionEntry>(count);
  if (!cur.ok()) {
    return Status::InvalidArgument("snapshot TOC truncated");
  }
  const size_t toc_bytes =
      sizeof(uint64_t) + count * sizeof(snapshot::SectionEntry);
  if (snapshot::Checksum(payload_, toc_bytes) != header.payload_checksum) {
    return Status::InvalidArgument("snapshot TOC checksum mismatch");
  }

  auto check_entry = [&](const snapshot::SectionEntry& e,
                         snapshot::SectionKind kind, uint64_t attr) -> Status {
    if (e.kind != static_cast<uint64_t>(kind) || e.attr != attr) {
      return Status::InvalidArgument("snapshot TOC section order malformed");
    }
    if (e.offset % 8 != 0 || e.offset > payload_len_ ||
        e.bytes > payload_len_ - e.offset) {
      return Status::InvalidArgument("snapshot TOC section out of bounds");
    }
    return Status::Ok();
  };

  // Fixed section order: domains, pivot tokens, geometry, samples.
  toc_domain_.resize(static_cast<size_t>(d_));
  toc_geometry_.resize(static_cast<size_t>(d_));
  for (int x = 0; x < d_; ++x) {
    const snapshot::SectionEntry& e = entries[x];
    TERIDS_RETURN_IF_ERROR(check_entry(e, snapshot::SectionKind::kDomain,
                                       static_cast<uint64_t>(x)));
    if (e.aux > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("snapshot domain size exceeds ValueId");
    }
    toc_domain_[x] = e;
    base_[x].size = e.aux;
  }
  TERIDS_RETURN_IF_ERROR(
      check_entry(entries[d_], snapshot::SectionKind::kPivotTokens, 0));
  toc_pivot_tokens_ = entries[d_];
  for (int x = 0; x < d_; ++x) {
    const snapshot::SectionEntry& e = entries[d_ + 1 + x];
    TERIDS_RETURN_IF_ERROR(check_entry(e, snapshot::SectionKind::kGeometry,
                                       static_cast<uint64_t>(x)));
    if (e.aux == 0 || e.aux > std::numeric_limits<int>::max()) {
      return Status::InvalidArgument(
          "snapshot TOC pivot count out of range for attribute " +
          std::to_string(x));
    }
    toc_geometry_[x] = e;
    num_pivots_[x] = static_cast<int>(e.aux);
  }
  TERIDS_RETURN_IF_ERROR(
      check_entry(entries[2 * d_ + 1], snapshot::SectionKind::kSamples, 0));
  toc_samples_ = entries[2 * d_ + 1];
  if (toc_samples_.aux != header.num_samples) {
    return Status::InvalidArgument(
        "snapshot TOC sample count disagrees with header");
  }
  return Status::Ok();
}

Status MmapSnapshotStorage::DecodeDomain(int attr) const {
  const snapshot::SectionEntry& e = toc_domain_[attr];
  if (snapshot::Checksum(payload_ + e.offset, e.bytes) != e.checksum) {
    return Status::InvalidArgument(
        "snapshot domain section checksum mismatch (attribute " +
        std::to_string(attr) + ")");
  }
  snapshot::Cursor cur(payload_ + e.offset, e.bytes);
  uint64_t dom_size = 0;
  TERIDS_RETURN_IF_ERROR(ParseDomainBlock(&cur, attr, &dom_size));
  if (dom_size != e.aux) {
    return Status::InvalidArgument(
        "snapshot domain section size disagrees with TOC");
  }
  return Status::Ok();
}

Status MmapSnapshotStorage::DecodePivotTokens() const {
  const snapshot::SectionEntry& e = toc_pivot_tokens_;
  if (snapshot::Checksum(payload_ + e.offset, e.bytes) != e.checksum) {
    return Status::InvalidArgument(
        "snapshot pivot-token section checksum mismatch");
  }
  snapshot::Cursor cur(payload_ + e.offset, e.bytes);
  std::vector<AttributePivots> pivots(static_cast<size_t>(d_));
  for (int x = 0; x < d_; ++x) {
    uint64_t np = 0;
    if (!cur.ReadU64(&np)) return Truncated();
    if (np != static_cast<uint64_t>(num_pivots_[x])) {
      return Status::InvalidArgument(
          "snapshot pivot-token section disagrees with TOC pivot count");
    }
    for (uint64_t a = 0; a < np; ++a) {
      uint64_t ntokens = 0;
      if (!cur.ReadU64(&ntokens)) return Truncated();
      const Token* ptokens = cur.Array<Token>(ntokens);
      if (!cur.ok()) return Truncated();
      TERIDS_RETURN_IF_ERROR(
          ValidateTokenRun(ptokens, ntokens, dict_tokens_, "pivot"));
      pivots[x].pivots.push_back(TokenSet::View(ptokens, ntokens));
    }
  }
  pivots_ = std::move(pivots);
  return Status::Ok();
}

Status MmapSnapshotStorage::DecodeGeometry(int attr) const {
  const snapshot::SectionEntry& e = toc_geometry_[attr];
  if (snapshot::Checksum(payload_ + e.offset, e.bytes) != e.checksum) {
    return Status::InvalidArgument(
        "snapshot geometry section checksum mismatch (attribute " +
        std::to_string(attr) + ")");
  }
  snapshot::Cursor cur(payload_ + e.offset, e.bytes);
  uint64_t dom_size = 0;
  uint64_t np = 0;
  if (!cur.ReadU64(&dom_size) || !cur.ReadU64(&np)) return Truncated();
  BaseDomain& dom = base_[attr];
  if (dom_size != dom.size || np != static_cast<uint64_t>(num_pivots_[attr])) {
    return Status::InvalidArgument(
        "snapshot geometry section header disagrees with TOC");
  }
  std::vector<const double*> dists(np);
  for (uint64_t a = 0; a < np; ++a) {
    dists[a] = cur.Array<double>(dom_size);
  }
  const double* coord_keys = cur.Array<double>(dom_size);
  const uint32_t* coord_vids = cur.Array<uint32_t>(dom_size);
  if (!cur.ok()) return Truncated();
  dom.dists = std::move(dists);
  dom.coord_keys = coord_keys;
  dom.coord_vids = coord_vids;
  return Status::Ok();
}

Status MmapSnapshotStorage::DecodeSamples() const {
  const snapshot::SectionEntry& e = toc_samples_;
  if (snapshot::Checksum(payload_ + e.offset, e.bytes) != e.checksum) {
    return Status::InvalidArgument(
        "snapshot samples section checksum mismatch");
  }
  snapshot::Cursor cur(payload_ + e.offset, e.bytes);
  return ParseSamplesBlock(&cur);
}

// ---------------------------------------------------------------------------
// First-touch wrappers
// ---------------------------------------------------------------------------

void MmapSnapshotStorage::EnsureDomain(int attr) const {
  if (decoded_all_) return;
  std::call_once(domain_once_[attr], [this, attr] {
    const Status status = DecodeDomain(attr);
    if (!status.ok()) DieOnFirstTouchFailure(status);
  });
}

void MmapSnapshotStorage::EnsureFindIndex(int attr) const {
  if (decoded_all_) return;
  EnsureDomain(attr);
  std::call_once(find_once_[attr], [this, attr] { BuildFindIndex(attr); });
}

void MmapSnapshotStorage::EnsurePivotTokens() const {
  if (decoded_all_) return;
  std::call_once(pivot_tokens_once_, [this] {
    const Status status = DecodePivotTokens();
    if (!status.ok()) DieOnFirstTouchFailure(status);
  });
}

void MmapSnapshotStorage::EnsureGeometry(int attr) const {
  if (decoded_all_) return;
  std::call_once(geometry_once_[attr], [this, attr] {
    const Status status = DecodeGeometry(attr);
    if (!status.ok()) DieOnFirstTouchFailure(status);
  });
}

void MmapSnapshotStorage::EnsureSamples() const {
  if (decoded_all_) return;
  // Sample records hold token-set views into the domain columns.
  for (int x = 0; x < d_; ++x) {
    EnsureDomain(x);
  }
  std::call_once(samples_once_, [this] {
    const Status status = DecodeSamples();
    if (!status.ok()) DieOnFirstTouchFailure(status);
  });
}

// ---------------------------------------------------------------------------
// Open
// ---------------------------------------------------------------------------

Status MmapSnapshotStorage::Parse(int num_attributes, const TokenDict* dict,
                                  SnapshotDecode decode) {
  if (size_ < sizeof(snapshot::Header)) {
    return Status::InvalidArgument("snapshot smaller than its header");
  }
  snapshot::Header header;
  std::memcpy(&header, data_, sizeof(header));
  if (std::memcmp(header.magic, snapshot::kMagic, sizeof(header.magic)) != 0) {
    return Status::InvalidArgument("snapshot magic mismatch (not a snapshot)");
  }
  if (header.version != snapshot::kVersion &&
      header.version != snapshot::kVersionEager) {
    return Status::InvalidArgument(
        "snapshot version " + std::to_string(header.version) +
        " unsupported (expected " + std::to_string(snapshot::kVersionEager) +
        " or " + std::to_string(snapshot::kVersion) + ")");
  }
  if (header.num_attributes != static_cast<uint32_t>(num_attributes)) {
    return Status::FailedPrecondition(
        "snapshot has " + std::to_string(header.num_attributes) +
        " attributes; schema has " + std::to_string(num_attributes));
  }
  if (header.dict_tokens > dict->size()) {
    return Status::FailedPrecondition(
        "snapshot references " + std::to_string(header.dict_tokens) +
        " interned tokens; dictionary holds " + std::to_string(dict->size()));
  }
  payload_ = data_ + sizeof(header);
  payload_len_ = size_ - sizeof(header);
  if (header.payload_bytes != payload_len_) {
    return Status::InvalidArgument("snapshot payload truncated");
  }

  d_ = num_attributes;
  has_pivots_ = header.has_pivots != 0;
  base_samples_ = header.num_samples;
  dict_tokens_ = header.dict_tokens;
  base_.resize(static_cast<size_t>(d_));
  num_pivots_.assign(static_cast<size_t>(d_), 0);
  domain_once_ = std::make_unique<std::once_flag[]>(static_cast<size_t>(d_));
  find_once_ = std::make_unique<std::once_flag[]>(static_cast<size_t>(d_));
  geometry_once_ = std::make_unique<std::once_flag[]>(static_cast<size_t>(d_));

  if (header.version == snapshot::kVersionEager) {
    // v1's single whole-payload checksum forces a full read; the decode
    // knob is moot.
    TERIDS_RETURN_IF_ERROR(ParseV1(header));
  } else {
    if (!has_pivots_) {
      return Status::InvalidArgument(
          "v2 snapshot without pivot geometry unsupported");
    }
    TERIDS_RETURN_IF_ERROR(ParseToc(header));
    if (decode == SnapshotDecode::kEager) {
      // Force every section through the same decode the lazy path runs on
      // first touch, so corruption fails the open and the materialized
      // state is identical by construction.
      for (int x = 0; x < d_; ++x) {
        TERIDS_RETURN_IF_ERROR(DecodeDomain(x));
      }
      for (int x = 0; x < d_; ++x) {
        BuildFindIndex(x);
      }
      TERIDS_RETURN_IF_ERROR(DecodePivotTokens());
      for (int x = 0; x < d_; ++x) {
        TERIDS_RETURN_IF_ERROR(DecodeGeometry(x));
      }
      TERIDS_RETURN_IF_ERROR(DecodeSamples());
      decoded_all_ = true;
    }
  }

  // ---- Overlay scaffolding --------------------------------------------
  overlay_.resize(static_cast<size_t>(d_));
  for (int x = 0; x < d_; ++x) {
    overlay_[x].dists.resize(has_pivots_ ? num_pivots_[x] : 0);
  }
  return Status::Ok();
}

Result<std::unique_ptr<MmapSnapshotStorage>> MmapSnapshotStorage::Open(
    int num_attributes, const TokenDict* dict, const std::string& path,
    SnapshotDecode decode) {
  TERIDS_CHECK(dict != nullptr);
  TERIDS_CHECK(num_attributes >= 1);
  std::unique_ptr<MmapSnapshotStorage> storage(new MmapSnapshotStorage());
  Status status = storage->MapFile(path);
  if (!status.ok()) {
    return status;
  }
  status = storage->Parse(num_attributes, dict, decode);
  if (!status.ok()) {
    return status;
  }
  return storage;
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

size_t MmapSnapshotStorage::domain_size(int attr) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  return base_[attr].size + overlay_[attr].extra.size();
}

const TokenSet& MmapSnapshotStorage::value_tokens(int attr, ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  if (id < dom.size) {
    EnsureDomain(attr);
    return dom.tokens[id];
  }
  return overlay_[attr].extra.tokens(id - static_cast<ValueId>(dom.size));
}

std::string_view MmapSnapshotStorage::value_text(int attr, ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  if (id < dom.size) {
    EnsureDomain(attr);
    return std::string_view(dom.text_blob + dom.text_offsets[id],
                            dom.text_offsets[id + 1] - dom.text_offsets[id]);
  }
  return overlay_[attr].extra.text(id - static_cast<ValueId>(dom.size));
}

int MmapSnapshotStorage::value_frequency(int attr, ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  const DomainOverlay& over = overlay_[attr];
  if (id < dom.size) {
    EnsureDomain(attr);
    const auto it = over.base_freq_delta.find(id);
    return dom.freqs[id] + (it == over.base_freq_delta.end() ? 0 : it->second);
  }
  return over.extra.frequency(id - static_cast<ValueId>(dom.size));
}

ValueId MmapSnapshotStorage::FindValue(int attr, const TokenSet& tokens) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  EnsureFindIndex(attr);
  const BaseDomain& dom = base_[attr];
  const uint64_t h = AttributeDomain::HashTokens(tokens);
  auto [begin, end] = dom.by_hash.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (dom.tokens[it->second] == tokens) {
      return it->second;
    }
  }
  const ValueId local = overlay_[attr].extra.Find(tokens);
  if (local == kInvalidValueId) {
    return kInvalidValueId;
  }
  return static_cast<ValueId>(dom.size) + local;
}

size_t MmapSnapshotStorage::num_samples() const {
  return base_samples_ + extra_records_.size();
}

const Record& MmapSnapshotStorage::sample(size_t i) const {
  TERIDS_CHECK(i < num_samples());
  if (i < base_samples_) {
    EnsureSamples();
    return base_records_[i];
  }
  return extra_records_[i - base_samples_];
}

ValueId MmapSnapshotStorage::sample_value_id(size_t i, int attr) const {
  TERIDS_CHECK(i < num_samples());
  TERIDS_CHECK(attr >= 0 && attr < d_);
  if (i < base_samples_) {
    EnsureSamples();
    return base_sample_vids_[i * static_cast<size_t>(d_) + attr];
  }
  return extra_sample_vids_[i - base_samples_][attr];
}

int MmapSnapshotStorage::num_pivots(int attr) const {
  TERIDS_CHECK(has_pivots_);
  TERIDS_CHECK(attr >= 0 && attr < d_);
  return num_pivots_[attr];
}

const TokenSet& MmapSnapshotStorage::pivot_tokens(int attr,
                                                  int pivot_idx) const {
  TERIDS_CHECK(has_pivots_);
  TERIDS_CHECK(attr >= 0 && attr < d_);
  TERIDS_CHECK(pivot_idx >= 0 && pivot_idx < num_pivots(attr));
  EnsurePivotTokens();
  return pivots_[attr].pivots[pivot_idx];
}

double MmapSnapshotStorage::pivot_distance(int attr, int pivot_idx,
                                           ValueId vid) const {
  TERIDS_CHECK(has_pivots_);
  TERIDS_CHECK(attr >= 0 && attr < d_);
  TERIDS_CHECK(pivot_idx >= 0 && pivot_idx < num_pivots(attr));
  const BaseDomain& dom = base_[attr];
  if (vid < dom.size) {
    EnsureGeometry(attr);
    return dom.dists[pivot_idx][vid];
  }
  const ValueId local = vid - static_cast<ValueId>(dom.size);
  const auto& dists = overlay_[attr].dists[pivot_idx];
  TERIDS_CHECK(local < dists.size());
  return dists[local];
}

void MmapSnapshotStorage::AppendValuesInCoordRange(
    int attr, const Interval& interval, std::vector<ValueId>* out) const {
  TERIDS_CHECK(has_pivots_);
  TERIDS_CHECK(attr >= 0 && attr < d_);
  if (interval.empty()) {
    return;
  }
  EnsureGeometry(attr);
  const BaseDomain& dom = base_[attr];
  const auto& over = overlay_[attr].sorted_coords;
  // Merge the immutable base column with the overlay's sorted list in
  // ascending (coordinate, ValueId) order — the exact sequence the
  // in-memory backend's single maintained list yields.
  size_t bi = static_cast<size_t>(
      std::lower_bound(dom.coord_keys, dom.coord_keys + dom.size,
                       interval.lo) -
      dom.coord_keys);
  auto oi = std::lower_bound(
      over.begin(), over.end(),
      std::make_pair(interval.lo, static_cast<ValueId>(0)));
  while (true) {
    const bool base_ok = bi < dom.size && dom.coord_keys[bi] <= interval.hi;
    const bool over_ok = oi != over.end() && oi->first <= interval.hi;
    if (!base_ok && !over_ok) {
      break;
    }
    if (base_ok &&
        (!over_ok ||
         std::make_pair(dom.coord_keys[bi],
                        static_cast<ValueId>(dom.coord_vids[bi])) < *oi)) {
      out->push_back(dom.coord_vids[bi]);
      ++bi;
    } else {
      out->push_back(oi->second);
      ++oi;
    }
  }
}

// ---------------------------------------------------------------------------
// Write path: the delta overlay
// ---------------------------------------------------------------------------

ValueId MmapSnapshotStorage::RegisterValue(int attr, const TokenSet& tokens,
                                           const std::string& text) {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  EnsureFindIndex(attr);
  if (has_pivots_) {
    EnsurePivotTokens();
  }
  const BaseDomain& dom = base_[attr];
  // Base values are immutable and deduplicated; only a genuinely new token
  // set lands in the overlay.
  {
    auto [begin, end] =
        dom.by_hash.equal_range(AttributeDomain::HashTokens(tokens));
    for (auto it = begin; it != end; ++it) {
      if (dom.tokens[it->second] == tokens) {
        return it->second;
      }
    }
  }
  DomainOverlay& over = overlay_[attr];
  const size_t before = over.extra.size();
  const ValueId local = over.extra.FindOrAdd(tokens, text);
  const ValueId global = static_cast<ValueId>(dom.size) + local;
  if (over.extra.size() != before && has_pivots_) {
    const size_t np = pivots_[attr].pivots.size();
    for (size_t a = 0; a < np; ++a) {
      over.dists[a].push_back(
          JaccardDistance(tokens, pivots_[attr].pivots[a]));
    }
    const double coord = over.dists[0][local];
    auto& coords = over.sorted_coords;
    coords.insert(std::upper_bound(coords.begin(), coords.end(),
                                   std::make_pair(coord, global)),
                  std::make_pair(coord, global));
  }
  return global;
}

void MmapSnapshotStorage::BumpFrequency(int attr, ValueId id) {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  DomainOverlay& over = overlay_[attr];
  if (id < dom.size) {
    ++over.base_freq_delta[id];
    return;
  }
  over.extra.BumpFrequency(id - static_cast<ValueId>(dom.size));
}

void MmapSnapshotStorage::AppendSample(const Record& record,
                                       std::vector<ValueId> vids) {
  TERIDS_CHECK(static_cast<int>(vids.size()) == d_);
  extra_records_.push_back(record);
  extra_sample_vids_.push_back(std::move(vids));
}

void MmapSnapshotStorage::AttachPivots(std::vector<AttributePivots> pivots) {
  (void)pivots;
  TERIDS_CHECK(false &&
               "MmapSnapshotStorage is read-only geometry: pivots are baked "
               "into the snapshot at write time");
}

}  // namespace terids
