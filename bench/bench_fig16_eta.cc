// Figure 16: TER-iDS efficiency vs the repository ratio eta.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  TimeSweep("Figure 16", "eta", {0.1, 0.2, 0.3, 0.4, 0.5},
            [](ExperimentParams* p, double v) { p->eta = v; },
            AllPipelines());
  return 0;
}
