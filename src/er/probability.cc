#include "er/probability.h"

#include "er/similarity.h"
#include "util/status.h"

namespace terids {

RefineResult RefineProbability(const ImputedTuple& a,
                               const TopicQuery::TupleTopic& a_topic,
                               const ImputedTuple& b,
                               const TopicQuery::TupleTopic& b_topic,
                               double gamma, double alpha,
                               bool signature_filter,
                               SigFilterCounters* sig_counters) {
  RefineResult result;
  // Unprocessed mass starts at the full joint mass; Theorem 4.4's
  // overestimate treats every unprocessed instance pair as a match.
  double remaining = a.total_prob() * b.total_prob();
  for (int m = 0; m < a.num_instances(); ++m) {
    const double pa = a.instance_prob(m);
    const bool ta = a_topic.instance_matches[m];
    for (int mp = 0; mp < b.num_instances(); ++mp) {
      const double joint = pa * b.instance_prob(mp);
      remaining -= joint;
      ++result.pairs_evaluated;
      const bool topical = ta || b_topic.instance_matches[mp];
      if (topical && InstanceSimilarityExceeds(a, m, b, mp, gamma,
                                               signature_filter,
                                               sig_counters)) {
        result.probability += joint;
      }
      if (result.probability > alpha) {
        result.early_accepted = true;
        return result;
      }
      if (result.probability + remaining <= alpha) {
        result.early_pruned = true;
        return result;
      }
    }
  }
  return result;
}

double ExactProbability(const ImputedTuple& a,
                        const TopicQuery::TupleTopic& a_topic,
                        const ImputedTuple& b,
                        const TopicQuery::TupleTopic& b_topic, double gamma,
                        bool signature_filter,
                        SigFilterCounters* sig_counters) {
  double prob = 0.0;
  for (int m = 0; m < a.num_instances(); ++m) {
    const double pa = a.instance_prob(m);
    const bool ta = a_topic.instance_matches[m];
    for (int mp = 0; mp < b.num_instances(); ++mp) {
      const bool topical = ta || b_topic.instance_matches[mp];
      if (topical && InstanceSimilarityExceeds(a, m, b, mp, gamma,
                                               signature_filter,
                                               sig_counters)) {
        prob += pa * b.instance_prob(mp);
      }
    }
  }
  return prob;
}

}  // namespace terids
