#ifndef TERIDS_TUPLE_RECORD_H_
#define TERIDS_TUPLE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/token_set.h"
#include "tuple/schema.h"

namespace terids {

/// One attribute value of a record: the raw text, its token set, and a
/// missing flag. A missing value (the paper's "−") carries an empty token
/// set and missing = true.
struct AttrValue {
  std::string text;
  TokenSet tokens;
  bool missing = false;

  static AttrValue Missing() {
    AttrValue v;
    v.missing = true;
    return v;
  }
};

/// A (possibly incomplete) stream tuple r_i (Definition 1): a unique record
/// id, the stream it arrived on, its arrival timestamp, and `d` attribute
/// values some of which may be missing.
struct Record {
  int64_t rid = -1;
  int stream_id = 0;
  int64_t timestamp = 0;
  std::vector<AttrValue> values;

  int num_attributes() const { return static_cast<int>(values.size()); }

  bool IsComplete() const;

  /// Bitmask with bit j set iff attribute j is missing. Schemas never exceed
  /// 32 attributes in this library (the paper's datasets have 4-7).
  uint32_t MissingMask() const;

  /// Indices of missing attributes, in order.
  std::vector<int> MissingAttributes() const;

  /// Total tokens across all non-missing attributes; convenience for the
  /// topic predicate and diagnostics.
  size_t TotalTokenCount() const;
};

/// Union token set T(r) of all non-missing attributes of `r`, written into
/// `out` sorted and deduplicated. `out` is caller-owned scratch: cleared
/// but never shrunk, so reusing it across calls allocates nothing in steady
/// state. The one definition of the record-union semantics shared by the
/// heterogeneous-schema similarity and the TokenArena's cached union slot.
void UnionRecordTokensInto(const Record& r, std::vector<Token>* out);

/// A ground-truth matching pair for evaluation: records `rid_a` (from source
/// stream A) and `rid_b` (from stream B) refer to the same real-world entity.
struct GroundTruthPair {
  int64_t rid_a = -1;
  int64_t rid_b = -1;
  bool operator==(const GroundTruthPair& o) const {
    return rid_a == o.rid_a && rid_b == o.rid_b;
  }
};

}  // namespace terids

#endif  // TERIDS_TUPLE_RECORD_H_
