#ifndef TERIDS_IMPUTATION_CONSTRAINT_IMPUTER_H_
#define TERIDS_IMPUTATION_CONSTRAINT_IMPUTER_H_

#include <deque>
#include <unordered_map>

#include "imputation/imputer.h"
#include "repo/repository.h"

namespace terids {

/// The constraint-based imputation baseline (`con+ER`, modeled on [43]).
///
/// It never touches the data repository: each incomplete tuple is imputed
/// from the most similar *complete* tuple recently seen on the same stream
/// (similarity over the non-missing attributes). This reproduces the
/// reported behavior of the baseline: fast (no repository access, constant
/// in eta and m) but the least accurate, because it ignores the semantic
/// association between attributes.
class ConstraintImputer : public Imputer {
 public:
  /// `repo` is only used to register stream-sourced values so that the
  /// downstream ImputedTuple machinery (domains, pivot tables) applies
  /// uniformly. `history_cap` bounds the per-stream complete-tuple memory
  /// (the engine sets it to the window size w).
  ConstraintImputer(Repository* repo, int history_cap);

  std::vector<ImputedTuple::ImputedAttr> ImputeRecord(
      const Record& r, CostBreakdown* cost) override;

  void OnArrival(const Record& r) override;
  void OnEvict(const Record& r) override;

  /// ImputeRecord registers donor values into the repository's domains,
  /// which refinement reads; ingest must not overlap refinement.
  bool MutatesRefinementState() const override { return true; }

 private:
  Repository* repo_;
  int history_cap_;
  // Per stream: recent complete records, oldest first.
  std::unordered_map<int, std::deque<Record>> history_;
};

}  // namespace terids

#endif  // TERIDS_IMPUTATION_CONSTRAINT_IMPUTER_H_
