#include "util/mutex.h"

#include <cstdlib>
#include <iostream>
#include <vector>

namespace terids {

namespace lock_debug {
namespace {

struct HeldLock {
  const Mutex* mu;
  int rank;
};

/// The per-thread stack of currently held mutexes. Only touched in Debug
/// builds (every caller is compiled out under NDEBUG), single-threaded by
/// construction, and empty except across the handful of instructions a
/// lock is held for — its cost is invisible next to the std::mutex ops it
/// rides on.
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> held;
  return held;
}

[[noreturn]] void LockRankFailed(const char* why, int held_rank,
                                 int acquiring_rank) {
  std::cerr << "terids lock-rank violation: " << why << " (holding rank "
            << held_rank << ", acquiring rank " << acquiring_rank
            << "); see the lock_rank order in util/mutex.h / DESIGN.md §12"
            << std::endl;
  std::abort();
}

}  // namespace

// Called before the underlying mutex is locked (see Mutex::Lock): the
// violations detected here are the ones that deadlock, so they must be
// reported while the thread can still report anything. The stack therefore
// briefly records a mutex as held while its acquisition blocks — harmless,
// since only the owning thread reads its own stack and it is blocked.
void OnAcquire(const Mutex* mu, int rank) {
  auto& held = HeldStack();
  int max_held_rank = lock_rank::kUnranked;
  for (const HeldLock& h : held) {
    if (h.mu == mu) {
      LockRankFailed("re-entrant acquisition of a Mutex this thread holds",
                     h.rank, rank);
    }
    if (h.rank > max_held_rank) {
      max_held_rank = h.rank;
    }
  }
  if (rank != lock_rank::kUnranked && max_held_rank != lock_rank::kUnranked &&
      rank <= max_held_rank) {
    LockRankFailed("out-of-order acquisition", max_held_rank, rank);
  }
  held.push_back(HeldLock{mu, rank});
}

void OnRelease(const Mutex* mu) {
  auto& held = HeldStack();
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].mu == mu) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  LockRankFailed("release of a Mutex this thread does not hold",
                 lock_rank::kUnranked, mu->rank());
}

void OnWaitRelease(const Mutex* mu) { OnRelease(mu); }

void OnWaitReacquire(const Mutex* mu, int rank) {
  // A condition-variable reacquisition is ordered by the wait itself, not
  // by the rank discipline (the waiter already proved the order on the
  // original Lock), so re-push without the order check. Re-entrancy cannot
  // occur: the wait released this thread's only hold on `mu`.
  HeldStack().push_back(HeldLock{mu, rank});
}

bool IsHeldByThisThread(const Mutex* mu) {
  for (const HeldLock& h : HeldStack()) {
    if (h.mu == mu) {
      return true;
    }
  }
  return false;
}

}  // namespace lock_debug

void Mutex::AssertHeld() const {
#ifndef NDEBUG
  if (!lock_debug::IsHeldByThisThread(this)) {
    std::cerr << "terids Mutex::AssertHeld failed: mutex (rank " << rank_
              << ") not held by this thread" << std::endl;
    std::abort();
  }
#endif
}

void CondVar::Wait(Mutex* mu) {
#ifndef NDEBUG
  lock_debug::OnWaitRelease(mu);
#endif
  // Adopt the already-held native mutex for the wait, then release
  // ownership again so the unique_lock destructor leaves it locked — the
  // caller's MutexLock continues to own the capability.
  std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
#ifndef NDEBUG
  lock_debug::OnWaitReacquire(mu, mu->rank_);
#endif
}

}  // namespace terids
