#ifndef TERIDS_STREAM_TIME_WINDOW_H_
#define TERIDS_STREAM_TIME_WINDOW_H_

#include <deque>
#include <memory>
#include <vector>

#include "stream/sliding_window.h"

namespace terids {

/// Time-based sliding window [39] — the paper's noted extension of its
/// count-based model (Section 2.1): the window holds every tuple whose
/// timestamp is within `duration` of the current clock, so more than one
/// tuple may arrive per timestamp and evictions come in batches.
class TimeBasedWindow {
 public:
  /// `duration` is in timestamp units; a tuple with timestamp ts is live
  /// while now - ts < duration.
  explicit TimeBasedWindow(int64_t duration);

  /// Appends `t` (its tuple's timestamp must be non-decreasing across
  /// calls) and advances the clock to that timestamp; returns every tuple
  /// that expired as a result.
  std::vector<std::shared_ptr<WindowTuple>> Push(
      std::shared_ptr<WindowTuple> t);

  /// Advances the clock without an arrival; returns the expired tuples.
  std::vector<std::shared_ptr<WindowTuple>> AdvanceTo(int64_t now);

  const std::deque<std::shared_ptr<WindowTuple>>& tuples() const {
    return tuples_;
  }
  size_t size() const { return tuples_.size(); }
  int64_t duration() const { return duration_; }

 private:
  int64_t duration_;
  int64_t now_ = 0;
  std::deque<std::shared_ptr<WindowTuple>> tuples_;
};

}  // namespace terids

#endif  // TERIDS_STREAM_TIME_WINDOW_H_
