#include "index/artree.h"

#include <algorithm>

#include "util/status.h"

namespace terids {

void NodeAggregates::Merge(const NodeAggregates& other) {
  topic_mask |= other.topic_mask;
  dep_interval.Union(other.dep_interval);
  if (aux_dist.size() < other.aux_dist.size()) {
    aux_dist.resize(other.aux_dist.size());
  }
  for (size_t d = 0; d < other.aux_dist.size(); ++d) {
    if (aux_dist[d].size() < other.aux_dist[d].size()) {
      aux_dist[d].resize(other.aux_dist[d].size(), Interval::Empty());
    }
    for (size_t a = 0; a < other.aux_dist[d].size(); ++a) {
      aux_dist[d][a].Union(other.aux_dist[d][a]);
    }
  }
  if (size_intervals.size() < other.size_intervals.size()) {
    size_intervals.resize(other.size_intervals.size(), Interval::Empty());
  }
  for (size_t d = 0; d < other.size_intervals.size(); ++d) {
    size_intervals[d].Union(other.size_intervals[d]);
  }
}

ArTree::ArTree(int dims, int fanout) : dims_(dims), fanout_(fanout) {
  TERIDS_CHECK(dims >= 1);
  TERIDS_CHECK(fanout >= 2);
}

void ArTree::ExtendBox(std::vector<Interval>* box,
                       const std::vector<Interval>& with) {
  if (box->empty()) {
    *box = with;
    return;
  }
  TERIDS_CHECK(box->size() == with.size());
  for (size_t d = 0; d < with.size(); ++d) {
    (*box)[d].Union(with[d]);
  }
}

void ArTree::BulkLoad(std::vector<ArTreeEntry> entries) {
  nodes_.clear();
  payload_to_leaf_.clear();
  payload_to_entry_.clear();
  entries_ = std::move(entries);
  entry_live_.assign(entries_.size(), true);
  live_entries_ = entries_.size();
  for (size_t i = 0; i < entries_.size(); ++i) {
    TERIDS_CHECK(static_cast<int>(entries_[i].box.size()) == dims_);
    payload_to_entry_[entries_[i].payload] = static_cast<int>(i);
  }
  if (entries_.empty()) {
    root_ = -1;
    return;
  }
  std::vector<int> ids(entries_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  root_ = BuildRec(&ids, 0, ids.size(), 0, /*parent=*/-1);
}

int ArTree::BuildRec(std::vector<int>* entry_ids, size_t begin, size_t end,
                     int dim, int parent) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].parent = parent;

  const size_t count = end - begin;
  if (count <= static_cast<size_t>(fanout_)) {
    Node& node = nodes_[node_id];
    node.leaf = true;
    for (size_t i = begin; i < end; ++i) {
      node.entry_ids.push_back((*entry_ids)[i]);
      payload_to_leaf_[entries_[(*entry_ids)[i]].payload] = node_id;
    }
    RecomputeNode(node_id);
    return node_id;
  }

  // Sort this slice by box center on the cycling dimension, then split into
  // fanout equal groups (k-d-style sort-tile-recurse).
  std::sort(entry_ids->begin() + begin, entry_ids->begin() + end,
            [this, dim](int a, int b) {
              const Interval& ia = entries_[a].box[dim];
              const Interval& ib = entries_[b].box[dim];
              return ia.lo + ia.hi < ib.lo + ib.hi;
            });
  size_t groups = std::min<size_t>(
      static_cast<size_t>(fanout_), (count + fanout_ - 1) / fanout_);
  if (groups < 2) groups = 2;
  const size_t per_group = (count + groups - 1) / groups;
  std::vector<int> children;
  for (size_t g = 0; g * per_group < count; ++g) {
    const size_t gb = begin + g * per_group;
    const size_t ge = std::min(end, gb + per_group);
    children.push_back(
        BuildRec(entry_ids, gb, ge, (dim + 1) % dims_, node_id));
  }
  Node& node = nodes_[node_id];
  node.leaf = false;
  node.children = std::move(children);
  RecomputeNode(node_id);
  return node_id;
}

void ArTree::RecomputeNode(int node_id) {
  Node& node = nodes_[node_id];
  node.box.clear();
  node.agg = NodeAggregates();
  if (node.leaf) {
    for (int eid : node.entry_ids) {
      if (!entry_live_[eid]) continue;
      ExtendBox(&node.box, entries_[eid].box);
      node.agg.Merge(entries_[eid].agg);
    }
  } else {
    for (int child : node.children) {
      if (nodes_[child].box.empty()) continue;
      ExtendBox(&node.box, nodes_[child].box);
      node.agg.Merge(nodes_[child].agg);
    }
  }
  if (node.box.empty()) {
    node.box.assign(dims_, Interval::Empty());
  }
}

void ArTree::RecomputePath(int node_id) {
  for (int n = node_id; n != -1; n = nodes_[n].parent) {
    RecomputeNode(n);
  }
}

void ArTree::Insert(ArTreeEntry entry) {
  TERIDS_CHECK(static_cast<int>(entry.box.size()) == dims_);
  TERIDS_CHECK(payload_to_entry_.count(entry.payload) == 0);
  const int eid = static_cast<int>(entries_.size());
  payload_to_entry_[entry.payload] = eid;
  entries_.push_back(std::move(entry));
  entry_live_.push_back(true);
  ++live_entries_;

  if (root_ == -1) {
    root_ = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[root_].leaf = true;
  }
  // Descend to the leaf whose box needs the least total enlargement.
  int n = root_;
  while (!nodes_[n].leaf) {
    int best = -1;
    double best_cost = 0.0;
    for (int child : nodes_[n].children) {
      double cost = 0.0;
      for (int d = 0; d < dims_; ++d) {
        Interval grown = nodes_[child].box[d];
        grown.Union(entries_[eid].box[d]);
        cost += grown.width() - nodes_[child].box[d].width();
      }
      if (best == -1 || cost < best_cost) {
        best = child;
        best_cost = cost;
      }
    }
    TERIDS_CHECK(best != -1);
    n = best;
  }
  nodes_[n].entry_ids.push_back(eid);
  payload_to_leaf_[entries_[eid].payload] = n;

  // Split an overfull leaf along the dimension with the widest spread.
  if (static_cast<int>(nodes_[n].entry_ids.size()) > 2 * fanout_) {
    int split_dim = 0;
    {
      std::vector<Interval> spread(dims_, Interval::Empty());
      for (int e : nodes_[n].entry_ids) {
        for (int d = 0; d < dims_; ++d) {
          spread[d].Union(entries_[e].box[d]);
        }
      }
      double best_width = -1.0;
      for (int d = 0; d < dims_; ++d) {
        if (spread[d].width() > best_width) {
          best_width = spread[d].width();
          split_dim = d;
        }
      }
    }
    std::vector<int> eids = std::move(nodes_[n].entry_ids);
    std::sort(eids.begin(), eids.end(), [this, split_dim](int a, int b) {
      const Interval& ia = entries_[a].box[split_dim];
      const Interval& ib = entries_[b].box[split_dim];
      return ia.lo + ia.hi < ib.lo + ib.hi;
    });
    const size_t half = eids.size() / 2;
    const int sibling = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    // Note: nodes_.emplace_back may reallocate; re-reference n afterwards.
    nodes_[sibling].leaf = true;
    nodes_[n].entry_ids.assign(eids.begin(), eids.begin() + half);
    nodes_[sibling].entry_ids.assign(eids.begin() + half, eids.end());
    for (int e : nodes_[sibling].entry_ids) {
      payload_to_leaf_[entries_[e].payload] = sibling;
    }
    if (n == root_) {
      const int new_root = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      nodes_[new_root].leaf = false;
      nodes_[new_root].children = {n, sibling};
      nodes_[n].parent = new_root;
      nodes_[sibling].parent = new_root;
      root_ = new_root;
    } else {
      const int parent = nodes_[n].parent;
      nodes_[sibling].parent = parent;
      nodes_[parent].children.push_back(sibling);
    }
    RecomputeNode(sibling);
  }
  RecomputePath(n);
}

bool ArTree::Remove(int64_t payload) {
  auto it = payload_to_entry_.find(payload);
  if (it == payload_to_entry_.end() || !entry_live_[it->second]) {
    return false;
  }
  const int eid = it->second;
  entry_live_[eid] = false;
  --live_entries_;
  const int leaf = payload_to_leaf_.at(payload);
  auto& eids = nodes_[leaf].entry_ids;
  eids.erase(std::remove(eids.begin(), eids.end(), eid), eids.end());
  payload_to_entry_.erase(it);
  payload_to_leaf_.erase(payload);
  RecomputePath(leaf);
  return true;
}

void ArTree::Query(const NodePredicate& should_visit,
                   const EntryVisitor& on_entry) const {
  last_query_leaves_visited = 0;
  if (root_ == -1) {
    return;
  }
  QueryRec(root_, should_visit, on_entry);
}

void ArTree::QueryRec(int node_id, const NodePredicate& should_visit,
                      const EntryVisitor& on_entry) const {
  const Node& node = nodes_[node_id];
  if (node.leaf && node.entry_ids.empty()) {
    return;
  }
  NodeView view{node.box, node.agg, node.leaf,
                static_cast<int>(node.leaf ? node.entry_ids.size()
                                           : node.children.size())};
  if (!should_visit(view)) {
    return;
  }
  if (node.leaf) {
    ++last_query_leaves_visited;
    for (int eid : node.entry_ids) {
      if (entry_live_[eid]) {
        on_entry(entries_[eid]);
      }
    }
    return;
  }
  for (int child : node.children) {
    QueryRec(child, should_visit, on_entry);
  }
}

}  // namespace terids
