#include <gtest/gtest.h>

#include <cmath>

#include "pivot/pivot_selector.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

TEST(EntropyTest, UniformBucketsMaximizeEntropy) {
  // 10 coordinates spread evenly over 10 buckets: entropy = log2(10).
  std::vector<double> coords;
  for (int i = 0; i < 10; ++i) {
    coords.push_back(i / 10.0 + 0.05);
  }
  EXPECT_NEAR(PivotSelector::Entropy(coords, 10), std::log2(10.0), 1e-9);
}

TEST(EntropyTest, ConstantCoordinatesHaveZeroEntropy) {
  std::vector<double> coords(100, 0.42);
  EXPECT_DOUBLE_EQ(PivotSelector::Entropy(coords, 10), 0.0);
}

TEST(EntropyTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(PivotSelector::Entropy({}, 10), 0.0);
}

TEST(EntropyTest, BoundaryCoordinateFallsInLastBucket) {
  // Coordinate exactly 1.0 must not index out of range.
  std::vector<double> coords{1.0, 0.0};
  EXPECT_NEAR(PivotSelector::Entropy(coords, 10), 1.0, 1e-9);
}

TEST(JointEntropyTest, IndependentPivotsAddInformation) {
  // Pivot 1 splits {0, 1}; pivot 2 splits the same points differently:
  // joint entropy must be >= each marginal.
  std::vector<double> p1{0.05, 0.05, 0.95, 0.95};
  std::vector<double> p2{0.05, 0.95, 0.05, 0.95};
  const double h1 = PivotSelector::Entropy(p1, 10);
  const double h2 = PivotSelector::Entropy(p2, 10);
  const double joint = PivotSelector::JointEntropy({p1, p2}, 10);
  EXPECT_GE(joint, h1 - 1e-12);
  EXPECT_GE(joint, h2 - 1e-12);
  EXPECT_NEAR(joint, 2.0, 1e-9);  // 4 distinct cells, uniform.
}

TEST(JointEntropyTest, DuplicatedPivotAddsNothing) {
  std::vector<double> p{0.05, 0.5, 0.95, 0.3};
  const double h = PivotSelector::Entropy(p, 10);
  EXPECT_NEAR(PivotSelector::JointEntropy({p, p}, 10), h, 1e-9);
}

TEST(PivotSelectorTest, SelectsAtLeastMainPivotPerAttribute) {
  ToyWorld world = MakeHealthWorld();
  PivotSelector selector(world.repo.get(), PivotOptions{});
  std::vector<AttributePivots> pivots = selector.SelectAll();
  ASSERT_EQ(static_cast<int>(pivots.size()), world.repo->num_attributes());
  for (const AttributePivots& p : pivots) {
    EXPECT_GE(p.count(), 1);
  }
}

TEST(PivotSelectorTest, RespectsCntMax) {
  ToyWorld world = MakeHealthWorld();
  PivotOptions opts;
  opts.cnt_max = 1;
  opts.min_entropy = 100.0;  // Unreachable: would want many pivots.
  PivotSelector selector(world.repo.get(), opts);
  for (const AttributePivots& p : selector.SelectAll()) {
    EXPECT_EQ(p.count(), 1);
  }
}

TEST(PivotSelectorTest, StopsAddingOnceEntropyReached) {
  ToyWorld world = MakeHealthWorld();
  PivotOptions opts;
  opts.cnt_max = 5;
  opts.min_entropy = 0.0;  // Any single pivot satisfies eMin.
  PivotSelector selector(world.repo.get(), opts);
  for (const AttributePivots& p : selector.SelectAll()) {
    EXPECT_EQ(p.count(), 1);
  }
}

TEST(PivotSelectorTest, MainPivotMaximizesSingleEntropyAmongCandidates) {
  ToyWorld world = MakeHealthWorld();
  PivotOptions opts;
  opts.candidate_samples = 0;  // Exhaustive candidates.
  opts.eval_samples = 0;       // Exhaustive evaluation.
  PivotSelector selector(world.repo.get(), opts);
  const int attr = 1;  // symptom: the most diverse attribute.
  AttributePivots chosen = selector.SelectForAttribute(attr);

  const AttributeDomain& dom = world.repo->domain(attr);
  std::vector<double> chosen_coords;
  for (ValueId v = 0; v < dom.size(); ++v) {
    chosen_coords.push_back(
        JaccardDistance(dom.tokens(v), chosen.pivots[0]));
  }
  const double chosen_h = PivotSelector::Entropy(chosen_coords, opts.buckets);
  for (ValueId cand = 0; cand < dom.size(); ++cand) {
    std::vector<double> coords;
    for (ValueId v = 0; v < dom.size(); ++v) {
      coords.push_back(JaccardDistance(dom.tokens(v), dom.tokens(cand)));
    }
    EXPECT_LE(PivotSelector::Entropy(coords, opts.buckets), chosen_h + 1e-9);
  }
}

TEST(PivotSelectorTest, EmptyDomainYieldsEmptyPivot) {
  Schema schema({"a"});
  TokenDict dict;
  Repository repo(&schema, &dict);
  PivotSelector selector(&repo, PivotOptions{});
  AttributePivots p = selector.SelectForAttribute(0);
  EXPECT_EQ(p.count(), 1);
  EXPECT_TRUE(p.pivots[0].empty());
}

}  // namespace
}  // namespace terids
