// Figure 12: offline CDD detection (rule mining) time per dataset.

#include <cstdio>

#include "bench_common.h"
#include "datagen/profiles.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  JsonReporter reporter("Figure 12");
  PrintHeader("Figure 12", "offline CDD detection time (seconds)", base);
  std::printf("%-10s %14s %12s %14s\n", "dataset", "CDD detect (s)",
              "#CDD rules", "pivot sel (s)");
  for (const std::string& name : AllDatasets()) {
    Experiment experiment(ProfileByName(name), BaseParams(name));
    std::printf("%-10s %14.4f %12zu %14.4f\n", name.c_str(),
                experiment.rule_mining_seconds(), experiment.cdds().size(),
                experiment.pivot_selection_seconds());
    std::fflush(stdout);
    reporter.AddRow()
        .Str("dataset", name)
        .Num("cdd_detect_seconds", experiment.rule_mining_seconds())
        .Num("num_rules", static_cast<double>(experiment.cdds().size()))
        .Num("pivot_select_seconds", experiment.pivot_selection_seconds());
  }
  std::printf(
      "\npaper shape: detection cost grows with repository size (Songs\n"
      "largest) and token-set sizes (EBooks > Citations/Anime/Bikes).\n");
  return 0;
}
