#include "eval/latency_histogram.h"

#include <algorithm>
#include <cstdio>

#include "util/status.h"

namespace terids {

const char* ExecPhaseName(ExecPhase phase) {
  switch (phase) {
    case ExecPhase::kIngest:
      return "ingest";
    case ExecPhase::kCandidate:
      return "candidate";
    case ExecPhase::kRefine:
      return "refine";
    case ExecPhase::kMaintain:
      return "maintain";
  }
  return "unknown";
}

LatencyHistogram::LatencyHistogram() : counts_(kNumBuckets, 0) {}

int LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < static_cast<uint64_t>(kSubBuckets)) {
    // Sub-kSubBuckets durations get one exact bucket each.
    return static_cast<int>(nanos);
  }
  // Highest set bit e >= kSubBucketBits; the kSubBucketBits bits below it
  // pick the linear sub-bucket within the octave [2^e, 2^(e+1)).
  int e = 63;
  while ((nanos >> e) == 0) {
    --e;
  }
  const uint64_t sub =
      (nanos >> (e - kSubBucketBits)) & (static_cast<uint64_t>(kSubBuckets) - 1);
  return ((e - kSubBucketBits + 1) << kSubBucketBits) + static_cast<int>(sub);
}

uint64_t LatencyHistogram::BucketLowerBound(int bucket) {
  TERIDS_CHECK(bucket >= 0 && bucket < kNumBuckets);
  if (bucket < kSubBuckets) {
    return static_cast<uint64_t>(bucket);
  }
  const int e = (bucket >> kSubBucketBits) + kSubBucketBits - 1;
  const uint64_t sub = static_cast<uint64_t>(bucket & (kSubBuckets - 1));
  return (static_cast<uint64_t>(1) << e) + (sub << (e - kSubBucketBits));
}

uint64_t LatencyHistogram::BucketUpperBound(int bucket) {
  TERIDS_CHECK(bucket >= 0 && bucket < kNumBuckets);
  if (bucket < kSubBuckets) {
    return static_cast<uint64_t>(bucket) + 1;
  }
  const int e = (bucket >> kSubBucketBits) + kSubBucketBits - 1;
  return BucketLowerBound(bucket) +
         (static_cast<uint64_t>(1) << (e - kSubBucketBits));
}

void LatencyHistogram::RecordNanos(uint64_t nanos) {
  ++counts_[BucketIndex(nanos)];
  ++count_;
  sum_nanos_ += nanos;
  max_nanos_ = std::max(max_nanos_, nanos);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_nanos_ += other.sum_nanos_;
  max_nanos_ = std::max(max_nanos_, other.max_nanos_);
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // The rank-r element of the sorted sample (0-based), the same definition a
  // sorted-vector oracle uses: r = ceil(q * count) - 1, clamped to [0, n).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) {
    ++rank;  // ceil for non-integer products
  }
  rank = rank > 0 ? rank - 1 : 0;
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (counts_[b] == 0) {
      continue;
    }
    cum += counts_[b];
    if (cum > rank) {
      // Interpolate by rank position inside the bucket: samples are assumed
      // uniform over [lo, hi), so the k-th of n bucket samples sits at
      // lo + (k + 0.5)/n * width.
      const uint64_t pos = rank - (cum - counts_[b]);
      const double lo = static_cast<double>(BucketLowerBound(b));
      const double width = static_cast<double>(BucketUpperBound(b)) - lo;
      const double fraction = (static_cast<double>(pos) + 0.5) /
                              static_cast<double>(counts_[b]);
      return (lo + fraction * width) * 1e-9;
    }
  }
  return static_cast<double>(max_nanos_) * 1e-9;  // unreachable
}

double LatencyHistogram::mean_seconds() const {
  if (count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_nanos_) /
         static_cast<double>(count_) * 1e-9;
}

void LatencyHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_nanos_ = 0;
  max_nanos_ = 0;
}

std::string LatencyHistogram::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"p50_ms\":%.6g,\"p99_ms\":%.6g,"
                "\"p999_ms\":%.6g,\"mean_ms\":%.6g,\"max_ms\":%.6g}",
                static_cast<unsigned long long>(count_),
                1e3 * Percentile(0.50), 1e3 * Percentile(0.99),
                1e3 * Percentile(0.999), 1e3 * mean_seconds(),
                1e3 * max_seconds());
  return std::string(buf);
}

void LatencyStats::Merge(const LatencyStats& other) {
  for (int p = 0; p < kNumExecPhases; ++p) {
    phase[p].Merge(other.phase[p]);
  }
  end_to_end.Merge(other.end_to_end);
}

void LatencyStats::Reset() {
  for (int p = 0; p < kNumExecPhases; ++p) {
    phase[p].Reset();
  }
  end_to_end.Reset();
}

std::string LatencyStats::ToJson() const {
  std::string out = "{";
  for (int p = 0; p < kNumExecPhases; ++p) {
    out += "\"";
    out += ExecPhaseName(static_cast<ExecPhase>(p));
    out += "\":";
    out += phase[p].ToJson();
    out += ",";
  }
  out += "\"end_to_end\":";
  out += end_to_end.ToJson();
  out += "}";
  return out;
}

}  // namespace terids
