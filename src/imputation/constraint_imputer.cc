#include "imputation/constraint_imputer.h"

#include "util/stopwatch.h"

namespace terids {

ConstraintImputer::ConstraintImputer(Repository* repo, int history_cap)
    : repo_(repo), history_cap_(history_cap) {
  TERIDS_CHECK(repo != nullptr);
  TERIDS_CHECK(history_cap > 0);
}

void ConstraintImputer::OnArrival(const Record& r) {
  if (!r.IsComplete()) {
    return;
  }
  std::deque<Record>& h = history_[r.stream_id];
  h.push_back(r);
  if (static_cast<int>(h.size()) > history_cap_) {
    h.pop_front();
  }
}

void ConstraintImputer::OnEvict(const Record& r) {
  std::deque<Record>& h = history_[r.stream_id];
  if (!h.empty() && h.front().rid == r.rid) {
    h.pop_front();
  }
}

std::vector<ImputedTuple::ImputedAttr> ConstraintImputer::ImputeRecord(
    const Record& r, CostBreakdown* cost) {
  std::vector<ImputedTuple::ImputedAttr> result;
  ScopedTimer timer(cost ? &cost->impute_seconds : nullptr);

  // Sequential donor semantics [43]: the most *recent* complete tuple on
  // the same stream fills the gaps. This is fast (no repository, no
  // search) but ignores the semantic association between attribute values,
  // which is exactly the weakness the paper reports for this baseline.
  const std::deque<Record>& h = history_[r.stream_id];
  const Record* best = nullptr;
  for (auto it = h.rbegin(); it != h.rend(); ++it) {
    if (it->rid != r.rid) {
      best = &*it;
      break;
    }
  }
  if (best == nullptr) {
    return result;
  }
  for (int j : r.MissingAttributes()) {
    const AttrValue& donor = best->values[j];
    const ValueId vid = repo_->RegisterValue(j, donor.tokens, donor.text);
    ImputedTuple::ImputedAttr ia;
    ia.attr = j;
    ia.candidates.push_back({vid, 1.0});
    result.push_back(std::move(ia));
  }
  return result;
}

}  // namespace terids
