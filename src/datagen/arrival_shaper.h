#ifndef TERIDS_DATAGEN_ARRIVAL_SHAPER_H_
#define TERIDS_DATAGEN_ARRIVAL_SHAPER_H_

#include <cstdint>
#include <vector>

#include "text/token_dict.h"
#include "tuple/record.h"

namespace terids {

/// Composable adversarial stream shaping (DESIGN.md §13): wraps any
/// generated source (one stream's record vector, any profile) with the
/// arrival pathologies a production ingest sees but the paper's evaluation
/// streams never exhibit —
///
///   * concept drift        — the value distribution rotates over time:
///                            records past each drift period get
///                            phase-marked tokens mixed into their values,
///                            so match structure shifts between phases;
///   * duplicate storms     — records re-emit a bounded distance
///                            downstream, exactly or near-exactly (one
///                            perturbed attribute), under fresh rids;
///   * bounded out-of-order — each record's release slot is delayed by
///                            U[0, horizon], then the sequence is stably
///                            sorted by slot: delivery is permuted but no
///                            record overtakes more than `horizon` peers.
///
/// Shape() applies the three content transforms in that fixed order;
/// OfferedTimeline() independently produces the bursty (on/off Markov)
/// inter-arrival gaps a paced driver replays. Everything is a pure function
/// of (input, Options) — one Rng seeded from opts.seed, drawn in a fixed
/// order — so the same seed yields the same stream byte for byte.
class ArrivalShaper {
 public:
  struct Options {
    uint64_t seed = 20210620;

    /// Concept drift: every `drift_period` records the stream enters the
    /// next drift phase (0 = off). In phase p >= 1 each non-missing
    /// attribute value independently gains a phase-marked drift token with
    /// probability `drift_rate`.
    int drift_period = 0;
    double drift_rate = 0.25;

    /// Duplicate storms: each record independently re-emits with
    /// probability `duplicate_p` (0 = off), between 1 and
    /// `duplicate_max_lag` positions downstream, under a fresh rid. A
    /// re-emission is a near-duplicate (one non-missing attribute value
    /// perturbed) with probability `near_duplicate_p`, an exact copy
    /// otherwise.
    double duplicate_p = 0.0;
    double near_duplicate_p = 0.5;
    int duplicate_max_lag = 8;

    /// Bounded out-of-order delivery: each record's release slot is its
    /// index plus U[0, reorder_horizon] (0 = in order). Stable sort by
    /// slot guarantees no record is overtaken by one more than
    /// `reorder_horizon` positions behind it.
    int reorder_horizon = 0;

    /// Markov on/off burst train for OfferedTimeline(): per-arrival
    /// transition probabilities into/out of the burst state and the mean
    /// inter-arrival gap multiplier inside/outside a burst (exponential
    /// gaps; the caller normalizes the timeline to its target rate).
    double burst_on_p = 0.1;
    double burst_off_p = 0.25;
    double burst_gap_scale = 0.2;
    double idle_gap_scale = 1.6;
  };

  /// Applies drift, duplicates, and bounded reordering to one source.
  /// `dict` interns the drift/perturbation tokens (the engine must share
  /// it, exactly as with generated data); `next_rid` seeds the fresh rids
  /// handed to duplicates (pass one past the dataset's largest rid).
  static std::vector<Record> Shape(const std::vector<Record>& records,
                                   TokenDict* dict, int64_t next_rid,
                                   const Options& opts);

  /// `n` bursty inter-arrival gaps (seconds, mean ~1 modulo burst shape);
  /// prefix-sum and rescale to pace an offered-load schedule.
  static std::vector<double> OfferedTimeline(size_t n, const Options& opts);
};

}  // namespace terids

#endif  // TERIDS_DATAGEN_ARRIVAL_SHAPER_H_
