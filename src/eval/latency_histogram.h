#ifndef TERIDS_EVAL_LATENCY_HISTOGRAM_H_
#define TERIDS_EVAL_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace terids {

/// The four work-item phases of the unified scheduler (DESIGN.md §10). The
/// same tags key the per-arrival phase-latency histograms, so the scheduler
/// (src/exec) and the accounting layer agree on one vocabulary.
enum class ExecPhase {
  kIngest = 0,     // imputation: probe coords, CDD selection, candidates (4)
  kCandidate = 1,  // ER-grid probe fan-out / linear window scan
  kRefine = 2,     // the Theorem 4.1-4.4 cascade / exact refinement
  kMaintain = 3,   // grid + window insertion, eviction cascade
};
inline constexpr int kNumExecPhases = 4;

/// Short lowercase phase tag for table and JSON output ("ingest", ...).
const char* ExecPhaseName(ExecPhase phase);

/// A log-bucketed latency histogram: fixed memory, O(1) record, mergeable
/// across workers, and percentile queries with within-bucket interpolation.
///
/// Buckets cover [1ns, ~2^63 ns) with `kSubBuckets` linear sub-buckets per
/// power of two, so the relative bucket width — and therefore the worst-case
/// percentile error — is 1/kSubBuckets (6.25%). Durations below 1ns clamp
/// into the first bucket. Record/Merge/Percentile are NOT thread-safe; the
/// intended concurrent usage is one histogram per worker merged after the
/// workers quiesce (see Scheduler::ConsumeLatencies).
class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave; 16 gives <= 6.25% relative error.
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  /// 64 - kSubBucketBits octaves above the exact range plus the exact
  /// [0, kSubBuckets) range itself.
  static constexpr int kNumBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  LatencyHistogram();

  /// Folds one duration (in seconds) into the histogram.
  void Record(double seconds) { RecordNanos(ToNanos(seconds)); }
  /// Same, in integer nanoseconds (the worker-ring fast path).
  void RecordNanos(uint64_t nanos);

  /// Adds every count of `other` into this histogram. Merge is commutative
  /// and associative, so per-worker histograms can be combined in any order.
  void Merge(const LatencyHistogram& other);

  /// The value (in seconds) at quantile `q` in [0, 1]: the bucket holding
  /// the rank-ceil(q*count) sample, linearly interpolated by rank position
  /// within the bucket. 0 when the histogram is empty.
  double Percentile(double q) const;

  uint64_t count() const { return count_; }
  /// Exact (unbucketed) extremes and mean, in seconds; 0 when empty.
  double max_seconds() const { return static_cast<double>(max_nanos_) * 1e-9; }
  double mean_seconds() const;

  void Reset();

  /// Flat JSON object with count, mean/max, and the three SLO percentiles:
  /// {"count":N,"p50_ms":...,"p99_ms":...,"p999_ms":...,"mean_ms":...,
  ///  "max_ms":...}.
  std::string ToJson() const;

  /// Bucket index of a duration and the [lo, hi) nanosecond range of a
  /// bucket — exposed so tests can pin the boundary math.
  static int BucketIndex(uint64_t nanos);
  static uint64_t BucketLowerBound(int bucket);
  static uint64_t BucketUpperBound(int bucket);

  static uint64_t ToNanos(double seconds) {
    if (seconds <= 0.0) {
      return 0;
    }
    return static_cast<uint64_t>(seconds * 1e9);
  }

 private:
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_nanos_ = 0;
  uint64_t max_nanos_ = 0;
};

/// One histogram per scheduler phase plus the end-to-end per-arrival
/// latency — the unit CostBreakdown-style accounting aggregates and
/// JsonReporter emits (DESIGN.md §10). Plain value type; merge combines the
/// component histograms pairwise.
struct LatencyStats {
  LatencyHistogram phase[kNumExecPhases];
  LatencyHistogram end_to_end;

  LatencyHistogram& of(ExecPhase p) { return phase[static_cast<int>(p)]; }
  const LatencyHistogram& of(ExecPhase p) const {
    return phase[static_cast<int>(p)];
  }

  void Merge(const LatencyStats& other);
  void Reset();

  /// JSON object keyed by phase name plus "end_to_end", each value a
  /// LatencyHistogram::ToJson object. Phases with zero samples are included
  /// (count 0) so the artifact schema is stable across configurations.
  std::string ToJson() const;
};

}  // namespace terids

#endif  // TERIDS_EVAL_LATENCY_HISTOGRAM_H_
