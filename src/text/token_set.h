#ifndef TERIDS_TEXT_TOKEN_SET_H_
#define TERIDS_TEXT_TOKEN_SET_H_

#include <cstddef>
#include <vector>

#include "text/token_dict.h"

namespace terids {

/// A set of interned tokens stored as a sorted, deduplicated vector.
///
/// This is the unit the similarity function of Definition 5 operates on:
/// sim(r[A_j], r'[A_j]) = |T ∩ T'| / |T ∪ T'| (Jaccard). Intersections run
/// through the shared span kernels of text/similarity_kernels.h (linear
/// merge for balanced sizes, galloping for skewed ones); the refinement hot
/// path additionally reads these sets through the flat TokenArena views.
class TokenSet {
 public:
  TokenSet() = default;

  /// Builds from an arbitrary (possibly unsorted, duplicated) token list.
  static TokenSet FromTokens(std::vector<Token> tokens);

  size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }
  const std::vector<Token>& tokens() const { return tokens_; }

  /// Membership test (binary search).
  bool Contains(Token t) const;

  /// |this ∩ other| (merge or gallop; identical counts either way).
  size_t IntersectionSize(const TokenSet& other) const;

  bool operator==(const TokenSet& other) const {
    return tokens_ == other.tokens_;
  }

 private:
  std::vector<Token> tokens_;
};

/// The shared empty token set: the value of every missing attribute.
/// Namespace-level (not a function-local static) so hot functions comparing
/// against it pay no magic-static guard. Dynamically initialized in
/// token_set.cc — read it at runtime only, never from another translation
/// unit's static initializer (C++17 cannot constant-initialize a vector, so
/// cross-TU initialization order is unspecified).
extern const TokenSet kEmptyTokenSet;

/// Jaccard similarity in [0,1]. Two empty sets are defined as similarity 1
/// (identical absence of content), matching the convention the evaluation
/// needs for short attributes such as `year`.
double JaccardSimilarity(const TokenSet& a, const TokenSet& b);

/// Jaccard distance = 1 - similarity. This is a metric (satisfies the
/// triangle inequality), which Lemma 4.2 and the pivot embedding rely on.
double JaccardDistance(const TokenSet& a, const TokenSet& b);

}  // namespace terids

#endif  // TERIDS_TEXT_TOKEN_SET_H_
