#include "synopsis/er_grid_shard.h"

#include <algorithm>

#include "util/status.h"

namespace terids {

ErGridShard::ErGridShard(int dims) : dims_(dims) { TERIDS_CHECK(dims >= 1); }

void ErGridShard::AddMember(Cell* cell, const WindowTuple* wt) const {
  cell->members.push_back(wt);
  cell->topic_mask |= wt->topic.possible_mask;
  cell->any_topic = cell->any_topic || wt->topic.any;
  if (cell->bounds.empty()) {
    cell->bounds.assign(dims_, Interval::Empty());
  }
  for (int k = 0; k < dims_; ++k) {
    cell->bounds[k].Union(wt->tuple->pivot_dist_interval(k, 0));
  }
}

void ErGridShard::RebuildCell(Cell* cell) const {
  std::vector<const WindowTuple*> members = std::move(cell->members);
  *cell = Cell();
  for (const WindowTuple* wt : members) {
    AddMember(cell, wt);
  }
}

void ErGridShard::Insert(const WindowTuple* wt,
                         std::vector<GridCellKey> keys) {
  TERIDS_CHECK(wt != nullptr);
  TERIDS_CHECK(!keys.empty());
  const int64_t rid = wt->rid();
  TERIDS_CHECK(tuple_cells_.count(rid) == 0);
  for (GridCellKey key : keys) {
    AddMember(&cells_[key], wt);
  }
  tuple_cells_.emplace(rid, std::move(keys));
}

bool ErGridShard::Remove(const WindowTuple* wt) {
  TERIDS_CHECK(wt != nullptr);
  auto it = tuple_cells_.find(wt->rid());
  if (it == tuple_cells_.end()) {
    return false;
  }
  for (GridCellKey key : it->second) {
    auto cit = cells_.find(key);
    TERIDS_CHECK(cit != cells_.end());
    Cell& cell = cit->second;
    cell.members.erase(
        std::remove(cell.members.begin(), cell.members.end(), wt),
        cell.members.end());
    if (cell.members.empty()) {
      cells_.erase(cit);
    } else {
      RebuildCell(&cell);
    }
  }
  tuple_cells_.erase(it);
  return true;
}

void ErGridShard::Probe(const WindowTuple& probe,
                        const std::vector<Interval>& q_bounds,
                        double dist_budget, bool topic_constrained,
                        ProbeOutput* out) const {
  for (const auto& [key, cell] : cells_) {
    (void)key;
    ++out->cells_visited;

    // Cell-level topic pruning (Theorem 4.1): if the probe can never be
    // topical and no member of this cell can be topical, every pair with
    // this cell is out.
    const bool cell_topic_pass =
        !topic_constrained || probe.topic.any || cell.any_topic;

    // Cell-level distance lower bound (Lemma 4.2 with the cell's bounds).
    double lb_dist = 0.0;
    for (int k = 0; k < dims_ && lb_dist < dist_budget; ++k) {
      lb_dist += q_bounds[k].MinAbsDiff(cell.bounds[k]);
    }
    const bool cell_sim_pass = lb_dist < dist_budget;

    if (cell_topic_pass && !cell_sim_pass) {
      ++out->cells_pruned;
    }

    for (const WindowTuple* member : cell.members) {
      if (member->stream_id() == probe.stream_id() ||
          member->rid() == probe.rid()) {
        continue;
      }
      int verdict;
      if (topic_constrained && !probe.topic.any && !member->topic.any) {
        verdict = 0;  // Topic-pruned regardless of geometry.
      } else if (!cell_sim_pass) {
        verdict = 1;
      } else {
        verdict = 2;
      }
      auto [it, inserted] =
          out->verdicts.emplace(member->rid(), std::make_pair(member, verdict));
      if (!inserted && verdict > it->second.second) {
        it->second.second = verdict;
      }
    }
  }
}

}  // namespace terids
