// Figure 5(a): F-score of TER-iDS vs DD+ER, er+ER, con+ER per dataset.

#include <cstdio>

#include "bench_common.h"
#include "datagen/profiles.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  JsonReporter reporter("Figure 5(a)");
  PrintHeader("Figure 5(a)", "F-score vs real data sets", base);
  std::printf("%-10s", "dataset");
  for (PipelineKind kind : AccuracyPipelines()) {
    std::printf(" %10s", PipelineKindName(kind));
  }
  std::printf(" %8s\n", "truth");
  for (const std::string& name : AllDatasets()) {
    Experiment experiment(ProfileByName(name), BaseParams(name));
    std::printf("%-10s", name.c_str());
    for (PipelineKind kind : AccuracyPipelines()) {
      PipelineRun run = experiment.Run(kind);
      std::printf(" %10.4f", run.accuracy.f_score);
      std::fflush(stdout);
      reporter.AddRow()
          .Str("dataset", name)
          .Str("pipeline", PipelineKindName(kind))
          .Num("f_score", run.accuracy.f_score)
          .Num("truth_pairs",
               static_cast<double>(experiment.effective_truth().size()));
    }
    std::printf(" %8zu\n", experiment.effective_truth().size());
  }
  std::printf(
      "\npaper shape: TER-iDS highest (94.62-97.34%%), then DD+ER, er+ER,\n"
      "con+ER lowest. Ij+GER and CDD+ER equal TER-iDS by construction.\n");
  return 0;
}
