// ShardedErGrid coordinator invariants: cell-key routing, targeted removal,
// and the deterministic fan-out/merge contract — every shard count must
// produce the byte-identical CandidateResult of the single-shard oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "er/topic.h"
#include "synopsis/sharded_er_grid.h"
#include "test_util.h"
#include "util/rng.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

class ShardedGridTest : public ::testing::Test {
 protected:
  ShardedGridTest()
      : world_(MakeHealthWorld()), topic_(*world_.dict, {"diabetes"}) {}

  std::shared_ptr<WindowTuple> MakeTuple(
      int64_t rid, int stream, const std::vector<std::string>& texts) {
    Record r = world_.Make(rid, texts);
    r.stream_id = stream;
    auto wt = std::make_shared<WindowTuple>();
    wt->tuple = std::make_shared<const ImputedTuple>(
        ImputedTuple::FromComplete(r, world_.repo.get()));
    wt->topic = topic_.Classify(*wt->tuple);
    return wt;
  }

  /// A spread-out imputed tuple occupying several grid cells, so routing
  /// can split it across shards.
  std::shared_ptr<WindowTuple> MakeSpreadTuple(int64_t rid, int stream) {
    Record r =
        world_.Make(rid, {"male", "blurred vision", "-", "drug therapy"});
    r.stream_id = stream;
    const AttributeDomain& dom = world_.repo->domain(2);
    ImputedTuple::ImputedAttr ia;
    ia.attr = 2;
    for (ValueId v = 0; v < dom.size() && v < 5; ++v) {
      ia.candidates.push_back({v, 1.0 / 5});
    }
    auto wt = std::make_shared<WindowTuple>();
    wt->tuple = std::make_shared<const ImputedTuple>(
        ImputedTuple::FromImputation(r, world_.repo.get(), {ia}, 16));
    wt->topic = topic_.Classify(*wt->tuple);
    return wt;
  }

  std::vector<std::shared_ptr<WindowTuple>> RandomPool(int count, int stream) {
    const std::vector<std::vector<std::string>> pool = {
        {"male", "loss of weight", "diabetes", "drug therapy"},
        {"female", "fever cough", "flu", "rest"},
        {"male", "blurred vision", "diabetes", "dietary therapy"},
        {"female", "red eye shed tears", "conjunctivitis", "eye drop"},
        {"male", "fever poor appetite", "flu", "drink more"},
        {"male", "loss of weight thirst", "diabetes", "dietary therapy"},
    };
    Rng rng(7 + stream);
    std::vector<std::shared_ptr<WindowTuple>> tuples;
    for (int i = 0; i < count; ++i) {
      tuples.push_back(MakeTuple(1000 * (stream + 1) + i, stream,
                                 pool[rng.NextBounded(pool.size())]));
    }
    return tuples;
  }

  ToyWorld world_;
  TopicQuery topic_;
};

TEST_F(ShardedGridTest, RoutingSplitsCellsAcrossShardsLosslessly) {
  // With a fine cell width the spread tuple occupies several cells; the
  // shard partition must cover exactly the single-shard cell set.
  ShardedErGrid single(world_.repo->num_attributes(), 0.05, 1);
  ShardedErGrid sharded(world_.repo->num_attributes(), 0.05, 4);
  auto spread = MakeSpreadTuple(1, 1);
  single.Insert(spread.get());
  sharded.Insert(spread.get());
  ASSERT_GE(single.num_cells(), 2u);
  EXPECT_EQ(sharded.num_cells(), single.num_cells());
  EXPECT_EQ(sharded.num_tuples(), 1u);

  // A populated grid spreads its cells over the partition, and every cell
  // lives in exactly one shard: the per-shard counts add up to the
  // single-shard totals exactly.
  auto members = RandomPool(40, /*stream=*/1);
  for (const auto& wt : members) {
    single.Insert(wt.get());
    sharded.Insert(wt.get());
  }
  EXPECT_EQ(sharded.num_cells(), single.num_cells());
  EXPECT_EQ(sharded.num_tuples(), single.num_tuples());
  size_t cell_sum = 0;
  size_t occupied_shards = 0;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    cell_sum += sharded.shard(s).num_cells();
    if (sharded.shard(s).num_cells() > 0) {
      ++occupied_shards;
    }
  }
  EXPECT_EQ(cell_sum, single.num_cells());
  EXPECT_GE(occupied_shards, 2u) << "populated grid should span shards";
}

TEST_F(ShardedGridTest, RemoveIsTargetedAndComplete) {
  ShardedErGrid grid(world_.repo->num_attributes(), 0.05, 4);
  auto spread = MakeSpreadTuple(1, 1);
  auto plain = MakeTuple(2, 1, {"male", "fever", "flu", "rest"});
  grid.Insert(spread.get());
  grid.Insert(plain.get());
  EXPECT_EQ(grid.num_tuples(), 2u);
  EXPECT_TRUE(grid.Remove(spread.get()));
  EXPECT_EQ(grid.num_tuples(), 1u);
  EXPECT_FALSE(grid.Remove(spread.get()));  // Already removed.
  EXPECT_TRUE(grid.Remove(plain.get()));
  EXPECT_EQ(grid.num_cells(), 0u);
  for (int s = 0; s < grid.num_shards(); ++s) {
    EXPECT_EQ(grid.shard(s).num_cells(), 0u);
    EXPECT_EQ(grid.shard(s).num_tuples(), 0u);
  }
}

/// The tentpole contract: for any shard count, Candidates returns the
/// byte-identical result of the single-shard oracle — same candidates in
/// the same (ascending-rid) order, same per-strategy prune counts, same
/// cell totals — across probes, gammas, and topic constraints, including
/// after interleaved removals.
TEST_F(ShardedGridTest, ShardCountSweepMatchesSingleShardOracle) {
  const int dims = world_.repo->num_attributes();
  auto members = RandomPool(60, /*stream=*/1);
  auto probes = RandomPool(12, /*stream=*/0);
  members.push_back(MakeSpreadTuple(5000, 1));
  members.push_back(MakeSpreadTuple(5001, 1));

  for (double cell_width : {0.05, 0.2}) {
    ShardedErGrid oracle(dims, cell_width, 1);
    for (const auto& wt : members) {
      oracle.Insert(wt.get());
    }
    for (int shards : {2, 3, 4, 8}) {
      ShardedErGrid grid(dims, cell_width, shards);
      for (const auto& wt : members) {
        grid.Insert(wt.get());
      }
      ASSERT_EQ(grid.num_cells(), oracle.num_cells());
      // Interleaved removals must leave both grids in the same state.
      for (size_t victim : {size_t(3), size_t(17), members.size() - 1}) {
        EXPECT_TRUE(oracle.Remove(members[victim].get()));
        EXPECT_TRUE(grid.Remove(members[victim].get()));
      }
      for (const auto& probe : probes) {
        for (double gamma : {0.5, 2.0, 2.5}) {
          for (bool constrained : {false, true}) {
            const auto expected =
                oracle.Candidates(*probe, gamma, constrained);
            const auto got = grid.Candidates(*probe, gamma, constrained);
            ASSERT_EQ(got.candidates.size(), expected.candidates.size());
            for (size_t i = 0; i < got.candidates.size(); ++i) {
              EXPECT_EQ(got.candidates[i], expected.candidates[i]);
            }
            EXPECT_EQ(got.topic_pruned, expected.topic_pruned);
            EXPECT_EQ(got.sim_pruned, expected.sim_pruned);
            EXPECT_EQ(got.cells_visited, expected.cells_visited);
            EXPECT_EQ(got.cells_pruned, expected.cells_pruned)
                << "shards=" << shards << " width=" << cell_width
                << " gamma=" << gamma << " constrained=" << constrained;
          }
        }
      }
      // Restore the removed members for the next shard count.
      for (size_t victim : {size_t(3), size_t(17), members.size() - 1}) {
        oracle.Insert(members[victim].get());
      }
      // (grid is discarded; oracle must be back to the full member set.)
      ASSERT_EQ(oracle.num_tuples(), members.size());
    }
  }
}

TEST_F(ShardedGridTest, CandidatesAreSortedByRid) {
  ShardedErGrid grid(world_.repo->num_attributes(), 0.2, 4);
  auto members = RandomPool(40, /*stream=*/1);
  // Insert in reverse so sortedness cannot fall out of insertion order.
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    grid.Insert(it->get());
  }
  auto probe = MakeTuple(1, 0, {"male", "fever", "flu", "rest"});
  const auto result = grid.Candidates(*probe, 2.0, /*topic_constrained=*/false);
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_TRUE(std::is_sorted(
      result.candidates.begin(), result.candidates.end(),
      [](const WindowTuple* a, const WindowTuple* b) {
        return a->rid() < b->rid();
      }));
}

}  // namespace
}  // namespace terids
