// Storage-backend contract tests (DESIGN.md §8): the mmap snapshot backend
// must be bit-identical to the in-memory oracle on every read — base image
// and dynamic overlay alike — and must refuse corrupt or mismatched
// snapshot files with a precise error instead of serving garbage.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "pivot/pivot_selector.h"
#include "repo/mmap_snapshot_storage.h"
#include "repo/repository.h"
#include "repo/snapshot_format.h"
#include "repo/snapshot_writer.h"
#include "test_util.h"
#include "util/rng.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Every read the RepoStorage interface offers, compared across backends.
void ExpectBitIdenticalReads(const Repository& oracle,
                             const Repository& snapshot) {
  ASSERT_EQ(oracle.num_attributes(), snapshot.num_attributes());
  ASSERT_EQ(oracle.num_samples(), snapshot.num_samples());
  ASSERT_EQ(oracle.has_pivots(), snapshot.has_pivots());
  const int d = oracle.num_attributes();

  for (int x = 0; x < d; ++x) {
    ASSERT_EQ(oracle.domain_size(x), snapshot.domain_size(x)) << "attr " << x;
    for (ValueId v = 0; v < oracle.domain_size(x); ++v) {
      EXPECT_TRUE(oracle.value_tokens(x, v) == snapshot.value_tokens(x, v));
      EXPECT_EQ(oracle.value_text(x, v), snapshot.value_text(x, v));
      EXPECT_EQ(oracle.value_frequency(x, v), snapshot.value_frequency(x, v));
      EXPECT_EQ(snapshot.FindValue(x, oracle.value_tokens(x, v)), v);
    }
    ASSERT_EQ(oracle.num_pivots(x), snapshot.num_pivots(x));
    for (int a = 0; a < oracle.num_pivots(x); ++a) {
      EXPECT_TRUE(oracle.pivot_tokens(x, a) == snapshot.pivot_tokens(x, a));
      for (ValueId v = 0; v < oracle.domain_size(x); ++v) {
        EXPECT_EQ(oracle.pivot_distance(x, a, v),
                  snapshot.pivot_distance(x, a, v));
      }
    }
  }

  for (size_t i = 0; i < oracle.num_samples(); ++i) {
    const Record& a = oracle.sample(i);
    const Record& b = snapshot.sample(i);
    EXPECT_EQ(a.rid, b.rid);
    EXPECT_EQ(a.stream_id, b.stream_id);
    EXPECT_EQ(a.timestamp, b.timestamp);
    ASSERT_EQ(a.values.size(), b.values.size());
    for (int x = 0; x < d; ++x) {
      EXPECT_EQ(a.values[x].missing, b.values[x].missing);
      EXPECT_EQ(a.values[x].text, b.values[x].text);
      EXPECT_TRUE(a.values[x].tokens == b.values[x].tokens);
      EXPECT_EQ(oracle.sample_value_id(i, x), snapshot.sample_value_id(i, x));
    }
  }

  // Range scans must agree element-for-element *in order* — the scan order
  // feeds deterministic candidate accumulation.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int x = static_cast<int>(rng.NextBounded(d));
    double lo = rng.NextDouble();
    double hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const Interval band = Interval::Of(lo, hi);
    EXPECT_EQ(oracle.ValuesInCoordRange(x, band),
              snapshot.ValuesInCoordRange(x, band));
  }
  // Full-domain and empty-interval scans.
  for (int x = 0; x < d; ++x) {
    EXPECT_EQ(oracle.ValuesInCoordRange(x, Interval::Of(0.0, 1.0)),
              snapshot.ValuesInCoordRange(x, Interval::Of(0.0, 1.0)));
    EXPECT_TRUE(snapshot.ValuesInCoordRange(x, Interval::Empty()).empty());
  }
}

/// A generated dataset big enough to exercise multi-token values, shared
/// dictionaries, and non-trivial pivot geometry.
struct GeneratedWorld {
  GeneratedDataset dataset;
  std::unique_ptr<Repository> repo;
};

GeneratedWorld MakeGeneratedWorld() {
  GeneratedWorld world;
  DataGenerator::Options opts;
  opts.scale = 0.02;
  world.dataset = DataGenerator::Generate(CitationsProfile(), opts);
  world.repo = std::make_unique<Repository>(world.dataset.schema.get(),
                                            world.dataset.dict.get());
  for (const Record& r : world.dataset.repo_records) {
    TERIDS_CHECK(world.repo->AddSample(r).ok());
  }
  PivotSelector selector(world.repo.get(), PivotOptions{});
  world.repo->AttachPivots(selector.SelectAll());
  return world;
}

TEST(SnapshotStorageTest, RoundTripReadsAreBitIdentical) {
  GeneratedWorld world = MakeGeneratedWorld();
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(WriteRepositorySnapshot(*world.repo, path).ok());

  Result<std::unique_ptr<Repository>> reopened = Repository::OpenSnapshot(
      world.dataset.schema.get(), world.dataset.dict.get(), path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_STREQ((*reopened)->backend_name(), "mmap");
  EXPECT_STREQ(world.repo->backend_name(), "memory");
  ExpectBitIdenticalReads(*world.repo, **reopened);
  std::remove(path.c_str());
}

TEST(SnapshotStorageTest, MappingOutlivesFileRemoval) {
  ToyWorld world = MakeHealthWorld();
  const std::string path = TempPath("unlinked.snap");
  ASSERT_TRUE(WriteRepositorySnapshot(*world.repo, path).ok());
  Result<std::unique_ptr<Repository>> reopened = Repository::OpenSnapshot(
      world.schema.get(), world.dict.get(), path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Experiment::BuildRepository removes the temp file immediately after
  // opening; the mapping must keep every page readable.
  std::remove(path.c_str());
  ExpectBitIdenticalReads(*world.repo, **reopened);
}

TEST(SnapshotStorageTest, WriterRequiresPivots) {
  ToyWorld world = MakeHealthWorld();
  Repository no_pivots(world.schema.get(), world.dict.get());
  const Status status =
      WriteRepositorySnapshot(no_pivots, TempPath("nopivots.snap"));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotStorageTest, MissingFileIsNotFound) {
  ToyWorld world = MakeHealthWorld();
  Result<std::unique_ptr<Repository>> r = Repository::OpenSnapshot(
      world.schema.get(), world.dict.get(), TempPath("does-not-exist.snap"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MakeHealthWorld();
    path_ = TempPath("corruption.snap");
    ASSERT_TRUE(WriteRepositorySnapshot(*world_.repo, path_).ok());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), sizeof(snapshot::Header));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  Status Reopen(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    Result<std::unique_ptr<Repository>> r = Repository::OpenSnapshot(
        world_.schema.get(), world_.dict.get(), path_);
    return r.ok() ? Status::Ok() : r.status();
  }

  ToyWorld world_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruptionTest, FlippedPayloadByteFailsChecksum) {
  std::string corrupt = bytes_;
  corrupt[sizeof(snapshot::Header) + 11] ^= 0x40;
  const Status status = Reopen(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, TruncationIsRejected) {
  const Status status = Reopen(bytes_.substr(0, bytes_.size() - 9));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotCorruptionTest, BadMagicIsRejected) {
  std::string corrupt = bytes_;
  corrupt[0] = 'X';
  const Status status = Reopen(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, FutureVersionIsRejected) {
  std::string corrupt = bytes_;
  corrupt[8] = 99;  // Header.version low byte.
  const Status status = Reopen(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, SchemaArityMismatchIsRejected) {
  Schema narrow(std::vector<std::string>{"a", "b"});
  Result<std::unique_ptr<Repository>> r =
      Repository::OpenSnapshot(&narrow, world_.dict.get(), path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotCorruptionTest, ForeignDictionaryIsRejected) {
  TokenDict tiny;  // Holds none of the snapshot's interned ids.
  Result<std::unique_ptr<Repository>> r =
      Repository::OpenSnapshot(world_.schema.get(), &tiny, path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Dynamic overlay: Section 5.5 writes after the snapshot was opened.
// ---------------------------------------------------------------------------

class SnapshotOverlayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MakeHealthWorld();
    path_ = TempPath("overlay.snap");
    ASSERT_TRUE(WriteRepositorySnapshot(*world_.repo, path_).ok());
    Result<std::unique_ptr<Repository>> reopened = Repository::OpenSnapshot(
        world_.schema.get(), world_.dict.get(), path_);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    snapshot_ = std::move(reopened).value();
    std::remove(path_.c_str());
  }

  ToyWorld world_;
  std::string path_;
  std::unique_ptr<Repository> snapshot_;
};

TEST_F(SnapshotOverlayTest, RegisterValueMatchesOracle) {
  Tokenizer tok(world_.dict.get());
  const std::vector<std::string> texts = {
      "hypertension", "severe fever cough", "loss of weight", "eye drop"};
  for (const std::string& text : texts) {
    const TokenSet tokens = tok.Tokenize(text);
    const ValueId oracle_vid = world_.repo->RegisterValue(2, tokens, text);
    const ValueId snap_vid = snapshot_->RegisterValue(2, tokens, text);
    EXPECT_EQ(oracle_vid, snap_vid) << text;
  }
  ExpectBitIdenticalReads(*world_.repo, *snapshot_);
}

TEST_F(SnapshotOverlayTest, DuplicateRegisterValueIsANoOpOnBothSides) {
  Tokenizer tok(world_.dict.get());
  const TokenSet tokens = tok.Tokenize("hypertension");
  const ValueId first = snapshot_->RegisterValue(2, tokens, "hypertension");
  const size_t size_after_first = snapshot_->domain_size(2);
  EXPECT_EQ(snapshot_->RegisterValue(2, tokens, "other spelling"), first);
  EXPECT_EQ(snapshot_->domain_size(2), size_after_first);
  // Registering an existing *base* value must return the base id, not grow
  // the overlay.
  const TokenSet base = snapshot_->value_tokens(2, 0);
  EXPECT_EQ(snapshot_->RegisterValue(2, base, "dup"), 0u);
  EXPECT_EQ(snapshot_->domain_size(2), size_after_first);
}

TEST_F(SnapshotOverlayTest, AddSampleMatchesOracle) {
  // New samples bump base-value frequencies through the overlay delta and
  // introduce overlay values, samples, and coordinates on both sides.
  const std::vector<std::vector<std::string>> extra = {
      {"female", "thirst blurred vision", "diabetes", "dietary therapy"},
      {"male", "sore throat fever", "strep throat", "antibiotics"},
      {"female", "fever cough", "flu", "rest"},
  };
  for (size_t i = 0; i < extra.size(); ++i) {
    const Record r = world_.Make(static_cast<int64_t>(5000 + i), extra[i]);
    ASSERT_TRUE(world_.repo->AddSample(r).ok());
    ASSERT_TRUE(snapshot_->AddSample(r).ok());
  }
  ExpectBitIdenticalReads(*world_.repo, *snapshot_);
}

TEST_F(SnapshotOverlayTest, DomainAccessorIsInMemoryOnly) {
  EXPECT_DEATH(snapshot_->domain(0), "in-memory");
}

}  // namespace
}  // namespace terids
