#include "text/similarity_kernels.h"

#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TERIDS_SIMD_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define TERIDS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace terids {

size_t IntersectLinear(const Token* a, size_t na, const Token* b, size_t nb) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

namespace {

/// Index of the first element >= t in the sorted span b[from, nb), found by
/// exponential probing from `from` followed by a binary search of the
/// bracketed range. O(log distance) instead of O(distance).
size_t GallopLowerBound(const Token* b, size_t nb, size_t from, Token t) {
  size_t step = 1;
  size_t lo = from;
  size_t hi = from;
  while (hi < nb && b[hi] < t) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  const Token* first = b + lo;
  const Token* last = b + std::min(hi, nb);
  return static_cast<size_t>(std::lower_bound(first, last, t) - b);
}

}  // namespace

size_t IntersectGallop(const Token* a, size_t na, const Token* b, size_t nb) {
  // Gallop the smaller span into the larger one; the cursor into the large
  // span only moves forward, so the whole intersection is O(n log m).
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  size_t count = 0;
  size_t pos = 0;
  for (size_t i = 0; i < na && pos < nb; ++i) {
    pos = GallopLowerBound(b, nb, pos, a[i]);
    if (pos < nb && b[pos] == a[i]) {
      ++count;
      ++pos;
    }
  }
  return count;
}

// --- Batched popcount sweep: scalar core + SIMD specializations -------------

namespace {

/// Portable scalar core, the bit-identity reference for every SIMD path.
/// Word count templated so the width-64 common case keeps a branch-free
/// inner body.
template <int kWords>
void PopsScalarT(const uint64_t* a, const uint64_t* b, size_t n, uint32_t* pa,
                 uint32_t* pb, uint32_t* pc) {
  for (size_t i = 0; i < n; ++i) {
    uint32_t ca = 0;
    uint32_t cb = 0;
    uint32_t cc = 0;
    for (int w = 0; w < kWords; ++w) {
      const uint64_t wa = a[i * kWords + w];
      const uint64_t wb = b[i * kWords + w];
      ca += static_cast<uint32_t>(PopCount64(wa));
      cb += static_cast<uint32_t>(PopCount64(wb));
      cc += static_cast<uint32_t>(PopCount64(wa & wb));
    }
    pa[i] = ca;
    pb[i] = cb;
    pc[i] = cc;
  }
}

void PopsScalar(const uint64_t* a, const uint64_t* b, size_t n, int words,
                uint32_t* pa, uint32_t* pb, uint32_t* pc) {
  switch (words) {
    case 1:
      PopsScalarT<1>(a, b, n, pa, pb, pc);
      return;
    case 2:
      PopsScalarT<2>(a, b, n, pa, pb, pc);
      return;
    default:
      PopsScalarT<4>(a, b, n, pa, pb, pc);
      return;
  }
}

#if defined(TERIDS_SIMD_AVX2)

/// Per-64-bit-lane popcounts of one 256-bit vector via the nibble-LUT
/// (Mula) algorithm — AVX2 has no vpopcntq. Compiled with a function-level
/// target attribute so the default build needs no -mavx2; only ever called
/// after __builtin_cpu_supports("avx2") passed.
__attribute__((target("avx2"))) inline void LanePopcounts(__m256i v,
                                                          uint64_t out[4]) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  const __m256i sums = _mm256_sad_epu8(cnt, _mm256_setzero_si256());
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), sums);
}

/// The signature streams are contiguous uint64 arrays (entry-major), so one
/// 256-bit load covers 4 / `words` whole entries; the per-lane popcounts
/// fold back into per-entry counts with at most three scalar adds.
__attribute__((target("avx2"))) void PopsAvx2(const uint64_t* a,
                                              const uint64_t* b, size_t n,
                                              int words, uint32_t* pa,
                                              uint32_t* pb, uint32_t* pc) {
  const size_t per_vec = static_cast<size_t>(4 / words);
  size_t e = 0;
  uint64_t la[4];
  uint64_t lb[4];
  uint64_t lc[4];
  for (; e + per_vec <= n; e += per_vec) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + e * static_cast<size_t>(words)));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + e * static_cast<size_t>(words)));
    LanePopcounts(va, la);
    LanePopcounts(vb, lb);
    LanePopcounts(_mm256_and_si256(va, vb), lc);
    switch (words) {
      case 1:
        for (size_t k = 0; k < 4; ++k) {
          pa[e + k] = static_cast<uint32_t>(la[k]);
          pb[e + k] = static_cast<uint32_t>(lb[k]);
          pc[e + k] = static_cast<uint32_t>(lc[k]);
        }
        break;
      case 2:
        pa[e] = static_cast<uint32_t>(la[0] + la[1]);
        pb[e] = static_cast<uint32_t>(lb[0] + lb[1]);
        pc[e] = static_cast<uint32_t>(lc[0] + lc[1]);
        pa[e + 1] = static_cast<uint32_t>(la[2] + la[3]);
        pb[e + 1] = static_cast<uint32_t>(lb[2] + lb[3]);
        pc[e + 1] = static_cast<uint32_t>(lc[2] + lc[3]);
        break;
      default:
        pa[e] = static_cast<uint32_t>(la[0] + la[1] + la[2] + la[3]);
        pb[e] = static_cast<uint32_t>(lb[0] + lb[1] + lb[2] + lb[3]);
        pc[e] = static_cast<uint32_t>(lc[0] + lc[1] + lc[2] + lc[3]);
        break;
    }
  }
  if (e < n) {
    const size_t off = e * static_cast<size_t>(words);
    PopsScalar(a + off, b + off, n - e, words, pa + e, pb + e, pc + e);
  }
}

#endif  // TERIDS_SIMD_AVX2

#if defined(TERIDS_SIMD_NEON)

/// Per-64-bit-lane popcounts of one 128-bit vector (vcnt over bytes, then
/// pairwise widening adds up to u64 lanes).
inline uint64x2_t LanePopcounts128(uint64x2_t v) {
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))));
}

void PopsNeon(const uint64_t* a, const uint64_t* b, size_t n, int words,
              uint32_t* pa, uint32_t* pb, uint32_t* pc) {
  if (words == 4) {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t* ea = a + i * 4;
      const uint64_t* eb = b + i * 4;
      const uint64x2_t a0 = vld1q_u64(ea);
      const uint64x2_t a1 = vld1q_u64(ea + 2);
      const uint64x2_t b0 = vld1q_u64(eb);
      const uint64x2_t b1 = vld1q_u64(eb + 2);
      const uint64x2_t ca =
          vaddq_u64(LanePopcounts128(a0), LanePopcounts128(a1));
      const uint64x2_t cb =
          vaddq_u64(LanePopcounts128(b0), LanePopcounts128(b1));
      const uint64x2_t cc = vaddq_u64(LanePopcounts128(vandq_u64(a0, b0)),
                                      LanePopcounts128(vandq_u64(a1, b1)));
      pa[i] = static_cast<uint32_t>(vaddvq_u64(ca));
      pb[i] = static_cast<uint32_t>(vaddvq_u64(cb));
      pc[i] = static_cast<uint32_t>(vaddvq_u64(cc));
    }
    return;
  }
  const size_t per_vec = static_cast<size_t>(2 / words);
  size_t e = 0;
  for (; e + per_vec <= n; e += per_vec) {
    const uint64x2_t va = vld1q_u64(a + e * static_cast<size_t>(words));
    const uint64x2_t vb = vld1q_u64(b + e * static_cast<size_t>(words));
    const uint64x2_t ca = LanePopcounts128(va);
    const uint64x2_t cb = LanePopcounts128(vb);
    const uint64x2_t cc = LanePopcounts128(vandq_u64(va, vb));
    if (words == 1) {
      pa[e] = static_cast<uint32_t>(vgetq_lane_u64(ca, 0));
      pb[e] = static_cast<uint32_t>(vgetq_lane_u64(cb, 0));
      pc[e] = static_cast<uint32_t>(vgetq_lane_u64(cc, 0));
      pa[e + 1] = static_cast<uint32_t>(vgetq_lane_u64(ca, 1));
      pb[e + 1] = static_cast<uint32_t>(vgetq_lane_u64(cb, 1));
      pc[e + 1] = static_cast<uint32_t>(vgetq_lane_u64(cc, 1));
    } else {
      pa[e] = static_cast<uint32_t>(vaddvq_u64(ca));
      pb[e] = static_cast<uint32_t>(vaddvq_u64(cb));
      pc[e] = static_cast<uint32_t>(vaddvq_u64(cc));
    }
  }
  if (e < n) {
    const size_t off = e * static_cast<size_t>(words);
    PopsScalar(a + off, b + off, n - e, words, pa + e, pb + e, pc + e);
  }
}

#endif  // TERIDS_SIMD_NEON

using PopsFn = void (*)(const uint64_t*, const uint64_t*, size_t, int,
                        uint32_t*, uint32_t*, uint32_t*);

struct SimdDispatch {
  PopsFn fn = &PopsScalar;
  const char* name = "scalar";
};

/// Feature detection + the TERIDS_SIMD environment override, resolved once
/// at first use. TERIDS_SIMD=off (also "scalar" or "0") forces the
/// portable core — the CI fallback leg and the bit-identity reference.
SimdDispatch ResolveDispatch() {
  const char* env = std::getenv("TERIDS_SIMD");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
       std::strcmp(env, "0") == 0)) {
    return SimdDispatch{};
  }
#if defined(TERIDS_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    return SimdDispatch{&PopsAvx2, "avx2"};
  }
#endif
#if defined(TERIDS_SIMD_NEON)
  return SimdDispatch{&PopsNeon, "neon"};
#endif
  return SimdDispatch{};
}

const SimdDispatch& ActiveDispatch() {
  static const SimdDispatch dispatch = ResolveDispatch();
  return dispatch;
}

}  // namespace

const char* SimdDispatchName() { return ActiveDispatch().name; }

void SigPopCountBatch(const uint64_t* sig_a, const uint64_t* sig_b,
                      size_t entries, int words, uint32_t* pa, uint32_t* pb,
                      uint32_t* pc, bool force_scalar) {
  if (entries == 0) {
    return;
  }
  if (force_scalar) {
    PopsScalar(sig_a, sig_b, entries, words, pa, pb, pc);
    return;
  }
  ActiveDispatch().fn(sig_a, sig_b, entries, words, pa, pb, pc);
}

size_t SigFilterCandidates(const SigFilterBatch& batch, double gamma,
                           uint64_t* survivors) {
  const size_t n = batch.num_pairs;
  const size_t sv_words = (n + 63) / 64;
  for (size_t w = 0; w < sv_words; ++w) {
    survivors[w] = 0;
  }
  if (n == 0) {
    return 0;
  }
  const int d = batch.d;
  const int words = SigWords(batch.sig_bits);
  const size_t entries = n * static_cast<size_t>(d);
  // Thread-local scratch keeps the steady-state filter allocation-free; the
  // executor calls this from the dispatching thread only.
  thread_local std::vector<uint32_t> pops_a;
  thread_local std::vector<uint32_t> pops_b;
  thread_local std::vector<uint32_t> pops_c;
  pops_a.resize(entries);
  pops_b.resize(entries);
  pops_c.resize(entries);
  SigPopCountBatch(batch.sig_a, batch.sig_b, entries, words, pops_a.data(),
                   pops_b.data(), pops_c.data());
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t base = i * static_cast<size_t>(d);
    // Exactly InstanceSimilarityExceeds' pass 1: the per-attribute bounds
    // summed in attribute order, with identical double rounding.
    double total_ub = 0.0;
    for (int k = 0; k < d; ++k) {
      const size_t e = base + static_cast<size_t>(k);
      SigPopCounts p;
      p.common = static_cast<int>(pops_c[e]);
      p.a = static_cast<int>(pops_a[e]);
      p.b = static_cast<int>(pops_b[e]);
      total_ub += SigJaccardUpperBoundFromPops(batch.len_a[e], batch.len_b[e],
                                               p);
    }
    if (total_ub > gamma) {
      survivors[i >> 6] |= uint64_t{1} << (i & 63);
      ++count;
    }
  }
  return count;
}

}  // namespace terids
