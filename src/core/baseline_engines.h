#ifndef TERIDS_CORE_BASELINE_ENGINES_H_
#define TERIDS_CORE_BASELINE_ENGINES_H_

#include <vector>

#include "core/pipeline.h"
#include "imputation/value_neighborhoods.h"
#include "index/cdd_index.h"
#include "rules/rule.h"

namespace terids {

/// `Ij+GER`: CDD-index-assisted rule selection and ER-grid-based matching,
/// but *no index join* — sample retrieval is a linear repository scan per
/// selected rule (Section 6.1). The gap between this baseline and
/// TerIdsEngine isolates the benefit of the 3-way join.
class IjGerEngine : public PipelineBase {
 public:
  IjGerEngine(Repository* repo, EngineConfig config, int num_streams,
              std::vector<CddRule> rules);

 protected:
  std::vector<ImputedTuple::ImputedAttr> Impute(const Record& r,
                                                const ProbeCoords& pc,
                                                CostBreakdown* cost) override;

 private:
  std::vector<CddRule> rules_;
  CddIndex cdd_index_;
  ValueNeighborhoods neighborhoods_;
};

/// The linear baselines `CDD+ER`, `DD+ER`, `er+ER`: rule-based imputation
/// with full rule and repository scans, followed by a linear window scan
/// with exact probability computation (no indexes, no synopsis, no pruning
/// theorems). This is also the paper's "straightforward method".
class LinearRulePipeline : public PipelineBase {
 public:
  LinearRulePipeline(Repository* repo, EngineConfig config, int num_streams,
                     std::vector<CddRule> rules, std::string name);
};

/// `con+ER`: constraint-based imputation from the stream itself (no
/// repository access) followed by a linear window scan.
class ConstraintErPipeline : public PipelineBase {
 public:
  ConstraintErPipeline(Repository* repo, EngineConfig config, int num_streams);
};

}  // namespace terids

#endif  // TERIDS_CORE_BASELINE_ENGINES_H_
