#ifndef TERIDS_SYNOPSIS_ER_GRID_H_
#define TERIDS_SYNOPSIS_ER_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/sliding_window.h"
#include "util/interval.h"

namespace terids {

/// The ER-grid synopsis G_ER (Section 5.2): a d-dimensional grid over the
/// pivot-converted space [0,1]^d holding the live window tuples of all n
/// streams.
///
/// Cells materialize lazily in a hash map (a dense g^d array is infeasible
/// for d up to 7). A tuple is inserted into every cell one of its imputed
/// instances falls into, exactly as the paper prescribes; cells aggregate
/// the keyword Boolean vector, per-dimension coordinate bounds, and
/// token-size bounds of their members.
class ErGrid {
 public:
  /// `dims` = number of attributes d; `cell_width` = side length of a cell
  /// in the converted space.
  ErGrid(int dims, double cell_width);

  void Insert(const WindowTuple* wt);
  /// Removes an expired tuple. Returns false if it was never inserted.
  bool Remove(const WindowTuple* wt);

  size_t num_tuples() const { return tuple_cells_.size(); }
  size_t num_cells() const { return cells_.size(); }

  /// Candidate retrieval for a probe tuple, with cell-level topic and
  /// distance-bound pruning.
  struct CandidateResult {
    std::vector<const WindowTuple*> candidates;
    /// Tuples (from other streams) pruned because neither they nor the
    /// probe can contain a query keyword (Theorem 4.1 at grid level).
    uint64_t topic_pruned = 0;
    /// Tuples pruned by the cell-level pivot distance bound (Lemma 4.2 at
    /// grid level).
    uint64_t sim_pruned = 0;
    uint64_t cells_visited = 0;
    uint64_t cells_pruned = 0;
  };

  /// `topic_constrained` is false for an unconstrained query (K = all), in
  /// which case topic pruning is skipped. Tuples from the probe's own
  /// stream are ignored entirely (TER-iDS pairs span two streams).
  CandidateResult Candidates(const WindowTuple& probe, double gamma,
                             bool topic_constrained) const;

 private:
  struct Cell {
    std::vector<const WindowTuple*> members;
    uint64_t topic_mask = 0;
    bool any_topic = false;
    std::vector<Interval> bounds;       // per-dim cover of member intervals
    std::vector<Interval> size_bounds;  // per-dim token-size cover
  };

  using CellKey = uint64_t;

  CellKey KeyOf(const std::vector<int32_t>& coords) const;
  std::vector<CellKey> CellsOf(const ImputedTuple& tuple) const;
  void AddMember(Cell* cell, const WindowTuple* wt) const;
  void RebuildCell(Cell* cell) const;

  int dims_;
  double cell_width_;
  std::unordered_map<CellKey, Cell> cells_;
  // rid -> the cell keys the tuple occupies (for removal).
  std::unordered_map<int64_t, std::vector<CellKey>> tuple_cells_;
};

}  // namespace terids

#endif  // TERIDS_SYNOPSIS_ER_GRID_H_
