#ifndef TERIDS_PIVOT_PIVOT_SELECTOR_H_
#define TERIDS_PIVOT_PIVOT_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "repo/repository.h"

namespace terids {

/// Options for the cost-model-based pivot selection of Section 5.4 and
/// Appendix B.
struct PivotOptions {
  /// Number of equi-width buckets P the converted space [0,1] is split into
  /// for the Shannon-entropy cost model (the paper evaluates with P = 10).
  int buckets = 10;
  /// Minimal entropy threshold eMin: selection stops adding auxiliary
  /// pivots once the joint entropy reaches this (paper default 1.5).
  double min_entropy = 1.5;
  /// Maximal allowed number of attribute pivots cntMax (paper varies 1-5).
  int cnt_max = 3;
  /// To bound the offline cost, at most this many domain values are tried
  /// as candidate pivots per attribute (<= 0 means try the whole domain).
  int candidate_samples = 96;
  /// Entropy is estimated over at most this many domain values
  /// (<= 0 means use the whole domain).
  int eval_samples = 1024;
  uint64_t seed = 7;
};

/// Selects, for each attribute A_x, up to cntMax pivot attribute values
/// from dom(A_x) that maximize the Shannon entropy of the converted values
/// dist(s[A_x], piv[A_x]) (Equation 5). The first selected pivot is the
/// main pivot; additional pivots are auxiliary and are added greedily while
/// the joint entropy is below eMin.
class PivotSelector {
 public:
  PivotSelector(const Repository* repo, PivotOptions options);

  /// Pivots for every attribute; feed the result to
  /// Repository::AttachPivots().
  std::vector<AttributePivots> SelectAll() const;

  AttributePivots SelectForAttribute(int attr) const;

  /// Shannon entropy (Equation 5) of coordinates in [0,1] over `buckets`
  /// equi-width buckets. Exposed for tests and the ablation bench.
  static double Entropy(const std::vector<double>& coords, int buckets);

  /// Joint entropy over the product bucketing of several coordinate lists
  /// (one list per pivot, all of equal length).
  static double JointEntropy(const std::vector<std::vector<double>>& coords,
                             int buckets);

 private:
  const Repository* repo_;
  PivotOptions options_;
};

}  // namespace terids

#endif  // TERIDS_PIVOT_PIVOT_SELECTOR_H_
