#!/usr/bin/env bash
# clang-format check over all C++ sources, as run by the CI format-check
# job. Pass --fix to rewrite files in place instead of checking. The
# CLANG_FORMAT environment variable selects the binary (the CI job pins a
# major version with it, e.g. CLANG_FORMAT=clang-format-15).
set -euo pipefail
cd "$(dirname "$0")/.."

clang_format="${CLANG_FORMAT:-clang-format}"

mode=(--dry-run -Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

if ! command -v "$clang_format" >/dev/null; then
  echo "error: $clang_format not installed" >&2
  exit 1
fi

find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 "$clang_format" "${mode[@]}"
