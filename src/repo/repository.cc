#include "repo/repository.h"

#include <utility>

#include "repo/in_memory_storage.h"
#include "repo/mmap_snapshot_storage.h"

namespace terids {

Repository::Repository(const Schema* schema, const TokenDict* dict)
    : Repository(schema, dict, nullptr) {}

Repository::Repository(const Schema* schema, const TokenDict* dict,
                       std::unique_ptr<RepoStorage> storage)
    : schema_(schema), dict_(dict), storage_(std::move(storage)) {
  TERIDS_CHECK(schema != nullptr);
  TERIDS_CHECK(dict != nullptr);
  if (storage_ == nullptr) {
    storage_ = std::make_unique<InMemoryStorage>(schema->num_attributes());
  }
}

Result<std::unique_ptr<Repository>> Repository::OpenSnapshot(
    const Schema* schema, const TokenDict* dict, const std::string& path,
    SnapshotDecode decode) {
  TERIDS_CHECK(schema != nullptr);
  TERIDS_CHECK(dict != nullptr);
  Result<std::unique_ptr<MmapSnapshotStorage>> storage =
      MmapSnapshotStorage::Open(schema->num_attributes(), dict, path, decode);
  if (!storage.ok()) {
    return storage.status();
  }
  return std::make_unique<Repository>(schema, dict,
                                      std::move(storage).value());
}

Status Repository::AddSample(const Record& record) {
  if (record.num_attributes() != schema_->num_attributes()) {
    return Status::InvalidArgument("sample arity does not match schema");
  }
  if (!record.IsComplete()) {
    return Status::InvalidArgument(
        "repository samples must be complete tuples");
  }
  std::vector<ValueId> vids(record.values.size());
  for (int x = 0; x < record.num_attributes(); ++x) {
    const AttrValue& v = record.values[x];
    ValueId vid = RegisterValue(x, v.tokens, v.text);
    storage_->BumpFrequency(x, vid);
    vids[x] = vid;
  }
  storage_->AppendSample(record, std::move(vids));
  return Status::Ok();
}

ValueId Repository::RegisterValue(int attr, const TokenSet& tokens,
                                  const std::string& text) {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  return storage_->RegisterValue(attr, tokens, text);
}

const AttributeDomain& Repository::domain(int attr) const {
  const auto* in_memory = dynamic_cast<const InMemoryStorage*>(storage_.get());
  TERIDS_CHECK(in_memory != nullptr &&
               "Repository::domain is in-memory-backend-only; use the "
               "backend-neutral value accessors");
  return in_memory->domain(attr);
}

void Repository::AttachPivots(std::vector<AttributePivots> pivots) {
  TERIDS_CHECK(storage_->SupportsAttachPivots());
  TERIDS_CHECK(static_cast<int>(pivots.size()) == num_attributes());
  for (const AttributePivots& p : pivots) {
    TERIDS_CHECK(p.count() >= 1);
  }
  storage_->AttachPivots(std::move(pivots));
}

}  // namespace terids
