#ifndef TERIDS_STREAM_OVERLOAD_H_
#define TERIDS_STREAM_OVERLOAD_H_

#include <cstdint>
#include <string>

#include "eval/latency_histogram.h"

namespace terids {

/// What the async ingest path does when the refinement stage falls behind
/// the arrival stream (DESIGN.md §13). Only meaningful with
/// EngineConfig::ingest_queue_depth >= 1 — the synchronous operator has no
/// stage to fall behind.
enum class OverloadPolicy {
  /// Backpressure (seed behavior, the equivalence oracle): the producer
  /// blocks in BatchQueue::Push until refinement drains a slot. Every
  /// arrival is fully processed; under sustained overload the unprocessed
  /// stream backs up without bound and per-arrival sojourn grows secularly.
  kBlock,
  /// Admission control: when the pressure signal fires, the newest batch is
  /// dropped *before* ingestion — it never touches the window, grid, or
  /// imputer, so the engine state equals a run over the admitted
  /// subsequence. Shed arrivals emit no outcome.
  kShedNewest,
  /// Load shedding at the refinement boundary: arrivals are always
  /// ingested (window/grid/imputer state stays complete), but when the
  /// handoff queue is full the longest-waiting queued batch forfeits its
  /// refinement — its candidate pairs are counted shed, its deferred
  /// result-set evictions still replay, and its outcomes emit with
  /// disposition kShed.
  kShedOldest,
  /// Graceful degradation: everything is admitted (the queue bound is
  /// waived under pressure so admission never blocks), but pressured
  /// batches refine with signature-bound-only verdicts
  /// (EvaluatePairBounds): cheap upper bounds can still prune, and pairs
  /// the bounds cannot decide are recorded as PairOutcome::kDeferred —
  /// explicitly unresolved, never silently refuted.
  kDegrade,
};

const char* OverloadPolicyName(OverloadPolicy policy);

/// Parses "block" / "shed_newest" / "shed_oldest" / "degrade" (the
/// TERIDS_BENCH_OVERLOAD spellings). Returns false — leaving `*policy`
/// untouched — for anything else.
bool ParseOverloadPolicy(const std::string& name, OverloadPolicy* policy);

/// Scheduler-backlog multiple of the handoff-queue capacity above which the
/// pressure signal fires even when the queue itself still has room (the
/// consumer's fan-outs are saturating the shared workers).
inline constexpr int64_t kSchedBacklogPressureFactor = 4;

/// Admission-control accounting of one stream run (DESIGN.md §13). Writer
/// discipline under the async pipeline: the admission fields below are
/// written by the producer stage only, the refinement fields by the
/// consumer stage only, and readers consume the struct after the stream has
/// quiesced (ingest join / chain latch), so no field ever has two
/// concurrent writers.
struct ShedStats {
  // --- Admission (producer stage) ------------------------------------------
  /// Every arrival the producer pulled from the driver, whatever its fate.
  int64_t offered_arrivals = 0;
  /// Arrivals ingested into the engine (includes degraded ones; shed_oldest
  /// arrivals are admitted first and shed later, so admitted + shed can
  /// exceed offered under that policy).
  int64_t admitted_arrivals = 0;
  /// Arrivals that emitted no outcome: dropped pre-ingest (shed_newest) or
  /// stripped of refinement (shed_oldest; counted by the consumer stage).
  int64_t shed_arrivals = 0;
  int64_t shed_batches = 0;
  /// Arrivals admitted under pressure and refined with bound-only verdicts.
  int64_t degraded_arrivals = 0;
  int64_t degraded_batches = 0;
  /// Times the pressure signal fired at an admission decision.
  int64_t pressure_events = 0;
  /// Producer wall time spent blocked in the bounded Push — the
  /// backpressure cost the block policy pays instead of shedding.
  double admit_block_seconds = 0.0;

  // --- Refinement (consumer stage) -----------------------------------------
  /// Candidate pairs whose evaluation was skipped entirely (shed_oldest).
  int64_t shed_pairs = 0;
  /// Degrade-mode pairs the cheap bounds could not decide, recorded as
  /// PairOutcome::kDeferred (never as a refute).
  int64_t deferred_pairs = 0;

  /// Work dropped or deferred, attributed to the pipeline phase that gave
  /// it up: kIngest counts arrivals shed at admission, kRefine counts
  /// pairs shed or deferred at refinement. Same writer split as above
  /// (distinct slots, never two writers on one slot).
  int64_t shed_by_phase[kNumExecPhases] = {0, 0, 0, 0};

  /// Whether any overload action fired (false for a whole run under block,
  /// or under any policy that never saw pressure — the policy-inert regime
  /// the equivalence sweep pins to the oracle).
  bool any() const {
    return shed_arrivals > 0 || degraded_arrivals > 0 || shed_pairs > 0 ||
           deferred_pairs > 0 || pressure_events > 0;
  }

  /// Fraction of offered arrivals that were shed.
  double ShedRate() const {
    return offered_arrivals == 0
               ? 0.0
               : static_cast<double>(shed_arrivals) /
                     static_cast<double>(offered_arrivals);
  }

  void Add(const ShedStats& other);
  /// One JSON object (for CostBreakdown-style bench artifacts).
  std::string ToJson() const;
};

}  // namespace terids

#endif  // TERIDS_STREAM_OVERLOAD_H_
