#ifndef TERIDS_TEXT_TOKEN_SET_H_
#define TERIDS_TEXT_TOKEN_SET_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "text/token_dict.h"

namespace terids {

/// A set of interned tokens: a sorted, deduplicated run of token ids.
///
/// This is the unit the similarity function of Definition 5 operates on:
/// sim(r[A_j], r'[A_j]) = |T ∩ T'| / |T ∪ T'| (Jaccard). Intersections run
/// through the shared span kernels of text/similarity_kernels.h (linear
/// merge for balanced sizes, galloping for skewed ones); the refinement hot
/// path additionally reads these sets through the flat TokenArena views.
///
/// A TokenSet either owns its run (FromTokens — the vector lives inside the
/// set) or is a non-owning view over externally owned memory (View — the
/// lazy snapshot backend serves domain token sets directly from the mmap'd
/// token columns this way, DESIGN.md §8). The two are indistinguishable
/// through the read interface; copying a view copies the pointer, not the
/// tokens, so a view must not outlive the memory it was built over (for
/// snapshot views, the MmapSnapshotStorage that maps the file).
class TokenSet {
 public:
  TokenSet() = default;

  TokenSet(const TokenSet& other) { Assign(other); }
  TokenSet& operator=(const TokenSet& other) {
    if (this != &other) Assign(other);
    return *this;
  }
  TokenSet(TokenSet&& other) noexcept { Adopt(std::move(other)); }
  TokenSet& operator=(TokenSet&& other) noexcept {
    if (this != &other) Adopt(std::move(other));
    return *this;
  }

  /// Builds an owning set from an arbitrary (possibly unsorted, duplicated)
  /// token list.
  static TokenSet FromTokens(std::vector<Token> tokens);

  /// Non-owning view over `n` tokens at `data`, which must already be
  /// sorted and deduplicated (the normalized form FromTokens produces) and
  /// must outlive every copy of the returned set.
  static TokenSet View(const Token* data, size_t n);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Token* data() const { return data_; }
  const Token* begin() const { return data_; }
  const Token* end() const { return data_ + size_; }
  Token operator[](size_t i) const { return data_[i]; }

  /// Whether this set owns its run (false for View-built sets).
  bool owns() const { return !view_; }

  /// Membership test (binary search).
  [[nodiscard]] bool Contains(Token t) const;

  /// |this ∩ other| (merge or gallop; identical counts either way).
  [[nodiscard]] size_t IntersectionSize(const TokenSet& other) const;

  bool operator==(const TokenSet& other) const;

 private:
  void Assign(const TokenSet& other);
  void Adopt(TokenSet&& other);

  // data_/size_ are the one read path; owned_ only backs them when owns().
  std::vector<Token> owned_;
  const Token* data_ = nullptr;
  size_t size_ = 0;
  bool view_ = false;
};

/// The shared empty token set: the value of every missing attribute.
/// Namespace-level (not a function-local static) so hot functions comparing
/// against it pay no magic-static guard. Dynamically initialized in
/// token_set.cc — read it at runtime only, never from another translation
/// unit's static initializer (C++17 cannot constant-initialize a vector, so
/// cross-TU initialization order is unspecified).
extern const TokenSet kEmptyTokenSet;

/// Jaccard similarity in [0,1]. Two empty sets are defined as similarity 1
/// (identical absence of content), matching the convention the evaluation
/// needs for short attributes such as `year`.
[[nodiscard]] double JaccardSimilarity(const TokenSet& a, const TokenSet& b);

/// Jaccard distance = 1 - similarity. This is a metric (satisfies the
/// triangle inequality), which Lemma 4.2 and the pivot embedding rely on.
[[nodiscard]] double JaccardDistance(const TokenSet& a, const TokenSet& b);

}  // namespace terids

#endif  // TERIDS_TEXT_TOKEN_SET_H_
