#ifndef TERIDS_INDEX_CDD_INDEX_H_
#define TERIDS_INDEX_CDD_INDEX_H_

#include <vector>

#include "index/artree.h"
#include "index/dr_index.h"
#include "repo/repository.h"
#include "rules/rule.h"

namespace terids {

/// The CDD-index I_j (Section 5.1, Figure 2): a lattice of determinant
/// attribute sets, each lattice node holding an aR-tree over the constraint
/// geometry of its rules.
///
/// Geometry encoding per determinant dimension x (as in the paper):
///  * constant constraint v  -> the point coord dist(v, piv_1[A_x]);
///  * interval constraint    -> the marker [-1,-1];
///  * attribute not in X     -> the marker [-2,-2].
/// Constant constraints additionally carry their auxiliary-pivot distances
/// as leaf aggregates; the dependent interval A_j.I is aggregated on every
/// node so the 3-way join can derive coarse candidate bands early.
class CddIndex {
 public:
  CddIndex(const Repository* repo, const std::vector<CddRule>* rules);

  /// Builds the lattice and the per-group aR-trees.
  void Build();

  /// Adds a rule appended to the rule vector after Build() (dynamic rule
  /// maintenance, Section 5.5).
  void InsertRule(int rule_idx);
  /// Removes a rule from the index. Returns false if absent.
  bool RemoveRule(int rule_idx);

  /// Indices of rules with dependent attribute `dependent` that are
  /// applicable to the probe record (determinants all non-missing) and whose
  /// constraint geometry is compatible with the probe coordinates: constant
  /// constraints must match the probe value (verified exactly against the
  /// domain). Interval constraints are not filtered here — they constrain
  /// the (r, sample) pair, which the DR-index side evaluates.
  std::vector<int> SelectRules(const Record& r, const ProbeCoords& pc,
                               int dependent) const;

  /// Union bound of the dependent intervals of all rules selected for this
  /// group probe; used by the engine to size the coarse candidate band of
  /// the index join before individual rules are examined.
  Interval CoarseDependentBound(const Record& r, const ProbeCoords& pc,
                                int dependent) const;

  size_t num_groups() const { return groups_.size(); }
  uint64_t last_query_leaves_visited() const { return last_leaves_; }

 private:
  struct Group {
    int dependent = -1;
    uint32_t det_mask = 0;
    int level = 0;  // popcount(det_mask), the lattice level.
    ArTree tree;
    Group(int dims) : tree(dims) {}
  };

  ArTreeEntry MakeEntry(int rule_idx) const;
  int FindOrAddGroup(int dependent, uint32_t det_mask);
  void ProbeGroup(const Group& group, const Record& r, const ProbeCoords& pc,
                  const std::function<void(const CddRule&, int)>& on_rule) const;

  const Repository* repo_;
  const std::vector<CddRule>* rules_;
  std::vector<Group> groups_;
  mutable uint64_t last_leaves_ = 0;
};

}  // namespace terids

#endif  // TERIDS_INDEX_CDD_INDEX_H_
