#ifndef TERIDS_UTIL_THREAD_ANNOTATIONS_H_
#define TERIDS_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (DESIGN.md §12).
///
/// Every annotation in the codebase goes through these TERIDS_* macros —
/// never through a raw `__attribute__((...))` (scripts/check_format.sh
/// enforces that) — so the locking model reads uniformly and compilers
/// without the analysis (gcc) see clean no-ops. Clang legs compile with
/// `-Wthread-safety -Werror=thread-safety`, turning a missing or violated
/// annotation into a build failure: an unlocked read of a TERIDS_GUARDED_BY
/// member, a call to a TERIDS_REQUIRES method without its mutex, or a
/// scoped lock that escapes its capability all stop the build instead of
/// waiting for TSan to catch an interleaving at runtime.
///
/// The vocabulary mirrors the standard capability model
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
///
///   TERIDS_CAPABILITY("mutex")  - class is a lockable capability
///   TERIDS_SCOPED_CAPABILITY    - RAII class acquiring at construction
///   TERIDS_GUARDED_BY(mu)       - member readable/writable only under mu
///   TERIDS_PT_GUARDED_BY(mu)    - pointee guarded by mu (pointer itself not)
///   TERIDS_REQUIRES(mu)         - caller must hold mu (not acquired here)
///   TERIDS_ACQUIRE(mu...)       - function acquires mu and does not release
///   TERIDS_RELEASE(mu...)       - function releases mu
///   TERIDS_EXCLUDES(mu)         - caller must NOT hold mu (deadlock guard)
///   TERIDS_NO_THREAD_SAFETY_ANALYSIS - opt a definition out (last resort;
///       used only where the analysis cannot follow a correct pattern, and
///       always with a comment saying why)

#if defined(__clang__)
#define TERIDS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define TERIDS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

#define TERIDS_CAPABILITY(x) TERIDS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define TERIDS_SCOPED_CAPABILITY TERIDS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define TERIDS_GUARDED_BY(x) TERIDS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define TERIDS_PT_GUARDED_BY(x) TERIDS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define TERIDS_ACQUIRED_BEFORE(...) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define TERIDS_ACQUIRED_AFTER(...) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define TERIDS_REQUIRES(...) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define TERIDS_ACQUIRE(...) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define TERIDS_RELEASE(...) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define TERIDS_TRY_ACQUIRE(...) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TERIDS_EXCLUDES(...) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define TERIDS_ASSERT_CAPABILITY(x) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define TERIDS_RETURN_CAPABILITY(x) \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define TERIDS_NO_THREAD_SAFETY_ANALYSIS \
  TERIDS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // TERIDS_UTIL_THREAD_ANNOTATIONS_H_
