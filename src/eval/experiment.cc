#include "eval/experiment.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <unordered_set>

#include "er/similarity.h"
#include "er/topic.h"
#include "pivot/pivot_selector.h"
#include "repo/snapshot_writer.h"
#include "rules/rule_miner.h"
#include "stream/stream_driver.h"
#include "util/stopwatch.h"

namespace terids {

Experiment::Experiment(const DatasetProfile& profile,
                       const ExperimentParams& params)
    : profile_(profile), params_(params) {
  DataGenerator::Options gen;
  gen.scale = params.scale;
  gen.repo_ratio = params.eta;
  gen.seed = params.seed;
  dataset_ = DataGenerator::Generate(profile, gen);

  incomplete_a_ = DataGenerator::WithMissing(dataset_.source_a, params.xi,
                                             params.m, params.seed);
  incomplete_b_ = DataGenerator::WithMissing(dataset_.source_b, params.xi,
                                             params.m, params.seed + 1);

  // Offline phase on a pristine repository: pivot selection, rule mining.
  Repository pristine(dataset_.schema.get(), dataset_.dict.get());
  for (const Record& r : dataset_.repo_records) {
    TERIDS_CHECK(pristine.AddSample(r).ok());
  }
  {
    Stopwatch watch;
    PivotSelector selector(&pristine, PivotOptions{});
    pivots_ = selector.SelectAll();
    pivot_seconds_ = watch.ElapsedSeconds();
  }
  pristine.AttachPivots(pivots_);
  {
    Stopwatch watch;
    RuleMiner miner(&pristine, MinerOptions{});
    cdds_ = miner.MineCdds();
    mining_seconds_ = watch.ElapsedSeconds();
    dds_ = miner.MineDds();
    editing_ = miner.MineEditingRules();
  }
  ComputeEffectiveTruth();
}

double Experiment::gamma() const {
  return params_.rho * dataset_.schema->num_attributes();
}

size_t Experiment::ArrivalCap() const {
  const size_t total = dataset_.source_a.size() + dataset_.source_b.size();
  if (params_.max_arrivals <= 0) {
    return total;
  }
  return std::min(total, static_cast<size_t>(params_.max_arrivals));
}

void Experiment::ComputeEffectiveTruth() {
  // Replay the *complete* sources through the same interleaving and window
  // semantics the pipelines use; a pair belongs to the effective truth iff
  // the two records are co-windowed at the later one's arrival, at least
  // one side is topical, and their complete similarity exceeds gamma. This
  // is exactly the paper's Equation-(2)-based ground truth (Section 6.1):
  // what a perfect imputer + exact matcher would report. F-scores therefore
  // measure the distortion introduced by imputation and pruning.
  TopicQuery topic(*dataset_.dict,
                   std::vector<std::string>(
                       dataset_.topic_keywords.begin(),
                       dataset_.topic_keywords.begin() +
                           std::min<size_t>(params_.topics_in_query,
                                            dataset_.topic_keywords.size())));

  std::unordered_map<int64_t, const Record*> by_rid;
  for (const Record& r : dataset_.source_a) by_rid[r.rid] = &r;
  for (const Record& r : dataset_.source_b) by_rid[r.rid] = &r;

  StreamDriver driver({dataset_.source_a, dataset_.source_b});
  const size_t cap = ArrivalCap();
  std::vector<std::deque<int64_t>> windows(2);
  const double g = gamma();
  effective_truth_.clear();

  auto is_topical = [&](const Record& r) {
    for (const AttrValue& v : r.values) {
      if (!v.missing && topic.Matches(v.tokens)) {
        return true;
      }
    }
    return false;
  };

  for (size_t i = 0; i < cap && driver.HasNext(); ++i) {
    const Record arrived = driver.Next();
    const int other = 1 - arrived.stream_id;
    for (int64_t rid : windows[other]) {
      const Record& partner = *by_rid.at(rid);
      if (!is_topical(arrived) && !is_topical(partner)) {
        continue;
      }
      if (RecordSimilarity(arrived, partner) > g) {
        GroundTruthPair pair;
        pair.rid_a = std::min(arrived.rid, rid);
        pair.rid_b = std::max(arrived.rid, rid);
        effective_truth_.push_back(pair);
      }
    }
    windows[arrived.stream_id].push_back(arrived.rid);
    if (static_cast<int>(windows[arrived.stream_id].size()) > params_.w) {
      windows[arrived.stream_id].pop_front();
    }
  }
}

std::unique_ptr<Repository> Experiment::BuildRepository() const {
  return BuildRepository(params_.repo_backend);
}

std::unique_ptr<Repository> Experiment::BuildRepository(
    RepoBackend backend) const {
  return BuildRepository(backend, params_.snapshot_decode);
}

std::unique_ptr<Repository> Experiment::BuildRepository(
    RepoBackend backend, SnapshotDecode decode) const {
  auto repo =
      std::make_unique<Repository>(dataset_.schema.get(), dataset_.dict.get());
  for (const Record& r : dataset_.repo_records) {
    TERIDS_CHECK(repo->AddSample(r).ok());
  }
  repo->AttachPivots(pivots_);
  if (backend == RepoBackend::kInMemory) {
    return repo;
  }
  // Snapshot backend: serialize the in-memory build once, reopen it
  // read-only via mmap, and discard both the oracle and the file (the
  // mapping keeps the pages alive on POSIX).
  const std::string path = UniqueSnapshotPath("terids-snap");
  TERIDS_CHECK(WriteRepositorySnapshot(*repo, path).ok());
  Result<std::unique_ptr<Repository>> reopened = Repository::OpenSnapshot(
      dataset_.schema.get(), dataset_.dict.get(), path, decode);
  std::remove(path.c_str());
  TERIDS_CHECK(reopened.ok());
  return std::move(reopened).value();
}

EngineConfig Experiment::MakeConfig() const {
  EngineConfig config;
  config.keywords.assign(
      dataset_.topic_keywords.begin(),
      dataset_.topic_keywords.begin() +
          std::min<size_t>(params_.topics_in_query,
                           dataset_.topic_keywords.size()));
  config.gamma = gamma();
  config.alpha = params_.alpha;
  config.window_size = params_.w;
  config.max_instances = params_.max_instances;
  config.max_candidates_per_attr = params_.max_candidates_per_attr;
  config.cell_width = params_.cell_width;
  config.batch_size = params_.batch_size;
  config.refine_threads = params_.refine_threads;
  config.grid_shards = params_.grid_shards;
  config.ingest_queue_depth = params_.ingest_queue_depth;
  config.signature_filter = params_.signature_filter;
  config.sig_width = params_.sig_width;
  config.maintain_shards = params_.maintain_shards;
  config.sched_threads = params_.sched_threads;
  config.repo_backend = params_.repo_backend;
  config.snapshot_decode = params_.snapshot_decode;
  config.overload_policy = params_.overload_policy;
  return config;
}

PipelineRun Experiment::Run(PipelineKind kind) {
  return Run(kind, params_.batch_size, params_.refine_threads);
}

PipelineRun Experiment::Run(PipelineKind kind, int batch_size,
                            int refine_threads) {
  return Run(kind, batch_size, refine_threads, params_.grid_shards,
             params_.ingest_queue_depth);
}

PipelineRun Experiment::Run(PipelineKind kind, int batch_size,
                            int refine_threads, int grid_shards,
                            int ingest_queue_depth) {
  EngineConfig config = MakeConfig();
  config.batch_size = batch_size;
  config.refine_threads = refine_threads;
  config.grid_shards = grid_shards;
  config.ingest_queue_depth = ingest_queue_depth;
  return Run(kind, config);
}

PipelineRun Experiment::Run(PipelineKind kind, const EngineConfig& config) {
  TERIDS_CHECK(config.batch_size >= 1);
  std::unique_ptr<Repository> repo = BuildRepository();
  std::unique_ptr<ErPipeline> pipeline = MakePipeline(
      kind, repo.get(), config, /*num_streams=*/2, cdds_, dds_, editing_);
  TERIDS_CHECK(pipeline != nullptr);

  PipelineRun run;
  run.name = pipeline->name();

  StreamDriver driver({incomplete_a_, incomplete_b_});
  const size_t cap = ArrivalCap();
  std::vector<MatchPair> all_matches;
  Stopwatch total_watch;
  // ProcessStream replays every arrival through the pipeline's streaming
  // operator: the synchronous NextBatch/ProcessBatch loop by default, the
  // async double-buffered ingest loop when ingest_queue_depth > 0.
  run.arrivals = pipeline->ProcessStream(
      &driver, cap, static_cast<size_t>(config.batch_size),
      [&](ArrivalOutcome&& outcome) {
        run.total_cost.Add(outcome.cost);
        all_matches.insert(all_matches.end(), outcome.new_matches.begin(),
                           outcome.new_matches.end());
      });
  run.total_seconds = total_watch.ElapsedSeconds();
  run.avg_arrival_seconds =
      run.arrivals > 0 ? run.total_seconds / static_cast<double>(run.arrivals)
                       : 0.0;
  run.stats = pipeline->cumulative_stats();
  run.accuracy = ComputeFScore(all_matches, effective_truth_);
  run.final_result_size = pipeline->results().size();
  if (const LatencyStats* latencies = pipeline->arrival_latencies()) {
    run.arrival_latency = *latencies;
  }
  run.sched_item_latency = pipeline->ConsumeSchedulerLatencies();
  if (const ShedStats* shed = pipeline->shed_stats()) {
    run.shed = *shed;
  }
  return run;
}

}  // namespace terids
