// Storage-backend contract tests (DESIGN.md §8): the mmap snapshot backend
// must be bit-identical to the in-memory oracle on every read — base image
// and dynamic overlay alike — and must refuse corrupt or mismatched
// snapshot files with a precise error instead of serving garbage.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "pivot/pivot_selector.h"
#include "repo/mmap_snapshot_storage.h"
#include "repo/repository.h"
#include "repo/snapshot_format.h"
#include "repo/snapshot_writer.h"
#include "test_util.h"
#include "util/rng.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Every read the RepoStorage interface offers, compared across backends.
void ExpectBitIdenticalReads(const Repository& oracle,
                             const Repository& snapshot) {
  ASSERT_EQ(oracle.num_attributes(), snapshot.num_attributes());
  ASSERT_EQ(oracle.num_samples(), snapshot.num_samples());
  ASSERT_EQ(oracle.has_pivots(), snapshot.has_pivots());
  const int d = oracle.num_attributes();

  for (int x = 0; x < d; ++x) {
    ASSERT_EQ(oracle.domain_size(x), snapshot.domain_size(x)) << "attr " << x;
    for (ValueId v = 0; v < oracle.domain_size(x); ++v) {
      EXPECT_TRUE(oracle.value_tokens(x, v) == snapshot.value_tokens(x, v));
      EXPECT_EQ(oracle.value_text(x, v), snapshot.value_text(x, v));
      EXPECT_EQ(oracle.value_frequency(x, v), snapshot.value_frequency(x, v));
      EXPECT_EQ(snapshot.FindValue(x, oracle.value_tokens(x, v)), v);
    }
    ASSERT_EQ(oracle.num_pivots(x), snapshot.num_pivots(x));
    for (int a = 0; a < oracle.num_pivots(x); ++a) {
      EXPECT_TRUE(oracle.pivot_tokens(x, a) == snapshot.pivot_tokens(x, a));
      for (ValueId v = 0; v < oracle.domain_size(x); ++v) {
        EXPECT_EQ(oracle.pivot_distance(x, a, v),
                  snapshot.pivot_distance(x, a, v));
      }
    }
  }

  for (size_t i = 0; i < oracle.num_samples(); ++i) {
    const Record& a = oracle.sample(i);
    const Record& b = snapshot.sample(i);
    EXPECT_EQ(a.rid, b.rid);
    EXPECT_EQ(a.stream_id, b.stream_id);
    EXPECT_EQ(a.timestamp, b.timestamp);
    ASSERT_EQ(a.values.size(), b.values.size());
    for (int x = 0; x < d; ++x) {
      EXPECT_EQ(a.values[x].missing, b.values[x].missing);
      EXPECT_EQ(a.values[x].text, b.values[x].text);
      EXPECT_TRUE(a.values[x].tokens == b.values[x].tokens);
      EXPECT_EQ(oracle.sample_value_id(i, x), snapshot.sample_value_id(i, x));
    }
  }

  // Range scans must agree element-for-element *in order* — the scan order
  // feeds deterministic candidate accumulation.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int x = static_cast<int>(rng.NextBounded(d));
    double lo = rng.NextDouble();
    double hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const Interval band = Interval::Of(lo, hi);
    EXPECT_EQ(oracle.ValuesInCoordRange(x, band),
              snapshot.ValuesInCoordRange(x, band));
  }
  // Full-domain and empty-interval scans.
  for (int x = 0; x < d; ++x) {
    EXPECT_EQ(oracle.ValuesInCoordRange(x, Interval::Of(0.0, 1.0)),
              snapshot.ValuesInCoordRange(x, Interval::Of(0.0, 1.0)));
    EXPECT_TRUE(snapshot.ValuesInCoordRange(x, Interval::Empty()).empty());
  }
}

/// A generated dataset big enough to exercise multi-token values, shared
/// dictionaries, and non-trivial pivot geometry.
struct GeneratedWorld {
  GeneratedDataset dataset;
  std::unique_ptr<Repository> repo;
};

GeneratedWorld MakeGeneratedWorld() {
  GeneratedWorld world;
  DataGenerator::Options opts;
  opts.scale = 0.02;
  world.dataset = DataGenerator::Generate(CitationsProfile(), opts);
  world.repo = std::make_unique<Repository>(world.dataset.schema.get(),
                                            world.dataset.dict.get());
  for (const Record& r : world.dataset.repo_records) {
    TERIDS_CHECK(world.repo->AddSample(r).ok());
  }
  PivotSelector selector(world.repo.get(), PivotOptions{});
  world.repo->AttachPivots(selector.SelectAll());
  return world;
}

TEST(SnapshotStorageTest, RoundTripReadsAreBitIdentical) {
  GeneratedWorld world = MakeGeneratedWorld();
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(WriteRepositorySnapshot(*world.repo, path).ok());

  Result<std::unique_ptr<Repository>> reopened = Repository::OpenSnapshot(
      world.dataset.schema.get(), world.dataset.dict.get(), path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_STREQ((*reopened)->backend_name(), "mmap");
  EXPECT_STREQ(world.repo->backend_name(), "memory");
  ExpectBitIdenticalReads(*world.repo, **reopened);
  std::remove(path.c_str());
}

TEST(SnapshotStorageTest, MappingOutlivesFileRemoval) {
  ToyWorld world = MakeHealthWorld();
  const std::string path = TempPath("unlinked.snap");
  ASSERT_TRUE(WriteRepositorySnapshot(*world.repo, path).ok());
  Result<std::unique_ptr<Repository>> reopened = Repository::OpenSnapshot(
      world.schema.get(), world.dict.get(), path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Experiment::BuildRepository removes the temp file immediately after
  // opening; the mapping must keep every page readable.
  std::remove(path.c_str());
  ExpectBitIdenticalReads(*world.repo, **reopened);
}

TEST(SnapshotStorageTest, WriterRequiresPivots) {
  ToyWorld world = MakeHealthWorld();
  Repository no_pivots(world.schema.get(), world.dict.get());
  const Status status =
      WriteRepositorySnapshot(no_pivots, TempPath("nopivots.snap"));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotStorageTest, MissingFileIsNotFound) {
  ToyWorld world = MakeHealthWorld();
  Result<std::unique_ptr<Repository>> r = Repository::OpenSnapshot(
      world.schema.get(), world.dict.get(), TempPath("does-not-exist.snap"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MakeHealthWorld();
    path_ = TempPath("corruption.snap");
    ASSERT_TRUE(WriteRepositorySnapshot(*world_.repo, path_).ok());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), sizeof(snapshot::Header));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  Status Reopen(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    Result<std::unique_ptr<Repository>> r = Repository::OpenSnapshot(
        world_.schema.get(), world_.dict.get(), path_);
    return r.ok() ? Status::Ok() : r.status();
  }

  ToyWorld world_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruptionTest, FlippedPayloadByteFailsChecksum) {
  std::string corrupt = bytes_;
  corrupt[sizeof(snapshot::Header) + 11] ^= 0x40;
  const Status status = Reopen(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, TruncationIsRejected) {
  const Status status = Reopen(bytes_.substr(0, bytes_.size() - 9));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotCorruptionTest, BadMagicIsRejected) {
  std::string corrupt = bytes_;
  corrupt[0] = 'X';
  const Status status = Reopen(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, FutureVersionIsRejected) {
  std::string corrupt = bytes_;
  corrupt[8] = 99;  // Header.version low byte.
  const Status status = Reopen(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, SchemaArityMismatchIsRejected) {
  Schema narrow(std::vector<std::string>{"a", "b"});
  Result<std::unique_ptr<Repository>> r =
      Repository::OpenSnapshot(&narrow, world_.dict.get(), path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotCorruptionTest, ForeignDictionaryIsRejected) {
  TokenDict tiny;  // Holds none of the snapshot's interned ids.
  Result<std::unique_ptr<Repository>> r =
      Repository::OpenSnapshot(world_.schema.get(), &tiny, path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// v2 per-section integrity + lazy first-touch decode (DESIGN.md §8).
// ---------------------------------------------------------------------------

/// Byte-surgery fixture over a v2 snapshot of the health world. The TOC
/// starts right after the header: a u64 section count, then SectionEntry
/// records. Helpers patch entries and re-stamp the checksums the open path
/// verifies, so each test corrupts exactly one integrity layer.
class SnapshotV2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MakeHealthWorld();
    path_ = TempPath("v2-lazy.snap");
    ASSERT_TRUE(WriteRepositorySnapshot(*world_.repo, path_).ok());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), sizeof(snapshot::Header));
    ASSERT_EQ(ReadU64(bytes_, 8) & 0xffffffffu, snapshot::kVersion);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  static uint64_t ReadU64(const std::string& bytes, size_t at) {
    uint64_t v = 0;
    std::memcpy(&v, bytes.data() + at, sizeof(v));
    return v;
  }

  static void WriteU64(std::string* bytes, size_t at, uint64_t v) {
    std::memcpy(&(*bytes)[at], &v, sizeof(v));
  }

  /// Byte offset (in the file) of TOC entry `i`.
  static size_t EntryAt(size_t i) {
    return sizeof(snapshot::Header) + sizeof(uint64_t) +
           i * sizeof(snapshot::SectionEntry);
  }

  /// Re-stamps header.payload_checksum after a deliberate TOC edit (in v2
  /// it covers exactly the TOC bytes), so the edit reaches the per-entry
  /// validation instead of tripping the TOC checksum first.
  static void RestampTocChecksum(std::string* bytes) {
    const uint64_t count = ReadU64(*bytes, sizeof(snapshot::Header));
    const size_t toc_bytes =
        sizeof(uint64_t) + count * sizeof(snapshot::SectionEntry);
    WriteU64(bytes, offsetof(snapshot::Header, payload_checksum),
             snapshot::Checksum(bytes->data() + sizeof(snapshot::Header),
                                toc_bytes));
  }

  void Rewrite(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Result<std::unique_ptr<Repository>> Open(SnapshotDecode decode) {
    return Repository::OpenSnapshot(world_.schema.get(), world_.dict.get(),
                                    path_, decode);
  }

  /// The corruption shared by the eager/lazy detection pair: one flipped
  /// byte inside the body of the first domain section (attribute 0).
  std::string CorruptFirstDomainSection() {
    std::string corrupt = bytes_;
    const uint64_t offset =
        ReadU64(corrupt, EntryAt(0) + 2 * sizeof(uint64_t));
    corrupt[sizeof(snapshot::Header) + offset + 5] ^= 0x20;
    return corrupt;
  }

  ToyWorld world_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotV2Test, EagerAndLazyServeIdenticalBytes) {
  for (SnapshotDecode decode :
       {SnapshotDecode::kEager, SnapshotDecode::kLazy}) {
    Result<std::unique_ptr<Repository>> reopened = Open(decode);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ExpectBitIdenticalReads(*world_.repo, **reopened);
  }
}

TEST_F(SnapshotV2Test, CorruptSectionBodyFailsEagerOpen) {
  Rewrite(CorruptFirstDomainSection());
  Result<std::unique_ptr<Repository>> r = Open(SnapshotDecode::kEager);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos)
      << r.status().ToString();
}

TEST_F(SnapshotV2Test, CorruptSectionBodyDiesOnFirstLazyTouch) {
  Rewrite(CorruptFirstDomainSection());
  // A lazy open validates only the header + TOC, so it must succeed...
  Result<std::unique_ptr<Repository>> r = Open(SnapshotDecode::kLazy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ...and TOC-aux metadata is served without decoding the bad section...
  EXPECT_EQ((*r)->domain_size(0), world_.repo->domain_size(0));
  EXPECT_EQ((*r)->num_samples(), world_.repo->num_samples());
  // ...but the first read into the section must die on its checksum, not
  // serve corrupt bytes.
  EXPECT_DEATH((*r)->value_tokens(0, 0), "checksum");
}

TEST_F(SnapshotV2Test, TocOffsetOutOfBoundsRejectedAtOpen) {
  std::string corrupt = bytes_;
  WriteU64(&corrupt, EntryAt(0) + 2 * sizeof(uint64_t), uint64_t{1} << 40);
  RestampTocChecksum(&corrupt);
  Rewrite(corrupt);
  for (SnapshotDecode decode :
       {SnapshotDecode::kEager, SnapshotDecode::kLazy}) {
    Result<std::unique_ptr<Repository>> r = Open(decode);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("out of bounds"), std::string::npos)
        << r.status().ToString();
  }
}

TEST_F(SnapshotV2Test, TruncationMidSectionRejectedAtOpen) {
  // Cut into the last section's body while keeping header.payload_bytes
  // consistent with the shortened file, so only the TOC bounds validation
  // stands between a lazy open and a wild read later.
  std::string corrupt = bytes_.substr(0, bytes_.size() - 16);
  WriteU64(&corrupt, offsetof(snapshot::Header, payload_bytes),
           corrupt.size() - sizeof(snapshot::Header));
  Rewrite(corrupt);
  Result<std::unique_ptr<Repository>> r = Open(SnapshotDecode::kLazy);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of bounds"), std::string::npos)
      << r.status().ToString();
}

TEST_F(SnapshotV2Test, ConcurrentFirstTouchServesConsistentBytes) {
  // Two threads race every lazily-decoded surface of a cold snapshot: the
  // once_flag-guarded decodes must produce one consistent image (this is
  // the TSan target for the first-touch path; see ci.yml).
  Result<std::unique_ptr<Repository>> r = Open(SnapshotDecode::kLazy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Repository& snap = **r;
  const int d = snap.num_attributes();
  auto touch = [&]() {
    uint64_t sum = 0;
    for (int x = 0; x < d; ++x) {
      sum += snap.value_tokens(x, 0).size();
      sum += snap.FindValue(x, world_.repo->value_tokens(x, 0));
      sum += static_cast<uint64_t>(snap.value_frequency(x, 0));
      sum += snap.value_text(x, 0).size();
      for (int a = 0; a < snap.num_pivots(x); ++a) {
        sum += static_cast<uint64_t>(1e6 * snap.pivot_distance(x, a, 0));
        sum += snap.pivot_tokens(x, a).size();
      }
      sum += snap.ValuesInCoordRange(x, Interval::Of(0.0, 1.0)).size();
    }
    sum += static_cast<uint64_t>(snap.sample(0).rid);
    return sum;
  };
  uint64_t sums[2] = {0, 0};
  std::thread t0([&] { sums[0] = touch(); });
  std::thread t1([&] { sums[1] = touch(); });
  t0.join();
  t1.join();
  EXPECT_EQ(sums[0], sums[1]);
  ExpectBitIdenticalReads(*world_.repo, snap);
}

// ---------------------------------------------------------------------------
// v1 backward compatibility: old files stay readable, always eagerly.
// ---------------------------------------------------------------------------

TEST(SnapshotV1CompatTest, V1FileRoundTripsBitIdentically) {
  GeneratedWorld world = MakeGeneratedWorld();
  const std::string path = TempPath("v1compat.snap");
  ASSERT_TRUE(
      WriteRepositorySnapshot(*world.repo, path, snapshot::kVersionEager)
          .ok());
  {
    std::ifstream in(path, std::ios::binary);
    uint32_t version = 0;
    in.seekg(8);
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    ASSERT_EQ(version, snapshot::kVersionEager);
  }
  // Lazy decode is requested, but v1 files always materialize at open —
  // the request must not break them.
  Result<std::unique_ptr<Repository>> reopened =
      Repository::OpenSnapshot(world.dataset.schema.get(),
                               world.dataset.dict.get(), path,
                               SnapshotDecode::kLazy);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectBitIdenticalReads(*world.repo, **reopened);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Atomic write: a snapshot path either holds a complete snapshot or
// nothing; temp files never survive.
// ---------------------------------------------------------------------------

int CountTempSiblings(const std::string& target) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(target).parent_path();
  const std::string prefix = fs::path(target).filename().string() + ".tmp-";
  int n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

TEST(SnapshotWriterAtomicityTest, SuccessLeavesNoTempSibling) {
  ToyWorld world = MakeHealthWorld();
  const std::string path = TempPath("atomic-ok.snap");
  ASSERT_TRUE(WriteRepositorySnapshot(*world.repo, path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(CountTempSiblings(path), 0);
  std::remove(path.c_str());
}

TEST(SnapshotWriterAtomicityTest, FailedRenameUnlinksTemp) {
  ToyWorld world = MakeHealthWorld();
  // The target is an existing directory, so the final rename must fail
  // after the temp file was fully written — the error path has to unlink
  // it and leave the directory untouched.
  const std::string dir = TempPath("atomic-dir.snap");
  std::filesystem::create_directory(dir);
  const Status status = WriteRepositorySnapshot(*world.repo, dir);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  EXPECT_EQ(CountTempSiblings(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotWriterAtomicityTest, UnwritableTargetFailsCleanly) {
  ToyWorld world = MakeHealthWorld();
  const Status status = WriteRepositorySnapshot(
      *world.repo, TempPath("no-such-dir") + "/orphan.snap");
  EXPECT_FALSE(status.ok());
}

TEST(SnapshotWriterAtomicityTest, UnknownFormatVersionIsRejected) {
  ToyWorld world = MakeHealthWorld();
  const std::string path = TempPath("badversion.snap");
  const Status status = WriteRepositorySnapshot(*world.repo, path, 7);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(std::filesystem::exists(path));
}

// ---------------------------------------------------------------------------
// Dynamic overlay: Section 5.5 writes after the snapshot was opened.
// ---------------------------------------------------------------------------

class SnapshotOverlayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MakeHealthWorld();
    path_ = TempPath("overlay.snap");
    ASSERT_TRUE(WriteRepositorySnapshot(*world_.repo, path_).ok());
    Result<std::unique_ptr<Repository>> reopened = Repository::OpenSnapshot(
        world_.schema.get(), world_.dict.get(), path_);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    snapshot_ = std::move(reopened).value();
    std::remove(path_.c_str());
  }

  ToyWorld world_;
  std::string path_;
  std::unique_ptr<Repository> snapshot_;
};

TEST_F(SnapshotOverlayTest, RegisterValueMatchesOracle) {
  Tokenizer tok(world_.dict.get());
  const std::vector<std::string> texts = {
      "hypertension", "severe fever cough", "loss of weight", "eye drop"};
  for (const std::string& text : texts) {
    const TokenSet tokens = tok.Tokenize(text);
    const ValueId oracle_vid = world_.repo->RegisterValue(2, tokens, text);
    const ValueId snap_vid = snapshot_->RegisterValue(2, tokens, text);
    EXPECT_EQ(oracle_vid, snap_vid) << text;
  }
  ExpectBitIdenticalReads(*world_.repo, *snapshot_);
}

TEST_F(SnapshotOverlayTest, DuplicateRegisterValueIsANoOpOnBothSides) {
  Tokenizer tok(world_.dict.get());
  const TokenSet tokens = tok.Tokenize("hypertension");
  const ValueId first = snapshot_->RegisterValue(2, tokens, "hypertension");
  const size_t size_after_first = snapshot_->domain_size(2);
  EXPECT_EQ(snapshot_->RegisterValue(2, tokens, "other spelling"), first);
  EXPECT_EQ(snapshot_->domain_size(2), size_after_first);
  // Registering an existing *base* value must return the base id, not grow
  // the overlay.
  const TokenSet base = snapshot_->value_tokens(2, 0);
  EXPECT_EQ(snapshot_->RegisterValue(2, base, "dup"), 0u);
  EXPECT_EQ(snapshot_->domain_size(2), size_after_first);
}

TEST_F(SnapshotOverlayTest, AddSampleMatchesOracle) {
  // New samples bump base-value frequencies through the overlay delta and
  // introduce overlay values, samples, and coordinates on both sides.
  const std::vector<std::vector<std::string>> extra = {
      {"female", "thirst blurred vision", "diabetes", "dietary therapy"},
      {"male", "sore throat fever", "strep throat", "antibiotics"},
      {"female", "fever cough", "flu", "rest"},
  };
  for (size_t i = 0; i < extra.size(); ++i) {
    const Record r = world_.Make(static_cast<int64_t>(5000 + i), extra[i]);
    ASSERT_TRUE(world_.repo->AddSample(r).ok());
    ASSERT_TRUE(snapshot_->AddSample(r).ok());
  }
  ExpectBitIdenticalReads(*world_.repo, *snapshot_);
}

TEST_F(SnapshotOverlayTest, DomainAccessorIsInMemoryOnly) {
  EXPECT_DEATH(snapshot_->domain(0), "in-memory");
}

}  // namespace
}  // namespace terids
