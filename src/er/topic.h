#ifndef TERIDS_ER_TOPIC_H_
#define TERIDS_ER_TOPIC_H_

#include <string>
#include <vector>

#include "text/token_dict.h"
#include "text/token_set.h"
#include "tuple/imputed_tuple.h"

namespace terids {

/// The query topic keyword set K and the Boolean topic predicate
/// 𝜛(r, K) of the problem statement (Section 2.3).
///
/// An empty keyword set means "no topic constraint" (the paper's K = domain
/// of all keywords); 𝜛 is then identically true and topic pruning is off.
class TopicQuery {
 public:
  /// Keywords are looked up against a frozen dictionary: words never seen
  /// by the dictionary can never match and are dropped.
  TopicQuery(const TokenDict& dict, const std::vector<std::string>& keywords);

  /// Constructs the unconstrained query.
  TopicQuery() = default;

  bool IsUnconstrained() const { return keyword_tokens_.empty() && unconstrained_; }
  int num_keywords() const { return static_cast<int>(keyword_tokens_.size()); }

  /// 𝜛 for a plain token set: true iff it contains at least one keyword.
  bool Matches(const TokenSet& tokens) const;

  /// Keyword bitmask of a token set: bit (i % 64) set iff keyword i occurs.
  /// Masks are used as aggregate filters (DR-index, ER-grid); hashing
  /// keywords onto 64 bits can only create false "possibly matches", never
  /// false prunes.
  uint64_t MaskOf(const TokenSet& tokens) const;

  /// Topic classification of a whole imputed tuple.
  struct TupleTopic {
    /// Union of keyword masks over all instances and attributes.
    uint64_t possible_mask = 0;
    /// 𝜛(r_{i,m}, K) per instance.
    std::vector<bool> instance_matches;
    /// True iff some instance matches (the tuple can contribute a topical
    /// pair); Theorem 4.1 prunes a pair only if `any` is false on BOTH
    /// sides.
    bool any = false;
    /// True iff every instance matches.
    bool all = false;
  };
  TupleTopic Classify(const ImputedTuple& tuple) const;

 private:
  bool unconstrained_ = true;
  std::vector<Token> keyword_tokens_;  // sorted
};

}  // namespace terids

#endif  // TERIDS_ER_TOPIC_H_
