// The paper's motivating scenario (Example 1): online health community
// support. Posts from two health forums arrive as incomplete streams
// (extraction sometimes loses the diagnosis or treatment); a medical
// professional subscribes to diabetes-related topics; TER-iDS continuously
// reports matching post pairs for that topic.
//
// Everything is built by hand here — no generator — to show the public API
// on concrete data shaped like the paper's Table 1.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/terids_engine.h"
#include "pivot/pivot_selector.h"
#include "rules/rule_miner.h"
#include "text/tokenizer.h"

using namespace terids;

namespace {

Record MakePost(const Schema& schema, TokenDict* dict, int64_t rid, int forum,
                const std::vector<std::string>& texts) {
  Tokenizer tok(dict);
  Record r;
  r.rid = rid;
  r.stream_id = forum;
  r.values.resize(schema.num_attributes());
  for (int x = 0; x < schema.num_attributes(); ++x) {
    if (texts[x] == "-") {
      r.values[x] = AttrValue::Missing();  // lost by information extraction
    } else {
      r.values[x].text = texts[x];
      r.values[x].tokens = tok.Tokenize(texts[x]);
    }
  }
  return r;
}

}  // namespace

int main() {
  Schema schema(std::vector<std::string>{"gender", "symptom", "diagnosis",
                                         "treatment"});
  TokenDict dict;

  // Historical complete repository R (collected from past posts).
  Repository repo(&schema, &dict);
  const std::vector<std::vector<std::string>> history = {
      {"male", "loss of weight", "diabetes", "dietary therapy drug therapy"},
      {"male", "loss of weight blurred vision", "diabetes", "drug therapy"},
      {"male", "blurred vision thirst", "diabetes", "drug therapy"},
      {"male", "loss of weight thirst", "diabetes", "dietary therapy"},
      {"female", "fever low spirit cough", "pneumonia", "antibiotics rest"},
      {"male", "fever poor appetite cough", "flu", "drink more sleep more"},
      {"female", "fever cough", "flu", "sleep more"},
      {"male", "fever cough headache", "flu", "drink more"},
      {"female", "red eye eye itchy shed tears", "conjunctivitis", "eye drop"},
      {"female", "eye itchy red eye", "conjunctivitis", "eye drop rest"},
  };
  for (size_t i = 0; i < history.size(); ++i) {
    TERIDS_CHECK(repo.AddSample(MakePost(schema, &dict, 1000 + i, 0,
                                         history[i]))
                     .ok());
  }

  // Offline phase: pivots (Section 5.4) and CDD rules (Section 2.2).
  PivotSelector selector(&repo, PivotOptions{});
  repo.AttachPivots(selector.SelectAll());
  MinerOptions mopts;
  mopts.min_support = 2;
  mopts.min_const_freq = 2;
  RuleMiner miner(&repo, mopts);
  std::vector<CddRule> cdds = miner.MineCdds();
  std::printf("mined %zu CDD rules, e.g.:\n", cdds.size());
  for (size_t i = 0; i < cdds.size() && i < 3; ++i) {
    std::printf("  %s\n", cdds[i].ToString(schema).c_str());
  }

  // The professional's subscription: diabetes-related posts, similarity
  // threshold gamma = 2.2 of d = 4, alpha = 0.4.
  EngineConfig config;
  config.keywords = {"diabetes"};
  config.gamma = 2.2;
  config.alpha = 0.4;
  config.window_size = 8;
  TerIdsEngine engine(&repo, config, /*num_streams=*/2, cdds);

  // The live streams: posts a1, a2, ... from forum A interleaved with
  // b1, b2, ... from forum B (Table 1 of the paper; note a2's missing
  // diagnosis/treatment).
  const std::vector<Record> posts = {
      MakePost(schema, &dict, 1, 0,
               {"male", "loss of weight", "diabetes",
                "dietary therapy drug therapy"}),                      // a1
      MakePost(schema, &dict, 101, 1,
               {"female", "fever low spirit cough", "pneumonia", "-"}),  // b1
      MakePost(schema, &dict, 2, 0,
               {"male", "loss of weight blurred vision", "-", "-"}),     // a2
      MakePost(schema, &dict, 102, 1,
               {"male", "fever poor appetite cough", "flu",
                "drink more sleep more"}),                               // b2
      MakePost(schema, &dict, 3, 0,
               {"female", "red eye eye itchy shed tears", "conjunctivitis",
                "eye drop"}),                                            // c1
      MakePost(schema, &dict, 103, 1,
               {"male", "loss of weight thirst", "diabetes",
                "drug therapy"}),                                        // c2
  };

  std::printf("\nstreaming posts (K = {diabetes}, gamma = %.1f, alpha = %.1f):\n",
              config.gamma, config.alpha);
  for (const Record& post : posts) {
    ArrivalOutcome outcome = engine.ProcessArrival(post);
    std::printf("  t=%lld forum %d post %lld (%s)",
                static_cast<long long>(post.timestamp), post.stream_id,
                static_cast<long long>(post.rid),
                post.IsComplete() ? "complete" : "incomplete -> imputed");
    if (outcome.new_matches.empty()) {
      std::printf(" : no new matches\n");
    } else {
      for (const MatchPair& m : outcome.new_matches) {
        std::printf(" : MATCH (%lld, %lld) Pr=%.2f",
                    static_cast<long long>(m.rid_a),
                    static_cast<long long>(m.rid_b), m.probability);
      }
      std::printf("\n");
    }
  }

  std::printf("\nfinal topic-related entity set ES (%zu pairs):\n",
              engine.results().size());
  for (const MatchPair& m : engine.results().ToVector()) {
    std::printf("  (%lld, %lld) with probability %.2f\n",
                static_cast<long long>(m.rid_a),
                static_cast<long long>(m.rid_b), m.probability);
  }
  return 0;
}
