#ifndef TERIDS_RULES_RULE_MINER_H_
#define TERIDS_RULES_RULE_MINER_H_

#include <cstdint>
#include <vector>

#include "repo/repository.h"
#include "rules/rule.h"

namespace terids {

/// Options controlling rule detection from the repository (Section 2.2
/// "CDD Rule Detection"; details deferred by the paper to [19,41,35,12]).
struct MinerOptions {
  /// Number of sample pairs drawn from R to estimate differential
  /// dependencies. Capped at the number of distinct pairs in R.
  int pair_samples = 20000;
  /// Number of equi-width buckets the determinant distance axis [0,1] is
  /// split into for interval constraints.
  int buckets = 10;
  /// A bucket produces a rule only if its dependent interval is at most this
  /// wide; wider means the determinant cannot "accurately impute A_j with an
  /// acceptable interval" and the miner falls back to constants.
  double max_dep_width = 0.45;
  /// The classic-DD acceptance width [35]: DDs tolerate much looser
  /// dependent intervals (no conditioning), which is why DD-based
  /// imputation retrieves more samples and more candidate values than CDDs
  /// (slower and less accurate, Section 6.3).
  double dd_max_dep_width = 0.9;
  /// A rule is only useful for imputation if candidate values stay close to
  /// the sample value; dependent intervals whose hi exceeds this carry no
  /// signal (candidates would be "anything far away") and are rejected.
  double max_dep_hi = 1.0;
  /// The DD analogue (looser, matching the DD acceptance philosophy).
  double dd_max_dep_hi = 0.95;
  /// Editing rules assert near-certain fixes: a constant is accepted if at
  /// least `editing_agreement` of its pairs agree on the dependent within
  /// distance `editing_tolerance`.
  double editing_agreement = 0.8;
  double editing_tolerance = 0.2;
  /// Minimum number of supporting pairs for any emitted rule.
  int min_support = 4;
  /// Upper quantile of the dependent-distance sample used as the interval's
  /// hi endpoint (robustness against outlier pairs).
  double dep_quantile = 0.95;
  /// How many determinant buckets (lowest distances first) to turn into
  /// rules per (determinant, dependent) attribute pair. Real corpora yield
  /// thousands of CDDs (2,500 on 600-tuple Cora, Section 2.3); the default
  /// deliberately produces a large rule set so that unindexed rule
  /// processing exhibits the cost the paper's CDD-index addresses.
  int max_buckets_per_pair = 8;
  /// Constants mined per determinant attribute (editing-rule fallback).
  int max_constants_per_attr = 24;
  /// Minimum frequency in R for a value to be considered a constant.
  int min_const_freq = 3;
  /// Whether constant (editing-rule-style) constraints are mined at all.
  bool mine_constants = true;
  /// Whether level-2 combined rules X_a X_b -> A_j are mined.
  bool combine_level2 = true;
  /// Maximum level-2 combinations emitted per dependent attribute.
  int max_level2_rules = 160;
  uint64_t seed = 42;
};

/// Mines CDD, DD, and editing rules from a data repository.
///
/// CDDs: per dependent attribute A_j, differential buckets on each
/// determinant A_x yield interval constraints with tight dependent
/// intervals; determinants that impute loosely fall back to constant
/// constraints; level-2 combinations refine the dependent interval.
/// DDs: same pipeline restricted to [0, hi] interval constraints with no
/// constants and no level-2 refinement (the looser classic form [35]).
/// Editing rules: constant-only rules with exact-copy dependent interval.
class RuleMiner {
 public:
  RuleMiner(const Repository* repo, MinerOptions options);

  std::vector<CddRule> MineCdds() const;
  std::vector<CddRule> MineDds() const;
  std::vector<CddRule> MineEditingRules() const;

  /// Dynamic repository maintenance (Section 5.5): checks `sample_idx`
  /// (already added to the repository) against `rules`; any rule whose
  /// determinants some (rule-satisfying) pair involving the new sample
  /// meets, but whose dependent constraint that pair violates, gets its
  /// dependent interval widened to cover the pair. Returns the number of
  /// rules widened.
  int AbsorbNewSample(size_t sample_idx, std::vector<CddRule>* rules) const;

 private:
  struct PairSample {
    size_t a;
    size_t b;
    std::vector<double> dists;  // per-attribute Jaccard distance.
  };

  std::vector<PairSample> DrawPairs() const;

  std::vector<CddRule> MineWithMode(bool dd_mode) const;

  const Repository* repo_;
  MinerOptions options_;
};

}  // namespace terids

#endif  // TERIDS_RULES_RULE_MINER_H_
