// Scheduler unit tests: exactly-once task execution, concurrent fork-join
// from multiple threads, detached-chain ordering, shutdown/drain with no
// lost work items, and exception-safe unwind of a caller-thrown task (the
// contract the async ProcessStream consumer relies on).

#include "exec/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace terids {
namespace {

TEST(SchedulerTest, ParallelForRunsEveryTaskExactlyOnce) {
  Scheduler sched(4);
  constexpr int64_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  sched.ParallelFor(ExecPhase::kRefine, kTasks,
                    [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(SchedulerTest, ParallelForHandlesEdgeCounts) {
  Scheduler sched(2);
  std::atomic<int> ran{0};
  sched.ParallelFor(ExecPhase::kCandidate, 0,
                    [&](int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  sched.ParallelFor(ExecPhase::kCandidate, 1,
                    [&](int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(SchedulerTest, SingleWorkerStillCompletesLargeFanOut) {
  // The caller participates, so even one worker plus the caller must finish
  // any job — and the caller alone must finish it if the worker is slow.
  Scheduler sched(1);
  std::atomic<int64_t> sum{0};
  sched.ParallelFor(ExecPhase::kMaintain, 200,
                    [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 200 * 199 / 2);
}

TEST(SchedulerTest, ConcurrentParallelForFromManyThreads) {
  // The property that forced per-subsystem pools: N threads each issue
  // fork-joins against the same scheduler, repeatedly, and every task of
  // every job must run exactly once with each barrier honored.
  Scheduler sched(3);
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  static constexpr int64_t kTasks = 64;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sched, &total] {
      for (int r = 0; r < kRounds; ++r) {
        std::atomic<int64_t> local{0};
        sched.ParallelFor(ExecPhase::kRefine, kTasks,
                          [&](int64_t) { local.fetch_add(1); });
        // Barrier: every task of *this* job visible before the call returns.
        ASSERT_EQ(local.load(), kTasks);
        total.fetch_add(local.load());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), static_cast<int64_t>(kThreads) * kRounds * kTasks);
}

TEST(SchedulerTest, NestedParallelForInsideWorkItem) {
  // The ingest-chain shape: a detached item itself fans out. Must not
  // deadlock even at one worker (the inner caller self-drains its job).
  Scheduler sched(1);
  std::atomic<int> inner_runs{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  sched.Submit(ExecPhase::kIngest, [&] {
    sched.ParallelFor(ExecPhase::kMaintain, 32,
                      [&](int64_t) { inner_runs.fetch_add(1); });
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(SchedulerTest, SubmittedChainRunsInOrder) {
  // The ingest pattern: each item resubmits the next, so chain links must
  // observe strictly increasing sequence numbers.
  Scheduler sched(4);
  constexpr int kLinks = 100;
  std::vector<int> order;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::function<void(int)> link = [&](int step) {
    {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(step);
    }
    if (step + 1 < kLinks) {
      sched.Submit(ExecPhase::kIngest, [&link, step] { link(step + 1); });
    } else {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    }
  };
  sched.Submit(ExecPhase::kIngest, [&link] { link(0); });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  ASSERT_EQ(order.size(), static_cast<size_t>(kLinks));
  for (int i = 0; i < kLinks; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, DrainWaitsForAllDetachedItems) {
  Scheduler sched(2);
  std::atomic<int> ran{0};
  constexpr int kItems = 200;
  for (int i = 0; i < kItems; ++i) {
    sched.Submit(ExecPhase::kMaintain, [&ran] { ran.fetch_add(1); });
  }
  sched.Drain();
  EXPECT_EQ(ran.load(), kItems);
}

TEST(SchedulerTest, DestructorRunsEveryPendingItem) {
  // Shutdown ordering: nothing submitted before destruction may be lost —
  // the workers drain the queue fully before exiting.
  std::atomic<int> ran{0};
  constexpr int kItems = 500;
  {
    Scheduler sched(3);
    for (int i = 0; i < kItems; ++i) {
      sched.Submit(ExecPhase::kIngest, [&ran] { ran.fetch_add(1); });
    }
    // No Drain: the destructor itself must guarantee completion.
  }
  EXPECT_EQ(ran.load(), kItems);
}

TEST(SchedulerTest, CallerExceptionUnwindsAndSchedulerStaysUsable) {
  // Exception-safe unwind, mirroring the async consumer contract: a task
  // that throws on the calling thread must propagate out of ParallelFor
  // after the in-flight tasks settle, and the scheduler must remain fully
  // functional for subsequent jobs.
  Scheduler sched(2);
  std::atomic<int> before_throw{0};
  bool threw = false;
  try {
    // One task, so it runs inline on the caller — the only thread allowed
    // to throw.
    sched.ParallelFor(ExecPhase::kRefine, 1, [&](int64_t) {
      before_throw.fetch_add(1);
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(before_throw.load(), 1);

  // Scheduler survives: a fresh fan-out still runs every task.
  std::atomic<int> after{0};
  sched.ParallelFor(ExecPhase::kRefine, 50, [&](int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
  sched.Drain();
}

TEST(SchedulerTest, ConsumeLatenciesCountsEveryTask) {
  Scheduler sched(2);
  sched.ParallelFor(ExecPhase::kCandidate, 40, [](int64_t) {});
  sched.ParallelFor(ExecPhase::kRefine, 30, [](int64_t) {});
  for (int i = 0; i < 10; ++i) {
    sched.Submit(ExecPhase::kIngest, [] {});
  }
  sched.ParallelFor(ExecPhase::kMaintain, 20, [](int64_t) {});
  LatencyStats stats = sched.ConsumeLatencies();
  EXPECT_EQ(stats.of(ExecPhase::kCandidate).count(), 40u);
  EXPECT_EQ(stats.of(ExecPhase::kRefine).count(), 30u);
  EXPECT_EQ(stats.of(ExecPhase::kIngest).count(), 10u);
  EXPECT_EQ(stats.of(ExecPhase::kMaintain).count(), 20u);
  // Arrival end-to-end latency is the pipeline's to measure, not ours.
  EXPECT_EQ(stats.end_to_end.count(), 0u);

  // Consume clears: a second call reports only work since the first.
  LatencyStats again = sched.ConsumeLatencies();
  EXPECT_EQ(again.of(ExecPhase::kCandidate).count(), 0u);
  sched.ParallelFor(ExecPhase::kCandidate, 5, [](int64_t) {});
  EXPECT_EQ(sched.ConsumeLatencies().of(ExecPhase::kCandidate).count(), 5u);
}

TEST(SchedulerTest, RingOverflowFoldsWithoutLosingSamples) {
  // More tasks than the 1024-sample ring capacity: counts must still be
  // exact because full rings fold into the worker-local histograms.
  Scheduler sched(2);
  constexpr int64_t kTasks = 5000;
  sched.ParallelFor(ExecPhase::kRefine, kTasks, [](int64_t) {});
  EXPECT_EQ(sched.ConsumeLatencies().of(ExecPhase::kRefine).count(),
            static_cast<uint64_t>(kTasks));
}

TEST(SchedulerTest, ConcurrencyCountsCallerParticipation) {
  Scheduler sched(3);
  EXPECT_EQ(sched.num_workers(), 3);
  EXPECT_EQ(sched.concurrency(), 4);
}

TEST(SchedulerTest, SubmitRacesDrainWithoutLosingItems) {
  // Multi-producer submission racing repeated Drain calls — the surface the
  // annotated Mutex migration must keep TSan-clean: every submitted item
  // runs exactly once, and a Drain that observes quiescence really did see
  // all prior effects (its queue mutex is the happens-before edge). All
  // producers join before the Scheduler is destroyed: submitting
  // concurrently with destruction is outside the contract.
  constexpr int kProducers = 3;
  constexpr int kItemsPerProducer = 200;
  std::atomic<int> ran{0};
  {
    Scheduler sched(2);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kItemsPerProducer; ++i) {
          sched.Submit(ExecPhase::kMaintain, [&] { ran.fetch_add(1); });
          if ((i & 31) == 0) {
            std::this_thread::yield();
          }
        }
      });
    }
    // Drain repeatedly while producers are still submitting; each call must
    // quiesce whatever had been enqueued at that instant and tolerate new
    // submissions immediately after.
    for (int r = 0; r < 20; ++r) {
      sched.Drain();
    }
    for (auto& t : producers) {
      t.join();
    }
    sched.Drain();
    EXPECT_EQ(ran.load(), kProducers * kItemsPerProducer);
  }
  // Destructor drained: nothing ran after the final count.
  EXPECT_EQ(ran.load(), kProducers * kItemsPerProducer);
}

TEST(SchedulerTest, SubmitRacesParallelForAcrossPhases) {
  // A detached kIngest-style chain submitting from a worker thread while
  // the caller issues kRefine fork-joins — the unified pipeline's steady
  // state. Exercises the one sanctioned lock nesting (mu_ -> ext_mu_ in
  // ConsumeLatencies) while both locks are contended.
  Scheduler sched(2);
  std::atomic<int> chain_hops{0};
  std::atomic<int> refined{0};
  constexpr int kHops = 50;
  // Self-resubmitting chain, like the async ingest stage.
  std::function<void()> hop = [&] {
    if (chain_hops.fetch_add(1) + 1 < kHops) {
      sched.Submit(ExecPhase::kIngest, hop);
    }
  };
  sched.Submit(ExecPhase::kIngest, hop);
  for (int r = 0; r < 10; ++r) {
    sched.ParallelFor(ExecPhase::kRefine, 64,
                      [&](int64_t) { refined.fetch_add(1); });
    LatencyStats stats = sched.ConsumeLatencies();
    EXPECT_LE(stats.of(ExecPhase::kIngest).count(),
              static_cast<uint64_t>(kHops));
  }
  sched.Drain();
  EXPECT_EQ(chain_hops.load(), kHops);
  EXPECT_EQ(refined.load(), 640);
}

}  // namespace
}  // namespace terids
