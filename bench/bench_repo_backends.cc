// Repository storage backends: build cost and read-path throughput of the
// in-memory oracle vs the mmap snapshot backend (DESIGN.md §8). Not a paper
// figure — this tracks the ROADMAP multi-backend-repository scaling item.
//
// Section 1 measures construction: the in-memory build (AddSample loop +
// AttachPivots), the snapshot serialization (write cost + file size), and
// the mmap open (validate + materialize). Section 2 replays identical
// random read workloads — point lookups (pivot_distance / value_tokens /
// FindValue) and sorted-coordinate range scans — against both backends,
// with the in-memory results as the correctness oracle. Section 3 runs the
// full TER-iDS pipeline end to end per backend. Section 4 is the cold-open
// study: the same repository written as a v1 and a v2 snapshot file, opened
// v1-eager / v2-eager / v2-lazy, measuring open latency, time to first
// arrival (engine construction + one record, where lazy decode pays its
// deferred cost), and resident-set growth — with a fresh-reopen read oracle
// proving every mode serves identical bytes. Expected shape: the mmap
// backend pays a small indirection/merge overhead on reads in exchange for
// a build-once file whose geometry tables live in the page cache instead
// of the heap, and the v2 lazy open is orders of magnitude faster than any
// eager open because it touches only the header + section TOC.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench_common.h"
#include "core/pipeline.h"
#include "datagen/profiles.h"
#include "repo/repository.h"
#include "repo/snapshot_format.h"
#include "repo/snapshot_writer.h"
#include "stream/stream_driver.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace terids;
using namespace terids::bench;

struct ReadWorkload {
  // (attr, vid) point-lookup probes and coordinate bands, shared verbatim
  // across backends.
  std::vector<std::pair<int, ValueId>> points;
  std::vector<std::pair<int, Interval>> bands;
};

ReadWorkload MakeWorkload(const Repository& repo, int num_points,
                          int num_bands) {
  ReadWorkload w;
  Rng rng(42);
  const int d = repo.num_attributes();
  for (int i = 0; i < num_points; ++i) {
    const int x = static_cast<int>(rng.NextBounded(d));
    if (repo.domain_size(x) == 0) continue;
    w.points.emplace_back(
        x, static_cast<ValueId>(rng.NextBounded(repo.domain_size(x))));
  }
  for (int i = 0; i < num_bands; ++i) {
    const int x = static_cast<int>(rng.NextBounded(d));
    const double center = rng.NextDouble();
    const double radius = 0.02 + 0.08 * rng.NextDouble();
    w.bands.emplace_back(x,
                         Interval::Of(center - radius, center + radius));
  }
  return w;
}

/// One backend's read-path numbers; `checksum` doubles as the oracle.
struct ReadStats {
  double lookups_per_sec = 0.0;
  double scans_per_sec = 0.0;
  double scanned_values = 0.0;
  uint64_t checksum = 0;
};

ReadStats MeasureReads(const Repository& repo, const ReadWorkload& w,
                       int rounds) {
  ReadStats stats;
  uint64_t sum = 0;
  Stopwatch lookup_watch;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& [x, vid] : w.points) {
      for (int a = 0; a < repo.num_pivots(x); ++a) {
        sum += static_cast<uint64_t>(1e6 * repo.pivot_distance(x, a, vid));
      }
      sum += repo.value_tokens(x, vid).size();
      sum += repo.FindValue(x, repo.value_tokens(x, vid));
      sum += static_cast<uint64_t>(repo.value_frequency(x, vid));
    }
  }
  const double lookup_seconds = lookup_watch.ElapsedSeconds();
  const double total_lookups =
      static_cast<double>(w.points.size()) * rounds;
  stats.lookups_per_sec =
      lookup_seconds > 0 ? total_lookups / lookup_seconds : 0.0;

  size_t scanned = 0;
  Stopwatch scan_watch;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& [x, band] : w.bands) {
      const std::vector<ValueId> hits = repo.ValuesInCoordRange(x, band);
      scanned += hits.size();
      for (ValueId v : hits) {
        sum += v;
      }
    }
  }
  const double scan_seconds = scan_watch.ElapsedSeconds();
  const double total_scans = static_cast<double>(w.bands.size()) * rounds;
  stats.scans_per_sec = scan_seconds > 0 ? total_scans / scan_seconds : 0.0;
  stats.scanned_values = rounds > 0 ? static_cast<double>(scanned) / rounds : 0;
  stats.checksum = sum;
  return stats;
}

long FileSizeBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

/// VmRSS from /proc/self/status in kB, or -1 where unavailable (non-Linux);
/// RSS columns then report 0 deltas rather than garbage.
long CurrentRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

long RssDeltaKb(long before, long after) {
  if (before < 0 || after < 0) return 0;
  return after > before ? after - before : 0;
}

}  // namespace

int main() {
  JsonReporter reporter("repo_backends");
  const ExecKnobs env_knobs = EnvExecKnobs();
  const std::string dataset = "Citations";
  ExperimentParams params = BaseParams(dataset);
  Experiment experiment(ProfileByName(dataset), params);
  PrintHeader("repo_backends",
              "repository build cost + read throughput per storage backend",
              params);

  // --- Section 1: build cost --------------------------------------------
  Stopwatch build_watch;
  std::unique_ptr<Repository> memory =
      experiment.BuildRepository(RepoBackend::kInMemory);
  const double build_seconds = build_watch.ElapsedSeconds();

  const std::string snapshot_path =
      UniqueSnapshotPath("terids-bench-repo-backends");
  Stopwatch write_watch;
  if (!WriteRepositorySnapshot(*memory, snapshot_path).ok()) {
    std::fprintf(stderr, "FATAL: snapshot write failed\n");
    return 1;
  }
  const double write_seconds = write_watch.ElapsedSeconds();
  const long snapshot_bytes = FileSizeBytes(snapshot_path);

  Stopwatch open_watch;
  Result<std::unique_ptr<Repository>> opened = Repository::OpenSnapshot(
      &memory->schema(), &memory->dict(), snapshot_path);
  const double open_seconds = open_watch.ElapsedSeconds();
  if (!opened.ok()) {
    std::fprintf(stderr, "FATAL: snapshot open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Repository> mmapped = std::move(opened).value();
  std::remove(snapshot_path.c_str());  // the mapping keeps the pages alive

  std::printf("\n-- build cost (%zu samples, %d attributes) --\n",
              memory->num_samples(), memory->num_attributes());
  std::printf("%-22s %12.4f ms\n", "in-memory build", 1e3 * build_seconds);
  std::printf("%-22s %12.4f ms  (%ld bytes)\n", "snapshot write",
              1e3 * write_seconds, snapshot_bytes);
  std::printf("%-22s %12.4f ms\n", "mmap open", 1e3 * open_seconds);
  reporter.AddKnobRow(env_knobs)
      .Str("section", "build")
      .Str("dataset", dataset)
      .Num("samples", static_cast<double>(memory->num_samples()))
      .Num("in_memory_build_ms", 1e3 * build_seconds)
      .Num("snapshot_write_ms", 1e3 * write_seconds)
      .Num("snapshot_bytes", static_cast<double>(snapshot_bytes))
      .Num("mmap_open_ms", 1e3 * open_seconds);

  // --- Section 2: read-path throughput ----------------------------------
  const ReadWorkload workload = MakeWorkload(*memory, 20000, 2000);
  const int rounds = 3;
  std::printf(
      "\n-- read path: %zu point lookups + %zu range scans x %d rounds --\n",
      workload.points.size(), workload.bands.size(), rounds);
  std::printf("%-8s %16s %16s %14s\n", "backend", "lookups/s", "scans/s",
              "values/scan");
  ReadStats oracle;
  struct BackendRow {
    const char* name;
    const Repository* repo;
  };
  for (const BackendRow& row : {BackendRow{"memory", memory.get()},
                                BackendRow{"mmap", mmapped.get()}}) {
    const ReadStats stats = MeasureReads(*row.repo, workload, rounds);
    if (std::string(row.name) == "memory") {
      oracle = stats;
    } else if (stats.checksum != oracle.checksum) {
      // The bit-identical-reads contract is load-bearing; a bench run that
      // violates it must not report numbers as if it passed.
      std::fprintf(stderr, "FATAL: %s backend read different data\n",
                   row.name);
      return 1;
    }
    const double per_scan =
        workload.bands.empty()
            ? 0.0
            : stats.scanned_values / static_cast<double>(workload.bands.size());
    std::printf("%-8s %16.0f %16.0f %14.1f\n", row.name,
                stats.lookups_per_sec, stats.scans_per_sec, per_scan);
    std::fflush(stdout);
    reporter.AddKnobRow(env_knobs)
        .Str("section", "read_path")
        .Str("dataset", dataset)
        .Str("backend", row.name)
        .Num("lookups_per_sec", stats.lookups_per_sec)
        .Num("range_scans_per_sec", stats.scans_per_sec)
        .Num("values_per_scan", per_scan);
  }

  // --- Section 3: end-to-end pipeline per backend ------------------------
  std::printf("\n-- end-to-end TER-iDS per backend --\n");
  std::printf("%-8s %14s %14s %9s\n", "backend", "ms/arrival", "arrivals/s",
              "matches");
  for (RepoBackend backend :
       {RepoBackend::kInMemory, RepoBackend::kMmapSnapshot}) {
    ExperimentParams run_params = params;
    run_params.repo_backend = backend;
    Experiment run_experiment(ProfileByName(dataset), run_params);
    PipelineRun run = run_experiment.Run(PipelineKind::kTerIds);
    const double throughput =
        run.total_seconds > 0
            ? static_cast<double>(run.arrivals) / run.total_seconds
            : 0.0;
    std::printf("%-8s %14.4f %14.1f %9zu\n", RepoBackendName(backend),
                1e3 * run.avg_arrival_seconds, throughput,
                run.final_result_size);
    std::fflush(stdout);
    ExecKnobs knobs = env_knobs;
    knobs.repo_backend = backend;
    reporter.AddKnobRow(knobs)
        .Str("section", "end_to_end")
        .Str("dataset", dataset)
        .Num("ms_per_arrival", 1e3 * run.avg_arrival_seconds)
        .Num("arrivals_per_sec", throughput)
        .Num("matches", static_cast<double>(run.final_result_size));
  }

  // --- Section 4: cold open across format versions + decode modes --------
  // The same repository written as v1 (monolithic payload, decoded at open)
  // and v2 (section TOC, lazily decodable). Per mode: open latency, time to
  // first arrival (engine construction + one record — where lazy decode
  // pays for the sections the engine actually touches), and RSS growth.
  const std::string v1_path = UniqueSnapshotPath("terids-bench-cold-v1");
  const std::string v2_path = UniqueSnapshotPath("terids-bench-cold-v2");
  if (!WriteRepositorySnapshot(*memory, v1_path, snapshot::kVersionEager)
           .ok() ||
      !WriteRepositorySnapshot(*memory, v2_path, snapshot::kVersion).ok()) {
    std::fprintf(stderr, "FATAL: cold-open snapshot write failed\n");
    return 1;
  }
  const ReadStats cold_oracle = MeasureReads(*memory, workload, 1);

  struct ColdMode {
    const char* name;
    const std::string* path;
    SnapshotDecode decode;
  };
  const ColdMode cold_modes[] = {
      {"v1-eager", &v1_path, SnapshotDecode::kEager},
      {"v2-eager", &v2_path, SnapshotDecode::kEager},
      {"v2-lazy", &v2_path, SnapshotDecode::kLazy},
  };
  std::printf("\n-- cold open: %ld-byte v1 file, %ld-byte v2 file --\n",
              FileSizeBytes(v1_path), FileSizeBytes(v2_path));
  std::printf("%-9s %12s %18s %13s %16s\n", "mode", "open_ms",
              "first_arrival_ms", "rss_open_kb", "rss_arrival_kb");
  double cold_open_ms[3] = {0.0, 0.0, 0.0};
  for (int i = 0; i < 3; ++i) {
    const ColdMode& mode = cold_modes[i];
#if defined(__GLIBC__)
    // Return freed heap from the previous mode to the OS so this mode's
    // RSS delta measures its own materialization, not allocator reuse.
    malloc_trim(0);
#endif
    const long rss_before = CurrentRssKb();
    Stopwatch cold_watch;
    Result<std::unique_ptr<Repository>> cold = Repository::OpenSnapshot(
        &memory->schema(), &memory->dict(), *mode.path, mode.decode);
    cold_open_ms[i] = 1e3 * cold_watch.ElapsedSeconds();
    if (!cold.ok()) {
      std::fprintf(stderr, "FATAL: cold open (%s) failed: %s\n", mode.name,
                   cold.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Repository> cold_repo = std::move(cold).value();
    const long rss_open = CurrentRssKb();

    // Time to first arrival: build the TER-iDS engine over the cold
    // repository and push one record through it.
    Stopwatch arrival_watch;
    std::unique_ptr<ErPipeline> pipeline = MakePipeline(
        PipelineKind::kTerIds, cold_repo.get(), experiment.MakeConfig(),
        /*num_streams=*/2, experiment.cdds(), experiment.dds(),
        experiment.editing_rules());
    StreamDriver driver(
        {experiment.dataset().source_a, experiment.dataset().source_b});
    pipeline->ProcessStream(&driver, /*max_arrivals=*/1, /*batch_size=*/1,
                            [](ArrivalOutcome&&) {});
    const double first_arrival_ms = 1e3 * arrival_watch.ElapsedSeconds();
    const long rss_arrival = CurrentRssKb();

    // Identical-output oracle on a *fresh* open of the same file+mode: the
    // read sweep forces a full decode, so running it on the measured
    // instance would contaminate nothing, but the pipeline above registered
    // stream values into that instance's overlay — a pristine reopen keeps
    // the comparison byte-for-byte against the in-memory build.
    Result<std::unique_ptr<Repository>> recheck = Repository::OpenSnapshot(
        &memory->schema(), &memory->dict(), *mode.path, mode.decode);
    if (!recheck.ok() ||
        MeasureReads(*recheck.value(), workload, 1).checksum !=
            cold_oracle.checksum) {
      std::fprintf(stderr, "FATAL: %s cold open read different data\n",
                   mode.name);
      return 1;
    }

    const double speedup =
        cold_open_ms[0] / std::max(cold_open_ms[i], 1e-6);
    std::printf("%-9s %12.4f %18.4f %13ld %16ld\n", mode.name,
                cold_open_ms[i], first_arrival_ms,
                RssDeltaKb(rss_before, rss_open),
                RssDeltaKb(rss_before, rss_arrival));
    std::fflush(stdout);
    ExecKnobs knobs = env_knobs;
    knobs.repo_backend = RepoBackend::kMmapSnapshot;
    knobs.snapshot_decode = mode.decode;
    reporter.AddKnobRow(knobs)
        .Str("section", "cold_open")
        .Str("dataset", dataset)
        .Str("mode", mode.name)
        .Num("cold_open_ms", cold_open_ms[i])
        .Num("first_arrival_ms", first_arrival_ms)
        .Num("rss_open_delta_kb",
             static_cast<double>(RssDeltaKb(rss_before, rss_open)))
        .Num("rss_first_arrival_delta_kb",
             static_cast<double>(RssDeltaKb(rss_before, rss_arrival)))
        .Num("speedup_vs_v1_eager", speedup);
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  std::printf("cold-open speedup, v2-lazy over v1-eager: %.1fx\n",
              cold_open_ms[0] / std::max(cold_open_ms[2], 1e-6));

  std::printf(
      "\nexpected shape: snapshot write + mmap open amortize to near-zero\n"
      "against repeated runs (the file is build-once); point lookups pay a\n"
      "branch for the base/overlay split and range scans a two-way merge,\n"
      "so mmap reads trail memory slightly while every byte returned is\n"
      "identical — the oracle checks enforce it. The v2 lazy cold open\n"
      "validates only the header + TOC, so its open latency is independent\n"
      "of snapshot size and its RSS grows only for sections actually\n"
      "touched.\n");
  return 0;
}
