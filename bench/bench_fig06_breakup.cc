// Figure 6: break-up cost of TER-iDS (CDD selection / imputation / ER).

#include <cstdio>

#include "bench_common.h"
#include "datagen/profiles.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  JsonReporter reporter("Figure 6");
  PrintHeader("Figure 6", "break-up cost of TER-iDS (ms/arrival)", base);
  std::printf("%-10s %14s %14s %14s %14s\n", "dataset", "CDD-selection",
              "imputation", "ER", "total");
  for (const std::string& name : AllDatasets()) {
    Experiment experiment(ProfileByName(name), BaseParams(name));
    PipelineRun run = experiment.Run(PipelineKind::kTerIds);
    const CostBreakdown per_arrival = run.total_cost.PerArrival(run.arrivals);
    std::printf("%-10s %14.5f %14.5f %14.5f %14.5f\n", name.c_str(),
                1e3 * per_arrival.cdd_select_seconds,
                1e3 * per_arrival.impute_seconds, 1e3 * per_arrival.er_seconds,
                1e3 * per_arrival.total_seconds());
    reporter.AddRow()
        .Str("dataset", name)
        .Raw("per_arrival", per_arrival.ToJson());
  }
  std::printf(
      "\npaper shape: ER dominates on all datasets except Songs (large |R|\n"
      "shifts cost to CDD selection + imputation); EBooks has the highest\n"
      "ER cost (long token sets).\n");
  return 0;
}
