#include "rules/rule.h"

#include <cstdio>

namespace terids {

bool CddRule::IsDd() const {
  for (const auto& [attr, constraint] : determinants) {
    (void)attr;
    if (constraint.kind != AttrConstraint::Kind::kInterval) {
      return false;
    }
  }
  return true;
}

bool CddRule::IsEditingRule() const {
  if (dep_interval.lo != 0.0 || dep_interval.hi != 0.0) {
    return false;
  }
  for (const auto& [attr, constraint] : determinants) {
    (void)attr;
    if (constraint.kind != AttrConstraint::Kind::kConstant) {
      return false;
    }
  }
  return true;
}

bool CddRule::ApplicableTo(const Record& r) const {
  const uint32_t missing = r.MissingMask();
  return (det_mask & missing) == 0 &&
         (missing & (1u << dependent)) != 0;
}

bool CddRule::DeterminantsSatisfied(const Record& r, const Repository& repo,
                                    size_t sample_idx) const {
  for (const auto& [attr, constraint] : determinants) {
    const AttrValue& rv = r.values[attr];
    if (rv.missing) {
      return false;
    }
    if (constraint.kind == AttrConstraint::Kind::kConstant) {
      const ValueId svid = repo.sample_value_id(sample_idx, attr);
      if (svid != constraint.constant_vid) {
        return false;
      }
      // r must equal the constant too (r1[Ax] = r2[Ax] = v in Definition 3).
      if (!(rv.tokens == repo.value_tokens(attr, constraint.constant_vid))) {
        return false;
      }
    } else {
      const double dist =
          JaccardDistance(rv.tokens, repo.sample(sample_idx).values[attr].tokens);
      if (!constraint.interval.Contains(dist)) {
        return false;
      }
    }
  }
  return true;
}

std::string CddRule::ToString(const Schema& schema) const {
  std::string out = "[";
  for (size_t i = 0; i < determinants.size(); ++i) {
    if (i > 0) out += ",";
    out += schema.name(determinants[i].first);
  }
  out += "] -> " + schema.name(dependent) + ", {";
  char buf[96];
  for (size_t i = 0; i < determinants.size(); ++i) {
    if (i > 0) out += ",";
    const AttrConstraint& c = determinants[i].second;
    if (c.kind == AttrConstraint::Kind::kConstant) {
      std::snprintf(buf, sizeof(buf), "v#%u", c.constant_vid);
    } else {
      std::snprintf(buf, sizeof(buf), "[%.2f,%.2f]", c.interval.lo,
                    c.interval.hi);
    }
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "} I=[%.2f,%.2f] sup=%d", dep_interval.lo,
                dep_interval.hi, support);
  out += buf;
  return out;
}

}  // namespace terids
