// Figure 7: TER-iDS efficiency vs probabilistic threshold alpha.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  TimeSweep("Figure 7", "alpha", {0.1, 0.2, 0.5, 0.8, 0.9},
            [](ExperimentParams* p, double v) { p->alpha = v; },
            AllPipelines());
  return 0;
}
