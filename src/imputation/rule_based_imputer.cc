#include "imputation/rule_based_imputer.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace terids {

RuleBasedImputer::RuleBasedImputer(const Repository* repo,
                                   std::vector<CddRule> rules,
                                   RuleImputerOptions options)
    : repo_(repo), rules_(std::move(rules)), options_(options) {
  TERIDS_CHECK(repo != nullptr);
  by_dependent_.resize(repo->num_attributes());
  for (size_t i = 0; i < rules_.size(); ++i) {
    TERIDS_CHECK(rules_[i].dependent >= 0 &&
                 rules_[i].dependent < repo->num_attributes());
    by_dependent_[rules_[i].dependent].push_back(static_cast<int>(i));
  }
}

const std::vector<int>& RuleBasedImputer::RulesForDependent(int attr) const {
  TERIDS_CHECK(attr >= 0 && attr < static_cast<int>(by_dependent_.size()));
  return by_dependent_[attr];
}

void AccumulateCandidates(const Repository& repo, const CddRule& rule,
                          size_t sample_idx, bool use_coord_filter,
                          std::unordered_map<ValueId, double>* freq) {
  const int j = rule.dependent;
  const ValueId svid = repo.sample_value_id(sample_idx, j);
  const TokenSet& s_tokens = repo.value_tokens(j, svid);
  const Interval& dep = rule.dep_interval;

  if (use_coord_filter && repo.has_pivots()) {
    // Necessary condition via the metric embedding: |coord(val) - coord(s)|
    // <= dist(val, s[A_j]) <= dep.hi, so only values in the coordinate band
    // need exact verification.
    const double coord_s = repo.coord(j, svid);
    const Interval band =
        Interval::Of(coord_s - dep.hi, coord_s + dep.hi);
    for (ValueId val : repo.ValuesInCoordRange(j, band)) {
      const double dist = JaccardDistance(s_tokens, repo.value_tokens(j, val));
      if (dep.Contains(dist)) {
        (*freq)[val] += 1.0;
      }
    }
  } else {
    const size_t dom_size = repo.domain_size(j);
    for (ValueId val = 0; val < dom_size; ++val) {
      const double dist = JaccardDistance(s_tokens, repo.value_tokens(j, val));
      if (dep.Contains(dist)) {
        (*freq)[val] += 1.0;
      }
    }
  }
}

std::vector<ImputedTuple::Candidate> FinalizeCandidates(
    const std::unordered_map<ValueId, double>& freq, int max_candidates) {
  std::vector<ImputedTuple::Candidate> out;
  if (freq.empty()) {
    return out;
  }
  double total = 0.0;
  for (const auto& [vid, f] : freq) {
    (void)vid;
    total += f;
  }
  out.reserve(freq.size());
  for (const auto& [vid, f] : freq) {
    out.push_back({vid, f / total});
  }
  // Deterministic order: probability descending, ValueId ascending. The
  // vid tie-break makes the cap cut identical regardless of accumulation
  // order, so indexed and linear imputation produce byte-identical tuples.
  std::sort(out.begin(), out.end(),
            [](const ImputedTuple::Candidate& a,
               const ImputedTuple::Candidate& b) {
              return a.prob != b.prob ? a.prob > b.prob : a.vid < b.vid;
            });
  if (static_cast<int>(out.size()) > max_candidates) {
    // Keep the top candidates and renormalize over the retained set: the
    // truncated distribution becomes the imputation model. Without this,
    // capping strands probability mass and a correctly-imputed pair whose
    // candidates split the vote can never clear the alpha threshold.
    out.resize(max_candidates);
    double kept = 0.0;
    for (const ImputedTuple::Candidate& c : out) {
      kept += c.prob;
    }
    if (kept > 0.0) {
      for (ImputedTuple::Candidate& c : out) {
        c.prob /= kept;
      }
    }
  }
  return out;
}

std::vector<ImputedTuple::ImputedAttr> RuleBasedImputer::ImputeRecord(
    const Record& r, CostBreakdown* cost) {
  std::vector<ImputedTuple::ImputedAttr> result;
  for (int j : r.MissingAttributes()) {
    // Rule selection phase: find the applicable rules with dependent A_j.
    std::vector<const CddRule*> applicable;
    {
      ScopedTimer timer(cost ? &cost->cdd_select_seconds : nullptr);
      for (int idx : by_dependent_[j]) {
        if (rules_[idx].ApplicableTo(r)) {
          applicable.push_back(&rules_[idx]);
        }
      }
    }
    // Imputation phase: retrieve satisfying samples and accumulate the
    // multi-rule frequency distribution of Equation (4).
    std::unordered_map<ValueId, double> freq;
    {
      ScopedTimer timer(cost ? &cost->impute_seconds : nullptr);
      for (const CddRule* rule : applicable) {
        for (size_t i = 0; i < repo_->num_samples(); ++i) {
          if (rule->DeterminantsSatisfied(r, *repo_, i)) {
            AccumulateCandidates(*repo_, *rule, i, options_.use_coord_filter,
                                 &freq);
          }
        }
      }
    }
    std::vector<ImputedTuple::Candidate> cands =
        FinalizeCandidates(freq, options_.max_candidates_per_attr);
    if (!cands.empty()) {
      ImputedTuple::ImputedAttr ia;
      ia.attr = j;
      ia.candidates = std::move(cands);
      result.push_back(std::move(ia));
    }
  }
  return result;
}

}  // namespace terids
