#include <gtest/gtest.h>

#include "er/match_set.h"
#include "stream/sliding_window.h"
#include "stream/stream_driver.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

TEST(MatchSetTest, AddContainsRemove) {
  MatchSet set;
  set.Add(1, 2, 0.8);
  EXPECT_TRUE(set.Contains(1, 2));
  EXPECT_TRUE(set.Contains(2, 1));  // Order-insensitive.
  EXPECT_DOUBLE_EQ(set.ProbabilityOf(2, 1), 0.8);
  EXPECT_TRUE(set.Remove(2, 1));
  EXPECT_FALSE(set.Contains(1, 2));
  EXPECT_FALSE(set.Remove(1, 2));
  EXPECT_DOUBLE_EQ(set.ProbabilityOf(1, 2), -1.0);
}

TEST(MatchSetTest, AddOverwritesProbability) {
  MatchSet set;
  set.Add(1, 2, 0.6);
  set.Add(2, 1, 0.9);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.ProbabilityOf(1, 2), 0.9);
}

TEST(MatchSetTest, RemoveAllWithClearsExpiredTuple) {
  MatchSet set;
  set.Add(1, 2, 0.8);
  set.Add(1, 3, 0.7);
  set.Add(2, 3, 0.6);
  EXPECT_EQ(set.RemoveAllWith(1), 2);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Contains(2, 3));
  EXPECT_EQ(set.RemoveAllWith(99), 0);
}

TEST(MatchSetTest, ToVectorIsSortedAndNormalized) {
  MatchSet set;
  set.Add(5, 2, 0.5);
  set.Add(1, 9, 0.6);
  std::vector<MatchPair> v = set.ToVector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].rid_a, 1);
  EXPECT_EQ(v[0].rid_b, 9);
  EXPECT_EQ(v[1].rid_a, 2);
  EXPECT_EQ(v[1].rid_b, 5);
}

TEST(SlidingWindowTest, EvictsOldestWhenFull) {
  ToyWorld world = MakeHealthWorld();
  SlidingWindow window(2);
  auto make = [&](int64_t rid) {
    auto wt = std::make_shared<WindowTuple>();
    wt->tuple = std::make_shared<const ImputedTuple>(ImputedTuple::FromComplete(
        world.Make(rid, {"male", "fever", "flu", "rest"}), world.repo.get()));
    return wt;
  };
  EXPECT_EQ(window.Push(make(1)), nullptr);
  EXPECT_EQ(window.Push(make(2)), nullptr);
  std::shared_ptr<WindowTuple> evicted = window.Push(make(3));
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->rid(), 1);
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.tuples().front()->rid(), 2);
}

TEST(StreamDriverTest, RoundRobinInterleavesAndStampsTimestamps) {
  ToyWorld world = MakeHealthWorld();
  std::vector<Record> a = {world.Make(1, {"m", "f", "g", "h"}),
                           world.Make(2, {"m", "f", "g", "h"})};
  std::vector<Record> b = {world.Make(10, {"m", "f", "g", "h"}),
                           world.Make(11, {"m", "f", "g", "h"}),
                           world.Make(12, {"m", "f", "g", "h"})};
  StreamDriver driver({a, b});
  EXPECT_EQ(driver.total(), 5u);
  std::vector<std::pair<int, int64_t>> order;
  while (driver.HasNext()) {
    Record r = driver.Next();
    order.emplace_back(r.stream_id, r.rid);
    EXPECT_EQ(r.timestamp, static_cast<int64_t>(order.size()) - 1);
  }
  ASSERT_EQ(order.size(), 5u);
  // Round robin: A0 B0 A1 B1 B2 (A exhausted).
  EXPECT_EQ(order[0], (std::pair<int, int64_t>{0, 1}));
  EXPECT_EQ(order[1], (std::pair<int, int64_t>{1, 10}));
  EXPECT_EQ(order[2], (std::pair<int, int64_t>{0, 2}));
  EXPECT_EQ(order[3], (std::pair<int, int64_t>{1, 11}));
  EXPECT_EQ(order[4], (std::pair<int, int64_t>{1, 12}));
}

TEST(StreamDriverTest, NextBatchMatchesRepeatedNext) {
  ToyWorld world = MakeHealthWorld();
  std::vector<Record> a = {world.Make(1, {"m", "f", "g", "h"}),
                           world.Make(2, {"m", "f", "g", "h"}),
                           world.Make(3, {"m", "f", "g", "h"})};
  std::vector<Record> b = {world.Make(10, {"m", "f", "g", "h"}),
                           world.Make(11, {"m", "f", "g", "h"})};
  StreamDriver sequential({a, b});
  std::vector<std::pair<int64_t, int64_t>> expect;
  while (sequential.HasNext()) {
    Record r = sequential.Next();
    expect.emplace_back(r.rid, r.timestamp);
  }

  StreamDriver batched({a, b});
  std::vector<std::pair<int64_t, int64_t>> got;
  while (batched.HasNext()) {
    std::vector<Record> batch = batched.NextBatch(2);
    EXPECT_GE(batch.size(), 1u);
    EXPECT_LE(batch.size(), 2u);
    for (const Record& r : batch) {
      got.emplace_back(r.rid, r.timestamp);
    }
  }
  EXPECT_EQ(got, expect);
  // Timestamp-ordered within and across batches.
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].second, got[i - 1].second + 1);
  }
}

TEST(StreamDriverTest, NextBatchTruncatesAtExhaustionAndThenIsEmpty) {
  ToyWorld world = MakeHealthWorld();
  std::vector<Record> a = {world.Make(1, {"m", "f", "g", "h"})};
  std::vector<Record> b = {world.Make(2, {"m", "f", "g", "h"}),
                           world.Make(3, {"m", "f", "g", "h"})};
  StreamDriver driver({a, b});
  EXPECT_EQ(driver.NextBatch(8).size(), 3u);
  EXPECT_FALSE(driver.HasNext());
  EXPECT_TRUE(driver.NextBatch(8).empty());
  EXPECT_TRUE(driver.NextBatch(0).empty());
}

TEST(StreamDriverTest, ResetReplaysIdentically) {
  ToyWorld world = MakeHealthWorld();
  std::vector<Record> a = {world.Make(1, {"m", "f", "g", "h"})};
  std::vector<Record> b = {world.Make(2, {"m", "f", "g", "h"})};
  StreamDriver driver({a, b});
  std::vector<int64_t> first;
  while (driver.HasNext()) first.push_back(driver.Next().rid);
  driver.Reset();
  std::vector<int64_t> second;
  while (driver.HasNext()) second.push_back(driver.Next().rid);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace terids
