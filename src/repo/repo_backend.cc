#include "repo/repo_backend.h"

namespace terids {

const char* RepoBackendName(RepoBackend backend) {
  switch (backend) {
    case RepoBackend::kInMemory:
      return "memory";
    case RepoBackend::kMmapSnapshot:
      return "mmap";
  }
  return "unknown";
}

bool ParseRepoBackend(const std::string& name, RepoBackend* backend) {
  if (name == "memory") {
    *backend = RepoBackend::kInMemory;
    return true;
  }
  if (name == "mmap") {
    *backend = RepoBackend::kMmapSnapshot;
    return true;
  }
  return false;
}

const char* SnapshotDecodeName(SnapshotDecode decode) {
  switch (decode) {
    case SnapshotDecode::kEager:
      return "eager";
    case SnapshotDecode::kLazy:
      return "lazy";
  }
  return "unknown";
}

bool ParseSnapshotDecode(const std::string& name, SnapshotDecode* decode) {
  if (name == "eager") {
    *decode = SnapshotDecode::kEager;
    return true;
  }
  if (name == "lazy") {
    *decode = SnapshotDecode::kLazy;
    return true;
  }
  return false;
}

}  // namespace terids
