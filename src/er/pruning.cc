#include "er/pruning.h"

#include "er/bounds.h"
#include "er/probability.h"
#include "util/status.h"

namespace terids {

PairOutcome EvaluatePair(const ImputedTuple& a,
                         const TopicQuery::TupleTopic& a_topic,
                         const ImputedTuple& b,
                         const TopicQuery::TupleTopic& b_topic, double gamma,
                         double alpha, PruneStats* stats, double* prob_out) {
  TERIDS_CHECK(stats != nullptr);
  ++stats->total_pairs;

  // Theorem 4.1: no instance of either tuple contains a query keyword.
  if (!a_topic.any && !b_topic.any) {
    ++stats->topic_pruned;
    return PairOutcome::kTopicPruned;
  }

  // Theorem 4.2 via Lemmas 4.1 and 4.2.
  if (UbSim(a, b) <= gamma) {
    ++stats->sim_ub_pruned;
    return PairOutcome::kSimUbPruned;
  }

  // Theorem 4.3 via Lemma 4.3.
  if (UbProbPaleyZygmund(a, b, gamma) <= alpha) {
    ++stats->prob_ub_pruned;
    return PairOutcome::kProbUbPruned;
  }

  // Refinement with Theorem 4.4 early termination.
  RefineResult refine =
      RefineProbability(a, a_topic, b, b_topic, gamma, alpha);
  if (refine.early_pruned) {
    ++stats->instance_pruned;
    return PairOutcome::kInstancePruned;
  }
  ++stats->refined;
  if (refine.probability > alpha) {
    ++stats->matched;
    if (prob_out != nullptr) {
      *prob_out = refine.probability;
    }
    return PairOutcome::kMatched;
  }
  return PairOutcome::kRefuted;
}

}  // namespace terids
