#include "tuple/imputed_tuple.h"

#include <algorithm>
#include <unordered_map>

namespace terids {

ImputedTuple ImputedTuple::FromComplete(Record record, const Repository* repo,
                                        int sig_bits) {
  return FromImputation(std::move(record), repo, {}, 1, sig_bits);
}

ImputedTuple ImputedTuple::FromImputation(Record record, const Repository* repo,
                                          std::vector<ImputedAttr> imputed,
                                          int max_instances, int sig_bits) {
  TERIDS_CHECK(repo != nullptr);
  TERIDS_CHECK(max_instances >= 1);
  ImputedTuple tuple;
  tuple.arena_.SetSigBits(sig_bits);
  tuple.base_ = std::move(record);
  tuple.repo_ = repo;
  tuple.imputed_ = std::move(imputed);
  tuple.attr_to_imputed_.assign(tuple.base_.num_attributes(), -1);
  for (size_t k = 0; k < tuple.imputed_.size(); ++k) {
    const ImputedAttr& ia = tuple.imputed_[k];
    TERIDS_CHECK(ia.attr >= 0 && ia.attr < tuple.base_.num_attributes());
    TERIDS_CHECK(tuple.base_.values[ia.attr].missing);
    TERIDS_CHECK(!ia.candidates.empty());
    tuple.attr_to_imputed_[ia.attr] = static_cast<int>(k);
  }
  tuple.MaterializeInstances(max_instances);
  tuple.ComputeAggregates();
  tuple.BuildTokenArena();
  return tuple;
}

void ImputedTuple::MaterializeInstances(int max_instances) {
  // Sort each attribute's candidates by descending probability so the
  // truncated cross product keeps the most likely combinations.
  for (ImputedAttr& ia : imputed_) {
    std::sort(ia.candidates.begin(), ia.candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.prob > b.prob;
              });
  }

  instances_.clear();
  Instance seed;
  seed.choices.assign(imputed_.size(), kInvalidValueId);
  seed.prob = 1.0;
  instances_.push_back(std::move(seed));

  // Expand the cross product one imputed attribute at a time, truncating to
  // the top `max_instances` partial combinations after each expansion. This
  // keeps the expansion cost bounded by O(#attrs * max_instances * #cands).
  for (size_t k = 0; k < imputed_.size(); ++k) {
    std::vector<Instance> next;
    next.reserve(instances_.size() * imputed_[k].candidates.size());
    for (const Instance& partial : instances_) {
      for (const Candidate& cand : imputed_[k].candidates) {
        Instance inst = partial;
        inst.choices[k] = cand.vid;
        inst.prob = partial.prob * cand.prob;
        next.push_back(std::move(inst));
      }
    }
    if (static_cast<int>(next.size()) > max_instances) {
      std::partial_sort(next.begin(), next.begin() + max_instances, next.end(),
                        [](const Instance& a, const Instance& b) {
                          return a.prob > b.prob;
                        });
      next.resize(max_instances);
    }
    instances_ = std::move(next);
  }

  total_prob_ = 0.0;
  for (const Instance& inst : instances_) {
    total_prob_ += inst.prob;
  }
  // Complete tuples carry one instance with probability exactly 1.
  if (imputed_.empty()) {
    TERIDS_CHECK(instances_.size() == 1);
    instances_[0].prob = 1.0;
    total_prob_ = 1.0;
  }
}

const TokenSet& ImputedTuple::instance_tokens(int inst, int attr) const {
  TERIDS_CHECK(inst >= 0 && inst < num_instances());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  const int k = attr_to_imputed_[attr];
  if (k < 0) {
    const AttrValue& v = base_.values[attr];
    return v.missing ? kEmptyTokenSet : v.tokens;
  }
  const ValueId vid = instances_[inst].choices[k];
  return repo_->value_tokens(attr, vid);
}

void ImputedTuple::BuildTokenArena() {
  const int d = num_attributes();
  const int m = num_instances();
  // Exact-or-over hints: fixed ranges hold the base tokens once, the union
  // holds at most the base tokens again, and each imputed attribute
  // materializes at most one range per candidate (instances may choose
  // fewer distinct values).
  size_t token_hint = 2 * base_.TotalTokenCount();
  size_t range_hint = 2 + static_cast<size_t>(d);
  for (const ImputedAttr& ia : imputed_) {
    range_hint += ia.candidates.size();
    for (const Candidate& cand : ia.candidates) {
      token_hint += repo_->value_tokens(ia.attr, cand.vid).size();
    }
  }
  arena_.Reserve(token_hint, range_hint,
                 /*slots=*/static_cast<size_t>(m) * static_cast<size_t>(d));

  // One range per fixed (non-imputed) attribute, shared by every instance;
  // missing-unfilled attributes alias the empty range.
  const uint32_t empty_range = arena_.AddRange({});
  std::vector<uint32_t> fixed_range(d, TokenArena::kInvalidRange);
  for (int x = 0; x < d; ++x) {
    if (attr_to_imputed_[x] >= 0) {
      continue;
    }
    const AttrValue& v = base_.values[x];
    fixed_range[x] =
        v.missing ? empty_range
                  : arena_.AddRange(v.tokens.data(), v.tokens.size());
  }

  // Imputed attributes: one range per distinct chosen ValueId, aliased by
  // every instance that picked it.
  std::vector<std::unordered_map<ValueId, uint32_t>> vid_ranges(
      imputed_.size());
  for (int inst = 0; inst < m; ++inst) {
    for (int x = 0; x < d; ++x) {
      const int k = attr_to_imputed_[x];
      if (k < 0) {
        arena_.PushSlot(fixed_range[x]);
        continue;
      }
      const ValueId vid = instances_[inst].choices[k];
      auto [it, inserted] = vid_ranges[k].emplace(vid, 0);
      if (inserted) {
        const TokenSet& ts = repo_->value_tokens(x, vid);
        it->second = arena_.AddRange(ts.data(), ts.size());
      }
      arena_.PushSlot(it->second);
    }
  }

  // Cached record union T(r): computed once per tuple so the heterogeneous
  // similarity never re-allocates a union per pair (same semantics as the
  // Record overload: one shared definition).
  std::vector<Token> all;
  UnionRecordTokensInto(base_, &all);
  union_range_ = arena_.AddRange(all);
}

double ImputedTuple::instance_pivot_dist(int inst, int attr,
                                         int pivot_idx) const {
  TERIDS_CHECK(inst >= 0 && inst < num_instances());
  const int k = attr_to_imputed_[attr];
  if (k < 0) {
    return base_dists_[attr][pivot_idx];
  }
  return repo_->pivot_distance(attr, pivot_idx, instances_[inst].choices[k]);
}

void ImputedTuple::ComputeAggregates() {
  const int d = num_attributes();
  TERIDS_CHECK(repo_->has_pivots());

  // Cache distances from the non-missing base attributes to every pivot.
  base_dists_.assign(d, {});
  for (int x = 0; x < d; ++x) {
    const int np = repo_->num_pivots(x);
    base_dists_[x].assign(np, 1.0);
    const AttrValue& v = base_.values[x];
    if (!v.missing) {
      for (int a = 0; a < np; ++a) {
        base_dists_[x][a] = JaccardDistance(v.tokens, repo_->pivot_tokens(x, a));
      }
    } else if (attr_to_imputed_[x] < 0) {
      // Unfilled missing attribute: the instance token set is empty; its
      // distance to any non-empty pivot is 1 (and 0 to an empty pivot).
      for (int a = 0; a < np; ++a) {
        base_dists_[x][a] =
            JaccardDistance(kEmptyTokenSet, repo_->pivot_tokens(x, a));
      }
    }
  }

  size_intervals_.assign(d, Interval::Empty());
  dist_intervals_.assign(d, {});
  expected_dists_.assign(d, {});
  const double norm = total_prob_ > 0 ? total_prob_ : 1.0;

  for (int x = 0; x < d; ++x) {
    const int np = repo_->num_pivots(x);
    dist_intervals_[x].assign(np, Interval::Empty());
    expected_dists_[x].assign(np, 0.0);

    const int k = attr_to_imputed_[x];
    if (k < 0) {
      // Single fixed value across all instances.
      const AttrValue& v = base_.values[x];
      const double size = v.missing ? 0.0 : static_cast<double>(v.tokens.size());
      size_intervals_[x].Cover(size);
      for (int a = 0; a < np; ++a) {
        dist_intervals_[x][a].Cover(base_dists_[x][a]);
        expected_dists_[x][a] = base_dists_[x][a];
      }
      continue;
    }
    for (const Instance& inst : instances_) {
      const ValueId vid = inst.choices[k];
      size_intervals_[x].Cover(
          static_cast<double>(repo_->value_tokens(x, vid).size()));
      const double weight = inst.prob / norm;
      for (int a = 0; a < np; ++a) {
        const double dist = repo_->pivot_distance(x, a, vid);
        dist_intervals_[x][a].Cover(dist);
        expected_dists_[x][a] += weight * dist;
      }
    }
  }
}

const Interval& ImputedTuple::token_size_interval(int attr) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  return size_intervals_[attr];
}

const Interval& ImputedTuple::pivot_dist_interval(int attr,
                                                  int pivot_idx) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  TERIDS_CHECK(pivot_idx >= 0 &&
               pivot_idx < static_cast<int>(dist_intervals_[attr].size()));
  return dist_intervals_[attr][pivot_idx];
}

double ImputedTuple::expected_pivot_dist(int attr, int pivot_idx) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  TERIDS_CHECK(pivot_idx >= 0 &&
               pivot_idx < static_cast<int>(expected_dists_[attr].size()));
  return expected_dists_[attr][pivot_idx];
}

}  // namespace terids
