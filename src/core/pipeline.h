#ifndef TERIDS_CORE_PIPELINE_H_
#define TERIDS_CORE_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/arrival_context.h"
#include "core/config.h"
#include "er/match_set.h"
#include "er/pruning.h"
#include "er/topic.h"
#include "eval/cost_breakdown.h"
#include "eval/latency_histogram.h"
#include "exec/refinement_executor.h"
#include "exec/scheduler.h"
#include "imputation/imputer.h"
#include "index/dr_index.h"
#include "repo/repository.h"
#include "rules/rule.h"
#include "stream/batch_queue.h"
#include "stream/overload.h"
#include "stream/sliding_window.h"
#include "stream/stream_driver.h"
#include "synopsis/sharded_er_grid.h"
#include "tuple/record.h"
#include "util/stopwatch.h"

namespace terids {

/// Common interface of the TER-iDS engine and all baselines: an online
/// operator that consumes stream arrivals — one at a time or in
/// timestamp-ordered micro-batches — and continuously maintains the
/// TER-iDS result set ES (Algorithm 1).
class ErPipeline {
 public:
  virtual ~ErPipeline() = default;
  virtual const std::string& name() const = 0;
  virtual ArrivalOutcome ProcessArrival(const Record& r) = 0;

  /// Processes a timestamp-ordered micro-batch (StreamDriver::NextBatch)
  /// and returns one outcome per record, in arrival order. Semantically
  /// identical to calling ProcessArrival on each record in order — the
  /// default does exactly that; PipelineBase overrides it to amortize work
  /// across the batch and refine candidate pairs in parallel.
  virtual std::vector<ArrivalOutcome> ProcessBatch(
      const std::vector<Record>& batch) {
    std::vector<ArrivalOutcome> outcomes;
    outcomes.reserve(batch.size());
    for (const Record& r : batch) {
      outcomes.push_back(ProcessArrival(r));
    }
    return outcomes;
  }

  /// Sink for per-arrival outcomes, invoked strictly in arrival order.
  using OutcomeSink = std::function<void(ArrivalOutcome&&)>;

  /// Drives the pipeline over `driver` until `max_arrivals` records have
  /// been consumed (or the driver runs dry), feeding micro-batches of up to
  /// `batch_size` records and handing every outcome to `sink` in arrival
  /// order. Returns the number of arrivals processed. The default loops
  /// NextBatch -> ProcessBatch synchronously; PipelineBase overrides it
  /// with an async double-buffered ingest loop when
  /// EngineConfig::ingest_queue_depth > 0.
  virtual size_t ProcessStream(StreamDriver* driver, size_t max_arrivals,
                               size_t batch_size, const OutcomeSink& sink);

  virtual const MatchSet& results() const = 0;
  virtual const PruneStats& cumulative_stats() const = 0;

  /// Per-arrival latency histograms (phase + end-to-end) accumulated by
  /// ProcessStream, or null for pipelines that do not account latency.
  /// Read-only; single-threaded access once the stream has completed.
  virtual const LatencyStats* arrival_latencies() const { return nullptr; }
  /// Drains the unified scheduler (if this pipeline runs one) and returns
  /// its per-work-item service-time histograms, clearing them. Empty stats
  /// for pipelines without a scheduler. Call only at stream quiescence.
  virtual LatencyStats ConsumeSchedulerLatencies() { return LatencyStats(); }
  /// Admission-control accounting of the async ProcessStream (DESIGN.md
  /// §13), or null for pipelines without an overload layer. Read only after
  /// the stream has quiesced (ProcessStream returned).
  virtual const ShedStats* shed_stats() const { return nullptr; }
};

/// Shared implementation: sliding windows, optional ER-grid, result-set
/// maintenance with eviction cascade, and the refinement loop, decomposed
/// into four explicit phases (DESIGN.md §6):
///
///   ImputePhase    — probe coordinates, imputation, topic classification
///   CandidatePhase — ER-grid probe or linear window scan
///   RefinePhase    — the Theorem 4.1-4.4 cascade / exact refinement
///   MaintainPhase  — grid + window insertion, eviction cascade
///
/// ProcessArrival runs the phases back-to-back for one record; the batched
/// operator runs impute/candidates/maintain per record in arrival order
/// (so intra-batch pairs and evictions behave exactly as in sequential
/// processing), defers all pair refinement into one batch-wide task set,
/// executes it on the RefinementExecutor, and replays match insertion and
/// result-set eviction in arrival order. ProcessStream additionally
/// pipelines the two stages across batches on an ingest thread when
/// EngineConfig::ingest_queue_depth > 0 (DESIGN.md §7). Output is
/// bit-for-bit identical to sequential processing for every batch_size /
/// refine_threads / grid_shards / ingest_queue_depth setting.
///
/// Subclasses override the imputation hook (and inherit either the
/// grid-based or linear candidate generation depending on configuration).
class PipelineBase : public ErPipeline {
 public:
  /// `num_streams` windows are created. If `use_grid`, candidates come from
  /// the ER-grid with cell-level pruning; otherwise from a linear window
  /// scan. If `use_prunings`, pairs go through Theorems 4.1-4.4 before
  /// refinement; otherwise the exact probability is always computed (the
  /// unpruned baselines).
  PipelineBase(Repository* repo, EngineConfig config, int num_streams,
               bool use_grid, bool use_prunings, std::string name);

  const std::string& name() const override { return name_; }
  ArrivalOutcome ProcessArrival(const Record& r) override;
  std::vector<ArrivalOutcome> ProcessBatch(
      const std::vector<Record>& batch) override;
  /// With `ingest_queue_depth == 0`, the synchronous default loop. With a
  /// positive depth, a two-stage pipeline: an ingest thread pulls batches
  /// from the driver and runs impute/candidates/maintain (the window, grid,
  /// and imputer state is owned by that thread for the duration), pushing
  /// ingested batches through a bounded BatchQueue; the calling thread pops
  /// batches in order, runs deferred refinement + replay, and emits
  /// outcomes — so ingest of batch k+1 overlaps refinement of batch k.
  /// Output is bit-identical to the synchronous loop for every queue depth.
  size_t ProcessStream(StreamDriver* driver, size_t max_arrivals,
                       size_t batch_size, const OutcomeSink& sink) override;
  const MatchSet& results() const override { return matches_; }
  const PruneStats& cumulative_stats() const override { return cum_stats_; }
  const LatencyStats* arrival_latencies() const override { return &latency_; }
  LatencyStats ConsumeSchedulerLatencies() override {
    return sched_ != nullptr ? sched_->ConsumeLatencies() : LatencyStats();
  }
  const ShedStats* shed_stats() const override { return &shed_; }

  /// Live tuples of one stream's window (inspection / tests).
  const SlidingWindow& window(int stream_id) const;

 protected:
  /// Imputation hook: candidate distributions for the missing attributes of
  /// `r`. Default delegates to `imputer_` (must be set by the subclass).
  virtual std::vector<ImputedTuple::ImputedAttr> Impute(const Record& r,
                                                        const ProbeCoords& pc,
                                                        CostBreakdown* cost);

  /// Batch-boundary hook, called once before the first arrival of every
  /// micro-batch (and before each arrival in one-at-a-time processing,
  /// where every arrival is its own batch). Subclasses reset batch-scoped
  /// probes here (e.g. the TER-iDS CDD-memoization signature set).
  virtual void BeginBatch() {}

  // --- Arrival pipeline phases (Algorithm 2) -----------------------------

  /// Lines 8-10: probe coordinates, imputation, topic classification.
  void ImputePhase(ArrivalContext* ctx);
  /// Lines 14-16: candidate generation (grid probe or linear scan); grid
  /// cell-level kills are charged to the arrival's PruneStats.
  void CandidatePhase(ArrivalContext* ctx);
  /// Lines 17-26: sequential pair cascade over the candidates, folding
  /// evaluations into the arrival's stats and the result set immediately.
  void RefinePhase(ArrivalContext* ctx);
  /// Lines 2-7, 11-13: grid + window insertion and the eviction cascade.
  /// With `EngineConfig::maintain_shards > 1` the arrival's grid insert and
  /// the expired tuple's grid removal fan out per shard on the grid's
  /// ThreadPool (DESIGN.md §9); output is identical for every setting.
  /// When `defer_result_eviction`, the expired tuple's MatchSet removal is
  /// left to the caller (batched mode replays it after deferred
  /// refinement, in arrival order) and the tuple is parked in
  /// `ctx->evicted` so deferred refine tasks can still dereference it.
  void MaintainPhase(ArrivalContext* ctx, bool defer_result_eviction);

  Repository* repo_;
  EngineConfig config_;
  /// Unified scheduler (EngineConfig::sched_threads >= 1); null in legacy
  /// per-pool mode. Declared before every member whose methods dispatch
  /// onto it so it is destroyed last (after draining all pending work).
  std::unique_ptr<Scheduler> sched_;
  TopicQuery topic_;
  std::vector<SlidingWindow> windows_;
  std::unique_ptr<ShardedErGrid> grid_;
  std::unique_ptr<Imputer> imputer_;
  MatchSet matches_;
  PruneStats cum_stats_;
  bool use_prunings_;
  std::string name_;

 private:
  /// One micro-batch after the ingest stage: per-arrival contexts with
  /// impute/candidates/maintain done and refinement pending, plus the
  /// ingest-stage wall time (charged into batch_seconds at replay) and the
  /// admission stopwatch started when the batch left the driver (the
  /// end-to-end latency origin for each of its arrivals).
  struct IngestedBatch {
    std::vector<ArrivalContext> ctxs;
    double ingest_wall = 0.0;
    Stopwatch admit;
    /// How the overload layer routed this batch (DESIGN.md §13): the
    /// producer stage stamps it at admission (degrade) or in place on the
    /// queue under the queue mutex (shed_oldest); the consumer stage
    /// dispatches refinement on it.
    ArrivalDisposition disposition = ArrivalDisposition::kProcessed;
  };

  /// Result of one producer step of the async pipeline.
  enum class ProduceResult {
    kContinue,   // a batch was admitted (or shed); keep producing
    kExhausted,  // stream dry or max_arrivals reached; Close() the queue
    kCancelled,  // consumer cancelled the handoff; stop silently
  };

  std::vector<const WindowTuple*> LinearCandidates(const WindowTuple& probe,
                                                   PruneStats* stats) const;
  /// Folds one pair evaluation into the arrival's outcome and, on a match,
  /// the result set (the single place MatchPairs are constructed).
  void ApplyEvaluation(ArrivalContext* ctx, const WindowTuple* cand,
                       const PairEvaluation& eval);
  /// Ingest stage: BeginBatch, then impute/candidates/maintain per record
  /// in arrival order with refinement deferred and result-set eviction
  /// parked in each context. Touches windows_/grid_/imputer_ only — under
  /// async ingest it runs on the ingest thread.
  void IngestBatch(const std::vector<Record>& batch,
                   std::vector<ArrivalContext>* ctxs);
  /// Refine stage: builds the batch-wide task set, runs it on the
  /// RefinementExecutor, and replays match insertion, stats accumulation,
  /// and deferred result-set evictions in arrival order. Touches matches_
  /// and cum_stats_ only — under async ingest it runs on the calling
  /// thread, concurrently with the next batch's ingest.
  void RefineAndReplay(std::vector<ArrivalContext>* ctxs);
  /// Shed replay (disposition kShed, DESIGN.md §13): no pair is evaluated —
  /// candidate pairs are counted into ShedStats — but the batch's deferred
  /// result-set evictions still run and its stats still accumulate, so the
  /// window/grid/result-set invariants survive the shed. Consumer stage.
  void ReplayShed(std::vector<ArrivalContext>* ctxs);
  /// Degraded replay (disposition kDegraded): every candidate pair goes
  /// through the bound-only EvaluatePairBounds inline (cheap enough that
  /// fan-out would cost more than it saves); decided pairs fold in exactly
  /// like full evaluations, undecided ones are recorded deferred. Evictions
  /// and stats replay as in RefineAndReplay. Consumer stage.
  void RefineAndReplayDegraded(std::vector<ArrivalContext>* ctxs);
  /// The queue-pressure signal (DESIGN.md §13): handoff-queue occupancy at
  /// capacity, or the scheduler's unclaimed non-ingest backlog exceeding
  /// kSchedBacklogPressureFactor x the queue capacity. Producer stage.
  bool PressureHigh(BatchQueue<IngestedBatch>* queue);
  /// One producer step of the async pipeline: pulls the next micro-batch
  /// from the driver, applies config_.overload_policy at admission, and
  /// hands the ingested batch to `queue`. Shared by the dedicated ingest
  /// thread and the scheduler's kIngest chain so both paths shed, degrade,
  /// and account identically. Producer stage: touches windows_/grid_/
  /// imputer_/driver and the producer fields of shed_.
  ProduceResult ProduceOne(StreamDriver* driver, size_t max_arrivals,
                           size_t batch_size,
                           BatchQueue<IngestedBatch>* queue, size_t* ingested);
  /// The consumer loop shared by both async paths: pops batches until the
  /// queue closes, dispatches refinement on each batch's disposition, and
  /// emits outcomes in arrival order with identical batch/queue-wait/
  /// latency accounting in both modes. Returns arrivals emitted.
  size_t DrainQueue(BatchQueue<IngestedBatch>* queue, const OutcomeSink& sink);
  /// Lazily constructed parallel refiner: a private pool of
  /// config_.refine_threads workers in legacy mode, a scheduler-dispatching
  /// executor in unified mode (still inline when refine_threads <= 1).
  RefinementExecutor* refiner();
  /// Folds one emitted arrival into the per-arrival latency histograms:
  /// phase latencies from the outcome's cost fields, end-to-end from
  /// `e2e_seconds` (batch admission to emission). Caller-thread only.
  void RecordArrivalLatency(const CostBreakdown& cost, double e2e_seconds);
  /// The two pipelined ProcessStream bodies behind the dispatch in
  /// ProcessStream: the legacy dedicated ingest thread and the unified
  /// scheduler's self-resubmitting kIngest chain (DESIGN.md §7, §10).
  size_t ProcessStreamThreaded(StreamDriver* driver, size_t max_arrivals,
                               size_t batch_size, const OutcomeSink& sink);
  size_t ProcessStreamScheduled(StreamDriver* driver, size_t max_arrivals,
                                size_t batch_size, const OutcomeSink& sink);

  std::unique_ptr<RefinementExecutor> refiner_;
  /// Per-arrival latency accounting, updated at emission on the consumer
  /// (calling) thread only.
  LatencyStats latency_;
  /// Overload accounting (DESIGN.md §13). Field ownership is split by
  /// pipeline stage exactly as documented on ShedStats — admission fields
  /// belong to the producer, refinement fields to the consumer — and
  /// readers wait for stream quiescence, so no lock is needed.
  ShedStats shed_;
};

/// Constructs one of the six evaluated pipelines. The rule vectors are
/// copied into the pipeline (each pipeline owns its rules). `repo` must
/// outlive the pipeline and have pivots attached.
std::unique_ptr<ErPipeline> MakePipeline(PipelineKind kind, Repository* repo,
                                         const EngineConfig& config,
                                         int num_streams,
                                         const std::vector<CddRule>& cdds,
                                         const std::vector<CddRule>& dds,
                                         const std::vector<CddRule>& editing);

}  // namespace terids

#endif  // TERIDS_CORE_PIPELINE_H_
