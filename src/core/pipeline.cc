#include "core/pipeline.h"

#include <algorithm>
#include <array>
#include <thread>
#include <utility>

#include "er/probability.h"
#include "text/similarity_kernels.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace terids {

size_t ErPipeline::ProcessStream(StreamDriver* driver, size_t max_arrivals,
                                 size_t batch_size, const OutcomeSink& sink) {
  TERIDS_CHECK(driver != nullptr);
  TERIDS_CHECK(batch_size >= 1);
  size_t processed = 0;
  while (processed < max_arrivals && driver->HasNext()) {
    const std::vector<Record> batch =
        driver->NextBatch(std::min(batch_size, max_arrivals - processed));
    for (ArrivalOutcome& outcome : ProcessBatch(batch)) {
      sink(std::move(outcome));
      ++processed;
    }
  }
  return processed;
}

PipelineBase::PipelineBase(Repository* repo, EngineConfig config,
                           int num_streams, bool use_grid, bool use_prunings,
                           std::string name)
    : repo_(repo),
      config_(std::move(config)),
      topic_(repo->dict(), config_.keywords),
      use_prunings_(use_prunings),
      name_(std::move(name)) {
  TERIDS_CHECK(repo != nullptr);
  TERIDS_CHECK(repo->has_pivots());
  TERIDS_CHECK(num_streams >= 2);
  TERIDS_CHECK(config_.batch_size >= 1);
  TERIDS_CHECK(config_.refine_threads >= 1);
  TERIDS_CHECK(config_.grid_shards >= 1);
  TERIDS_CHECK(config_.ingest_queue_depth >= 0);
  TERIDS_CHECK(config_.maintain_shards >= 1);
  TERIDS_CHECK(config_.sched_threads >= 0);
  TERIDS_CHECK(ValidSigBits(config_.sig_width));
  if (config_.sched_threads >= 1) {
    sched_ = std::make_unique<Scheduler>(config_.sched_threads);
  }
  windows_.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    windows_.emplace_back(config_.window_size);
  }
  if (use_grid) {
    grid_ = std::make_unique<ShardedErGrid>(repo->num_attributes(),
                                            config_.cell_width,
                                            config_.grid_shards, sched_.get());
  }
}

const SlidingWindow& PipelineBase::window(int stream_id) const {
  TERIDS_CHECK(stream_id >= 0 &&
               stream_id < static_cast<int>(windows_.size()));
  return windows_[stream_id];
}

std::vector<ImputedTuple::ImputedAttr> PipelineBase::Impute(
    const Record& r, const ProbeCoords& pc, CostBreakdown* cost) {
  (void)pc;
  TERIDS_CHECK(imputer_ != nullptr);
  return imputer_->ImputeRecord(r, cost);
}

std::vector<const WindowTuple*> PipelineBase::LinearCandidates(
    const WindowTuple& probe, PruneStats* stats) const {
  (void)stats;
  std::vector<const WindowTuple*> out;
  for (size_t s = 0; s < windows_.size(); ++s) {
    if (static_cast<int>(s) == probe.stream_id()) {
      continue;
    }
    for (const auto& wt : windows_[s].tuples()) {
      out.push_back(wt.get());
    }
  }
  return out;
}

RefinementExecutor* PipelineBase::refiner() {
  if (refiner_ == nullptr) {
    if (sched_ != nullptr && config_.refine_threads > 1) {
      // Unified mode: refinement fans out as kRefine work items on the
      // shared workers. refine_threads still gates *whether* the phase fans
      // out; the width is the scheduler's.
      refiner_ = std::make_unique<RefinementExecutor>(sched_.get());
    } else {
      refiner_ = std::make_unique<RefinementExecutor>(config_.refine_threads);
    }
  }
  return refiner_.get();
}

// --- Phases ----------------------------------------------------------------

void PipelineBase::ImputePhase(ArrivalContext* ctx) {
  const Record& r = ctx->record;
  TERIDS_CHECK(r.stream_id >= 0 &&
               r.stream_id < static_cast<int>(windows_.size()));
  ctx->out.timestamp = r.timestamp;
  if (imputer_ != nullptr) {
    imputer_->OnArrival(r);
  }
  const ProbeCoords pc = ProbeCoords::Compute(r, *repo_);
  if (r.IsComplete()) {
    ctx->tuple = std::make_shared<const ImputedTuple>(
        ImputedTuple::FromComplete(r, repo_, config_.sig_width));
  } else {
    std::vector<ImputedTuple::ImputedAttr> imputed =
        Impute(r, pc, &ctx->out.cost);
    ctx->tuple = std::make_shared<const ImputedTuple>(
        ImputedTuple::FromImputation(r, repo_, std::move(imputed),
                                     config_.max_instances,
                                     config_.sig_width));
  }
  ctx->wt = std::make_shared<WindowTuple>();
  ctx->wt->tuple = ctx->tuple;
  ctx->wt->topic = topic_.Classify(*ctx->tuple);
}

void PipelineBase::CandidatePhase(ArrivalContext* ctx) {
  ScopedTimer timer(&ctx->out.cost.candidate_seconds);
  if (grid_ != nullptr) {
    const bool topic_constrained = !topic_.IsUnconstrained();
    ShardedErGrid::CandidateResult grid_result =
        grid_->Candidates(*ctx->wt, config_.gamma, topic_constrained);
    ctx->candidates = std::move(grid_result.candidates);
    // Grid-level prunes are Theorem 4.1 / Theorem 4.2 kills; account for
    // them in this arrival's pair statistics.
    ctx->out.stats.total_pairs +=
        grid_result.topic_pruned + grid_result.sim_pruned;
    ctx->out.stats.topic_pruned += grid_result.topic_pruned;
    ctx->out.stats.sim_ub_pruned += grid_result.sim_pruned;
  } else {
    ctx->candidates = LinearCandidates(*ctx->wt, &ctx->out.stats);
  }
}

void PipelineBase::ApplyEvaluation(ArrivalContext* ctx,
                                   const WindowTuple* cand,
                                   const PairEvaluation& eval) {
  ctx->out.stats.Record(eval.outcome);
  ctx->out.stats.sig_probes += eval.sig_probes;
  ctx->out.stats.sig_saturated += eval.sig_saturated;
  ctx->out.stats.sig_rejects += eval.sig_rejects;
  if (!eval.matched()) {
    return;
  }
  const int64_t rid = ctx->tuple->rid();
  matches_.Add(rid, cand->rid(), eval.probability);
  MatchPair pair;
  pair.rid_a = std::min(rid, cand->rid());
  pair.rid_b = std::max(rid, cand->rid());
  pair.probability = eval.probability;
  ctx->out.new_matches.push_back(pair);
}

void PipelineBase::RefinePhase(ArrivalContext* ctx) {
  ScopedTimer timer(&ctx->out.cost.refine_seconds);
  if (config_.refine_threads <= 1) {
    // Sequential fast path: no task materialization, no dispatch — the
    // classic per-candidate loop.
    for (const WindowTuple* cand : ctx->candidates) {
      RefinementExecutor::Task task;
      task.probe = ctx->tuple.get();
      task.probe_topic = &ctx->wt->topic;
      task.candidate = cand;
      const PairEvaluation eval = RefinementExecutor::Evaluate(
          task, use_prunings_, config_.signature_filter, config_.gamma,
          config_.alpha);
      ApplyEvaluation(ctx, cand, eval);
    }
    return;
  }
  std::vector<RefinementExecutor::Task> tasks;
  tasks.reserve(ctx->candidates.size());
  for (const WindowTuple* cand : ctx->candidates) {
    tasks.push_back({ctx->tuple.get(), &ctx->wt->topic, cand});
  }
  std::vector<PairEvaluation> evals;
  refiner()->Run(tasks, use_prunings_, config_.signature_filter,
                 config_.gamma, config_.alpha, &evals);
  for (size_t i = 0; i < ctx->candidates.size(); ++i) {
    ApplyEvaluation(ctx, ctx->candidates[i], evals[i]);
  }
}

void PipelineBase::MaintainPhase(ArrivalContext* ctx,
                                 bool defer_result_eviction) {
  ScopedTimer timer(&ctx->out.cost.maintain_seconds);
  // The window push decides the eviction first so the arrival's grid
  // insert and the expired tuple's grid removal can run as one fan-out
  // (per-shard tasks on the grid pool when maintain_shards > 1); insert
  // and removal touch independent tuples, so the order swap with the
  // original insert-push-remove sequence cannot change the grid.
  std::shared_ptr<WindowTuple> evicted =
      windows_[ctx->record.stream_id].Push(ctx->wt);
  if (grid_ != nullptr) {
    grid_->Maintain(ctx->wt.get(), evicted.get(),
                    /*parallel=*/config_.maintain_shards > 1);
  }
  if (evicted != nullptr) {
    if (!defer_result_eviction) {
      matches_.RemoveAllWith(evicted->rid());
    }
    if (imputer_ != nullptr) {
      imputer_->OnEvict(evicted->tuple->base());
    }
    ctx->evicted = std::move(evicted);
  }
}

// --- Batched operator stages -----------------------------------------------

void PipelineBase::IngestBatch(const std::vector<Record>& batch,
                               std::vector<ArrivalContext>* ctxs) {
  BeginBatch();
  ctxs->reserve(ctxs->size() + batch.size());
  // Impute / candidates / maintain per arrival, in arrival order, with
  // refinement deferred: the window, grid, and imputer state each batch
  // arrival observes is exactly what sequential processing would have left
  // behind (intra-batch pairs included), while the expensive pair cascade
  // is pulled out into one batch-wide parallel task set.
  for (const Record& r : batch) {
    ctxs->emplace_back(r);
    ArrivalContext& ctx = ctxs->back();
    ImputePhase(&ctx);
    {
      ScopedTimer timer(&ctx.out.cost.er_seconds);
      CandidatePhase(&ctx);
    }
    MaintainPhase(&ctx, /*defer_result_eviction=*/true);
  }
}

void PipelineBase::RefineAndReplay(std::vector<ArrivalContext>* ctxs) {
  size_t total_tasks = 0;
  for (const ArrivalContext& ctx : *ctxs) {
    total_tasks += ctx.candidates.size();
  }
  std::vector<RefinementExecutor::Task> tasks;
  tasks.reserve(total_tasks);
  for (ArrivalContext& ctx : *ctxs) {
    for (const WindowTuple* cand : ctx.candidates) {
      tasks.push_back({ctx.tuple.get(), &ctx.wt->topic, cand});
    }
  }
  double refine_wall = 0.0;
  std::vector<PairEvaluation> evals;
  {
    ScopedTimer timer(&refine_wall);
    refiner()->Run(tasks, use_prunings_, config_.signature_filter,
                   config_.gamma, config_.alpha, &evals);
  }

  // Replay in arrival order: evaluations fold into each arrival's stats
  // and the result set in candidate order, then the arrival's deferred
  // result-set eviction runs — the exact sequential interleaving of match
  // insertion and expiration.
  size_t cursor = 0;
  for (ArrivalContext& ctx : *ctxs) {
    for (const WindowTuple* cand : ctx.candidates) {
      ApplyEvaluation(&ctx, cand, evals[cursor++]);
    }
    cum_stats_.Add(ctx.out.stats);
    if (ctx.evicted != nullptr) {
      matches_.RemoveAllWith(ctx.evicted->rid());
    }
    const double share =
        total_tasks == 0
            ? 0.0
            : refine_wall * static_cast<double>(ctx.candidates.size()) /
                  static_cast<double>(total_tasks);
    ctx.out.cost.refine_seconds += share;
    ctx.out.cost.er_seconds += share;
  }
}

// --- Overload layer (DESIGN.md §13) ----------------------------------------

void PipelineBase::ReplayShed(std::vector<ArrivalContext>* ctxs) {
  for (ArrivalContext& ctx : *ctxs) {
    shed_.shed_arrivals += 1;
    shed_.shed_pairs += static_cast<int64_t>(ctx.candidates.size());
    shed_.shed_by_phase[static_cast<int>(ExecPhase::kRefine)] +=
        static_cast<int64_t>(ctx.candidates.size());
    // The grid-level kills already folded into the arrival's stats stand
    // (they happened at ingest); the surviving candidate pairs are counted
    // shed, never evaluated. The deferred result-set eviction still
    // replays, so the window/grid/result-set invariants hold exactly as if
    // the batch had refined — only its verdicts are missing.
    cum_stats_.Add(ctx.out.stats);
    if (ctx.evicted != nullptr) {
      matches_.RemoveAllWith(ctx.evicted->rid());
    }
  }
}

void PipelineBase::RefineAndReplayDegraded(std::vector<ArrivalContext>* ctxs) {
  // Bound-only verdicts are O(d · sig_words) per pair — cheaper than the
  // dispatch that parallel refinement would cost — so the degraded replay
  // stays inline on the consumer thread, in arrival order.
  for (ArrivalContext& ctx : *ctxs) {
    for (const WindowTuple* cand : ctx.candidates) {
      const PairEvaluation eval =
          EvaluatePairBounds(*ctx.tuple, ctx.wt->topic, *cand->tuple,
                             cand->topic, config_.gamma, config_.alpha);
      ApplyEvaluation(&ctx, cand, eval);
      if (eval.outcome == PairOutcome::kDeferred) {
        shed_.deferred_pairs += 1;
        shed_.shed_by_phase[static_cast<int>(ExecPhase::kRefine)] += 1;
      }
    }
    cum_stats_.Add(ctx.out.stats);
    if (ctx.evicted != nullptr) {
      matches_.RemoveAllWith(ctx.evicted->rid());
    }
  }
}

bool PipelineBase::PressureHigh(BatchQueue<IngestedBatch>* queue) {
  if (queue->size() >= queue->capacity()) {
    return true;
  }
  if (sched_ != nullptr) {
    // Second signal: the handoff has room but the consumer's fan-outs are
    // drowning the shared workers — unclaimed non-ingest tasks piled up
    // past a multiple of the queue bound.
    const std::array<int64_t, kNumExecPhases> backlog =
        sched_->ApproxBacklogByPhase();
    int64_t pending = 0;
    for (int p = 0; p < kNumExecPhases; ++p) {
      if (p != static_cast<int>(ExecPhase::kIngest)) {
        pending += backlog[p];
      }
    }
    if (pending > kSchedBacklogPressureFactor *
                      static_cast<int64_t>(queue->capacity())) {
      return true;
    }
  }
  return false;
}

PipelineBase::ProduceResult PipelineBase::ProduceOne(
    StreamDriver* driver, size_t max_arrivals, size_t batch_size,
    BatchQueue<IngestedBatch>* queue, size_t* ingested) {
  if (*ingested >= max_arrivals || !driver->HasNext()) {
    return ProduceResult::kExhausted;
  }
  const std::vector<Record> batch =
      driver->NextBatch(std::min(batch_size, max_arrivals - *ingested));
  if (batch.empty()) {
    return ProduceResult::kExhausted;
  }
  *ingested += batch.size();
  shed_.offered_arrivals += static_cast<int64_t>(batch.size());

  const OverloadPolicy policy = config_.overload_policy;
  // shed_newest decides *before* ingestion: a shed batch must never touch
  // the window, grid, or imputer, so the engine state equals a run over the
  // admitted subsequence and the policy needs no compensating replay.
  if (policy == OverloadPolicy::kShedNewest && PressureHigh(queue)) {
    shed_.pressure_events += 1;
    shed_.shed_batches += 1;
    shed_.shed_arrivals += static_cast<int64_t>(batch.size());
    shed_.shed_by_phase[static_cast<int>(ExecPhase::kIngest)] +=
        static_cast<int64_t>(batch.size());
    return ProduceResult::kContinue;
  }

  IngestedBatch ib;
  ib.admit.Restart();
  {
    ScopedTimer timer(&ib.ingest_wall);
    IngestBatch(batch, &ib.ctxs);
  }
  shed_.admitted_arrivals += static_cast<int64_t>(batch.size());

  if (policy == OverloadPolicy::kShedOldest) {
    // Sacrifice the longest-waiting queued batch: mark it shed in place,
    // atomically against a concurrent Pop. The following bounded Push then
    // blocks at most for one (cheap) shed replay. Re-marking an already
    // shed front batch would double-count, hence the disposition guard.
    bool marked = false;
    queue->MutateOldestIfFull([&](IngestedBatch* oldest) {
      if (oldest->disposition == ArrivalDisposition::kProcessed) {
        oldest->disposition = ArrivalDisposition::kShed;
        marked = true;
      }
    });
    if (marked) {
      shed_.pressure_events += 1;
      shed_.shed_batches += 1;
    }
  } else if (policy == OverloadPolicy::kDegrade && PressureHigh(queue)) {
    shed_.pressure_events += 1;
    ib.disposition = ArrivalDisposition::kDegraded;
    shed_.degraded_batches += 1;
    shed_.degraded_arrivals += static_cast<int64_t>(ib.ctxs.size());
    // Admission must never block under degradation: the overshoot rides
    // past the capacity bound and the consumer absorbs it bound-only.
    return queue->ForcePush(std::move(ib)) ? ProduceResult::kContinue
                                           : ProduceResult::kCancelled;
  }

  double block_wall = 0.0;
  bool pushed;
  {
    ScopedTimer timer(&block_wall);
    pushed = queue->Push(std::move(ib));
  }
  shed_.admit_block_seconds += block_wall;
  return pushed ? ProduceResult::kContinue : ProduceResult::kCancelled;
}

size_t PipelineBase::DrainQueue(BatchQueue<IngestedBatch>* queue,
                                const OutcomeSink& sink) {
  size_t processed = 0;
  IngestedBatch ib;
  while (true) {
    double wait_wall = 0.0;
    bool popped;
    {
      ScopedTimer timer(&wait_wall);
      popped = queue->Pop(&ib);
    }
    if (!popped) {
      break;
    }
    double refine_wall = 0.0;
    {
      ScopedTimer timer(&refine_wall);
      switch (ib.disposition) {
        case ArrivalDisposition::kProcessed:
          RefineAndReplay(&ib.ctxs);
          break;
        case ArrivalDisposition::kShed:
          ReplayShed(&ib.ctxs);
          break;
        case ArrivalDisposition::kDegraded:
          RefineAndReplayDegraded(&ib.ctxs);
          break;
      }
    }
    const double n = static_cast<double>(ib.ctxs.size());
    for (ArrivalContext& ctx : ib.ctxs) {
      // Stage walls overlap across batches, so their sum upper-bounds the
      // wall attribution of this batch; queue_wait isolates how long
      // refinement starved for ingest — charged here, once, so the
      // threaded and scheduled paths account it identically.
      ctx.out.disposition = ib.disposition;
      ctx.out.cost.batch_seconds += (ib.ingest_wall + refine_wall) / n;
      ctx.out.cost.queue_wait_seconds += wait_wall / n;
      RecordArrivalLatency(ctx.out.cost, ib.admit.ElapsedSeconds());
      sink(std::move(ctx.out));
      ++processed;
    }
  }
  return processed;
}

// --- Operators -------------------------------------------------------------

ArrivalOutcome PipelineBase::ProcessArrival(const Record& r) {
  BeginBatch();
  ArrivalContext ctx(r);
  ImputePhase(&ctx);
  {
    ScopedTimer timer(&ctx.out.cost.er_seconds);
    CandidatePhase(&ctx);
    RefinePhase(&ctx);
  }
  cum_stats_.Add(ctx.out.stats);
  MaintainPhase(&ctx, /*defer_result_eviction=*/false);
  return std::move(ctx.out);
}

std::vector<ArrivalOutcome> PipelineBase::ProcessBatch(
    const std::vector<Record>& batch) {
  std::vector<ArrivalOutcome> outcomes;
  outcomes.reserve(batch.size());
  if (batch.size() <= 1) {
    for (const Record& r : batch) {
      outcomes.push_back(ProcessArrival(r));
    }
    return outcomes;
  }

  double batch_wall = 0.0;
  std::vector<ArrivalContext> ctxs;
  {
    ScopedTimer batch_timer(&batch_wall);
    IngestBatch(batch, &ctxs);
    RefineAndReplay(&ctxs);
  }
  for (ArrivalContext& ctx : ctxs) {
    ctx.out.cost.batch_seconds +=
        batch_wall / static_cast<double>(batch.size());
    outcomes.push_back(std::move(ctx.out));
  }
  return outcomes;
}

void PipelineBase::RecordArrivalLatency(const CostBreakdown& cost,
                                        double e2e_seconds) {
  latency_.of(ExecPhase::kIngest)
      .Record(cost.cdd_select_seconds + cost.impute_seconds);
  latency_.of(ExecPhase::kCandidate).Record(cost.candidate_seconds);
  latency_.of(ExecPhase::kRefine).Record(cost.refine_seconds);
  latency_.of(ExecPhase::kMaintain).Record(cost.maintain_seconds);
  latency_.end_to_end.Record(e2e_seconds);
}

size_t PipelineBase::ProcessStream(StreamDriver* driver, size_t max_arrivals,
                                   size_t batch_size,
                                   const OutcomeSink& sink) {
  TERIDS_CHECK(driver != nullptr);
  TERIDS_CHECK(batch_size >= 1);
  // An imputer that writes state refinement reads (the constraint-based
  // baseline registers stream values into repository domains) must not
  // overlap the two stages; its pipeline stays synchronous at any depth.
  const bool async_safe =
      imputer_ == nullptr || !imputer_->MutatesRefinementState();
  if (config_.ingest_queue_depth <= 0 || !async_safe) {
    // Fully synchronous: the default alternating loop, bit-identical to the
    // pre-async operator (including the one-at-a-time path for batch 1),
    // with per-arrival latency stamped at emission.
    size_t processed = 0;
    while (processed < max_arrivals && driver->HasNext()) {
      const std::vector<Record> batch =
          driver->NextBatch(std::min(batch_size, max_arrivals - processed));
      Stopwatch admit;
      for (ArrivalOutcome& outcome : ProcessBatch(batch)) {
        RecordArrivalLatency(outcome.cost, admit.ElapsedSeconds());
        sink(std::move(outcome));
        ++processed;
      }
    }
    return processed;
  }
  return sched_ != nullptr
             ? ProcessStreamScheduled(driver, max_arrivals, batch_size, sink)
             : ProcessStreamThreaded(driver, max_arrivals, batch_size, sink);
}

size_t PipelineBase::ProcessStreamThreaded(StreamDriver* driver,
                                           size_t max_arrivals,
                                           size_t batch_size,
                                           const OutcomeSink& sink) {
  // Two-stage pipeline over a bounded SPSC handoff. Stage ownership while
  // the ingest thread runs: windows_/grid_/imputer_/driver belong to the
  // ingest thread, matches_/cum_stats_/refiner belong to this thread; the
  // queue's mutex provides the happens-before edge at each batch handoff,
  // and tuples a later batch evicts stay alive through that batch's
  // contexts until its own (later) replay.
  BatchQueue<IngestedBatch> queue(
      static_cast<size_t>(config_.ingest_queue_depth));
  std::thread ingest([&] {
    size_t ingested = 0;
    while (true) {
      const ProduceResult result =
          ProduceOne(driver, max_arrivals, batch_size, &queue, &ingested);
      if (result == ProduceResult::kCancelled) {
        return;  // Consumer cancelled (threw); stop ingesting.
      }
      if (result == ProduceResult::kExhausted) {
        queue.Close();
        return;
      }
    }
  });

  size_t processed = 0;
  try {
    processed = DrainQueue(&queue, sink);
  } catch (...) {
    // A throwing sink (or refinement) must not unwind past a joinable
    // ingest thread blocked in Push on this stack frame's queue: cancel
    // the handoff (unblocks Push, which returns false and stops the
    // producer within one batch), join, then rethrow.
    queue.Cancel();
    ingest.join();
    throw;
  }
  ingest.join();
  return processed;
}

size_t PipelineBase::ProcessStreamScheduled(StreamDriver* driver,
                                            size_t max_arrivals,
                                            size_t batch_size,
                                            const OutcomeSink& sink) {
  // Same two-stage split and ownership discipline as the threaded path,
  // but the ingest stage runs as a chain of self-resubmitting kIngest work
  // items on the shared scheduler (DESIGN.md §10) instead of owning a
  // thread: each item ingests one batch, pushes it through the bounded
  // handoff, and submits the next link. At most one link exists at a time,
  // so driver/windows_/grid_/imputer_ keep a single logical owner (the
  // scheduler's queue mutex orders consecutive links); the handoff queue's
  // mutex orders ingest against replay exactly as before. The chain link is
  // the only scheduler work item that may block (in Push), and the thread
  // it waits on — this consumer — makes progress without free workers
  // because its own fan-outs self-drain.
  BatchQueue<IngestedBatch> queue(
      static_cast<size_t>(config_.ingest_queue_depth));
  // Chain-completion latch (rank kPipelineChain: acquired alone, never
  // nested with the queue's or the scheduler's mutex — a chain link holds
  // no lock when it runs).
  Mutex chain_mu(lock_rank::kPipelineChain);
  CondVar chain_cv;
  bool chain_done = false;
  size_t ingested = 0;
  const auto finish_chain = [&] {
    MutexLock lock(&chain_mu);
    chain_done = true;
    chain_cv.NotifyAll();
  };
  std::function<void()> link;
  link = [&] {
    const ProduceResult result =
        ProduceOne(driver, max_arrivals, batch_size, &queue, &ingested);
    if (result == ProduceResult::kContinue) {
      sched_->Submit(ExecPhase::kIngest, link);
      return;
    }
    if (result == ProduceResult::kExhausted) {
      queue.Close();
    }
    // kExhausted or kCancelled (consumer threw): the chain ends here.
    finish_chain();
  };
  sched_->Submit(ExecPhase::kIngest, link);

  size_t processed = 0;
  try {
    processed = DrainQueue(&queue, sink);
  } catch (...) {
    // `queue`, `link`, and the chain flags live on this frame, so no chain
    // link may outlive it: cancel the handoff (a blocked or later Push
    // returns false, ending the chain within one link) and wait for the
    // final link to retire before unwinding.
    queue.Cancel();
    MutexLock lock(&chain_mu);
    while (!chain_done) {
      chain_cv.Wait(&chain_mu);
    }
    throw;
  }
  MutexLock lock(&chain_mu);
  while (!chain_done) {
    chain_cv.Wait(&chain_mu);
  }
  return processed;
}

}  // namespace terids
