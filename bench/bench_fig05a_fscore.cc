// Figure 5(a): F-score of TER-iDS vs DD+ER, er+ER, con+ER per dataset.

#include <cstdio>

#include "bench_common.h"
#include "datagen/profiles.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  PrintHeader("Figure 5(a)", "F-score vs real data sets", base);
  std::printf("%-10s", "dataset");
  for (PipelineKind kind : AccuracyPipelines()) {
    std::printf(" %10s", PipelineKindName(kind));
  }
  std::printf(" %8s\n", "truth");
  for (const std::string& name : AllDatasets()) {
    Experiment experiment(ProfileByName(name), BaseParams(name));
    std::printf("%-10s", name.c_str());
    for (PipelineKind kind : AccuracyPipelines()) {
      PipelineRun run = experiment.Run(kind);
      std::printf(" %10.4f", run.accuracy.f_score);
      std::fflush(stdout);
    }
    std::printf(" %8zu\n", experiment.effective_truth().size());
  }
  std::printf(
      "\npaper shape: TER-iDS highest (94.62-97.34%%), then DD+ER, er+ER,\n"
      "con+ER lowest. Ij+GER and CDD+ER equal TER-iDS by construction.\n");
  return 0;
}
