#ifndef TERIDS_UTIL_HASH_H_
#define TERIDS_UTIL_HASH_H_

#include <cstdint>

namespace terids {

/// 64-bit FNV-1a, the one non-cryptographic hash used across the library
/// (domain value interning, ER-grid cell keys, CDD determinant
/// signatures). Callers fold values with Fnv1aMix starting from
/// kFnv1aOffsetBasis so every site stays bit-compatible.
inline constexpr uint64_t kFnv1aOffsetBasis = 1469598103934665603ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

inline uint64_t Fnv1aMix(uint64_t h, uint64_t value) {
  h ^= value;
  h *= kFnv1aPrime;
  return h;
}

}  // namespace terids

#endif  // TERIDS_UTIL_HASH_H_
