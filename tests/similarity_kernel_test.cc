// Property tests of the flat similarity kernels (DESIGN.md §9):
//
// 1. The three intersection algorithms — the seed linear merge (reproduced
//    here verbatim as the oracle), IntersectLinear, and IntersectGallop —
//    agree exactly on randomized token sets covering empty, duplicated, and
//    heavily skewed inputs.
// 2. The 64-bit signature bound is sound: SigIntersectionUpperBound is
//    always >= the exact intersection size and SigJaccardUpperBound >= the
//    exact Jaccard similarity, so the signature filter can only skip
//    merges, never flip a verdict.
// 3. TokenArena views are faithful: every (instance, attribute) slot of an
//    ImputedTuple holds exactly instance_tokens(), with the matching
//    signature, and InstanceSimilarityExceeds equals
//    InstanceSimilarity > gamma for both filter settings.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "er/similarity.h"
#include "text/similarity_kernels.h"
#include "text/token_arena.h"
#include "text/token_set.h"
#include "tuple/imputed_tuple.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

/// The seed implementation of TokenSet::IntersectionSize (PR-1 .. PR-4),
/// kept verbatim as the ground-truth oracle.
size_t SeedIntersectionSize(const std::vector<Token>& a,
                            const std::vector<Token>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Random (possibly empty / duplicated) token list; FromTokens handles the
/// sort + dedup exactly as production token sets do.
std::vector<Token> RandomTokens(std::mt19937_64* rng, size_t max_len,
                                Token universe) {
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<Token> tok_dist(0, universe);
  std::uniform_int_distribution<int> dup_dist(0, 3);
  const size_t len = len_dist(*rng);
  std::vector<Token> tokens;
  tokens.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    const Token t = tok_dist(*rng);
    tokens.push_back(t);
    if (dup_dist(*rng) == 0) {
      tokens.push_back(t);  // force duplicates pre-dedup
    }
  }
  return tokens;
}

TEST(SimilarityKernelTest, IntersectionAlgorithmsAgreeWithSeedOracle) {
  std::mt19937_64 rng(20210620);
  // Size pairs stressing both regimes: balanced (linear merge) and heavily
  // skewed (gallop), including empty sides.
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {0, 0},  {0, 40},  {1, 1},    {8, 8},     {5, 400},
      {3, 50}, {64, 64}, {2, 1000}, {300, 300}, {1, 2000}};
  for (const auto& [la, lb] : shapes) {
    for (int rep = 0; rep < 50; ++rep) {
      // Small universe => dense overlap; large => sparse.
      const Token universe = rep % 2 == 0 ? 64 : 100000;
      const TokenSet a = TokenSet::FromTokens(RandomTokens(&rng, la, universe));
      const TokenSet b = TokenSet::FromTokens(RandomTokens(&rng, lb, universe));
      const size_t seed = SeedIntersectionSize(a.tokens(), b.tokens());
      EXPECT_EQ(IntersectLinear(a.tokens().data(), a.size(),
                                b.tokens().data(), b.size()),
                seed);
      EXPECT_EQ(IntersectGallop(a.tokens().data(), a.size(),
                                b.tokens().data(), b.size()),
                seed);
      EXPECT_EQ(a.IntersectionSize(b), seed);  // the adaptive dispatch
    }
  }
}

TEST(SimilarityKernelTest, SignatureBoundDominatesExactIntersection) {
  std::mt19937_64 rng(42);
  for (int rep = 0; rep < 2000; ++rep) {
    const Token universe = rep % 3 == 0 ? 32 : 5000;
    const TokenSet a = TokenSet::FromTokens(RandomTokens(&rng, 120, universe));
    const TokenSet b = TokenSet::FromTokens(RandomTokens(&rng, 120, universe));
    const uint64_t sa = TokenSignature(a.tokens().data(), a.size());
    const uint64_t sb = TokenSignature(b.tokens().data(), b.size());
    const size_t exact = a.IntersectionSize(b);
    const size_t bound = SigIntersectionUpperBound(a.size(), sa, b.size(), sb);
    ASSERT_GE(bound, exact);
    ASSERT_LE(bound, std::min(a.size(), b.size()));
    ASSERT_GE(SigJaccardUpperBound(a.size(), sa, b.size(), sb),
              JaccardSimilarity(a, b));
  }
  // The both-empty convention matches JaccardSimilarity.
  EXPECT_DOUBLE_EQ(SigJaccardUpperBound(0, 0, 0, 0), 1.0);
}

TEST(SimilarityKernelTest, SignatureDetectsDisjointBitsets) {
  // Two sets whose signatures share no bits must be provably disjoint.
  std::vector<Token> a_toks;
  std::vector<Token> b_toks;
  for (Token t = 0; t < 2000; ++t) {
    (SignatureBit(t) < 32 ? a_toks : b_toks).push_back(t);
  }
  const TokenSet a = TokenSet::FromTokens(a_toks);
  const TokenSet b = TokenSet::FromTokens(b_toks);
  const uint64_t sa = TokenSignature(a.tokens().data(), a.size());
  const uint64_t sb = TokenSignature(b.tokens().data(), b.size());
  EXPECT_EQ(sa & sb, 0u);
  EXPECT_EQ(SigIntersectionUpperBound(a.size(), sa, b.size(), sb), 0u);
  EXPECT_EQ(a.IntersectionSize(b), 0u);
}

TEST(SimilarityKernelTest, ArenaViewsMatchInstanceTokens) {
  ToyWorld world = MakeHealthWorld();
  // An incomplete record with an imputed diagnosis: several instances.
  Record r = world.Make(7, {"male", "blurred vision", "-", "drug therapy"});
  ImputedTuple::ImputedAttr ia;
  ia.attr = 2;
  const AttributeDomain& domain = world.repo->domain(2);
  for (ValueId vid = 0; vid < std::min<ValueId>(3, domain.size()); ++vid) {
    ia.candidates.push_back({vid, 0.3});
  }
  const ImputedTuple tuple = ImputedTuple::FromImputation(
      r, world.repo.get(), {ia}, /*max_instances=*/4);
  for (int m = 0; m < tuple.num_instances(); ++m) {
    for (int k = 0; k < tuple.num_attributes(); ++k) {
      const TokenSet& expect = tuple.instance_tokens(m, k);
      const TokenView view = tuple.instance_token_view(m, k);
      ASSERT_EQ(view.len, expect.size());
      EXPECT_TRUE(std::equal(expect.tokens().begin(), expect.tokens().end(),
                             view.data));
      EXPECT_EQ(view.sig, TokenSignature(view.data, view.len));
    }
  }
  // The cached record union is the sorted, deduplicated union of the
  // base record's non-missing attributes.
  std::vector<Token> expect_union;
  for (const AttrValue& v : r.values) {
    if (!v.missing) {
      expect_union.insert(expect_union.end(), v.tokens.tokens().begin(),
                          v.tokens.tokens().end());
    }
  }
  const TokenSet union_set = TokenSet::FromTokens(expect_union);
  const TokenView union_view = tuple.union_token_view();
  ASSERT_EQ(union_view.len, union_set.size());
  EXPECT_TRUE(std::equal(union_set.tokens().begin(), union_set.tokens().end(),
                         union_view.data));
}

TEST(SimilarityKernelTest, ExceedsVerdictMatchesExactSimilarity) {
  ToyWorld world = MakeHealthWorld();
  std::mt19937_64 rng(7);
  const std::vector<std::vector<std::string>> texts = {
      {"male", "loss of weight", "diabetes", "drug therapy"},
      {"male", "blurred vision", "-", "drug therapy"},
      {"female", "fever cough", "-", "-"},
      {"-", "red eye itchy", "conjunctivitis", "eye drop"},
      {"male", "fever cough headache", "flu", "drink more"},
  };
  std::vector<ImputedTuple> tuples;
  for (size_t i = 0; i < texts.size(); ++i) {
    Record r = world.Make(static_cast<int64_t>(i), texts[i]);
    std::vector<ImputedTuple::ImputedAttr> imputed;
    for (int j : r.MissingAttributes()) {
      ImputedTuple::ImputedAttr ia;
      ia.attr = j;
      const AttributeDomain& domain = world.repo->domain(j);
      for (ValueId vid = 0; vid < std::min<ValueId>(3, domain.size());
           ++vid) {
        ia.candidates.push_back({vid, 0.25});
      }
      imputed.push_back(std::move(ia));
    }
    tuples.push_back(ImputedTuple::FromImputation(r, world.repo.get(),
                                                  std::move(imputed), 4));
  }
  std::uniform_real_distribution<double> gamma_dist(0.0, 4.0);
  for (const ImputedTuple& a : tuples) {
    for (const ImputedTuple& b : tuples) {
      // The cached-union overload must agree exactly with the Record
      // overload (both read the same one UnionRecordTokensInto semantics).
      EXPECT_DOUBLE_EQ(HeterogeneousRecordSimilarity(a, b),
                       HeterogeneousRecordSimilarity(a.base(), b.base()));
      for (int ma = 0; ma < a.num_instances(); ++ma) {
        for (int mb = 0; mb < b.num_instances(); ++mb) {
          const double exact = InstanceSimilarity(a, ma, b, mb);
          for (int rep = 0; rep < 8; ++rep) {
            const double gamma = gamma_dist(rng);
            const bool expect = exact > gamma;
            EXPECT_EQ(InstanceSimilarityExceeds(a, ma, b, mb, gamma, true),
                      expect);
            EXPECT_EQ(InstanceSimilarityExceeds(a, ma, b, mb, gamma, false),
                      expect);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace terids
