// Integration tests: full pipelines over generated incomplete streams.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/baseline_engines.h"
#include "core/pipeline.h"
#include "core/terids_engine.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "stream/stream_driver.h"

namespace terids {
namespace {

ExperimentParams SmallParams() {
  ExperimentParams params;
  params.scale = 0.06;
  params.w = 60;
  params.max_arrivals = 260;
  params.xi = 0.3;
  params.m = 1;
  return params;
}

class PipelineIntegrationTest : public ::testing::Test {
 protected:
  PipelineIntegrationTest()
      : experiment_(CitationsProfile(), SmallParams()) {}
  Experiment experiment_;
};

TEST_F(PipelineIntegrationTest, AllPipelinesRunToCompletion) {
  for (PipelineKind kind :
       {PipelineKind::kTerIds, PipelineKind::kIjGer, PipelineKind::kCddEr,
        PipelineKind::kDdEr, PipelineKind::kEditingEr,
        PipelineKind::kConstraintEr}) {
    PipelineRun run = experiment_.Run(kind);
    EXPECT_EQ(run.arrivals, 260u);
    EXPECT_GE(run.accuracy.f_score, 0.0);
    EXPECT_LE(run.accuracy.f_score, 1.0);
  }
}

/// The central consistency property: the indexed engines (TER-iDS, Ij+GER)
/// and the unindexed CDD+ER baseline share the imputation model, so their
/// reported pair sets must be identical — indexes and pruning change cost,
/// never results.
TEST_F(PipelineIntegrationTest, IndexedAndLinearCddPipelinesAgree) {
  auto collect = [&](PipelineKind kind) {
    std::unique_ptr<Repository> repo = experiment_.BuildRepository();
    std::unique_ptr<ErPipeline> pipeline = MakePipeline(
        kind, repo.get(), experiment_.MakeConfig(), 2, experiment_.cdds(),
        experiment_.dds(), experiment_.editing_rules());
    std::vector<Record> inc_a = DataGenerator::WithMissing(
        experiment_.dataset().source_a, SmallParams().xi, 1,
        SmallParams().seed);
    std::vector<Record> inc_b = DataGenerator::WithMissing(
        experiment_.dataset().source_b, SmallParams().xi, 1,
        SmallParams().seed + 1);
    StreamDriver driver({inc_a, inc_b});
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (int i = 0; i < 260 && driver.HasNext(); ++i) {
      for (const MatchPair& p : pipeline->ProcessArrival(driver.Next()).new_matches) {
        pairs.emplace_back(p.rid_a, p.rid_b);
      }
    }
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  const auto terids = collect(PipelineKind::kTerIds);
  const auto ijger = collect(PipelineKind::kIjGer);
  const auto cdder = collect(PipelineKind::kCddEr);
  EXPECT_EQ(terids, cdder);
  EXPECT_EQ(ijger, cdder);
  EXPECT_FALSE(terids.empty());
}

TEST_F(PipelineIntegrationTest, ReportedPairsSpanTwoStreams) {
  std::unique_ptr<Repository> repo = experiment_.BuildRepository();
  std::unique_ptr<ErPipeline> pipeline = MakePipeline(
      PipelineKind::kTerIds, repo.get(), experiment_.MakeConfig(), 2,
      experiment_.cdds(), experiment_.dds(), experiment_.editing_rules());
  const int64_t a_size =
      static_cast<int64_t>(experiment_.dataset().source_a.size());
  StreamDriver driver(
      {experiment_.dataset().source_a, experiment_.dataset().source_b});
  for (int i = 0; i < 260 && driver.HasNext(); ++i) {
    for (const MatchPair& p : pipeline->ProcessArrival(driver.Next()).new_matches) {
      const bool a_from_a = p.rid_a < a_size;
      const bool b_from_a = p.rid_b < a_size;
      EXPECT_NE(a_from_a, b_from_a) << "pair within one stream reported";
    }
  }
}

TEST_F(PipelineIntegrationTest, MatchProbabilitiesExceedAlpha) {
  std::unique_ptr<Repository> repo = experiment_.BuildRepository();
  const EngineConfig config = experiment_.MakeConfig();
  std::unique_ptr<ErPipeline> pipeline = MakePipeline(
      PipelineKind::kTerIds, repo.get(), config, 2, experiment_.cdds(),
      experiment_.dds(), experiment_.editing_rules());
  StreamDriver driver(
      {experiment_.dataset().source_a, experiment_.dataset().source_b});
  for (int i = 0; i < 260 && driver.HasNext(); ++i) {
    for (const MatchPair& p : pipeline->ProcessArrival(driver.Next()).new_matches) {
      EXPECT_GT(p.probability, config.alpha);
    }
  }
}

TEST_F(PipelineIntegrationTest, EvictionRemovesExpiredPairsFromResultSet) {
  std::unique_ptr<Repository> repo = experiment_.BuildRepository();
  EngineConfig config = experiment_.MakeConfig();
  config.window_size = 20;  // Aggressive eviction.
  TerIdsEngine engine(repo.get(), config, 2, experiment_.cdds());
  StreamDriver driver(
      {experiment_.dataset().source_a, experiment_.dataset().source_b});
  int64_t clock = 0;
  std::vector<std::pair<int64_t, int64_t>> live;
  while (driver.HasNext() && clock < 400) {
    const Record r = driver.Next();
    engine.ProcessArrival(r);
    ++clock;
  }
  // Every pair still in ES must reference tuples inside the live windows.
  std::vector<int64_t> live_rids;
  for (int s = 0; s < 2; ++s) {
    for (const auto& wt : engine.window(s).tuples()) {
      live_rids.push_back(wt->rid());
    }
  }
  std::sort(live_rids.begin(), live_rids.end());
  for (const MatchPair& p : engine.results().ToVector()) {
    EXPECT_TRUE(std::binary_search(live_rids.begin(), live_rids.end(), p.rid_a));
    EXPECT_TRUE(std::binary_search(live_rids.begin(), live_rids.end(), p.rid_b));
  }
}

TEST_F(PipelineIntegrationTest, UnconstrainedQueryReturnsSupersetOfTopical) {
  // With K = all topics (unconstrained), the result set must contain every
  // pair the topical query reports.
  ExperimentParams params = SmallParams();
  Experiment topical(CitationsProfile(), params);
  PipelineRun topical_run = topical.Run(PipelineKind::kTerIds);

  params.topics_in_query = 10;  // All generated topics.
  Experiment broad(CitationsProfile(), params);
  PipelineRun broad_run = broad.Run(PipelineKind::kTerIds);
  EXPECT_GE(broad_run.accuracy.returned, topical_run.accuracy.returned);
}

TEST_F(PipelineIntegrationTest, PruningPowerIsHigh) {
  PipelineRun run = experiment_.Run(PipelineKind::kTerIds);
  EXPECT_GT(run.stats.total_pairs, 0u);
  // The paper reports 98.32%-99.43% across datasets; at our scales the
  // cascade should still kill the overwhelming majority of pairs.
  EXPECT_GT(run.stats.TotalPower(), 0.9);
  // Topic pruning dominates (Figure 4's shape).
  EXPECT_GT(run.stats.topic_pruned, run.stats.prob_ub_pruned);
}

TEST_F(PipelineIntegrationTest, DynamicRepositoryAbsorption) {
  std::unique_ptr<Repository> repo = experiment_.BuildRepository();
  TerIdsEngine engine(repo.get(), experiment_.MakeConfig(), 2,
                      experiment_.cdds());
  const size_t before = repo->num_samples();
  std::vector<Record> batch(experiment_.dataset().repo_records.begin(),
                            experiment_.dataset().repo_records.begin() + 5);
  ASSERT_TRUE(engine.AbsorbRepositoryBatch(batch).ok());
  EXPECT_EQ(repo->num_samples(), before + 5);
  EXPECT_EQ(engine.dr_index().size(), before + 5);
  // The engine still processes arrivals correctly afterwards.
  StreamDriver driver(
      {experiment_.dataset().source_a, experiment_.dataset().source_b});
  for (int i = 0; i < 50 && driver.HasNext(); ++i) {
    engine.ProcessArrival(driver.Next());
  }
  SUCCEED();
}

TEST(MetricsTest, FScoreMath) {
  std::vector<MatchPair> returned = {{1, 10, 0.9}, {2, 11, 0.8}, {3, 12, 0.7}};
  std::vector<GroundTruthPair> truth = {{1, 10}, {2, 11}, {4, 13}, {5, 14}};
  PrecisionRecall pr = ComputeFScore(returned, truth);
  EXPECT_EQ(pr.true_positives, 2u);
  EXPECT_DOUBLE_EQ(pr.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
  EXPECT_NEAR(pr.f_score, 2 * (2.0 / 3.0) * 0.5 / ((2.0 / 3.0) + 0.5), 1e-12);
}

TEST(MetricsTest, EmptyInputsAreZero) {
  PrecisionRecall pr = ComputeFScore({}, {});
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.f_score, 0.0);
}

TEST(MetricsTest, DuplicateReturnsCountOnce) {
  std::vector<MatchPair> returned = {{1, 10, 0.9}, {10, 1, 0.8}};
  std::vector<GroundTruthPair> truth = {{1, 10}};
  PrecisionRecall pr = ComputeFScore(returned, truth);
  EXPECT_EQ(pr.returned, 1u);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
}

}  // namespace
}  // namespace terids
