#ifndef TERIDS_EXEC_THREAD_POOL_H_
#define TERIDS_EXEC_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace terids {

/// A fixed-size, work-stealing-free thread pool for fork/join parallelism.
///
/// This is the legacy-mode executor (EngineConfig::sched_threads == 0):
/// each parallel subsystem — RefinementExecutor, ShardedErGrid — owns a
/// private pool, because one ThreadPool serves exactly one ParallelFor at a
/// time. With sched_threads >= 1 those subsystems dispatch onto the shared
/// phase-tagged Scheduler (exec/scheduler.h, DESIGN.md §10) instead, and no
/// pool is constructed.
///
/// `ThreadPool(n)` provides a concurrency level of n: n - 1 persistent
/// worker threads plus the calling thread, which participates in every
/// ParallelFor instead of blocking idle. A pool of size <= 1 spawns no
/// threads at all and runs everything inline on the caller, so the
/// single-threaded configuration has zero synchronization overhead and is
/// bit-for-bit the sequential execution.
///
/// Tasks within one ParallelFor are claimed from a shared atomic-style
/// cursor under the pool mutex (no per-worker deques, no stealing); which
/// thread runs which task is nondeterministic, so callers that need
/// deterministic output must write results into per-task slots, as
/// RefinementExecutor does.
///
/// Locking model (DESIGN.md §12): every mutable member is guarded by `mu_`
/// (rank lock_rank::kThreadPool); tasks always run with `mu_` released, so
/// a task body may take lower-ranked locks (it holds none).
class ThreadPool {
 public:
  /// `concurrency` <= 1 means inline execution (no worker threads).
  explicit ThreadPool(int concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency level (worker threads + the caller).
  int concurrency() const { return concurrency_; }

  /// Runs fn(i) for every i in [0, num_tasks), distributing tasks over the
  /// workers and the calling thread, and returns when all calls finished.
  /// Not reentrant and not thread-safe: one ParallelFor at a time.
  void ParallelFor(int64_t num_tasks, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current job until none are left. Called
  /// with `mu_` released; locks it per claim and per completion.
  void DrainCurrentJob();

  const int concurrency_;
  std::vector<std::thread> workers_;

  Mutex mu_{lock_rank::kThreadPool};
  CondVar work_ready_;
  CondVar job_done_;
  const std::function<void(int64_t)>* job_ TERIDS_GUARDED_BY(mu_) =
      nullptr;  // null = no job
  uint64_t job_epoch_ TERIDS_GUARDED_BY(mu_) = 0;
  int64_t next_task_ TERIDS_GUARDED_BY(mu_) = 0;
  int64_t tasks_total_ TERIDS_GUARDED_BY(mu_) = 0;
  int64_t tasks_finished_ TERIDS_GUARDED_BY(mu_) = 0;
  bool shutdown_ TERIDS_GUARDED_BY(mu_) = false;
};

}  // namespace terids

#endif  // TERIDS_EXEC_THREAD_POOL_H_
