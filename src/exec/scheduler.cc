#include "exec/scheduler.h"

#include <chrono>
#include <utility>

#include "util/status.h"

namespace terids {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void Scheduler::LatencyRing::Record(ExecPhase phase, uint64_t nanos) {
  if (samples.size() >= kCapacity) {
    for (const Sample& s : samples) {
      folded.of(s.phase).RecordNanos(s.nanos);
    }
    samples.clear();
  }
  samples.push_back(Sample{phase, nanos});
}

void Scheduler::LatencyRing::FoldInto(LatencyStats* out) {
  for (const Sample& s : samples) {
    folded.of(s.phase).RecordNanos(s.nanos);
  }
  samples.clear();
  out->Merge(folded);
  folded.Reset();
}

Scheduler::Scheduler(int num_workers) : num_workers_(num_workers) {
  TERIDS_CHECK(num_workers >= 1);
  rings_.resize(static_cast<size_t>(num_workers_) + 1);
  for (auto& ring : rings_) {
    ring.samples.reserve(LatencyRing::kCapacity);
  }
  workers_.reserve(num_workers_);
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Scheduler::~Scheduler() {
  {
    MutexLock lock(&mu_);
    // Let the workers run everything still queued before they exit: shutdown
    // only stops them once the queue is empty (see WorkerLoop), so no
    // submitted item is ever dropped.
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (auto& t : workers_) {
    t.join();
  }
}

void Scheduler::Enqueue(std::shared_ptr<Job> job) {
  {
    MutexLock lock(&mu_);
    TERIDS_CHECK(!shutdown_);
    queue_.push_back(std::move(job));
  }
  work_ready_.NotifyAll();
}

bool Scheduler::ClaimTask(std::shared_ptr<Job>* job, int64_t* task) {
  while (!queue_.empty() && queue_.front()->next >= queue_.front()->total) {
    queue_.pop_front();
  }
  if (queue_.empty()) {
    return false;
  }
  *job = queue_.front();
  *task = (*job)->next++;
  ++in_flight_;
  if ((*job)->next >= (*job)->total) {
    queue_.pop_front();
  }
  return true;
}

void Scheduler::RunTask(const std::shared_ptr<Job>& job, int64_t task,
                        LatencyRing* ring) {
  const uint64_t start = NowNanos();
  if (job->fn != nullptr) {
    (*job->fn)(task);
  } else {
    job->single();
  }
  if (ring != nullptr) {
    ring->Record(job->phase, NowNanos() - start);
  }
  {
    MutexLock lock(&mu_);
    ++job->finished;
    --in_flight_;
  }
  job_done_.NotifyAll();
}

void Scheduler::WorkerLoop(int worker_index) {
  LatencyRing* ring = &rings_[worker_index];
  for (;;) {
    std::shared_ptr<Job> job;
    int64_t task = 0;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) {
        work_ready_.Wait(&mu_);
      }
      if (!ClaimTask(&job, &task)) {
        if (shutdown_) {
          return;  // queue drained, nothing left to run
        }
        continue;
      }
    }
    RunTask(job, task, ring);
  }
}

void Scheduler::ParallelFor(ExecPhase phase, int64_t num_tasks,
                            const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) {
    return;
  }
  if (num_tasks == 1) {
    // Nothing to fan out; run inline (still recorded as a phase sample).
    const uint64_t start = NowNanos();
    fn(0);
    MutexLock lock(&ext_mu_);
    rings_.back().Record(phase, NowNanos() - start);
    return;
  }
  auto job = std::make_shared<Job>();
  job->phase = phase;
  job->fn = &fn;
  job->total = num_tasks;
  Enqueue(job);

  // Participate: claim tasks from our own job only. Claiming from other
  // jobs would risk executing an item that blocks (the ingest chain's
  // bounded-queue Push) on the very thread that must make progress to
  // unblock it.
  for (;;) {
    int64_t task;
    {
      MutexLock lock(&mu_);
      if (job->next >= job->total) {
        break;
      }
      task = job->next++;
      ++in_flight_;
      if (job->next >= job->total) {
        // Fully claimed; drop it from the queue so workers skip it.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (it->get() == job.get()) {
            queue_.erase(it);
            break;
          }
        }
      }
    }
    const uint64_t start = NowNanos();
    try {
      fn(task);
    } catch (...) {
      // Cancel the unclaimed remainder, wait out in-flight tasks, rethrow.
      MutexLock lock(&mu_);
      job->total = job->next;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->get() == job.get()) {
          queue_.erase(it);
          break;
        }
      }
      ++job->finished;
      --in_flight_;
      while (!job->IsDone()) {
        job_done_.Wait(&mu_);
      }
      throw;
    }
    const uint64_t elapsed = NowNanos() - start;
    {
      MutexLock lock(&ext_mu_);
      rings_.back().Record(phase, elapsed);
    }
    {
      MutexLock lock(&mu_);
      ++job->finished;
      --in_flight_;
    }
    job_done_.NotifyAll();
  }

  MutexLock lock(&mu_);
  while (!job->IsDone()) {
    job_done_.Wait(&mu_);
  }
}

void Scheduler::Submit(ExecPhase phase, std::function<void()> fn) {
  auto job = std::make_shared<Job>();
  job->phase = phase;
  job->single = std::move(fn);
  job->total = 1;
  Enqueue(std::move(job));
}

bool Scheduler::QuiescedLocked() const {
  if (in_flight_ > 0) {
    return false;
  }
  for (const auto& job : queue_) {
    if (job->next < job->total) {
      return false;
    }
  }
  return true;
}

void Scheduler::Drain() {
  MutexLock lock(&mu_);
  while (!QuiescedLocked()) {
    job_done_.Wait(&mu_);
  }
}

LatencyStats Scheduler::ConsumeLatencies() {
  Drain();
  LatencyStats out;
  // Workers are idle (Drain) and stay idle unless someone submits, which
  // the contract forbids during collection; mu_/job_done_ in RunTask gave
  // us the happens-before edge for their rings.
  MutexLock lock(&mu_);
  for (int i = 0; i < num_workers_; ++i) {
    rings_[i].FoldInto(&out);
  }
  {
    MutexLock ext(&ext_mu_);
    rings_.back().FoldInto(&out);
  }
  return out;
}

std::array<int64_t, kNumExecPhases> Scheduler::ApproxBacklogByPhase() {
  std::array<int64_t, kNumExecPhases> backlog{};
  MutexLock lock(&mu_);
  for (const std::shared_ptr<Job>& job : queue_) {
    const int phase = static_cast<int>(job->phase);
    backlog[phase] += job->total - job->next;
  }
  return backlog;
}

}  // namespace terids
