#ifndef TERIDS_UTIL_STATUS_H_
#define TERIDS_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace terids {

/// Error codes used across the TER-iDS library. The library does not throw
/// exceptions across public API boundaries; fallible operations return a
/// Status (or a Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// A lightweight success-or-error value. Modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: w must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder. On error the value is absent.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>, mirroring absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {
    // A Result built from a Status must carry an error; an OK status with
    // no value would be unobservable through value().
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const { return *value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// CHECK-style invariant assertion, enabled in all build types. Database
/// index invariants are cheap to verify relative to the work they guard.
#define TERIDS_CHECK(expr)                                        \
  do {                                                            \
    if (!(expr)) {                                                \
      ::terids::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                             \
  } while (0)

#define TERIDS_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::terids::Status _terids_status = (expr); \
    if (!_terids_status.ok()) {               \
      return _terids_status;                  \
    }                                         \
  } while (0)

}  // namespace terids

#endif  // TERIDS_UTIL_STATUS_H_
