// Table 4: the tested (generated) data sets — sizes and planted matches —
// plus a TER-iDS arrival-throughput column measured through the batched
// operator (TERIDS_BENCH_BATCH / TERIDS_BENCH_THREADS knobs).

#include <cstdio>

#include "bench_common.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  const ExecKnobs knobs = EnvExecKnobs();
  JsonReporter reporter("Table 4");
  PrintHeader("Table 4", "the tested data sets (generated substitutes)",
              base);
  std::printf("%-10s %10s %12s %12s %12s %14s %6s %12s\n", "dataset",
              "attributes", "|SourceA|", "|SourceB|", "|repository|",
              "planted pairs", "scale", "arrivals/s");
  for (const std::string& name : AllDatasets()) {
    const DatasetProfile profile = ProfileByName(name);
    ExperimentParams params = BaseParams(name);
    Experiment experiment(profile, params);
    const GeneratedDataset& ds = experiment.dataset();
    PipelineRun run = experiment.Run(PipelineKind::kTerIds);
    const double throughput =
        run.total_seconds > 0
            ? static_cast<double>(run.arrivals) / run.total_seconds
            : 0.0;
    std::printf("%-10s %10d %12zu %12zu %12zu %14zu %6.3f %12.1f\n",
                name.c_str(), profile.num_attributes(), ds.source_a.size(),
                ds.source_b.size(), ds.repo_records.size(),
                ds.ground_truth.size(), params.scale, throughput);
    reporter.AddKnobRow(knobs)
        .Str("dataset", name)
        .Num("attributes", profile.num_attributes())
        .Num("source_a", static_cast<double>(ds.source_a.size()))
        .Num("source_b", static_cast<double>(ds.source_b.size()))
        .Num("repository", static_cast<double>(ds.repo_records.size()))
        .Num("planted_pairs", static_cast<double>(ds.ground_truth.size()))
        .Num("scale", params.scale)
        .Num("terids_arrivals_per_sec", throughput);
  }
  std::printf(
      "\npaper sizes: Citations 2614/2294 (2224 matches), Anime 4000/4000\n"
      "(10704), Bikes 4786/9003 (13815), EBooks 6500/14112 (16719),\n"
      "Songs 1M/1M (1292023). Generated sets are scaled per column 'scale'.\n");
  return 0;
}
