// Figure 8: TER-iDS efficiency vs the ratio rho = gamma / d.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  TimeSweep("Figure 8", "rho", {0.3, 0.4, 0.5, 0.6, 0.7},
            [](ExperimentParams* p, double v) { p->rho = v; },
            AllPipelines());
  return 0;
}
