// Unified-scheduler scaling: end-to-end TER-iDS throughput and per-arrival
// tail latency as a function of the shared worker count (sched_threads),
// with the legacy three-pool layout (sched=0) as both the throughput
// baseline and the correctness oracle. Not a paper figure — this tracks the
// ROADMAP item "unified scheduler and tail-latency accounting" (DESIGN.md
// §10) on top of the reproduced system.
//
// Every row runs the identical arrival sequence with every parallel phase
// enabled (micro-batching, async ingest chain, sharded grid probe, parallel
// refinement, sharded maintain); only the worker topology varies. sched=0
// is the seed execution model (one pool per subsystem plus a dedicated
// ingest thread); sched>=1 routes all four phases through one scheduler of
// that many workers. Output is bit-identical across the whole sweep by the
// determinism contract, and this bench refuses to report numbers if not.
// Parallel speedups require physical cores; a 1-core host shows overhead
// only.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/profiles.h"

namespace {

using namespace terids;
using namespace terids::bench;

// Per-arrival phase/e2e histograms plus (sched mode) per-work-item service
// times, as columns of one table row.
void PrintLatencyRow(int sched, const PipelineRun& run, double throughput,
                     double speedup) {
  const LatencyHistogram& e2e = run.arrival_latency.end_to_end;
  std::printf("%6d %12.4f %12.1f %8.2fx %9.3f %9.3f %9.3f", sched,
              1e3 * run.avg_arrival_seconds, throughput, speedup,
              1e3 * e2e.Percentile(0.50), 1e3 * e2e.Percentile(0.99),
              1e3 * e2e.Percentile(0.999));
  for (int p = 0; p < kNumExecPhases; ++p) {
    const LatencyHistogram& phase =
        run.arrival_latency.of(static_cast<ExecPhase>(p));
    std::printf(" %9.3f", 1e3 * phase.Percentile(0.99));
  }
  std::printf("\n");
  std::fflush(stdout);
}

bool SameOutput(const PruneStats& a, const PruneStats& b) {
  return a.total_pairs == b.total_pairs && a.topic_pruned == b.topic_pruned &&
         a.sim_ub_pruned == b.sim_ub_pruned &&
         a.prob_ub_pruned == b.prob_ub_pruned &&
         a.instance_pruned == b.instance_pruned && a.refined == b.refined &&
         a.matched == b.matched;
}

}  // namespace

int main() {
  JsonReporter reporter("scheduler");
  const ExecKnobs env_knobs = EnvExecKnobs();
  const std::string dataset = "Citations";
  ExperimentParams params = BaseParams(dataset);
  // Every parallel phase on, so all four ExecPhases flow through the
  // scheduler: the sweep isolates worker topology, nothing else.
  params.batch_size = 8;
  params.refine_threads = 4;
  params.grid_shards = 4;
  params.ingest_queue_depth = 2;
  params.maintain_shards = 4;
  Experiment experiment(ProfileByName(dataset), params);
  PrintHeader("scheduler",
              "end-to-end throughput + per-arrival tail latency vs "
              "sched_threads (0 = legacy per-subsystem pools)",
              params);

  std::printf(
      "\n-- end-to-end TER-iDS, all phases parallel; latency in ms --\n");
  std::printf("%6s %12s %12s %9s %9s %9s %9s %9s %9s %9s %9s\n", "sched",
              "ms/arrival", "arrivals/s", "speedup", "e2e p50", "e2e p99",
              "e2e p999", "ing p99", "cand p99", "ref p99", "mnt p99");

  PipelineRun oracle;
  double base_throughput = 0.0;
  for (int sched : {0, 1, 2, 4, 8}) {
    EngineConfig config = experiment.MakeConfig();
    config.sched_threads = sched;
    PipelineRun run = experiment.Run(PipelineKind::kTerIds, config);
    const double throughput =
        run.total_seconds > 0
            ? static_cast<double>(run.arrivals) / run.total_seconds
            : 0.0;
    if (sched == 0) {
      base_throughput = throughput;
      oracle = run;
    } else if (!SameOutput(run.stats, oracle.stats) ||
               run.final_result_size != oracle.final_result_size ||
               run.accuracy.f_score != oracle.accuracy.f_score) {
      // The determinism contract is load-bearing for the scheduler; a bench
      // run that violates it must not report numbers as if it passed.
      std::fprintf(stderr,
                   "FATAL: sched_threads=%d changed the pipeline output\n",
                   sched);
      return 1;
    }
    const double speedup =
        base_throughput > 0 ? throughput / base_throughput : 0.0;
    PrintLatencyRow(sched, run, throughput, speedup);
    ExecKnobs knobs = env_knobs;
    knobs.batch_size = params.batch_size;
    knobs.refine_threads = params.refine_threads;
    knobs.grid_shards = params.grid_shards;
    knobs.ingest_queue_depth = params.ingest_queue_depth;
    knobs.maintain_shards = params.maintain_shards;
    knobs.sched_threads = sched;
    reporter.AddKnobRow(knobs)
        .Str("dataset", dataset)
        .Num("ms_per_arrival", 1e3 * run.avg_arrival_seconds)
        .Num("arrivals_per_sec", throughput)
        .Num("speedup_vs_legacy_pools", speedup)
        // Per-arrival latency: phase + end-to-end histograms recorded at
        // each emission (p50/p99/p999/mean/max/count per histogram).
        .Raw("arrival_latency", run.arrival_latency.ToJson())
        // Per-work-item service times from the scheduler's worker rings
        // (empty object counts at sched=0: legacy pools don't account).
        .Raw("sched_item_latency", run.sched_item_latency.ToJson());
  }

  std::printf(
      "\nexpected shape: throughput at sched=N tracks the legacy layout at\n"
      "an equal worker budget (the scheduler adds one queue hop but removes\n"
      "per-subsystem pool idling); e2e tail percentiles tighten as workers\n"
      "are added until physical cores are exhausted. Ingest p99 tracks\n"
      "imputation + candidate probing (the chained stage), refine p99 the\n"
      "pair-evaluation fan-out. Every row is bit-identical in output to the\n"
      "sched=0 three-pool baseline.\n");
  return 0;
}
