#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"

namespace terids {
namespace bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class JsonReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The expected documents assume the default scale of 1.
    unsetenv("TERIDS_BENCH_SCALE");
    path_ = ::testing::TempDir() + "/bench_json_test.json";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    unsetenv("TERIDS_BENCH_JSON");
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(JsonReporterTest, DisabledWithoutEnvVar) {
  unsetenv("TERIDS_BENCH_JSON");
  {
    JsonReporter reporter("Figure X");
    EXPECT_FALSE(reporter.enabled());
    reporter.AddRow().Str("dataset", "Citations").Num("f_score", 0.9);
  }
  EXPECT_EQ(ReadFile(path_), "");
}

TEST_F(JsonReporterTest, WritesDocumentOnDestruction) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("Figure X");
    EXPECT_TRUE(reporter.enabled());
    reporter.AddRow().Str("dataset", "Citations").Num("f_score", 0.5);
    reporter.AddRow().Str("dataset", "Anime").Num("pairs", 42);
  }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"Figure X\",\"bench_scale\":1,\"rows\":["
            "{\"dataset\":\"Citations\",\"f_score\":0.5},"
            "{\"dataset\":\"Anime\",\"pairs\":42}]}\n");
}

TEST_F(JsonReporterTest, EmptyRunYieldsEmptyRowsArray) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  { JsonReporter reporter("Figure Y"); }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"Figure Y\",\"bench_scale\":1,\"rows\":[]}\n");
}

TEST_F(JsonReporterTest, EscapesQuotesAndBackslashes) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("Fig \"Q\"");
    reporter.AddRow().Str("name", "a\\b\"c");
  }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"Fig \\\"Q\\\"\",\"bench_scale\":1,\"rows\":["
            "{\"name\":\"a\\\\b\\\"c\"}]}\n");
}

TEST_F(JsonReporterTest, EscapesControlCharacters) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("F");
    reporter.AddRow().Str("name", "a\nb\tc");
  }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"F\",\"bench_scale\":1,\"rows\":["
            "{\"name\":\"a\\u000ab\\u0009c\"}]}\n");
}

TEST_F(JsonReporterTest, RowReferencesSurviveLaterAddRowCalls) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("F");
    JsonReporter::Row& first = reporter.AddRow();
    for (int i = 0; i < 100; ++i) {
      reporter.AddRow().Num("i", i);
    }
    first.Num("late", 7);  // must not dangle despite 100 later rows
  }
  EXPECT_NE(ReadFile(path_).find("{\"late\":7}"), std::string::npos);
}

TEST_F(JsonReporterTest, RawSplicesPreRenderedJson) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("Figure Z");
    reporter.AddRow().Str("dataset", "Bikes").Raw("cost", "{\"er\":1.5}");
  }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"Figure Z\",\"bench_scale\":1,\"rows\":["
            "{\"dataset\":\"Bikes\",\"cost\":{\"er\":1.5}}]}\n");
}

}  // namespace
}  // namespace bench
}  // namespace terids
