#include "rules/rule_miner.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace terids {

namespace {

/// Dependent interval over a sample of distances: [min, quantile q].
Interval DependentInterval(std::vector<double> dists, double q) {
  TERIDS_CHECK(!dists.empty());
  std::sort(dists.begin(), dists.end());
  size_t hi_idx = static_cast<size_t>(
      std::floor(q * static_cast<double>(dists.size() - 1)));
  return Interval::Of(dists.front(), dists[hi_idx]);
}

}  // namespace

RuleMiner::RuleMiner(const Repository* repo, MinerOptions options)
    : repo_(repo), options_(options) {
  TERIDS_CHECK(repo != nullptr);
  TERIDS_CHECK(options_.buckets >= 2);
  TERIDS_CHECK(options_.pair_samples > 0);
}

std::vector<RuleMiner::PairSample> RuleMiner::DrawPairs() const {
  const size_t n = repo_->num_samples();
  const int d = repo_->num_attributes();
  std::vector<PairSample> pairs;
  if (n < 2) {
    return pairs;
  }
  const uint64_t total_pairs = n * (n - 1) / 2;
  const uint64_t want =
      std::min<uint64_t>(total_pairs, static_cast<uint64_t>(options_.pair_samples));
  Rng rng(options_.seed);
  pairs.reserve(want);
  if (total_pairs <= want) {
    // Enumerate all pairs for small repositories.
    for (size_t a = 0; a + 1 < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        pairs.push_back({a, b, {}});
      }
    }
  } else {
    for (uint64_t i = 0; i < want; ++i) {
      size_t a = rng.NextBounded(n);
      size_t b = rng.NextBounded(n);
      while (b == a) {
        b = rng.NextBounded(n);
      }
      pairs.push_back({a, b, {}});
    }
  }
  for (PairSample& p : pairs) {
    p.dists.resize(d);
    const Record& ra = repo_->sample(p.a);
    const Record& rb = repo_->sample(p.b);
    for (int x = 0; x < d; ++x) {
      p.dists[x] = JaccardDistance(ra.values[x].tokens, rb.values[x].tokens);
    }
  }
  return pairs;
}

std::vector<CddRule> RuleMiner::MineWithMode(bool dd_mode) const {
  const int d = repo_->num_attributes();
  const std::vector<PairSample> pairs = DrawPairs();
  std::vector<CddRule> rules;
  if (pairs.empty()) {
    return rules;
  }

  const int B = options_.buckets;
  for (int j = 0; j < d; ++j) {
    // level1[x] holds the level-1 rules mined with determinant x.
    std::vector<std::vector<CddRule>> level1(d);
    for (int x = 0; x < d; ++x) {
      if (x == j) continue;

      // Bucket pairs by their determinant distance and collect the
      // dependent distances per bucket.
      std::vector<std::vector<double>> bucket_dep(B);
      for (const PairSample& p : pairs) {
        int b = static_cast<int>(p.dists[x] * B);
        if (b >= B) b = B - 1;
        bucket_dep[b].push_back(p.dists[j]);
      }

      const double width_cap =
          dd_mode ? options_.dd_max_dep_width : options_.max_dep_width;
      const double hi_cap =
          dd_mode ? options_.dd_max_dep_hi : options_.max_dep_hi;
      int emitted = 0;
      // DD mode accumulates cumulatively: the constraint [0, (b+1)/B] must
      // bound the dependent over *all* pairs within that determinant
      // distance, matching the classic [0, eps] form of [35].
      std::vector<double> cumulative;
      for (int b = 0; b < B && emitted < options_.max_buckets_per_pair; ++b) {
        const std::vector<double>* dep_sample = &bucket_dep[b];
        if (dd_mode) {
          cumulative.insert(cumulative.end(), bucket_dep[b].begin(),
                            bucket_dep[b].end());
          dep_sample = &cumulative;
        }
        if (static_cast<int>(dep_sample->size()) < options_.min_support) {
          continue;
        }
        Interval dep = DependentInterval(*dep_sample, options_.dep_quantile);
        if (dd_mode) {
          dep.lo = 0.0;  // DDs do not use the relaxed eps_min.
        }
        if (dep.width() > width_cap || dep.hi > hi_cap) {
          continue;
        }
        CddRule rule;
        rule.dependent = j;
        rule.det_mask = 1u << x;
        const double lo = dd_mode ? 0.0 : static_cast<double>(b) / B;
        const double hi = static_cast<double>(b + 1) / B;
        rule.determinants.emplace_back(x, AttrConstraint::MakeInterval(lo, hi));
        rule.dep_interval = dep;
        rule.support = static_cast<int>(dep_sample->size());
        level1[x].push_back(rule);
        ++emitted;
      }

      // Editing-rule fallback with constants: determinants whose best
      // interval was too loose (no emissions) impute via specific values.
      if (!dd_mode && options_.mine_constants && emitted == 0) {
        std::vector<std::pair<int, ValueId>> frequent;
        const size_t dom_size = repo_->domain_size(x);
        for (ValueId v = 0; v < dom_size; ++v) {
          const int freq = repo_->value_frequency(x, v);
          if (freq >= options_.min_const_freq) {
            frequent.emplace_back(freq, v);
          }
        }
        std::sort(frequent.rbegin(), frequent.rend());
        if (static_cast<int>(frequent.size()) > options_.max_constants_per_attr) {
          frequent.resize(options_.max_constants_per_attr);
        }
        for (const auto& [freq, vid] : frequent) {
          (void)freq;
          std::vector<double> dep_dists;
          for (const PairSample& p : pairs) {
            if (repo_->sample_value_id(p.a, x) == vid &&
                repo_->sample_value_id(p.b, x) == vid) {
              dep_dists.push_back(p.dists[j]);
            }
          }
          if (static_cast<int>(dep_dists.size()) < options_.min_support) {
            continue;
          }
          Interval dep = DependentInterval(dep_dists, options_.dep_quantile);
          if (dep.width() > options_.max_dep_width ||
              dep.hi > options_.max_dep_hi) {
            continue;
          }
          CddRule rule;
          rule.dependent = j;
          rule.det_mask = 1u << x;
          rule.determinants.emplace_back(x, AttrConstraint::MakeConstant(vid));
          rule.dep_interval = dep;
          rule.support = static_cast<int>(dep_dists.size());
          level1[x].push_back(rule);
        }
      }
    }

    // Level-2 combinations: conjoin the best level-1 rule of two distinct
    // determinants; the conjunction's dependent interval is recomputed over
    // the pairs satisfying both constraints and kept if tighter.
    std::vector<CddRule> level2;
    if (!dd_mode && options_.combine_level2) {
      for (int x1 = 0; x1 < d; ++x1) {
        if (level1[x1].empty()) continue;
        for (int x2 = x1 + 1; x2 < d; ++x2) {
          if (level1[x2].empty()) continue;
          if (static_cast<int>(level2.size()) >= options_.max_level2_rules) {
            break;
          }
          const CddRule& r1 = level1[x1].front();
          const CddRule& r2 = level1[x2].front();
          // Constant constraints rarely co-occur often enough; combine only
          // interval constraints, which is also what keeps the aR-tree
          // geometry of combined rules simple.
          if (r1.determinants[0].second.kind != AttrConstraint::Kind::kInterval ||
              r2.determinants[0].second.kind != AttrConstraint::Kind::kInterval) {
            continue;
          }
          std::vector<double> dep_dists;
          for (const PairSample& p : pairs) {
            if (r1.determinants[0].second.interval.Contains(p.dists[x1]) &&
                r2.determinants[0].second.interval.Contains(p.dists[x2])) {
              dep_dists.push_back(p.dists[j]);
            }
          }
          if (static_cast<int>(dep_dists.size()) < options_.min_support) {
            continue;
          }
          Interval dep = DependentInterval(dep_dists, options_.dep_quantile);
          const double parent_width =
              std::min(r1.dep_interval.width(), r2.dep_interval.width());
          if (dep.width() >= parent_width) {
            continue;  // No refinement over the parents.
          }
          CddRule rule;
          rule.dependent = j;
          rule.det_mask = (1u << x1) | (1u << x2);
          rule.determinants.push_back(r1.determinants[0]);
          rule.determinants.push_back(r2.determinants[0]);
          rule.dep_interval = dep;
          rule.support = static_cast<int>(dep_dists.size());
          level2.push_back(rule);
        }
      }
    }

    for (int x = 0; x < d; ++x) {
      rules.insert(rules.end(), level1[x].begin(), level1[x].end());
    }
    rules.insert(rules.end(), level2.begin(), level2.end());
  }
  return rules;
}

std::vector<CddRule> RuleMiner::MineCdds() const { return MineWithMode(false); }

std::vector<CddRule> RuleMiner::MineDds() const { return MineWithMode(true); }

std::vector<CddRule> RuleMiner::MineEditingRules() const {
  const int d = repo_->num_attributes();
  const std::vector<PairSample> pairs = DrawPairs();
  std::vector<CddRule> rules;
  for (int j = 0; j < d; ++j) {
    for (int x = 0; x < d; ++x) {
      if (x == j) continue;
      std::vector<std::pair<int, ValueId>> frequent;
      const size_t dom_size = repo_->domain_size(x);
      for (ValueId v = 0; v < dom_size; ++v) {
        const int freq = repo_->value_frequency(x, v);
        if (freq >= options_.min_const_freq) {
          frequent.emplace_back(freq, v);
        }
      }
      std::sort(frequent.rbegin(), frequent.rend());
      if (static_cast<int>(frequent.size()) > options_.max_constants_per_attr) {
        frequent.resize(options_.max_constants_per_attr);
      }
      for (const auto& [freq, vid] : frequent) {
        (void)freq;
        // An editing rule asserts a (near-)certain fix: tuples sharing the
        // constant agree on the dependent within a tight tolerance. Exact
        // token-set equality almost never holds on noisy text, so the
        // certainty requirement is "agreement within editing_tolerance for
        // at least editing_agreement of the supporting pairs".
        int support = 0;
        int agree = 0;
        for (const PairSample& p : pairs) {
          if (repo_->sample_value_id(p.a, x) == vid &&
              repo_->sample_value_id(p.b, x) == vid) {
            ++support;
            if (p.dists[j] <= options_.editing_tolerance) {
              ++agree;
            }
          }
        }
        if (support < options_.min_support) {
          continue;
        }
        if (agree < support * options_.editing_agreement) {
          continue;
        }
        CddRule rule;
        rule.dependent = j;
        rule.det_mask = 1u << x;
        rule.determinants.emplace_back(x, AttrConstraint::MakeConstant(vid));
        rule.dep_interval = Interval::Of(0.0, options_.editing_tolerance);
        rule.support = support;
        rules.push_back(rule);
      }
    }
  }
  return rules;
}

int RuleMiner::AbsorbNewSample(size_t sample_idx,
                               std::vector<CddRule>* rules) const {
  TERIDS_CHECK(rules != nullptr);
  TERIDS_CHECK(sample_idx < repo_->num_samples());
  const Record& s_new = repo_->sample(sample_idx);
  int widened = 0;
  for (CddRule& rule : *rules) {
    bool rule_widened = false;
    for (size_t other = 0; other < repo_->num_samples(); ++other) {
      if (other == sample_idx) continue;
      // Treat s_new as the probe record r: the determinant check is
      // symmetric in the two tuples for both constraint kinds.
      if (!rule.DeterminantsSatisfied(s_new, *repo_, other)) {
        continue;
      }
      const double dep_dist =
          JaccardDistance(s_new.values[rule.dependent].tokens,
                          repo_->sample(other).values[rule.dependent].tokens);
      if (!rule.dep_interval.Contains(dep_dist)) {
        rule.dep_interval.Cover(dep_dist);
        rule_widened = true;
      }
      ++rule.support;
    }
    if (rule_widened) {
      ++widened;
    }
  }
  return widened;
}

}  // namespace terids
