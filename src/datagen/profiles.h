#ifndef TERIDS_DATAGEN_PROFILES_H_
#define TERIDS_DATAGEN_PROFILES_H_

#include <string>
#include <vector>

namespace terids {

/// Structural profile of one evaluation dataset (Table 4 substitution; see
/// DESIGN.md §4). Profiles encode what drives the paper's observed
/// behavior: schema width, per-attribute token-set length ranges (EBooks'
/// long `description` makes it the slowest dataset), vocabulary sizes, two
/// sources with a planted match fraction, and topic structure.
struct DatasetProfile {
  std::string name;
  std::vector<std::string> attributes;
  /// Token count range per attribute for entity canonical values.
  std::vector<int> min_tokens;
  std::vector<int> max_tokens;
  /// Vocabulary size per attribute (before topic partitioning).
  std::vector<int> vocab_size;
  /// Fraction of each attribute value's tokens that are the topic's shared
  /// core (identical across all entities of the topic). This is what gives
  /// attributes the cross-tuple dependence that CDD mining discovers: high
  /// core fractions make an attribute largely determined by the topic of
  /// the entity (e.g. venue/genre), low fractions make it entity-specific
  /// (e.g. title).
  std::vector<double> topic_core_fraction;
  /// Paper-reported source sizes; the generator applies a scale factor.
  int size_a = 0;
  int size_b = 0;
  /// Fraction of source-B records that duplicate a source-A entity.
  double match_fraction = 0.5;
  /// Per-token replacement probability when deriving a record from its
  /// entity (duplicates are perturbed, not identical).
  double perturbation = 0.12;
  /// Number of latent topics; each entity belongs to exactly one.
  int num_topics = 10;

  int num_attributes() const { return static_cast<int>(attributes.size()); }
};

/// The five evaluation datasets of Section 6.1 (Table 4).
DatasetProfile CitationsProfile();
DatasetProfile AnimeProfile();
DatasetProfile BikesProfile();
DatasetProfile EBooksProfile();
DatasetProfile SongsProfile();

std::vector<DatasetProfile> AllProfiles();

/// Profile by name ("Citations", ...), CHECK-fails on unknown names.
DatasetProfile ProfileByName(const std::string& name);

}  // namespace terids

#endif  // TERIDS_DATAGEN_PROFILES_H_
