#ifndef TERIDS_IMPUTATION_RULE_BASED_IMPUTER_H_
#define TERIDS_IMPUTATION_RULE_BASED_IMPUTER_H_

#include <unordered_map>
#include <vector>

#include "imputation/imputer.h"
#include "repo/repository.h"
#include "rules/rule.h"

namespace terids {

/// Options for rule-based imputation.
struct RuleImputerOptions {
  /// Candidate values retained per missing attribute (highest frequency
  /// first) before instance materialization.
  int max_candidates_per_attr = 16;
  /// If true, candidate retrieval uses the sorted main-pivot coordinate
  /// lists as a necessary-condition filter before exact verification; if
  /// false, the whole attribute domain is scanned (the unindexed baselines
  /// CDD+ER / DD+ER / er+ER).
  bool use_coord_filter = true;
};

/// Imputes missing attributes by applying dependency rules against the data
/// repository R (Section 3).
///
/// One engine serves all three rule families — CDDs (Equations 3/4), DDs,
/// and editing rules — because they share the representation (rules/rule.h):
/// construct it with the corresponding miner output. This is the *linear*
/// strategy (scan all rules, scan all samples); the TER-iDS engine replaces
/// both scans with the CDD-index / DR-index join but reuses the candidate
/// accumulation helpers below, so indexed and unindexed paths provably
/// impute identically.
class RuleBasedImputer : public Imputer {
 public:
  RuleBasedImputer(const Repository* repo, std::vector<CddRule> rules,
                   RuleImputerOptions options);

  std::vector<ImputedTuple::ImputedAttr> ImputeRecord(
      const Record& r, CostBreakdown* cost) override;

  const std::vector<CddRule>& rules() const { return rules_; }
  /// Indices (into rules()) of the rules whose dependent attribute is j.
  const std::vector<int>& RulesForDependent(int attr) const;

 private:
  const Repository* repo_;
  std::vector<CddRule> rules_;
  std::vector<std::vector<int>> by_dependent_;
  RuleImputerOptions options_;
};

/// Accumulates, into `freq`, the candidate set cand(s[A_j]) contributed by
/// one (rule, repository sample) combination: every domain value `val` of
/// attribute `attr_j` with dist(s[A_j], val) inside the rule's dependent
/// interval gets its frequency bumped by 1 (Section 3). The caller is
/// responsible for having verified the determinant constraints.
void AccumulateCandidates(const Repository& repo, const CddRule& rule,
                          size_t sample_idx, bool use_coord_filter,
                          std::unordered_map<ValueId, double>* freq);

/// Converts an accumulated frequency distribution into the normalized
/// candidate list of Equation (4), keeping the top `max_candidates`.
std::vector<ImputedTuple::Candidate> FinalizeCandidates(
    const std::unordered_map<ValueId, double>& freq, int max_candidates);

}  // namespace terids

#endif  // TERIDS_IMPUTATION_RULE_BASED_IMPUTER_H_
