#include "synopsis/sharded_er_grid.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/hash.h"
#include "util/status.h"

namespace terids {

ShardedErGrid::ShardedErGrid(int dims, double cell_width, int num_shards,
                             Scheduler* scheduler)
    : dims_(dims), cell_width_(cell_width), scheduler_(scheduler) {
  TERIDS_CHECK(dims >= 1);
  TERIDS_CHECK(cell_width > 0.0);
  TERIDS_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ErGridShard>(dims));
  }
  if (num_shards > 1 && scheduler_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_shards);
  }
}

size_t ShardedErGrid::num_cells() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->num_cells();
  }
  return total;
}

GridCellKey ShardedErGrid::KeyOf(const std::vector<int32_t>& coords) const {
  // Coordinates are small non-negative cell indices (coord/width in [0,
  // ~1/width]).
  uint64_t h = kFnv1aOffsetBasis;
  for (int32_t c : coords) {
    h = Fnv1aMix(h, static_cast<uint64_t>(static_cast<uint32_t>(c)));
  }
  return h;
}

std::vector<GridCellKey> ShardedErGrid::CellsOf(
    const ImputedTuple& tuple) const {
  std::vector<GridCellKey> keys;
  std::vector<int32_t> coords(dims_);
  for (int m = 0; m < tuple.num_instances(); ++m) {
    for (int k = 0; k < dims_; ++k) {
      coords[k] = static_cast<int32_t>(
          std::floor(tuple.instance_coord(m, k) / cell_width_));
    }
    keys.push_back(KeyOf(coords));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

void ShardedErGrid::Insert(const WindowTuple* wt) {
  TERIDS_CHECK(wt != nullptr);
  Maintain(wt, /*expired=*/nullptr, /*parallel=*/false);
}

bool ShardedErGrid::Remove(const WindowTuple* wt) {
  TERIDS_CHECK(wt != nullptr);
  return Maintain(/*insert=*/nullptr, wt, /*parallel=*/false);
}

bool ShardedErGrid::Maintain(const WindowTuple* insert,
                             const WindowTuple* expired, bool parallel) {
  // Coordinator prologue (serial): route the insert's cell keys, resolve
  // which shards hold the expired tuple, and settle the rid maps — the
  // fan-out below then touches nothing but disjoint shards.
  std::vector<std::vector<GridCellKey>> routed(shards_.size());
  std::vector<int> holding;
  if (insert != nullptr) {
    TERIDS_CHECK(tuple_shards_.count(insert->rid()) == 0);
    for (GridCellKey key : CellsOf(*insert->tuple)) {
      routed[ShardOf(key)].push_back(key);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!routed[s].empty()) {
        holding.push_back(static_cast<int>(s));
      }
    }
  }
  std::vector<uint8_t> removes(shards_.size(), 0);
  bool found = true;
  if (expired != nullptr) {
    auto it = tuple_shards_.find(expired->rid());
    if (it == tuple_shards_.end()) {
      found = false;
    } else {
      for (int s : it->second) {
        removes[s] = 1;
      }
      if (it->second.size() > 1) {
        --multi_shard_tuples_;
      }
      tuple_shards_.erase(it);
    }
  }
  if (insert != nullptr) {
    if (holding.size() > 1) {
      ++multi_shard_tuples_;
    }
    tuple_shards_.emplace(insert->rid(), std::move(holding));
  }

  std::vector<int> involved;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!routed[s].empty() || removes[s] != 0) {
      involved.push_back(static_cast<int>(s));
    }
  }

  // Per-shard work, insert before remove (the serial sequence's order
  // within each shard; shards are mutually independent, so fan-out
  // scheduling cannot change the grid contents).
  const auto maintain_shard = [&](int64_t i) {
    const int s = involved[static_cast<size_t>(i)];
    if (!routed[s].empty()) {
      shards_[s]->Insert(insert, std::move(routed[s]));
    }
    if (removes[s] != 0) {
      TERIDS_CHECK(shards_[s]->Remove(expired));
    }
  };
  if (parallel && scheduler_ != nullptr && shards_.size() > 1 &&
      involved.size() > 1) {
    scheduler_->ParallelFor(ExecPhase::kMaintain,
                            static_cast<int64_t>(involved.size()),
                            maintain_shard);
  } else if (parallel && pool_ != nullptr && involved.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(involved.size()), maintain_shard);
  } else {
    for (size_t i = 0; i < involved.size(); ++i) {
      maintain_shard(static_cast<int64_t>(i));
    }
  }
  return found;
}

ShardedErGrid::CandidateResult ShardedErGrid::Candidates(
    const WindowTuple& probe, double gamma, bool topic_constrained) const {
  CandidateResult result;
  const ImputedTuple& q = *probe.tuple;
  const double dist_budget = static_cast<double>(dims_) - gamma;

  // Probe per-dimension coordinate intervals (main pivot), computed once
  // and shared by every shard of the fan-out.
  std::vector<Interval> q_bounds(dims_);
  for (int k = 0; k < dims_; ++k) {
    q_bounds[k] = q.pivot_dist_interval(k, 0);
  }

  // Fan out: each shard scans its own cells and writes only its own output
  // slot, so the probe is data-race free and scheduling-independent.
  std::vector<ErGridShard::ProbeOutput> outputs(shards_.size());
  const auto probe_shard = [&](int64_t i) {
    shards_[i]->Probe(probe, q_bounds, dist_budget, topic_constrained,
                      &outputs[i]);
  };
  if (scheduler_ != nullptr && shards_.size() > 1) {
    scheduler_->ParallelFor(ExecPhase::kCandidate,
                            static_cast<int64_t>(shards_.size()), probe_shard);
  } else if (pool_ != nullptr) {
    pool_->ParallelFor(static_cast<int64_t>(shards_.size()), probe_shard);
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) {
      probe_shard(static_cast<int64_t>(i));
    }
  }

  // Deterministic merge: counters sum (each cell lives in exactly one
  // shard), per-member verdicts max-merge (commutative, so shard order is
  // immaterial), candidates sort by rid.
  const auto finalize = [&result](std::pair<const WindowTuple*, int> pv) {
    if (pv.second == 2) {
      result.candidates.push_back(pv.first);
    } else if (pv.second == 1) {
      ++result.sim_pruned;
    } else {
      ++result.topic_pruned;
    }
  };
  for (const auto& output : outputs) {
    result.cells_visited += output.cells_visited;
    result.cells_pruned += output.cells_pruned;
  }
  if (shards_.size() == 1 || multi_shard_tuples_ == 0) {
    // Every live tuple's cells sit in one shard, so each member appears in
    // exactly one verdict map, already max-merged there: finalize directly
    // without building the cross-shard map.
    for (const auto& output : outputs) {
      for (const auto& [rid, pv] : output.verdicts) {
        (void)rid;
        finalize(pv);
      }
    }
  } else {
    std::unordered_map<int64_t, std::pair<const WindowTuple*, int>> merged;
    for (const auto& output : outputs) {
      for (const auto& [rid, pv] : output.verdicts) {
        auto [it, inserted] = merged.emplace(rid, pv);
        if (!inserted && pv.second > it->second.second) {
          it->second.second = pv.second;
        }
      }
    }
    for (const auto& [rid, pv] : merged) {
      (void)rid;
      finalize(pv);
    }
  }
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const WindowTuple* a, const WindowTuple* b) {
              return a->rid() < b->rid();
            });
  return result;
}

}  // namespace terids
