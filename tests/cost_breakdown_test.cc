#include <gtest/gtest.h>

#include "eval/cost_breakdown.h"

namespace terids {
namespace {

CostBreakdown Make(double cdd, double impute, double er) {
  CostBreakdown c;
  c.cdd_select_seconds = cdd;
  c.impute_seconds = impute;
  c.er_seconds = er;
  return c;
}

TEST(CostBreakdownTest, DefaultIsZero) {
  CostBreakdown c;
  EXPECT_DOUBLE_EQ(c.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(c.cdd_select_seconds, 0.0);
  EXPECT_DOUBLE_EQ(c.impute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(c.er_seconds, 0.0);
}

TEST(CostBreakdownTest, AddAccumulatesEveryPhase) {
  CostBreakdown total = Make(0.1, 0.2, 0.3);
  total.Add(Make(1.0, 2.0, 3.0));
  EXPECT_DOUBLE_EQ(total.cdd_select_seconds, 1.1);
  EXPECT_DOUBLE_EQ(total.impute_seconds, 2.2);
  EXPECT_DOUBLE_EQ(total.er_seconds, 3.3);
  EXPECT_DOUBLE_EQ(total.total_seconds(), 6.6);
}

TEST(CostBreakdownTest, OperatorsMatchAdd) {
  CostBreakdown a = Make(0.5, 1.0, 1.5);
  CostBreakdown b = Make(0.5, 0.25, 0.125);
  CostBreakdown sum = a + b;
  a += b;
  EXPECT_DOUBLE_EQ(sum.total_seconds(), a.total_seconds());
  EXPECT_DOUBLE_EQ(sum.cdd_select_seconds, 1.0);
  EXPECT_DOUBLE_EQ(sum.impute_seconds, 1.25);
  EXPECT_DOUBLE_EQ(sum.er_seconds, 1.625);
}

TEST(CostBreakdownTest, ResetClears) {
  CostBreakdown c = Make(1.0, 2.0, 3.0);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.total_seconds(), 0.0);
}

TEST(CostBreakdownTest, PerArrivalAverages) {
  CostBreakdown c = Make(1.0, 2.0, 3.0);
  CostBreakdown avg = c.PerArrival(4);
  EXPECT_DOUBLE_EQ(avg.cdd_select_seconds, 0.25);
  EXPECT_DOUBLE_EQ(avg.impute_seconds, 0.5);
  EXPECT_DOUBLE_EQ(avg.er_seconds, 0.75);
  EXPECT_DOUBLE_EQ(avg.total_seconds(), 1.5);
}

TEST(CostBreakdownTest, PerArrivalOfZeroArrivalsIsZero) {
  CostBreakdown c = Make(1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(c.PerArrival(0).total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(c.PerArrival(-5).total_seconds(), 0.0);
}

TEST(CostBreakdownTest, PhaseSharesSumToOne) {
  CostBreakdown c = Make(1.0, 1.0, 2.0);
  CostBreakdown::Shares shares = c.PhaseShares();
  EXPECT_DOUBLE_EQ(shares.cdd_select, 0.25);
  EXPECT_DOUBLE_EQ(shares.impute, 0.25);
  EXPECT_DOUBLE_EQ(shares.er, 0.5);
  EXPECT_DOUBLE_EQ(shares.cdd_select + shares.impute + shares.er, 1.0);
}

TEST(CostBreakdownTest, PhaseSharesOfZeroTotalAreZero) {
  CostBreakdown::Shares shares = CostBreakdown().PhaseShares();
  EXPECT_DOUBLE_EQ(shares.cdd_select, 0.0);
  EXPECT_DOUBLE_EQ(shares.impute, 0.0);
  EXPECT_DOUBLE_EQ(shares.er, 0.0);
}

TEST(CostBreakdownTest, ToJsonRendersAllFields) {
  CostBreakdown c = Make(0.125, 0.25, 0.5);
  c.refine_seconds = 0.375;
  c.batch_seconds = 0.0625;
  c.candidate_seconds = 0.03125;
  c.queue_wait_seconds = 0.015625;
  c.maintain_seconds = 0.0078125;
  c.cdd_memo_queries = 8;
  c.cdd_memo_repeats = 2;
  EXPECT_EQ(c.ToJson(),
            "{\"cdd_select_seconds\":0.125,\"impute_seconds\":0.25,"
            "\"er_seconds\":0.5,\"refine_seconds\":0.375,"
            "\"batch_seconds\":0.0625,\"candidate_seconds\":0.03125,"
            "\"queue_wait_seconds\":0.015625,"
            "\"maintain_seconds\":0.0078125,\"cdd_memo_queries\":8,"
            "\"cdd_memo_repeats\":2,\"cdd_memo_hit_rate\":0.25,"
            "\"total_seconds\":0.875}");
}

TEST(CostBreakdownTest, CddMemoHitRate) {
  CostBreakdown c;
  EXPECT_DOUBLE_EQ(c.cdd_memo_hit_rate(), 0.0);  // no lookups, no division
  c.cdd_memo_queries = 10;
  c.cdd_memo_repeats = 4;
  EXPECT_DOUBLE_EQ(c.cdd_memo_hit_rate(), 0.4);
  // Counters accumulate and scale like every other field, so per-arrival
  // normalisation preserves the rate.
  CostBreakdown sum = c + c;
  EXPECT_DOUBLE_EQ(sum.cdd_memo_queries, 20.0);
  EXPECT_DOUBLE_EQ(sum.cdd_memo_repeats, 8.0);
  EXPECT_DOUBLE_EQ(sum.PerArrival(5).cdd_memo_hit_rate(), 0.4);
}

TEST(CostBreakdownTest, RefineAndBatchTimingsAreOverlays) {
  // refine_seconds is contained in er_seconds and batch_seconds overlaps
  // all phases, so neither contributes to the additive total.
  CostBreakdown c = Make(0.1, 0.2, 0.4);
  c.refine_seconds = 0.3;
  c.batch_seconds = 0.7;
  EXPECT_DOUBLE_EQ(c.total_seconds(), 0.7);
  CostBreakdown sum = c + c;
  EXPECT_DOUBLE_EQ(sum.refine_seconds, 0.6);
  EXPECT_DOUBLE_EQ(sum.batch_seconds, 1.4);
  CostBreakdown avg = sum.PerArrival(2);
  EXPECT_DOUBLE_EQ(avg.refine_seconds, 0.3);
  EXPECT_DOUBLE_EQ(avg.batch_seconds, 0.7);
}

}  // namespace
}  // namespace terids
