// Tests for the paper's noted extensions: time-based sliding windows and
// the heterogeneous-schema similarity.

#include <gtest/gtest.h>

#include "er/similarity.h"
#include "stream/time_window.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

class TimeWindowTest : public ::testing::Test {
 protected:
  TimeWindowTest() : world_(MakeHealthWorld()) {}

  std::shared_ptr<WindowTuple> At(int64_t rid, int64_t timestamp) {
    Record r = world_.Make(rid, {"male", "fever", "flu", "rest"});
    r.timestamp = timestamp;
    auto wt = std::make_shared<WindowTuple>();
    wt->tuple = std::make_shared<const ImputedTuple>(
        ImputedTuple::FromComplete(r, world_.repo.get()));
    return wt;
  }

  ToyWorld world_;
};

TEST_F(TimeWindowTest, KeepsTuplesWithinDuration) {
  TimeBasedWindow window(10);
  EXPECT_TRUE(window.Push(At(1, 0)).empty());
  EXPECT_TRUE(window.Push(At(2, 5)).empty());
  EXPECT_TRUE(window.Push(At(3, 9)).empty());
  EXPECT_EQ(window.size(), 3u);
}

TEST_F(TimeWindowTest, EvictsExpiredBatch) {
  TimeBasedWindow window(10);
  window.Push(At(1, 0));
  window.Push(At(2, 1));
  window.Push(At(3, 8));
  // Arrival at t=11 expires tuples with timestamp <= 1.
  auto evicted = window.Push(At(4, 11));
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0]->rid(), 1);
  EXPECT_EQ(evicted[1]->rid(), 2);
  EXPECT_EQ(window.size(), 2u);
}

TEST_F(TimeWindowTest, MultipleArrivalsPerTimestamp) {
  // The time-based model's distinguishing feature (Section 2.1): several
  // tuples may share one timestamp and expire together.
  TimeBasedWindow window(5);
  window.Push(At(1, 3));
  window.Push(At(2, 3));
  window.Push(At(3, 3));
  EXPECT_EQ(window.size(), 3u);
  auto evicted = window.AdvanceTo(8);
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_EQ(window.size(), 0u);
}

TEST_F(TimeWindowTest, AdvanceToNeverMovesBackwards) {
  TimeBasedWindow window(10);
  window.Push(At(1, 7));
  EXPECT_TRUE(window.AdvanceTo(3).empty());  // Clock stays at 7.
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.AdvanceTo(17).size(), 1u);
}

TEST(HeterogeneousSimilarityTest, PoolsTokensAcrossAttributes) {
  ToyWorld world = MakeHealthWorld();
  // The same content distributed differently across attributes: the
  // homogeneous per-attribute sum differs, the heterogeneous form is 1.
  Record a = world.Make(1, {"male", "fever cough", "flu", "rest"});
  Record b = world.Make(2, {"male", "fever", "cough flu", "rest"});
  EXPECT_LT(RecordSimilarity(a, b), 4.0);
  EXPECT_DOUBLE_EQ(HeterogeneousRecordSimilarity(a, b), 1.0);
}

TEST(HeterogeneousSimilarityTest, RangeAndMissingHandling) {
  ToyWorld world = MakeHealthWorld();
  Record a = world.Make(1, {"male", "fever", "-", "-"});
  Record b = world.Make(2, {"female", "cough", "flu", "-"});
  const double sim = HeterogeneousRecordSimilarity(a, b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  // Disjoint tokens: exactly 0.
  EXPECT_DOUBLE_EQ(sim, 0.0);
}

TEST(HeterogeneousSimilarityTest, DuplicateTokensAcrossAttrsCountOnce) {
  ToyWorld world = MakeHealthWorld();
  Record a = world.Make(1, {"fever", "fever", "fever", "fever"});
  Record b = world.Make(2, {"fever", "cough", "cough", "cough"});
  // Union token sets: {fever} vs {fever, cough} -> 1/2.
  EXPECT_DOUBLE_EQ(HeterogeneousRecordSimilarity(a, b), 0.5);
}

}  // namespace
}  // namespace terids
