// Figure 14: TER-iDS effectiveness (F-score) vs the repository ratio eta.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  FscoreSweep("Figure 14", "eta", {0.1, 0.2, 0.3, 0.4, 0.5},
              [](ExperimentParams* p, double v) { p->eta = v; },
              AccuracyPipelines());
  return 0;
}
