#include <gtest/gtest.h>

#include "rules/rule.h"
#include "rules/rule_miner.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

CddRule IntervalRule(int dependent, int det_attr, double lo, double hi,
                     double dep_lo, double dep_hi) {
  CddRule rule;
  rule.dependent = dependent;
  rule.det_mask = 1u << det_attr;
  rule.determinants.emplace_back(det_attr,
                                 AttrConstraint::MakeInterval(lo, hi));
  rule.dep_interval = Interval::Of(dep_lo, dep_hi);
  return rule;
}

TEST(CddRuleTest, ApplicabilityRequiresMissingDependentAndPresentDets) {
  ToyWorld world = MakeHealthWorld();
  CddRule rule = IntervalRule(/*dependent=*/2, /*det=*/1, 0.0, 0.3, 0.0, 0.2);

  Record missing_diag = world.Make(1, {"male", "blurred vision", "-", "x"});
  EXPECT_TRUE(rule.ApplicableTo(missing_diag));

  Record complete = world.Make(2, {"male", "blurred vision", "flu", "x"});
  EXPECT_FALSE(rule.ApplicableTo(complete));  // Dependent not missing.

  Record missing_det = world.Make(3, {"male", "-", "-", "x"});
  EXPECT_FALSE(rule.ApplicableTo(missing_det));  // Determinant missing.
}

TEST(CddRuleTest, IntervalDeterminantSatisfaction) {
  ToyWorld world = MakeHealthWorld();
  // Sample 1 in the toy repo has symptom "loss of weight blurred vision".
  Record r = world.Make(1, {"male", "blurred vision", "-", "x"});
  CddRule tight = IntervalRule(2, 1, 0.0, 0.7, 0.0, 0.2);
  CddRule impossible = IntervalRule(2, 1, 0.0, 0.05, 0.0, 0.2);
  // dist("blurred vision", "loss of weight blurred vision") = 1 - 2/5 = 0.6.
  EXPECT_TRUE(tight.DeterminantsSatisfied(r, *world.repo, 1));
  EXPECT_FALSE(impossible.DeterminantsSatisfied(r, *world.repo, 1));
}

TEST(CddRuleTest, RelaxedEpsMinExcludesTooSimilarPairs) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(1, {"male", "blurred vision", "-", "x"});
  // eps_min = 0.7 > actual distance 0.6: constraint not satisfied. This is
  // the paper's relaxation of eps_min beyond 0.
  CddRule rule = IntervalRule(2, 1, 0.7, 1.0, 0.0, 0.2);
  EXPECT_FALSE(rule.DeterminantsSatisfied(r, *world.repo, 1));
}

TEST(CddRuleTest, ConstantDeterminantRequiresBothSidesEqual) {
  ToyWorld world = MakeHealthWorld();
  const AttributeDomain& gender = world.repo->domain(0);
  ValueId male = kInvalidValueId;
  for (ValueId v = 0; v < gender.size(); ++v) {
    if (gender.text(v) == "male") male = v;
  }
  ASSERT_NE(male, kInvalidValueId);

  CddRule rule;
  rule.dependent = 2;
  rule.det_mask = 1u << 0;
  rule.determinants.emplace_back(0, AttrConstraint::MakeConstant(male));
  rule.dep_interval = Interval::Of(0.0, 0.2);

  Record male_rec = world.Make(1, {"male", "fever", "-", "x"});
  Record female_rec = world.Make(2, {"female", "fever", "-", "x"});
  // Sample 0 is male; sample 2 is female.
  EXPECT_TRUE(rule.DeterminantsSatisfied(male_rec, *world.repo, 0));
  EXPECT_FALSE(rule.DeterminantsSatisfied(female_rec, *world.repo, 0));
  EXPECT_FALSE(rule.DeterminantsSatisfied(male_rec, *world.repo, 2));
}

TEST(CddRuleTest, FamilyClassification) {
  CddRule dd = IntervalRule(2, 1, 0.0, 0.3, 0.0, 0.2);
  EXPECT_TRUE(dd.IsDd());
  EXPECT_FALSE(dd.IsEditingRule());

  CddRule editing;
  editing.dependent = 2;
  editing.det_mask = 1u << 0;
  editing.determinants.emplace_back(0, AttrConstraint::MakeConstant(0));
  editing.dep_interval = Interval::Of(0.0, 0.0);
  EXPECT_FALSE(editing.IsDd());
  EXPECT_TRUE(editing.IsEditingRule());
}

TEST(CddRuleTest, ToStringIsReadable) {
  ToyWorld world = MakeHealthWorld();
  CddRule rule = IntervalRule(2, 1, 0.0, 0.3, 0.0, 0.2);
  const std::string s = rule.ToString(*world.schema);
  EXPECT_NE(s.find("symptom"), std::string::npos);
  EXPECT_NE(s.find("diagnosis"), std::string::npos);
}

// --- Miner tests -------------------------------------------------------

class MinerTest : public ::testing::Test {
 protected:
  MinerTest() : world_(MakeHealthWorld()) {}
  ToyWorld world_;
};

TEST_F(MinerTest, CddRulesAreWellFormed) {
  MinerOptions opts;
  opts.min_support = 2;
  RuleMiner miner(world_.repo.get(), opts);
  std::vector<CddRule> rules = miner.MineCdds();
  ASSERT_FALSE(rules.empty());
  for (const CddRule& rule : rules) {
    EXPECT_GE(rule.dependent, 0);
    EXPECT_LT(rule.dependent, world_.repo->num_attributes());
    EXPECT_NE(rule.det_mask, 0u);
    EXPECT_EQ(rule.det_mask & (1u << rule.dependent), 0u);
    EXPECT_GE(rule.support, opts.min_support);
    EXPECT_FALSE(rule.dep_interval.empty());
    EXPECT_GE(rule.dep_interval.lo, 0.0);
    EXPECT_LE(rule.dep_interval.hi, 1.0);
    // det_mask must agree with the determinant list.
    uint32_t mask = 0;
    for (const auto& [attr, c] : rule.determinants) {
      (void)c;
      mask |= (1u << attr);
    }
    EXPECT_EQ(mask, rule.det_mask);
  }
}

TEST_F(MinerTest, DdRulesHaveClassicForm) {
  MinerOptions opts;
  opts.min_support = 2;
  RuleMiner miner(world_.repo.get(), opts);
  for (const CddRule& rule : miner.MineDds()) {
    EXPECT_TRUE(rule.IsDd());
    for (const auto& [attr, c] : rule.determinants) {
      (void)attr;
      EXPECT_DOUBLE_EQ(c.interval.lo, 0.0);  // eps_min anchored at 0.
    }
    EXPECT_DOUBLE_EQ(rule.dep_interval.lo, 0.0);
  }
}

TEST_F(MinerTest, EditingRulesAreConstantOnly) {
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_const_freq = 2;
  RuleMiner miner(world_.repo.get(), opts);
  for (const CddRule& rule : miner.MineEditingRules()) {
    for (const auto& [attr, c] : rule.determinants) {
      (void)attr;
      EXPECT_EQ(c.kind, AttrConstraint::Kind::kConstant);
    }
    EXPECT_LE(rule.dep_interval.hi, opts.editing_tolerance + 1e-12);
  }
}

TEST_F(MinerTest, MiningIsDeterministic) {
  MinerOptions opts;
  opts.min_support = 2;
  RuleMiner a(world_.repo.get(), opts);
  RuleMiner b(world_.repo.get(), opts);
  std::vector<CddRule> ra = a.MineCdds();
  std::vector<CddRule> rb = b.MineCdds();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].dependent, rb[i].dependent);
    EXPECT_EQ(ra[i].det_mask, rb[i].det_mask);
    EXPECT_EQ(ra[i].dep_interval, rb[i].dep_interval);
  }
}

TEST_F(MinerTest, AbsorbNewSampleWidensViolatedRules) {
  MinerOptions opts;
  opts.min_support = 2;
  RuleMiner miner(world_.repo.get(), opts);
  std::vector<CddRule> rules = miner.MineCdds();
  ASSERT_FALSE(rules.empty());

  // A sample that matches existing determinants but carries an unusual
  // dependent value forces widening of some rule.
  Record oddball = world_.Make(
      3000, {"male", "loss of weight", "zebra fever syndrome", "surgery"});
  ASSERT_TRUE(world_.repo->AddSample(oddball).ok());
  const int widened =
      miner.AbsorbNewSample(world_.repo->num_samples() - 1, &rules);
  EXPECT_GT(widened, 0);
  for (const CddRule& rule : rules) {
    EXPECT_LE(rule.dep_interval.lo, rule.dep_interval.hi);
  }
}

}  // namespace
}  // namespace terids
