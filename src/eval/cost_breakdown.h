#ifndef TERIDS_EVAL_COST_BREAKDOWN_H_
#define TERIDS_EVAL_COST_BREAKDOWN_H_

namespace terids {

/// Per-arrival cost accounting for the break-up analysis of Figure 6:
/// online CDD selection, online imputation, and online ER cost.
struct CostBreakdown {
  double cdd_select_seconds = 0.0;
  double impute_seconds = 0.0;
  double er_seconds = 0.0;

  double total_seconds() const {
    return cdd_select_seconds + impute_seconds + er_seconds;
  }

  void Add(const CostBreakdown& other) {
    cdd_select_seconds += other.cdd_select_seconds;
    impute_seconds += other.impute_seconds;
    er_seconds += other.er_seconds;
  }

  void Reset() { *this = CostBreakdown(); }
};

}  // namespace terids

#endif  // TERIDS_EVAL_COST_BREAKDOWN_H_
