// Quickstart: run the TER-iDS engine end to end on a generated workload.
//
// Demonstrates the whole public API surface in ~80 lines:
//   1. generate a dataset (two sources + repository pool + ground truth),
//   2. build the repository, select pivots, mine CDD rules,
//   3. construct the TER-iDS engine,
//   4. stream arrivals through it and watch matches appear,
//   5. score the run against the effective ground truth.

#include <cstdio>

#include "core/pipeline.h"
#include "core/terids_engine.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"

int main() {
  using namespace terids;

  // Dataset: a scaled-down Citations workload (DBLP vs ACM style), 30%
  // missing rate, one missing attribute per incomplete tuple.
  ExperimentParams params;
  params.scale = 0.1;
  params.w = 150;
  params.xi = 0.3;
  params.m = 1;
  params.max_arrivals = 600;

  Experiment experiment(CitationsProfile(), params);
  std::printf("dataset: %s  |A|=%zu |B|=%zu  repository=%zu  rules: %zu CDDs\n",
              experiment.dataset().name.c_str(),
              experiment.dataset().source_a.size(),
              experiment.dataset().source_b.size(),
              experiment.dataset().repo_records.size(),
              experiment.cdds().size());
  std::printf("query: keywords={%s} gamma=%.2f alpha=%.2f w=%d\n",
              experiment.dataset().topic_keywords[0].c_str(),
              experiment.gamma(), params.alpha, params.w);

  // Run the full TER-iDS engine.
  PipelineRun run = experiment.Run(PipelineKind::kTerIds);
  std::printf("\n[%s] %zu arrivals in %.3fs (avg %.3f ms/arrival)\n",
              run.name.c_str(), run.arrivals, run.total_seconds,
              1e3 * run.avg_arrival_seconds);
  std::printf("  pairs considered: %llu  pruned: %.2f%%  (topic %.2f%% | "
              "simUB %.2f%% | probUB %.2f%% | instance %.2f%%)\n",
              static_cast<unsigned long long>(run.stats.total_pairs),
              100.0 * run.stats.TotalPower(),
              100.0 * run.stats.PowerOf(run.stats.topic_pruned),
              100.0 * run.stats.PowerOf(run.stats.sim_ub_pruned),
              100.0 * run.stats.PowerOf(run.stats.prob_ub_pruned),
              100.0 * run.stats.PowerOf(run.stats.instance_pruned));
  std::printf("  matches reported: %zu  truth: %zu  precision=%.3f "
              "recall=%.3f F=%.3f\n",
              run.accuracy.returned, run.accuracy.truth_size,
              run.accuracy.precision, run.accuracy.recall,
              run.accuracy.f_score);

  // Compare with one unindexed baseline to see the efficiency gap.
  PipelineRun baseline = experiment.Run(PipelineKind::kConstraintEr);
  std::printf("\n[%s] avg %.3f ms/arrival, F=%.3f (stream-only imputation)\n",
              baseline.name.c_str(), 1e3 * baseline.avg_arrival_seconds,
              baseline.accuracy.f_score);
  return 0;
}
