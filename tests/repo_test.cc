#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "repo/repository.h"
#include "test_util.h"
#include "util/rng.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

TEST(AttributeDomainTest, DeduplicatesByTokenSet) {
  ToyWorld world = MakeHealthWorld();
  // "diabetes" appears in several samples but the domain holds it once.
  const AttributeDomain& dom = world.repo->domain(2);
  int diabetes_count = 0;
  for (ValueId v = 0; v < dom.size(); ++v) {
    if (dom.text(v) == "diabetes") ++diabetes_count;
  }
  EXPECT_EQ(diabetes_count, 1);
}

TEST(AttributeDomainTest, FrequencyCountsSamples) {
  ToyWorld world = MakeHealthWorld();
  const AttributeDomain& dom = world.repo->domain(2);
  ValueId diabetes = kInvalidValueId;
  for (ValueId v = 0; v < dom.size(); ++v) {
    if (dom.text(v) == "diabetes") diabetes = v;
  }
  ASSERT_NE(diabetes, kInvalidValueId);
  EXPECT_EQ(dom.frequency(diabetes), 4);  // 4 diabetes samples in the toy set.
}

TEST(RepositoryTest, RejectsIncompleteSamples) {
  ToyWorld world = MakeHealthWorld();
  Record bad = world.Make(99, {"male", "-", "flu", "rest"});
  EXPECT_FALSE(world.repo->AddSample(bad).ok());
}

TEST(RepositoryTest, RejectsWrongArity) {
  ToyWorld world = MakeHealthWorld();
  Record bad;
  bad.rid = 99;
  bad.values.resize(2);
  EXPECT_FALSE(world.repo->AddSample(bad).ok());
}

TEST(RepositoryTest, SampleValueIdsConsistentWithDomains) {
  ToyWorld world = MakeHealthWorld();
  for (size_t i = 0; i < world.repo->num_samples(); ++i) {
    for (int x = 0; x < world.repo->num_attributes(); ++x) {
      const ValueId vid = world.repo->sample_value_id(i, x);
      EXPECT_TRUE(world.repo->domain(x).tokens(vid) ==
                  world.repo->sample(i).values[x].tokens);
    }
  }
}

TEST(RepositoryTest, PivotDistanceMatchesDirectComputation) {
  ToyWorld world = MakeHealthWorld();
  for (int x = 0; x < world.repo->num_attributes(); ++x) {
    const AttributeDomain& dom = world.repo->domain(x);
    for (int a = 0; a < world.repo->num_pivots(x); ++a) {
      for (ValueId v = 0; v < dom.size(); ++v) {
        EXPECT_DOUBLE_EQ(
            world.repo->pivot_distance(x, a, v),
            JaccardDistance(dom.tokens(v), world.repo->pivot_tokens(x, a)));
      }
    }
  }
}

TEST(RepositoryTest, ValuesInCoordRangeMatchesBruteForce) {
  ToyWorld world = MakeHealthWorld();
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int x =
        static_cast<int>(rng.NextBounded(world.repo->num_attributes()));
    double lo = rng.NextDouble();
    double hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const Interval band = Interval::Of(lo, hi);
    std::vector<ValueId> got = world.repo->ValuesInCoordRange(x, band);
    std::sort(got.begin(), got.end());
    std::vector<ValueId> want;
    for (ValueId v = 0; v < world.repo->domain(x).size(); ++v) {
      if (band.Contains(world.repo->coord(x, v))) {
        want.push_back(v);
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST(RepositoryTest, RegisterValueExtendsPivotTables) {
  ToyWorld world = MakeHealthWorld();
  const size_t before = world.repo->domain(2).size();
  TokenDict* dict = world.dict.get();
  Tokenizer tok(dict);
  TokenSet tokens = tok.Tokenize("hypertension");
  const ValueId vid = world.repo->RegisterValue(2, tokens, "hypertension");
  EXPECT_EQ(world.repo->domain(2).size(), before + 1);
  // Pivot distances are immediately queryable for the new value.
  EXPECT_DOUBLE_EQ(world.repo->pivot_distance(2, 0, vid),
                   JaccardDistance(tokens, world.repo->pivot_tokens(2, 0)));
  // And the value is findable through the coordinate range scan.
  const double c = world.repo->coord(2, vid);
  std::vector<ValueId> got = world.repo->ValuesInCoordRange(
      2, Interval::Of(c - 1e-9, c + 1e-9));
  EXPECT_NE(std::find(got.begin(), got.end(), vid), got.end());
}

TEST(RepositoryTest, RegisterValueIsIdempotentForKnownTokens) {
  ToyWorld world = MakeHealthWorld();
  const AttributeDomain& dom = world.repo->domain(2);
  const size_t before = dom.size();
  const TokenSet existing = dom.tokens(0);
  const ValueId vid = world.repo->RegisterValue(2, existing, "dup");
  EXPECT_EQ(vid, 0u);
  EXPECT_EQ(dom.size(), before);
}

TEST(RepositoryTest, AddSampleAfterPivotsKeepsTablesConsistent) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(
      2000, {"female", "sore throat fever", "strep throat", "antibiotics"});
  ASSERT_TRUE(world.repo->AddSample(r).ok());
  const size_t i = world.repo->num_samples() - 1;
  for (int x = 0; x < world.repo->num_attributes(); ++x) {
    const ValueId vid = world.repo->sample_value_id(i, x);
    EXPECT_DOUBLE_EQ(
        world.repo->coord(x, vid),
        JaccardDistance(r.values[x].tokens, world.repo->pivot_tokens(x, 0)));
  }
}

TEST(AttributeDomainTest, BumpFrequencyOutOfRangeIsChecked) {
  AttributeDomain dom;
  // Regression: BumpFrequency was the only accessor without a bounds
  // guard — an out-of-range ValueId was silent UB on frequencies_[id].
  EXPECT_DEATH(dom.BumpFrequency(0), "frequencies_");
  TokenSet one = TokenSet::FromTokens({1, 2});
  const ValueId vid = dom.FindOrAdd(one, "one two");
  dom.BumpFrequency(vid);
  EXPECT_EQ(dom.frequency(vid), 1);
  EXPECT_DEATH(dom.BumpFrequency(vid + 1), "frequencies_");
}

// --- Dynamic repository: RegisterValue after AttachPivots ----------------

TEST(RepositoryTest, IncrementalInsertsKeepCoordListOrdered) {
  ToyWorld world = MakeHealthWorld();
  Tokenizer tok(world.dict.get());
  const std::vector<std::string> texts = {
      "hypertension", "severe migraine", "fever",
      "loss of weight thirst fatigue", "eye drop rest sleep"};
  for (const std::string& text : texts) {
    world.repo->RegisterValue(2, tok.Tokenize(text), text);
  }
  // The full-range scan surfaces the maintained list; it must stay sorted
  // by (coordinate, ValueId) after every incremental insert.
  const std::vector<ValueId> all =
      world.repo->ValuesInCoordRange(2, Interval::Of(0.0, 1.0));
  ASSERT_EQ(all.size(), world.repo->domain_size(2));
  for (size_t i = 1; i < all.size(); ++i) {
    const auto prev = std::make_pair(world.repo->coord(2, all[i - 1]),
                                     all[i - 1]);
    const auto cur = std::make_pair(world.repo->coord(2, all[i]), all[i]);
    EXPECT_LT(prev, cur) << "position " << i;
  }
}

TEST(RepositoryTest, DuplicateRegisterValueAfterPivotsIsANoOp) {
  ToyWorld world = MakeHealthWorld();
  Tokenizer tok(world.dict.get());
  const TokenSet tokens = tok.Tokenize("hypertension");
  const ValueId vid = world.repo->RegisterValue(2, tokens, "hypertension");
  const size_t size = world.repo->domain_size(2);
  const std::vector<ValueId> scan =
      world.repo->ValuesInCoordRange(2, Interval::Of(0.0, 1.0));
  // Re-registering the same token set (even under a different display
  // text) must not grow the domain, the pivot tables, or the coord list.
  EXPECT_EQ(world.repo->RegisterValue(2, tokens, "other text"), vid);
  EXPECT_EQ(world.repo->domain_size(2), size);
  EXPECT_EQ(world.repo->ValuesInCoordRange(2, Interval::Of(0.0, 1.0)), scan);
}

TEST(RepositoryTest, CoordRangeEndpointsAreInclusiveHits) {
  ToyWorld world = MakeHealthWorld();
  Tokenizer tok(world.dict.get());
  const TokenSet tokens = tok.Tokenize("hypertension");
  const ValueId vid = world.repo->RegisterValue(2, tokens, "hypertension");
  const double c = world.repo->coord(2, vid);

  auto contains = [&](const Interval& band) {
    const std::vector<ValueId> got = world.repo->ValuesInCoordRange(2, band);
    return std::find(got.begin(), got.end(), vid) != got.end();
  };
  // The value's exact coordinate at either endpoint is a hit...
  EXPECT_TRUE(contains(Interval::Of(c, c)));
  EXPECT_TRUE(contains(Interval::Of(0.0, c)));   // hit exactly at hi
  EXPECT_TRUE(contains(Interval::Of(c, 1.0)));   // hit exactly at lo
  // ...and one ulp past either endpoint is a miss.
  const double below = std::nextafter(c, -1.0);
  const double above = std::nextafter(c, 2.0);
  EXPECT_FALSE(contains(Interval::Of(0.0, below)));
  EXPECT_FALSE(contains(Interval::Of(above, 1.0)));
}

}  // namespace
}  // namespace terids
