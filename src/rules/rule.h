#ifndef TERIDS_RULES_RULE_H_
#define TERIDS_RULES_RULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "repo/repository.h"
#include "tuple/record.h"
#include "util/interval.h"

namespace terids {

/// Constraint phi[A_x] on one determinant attribute of a CDD (Definition 3):
/// either a distance interval [eps_min, eps_max] on the Jaccard distance of
/// the two tuples' values, or a specific constant value both must equal.
struct AttrConstraint {
  enum class Kind { kInterval, kConstant };

  Kind kind = Kind::kInterval;
  /// For kInterval: the distance constraint. The paper relaxes eps_min to
  /// any non-negative value < eps_max, which we honor.
  Interval interval = Interval::Of(0.0, 1.0);
  /// For kConstant: the required value, as an id into dom(A_x).
  ValueId constant_vid = kInvalidValueId;

  static AttrConstraint MakeInterval(double lo, double hi) {
    AttrConstraint c;
    c.kind = Kind::kInterval;
    c.interval = Interval::Of(lo, hi);
    return c;
  }
  static AttrConstraint MakeConstant(ValueId vid) {
    AttrConstraint c;
    c.kind = Kind::kConstant;
    c.constant_vid = vid;
    return c;
  }
};

/// A conditional differential dependency X -> A_j, phi[X A_j] (Definition 3).
///
/// DDs and editing rules are represented in the same structure: a DD is a
/// CDD whose determinant constraints are all intervals with eps_min = 0; an
/// editing rule is a CDD whose determinant constraints are all constants and
/// whose dependent interval is [0, 0] (exact copy).
struct CddRule {
  int dependent = -1;
  /// Bit x set iff attribute x is a determinant. (The aR-tree encodes
  /// non-determinant attributes as the paper's [-1,-1] "missing" marker.)
  uint32_t det_mask = 0;
  /// (attribute, constraint) pairs sorted by attribute index.
  std::vector<std::pair<int, AttrConstraint>> determinants;
  /// The dependent distance constraint A_j.I.
  Interval dep_interval = Interval::Of(0.0, 1.0);
  /// Number of repository pairs that supported this rule during mining.
  int support = 0;

  bool IsDd() const;
  bool IsEditingRule() const;

  /// True iff every determinant attribute is non-missing in `r` (the rule
  /// can be evaluated against r at all).
  bool ApplicableTo(const Record& r) const;

  /// True iff (r, sample `sample_idx` of repo) satisfy phi[X]: every
  /// interval determinant's Jaccard distance lies inside its interval, and
  /// every constant determinant matches on both sides.
  bool DeterminantsSatisfied(const Record& r, const Repository& repo,
                             size_t sample_idx) const;

  /// Debug rendering, e.g. "[title,authors] -> venue, {[0,0.2],[0,0.3]} I=[0,0.25]".
  std::string ToString(const Schema& schema) const;
};

}  // namespace terids

#endif  // TERIDS_RULES_RULE_H_
