#ifndef TERIDS_EVAL_COST_BREAKDOWN_H_
#define TERIDS_EVAL_COST_BREAKDOWN_H_

#include <string>

namespace terids {

/// Per-arrival cost accounting for the break-up analysis of Figure 6:
/// online CDD selection, online imputation, and online ER cost.
struct CostBreakdown {
  double cdd_select_seconds = 0.0;
  double impute_seconds = 0.0;
  double er_seconds = 0.0;
  /// Pair-refinement wall time (the RefinementExecutor's task set in
  /// batched/parallel mode). Contained in `er_seconds`, so it is an
  /// overlay metric, not a fourth additive phase.
  double refine_seconds = 0.0;
  /// Wall time of the whole batched operator attributed evenly across the
  /// batch's arrivals. Overlaps the three phases; zero in one-at-a-time
  /// processing. Under async ingest this sums the ingest-stage and
  /// refine-stage walls, which overlap across batches, so it upper-bounds
  /// the true wall attribution.
  double batch_seconds = 0.0;
  /// Candidate-generation wall time (the sharded ER-grid probe fan-out, or
  /// the linear window scan). Contained in `er_seconds`; overlay metric.
  double candidate_seconds = 0.0;
  /// Time the refine stage spent blocked on the ingest BatchQueue waiting
  /// for the next ingested batch (async mode only; spread evenly across the
  /// batch's arrivals). Zero wait = ingest keeps up = the overlap is real.
  double queue_wait_seconds = 0.0;
  /// Window/grid maintenance wall time (window push, grid insert/remove
  /// fan-out, eviction cascade). Not contained in `er_seconds`; overlay
  /// metric feeding the per-arrival kMaintain latency histogram.
  double maintain_seconds = 0.0;
  /// CDD-selection memoization probe (ROADMAP: measure before building the
  /// cache): determinant-signature lookups per (arrival, missing attribute)
  /// and how many of them repeated a signature already seen in the same
  /// micro-batch — the would-be hit count of a batch-scoped CDD-selection
  /// cache. Stored as doubles so Add/Scaled/PerArrival apply uniformly.
  double cdd_memo_queries = 0.0;
  double cdd_memo_repeats = 0.0;

  double total_seconds() const {
    return cdd_select_seconds + impute_seconds + er_seconds;
  }

  /// Would-be hit rate of a batch-scoped CDD-selection memo (0 when no
  /// lookups were recorded).
  double cdd_memo_hit_rate() const {
    return cdd_memo_queries > 0.0 ? cdd_memo_repeats / cdd_memo_queries : 0.0;
  }

  void Add(const CostBreakdown& other) {
    cdd_select_seconds += other.cdd_select_seconds;
    impute_seconds += other.impute_seconds;
    er_seconds += other.er_seconds;
    refine_seconds += other.refine_seconds;
    batch_seconds += other.batch_seconds;
    candidate_seconds += other.candidate_seconds;
    queue_wait_seconds += other.queue_wait_seconds;
    maintain_seconds += other.maintain_seconds;
    cdd_memo_queries += other.cdd_memo_queries;
    cdd_memo_repeats += other.cdd_memo_repeats;
  }

  void Reset() { *this = CostBreakdown(); }

  CostBreakdown& operator+=(const CostBreakdown& other) {
    Add(other);
    return *this;
  }

  /// Uniformly scaled copy; used by PerArrival and sweep normalisation.
  CostBreakdown Scaled(double factor) const;

  /// Average cost over `arrivals` processed tuples (Figure 6 reports
  /// ms/arrival). Zero or negative arrival counts yield a zero breakdown.
  CostBreakdown PerArrival(long long arrivals) const;

  /// Fraction of total time in each phase. All zeros when the total is zero
  /// so callers never divide by zero.
  struct Shares {
    double cdd_select = 0.0;
    double impute = 0.0;
    double er = 0.0;
  };
  Shares PhaseShares() const;

  /// Flat JSON object, e.g. {"cdd_select_seconds":0.1,...,"total_seconds":
  /// 0.3}; consumed by the bench harness's TERIDS_BENCH_JSON artifacts.
  std::string ToJson() const;
};

inline CostBreakdown operator+(CostBreakdown lhs, const CostBreakdown& rhs) {
  lhs += rhs;
  return lhs;
}

}  // namespace terids

#endif  // TERIDS_EVAL_COST_BREAKDOWN_H_
