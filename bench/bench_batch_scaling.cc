// Batch scaling: arrival throughput of the phase-structured operator as a
// function of micro-batch size x refinement threads. Not a paper figure —
// this tracks the ROADMAP scaling items (batched arrivals, parallel
// refinement) on top of the reproduced system.
//
// The workload is deliberately refinement-heavy (unconstrained topic, low
// rho), the regime the executor targets: candidate pairs that survive to
// the Theorem 4.3/4.4 stage dominate arrival cost. TER-iDS exercises the
// pruned cascade; CDD+ER exercises the unpruned exact path, which is
// embarrassingly parallel end-to-end. Speedups are reported against the
// 1/1 configuration of the same dataset x pipeline; thread speedups
// require physical cores (a 1-core host shows batching effects only).

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "datagen/profiles.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  JsonReporter reporter("batch_scaling");
  // Shard / queue knobs ride along from the environment (the sweep axes
  // here stay batch x threads; bench_shard_scaling sweeps the other two).
  const ExecKnobs env_knobs = EnvExecKnobs();
  const std::vector<std::pair<int, int>> grid = {
      {1, 1}, {8, 1}, {1, 4}, {8, 4}};
  const std::vector<PipelineKind> kinds = {PipelineKind::kTerIds,
                                           PipelineKind::kCddEr};
  const std::vector<std::string> datasets = {"Citations", "Anime"};

  ExperimentParams banner = BaseParams("Citations");
  PrintHeader("batch_scaling",
              "arrival throughput vs batch_size x refine_threads", banner);
  std::printf("%-10s %-8s %6s %8s %14s %14s %9s\n", "dataset", "pipeline",
              "batch", "threads", "ms/arrival", "arrivals/s", "speedup");

  for (const std::string& name : datasets) {
    ExperimentParams params = BaseParams(name);
    // Refinement-heavy regime: no topic constraint (Theorem 4.1 off) and a
    // low similarity threshold so few pairs die at the cheap bound stages.
    params.topics_in_query = 0;
    params.rho = 0.3;
    // Throughput ratios need enough arrivals to rise above timer noise,
    // even under the CI smoke job's aggressive TERIDS_BENCH_SCALE.
    if (params.scale < 0.08) params.scale = 0.08;
    if (params.max_arrivals < 400) params.max_arrivals = 400;
    Experiment experiment(ProfileByName(name), params);
    for (PipelineKind kind : kinds) {
      double base_throughput = 0.0;
      for (const auto& [batch, threads] : grid) {
        PipelineRun run = experiment.Run(kind, batch, threads);
        const double throughput =
            run.total_seconds > 0
                ? static_cast<double>(run.arrivals) / run.total_seconds
                : 0.0;
        if (batch == 1 && threads == 1) {
          base_throughput = throughput;
        }
        const double speedup =
            base_throughput > 0 ? throughput / base_throughput : 0.0;
        std::printf("%-10s %-8s %6d %8d %14.4f %14.1f %8.2fx\n",
                    name.c_str(), PipelineKindName(kind), batch, threads,
                    1e3 * run.avg_arrival_seconds, throughput, speedup);
        std::fflush(stdout);
        ExecKnobs knobs = env_knobs;
        knobs.batch_size = batch;
        knobs.refine_threads = threads;
        reporter.AddKnobRow(knobs)
            .Str("dataset", name)
            .Str("pipeline", PipelineKindName(kind))
            .Num("ms_per_arrival", 1e3 * run.avg_arrival_seconds)
            .Num("arrivals_per_sec", throughput)
            .Num("speedup_vs_1x1", speedup)
            .Raw("cost", run.total_cost.PerArrival(run.arrivals).ToJson());
      }
    }
  }
  std::printf(
      "\nexpected shape: threads scale the refinement share of arrival cost\n"
      "(near-linear for the unpruned CDD+ER path on physical cores);\n"
      "micro-batches amortize executor dispatch and widen the parallel\n"
      "section. 1/1 is bit-identical to the pre-batching operator.\n");
  return 0;
}
