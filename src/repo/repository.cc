#include "repo/repository.h"

#include <algorithm>

#include "util/hash.h"

namespace terids {

// ---------------------------------------------------------------------------
// AttributeDomain
// ---------------------------------------------------------------------------

uint64_t AttributeDomain::HashTokens(const TokenSet& tokens) {
  // FNV-1a over the sorted token ids; collisions are resolved by the
  // multimap probe in Find/FindOrAdd.
  uint64_t h = kFnv1aOffsetBasis;
  for (Token t : tokens.tokens()) {
    h = Fnv1aMix(h, t);
  }
  return h;
}

ValueId AttributeDomain::FindOrAdd(const TokenSet& tokens,
                                   const std::string& text) {
  ValueId existing = Find(tokens);
  if (existing != kInvalidValueId) {
    return existing;
  }
  ValueId id = static_cast<ValueId>(values_.size());
  by_hash_.emplace(HashTokens(tokens), id);
  values_.push_back(tokens);
  texts_.push_back(text);
  frequencies_.push_back(0);
  return id;
}

ValueId AttributeDomain::Find(const TokenSet& tokens) const {
  auto [begin, end] = by_hash_.equal_range(HashTokens(tokens));
  for (auto it = begin; it != end; ++it) {
    if (values_[it->second] == tokens) {
      return it->second;
    }
  }
  return kInvalidValueId;
}

const TokenSet& AttributeDomain::tokens(ValueId id) const {
  TERIDS_CHECK(id < values_.size());
  return values_[id];
}

const std::string& AttributeDomain::text(ValueId id) const {
  TERIDS_CHECK(id < texts_.size());
  return texts_[id];
}

int AttributeDomain::frequency(ValueId id) const {
  TERIDS_CHECK(id < frequencies_.size());
  return frequencies_[id];
}

// ---------------------------------------------------------------------------
// Repository
// ---------------------------------------------------------------------------

Repository::Repository(const Schema* schema, const TokenDict* dict)
    : schema_(schema), dict_(dict) {
  TERIDS_CHECK(schema != nullptr);
  TERIDS_CHECK(dict != nullptr);
  domains_.resize(schema->num_attributes());
}

Status Repository::AddSample(const Record& record) {
  if (record.num_attributes() != schema_->num_attributes()) {
    return Status::InvalidArgument("sample arity does not match schema");
  }
  if (!record.IsComplete()) {
    return Status::InvalidArgument(
        "repository samples must be complete tuples");
  }
  std::vector<ValueId> vids(record.values.size());
  for (int x = 0; x < record.num_attributes(); ++x) {
    const AttrValue& v = record.values[x];
    ValueId vid = RegisterValue(x, v.tokens, v.text);
    domains_[x].BumpFrequency(vid);
    vids[x] = vid;
  }
  samples_.push_back(record);
  sample_vids_.push_back(std::move(vids));
  return Status::Ok();
}

ValueId Repository::RegisterValue(int attr, const TokenSet& tokens,
                                  const std::string& text) {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  const size_t before = domains_[attr].size();
  const ValueId vid = domains_[attr].FindOrAdd(tokens, text);
  if (domains_[attr].size() != before && has_pivots()) {
    // New value after pivots were attached: extend the distance tables and
    // the sorted coordinate list incrementally.
    const int np = pivots_[attr].count();
    for (int a = 0; a < np; ++a) {
      pivot_dists_[attr][a].push_back(
          JaccardDistance(tokens, pivots_[attr].pivots[a]));
    }
    const double coord = pivot_dists_[attr][0][vid];
    auto& coords = sorted_coords_[attr];
    coords.insert(std::upper_bound(coords.begin(), coords.end(),
                                   std::make_pair(coord, vid)),
                  std::make_pair(coord, vid));
  }
  return vid;
}

ValueId Repository::sample_value_id(size_t i, int attr) const {
  TERIDS_CHECK(i < sample_vids_.size());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  return sample_vids_[i][attr];
}

const AttributeDomain& Repository::domain(int attr) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  return domains_[attr];
}

AttributeDomain& Repository::mutable_domain(int attr) {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  return domains_[attr];
}

void Repository::AttachPivots(std::vector<AttributePivots> pivots) {
  TERIDS_CHECK(static_cast<int>(pivots.size()) == num_attributes());
  for (const AttributePivots& p : pivots) {
    TERIDS_CHECK(p.count() >= 1);
  }
  pivots_ = std::move(pivots);

  const int d = num_attributes();
  pivot_dists_.assign(d, {});
  sorted_coords_.assign(d, {});
  for (int x = 0; x < d; ++x) {
    const AttributeDomain& dom = domains_[x];
    const int np = pivots_[x].count();
    pivot_dists_[x].assign(np, std::vector<double>(dom.size(), 0.0));
    for (int a = 0; a < np; ++a) {
      for (ValueId v = 0; v < dom.size(); ++v) {
        pivot_dists_[x][a][v] =
            JaccardDistance(dom.tokens(v), pivots_[x].pivots[a]);
      }
    }
    sorted_coords_[x].reserve(dom.size());
    for (ValueId v = 0; v < dom.size(); ++v) {
      sorted_coords_[x].emplace_back(pivot_dists_[x][0][v], v);
    }
    std::sort(sorted_coords_[x].begin(), sorted_coords_[x].end());
  }
}

int Repository::num_pivots(int attr) const {
  TERIDS_CHECK(has_pivots());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  return pivots_[attr].count();
}

const TokenSet& Repository::pivot_tokens(int attr, int pivot_idx) const {
  TERIDS_CHECK(has_pivots());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  TERIDS_CHECK(pivot_idx >= 0 && pivot_idx < pivots_[attr].count());
  return pivots_[attr].pivots[pivot_idx];
}

double Repository::pivot_distance(int attr, int pivot_idx, ValueId vid) const {
  TERIDS_CHECK(has_pivots());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  TERIDS_CHECK(pivot_idx >= 0 && pivot_idx < pivots_[attr].count());
  TERIDS_CHECK(vid < pivot_dists_[attr][pivot_idx].size());
  return pivot_dists_[attr][pivot_idx][vid];
}

std::vector<ValueId> Repository::ValuesInCoordRange(
    int attr, const Interval& coord_interval) const {
  TERIDS_CHECK(has_pivots());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes());
  std::vector<ValueId> out;
  if (coord_interval.empty()) {
    return out;
  }
  const auto& coords = sorted_coords_[attr];
  auto lo = std::lower_bound(
      coords.begin(), coords.end(),
      std::make_pair(coord_interval.lo, static_cast<ValueId>(0)));
  for (auto it = lo; it != coords.end() && it->first <= coord_interval.hi;
       ++it) {
    out.push_back(it->second);
  }
  return out;
}

}  // namespace terids
