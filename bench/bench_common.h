#ifndef TERIDS_BENCH_BENCH_COMMON_H_
#define TERIDS_BENCH_BENCH_COMMON_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "eval/experiment.h"

namespace terids {
namespace bench {

/// Global size multiplier from the TERIDS_BENCH_SCALE environment variable
/// (default 1.0). Values < 1 shrink every dataset/window for quick runs;
/// values > 1 approach the paper's sizes at the cost of wall time.
double EnvScale();

/// Integer environment knob with a lower bound. Unset variables fall back
/// to `fallback` silently. A set variable must be a fully valid integer in
/// range: malformed values (empty, non-numeric, trailing garbage like
/// "8x"), values that overflow int, and values below `min_value` are all
/// rejected with a clear one-line stderr message before falling back —
/// a typo'd knob must never silently reconfigure a benchmark run.
/// The one shared parser behind every TERIDS_BENCH_* execution knob.
int EnvInt(const char* name, int fallback, int min_value);

/// The execution-model knobs, parsed once from TERIDS_BENCH_BATCH /
/// TERIDS_BENCH_THREADS / TERIDS_BENCH_SHARDS / TERIDS_BENCH_QUEUE
/// (defaults 1/1/1/0 = the classic one-at-a-time synchronous operator)
/// plus TERIDS_BENCH_SIGFILTER (0|1, default 1 = signature-bounded Jaccard
/// kernel on), TERIDS_BENCH_MAINTAIN (maintain_shards, default 1 = serial
/// grid maintenance), TERIDS_BENCH_SCHED (sched_threads, default 0 =
/// legacy per-subsystem pools; >= 1 = the unified scheduler's worker
/// count), the token-signature width from TERIDS_BENCH_SIGWIDTH (64 | 128
/// | 256, default 64; DESIGN.md §11), the repository storage backend from
/// TERIDS_BENCH_REPO_BACKEND ("memory" | "mmap", default memory), and the
/// v2 snapshot decode mode from TERIDS_BENCH_SNAPDECODE ("lazy" | "eager",
/// default lazy; mmap backend only), and the async-ingest overload policy
/// from TERIDS_BENCH_OVERLOAD ("block" | "shed_newest" | "shed_oldest" |
/// "degrade", default block; DESIGN.md §13).
/// Every bench that replays arrivals through Experiment::Run inherits them
/// via BaseParams, so any figure can be reproduced under micro-batching,
/// parallel refinement, grid sharding, async ingest, the signature filter
/// at any width, parallel maintain, the unified scheduler, and either
/// storage backend without code changes.
struct ExecKnobs {
  int batch_size = 1;
  int refine_threads = 1;
  int grid_shards = 1;
  int ingest_queue_depth = 0;
  bool signature_filter = true;
  int sig_width = 64;
  int maintain_shards = 1;
  int sched_threads = 0;
  RepoBackend repo_backend = RepoBackend::kInMemory;
  SnapshotDecode snapshot_decode = SnapshotDecode::kLazy;
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
};
ExecKnobs EnvExecKnobs();

/// Baseline parameters for one dataset: Table 5 defaults with sizes scaled
/// so the full suite finishes on one core (see EXPERIMENTS.md §Scaling).
/// Paper -> bench mapping: w 1000 -> 200, arrivals capped at 800, dataset
/// scale per profile (Songs is scaled hardest: 1M tuples -> ~16k).
ExperimentParams BaseParams(const std::string& dataset);

/// The paper's five evaluation datasets, in Table 4 order.
const std::vector<std::string>& AllDatasets();

/// All six pipelines of Section 6.1, TER-iDS first.
const std::vector<PipelineKind>& AllPipelines();
/// The four pipelines whose accuracy the paper plots (Figure 5(a)).
const std::vector<PipelineKind>& AccuracyPipelines();

/// Prints the figure banner and the effective parameter values.
void PrintHeader(const std::string& figure, const std::string& title,
                 const ExperimentParams& params);

/// Machine-readable bench output. When the TERIDS_BENCH_JSON environment
/// variable names a file, every row added here is written on destruction as
///   {"figure": "...", "bench_scale": 1.0, "rows": [{...}, ...]}
/// so CI can archive bench results as artifacts. With the variable unset
/// the reporter is a no-op and benches stay pure-stdout.
class JsonReporter {
 public:
  class Row {
   public:
    Row& Str(const std::string& key, const std::string& value);
    Row& Num(const std::string& key, double value);
    /// Splices a pre-rendered JSON value (e.g. CostBreakdown::ToJson()).
    Row& Raw(const std::string& key, const std::string& json);

   private:
    friend class JsonReporter;
    std::string body_;
  };

  explicit JsonReporter(std::string figure);
  ~JsonReporter();
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  bool enabled() const { return !path_.empty(); }
  Row& AddRow();
  /// AddRow with the effective execution-model knob columns pre-stamped
  /// (batch_size / refine_threads / grid_shards / ingest_queue_depth), so
  /// artifact rows from different knob settings stay distinguishable.
  Row& AddKnobRow(const ExecKnobs& knobs);

 private:
  std::string figure_;
  std::string path_;
  // deque, not vector: AddRow() hands out references that must survive
  // later AddRow() calls.
  std::deque<Row> rows_;
};

using ParamSetter = std::function<void(ExperimentParams*, double)>;

/// Sweeps `values` of one parameter over all datasets and pipelines,
/// printing one wall-clock (ms/arrival) table per dataset. Regenerates the
/// paper's efficiency figures (7-10, 16, 17).
void TimeSweep(const std::string& figure, const std::string& param_name,
               const std::vector<double>& values, const ParamSetter& setter,
               const std::vector<PipelineKind>& kinds);

/// Same sweep reporting F-scores (accuracy figures 13-15).
void FscoreSweep(const std::string& figure, const std::string& param_name,
                 const std::vector<double>& values, const ParamSetter& setter,
                 const std::vector<PipelineKind>& kinds);

}  // namespace bench
}  // namespace terids

#endif  // TERIDS_BENCH_BENCH_COMMON_H_
