#!/usr/bin/env bash
# Runs every bench binary in a build tree, teeing stdout tables and writing
# one JSON document per figure.
#
# Usage: scripts/run_benches.sh [build_dir] [out_dir]
#   TERIDS_BENCH_SCALE  size multiplier forwarded to the benches (default 1.0)
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench_results}"

if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found (run cmake first)" >&2
  exit 1
fi
mkdir -p "$out_dir"

shopt -s nullglob
ran=0
for bin in "$build_dir"/bench_*; do
  [[ -x $bin && ! -d $bin ]] || continue
  name="$(basename "$bin")"
  echo "==== $name ===="
  TERIDS_BENCH_JSON="$out_dir/$name.json" "$bin" | tee "$out_dir/$name.txt"
  ran=$((ran + 1))
done

if [[ $ran -eq 0 ]]; then
  echo "error: no bench binaries in '$build_dir' (build target terids_benches)" >&2
  exit 1
fi
echo "ran $ran benches; results in $out_dir/"
