#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "bench_common.h"

namespace terids {
namespace bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class JsonReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The expected documents assume the default scale of 1.
    unsetenv("TERIDS_BENCH_SCALE");
    path_ = ::testing::TempDir() + "/bench_json_test.json";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    unsetenv("TERIDS_BENCH_JSON");
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(JsonReporterTest, DisabledWithoutEnvVar) {
  unsetenv("TERIDS_BENCH_JSON");
  {
    JsonReporter reporter("Figure X");
    EXPECT_FALSE(reporter.enabled());
    reporter.AddRow().Str("dataset", "Citations").Num("f_score", 0.9);
  }
  EXPECT_EQ(ReadFile(path_), "");
}

TEST_F(JsonReporterTest, WritesDocumentOnDestruction) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("Figure X");
    EXPECT_TRUE(reporter.enabled());
    reporter.AddRow().Str("dataset", "Citations").Num("f_score", 0.5);
    reporter.AddRow().Str("dataset", "Anime").Num("pairs", 42);
  }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"Figure X\",\"bench_scale\":1,\"rows\":["
            "{\"dataset\":\"Citations\",\"f_score\":0.5},"
            "{\"dataset\":\"Anime\",\"pairs\":42}]}\n");
}

TEST_F(JsonReporterTest, EmptyRunYieldsEmptyRowsArray) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  { JsonReporter reporter("Figure Y"); }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"Figure Y\",\"bench_scale\":1,\"rows\":[]}\n");
}

TEST_F(JsonReporterTest, EscapesQuotesAndBackslashes) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("Fig \"Q\"");
    reporter.AddRow().Str("name", "a\\b\"c");
  }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"Fig \\\"Q\\\"\",\"bench_scale\":1,\"rows\":["
            "{\"name\":\"a\\\\b\\\"c\"}]}\n");
}

TEST_F(JsonReporterTest, EscapesControlCharacters) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("F");
    reporter.AddRow().Str("name", "a\nb\tc");
  }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"F\",\"bench_scale\":1,\"rows\":["
            "{\"name\":\"a\\u000ab\\u0009c\"}]}\n");
}

TEST_F(JsonReporterTest, RowReferencesSurviveLaterAddRowCalls) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("F");
    JsonReporter::Row& first = reporter.AddRow();
    for (int i = 0; i < 100; ++i) {
      reporter.AddRow().Num("i", i);
    }
    first.Num("late", 7);  // must not dangle despite 100 later rows
  }
  EXPECT_NE(ReadFile(path_).find("{\"late\":7}"), std::string::npos);
}

TEST_F(JsonReporterTest, RawSplicesPreRenderedJson) {
  setenv("TERIDS_BENCH_JSON", path_.c_str(), 1);
  {
    JsonReporter reporter("Figure Z");
    reporter.AddRow().Str("dataset", "Bikes").Raw("cost", "{\"er\":1.5}");
  }
  EXPECT_EQ(ReadFile(path_),
            "{\"figure\":\"Figure Z\",\"bench_scale\":1,\"rows\":["
            "{\"dataset\":\"Bikes\",\"cost\":{\"er\":1.5}}]}\n");
}

// ---------------------------------------------------------------------------
// EnvInt: the shared TERIDS_BENCH_* knob parser must reject malformed and
// out-of-range values loudly (stderr) instead of silently reconfiguring a
// benchmark run.
// ---------------------------------------------------------------------------

class EnvIntTest : public ::testing::Test {
 protected:
  static constexpr const char* kKnob = "TERIDS_BENCH_TESTKNOB";
  void TearDown() override {
    unsetenv(kKnob);
    unsetenv("TERIDS_BENCH_REPO_BACKEND");
    unsetenv("TERIDS_BENCH_SIGFILTER");
    unsetenv("TERIDS_BENCH_MAINTAIN");
  }

  /// Runs EnvInt and returns {value, stderr output}.
  std::pair<int, std::string> Parse(const char* env, int fallback,
                                    int min_value) {
    setenv(kKnob, env, 1);
    ::testing::internal::CaptureStderr();
    const int v = EnvInt(kKnob, fallback, min_value);
    return {v, ::testing::internal::GetCapturedStderr()};
  }
};

TEST_F(EnvIntTest, UnsetAndEmptyFallBackSilently) {
  unsetenv(kKnob);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(EnvInt(kKnob, 7, 1), 7);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  const auto [v, err] = Parse("", 7, 1);
  EXPECT_EQ(v, 7);
  EXPECT_EQ(err, "");
}

TEST_F(EnvIntTest, ParsesValidValues) {
  EXPECT_EQ(Parse("8", 1, 1).first, 8);
  EXPECT_EQ(Parse("-3", 0, -10).first, -3);
  EXPECT_EQ(Parse("1", 4, 1).first, 1);  // exactly at the minimum
}

TEST_F(EnvIntTest, RejectsTrailingGarbageWithMessage) {
  const auto [v, err] = Parse("8x", 3, 1);
  EXPECT_EQ(v, 3);
  EXPECT_NE(err.find(kKnob), std::string::npos);
  EXPECT_NE(err.find("not an integer"), std::string::npos) << err;
}

TEST_F(EnvIntTest, RejectsNonNumericWithMessage) {
  const auto [v, err] = Parse("fast", 2, 1);
  EXPECT_EQ(v, 2);
  EXPECT_NE(err.find("not an integer"), std::string::npos) << err;
}

TEST_F(EnvIntTest, RejectsOverflowWithMessage) {
  const auto [v, err] = Parse("99999999999999999999", 5, 1);
  EXPECT_EQ(v, 5);
  EXPECT_NE(err.find("overflows"), std::string::npos) << err;
}

TEST_F(EnvIntTest, RejectsBelowMinimumWithMessage) {
  const auto [v, err] = Parse("0", 4, 1);
  EXPECT_EQ(v, 4);
  EXPECT_NE(err.find("below the minimum"), std::string::npos) << err;
}

TEST_F(EnvIntTest, SignatureFilterAndMaintainKnobsParse) {
  // Defaults: signature filter on, serial maintain.
  EXPECT_TRUE(EnvExecKnobs().signature_filter);
  EXPECT_EQ(EnvExecKnobs().maintain_shards, 1);
  setenv("TERIDS_BENCH_SIGFILTER", "0", 1);
  setenv("TERIDS_BENCH_MAINTAIN", "4", 1);
  const ExecKnobs knobs = EnvExecKnobs();
  EXPECT_FALSE(knobs.signature_filter);
  EXPECT_EQ(knobs.maintain_shards, 4);
}

TEST_F(EnvIntTest, RepoBackendKnobParsesAndRejectsLoudly) {
  setenv("TERIDS_BENCH_REPO_BACKEND", "mmap", 1);
  EXPECT_EQ(EnvExecKnobs().repo_backend, RepoBackend::kMmapSnapshot);
  setenv("TERIDS_BENCH_REPO_BACKEND", "memory", 1);
  EXPECT_EQ(EnvExecKnobs().repo_backend, RepoBackend::kInMemory);
  setenv("TERIDS_BENCH_REPO_BACKEND", "rocksdb", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(EnvExecKnobs().repo_backend, RepoBackend::kInMemory);
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("not a backend"),
            std::string::npos);
}

}  // namespace
}  // namespace bench
}  // namespace terids
