#ifndef TERIDS_ER_BOUNDS_H_
#define TERIDS_ER_BOUNDS_H_

#include "tuple/imputed_tuple.h"

namespace terids {

/// Lemma 4.1: per-attribute similarity upper bound from token-set size
/// intervals, summed over attributes. Range [0, d].
double UbSimTokenSize(const ImputedTuple& a, const ImputedTuple& b);

/// Lemma 4.2: similarity upper bound via pivot tuples. For each attribute,
/// min_dist is the largest lower bound |X_k - Y_k| obtainable from any of
/// the shared pivots (main + auxiliary); ub_sim = d - sum min_dist.
double UbSimPivot(const ImputedTuple& a, const ImputedTuple& b);

/// The combined similarity upper bound used by Theorem 4.2: the minimum of
/// the token-size and pivot bounds.
double UbSim(const ImputedTuple& a, const ImputedTuple& b);

/// Lemma 4.3: Paley-Zygmund-based upper bound on Pr{sim(a,b) > gamma}.
/// Uses the main-pivot distance expectations and bounds aggregated on the
/// tuples; expectations are taken over the normalized instance
/// distributions, and the returned bound is scaled by the tuples' total
/// probability masses so it stays an upper bound of the raw (sub-stochastic)
/// TER-iDS probability even when instance sets were truncated.
double UbProbPaleyZygmund(const ImputedTuple& a, const ImputedTuple& b,
                          double gamma);

}  // namespace terids

#endif  // TERIDS_ER_BOUNDS_H_
