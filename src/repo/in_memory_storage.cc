#include "repo/in_memory_storage.h"

#include <algorithm>

namespace terids {

InMemoryStorage::InMemoryStorage(int num_attributes)
    : num_attributes_(num_attributes) {
  TERIDS_CHECK(num_attributes >= 1);
  domains_.resize(static_cast<size_t>(num_attributes));
}

size_t InMemoryStorage::domain_size(int attr) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  return domains_[attr].size();
}

const TokenSet& InMemoryStorage::value_tokens(int attr, ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  return domains_[attr].tokens(id);
}

std::string_view InMemoryStorage::value_text(int attr, ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  return domains_[attr].text(id);
}

int InMemoryStorage::value_frequency(int attr, ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  return domains_[attr].frequency(id);
}

ValueId InMemoryStorage::FindValue(int attr, const TokenSet& tokens) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  return domains_[attr].Find(tokens);
}

const Record& InMemoryStorage::sample(size_t i) const {
  TERIDS_CHECK(i < samples_.size());
  return samples_[i];
}

ValueId InMemoryStorage::sample_value_id(size_t i, int attr) const {
  TERIDS_CHECK(i < sample_vids_.size());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  return sample_vids_[i][attr];
}

int InMemoryStorage::num_pivots(int attr) const {
  TERIDS_CHECK(has_pivots());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  return pivots_[attr].count();
}

const TokenSet& InMemoryStorage::pivot_tokens(int attr, int pivot_idx) const {
  TERIDS_CHECK(has_pivots());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  TERIDS_CHECK(pivot_idx >= 0 && pivot_idx < pivots_[attr].count());
  return pivots_[attr].pivots[pivot_idx];
}

double InMemoryStorage::pivot_distance(int attr, int pivot_idx,
                                       ValueId vid) const {
  TERIDS_CHECK(has_pivots());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  TERIDS_CHECK(pivot_idx >= 0 && pivot_idx < pivots_[attr].count());
  TERIDS_CHECK(vid < pivot_dists_[attr][pivot_idx].size());
  return pivot_dists_[attr][pivot_idx][vid];
}

void InMemoryStorage::AppendValuesInCoordRange(
    int attr, const Interval& interval, std::vector<ValueId>* out) const {
  TERIDS_CHECK(has_pivots());
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  if (interval.empty()) {
    return;
  }
  const auto& coords = sorted_coords_[attr];
  auto lo = std::lower_bound(
      coords.begin(), coords.end(),
      std::make_pair(interval.lo, static_cast<ValueId>(0)));
  for (auto it = lo; it != coords.end() && it->first <= interval.hi; ++it) {
    out->push_back(it->second);
  }
}

ValueId InMemoryStorage::RegisterValue(int attr, const TokenSet& tokens,
                                       const std::string& text) {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  const size_t before = domains_[attr].size();
  const ValueId vid = domains_[attr].FindOrAdd(tokens, text);
  if (domains_[attr].size() != before && has_pivots()) {
    // New value after pivots were attached: extend the distance tables and
    // the sorted coordinate list incrementally.
    const int np = pivots_[attr].count();
    for (int a = 0; a < np; ++a) {
      pivot_dists_[attr][a].push_back(
          JaccardDistance(tokens, pivots_[attr].pivots[a]));
    }
    const double coord = pivot_dists_[attr][0][vid];
    auto& coords = sorted_coords_[attr];
    coords.insert(std::upper_bound(coords.begin(), coords.end(),
                                   std::make_pair(coord, vid)),
                  std::make_pair(coord, vid));
  }
  return vid;
}

void InMemoryStorage::BumpFrequency(int attr, ValueId id) {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  domains_[attr].BumpFrequency(id);
}

void InMemoryStorage::AppendSample(const Record& record,
                                   std::vector<ValueId> vids) {
  TERIDS_CHECK(static_cast<int>(vids.size()) == num_attributes_);
  samples_.push_back(record);
  sample_vids_.push_back(std::move(vids));
}

void InMemoryStorage::AttachPivots(std::vector<AttributePivots> pivots) {
  TERIDS_CHECK(static_cast<int>(pivots.size()) == num_attributes_);
  pivots_ = std::move(pivots);

  const int d = num_attributes_;
  pivot_dists_.assign(d, {});
  sorted_coords_.assign(d, {});
  for (int x = 0; x < d; ++x) {
    const AttributeDomain& dom = domains_[x];
    const int np = pivots_[x].count();
    pivot_dists_[x].assign(np, std::vector<double>(dom.size(), 0.0));
    for (int a = 0; a < np; ++a) {
      for (ValueId v = 0; v < dom.size(); ++v) {
        pivot_dists_[x][a][v] =
            JaccardDistance(dom.tokens(v), pivots_[x].pivots[a]);
      }
    }
    sorted_coords_[x].reserve(dom.size());
    for (ValueId v = 0; v < dom.size(); ++v) {
      sorted_coords_[x].emplace_back(pivot_dists_[x][0][v], v);
    }
    std::sort(sorted_coords_[x].begin(), sorted_coords_[x].end());
  }
}

const AttributeDomain& InMemoryStorage::domain(int attr) const {
  TERIDS_CHECK(attr >= 0 && attr < num_attributes_);
  return domains_[attr];
}

}  // namespace terids
