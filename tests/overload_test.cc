// Overload-resilience layer (DESIGN.md §13): the adversarial arrival
// shaper's determinism and invariants, and the admission-control policies'
// accounting contracts under real, forced queue pressure (slow consumer on
// a depth-1 ingest queue). Policy *equivalence* when pressure never fires
// is covered by the equivalence sweep; this file covers behavior when it
// does fire.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "datagen/arrival_shaper.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"
#include "stream/overload.h"
#include "stream/stream_driver.h"
#include "text/tokenizer.h"

namespace terids {
namespace {

// ---- ArrivalShaper ---------------------------------------------------------

std::vector<Record> MakeSource(TokenDict* dict, int n) {
  Tokenizer tok(dict);
  std::vector<Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    Record r;
    r.rid = i;
    r.values.resize(2);
    r.values[0].text = "title alpha " + std::to_string(i % 17);
    r.values[0].tokens = tok.Tokenize(r.values[0].text);
    if (i % 5 == 0) {
      r.values[1] = AttrValue::Missing();
    } else {
      r.values[1].text = "venue beta " + std::to_string(i % 7);
      r.values[1].tokens = tok.Tokenize(r.values[1].text);
    }
    records.push_back(std::move(r));
  }
  return records;
}

void ExpectSameStream(const std::vector<Record>& a,
                      const std::vector<Record>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rid, b[i].rid) << "position " << i;
    ASSERT_EQ(a[i].values.size(), b[i].values.size());
    for (size_t j = 0; j < a[i].values.size(); ++j) {
      EXPECT_EQ(a[i].values[j].text, b[i].values[j].text);
      EXPECT_EQ(a[i].values[j].missing, b[i].values[j].missing);
      EXPECT_TRUE(a[i].values[j].tokens == b[i].values[j].tokens);
    }
  }
}

TEST(ArrivalShaperTest, SameSeedSameStreamByteForByte) {
  ArrivalShaper::Options opts;
  opts.seed = 77;
  opts.drift_period = 40;
  opts.duplicate_p = 0.2;
  opts.reorder_horizon = 12;
  TokenDict dict_a, dict_b;
  const std::vector<Record> shaped_a =
      ArrivalShaper::Shape(MakeSource(&dict_a, 200), &dict_a, 1000, opts);
  const std::vector<Record> shaped_b =
      ArrivalShaper::Shape(MakeSource(&dict_b, 200), &dict_b, 1000, opts);
  ExpectSameStream(shaped_a, shaped_b);

  // A different seed must actually change the stream (the knob is live).
  opts.seed = 78;
  TokenDict dict_c;
  const std::vector<Record> shaped_c =
      ArrivalShaper::Shape(MakeSource(&dict_c, 200), &dict_c, 1000, opts);
  bool differs = shaped_c.size() != shaped_a.size();
  for (size_t i = 0; !differs && i < shaped_a.size(); ++i) {
    differs = shaped_a[i].rid != shaped_c[i].rid;
  }
  EXPECT_TRUE(differs);
}

TEST(ArrivalShaperTest, ReorderHorizonBoundsDisplacement) {
  constexpr int kHorizon = 9;
  ArrivalShaper::Options opts;
  opts.reorder_horizon = kHorizon;
  opts.duplicate_p = 0.0;  // keep rid == original index
  opts.drift_period = 0;
  TokenDict dict;
  const std::vector<Record> shaped =
      ArrivalShaper::Shape(MakeSource(&dict, 400), &dict, 1000, opts);
  ASSERT_EQ(shaped.size(), 400u);
  // The delivery is a permutation, and whenever record j overtakes record i
  // (j delivered earlier despite arriving later), j was at most `horizon`
  // positions behind i.
  std::set<int64_t> seen;
  bool any_inversion = false;
  for (size_t pos = 0; pos < shaped.size(); ++pos) {
    const int64_t idx = shaped[pos].rid;
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate delivery";
    for (int64_t earlier : seen) {
      if (earlier > idx) {
        any_inversion = true;
        EXPECT_LE(earlier - idx, kHorizon)
            << "record " << earlier << " overtook " << idx;
      }
    }
  }
  EXPECT_TRUE(any_inversion) << "horizon " << kHorizon
                             << " produced a fully in-order stream";
}

TEST(ArrivalShaperTest, DuplicateStormRateAndFreshRids) {
  ArrivalShaper::Options opts;
  opts.duplicate_p = 0.25;
  opts.near_duplicate_p = 0.5;
  opts.reorder_horizon = 0;
  TokenDict dict;
  const int n = 1000;
  const std::vector<Record> shaped =
      ArrivalShaper::Shape(MakeSource(&dict, n), &dict, 5000, opts);
  const size_t dups = shaped.size() - static_cast<size_t>(n);
  // Binomial(1000, 0.25): +/- 5 sigma is ~68.
  EXPECT_GT(dups, 180u);
  EXPECT_LT(dups, 320u);
  std::set<int64_t> rids;
  size_t fresh = 0, exact = 0;
  std::map<int64_t, const Record*> originals;
  for (const Record& r : shaped) {
    EXPECT_TRUE(rids.insert(r.rid).second) << "rid reused";
    if (r.rid < n) {
      originals[r.rid] = &r;
    }
  }
  for (const Record& r : shaped) {
    if (r.rid >= 5000) {
      ++fresh;
      // Every duplicate is content-traceable to some original: either an
      // exact copy or a near-duplicate differing in one attribute.
      bool traced = false;
      for (const auto& [rid, orig] : originals) {
        int same = 0;
        for (size_t j = 0; j < r.values.size(); ++j) {
          if (r.values[j].text == orig->values[j].text &&
              r.values[j].missing == orig->values[j].missing) {
            ++same;
          }
        }
        if (same == static_cast<int>(r.values.size())) {
          ++exact;
          traced = true;
          break;
        }
        if (same == static_cast<int>(r.values.size()) - 1) {
          traced = true;
          break;
        }
      }
      EXPECT_TRUE(traced) << "duplicate rid " << r.rid
                          << " matches no original";
    }
  }
  EXPECT_EQ(fresh, dups);
  // near_duplicate_p = 0.5: both exact and perturbed copies must occur.
  EXPECT_GT(exact, 0u);
  EXPECT_LT(exact, dups);
}

TEST(ArrivalShaperTest, OfferedTimelineDeterministicAndBursty) {
  ArrivalShaper::Options opts;
  opts.seed = 99;
  const std::vector<double> a = ArrivalShaper::OfferedTimeline(500, opts);
  const std::vector<double> b = ArrivalShaper::OfferedTimeline(500, opts);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a, b);
  double lo = 1e9, hi = 0.0;
  for (double gap : a) {
    EXPECT_GE(gap, 0.0);
    lo = std::min(lo, gap);
    hi = std::max(hi, gap);
  }
  // Bursty on/off shape: gap scale spread far beyond a flat schedule.
  EXPECT_LT(lo * 50, hi);
}

// ---- OverloadPolicy parsing / ShedStats ------------------------------------

TEST(OverloadPolicyTest, ParseRoundTripsEveryPolicy) {
  for (OverloadPolicy policy :
       {OverloadPolicy::kBlock, OverloadPolicy::kShedNewest,
        OverloadPolicy::kShedOldest, OverloadPolicy::kDegrade}) {
    OverloadPolicy parsed = OverloadPolicy::kBlock;
    EXPECT_TRUE(ParseOverloadPolicy(OverloadPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  OverloadPolicy parsed = OverloadPolicy::kDegrade;
  EXPECT_FALSE(ParseOverloadPolicy("drop_everything", &parsed));
  EXPECT_EQ(parsed, OverloadPolicy::kDegrade);  // untouched on failure
}

TEST(OverloadPolicyTest, ShedStatsAddAndJson) {
  ShedStats a;
  a.offered_arrivals = 10;
  a.admitted_arrivals = 7;
  a.shed_arrivals = 3;
  a.shed_batches = 1;
  a.shed_by_phase[static_cast<int>(ExecPhase::kIngest)] = 3;
  ShedStats b;
  b.offered_arrivals = 10;
  b.degraded_arrivals = 4;
  b.deferred_pairs = 5;
  b.pressure_events = 2;
  EXPECT_TRUE(a.any());
  EXPECT_FALSE(ShedStats().any());
  a.Add(b);
  EXPECT_EQ(a.offered_arrivals, 20);
  EXPECT_EQ(a.admitted_arrivals, 7);
  EXPECT_EQ(a.shed_arrivals, 3);
  EXPECT_EQ(a.degraded_arrivals, 4);
  EXPECT_EQ(a.deferred_pairs, 5);
  EXPECT_EQ(a.pressure_events, 2);
  EXPECT_DOUBLE_EQ(a.ShedRate(), 3.0 / 20.0);
  const std::string json = a.ToJson();
  EXPECT_NE(json.find("\"offered_arrivals\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_by_phase\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_rate\""), std::string::npos) << json;
}

// ---- Policies under forced pressure ----------------------------------------

struct PressureRun {
  size_t processed = 0;
  size_t emitted = 0;
  size_t emitted_shed = 0;
  size_t emitted_degraded = 0;
  std::vector<std::pair<int64_t, int64_t>> matches;
  PruneStats stats;
  ShedStats shed;
};

class OverloadPressureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentParams params;
    params.scale = 0.04;
    params.w = 50;
    params.max_arrivals = 220;
    experiment_ = new Experiment(CitationsProfile(), params);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  // Replays the stream with a deliberately slow consumer (the sink sleeps),
  // so the depth-1 ingest queue is full nearly every time the producer
  // checks pressure. sleep_us = 0 gives the unpressured reference run.
  static PressureRun Replay(OverloadPolicy policy, int sleep_us) {
    const ExperimentParams& params = experiment_->params();
    std::unique_ptr<Repository> repo = experiment_->BuildRepository();
    EngineConfig config = experiment_->MakeConfig();
    config.batch_size = 4;
    config.refine_threads = 2;
    config.ingest_queue_depth = 1;
    config.overload_policy = policy;
    std::unique_ptr<ErPipeline> pipeline =
        MakePipeline(PipelineKind::kTerIds, repo.get(), config, 2,
                     experiment_->cdds(), experiment_->dds(),
                     experiment_->editing_rules());
    StreamDriver driver(
        {experiment_->incomplete_a(), experiment_->incomplete_b()});
    PressureRun run;
    run.processed = pipeline->ProcessStream(
        &driver, static_cast<size_t>(params.max_arrivals), 4,
        [&](ArrivalOutcome&& out) {
          ++run.emitted;
          if (out.disposition == ArrivalDisposition::kShed) {
            ++run.emitted_shed;
          }
          if (out.disposition == ArrivalDisposition::kDegraded) {
            ++run.emitted_degraded;
          }
          for (const MatchPair& p : out.new_matches) {
            run.matches.emplace_back(p.rid_a, p.rid_b);
          }
          if (sleep_us > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
          }
        });
    run.stats = pipeline->cumulative_stats();
    run.shed = *pipeline->shed_stats();
    return run;
  }

  static Experiment* experiment_;
};

Experiment* OverloadPressureTest::experiment_ = nullptr;

TEST_F(OverloadPressureTest, ShedNewestAccountingBalances) {
  const PressureRun run = Replay(OverloadPolicy::kShedNewest, 400);
  ASSERT_GT(run.shed.pressure_events, 0) << "slow consumer never filled "
                                            "the depth-1 queue";
  EXPECT_GT(run.shed.shed_arrivals, 0);
  // Conservation: every arrival pulled from the driver was either admitted
  // or shed at the door, and exactly the admitted ones were emitted.
  EXPECT_EQ(run.shed.offered_arrivals,
            run.shed.admitted_arrivals + run.shed.shed_arrivals);
  EXPECT_EQ(static_cast<int64_t>(run.emitted), run.shed.admitted_arrivals);
  EXPECT_EQ(run.emitted_shed, 0u);      // shed batches never reach the window
  EXPECT_EQ(run.emitted_degraded, 0u);  // wrong policy for degradation
  EXPECT_EQ(run.shed.deferred_pairs, 0);
  EXPECT_EQ(run.stats.deferred, 0);
  // Shed-newest drops whole batches pre-ingest: arrivals are still consumed
  // from the driver (max_arrivals semantics), so processed counts emissions.
  EXPECT_EQ(run.processed, run.emitted);
  EXPECT_EQ(run.shed.shed_by_phase[static_cast<int>(ExecPhase::kIngest)],
            run.shed.shed_arrivals);
}

TEST_F(OverloadPressureTest, ShedOldestEmitsShedOutcomesAndKeepsWindow) {
  const PressureRun run = Replay(OverloadPolicy::kShedOldest, 400);
  ASSERT_GT(run.shed.pressure_events, 0);
  EXPECT_GT(run.shed.shed_arrivals, 0);
  // Everything is admitted (ingest always runs); shedding happens in-queue,
  // and the shed arrivals still surface as outcomes flagged kShed.
  EXPECT_EQ(run.shed.offered_arrivals, run.shed.admitted_arrivals);
  EXPECT_EQ(static_cast<int64_t>(run.emitted), run.shed.offered_arrivals);
  EXPECT_EQ(static_cast<int64_t>(run.emitted_shed), run.shed.shed_arrivals);
  EXPECT_GT(run.shed.shed_pairs, 0);
  EXPECT_EQ(run.shed.shed_by_phase[static_cast<int>(ExecPhase::kRefine)],
            run.shed.shed_pairs);
  EXPECT_EQ(run.shed.deferred_pairs, 0);
}

TEST_F(OverloadPressureTest, DegradeAdmitsEverythingAndDefersVisibly) {
  const PressureRun degraded = Replay(OverloadPolicy::kDegrade, 400);
  const PressureRun reference = Replay(OverloadPolicy::kBlock, 0);
  ASSERT_GT(degraded.shed.pressure_events, 0);
  EXPECT_GT(degraded.shed.degraded_arrivals, 0);
  // Degrade never sheds: everything offered is admitted and emitted.
  EXPECT_EQ(degraded.shed.shed_arrivals, 0);
  EXPECT_EQ(degraded.shed.offered_arrivals,
            degraded.shed.admitted_arrivals);
  EXPECT_EQ(static_cast<int64_t>(degraded.emitted),
            degraded.shed.offered_arrivals);
  EXPECT_EQ(static_cast<int64_t>(degraded.emitted_degraded),
            degraded.shed.degraded_arrivals);
  // Undecided pairs are recorded, not silently dropped, and the cumulative
  // stats agree with the shed accounting.
  EXPECT_GT(degraded.shed.deferred_pairs, 0);
  EXPECT_EQ(degraded.stats.deferred, degraded.shed.deferred_pairs);
  // Bound-only verdicts are sound: every match a degraded run reports, the
  // full engine reports too (upper bounds only ever *prune*).
  std::vector<std::pair<int64_t, int64_t>> deg = degraded.matches;
  std::vector<std::pair<int64_t, int64_t>> ref = reference.matches;
  std::sort(deg.begin(), deg.end());
  std::sort(ref.begin(), ref.end());
  EXPECT_TRUE(std::includes(ref.begin(), ref.end(), deg.begin(), deg.end()));
  EXPECT_LT(deg.size(), ref.size() + 1);  // subset, possibly proper
}

TEST_F(OverloadPressureTest, BlockShedsNothingUnderTheSamePressure) {
  const PressureRun run = Replay(OverloadPolicy::kBlock, 400);
  const PressureRun reference = Replay(OverloadPolicy::kBlock, 0);
  // The oracle policy: pressure manifests as producer blocking only —
  // accounting shows zero shedding and output is the unpressured output.
  EXPECT_EQ(run.shed.shed_arrivals, 0);
  EXPECT_EQ(run.shed.degraded_arrivals, 0);
  EXPECT_EQ(run.shed.deferred_pairs, 0);
  EXPECT_EQ(run.emitted, reference.emitted);
  EXPECT_EQ(run.matches, reference.matches);
}

}  // namespace
}  // namespace terids