#include "core/baseline_engines.h"

#include <unordered_map>

#include "core/terids_engine.h"
#include "imputation/constraint_imputer.h"
#include "imputation/rule_based_imputer.h"
#include "util/stopwatch.h"

namespace terids {

// ---------------------------------------------------------------------------
// IjGerEngine
// ---------------------------------------------------------------------------

IjGerEngine::IjGerEngine(Repository* repo, EngineConfig config,
                         int num_streams, std::vector<CddRule> rules)
    : PipelineBase(repo, std::move(config), num_streams, /*use_grid=*/true,
                   /*use_prunings=*/true, "Ij+GER"),
      rules_(std::move(rules)),
      cdd_index_(repo, &rules_),
      neighborhoods_(repo, ValueNeighborhoods::MaxRadiusPerAttr(
                               rules_, repo->num_attributes())) {
  cdd_index_.Build();
}

std::vector<ImputedTuple::ImputedAttr> IjGerEngine::Impute(
    const Record& r, const ProbeCoords& pc, CostBreakdown* cost) {
  std::vector<ImputedTuple::ImputedAttr> result;
  for (int j : r.MissingAttributes()) {
    std::vector<int> selected;
    {
      ScopedTimer timer(cost ? &cost->cdd_select_seconds : nullptr);
      selected = cdd_index_.SelectRules(r, pc, j);
    }
    std::unordered_map<ValueId, double> freq;
    {
      ScopedTimer timer(cost ? &cost->impute_seconds : nullptr);
      // Linear sample retrieval (no DR-index join), but candidate values
      // still come from the pivot-backed neighbor lists — this pipeline has
      // the indexes, it just does not traverse them simultaneously.
      for (int rule_idx : selected) {
        const CddRule& rule = rules_[rule_idx];
        for (size_t i = 0; i < repo_->num_samples(); ++i) {
          if (rule.DeterminantsSatisfied(r, *repo_, i)) {
            neighborhoods_.AccumulateRange(j, repo_->sample_value_id(i, j),
                                           rule.dep_interval, &freq);
          }
        }
      }
    }
    std::vector<ImputedTuple::Candidate> cands =
        FinalizeCandidates(freq, config_.max_candidates_per_attr);
    if (!cands.empty()) {
      ImputedTuple::ImputedAttr ia;
      ia.attr = j;
      ia.candidates = std::move(cands);
      result.push_back(std::move(ia));
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// LinearRulePipeline
// ---------------------------------------------------------------------------

LinearRulePipeline::LinearRulePipeline(Repository* repo, EngineConfig config,
                                       int num_streams,
                                       std::vector<CddRule> rules,
                                       std::string name)
    : PipelineBase(repo, std::move(config), num_streams, /*use_grid=*/false,
                   /*use_prunings=*/false, std::move(name)) {
  RuleImputerOptions opts;
  opts.max_candidates_per_attr = config_.max_candidates_per_attr;
  opts.use_coord_filter = false;  // Full domain scans: the unindexed method.
  imputer_ =
      std::make_unique<RuleBasedImputer>(repo, std::move(rules), opts);
}

// ---------------------------------------------------------------------------
// ConstraintErPipeline
// ---------------------------------------------------------------------------

ConstraintErPipeline::ConstraintErPipeline(Repository* repo,
                                           EngineConfig config,
                                           int num_streams)
    : PipelineBase(repo, std::move(config), num_streams, /*use_grid=*/false,
                   /*use_prunings=*/false, "con+ER") {
  imputer_ =
      std::make_unique<ConstraintImputer>(repo, config_.window_size);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<ErPipeline> MakePipeline(PipelineKind kind, Repository* repo,
                                         const EngineConfig& config,
                                         int num_streams,
                                         const std::vector<CddRule>& cdds,
                                         const std::vector<CddRule>& dds,
                                         const std::vector<CddRule>& editing) {
  switch (kind) {
    case PipelineKind::kTerIds:
      return std::make_unique<TerIdsEngine>(repo, config, num_streams, cdds);
    case PipelineKind::kIjGer:
      return std::make_unique<IjGerEngine>(repo, config, num_streams, cdds);
    case PipelineKind::kCddEr:
      return std::make_unique<LinearRulePipeline>(repo, config, num_streams,
                                                  cdds, "CDD+ER");
    case PipelineKind::kDdEr:
      return std::make_unique<LinearRulePipeline>(repo, config, num_streams,
                                                  dds, "DD+ER");
    case PipelineKind::kEditingEr:
      return std::make_unique<LinearRulePipeline>(repo, config, num_streams,
                                                  editing, "er+ER");
    case PipelineKind::kConstraintEr:
      return std::make_unique<ConstraintErPipeline>(repo, config, num_streams);
  }
  return nullptr;
}

}  // namespace terids
