// Google-benchmark microbenchmarks of the hot primitives: Jaccard over
// interned token sets, aR-tree range queries, ER-grid insert/probe, and
// end-to-end TER-iDS arrival processing.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/terids_engine.h"
#include "datagen/profiles.h"
#include "index/artree.h"
#include "stream/stream_driver.h"
#include "synopsis/er_grid.h"
#include "text/token_set.h"
#include "util/rng.h"

namespace {

using namespace terids;

TokenSet RandomSet(Rng* rng, int size, int vocab) {
  std::vector<Token> tokens;
  for (int i = 0; i < size; ++i) {
    tokens.push_back(static_cast<Token>(rng->NextBounded(vocab)));
  }
  return TokenSet::FromTokens(std::move(tokens));
}

void BM_JaccardSimilarity(benchmark::State& state) {
  Rng rng(1);
  const int size = static_cast<int>(state.range(0));
  TokenSet a = RandomSet(&rng, size, 10000);
  TokenSet b = RandomSet(&rng, size, 10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardSimilarity(a, b));
  }
}
BENCHMARK(BM_JaccardSimilarity)->Arg(8)->Arg(32)->Arg(128);

void BM_ArTreeRangeQuery(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  const int dims = 4;
  std::vector<ArTreeEntry> entries;
  for (int i = 0; i < n; ++i) {
    ArTreeEntry e;
    e.payload = i;
    for (int d = 0; d < dims; ++d) {
      e.box.push_back(Interval::Point(rng.NextDouble()));
    }
    entries.push_back(std::move(e));
  }
  ArTree tree(dims);
  tree.BulkLoad(std::move(entries));
  std::vector<Interval> query(dims, Interval::Of(0.4, 0.6));
  for (auto _ : state) {
    size_t hits = 0;
    tree.Query(
        [&query](const ArTree::NodeView& node) {
          for (int d = 0; d < 4; ++d) {
            if (!node.box[d].Overlaps(query[d])) return false;
          }
          return true;
        },
        [&hits](const ArTreeEntry&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_ArTreeRangeQuery)->Arg(1000)->Arg(10000);

void BM_TerIdsArrival(benchmark::State& state) {
  using namespace terids::bench;
  ExperimentParams params = BaseParams("Citations");
  params.max_arrivals = 1;  // Offline phase only in the fixture.
  static Experiment* experiment =
      new Experiment(ProfileByName("Citations"), params);
  std::unique_ptr<Repository> repo = experiment->BuildRepository();
  TerIdsEngine engine(repo.get(), experiment->MakeConfig(), 2,
                      experiment->cdds());
  std::vector<Record> inc_a = DataGenerator::WithMissing(
      experiment->dataset().source_a, 0.3, 1, 1);
  std::vector<Record> inc_b = DataGenerator::WithMissing(
      experiment->dataset().source_b, 0.3, 1, 2);
  StreamDriver driver({inc_a, inc_b});
  for (auto _ : state) {
    if (!driver.HasNext()) {
      state.PauseTiming();
      driver.Reset();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(engine.ProcessArrival(driver.Next()));
  }
}
BENCHMARK(BM_TerIdsArrival);

}  // namespace

BENCHMARK_MAIN();
