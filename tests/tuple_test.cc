#include <gtest/gtest.h>

#include "test_util.h"
#include "tuple/imputed_tuple.h"
#include "tuple/record.h"
#include "tuple/schema.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

TEST(SchemaTest, BasicAccessors) {
  Schema schema({"a", "b", "c"});
  EXPECT_EQ(schema.num_attributes(), 3);
  EXPECT_EQ(schema.name(1), "b");
  EXPECT_EQ(schema.IndexOf("c"), 2);
  EXPECT_EQ(schema.IndexOf("zzz"), -1);
}

TEST(RecordTest, MissingMaskAndCompleteness) {
  ToyWorld world = MakeHealthWorld();
  Record complete =
      world.Make(1, {"male", "fever", "flu", "rest"});
  EXPECT_TRUE(complete.IsComplete());
  EXPECT_EQ(complete.MissingMask(), 0u);

  Record partial = world.Make(2, {"male", "fever cough", "-", "-"});
  EXPECT_FALSE(partial.IsComplete());
  EXPECT_EQ(partial.MissingMask(), 0b1100u);
  EXPECT_EQ(partial.MissingAttributes(), (std::vector<int>{2, 3}));
}

TEST(RecordTest, TotalTokenCountSkipsMissing) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(3, {"male", "fever cough", "-", "rest"});
  EXPECT_EQ(r.TotalTokenCount(), 4u);
}

TEST(ImputedTupleTest, CompleteTupleHasSingleCertainInstance) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(1, {"male", "fever", "flu", "rest"});
  ImputedTuple t = ImputedTuple::FromComplete(r, world.repo.get());
  EXPECT_EQ(t.num_instances(), 1);
  EXPECT_DOUBLE_EQ(t.instance_prob(0), 1.0);
  EXPECT_DOUBLE_EQ(t.total_prob(), 1.0);
  EXPECT_FALSE(t.IsAttrImputed(2));
}

TEST(ImputedTupleTest, InstanceTokensResolveImputedChoices) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(2, {"male", "blurred vision", "-", "drug therapy"});
  const AttributeDomain& dom = world.repo->domain(2);
  ValueId diabetes = kInvalidValueId;
  ValueId flu = kInvalidValueId;
  for (ValueId v = 0; v < dom.size(); ++v) {
    if (dom.text(v) == "diabetes") diabetes = v;
    if (dom.text(v) == "flu") flu = v;
  }
  ASSERT_NE(diabetes, kInvalidValueId);
  ASSERT_NE(flu, kInvalidValueId);

  ImputedTuple::ImputedAttr ia;
  ia.attr = 2;
  ia.candidates = {{diabetes, 0.7}, {flu, 0.3}};
  ImputedTuple t =
      ImputedTuple::FromImputation(r, world.repo.get(), {ia}, 16);
  ASSERT_EQ(t.num_instances(), 2);
  // Instances sorted by probability: diabetes first.
  EXPECT_DOUBLE_EQ(t.instance_prob(0), 0.7);
  EXPECT_EQ(&t.instance_tokens(0, 2), &dom.tokens(diabetes));
  EXPECT_EQ(&t.instance_tokens(1, 2), &dom.tokens(flu));
  EXPECT_NEAR(t.total_prob(), 1.0, 1e-12);
}

TEST(ImputedTupleTest, CrossProductOfTwoMissingAttributes) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(3, {"male", "fever cough", "-", "-"});
  const AttributeDomain& diag = world.repo->domain(2);
  const AttributeDomain& treat = world.repo->domain(3);
  ImputedTuple::ImputedAttr d;
  d.attr = 2;
  d.candidates = {{0, 0.6}, {1, 0.4}};
  ImputedTuple::ImputedAttr t;
  t.attr = 3;
  t.candidates = {{0, 0.5}, {1, 0.3}, {2, 0.2}};
  ASSERT_GE(diag.size(), 2u);
  ASSERT_GE(treat.size(), 3u);

  ImputedTuple tuple =
      ImputedTuple::FromImputation(r, world.repo.get(), {d, t}, 16);
  EXPECT_EQ(tuple.num_instances(), 6);
  EXPECT_NEAR(tuple.total_prob(), 1.0, 1e-12);
  // Highest-probability combination first: 0.6 * 0.5.
  EXPECT_NEAR(tuple.instance_prob(0), 0.30, 1e-12);
}

TEST(ImputedTupleTest, InstanceCapKeepsHighestProbability) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(4, {"male", "fever cough", "-", "-"});
  ImputedTuple::ImputedAttr d;
  d.attr = 2;
  ImputedTuple::ImputedAttr t;
  t.attr = 3;
  for (ValueId v = 0; v < 3; ++v) {
    d.candidates.push_back({v, v == 0 ? 0.8 : 0.1});
    t.candidates.push_back({v, v == 0 ? 0.8 : 0.1});
  }
  ImputedTuple tuple =
      ImputedTuple::FromImputation(r, world.repo.get(), {d, t}, 4);
  EXPECT_EQ(tuple.num_instances(), 4);
  // The best combination (0.8 * 0.8) must be retained.
  EXPECT_NEAR(tuple.instance_prob(0), 0.64, 1e-12);
  // Total probability is sub-stochastic after the cap (Definition 4).
  EXPECT_LT(tuple.total_prob(), 1.0);
  EXPECT_GT(tuple.total_prob(), 0.64);
}

TEST(ImputedTupleTest, AggregatesCoverEveryInstance) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(5, {"female", "fever cough", "-", "rest"});
  const AttributeDomain& dom = world.repo->domain(2);
  ImputedTuple::ImputedAttr ia;
  ia.attr = 2;
  for (ValueId v = 0; v < dom.size() && v < 4; ++v) {
    ia.candidates.push_back({v, 1.0 / 4});
  }
  ImputedTuple t =
      ImputedTuple::FromImputation(r, world.repo.get(), {ia}, 16);

  for (int k = 0; k < t.num_attributes(); ++k) {
    const Interval& sizes = t.token_size_interval(k);
    for (int m = 0; m < t.num_instances(); ++m) {
      const double size = static_cast<double>(t.instance_tokens(m, k).size());
      EXPECT_GE(size, sizes.lo);
      EXPECT_LE(size, sizes.hi);
      for (int p = 0; p < t.num_pivot_intervals(k); ++p) {
        const double dist = t.instance_pivot_dist(m, k, p);
        EXPECT_GE(dist, t.pivot_dist_interval(k, p).lo - 1e-12);
        EXPECT_LE(dist, t.pivot_dist_interval(k, p).hi + 1e-12);
      }
    }
  }
}

TEST(ImputedTupleTest, ExpectedDistIsConvexCombination) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(6, {"male", "blurred vision", "-", "drug therapy"});
  ImputedTuple::ImputedAttr ia;
  ia.attr = 2;
  ia.candidates = {{0, 0.5}, {1, 0.5}};
  ImputedTuple t =
      ImputedTuple::FromImputation(r, world.repo.get(), {ia}, 16);
  for (int k = 0; k < t.num_attributes(); ++k) {
    const double e = t.expected_pivot_dist(k, 0);
    EXPECT_GE(e, t.pivot_dist_interval(k, 0).lo - 1e-12);
    EXPECT_LE(e, t.pivot_dist_interval(k, 0).hi + 1e-12);
  }
}

TEST(ImputedTupleTest, UnfilledMissingAttributeIsEmptyInAllInstances) {
  ToyWorld world = MakeHealthWorld();
  Record r = world.Make(7, {"male", "fever", "-", "-"});
  // Only attribute 2 gets candidates; attribute 3 stays unfilled.
  ImputedTuple::ImputedAttr ia;
  ia.attr = 2;
  ia.candidates = {{0, 1.0}};
  ImputedTuple t =
      ImputedTuple::FromImputation(r, world.repo.get(), {ia}, 16);
  for (int m = 0; m < t.num_instances(); ++m) {
    EXPECT_TRUE(t.instance_tokens(m, 3).empty());
  }
  EXPECT_EQ(t.token_size_interval(3).lo, 0.0);
  EXPECT_EQ(t.token_size_interval(3).hi, 0.0);
}

}  // namespace
}  // namespace terids
