#ifndef TERIDS_STREAM_BATCH_QUEUE_H_
#define TERIDS_STREAM_BATCH_QUEUE_H_

#include <cstddef>
#include <deque>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace terids {

/// A bounded multi-producer / single-consumer handoff queue for the async
/// ingest pipeline (DESIGN.md §7, §10): ingested micro-batches are pushed
/// in FIFO order — by the dedicated ingest thread in legacy mode
/// (sched_threads = 0), or by whichever scheduler worker runs the current
/// kIngest chain link in scheduler mode, where successive pushes come from
/// different threads — the refine (consumer) thread pops them, and the
/// bound caps how far ingest may run ahead of refinement. Any number of
/// threads may Push concurrently; Pop is single-consumer. Close is a
/// producer-side signal, Cancel a consumer-side one; both are safe from any
/// thread.
///
/// Blocking mutex + condvar implementation: the capacity is small (the
/// EngineConfig::ingest_queue_depth double-buffer) and items are whole
/// micro-batches, so handoff cost is irrelevant next to the work each item
/// carries — simplicity and TSan-provable correctness win over lock-free
/// cleverness. The mutex also supplies the happens-before edge that makes
/// the producer's window/grid/imputer mutations visible to the consumer
/// (and, in scheduler mode, chains the edge from one kIngest link's worker
/// to the next).
///
/// Locking model (DESIGN.md §12): all mutable state is guarded by `mu_`
/// (rank lock_rank::kBatchQueue, the lowest rank — nothing may be acquired
/// while holding it, and a scheduler worker pushing here holds no lock).
template <typename T>
class BatchQueue {
 public:
  /// `capacity` >= 1 items may be buffered before Push blocks.
  explicit BatchQueue(size_t capacity) : capacity_(capacity) {
    TERIDS_CHECK(capacity >= 1);
  }

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues `item`, blocking while the queue is full. Safe from multiple
  /// producer threads (the ingest chain's links run on varying workers).
  /// Returns false — dropping the item — once the consumer has Cancelled
  /// (which tells the producer to stop) or the queue has been Closed: after
  /// end-of-stream was signalled no further item can precede it, so a late
  /// Push is rejected like the Cancel path instead of tripping an invariant
  /// check only after winning the not-full wait. The result must be
  /// checked: a false return means the item was dropped and the producer
  /// has to stop.
  [[nodiscard]] bool Push(T item) {
    MutexLock lock(&mu_);
    while (!(items_.size() < capacity_ || cancelled_ || closed_)) {
      not_full_.Wait(&mu_);
    }
    if (cancelled_ || closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) {
      high_watermark_ = items_.size();
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Enqueues ignoring the capacity bound — the degrade policy's pressure
  /// valve (DESIGN.md §13): admission must never block, so the overshoot
  /// rides into the queue and the consumer absorbs it as bound-only
  /// (degraded) batches. Returns false after Close/Cancel, like Push.
  [[nodiscard]] bool ForcePush(T item) {
    MutexLock lock(&mu_);
    if (cancelled_ || closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) {
      high_watermark_ = items_.size();
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Applies `fn` to the oldest queued item iff the queue is currently at
  /// (or beyond) capacity — the shed_oldest policy's marking hook: the
  /// batch sacrificed under pressure is the one that has waited longest.
  /// `fn` runs under the queue mutex (atomically against a concurrent Pop),
  /// so it must be cheap and must not touch this queue. Returns whether
  /// `fn` ran.
  template <typename Fn>
  bool MutateOldestIfFull(Fn&& fn) {
    MutexLock lock(&mu_);
    if (items_.empty() || items_.size() < capacity_) {
      return false;
    }
    fn(&items_.front());
    return true;
  }

  /// Dequeues into `*out`, blocking while the queue is empty and not yet
  /// closed. Returns false once the queue is closed and drained, or
  /// immediately after Cancel. Single-consumer: exactly one thread pops.
  [[nodiscard]] bool Pop(T* out) {
    MutexLock lock(&mu_);
    while (!(!items_.empty() || closed_ || cancelled_)) {
      not_empty_.Wait(&mu_);
    }
    if (cancelled_ || items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return true;
  }

  /// Producer signals end-of-stream: already queued items remain poppable,
  /// then Pop returns false, and any later Push returns false.
  void Close() {
    MutexLock lock(&mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  /// Consumer aborts the handoff: a blocked (or any later) Push returns
  /// false so the producer stops promptly instead of working the stream
  /// dry into a queue nobody reads. Buffered items are dropped.
  void Cancel() {
    MutexLock lock(&mu_);
    cancelled_ = true;
    items_.clear();
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t capacity() const { return capacity_; }

  /// Current occupancy. Approximate by nature: the value may be stale the
  /// instant the lock drops — good enough for the overload pressure signal
  /// and observability, never for synchronization.
  size_t size() {
    MutexLock lock(&mu_);
    return items_.size();
  }

  /// Highest occupancy ever observed at a push (ForcePush can drive it past
  /// capacity()). Monotone over the queue's lifetime.
  size_t high_watermark() {
    MutexLock lock(&mu_);
    return high_watermark_;
  }

 private:
  const size_t capacity_;
  Mutex mu_{lock_rank::kBatchQueue};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ TERIDS_GUARDED_BY(mu_);
  size_t high_watermark_ TERIDS_GUARDED_BY(mu_) = 0;
  bool closed_ TERIDS_GUARDED_BY(mu_) = false;
  bool cancelled_ TERIDS_GUARDED_BY(mu_) = false;
};

}  // namespace terids

#endif  // TERIDS_STREAM_BATCH_QUEUE_H_
