#include "er/bounds.h"

#include <algorithm>

#include "util/status.h"

namespace terids {

namespace {

/// Lemma 4.1 for a single attribute.
double AttrSizeUb(const Interval& sa, const Interval& sb) {
  // |T^-| and |T^+| per side.
  const double a_min = sa.lo;
  const double a_max = sa.hi;
  const double b_min = sb.lo;
  const double b_max = sb.hi;
  if (a_min > b_max) {
    return a_min > 0 ? b_max / a_min : 1.0;
  }
  if (a_max < b_min) {
    return b_min > 0 ? a_max / b_min : 1.0;
  }
  return 1.0;
}

}  // namespace

double UbSimTokenSize(const ImputedTuple& a, const ImputedTuple& b) {
  TERIDS_CHECK(a.num_attributes() == b.num_attributes());
  double ub = 0.0;
  for (int k = 0; k < a.num_attributes(); ++k) {
    ub += AttrSizeUb(a.token_size_interval(k), b.token_size_interval(k));
  }
  return ub;
}

double UbSimPivot(const ImputedTuple& a, const ImputedTuple& b) {
  TERIDS_CHECK(a.num_attributes() == b.num_attributes());
  const int d = a.num_attributes();
  double sum_min_dist = 0.0;
  for (int k = 0; k < d; ++k) {
    // Every pivot gives a valid lower bound on dist(a[A_k], b[A_k]) via the
    // triangle inequality; the tightest (largest) one wins.
    double best = 0.0;
    const int np = std::min(a.num_pivot_intervals(k), b.num_pivot_intervals(k));
    for (int p = 0; p < np; ++p) {
      const double lb = a.pivot_dist_interval(k, p).MinAbsDiff(
          b.pivot_dist_interval(k, p));
      best = std::max(best, lb);
    }
    sum_min_dist += best;
  }
  return static_cast<double>(d) - sum_min_dist;
}

double UbSim(const ImputedTuple& a, const ImputedTuple& b) {
  return std::min(UbSimTokenSize(a, b), UbSimPivot(a, b));
}

double UbProbPaleyZygmund(const ImputedTuple& a, const ImputedTuple& b,
                          double gamma) {
  const int d = a.num_attributes();
  TERIDS_CHECK(b.num_attributes() == d);
  double e_x = 0.0;
  double e_y = 0.0;
  double lb_x = 0.0;
  double ub_x = 0.0;
  double lb_y = 0.0;
  double ub_y = 0.0;
  for (int k = 0; k < d; ++k) {
    e_x += a.expected_pivot_dist(k, 0);
    e_y += b.expected_pivot_dist(k, 0);
    lb_x += a.pivot_dist_interval(k, 0).lo;
    ub_x += a.pivot_dist_interval(k, 0).hi;
    lb_y += b.pivot_dist_interval(k, 0).lo;
    ub_y += b.pivot_dist_interval(k, 0).hi;
  }
  const double dg = static_cast<double>(d) - gamma;
  const double mass = a.total_prob() * b.total_prob();

  double bound = 1.0;
  if (lb_x >= ub_y) {
    // X - Y >= 0 always.
    const double ez = e_x - e_y;
    const double ubz = ub_x - lb_y;
    if (ez > 0 && dg >= 0 && dg <= ez && ubz > 0) {
      const double theta = dg / ez;
      bound = 1.0 - (1.0 - theta) * (1.0 - theta) * (ez / ubz);
    }
  } else if (lb_y >= ub_x) {
    const double ez = e_y - e_x;
    const double ubz = ub_y - lb_x;
    if (ez > 0 && dg >= 0 && dg <= ez && ubz > 0) {
      const double theta = dg / ez;
      bound = 1.0 - (1.0 - theta) * (1.0 - theta) * (ez / ubz);
    }
  }
  bound = std::clamp(bound, 0.0, 1.0);
  return bound * mass;
}

}  // namespace terids
