#ifndef TERIDS_UTIL_STOPWATCH_H_
#define TERIDS_UTIL_STOPWATCH_H_

#include <chrono>

namespace terids {

/// Monotonic wall-clock stopwatch used by the evaluation harness to record
/// per-arrival processing costs (the paper's "wall clock time" metric).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time into a double on destruction; used for break-up cost
/// accounting (Figure 6) where one arrival's cost is split across the CDD
/// selection, imputation, and ER stages.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      *sink_ += watch_.ElapsedSeconds();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  Stopwatch watch_;
};

}  // namespace terids

#endif  // TERIDS_UTIL_STOPWATCH_H_
