#ifndef TERIDS_REPO_SNAPSHOT_WRITER_H_
#define TERIDS_REPO_SNAPSHOT_WRITER_H_

#include <string>

#include "util/status.h"

namespace terids {

class Repository;

/// Serializes `repo`'s storage into the columnar snapshot format of
/// DESIGN.md §8 (versioned header + FNV-1a payload checksum) at `path`,
/// ready to be opened by MmapSnapshotStorage.
///
/// The writer reads exclusively through the backend-neutral Repository
/// interface, so it works on any backend — including an mmap-backed
/// repository that has accumulated dynamic-overlay values, which makes
/// re-snapshotting a compaction. The sorted coordinate lists are rebuilt
/// from (coord, ValueId) pairs; since those pairs are distinct and the
/// in-memory backend maintains exactly the (coord, ValueId)-ascending
/// order, the rebuilt lists are bit-identical to the oracle's.
Status WriteRepositorySnapshot(const Repository& repo,
                               const std::string& path);

/// Collision-resistant path for a throwaway snapshot file under TMPDIR
/// (or /tmp): `<dir>/<prefix>-<pid>-<random tag>-<counter>.snap`. The
/// random per-process tag keeps paths distinct even where getpid is
/// unavailable and the counter keeps repeated calls distinct.
std::string UniqueSnapshotPath(const std::string& prefix);

}  // namespace terids

#endif  // TERIDS_REPO_SNAPSHOT_WRITER_H_
