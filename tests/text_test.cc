#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "text/token_dict.h"
#include "text/token_set.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace terids {
namespace {

TEST(TokenDictTest, InternIsIdempotent) {
  TokenDict dict;
  Token a = dict.Intern("diabetes");
  Token b = dict.Intern("diabetes");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(TokenDictTest, FindMissesUnseen) {
  TokenDict dict;
  dict.Intern("fever");
  EXPECT_EQ(dict.Find("fever"), 0u);
  EXPECT_EQ(dict.Find("cough"), kInvalidToken);
}

TEST(TokenDictTest, TextRoundTrips) {
  TokenDict dict;
  Token t = dict.Intern("pneumonia");
  EXPECT_EQ(dict.TextOf(t), "pneumonia");
}

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  TokenDict dict;
  Tokenizer tok(&dict);
  TokenSet set = tok.Tokenize("Loss of Weight, blurred-vision!");
  EXPECT_EQ(set.size(), 5u);
  EXPECT_TRUE(set.Contains(dict.Find("loss")));
  EXPECT_TRUE(set.Contains(dict.Find("blurred")));
  EXPECT_TRUE(set.Contains(dict.Find("vision")));
}

TEST(TokenizerTest, DeduplicatesTokens) {
  TokenDict dict;
  Tokenizer tok(&dict);
  TokenSet set = tok.Tokenize("drug therapy drug therapy");
  EXPECT_EQ(set.size(), 2u);
}

TEST(TokenizerTest, FrozenTokenizerDropsUnknownWords) {
  TokenDict dict;
  Tokenizer tok(&dict);
  tok.Tokenize("known words only");
  TokenSet set = tok.TokenizeFrozen("known and unknown words");
  EXPECT_EQ(set.size(), 2u);  // "known", "words"
  EXPECT_EQ(dict.Find("unknown"), kInvalidToken);
}

TEST(TokenizerTest, EmptyInputYieldsEmptySet) {
  TokenDict dict;
  Tokenizer tok(&dict);
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  ,;!  ").empty());
}

TEST(TokenSetTest, FromTokensSortsAndDedups) {
  TokenSet set = TokenSet::FromTokens({5, 1, 3, 1, 5});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(std::vector<Token>(set.begin(), set.end()),
            (std::vector<Token>{1, 3, 5}));
}

TEST(TokenSetTest, IntersectionSize) {
  TokenSet a = TokenSet::FromTokens({1, 2, 3, 4});
  TokenSet b = TokenSet::FromTokens({3, 4, 5});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
}

TEST(JaccardTest, KnownValues) {
  TokenSet a = TokenSet::FromTokens({1, 2, 3});
  TokenSet b = TokenSet::FromTokens({2, 3, 4});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 0.5);
}

TEST(JaccardTest, IdenticalSetsHaveSimilarityOne) {
  TokenSet a = TokenSet::FromTokens({7, 8});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
}

TEST(JaccardTest, DisjointSetsHaveSimilarityZero) {
  TokenSet a = TokenSet::FromTokens({1});
  TokenSet b = TokenSet::FromTokens({2});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.0);
}

TEST(JaccardTest, EmptyConventions) {
  TokenSet empty;
  TokenSet nonempty = TokenSet::FromTokens({1});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(empty, nonempty), 0.0);
}

// --- Property tests ---------------------------------------------------

TokenSet RandomSet(Rng* rng, int max_size, int vocab) {
  std::vector<Token> tokens;
  const int size = static_cast<int>(rng->NextBounded(max_size + 1));
  for (int i = 0; i < size; ++i) {
    tokens.push_back(static_cast<Token>(rng->NextBounded(vocab)));
  }
  return TokenSet::FromTokens(std::move(tokens));
}

class JaccardPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JaccardPropertyTest, SymmetricAndBounded) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    TokenSet a = RandomSet(&rng, 12, 30);
    TokenSet b = RandomSet(&rng, 12, 30);
    const double sim = JaccardSimilarity(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
    EXPECT_DOUBLE_EQ(sim, JaccardSimilarity(b, a));
  }
}

TEST_P(JaccardPropertyTest, DistanceSatisfiesTriangleInequality) {
  // The triangle inequality is what Lemma 4.2, the pivot embedding, and
  // every coordinate-band filter in the system rely on.
  Rng rng(GetParam() * 31 + 1);
  for (int i = 0; i < 200; ++i) {
    TokenSet a = RandomSet(&rng, 10, 25);
    TokenSet b = RandomSet(&rng, 10, 25);
    TokenSet c = RandomSet(&rng, 10, 25);
    const double ab = JaccardDistance(a, b);
    const double bc = JaccardDistance(b, c);
    const double ac = JaccardDistance(a, c);
    EXPECT_LE(ac, ab + bc + 1e-12);
  }
}

TEST_P(JaccardPropertyTest, IdentityOfIndiscernibles) {
  Rng rng(GetParam() * 17 + 3);
  for (int i = 0; i < 100; ++i) {
    TokenSet a = RandomSet(&rng, 10, 25);
    EXPECT_DOUBLE_EQ(JaccardDistance(a, a), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace terids
