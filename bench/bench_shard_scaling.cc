// Shard scaling: candidate-phase throughput of the sharded ER-grid synopsis
// as a function of the shard count, plus end-to-end arrival throughput under
// grid sharding x async ingest. Not a paper figure — this tracks the ROADMAP
// scaling items (sharded window/grid state, async ingest) on top of the
// reproduced system.
//
// Section 1 isolates the candidate phase: a window's worth of tuples is
// inserted into a ShardedErGrid and a fixed probe set replays Candidates()
// per shard count, with the 1-shard result as both the throughput baseline
// and the correctness oracle (the merge contract makes every shard count
// bit-identical). Section 2 runs the full TER-iDS pipeline over the same
// profile sweeping shards x ingest queue depth. Parallel speedups require
// physical cores; a 1-core host shows overhead only.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/profiles.h"
#include "er/topic.h"
#include "synopsis/sharded_er_grid.h"
#include "tuple/imputed_tuple.h"
#include "util/stopwatch.h"

namespace {

using namespace terids;
using namespace terids::bench;

std::shared_ptr<WindowTuple> MakeWindowTuple(const Record& r, int stream_id,
                                             const Repository& repo,
                                             const TopicQuery& topic) {
  Record copy = r;
  copy.stream_id = stream_id;
  auto wt = std::make_shared<WindowTuple>();
  wt->tuple = std::make_shared<const ImputedTuple>(
      ImputedTuple::FromComplete(copy, &repo));
  wt->topic = topic.Classify(*wt->tuple);
  return wt;
}

}  // namespace

int main() {
  JsonReporter reporter("shard_scaling");
  const ExecKnobs env_knobs = EnvExecKnobs();
  // Songs is the paper's largest dataset (Table 4); probe cost grows with
  // the member count, which is what the fan-out shards.
  const std::string dataset = "Songs";
  ExperimentParams params = BaseParams(dataset);
  // The probe microbench wants a well-populated grid even under the CI
  // smoke job's aggressive TERIDS_BENCH_SCALE.
  if (params.scale < 0.004) params.scale = 0.004;
  Experiment experiment(ProfileByName(dataset), params);
  PrintHeader("shard_scaling",
              "candidate-phase + end-to-end throughput vs grid_shards",
              params);

  // --- Section 1: candidate-phase probe throughput ------------------------
  std::unique_ptr<Repository> repo = experiment.BuildRepository();
  TopicQuery topic(repo->dict(), {});  // unconstrained: geometry-only probes
  const GeneratedDataset& ds = experiment.dataset();
  std::vector<std::shared_ptr<WindowTuple>> members;
  for (const Record& r : ds.source_b) {
    if (members.size() >= 2000) break;
    members.push_back(MakeWindowTuple(r, /*stream_id=*/1, *repo, topic));
  }
  std::vector<std::shared_ptr<WindowTuple>> probes;
  for (const Record& r : ds.source_a) {
    if (probes.size() >= 100) break;
    probes.push_back(MakeWindowTuple(r, /*stream_id=*/0, *repo, topic));
  }
  const double gamma = experiment.gamma();
  const int rounds = 3;

  std::printf("\n-- candidate phase: %zu members, %zu probes x %d rounds --\n",
              members.size(), probes.size(), rounds);
  std::printf("%7s %12s %14s %14s %9s\n", "shards", "cells", "ms/probe",
              "probes/s", "speedup");
  std::vector<int64_t> oracle_rids;
  uint64_t oracle_pruned = 0;
  double base_throughput = 0.0;
  for (int shards : {1, 2, 4, 8}) {
    ShardedErGrid grid(repo->num_attributes(), params.cell_width, shards);
    for (const auto& wt : members) {
      grid.Insert(wt.get());
    }
    std::vector<int64_t> rids;
    uint64_t pruned = 0;
    Stopwatch watch;
    for (int round = 0; round < rounds; ++round) {
      rids.clear();
      pruned = 0;
      for (const auto& probe : probes) {
        ShardedErGrid::CandidateResult result =
            grid.Candidates(*probe, gamma, /*topic_constrained=*/false);
        for (const WindowTuple* cand : result.candidates) {
          rids.push_back(cand->rid());
        }
        pruned += result.topic_pruned + result.sim_pruned;
      }
    }
    const double seconds = watch.ElapsedSeconds();
    const double total_probes = static_cast<double>(probes.size() * rounds);
    const double throughput = seconds > 0 ? total_probes / seconds : 0.0;
    if (shards == 1) {
      base_throughput = throughput;
      oracle_rids = rids;
      oracle_pruned = pruned;
    } else if (rids != oracle_rids || pruned != oracle_pruned) {
      // The determinism contract is load-bearing for the whole PR; a bench
      // run that violates it must not report numbers as if it passed.
      std::fprintf(stderr, "FATAL: shard count %d changed the probe result\n",
                   shards);
      return 1;
    }
    const double speedup =
        base_throughput > 0 ? throughput / base_throughput : 0.0;
    std::printf("%7d %12zu %14.4f %14.1f %8.2fx\n", shards, grid.num_cells(),
                1e3 * seconds / total_probes, throughput, speedup);
    std::fflush(stdout);
    ExecKnobs knobs = env_knobs;
    knobs.grid_shards = shards;
    reporter.AddKnobRow(knobs)
        .Str("section", "candidate_phase")
        .Str("dataset", dataset)
        .Num("members", static_cast<double>(members.size()))
        .Num("probes_per_sec", throughput)
        .Num("speedup_vs_1_shard", speedup);
  }

  // --- Section 2: end-to-end arrival throughput ---------------------------
  std::printf("\n-- end-to-end TER-iDS: shards x ingest queue depth --\n");
  std::printf("%7s %6s %14s %14s %14s %9s\n", "shards", "queue", "ms/arrival",
              "arrivals/s", "queue-wait ms", "speedup");
  double base_e2e = 0.0;
  for (int shards : {1, 4}) {
    for (int queue : {0, 2}) {
      PipelineRun run = experiment.Run(PipelineKind::kTerIds,
                                       /*batch_size=*/8,
                                       env_knobs.refine_threads, shards, queue);
      const double throughput =
          run.total_seconds > 0
              ? static_cast<double>(run.arrivals) / run.total_seconds
              : 0.0;
      if (shards == 1 && queue == 0) {
        base_e2e = throughput;
      }
      const double speedup = base_e2e > 0 ? throughput / base_e2e : 0.0;
      const CostBreakdown per_arrival =
          run.total_cost.PerArrival(static_cast<long long>(run.arrivals));
      std::printf("%7d %6d %14.4f %14.1f %14.4f %8.2fx\n", shards, queue,
                  1e3 * run.avg_arrival_seconds, throughput,
                  1e3 * per_arrival.queue_wait_seconds, speedup);
      std::fflush(stdout);
      ExecKnobs knobs = env_knobs;
      knobs.batch_size = 8;
      knobs.grid_shards = shards;
      knobs.ingest_queue_depth = queue;
      reporter.AddKnobRow(knobs)
          .Str("section", "end_to_end")
          .Str("dataset", dataset)
          .Num("ms_per_arrival", 1e3 * run.avg_arrival_seconds)
          .Num("arrivals_per_sec", throughput)
          .Num("speedup_vs_sync_1_shard", speedup)
          .Raw("cost", per_arrival.ToJson());
    }
  }
  std::printf(
      "\nexpected shape: probe throughput scales with shards up to the\n"
      "physical core count (the merge is O(encountered tuples) and caps\n"
      "very small probes); async ingest (queue>0) overlaps imputation +\n"
      "candidate generation with refinement, so its gain tracks whichever\n"
      "stage is shorter. Every cell of both tables is bit-identical in\n"
      "output to the 1-shard synchronous configuration.\n");
  return 0;
}
