#ifndef TERIDS_EXEC_REFINEMENT_EXECUTOR_H_
#define TERIDS_EXEC_REFINEMENT_EXECUTOR_H_

#include <memory>
#include <vector>

#include "er/pruning.h"
#include "exec/thread_pool.h"
#include "stream/sliding_window.h"

namespace terids {

/// Parallel evaluation of the post-candidate-generation pair cascade
/// (Theorems 4.1-4.4 plus exact refinement), the embarrassingly parallel
/// part of the arrival pipeline: every pair evaluation reads only immutable
/// tuple state and the repository, so pairs shard freely across workers.
///
/// Determinism contract: `Run` fills `evaluations[i]` for `tasks[i]` — each
/// worker owns a disjoint contiguous shard of the task array and writes
/// only its own slots, so the result is independent of scheduling. The
/// caller folds the per-pair evaluations into PruneStats / the match set in
/// task (candidate) order, which reproduces the sequential loop exactly.
class RefinementExecutor {
 public:
  /// One pair to evaluate: an arriving probe tuple against one window
  /// candidate. Pointees must stay alive and unmodified for the duration of
  /// Run (the batched pipeline holds shared_ptrs for evicted candidates).
  struct Task {
    const ImputedTuple* probe = nullptr;
    const TopicQuery::TupleTopic* probe_topic = nullptr;
    const WindowTuple* candidate = nullptr;
  };

  /// `num_threads` <= 1 evaluates inline on the caller (no pool).
  explicit RefinementExecutor(int num_threads);
  ~RefinementExecutor();

  /// Evaluates a single pair — the unit of work every worker runs, also
  /// usable directly by the sequential refinement loop (no task vector, no
  /// dispatch). `signature_filter` enables the signature-bounded Jaccard
  /// kernel inside refinement (verdicts identical either way).
  static PairEvaluation Evaluate(const Task& task, bool use_prunings,
                                 bool signature_filter, double gamma,
                                 double alpha);

  int num_threads() const { return pool_.concurrency(); }

  /// Evaluates every task. With `use_prunings` the full cascade runs
  /// (EvaluatePair); without it the exact probability is always computed,
  /// reproducing the unpruned baselines. `evaluations` is resized to
  /// `tasks.size()`.
  void Run(const std::vector<Task>& tasks, bool use_prunings,
           bool signature_filter, double gamma, double alpha,
           std::vector<PairEvaluation>* evaluations);

 private:
  ThreadPool pool_;
};

}  // namespace terids

#endif  // TERIDS_EXEC_REFINEMENT_EXECUTOR_H_
