#!/usr/bin/env bash
# clang-format check over all C++ sources, as run by the CI format-check
# job. Pass --fix to rewrite files in place instead of checking. The
# CLANG_FORMAT environment variable selects the binary (the CI job pins a
# major version with it, e.g. CLANG_FORMAT=clang-format-15).
set -euo pipefail
cd "$(dirname "$0")/.."

clang_format="${CLANG_FORMAT:-clang-format}"

mode=(--dry-run -Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

if ! command -v "$clang_format" >/dev/null; then
  echo "error: $clang_format not installed" >&2
  exit 1
fi

find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 "$clang_format" "${mode[@]}"

# ---------------------------------------------------------------------------
# Docs consistency: README.md's execution-knob table is the canonical list
# of runtime knobs. Fail if an EngineConfig field or a TERIDS_BENCH_* env
# var exists in the code but is missing from the README, so the table can't
# silently rot when a knob is added.
# ---------------------------------------------------------------------------
docs_ok=1

# EngineConfig field names: lines like "  int sched_threads = 0;" inside
# struct EngineConfig of src/core/config.h.
config_knobs=$(awk '/^struct EngineConfig/,/^};/' src/core/config.h |
  grep -oE '^  [A-Za-z_:<>]+( [A-Za-z_:<>]+)* [a-z_]+ *[=;]' |
  grep -oE '[a-z_]+ *[=;]$' | grep -oE '^[a-z_]+')

for knob in $config_knobs; do
  if ! grep -q "\`$knob\`" README.md; then
    echo "error: EngineConfig knob '$knob' is missing from README.md" >&2
    docs_ok=0
  fi
done

# Every TERIDS_BENCH_* environment variable referenced by the bench harness.
bench_vars=$(grep -rhoE 'TERIDS_BENCH_[A-Z_]+' bench | grep -v '_H_$' | sort -u)

for var in $bench_vars; do
  if ! grep -q "$var" README.md; then
    echo "error: bench env var '$var' is missing from README.md" >&2
    docs_ok=0
  fi
done

if [[ $docs_ok -ne 1 ]]; then
  echo "error: README.md execution-knob table is out of date (see above)" >&2
  exit 1
fi

# ---------------------------------------------------------------------------
# Thread-safety annotation hygiene: every file must use the shared TERIDS_*
# macros from src/util/thread_annotations.h, never the raw clang attributes.
# Raw spellings bypass the central gcc no-op gating and fragment the
# annotation vocabulary DESIGN.md §12 documents.
# ---------------------------------------------------------------------------
raw_attrs=$(grep -rnE '__attribute__\(\((capability|scoped_lockable|guarded_by|pt_guarded_by|acquired_(before|after)|(acquire|release|try_acquire)_(shared_)?capability|requires_(shared_)?capability|locks_excluded|assert_(shared_)?capability|lock_returned|no_thread_safety_analysis)' \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  src tests bench examples |
  grep -v '^src/util/thread_annotations.h:' || true)

if [[ -n "$raw_attrs" ]]; then
  echo "error: raw thread-safety attributes found; use the TERIDS_* macros" >&2
  echo "       from src/util/thread_annotations.h instead:" >&2
  echo "$raw_attrs" >&2
  exit 1
fi
