#ifndef TERIDS_REPO_ATTRIBUTE_DOMAIN_H_
#define TERIDS_REPO_ATTRIBUTE_DOMAIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/token_set.h"
#include "util/status.h"

namespace terids {

/// Identifier of a distinct attribute value inside an AttributeDomain.
using ValueId = uint32_t;
inline constexpr ValueId kInvalidValueId = static_cast<ValueId>(-1);

/// The domain dom(A_x) of one attribute: all distinct values observed in the
/// data repository R, deduplicated by token set. Imputation candidates are
/// always ValueIds into a domain (Section 3).
///
/// This is the in-memory building block of InMemoryStorage (and the delta
/// overlay of MmapSnapshotStorage); engine code reads domains through the
/// backend-neutral Repository accessors instead.
class AttributeDomain {
 public:
  AttributeDomain() = default;

  /// Adds (or finds) a value; returns its id. `text` is kept for display.
  ValueId FindOrAdd(const TokenSet& tokens, const std::string& text);

  /// Id of an existing value with this exact token set, or kInvalidValueId.
  ValueId Find(const TokenSet& tokens) const;

  size_t size() const { return values_.size(); }
  const TokenSet& tokens(ValueId id) const;
  const std::string& text(ValueId id) const;

  /// Number of repository samples carrying this value (editing-rule mining
  /// uses this to pick frequent constants).
  int frequency(ValueId id) const;
  void BumpFrequency(ValueId id) {
    TERIDS_CHECK(id < frequencies_.size());
    ++frequencies_[id];
  }

  /// FNV-1a over the sorted token ids; the interning hash shared with the
  /// snapshot backend's base-value lookup table.
  static uint64_t HashTokens(const TokenSet& tokens);

 private:
  std::vector<TokenSet> values_;
  std::vector<std::string> texts_;
  std::vector<int> frequencies_;
  std::unordered_multimap<uint64_t, ValueId> by_hash_;
};

}  // namespace terids

#endif  // TERIDS_REPO_ATTRIBUTE_DOMAIN_H_
