#include "exec/refinement_executor.h"

#include <algorithm>
#include <vector>

#include "er/probability.h"
#include "text/similarity_kernels.h"
#include "util/status.h"

namespace terids {

namespace {

/// Stack-budget mirror of similarity.cc's kMaxAttrs: schemas wider than
/// this skip the signature machinery entirely (the per-pair kernel falls
/// back to plain exact merges there too).
constexpr int kPrefilterMaxAttrs = 64;

/// Splits the task list into `heavy` (tasks that may run token merges —
/// what actually gets scheduled across workers) and `light` (tasks whose
/// evaluation is provably merge-free: topic-killed pairs, plus
/// single-instance pairs the batched signature pass rejected). The
/// classification is placement-only — every task still runs the full,
/// unchanged Evaluate, so the output and every PruneStats outcome counter
/// are bit-identical whether or not the prefilter ran; light tasks merely
/// re-derive their cheap popcount verdict inside the kernel. What the
/// batching buys is one SIMD sweep over the candidate list's SoA
/// signatures (SigFilterCandidates) and shards that contain only
/// verify-heavy work, instead of merges interleaved with popcount-only
/// rejects.
void ClassifyTasks(const std::vector<RefinementExecutor::Task>& tasks,
                   bool signature_filter, double gamma,
                   std::vector<int64_t>* heavy, std::vector<int64_t>* light) {
  const int64_t n = static_cast<int64_t>(tasks.size());
  heavy->reserve(static_cast<size_t>(n));
  const ImputedTuple& first = *tasks[0].probe;
  const int d = first.num_attributes();
  if (!signature_filter || d > kPrefilterMaxAttrs) {
    for (int64_t i = 0; i < n; ++i) {
      heavy->push_back(i);
    }
    return;
  }
  const TokenArena& arena = first.token_arena();
  const int words = arena.sig_words();
  // SoA gather of the (pair, attribute) lens + signature words for the
  // single-instance pairs, row-major — the layout SigFilterCandidates
  // sweeps in one pass. Thread-local scratch: Run dispatches from one
  // thread, and steady-state batches then reuse the buffers.
  thread_local std::vector<int64_t> eligible;
  thread_local std::vector<uint32_t> len_a;
  thread_local std::vector<uint32_t> len_b;
  thread_local std::vector<uint64_t> sig_a;
  thread_local std::vector<uint64_t> sig_b;
  eligible.clear();
  len_a.clear();
  len_b.clear();
  sig_a.clear();
  sig_b.clear();
  for (int64_t i = 0; i < n; ++i) {
    const RefinementExecutor::Task& t = tasks[i];
    const WindowTuple& cand = *t.candidate;
    if (!t.probe_topic->any && !cand.topic.any) {
      // Theorem 4.1 kills the pair before any refinement work.
      light->push_back(i);
      continue;
    }
    if (t.probe->num_instances() != 1 || cand.tuple->num_instances() != 1) {
      // Multi-instance pairs enumerate a cross product; treat as heavy.
      heavy->push_back(i);
      continue;
    }
    TERIDS_CHECK(t.probe->token_arena().sig_words() == words);
    TERIDS_CHECK(cand.tuple->token_arena().sig_words() == words);
    eligible.push_back(i);
    for (int k = 0; k < d; ++k) {
      const TokenView va = t.probe->instance_token_view(0, k);
      const TokenView vb = cand.tuple->instance_token_view(0, k);
      len_a.push_back(va.len);
      len_b.push_back(vb.len);
      sig_a.insert(sig_a.end(), va.sig, va.sig + words);
      sig_b.insert(sig_b.end(), vb.sig, vb.sig + words);
    }
  }
  if (eligible.empty()) {
    return;
  }
  SigFilterBatch batch;
  batch.num_pairs = eligible.size();
  batch.d = d;
  batch.sig_bits = arena.sig_bits();
  batch.len_a = len_a.data();
  batch.len_b = len_b.data();
  batch.sig_a = sig_a.data();
  batch.sig_b = sig_b.data();
  thread_local std::vector<uint64_t> survivors;
  survivors.assign((eligible.size() + 63) / 64, 0);
  const size_t survivor_count =
      SigFilterCandidates(batch, gamma, survivors.data());
  heavy->reserve(heavy->size() + survivor_count);
  light->reserve(light->size() + (eligible.size() - survivor_count));
  for (size_t j = 0; j < eligible.size(); ++j) {
    if ((survivors[j >> 6] >> (j & 63)) & 1) {
      heavy->push_back(eligible[j]);
    } else {
      light->push_back(eligible[j]);
    }
  }
}

}  // namespace

RefinementExecutor::RefinementExecutor(int num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads)) {}

RefinementExecutor::RefinementExecutor(Scheduler* scheduler)
    : scheduler_(scheduler) {
  TERIDS_CHECK(scheduler != nullptr);
}

RefinementExecutor::~RefinementExecutor() = default;

PairEvaluation RefinementExecutor::Evaluate(const Task& task,
                                            bool use_prunings,
                                            bool signature_filter,
                                            double gamma, double alpha) {
  const WindowTuple& cand = *task.candidate;
  if (use_prunings) {
    return EvaluatePair(*task.probe, *task.probe_topic, *cand.tuple,
                        cand.topic, gamma, alpha, signature_filter);
  }
  // Unpruned baselines: every pair is fully refined with the exact
  // probability, matching the sequential unpruned loop bit-for-bit.
  PairEvaluation eval;
  SigFilterCounters sig;
  eval.probability =
      ExactProbability(*task.probe, *task.probe_topic, *cand.tuple,
                       cand.topic, gamma, signature_filter, &sig);
  eval.sig_probes = sig.probes;
  eval.sig_saturated = sig.saturated;
  eval.sig_rejects = sig.rejects;
  eval.outcome = eval.probability > alpha ? PairOutcome::kMatched
                                          : PairOutcome::kRefuted;
  return eval;
}

void RefinementExecutor::Run(const std::vector<Task>& tasks,
                             bool use_prunings, bool signature_filter,
                             double gamma, double alpha,
                             std::vector<PairEvaluation>* evaluations) {
  const int64_t n = static_cast<int64_t>(tasks.size());
  evaluations->resize(tasks.size());
  if (n == 0) {
    return;
  }
  if (num_threads() == 1) {
    for (int64_t i = 0; i < n; ++i) {
      (*evaluations)[i] =
          Evaluate(tasks[i], use_prunings, signature_filter, gamma, alpha);
    }
    return;
  }
  // Batched signature prefilter: one SoA popcount sweep over the candidate
  // list decides which tasks can reach token merges ("heavy") before any
  // fan-out, so workers are scheduled over verify-heavy shards while the
  // merge-free remainder ("light": topic-killed and signature-rejected
  // pairs) is swept in shards coarse enough to amortize dispatch. Every
  // task still runs the unchanged Evaluate, so results and stats are
  // bit-identical to the sequential loop regardless of placement.
  std::vector<int64_t> heavy;
  std::vector<int64_t> light;
  ClassifyTasks(tasks, signature_filter, gamma, &heavy, &light);
  const int64_t heavy_n = static_cast<int64_t>(heavy.size());
  const int64_t light_n = static_cast<int64_t>(light.size());
  // Contiguous shards, several per worker so an expensive stretch of pairs
  // (deep instance cross products) does not serialize the whole batch.
  // Light shards are 8x coarser: each task is just a popcount cascade.
  const int64_t shard_size = std::max<int64_t>(
      1, n / (static_cast<int64_t>(num_threads()) * 4));
  const int64_t light_shard_size = shard_size * 8;
  const int64_t heavy_shards = (heavy_n + shard_size - 1) / shard_size;
  const int64_t light_shards =
      (light_n + light_shard_size - 1) / light_shard_size;
  const auto eval_range = [&](const std::vector<int64_t>& index, int64_t begin,
                              int64_t end) {
    for (int64_t j = begin; j < end; ++j) {
      const int64_t i = index[j];
      (*evaluations)[i] =
          Evaluate(tasks[i], use_prunings, signature_filter, gamma, alpha);
    }
  };
  const auto run_shard = [&](int64_t shard) {
    if (shard < heavy_shards) {
      const int64_t begin = shard * shard_size;
      eval_range(heavy, begin, std::min(heavy_n, begin + shard_size));
    } else {
      const int64_t begin = (shard - heavy_shards) * light_shard_size;
      eval_range(light, begin, std::min(light_n, begin + light_shard_size));
    }
  };
  const int64_t num_shards = heavy_shards + light_shards;
  if (scheduler_ != nullptr) {
    scheduler_->ParallelFor(ExecPhase::kRefine, num_shards, run_shard);
  } else {
    pool_->ParallelFor(num_shards, run_shard);
  }
}

}  // namespace terids
