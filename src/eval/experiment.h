#ifndef TERIDS_EVAL_EXPERIMENT_H_
#define TERIDS_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "er/pruning.h"
#include "eval/cost_breakdown.h"
#include "eval/metrics.h"
#include "repo/repository.h"
#include "rules/rule.h"

namespace terids {

/// The evaluation parameters of Table 5. Defaults are the paper's bold
/// defaults; sizes are scaled via `scale` so the full suite runs on one
/// core (see DESIGN.md §4 and EXPERIMENTS.md).
struct ExperimentParams {
  double alpha = 0.5;  // probabilistic threshold
  double rho = 0.5;    // gamma = rho * d
  double xi = 0.3;     // missing rate
  double eta = 0.3;    // |R| / stream size
  int w = 200;         // sliding-window size (paper default 1000, scaled)
  int m = 1;           // missing attributes per incomplete tuple
  double scale = 0.1;  // dataset size scale factor
  int topics_in_query = 1;
  int max_arrivals = 0;  // 0 = consume both sources fully
  uint64_t seed = 20210620;
  int max_instances = 16;
  int max_candidates_per_attr = 8;
  double cell_width = 0.2;
  /// Execution-model knobs (defaults reproduce one-at-a-time processing).
  int batch_size = 1;
  int refine_threads = 1;
  int grid_shards = 1;
  int ingest_queue_depth = 0;
  /// Signature-bounded Jaccard kernel inside refinement (on by default;
  /// results are bit-identical either way, only merge work is skipped).
  bool signature_filter = true;
  /// Token-signature width in bits (64 / 128 / 256, DESIGN.md §11). Any
  /// width produces bit-identical matches and outcome stats; wider
  /// signatures reject more merges on long token sets.
  int sig_width = 64;
  /// MaintainPhase grid fan-out (> 1 = per-shard insert/remove on the grid
  /// pool; identical output for every setting).
  int maintain_shards = 1;
  /// Unified scheduler worker count (0 = legacy per-subsystem pools, the
  /// seed execution model; >= 1 = all phases share one worker pool). Every
  /// setting produces identical results (DESIGN.md §10).
  int sched_threads = 0;
  /// Repository storage backend each Run()'s fresh repository uses. With
  /// kMmapSnapshot, BuildRepository serializes the in-memory build into a
  /// temporary snapshot file and reopens it via mmap — results are
  /// bit-identical to kInMemory (the equivalence sweep enforces it).
  RepoBackend repo_backend = RepoBackend::kInMemory;
  /// v2 snapshot materialization mode for the mmap backend (lazy
  /// first-touch section decode vs decode-all-at-open; DESIGN.md §8).
  /// Results are bit-identical either way (equivalence sweep enforced).
  SnapshotDecode snapshot_decode = SnapshotDecode::kLazy;
  /// Overload policy of the async ingest path (DESIGN.md §13). kBlock
  /// (default) is the backpressure oracle — bit-identical results; the
  /// shedding/degrading policies trade completeness for bounded sojourn
  /// under pressure and are bit-identical whenever pressure never fires.
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
};

/// One pipeline's measured run.
struct PipelineRun {
  std::string name;
  size_t arrivals = 0;
  double total_seconds = 0.0;
  double avg_arrival_seconds = 0.0;
  CostBreakdown total_cost;
  PruneStats stats;
  PrecisionRecall accuracy;
  size_t final_result_size = 0;
  /// Per-arrival latency histograms (phase + end-to-end) the pipeline's
  /// ProcessStream recorded at each emission; empty for pipelines that do
  /// not account latency.
  LatencyStats arrival_latency;
  /// Per-work-item service-time histograms from the unified scheduler
  /// (sched_threads >= 1); empty in legacy mode.
  LatencyStats sched_item_latency;
  /// Overload-layer accounting (DESIGN.md §13): all-zero under the block
  /// policy or whenever the pressure signal never fired.
  ShedStats shed;
};

/// Builds one dataset + repository + rules under fixed parameters and runs
/// any of the six pipelines over identical arrival sequences. All offline
/// artifacts (pivots, rule sets, effective ground truth) are computed once
/// and shared; each Run() gets a fresh repository so pipelines cannot
/// interfere (the constraint imputer registers stream values into domains).
class Experiment {
 public:
  Experiment(const DatasetProfile& profile, const ExperimentParams& params);

  /// Replays the arrival sequence through the pipeline's batched operator
  /// (micro-batches of params().batch_size via StreamDriver::NextBatch;
  /// with the default batch_size=1 / refine_threads=1 this is exactly the
  /// one-at-a-time operator).
  PipelineRun Run(PipelineKind kind);
  /// Same run with the execution-model knobs overridden; dataset, rules,
  /// and ground truth are shared, so scaling benches can sweep batch and
  /// thread settings without rebuilding the experiment.
  PipelineRun Run(PipelineKind kind, int batch_size, int refine_threads);
  /// Full execution-model override: micro-batch size, refinement threads,
  /// ER-grid shard count, and async-ingest queue depth.
  PipelineRun Run(PipelineKind kind, int batch_size, int refine_threads,
                  int grid_shards, int ingest_queue_depth);
  /// Fully explicit run under an arbitrary EngineConfig (start from
  /// MakeConfig() and tweak); the generalized entry point for knob benches
  /// that sweep axes without a dedicated override (signature filter,
  /// maintain shards, ...).
  PipelineRun Run(PipelineKind kind, const EngineConfig& config);

  const GeneratedDataset& dataset() const { return dataset_; }
  const ExperimentParams& params() const { return params_; }
  /// The incomplete arrival sources Run() streams (post-WithMissing), so
  /// overload benches can reshape them (ArrivalShaper) and drive a custom
  /// StreamDriver over the same content.
  const std::vector<Record>& incomplete_a() const { return incomplete_a_; }
  const std::vector<Record>& incomplete_b() const { return incomplete_b_; }
  double gamma() const;
  const std::vector<CddRule>& cdds() const { return cdds_; }
  const std::vector<CddRule>& dds() const { return dds_; }
  const std::vector<CddRule>& editing_rules() const { return editing_; }
  /// Pairs a perfect topic-aware matcher over complete data would report
  /// within the experiment's windows (the F-score denominator).
  const std::vector<GroundTruthPair>& effective_truth() const {
    return effective_truth_;
  }

  /// Offline costs (Figures 11 and 12).
  double pivot_selection_seconds() const { return pivot_seconds_; }
  double rule_mining_seconds() const { return mining_seconds_; }

  /// Builds a fresh repository with pivots attached, on the backend
  /// params().repo_backend selects (public so ablation benches can
  /// construct custom engines).
  std::unique_ptr<Repository> BuildRepository() const;
  /// Same, with an explicit backend override (backend-comparison benches
  /// and the storage equivalence sweep); uses params().snapshot_decode.
  std::unique_ptr<Repository> BuildRepository(RepoBackend backend) const;
  /// Fully explicit: backend + v2 snapshot decode mode.
  std::unique_ptr<Repository> BuildRepository(RepoBackend backend,
                                              SnapshotDecode decode) const;
  EngineConfig MakeConfig() const;

 private:
  void ComputeEffectiveTruth();
  size_t ArrivalCap() const;

  DatasetProfile profile_;
  ExperimentParams params_;
  GeneratedDataset dataset_;
  std::vector<Record> incomplete_a_;
  std::vector<Record> incomplete_b_;
  std::vector<AttributePivots> pivots_;
  std::vector<CddRule> cdds_;
  std::vector<CddRule> dds_;
  std::vector<CddRule> editing_;
  std::vector<GroundTruthPair> effective_truth_;
  double pivot_seconds_ = 0.0;
  double mining_seconds_ = 0.0;
};

}  // namespace terids

#endif  // TERIDS_EVAL_EXPERIMENT_H_
