#ifndef TERIDS_TEXT_TOKEN_ARENA_H_
#define TERIDS_TEXT_TOKEN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/similarity_kernels.h"
#include "text/token_dict.h"

namespace terids {

/// A read-only view of one token set inside a TokenArena: a sorted,
/// deduplicated span plus its precomputed 64-bit signature. This is the
/// unit the refinement hot path operates on — sequential memory instead of
/// per-value heap vectors, and an O(1) popcount bound before any merge.
struct TokenView {
  const Token* data = nullptr;
  uint32_t len = 0;
  uint64_t sig = 0;

  bool empty() const { return len == 0; }
};

/// Flat SoA storage for the token sets of one window-resident tuple
/// (DESIGN.md §9): every distinct token set is appended once into a single
/// contiguous Token buffer (a "range": offset + length + signature), and
/// slots map logical positions — (instance, attribute) cells, plus the
/// cached record-union — onto ranges. Slots freely alias ranges, so an
/// attribute shared by all instances (or two instances choosing the same
/// imputed value) stores its tokens exactly once while every slot lookup
/// stays O(1).
///
/// The arena is build-once: ranges and slots are appended during tuple
/// construction and never mutated afterwards, which is what makes
/// concurrent refinement reads safe without synchronization.
class TokenArena {
 public:
  static constexpr uint32_t kInvalidRange = static_cast<uint32_t>(-1);

  /// Appends a copy of `tokens` (sorted, deduplicated — TokenSet order) and
  /// returns the range id. Signatures are computed here, once per range.
  uint32_t AddRange(const std::vector<Token>& tokens);

  /// Appends the next slot, referring to an existing range.
  void PushSlot(uint32_t range_id);

  TokenView slot(size_t i) const { return range(slot_ranges_[i]); }
  TokenView range(uint32_t range_id) const {
    const Range& r = ranges_[range_id];
    return TokenView{tokens_.data() + r.offset, r.len, r.sig};
  }

  size_t num_slots() const { return slot_ranges_.size(); }
  size_t num_ranges() const { return ranges_.size(); }
  size_t total_tokens() const { return tokens_.size(); }

  /// Pre-sizes the buffers (construction-time hint; optional).
  void Reserve(size_t tokens, size_t ranges, size_t slots);

 private:
  struct Range {
    uint32_t offset = 0;
    uint32_t len = 0;
    uint64_t sig = 0;
  };

  std::vector<Token> tokens_;
  std::vector<Range> ranges_;
  std::vector<uint32_t> slot_ranges_;  // slot index -> range id
};

}  // namespace terids

#endif  // TERIDS_TEXT_TOKEN_ARENA_H_
