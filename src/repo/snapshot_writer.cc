#include "repo/snapshot_writer.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "repo/repository.h"
#include "repo/snapshot_format.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace terids {

namespace {

void AppendDomain(const Repository& repo, int attr, snapshot::Builder* out) {
  const size_t dom = repo.domain_size(attr);
  out->AppendU64(dom);

  // Concatenated token ids + prefix offsets.
  std::vector<Token> token_ids;
  std::vector<uint64_t> token_offsets;
  token_offsets.reserve(dom + 1);
  token_offsets.push_back(0);
  for (ValueId v = 0; v < dom; ++v) {
    const TokenSet& ts = repo.value_tokens(attr, v);
    token_ids.insert(token_ids.end(), ts.begin(), ts.end());
    token_offsets.push_back(token_ids.size());
  }
  out->AppendU64(token_ids.size());
  out->AppendArray(token_ids.data(), token_ids.size());
  out->AppendArray(token_offsets.data(), token_offsets.size());

  // Display-text blob + prefix offsets.
  std::string text_blob;
  std::vector<uint64_t> text_offsets;
  text_offsets.reserve(dom + 1);
  text_offsets.push_back(0);
  for (ValueId v = 0; v < dom; ++v) {
    text_blob += repo.value_text(attr, v);
    text_offsets.push_back(text_blob.size());
  }
  out->AppendU64(text_blob.size());
  out->AppendArray(text_blob.data(), text_blob.size());
  out->AppendArray(text_offsets.data(), text_offsets.size());

  std::vector<int32_t> freqs(dom);
  for (ValueId v = 0; v < dom; ++v) {
    freqs[v] = repo.value_frequency(attr, v);
  }
  out->AppendArray(freqs.data(), freqs.size());
}

void AppendPivotTokens(const Repository& repo, snapshot::Builder* out) {
  const int d = repo.num_attributes();
  for (int x = 0; x < d; ++x) {
    const int np = repo.num_pivots(x);
    out->AppendU64(static_cast<uint64_t>(np));
    for (int a = 0; a < np; ++a) {
      const TokenSet& ts = repo.pivot_tokens(x, a);
      out->AppendU64(ts.size());
      out->AppendArray(ts.data(), ts.size());
    }
  }
}

void AppendDistColumns(const Repository& repo, int attr,
                       snapshot::Builder* out) {
  const size_t dom = repo.domain_size(attr);
  std::vector<double> dists(dom);
  for (int a = 0; a < repo.num_pivots(attr); ++a) {
    for (ValueId v = 0; v < dom; ++v) {
      dists[v] = repo.pivot_distance(attr, a, v);
    }
    out->AppendArray(dists.data(), dists.size());
  }
}

void AppendCoordLists(const Repository& repo, int attr,
                      snapshot::Builder* out) {
  // Sorted main-pivot coordinate list, as parallel (key, vid) columns.
  const size_t dom = repo.domain_size(attr);
  std::vector<std::pair<double, ValueId>> coords;
  coords.reserve(dom);
  for (ValueId v = 0; v < dom; ++v) {
    coords.emplace_back(repo.coord(attr, v), v);
  }
  std::sort(coords.begin(), coords.end());
  std::vector<double> keys(dom);
  std::vector<uint32_t> vids(dom);
  for (size_t i = 0; i < dom; ++i) {
    keys[i] = coords[i].first;
    vids[i] = coords[i].second;
  }
  out->AppendArray(keys.data(), keys.size());
  out->AppendArray(vids.data(), vids.size());
}

/// v2 per-attribute geometry section: a self-describing (dom, np) prefix,
/// then the pivot-distance columns and the sorted coordinate lists for
/// this attribute only, so a lazy reader can decode one attribute's
/// geometry without touching any other section.
void AppendGeometrySection(const Repository& repo, int attr,
                           snapshot::Builder* out) {
  out->AppendU64(repo.domain_size(attr));
  out->AppendU64(static_cast<uint64_t>(repo.num_pivots(attr)));
  AppendDistColumns(repo, attr, out);
  AppendCoordLists(repo, attr, out);
}

void AppendSamples(const Repository& repo, snapshot::Builder* out) {
  const int d = repo.num_attributes();
  const size_t n = repo.num_samples();
  std::vector<int64_t> rids(n);
  std::vector<int32_t> streams(n);
  std::vector<int64_t> timestamps(n);
  std::vector<uint32_t> vids(n * static_cast<size_t>(d));
  std::string text_blob;
  std::vector<uint64_t> text_offsets;
  text_offsets.reserve(n * static_cast<size_t>(d) + 1);
  text_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    const Record& r = repo.sample(i);
    rids[i] = r.rid;
    streams[i] = r.stream_id;
    timestamps[i] = r.timestamp;
    for (int x = 0; x < d; ++x) {
      vids[i * static_cast<size_t>(d) + x] = repo.sample_value_id(i, x);
      // Sample texts are stored verbatim: a later sample may carry a
      // different spelling than the domain's first-seen display text, and
      // reconstruction must not canonicalize it. Token sets are not stored
      // per sample — they are definitionally identical to the domain
      // value's (FindOrAdd deduplicates by token-set equality).
      text_blob += r.values[x].text;
      text_offsets.push_back(text_blob.size());
    }
  }
  out->AppendArray(rids.data(), rids.size());
  out->AppendArray(streams.data(), streams.size());
  out->AppendArray(timestamps.data(), timestamps.size());
  out->AppendArray(vids.data(), vids.size());
  out->AppendU64(text_blob.size());
  out->AppendArray(text_blob.data(), text_blob.size());
  out->AppendArray(text_offsets.data(), text_offsets.size());
}

/// v1 monolithic payload: domains, pivot tokens, every attribute's
/// distance columns, every attribute's coordinate lists, samples.
std::string BuildPayloadV1(const Repository& repo) {
  snapshot::Builder payload;
  const int d = repo.num_attributes();
  for (int x = 0; x < d; ++x) {
    AppendDomain(repo, x, &payload);
  }
  AppendPivotTokens(repo, &payload);
  for (int x = 0; x < d; ++x) {
    AppendDistColumns(repo, x, &payload);
  }
  for (int x = 0; x < d; ++x) {
    AppendCoordLists(repo, x, &payload);
  }
  AppendSamples(repo, &payload);
  return payload.bytes();
}

struct SectionBlob {
  snapshot::SectionKind kind;
  uint64_t attr;
  uint64_t aux;
  std::string bytes;
};

uint64_t Align8(uint64_t n) { return (n + 7) / 8 * 8; }

/// v2 payload: TOC (count + entries), then each section at its 8-aligned
/// offset. Section contents reuse the v1 encoders, so the bytes inside a
/// domain or samples section are identical across versions; only the
/// framing (and the per-attribute geometry regrouping) differs.
std::string BuildPayloadV2(const Repository& repo, uint64_t* toc_checksum) {
  const int d = repo.num_attributes();
  std::vector<SectionBlob> sections;
  sections.reserve(2 * static_cast<size_t>(d) + 2);
  for (int x = 0; x < d; ++x) {
    snapshot::Builder b;
    AppendDomain(repo, x, &b);
    sections.push_back({snapshot::SectionKind::kDomain,
                        static_cast<uint64_t>(x), repo.domain_size(x),
                        b.bytes()});
  }
  {
    snapshot::Builder b;
    AppendPivotTokens(repo, &b);
    sections.push_back({snapshot::SectionKind::kPivotTokens, 0, 0, b.bytes()});
  }
  for (int x = 0; x < d; ++x) {
    snapshot::Builder b;
    AppendGeometrySection(repo, x, &b);
    sections.push_back({snapshot::SectionKind::kGeometry,
                        static_cast<uint64_t>(x),
                        static_cast<uint64_t>(repo.num_pivots(x)), b.bytes()});
  }
  {
    snapshot::Builder b;
    AppendSamples(repo, &b);
    sections.push_back(
        {snapshot::SectionKind::kSamples, 0, repo.num_samples(), b.bytes()});
  }

  const uint64_t count = sections.size();
  std::vector<snapshot::SectionEntry> entries;
  entries.reserve(count);
  uint64_t off = Align8(sizeof(uint64_t) + count * sizeof(snapshot::SectionEntry));
  for (const SectionBlob& s : sections) {
    snapshot::SectionEntry e;
    e.kind = static_cast<uint64_t>(s.kind);
    e.attr = s.attr;
    e.offset = off;
    e.bytes = s.bytes.size();
    e.aux = s.aux;
    e.checksum = snapshot::Checksum(s.bytes.data(), s.bytes.size());
    entries.push_back(e);
    off = Align8(off + e.bytes);
  }

  std::string toc;
  toc.append(reinterpret_cast<const char*>(&count), sizeof(count));
  toc.append(reinterpret_cast<const char*>(entries.data()),
             entries.size() * sizeof(snapshot::SectionEntry));
  *toc_checksum = snapshot::Checksum(toc.data(), toc.size());

  std::string payload = std::move(toc);
  for (size_t i = 0; i < sections.size(); ++i) {
    payload.resize(entries[i].offset, '\0');
    payload += sections[i].bytes;
  }
  return payload;
}

/// Writes header + payload to a same-directory temp file, fsyncs it, and
/// renames it over `path`. Every failure path unlinks the temp file.
Status WriteFileAtomic(const std::string& path, const snapshot::Header& header,
                       const std::string& payload) {
  static std::atomic<uint64_t> tmp_counter{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const std::string tmp = path + ".tmp-" + std::to_string(pid) + "-" +
                          std::to_string(tmp_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open snapshot temp file for writing: " +
                              tmp);
    }
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("short write to snapshot temp file: " + tmp);
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  // Durability: the rename must not be reordered before the data blocks.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd < 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot reopen snapshot temp file for fsync: " +
                            tmp);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("fsync failed on snapshot temp file: " + tmp);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename snapshot temp file over: " + path);
  }
  return Status::Ok();
}

}  // namespace

std::string UniqueSnapshotPath(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  static const uint64_t tag = std::random_device{}();
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir =
      (tmpdir != nullptr && tmpdir[0] != '\0') ? tmpdir : "/tmp";
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return dir + "/" + prefix + "-" + std::to_string(pid) + "-" +
         std::to_string(tag) + "-" + std::to_string(counter.fetch_add(1)) +
         ".snap";
}

Status WriteRepositorySnapshot(const Repository& repo,
                               const std::string& path) {
  return WriteRepositorySnapshot(repo, path, snapshot::kVersion);
}

Status WriteRepositorySnapshot(const Repository& repo, const std::string& path,
                               uint32_t format_version) {
  if (format_version != snapshot::kVersion &&
      format_version != snapshot::kVersionEager) {
    return Status::InvalidArgument("unsupported snapshot format version: " +
                                   std::to_string(format_version));
  }
  if (!repo.has_pivots()) {
    // Nothing in the snapshot's geometry sections would be meaningful, and
    // the read-only backend cannot run AttachPivots later.
    return Status::FailedPrecondition(
        "snapshot requires a repository with pivots attached");
  }

  uint64_t checksum = 0;
  std::string payload;
  if (format_version == snapshot::kVersion) {
    payload = BuildPayloadV2(repo, &checksum);
  } else {
    payload = BuildPayloadV1(repo);
    checksum = snapshot::Checksum(payload.data(), payload.size());
  }

  snapshot::Header header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, snapshot::kMagic, sizeof(header.magic));
  header.version = format_version;
  header.num_attributes = static_cast<uint32_t>(repo.num_attributes());
  header.num_samples = repo.num_samples();
  header.dict_tokens = repo.dict().size();
  header.payload_bytes = payload.size();
  header.payload_checksum = checksum;
  header.has_pivots = 1;

  return WriteFileAtomic(path, header, payload);
}

}  // namespace terids
