#ifndef TERIDS_IMPUTATION_VALUE_NEIGHBORHOODS_H_
#define TERIDS_IMPUTATION_VALUE_NEIGHBORHOODS_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "repo/repository.h"
#include "rules/rule.h"

namespace terids {

/// Distance-sorted neighbor lists of attribute-domain values, the
/// value-level companion of the DR-index: for a domain value v of attribute
/// x, Neighborhood(x, v) lists every value within `radius[x]` of v, sorted
/// by Jaccard distance.
///
/// Candidate sets cand(s[A_j]) (Section 3) are binary-searched slices of
/// these lists, so an index-assisted engine computes each domain-to-domain
/// distance at most once per engine lifetime, while the unindexed baselines
/// rescan the domain per (rule, sample, arrival). Lists are built lazily
/// (only values that actually appear as satisfying samples pay the cost)
/// using the repository's sorted-coordinate filter.
class ValueNeighborhoods {
 public:
  /// `radius[x]` caps the usable dependent-interval hi on attribute x; pass
  /// MaxRadiusPerAttr(rules, d) for a rule set.
  ValueNeighborhoods(const Repository* repo, std::vector<double> radius);

  static std::vector<double> MaxRadiusPerAttr(const std::vector<CddRule>& rules,
                                              int num_attributes);

  const std::vector<std::pair<double, ValueId>>& Neighborhood(int attr,
                                                              ValueId vid);

  /// Accumulates the candidate slice within `dep` around sample value
  /// `svid` into `freq` (+1 per value, Equation 3/4 semantics).
  void AccumulateRange(int attr, ValueId svid, const Interval& dep,
                       std::unordered_map<ValueId, double>* freq);

  /// Drops all cached lists (repository domains changed).
  void Invalidate();

 private:
  const Repository* repo_;
  std::vector<double> radius_;
  std::vector<std::unordered_map<ValueId, std::vector<std::pair<double, ValueId>>>>
      cache_;
};

}  // namespace terids

#endif  // TERIDS_IMPUTATION_VALUE_NEIGHBORHOODS_H_
