#include "stream/sliding_window.h"

#include "util/status.h"

namespace terids {

SlidingWindow::SlidingWindow(int capacity) : capacity_(capacity) {
  TERIDS_CHECK(capacity > 0);
}

std::shared_ptr<WindowTuple> SlidingWindow::Push(
    std::shared_ptr<WindowTuple> t) {
  TERIDS_CHECK(t != nullptr);
  tuples_.push_back(std::move(t));
  if (static_cast<int>(tuples_.size()) > capacity_) {
    std::shared_ptr<WindowTuple> evicted = std::move(tuples_.front());
    tuples_.pop_front();
    return evicted;
  }
  return nullptr;
}

}  // namespace terids
