#include "tuple/record.h"

#include <algorithm>

#include "util/status.h"

namespace terids {

bool Record::IsComplete() const {
  for (const AttrValue& v : values) {
    if (v.missing) {
      return false;
    }
  }
  return true;
}

uint32_t Record::MissingMask() const {
  TERIDS_CHECK(values.size() <= 32);
  uint32_t mask = 0;
  for (size_t j = 0; j < values.size(); ++j) {
    if (values[j].missing) {
      mask |= (1u << j);
    }
  }
  return mask;
}

std::vector<int> Record::MissingAttributes() const {
  std::vector<int> out;
  for (size_t j = 0; j < values.size(); ++j) {
    if (values[j].missing) {
      out.push_back(static_cast<int>(j));
    }
  }
  return out;
}

size_t Record::TotalTokenCount() const {
  size_t total = 0;
  for (const AttrValue& v : values) {
    if (!v.missing) {
      total += v.tokens.size();
    }
  }
  return total;
}

void UnionRecordTokensInto(const Record& r, std::vector<Token>* out) {
  out->clear();
  for (const AttrValue& v : r.values) {
    if (!v.missing) {
      out->insert(out->end(), v.tokens.begin(), v.tokens.end());
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace terids
