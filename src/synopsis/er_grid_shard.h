#ifndef TERIDS_SYNOPSIS_ER_GRID_SHARD_H_
#define TERIDS_SYNOPSIS_ER_GRID_SHARD_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stream/sliding_window.h"
#include "util/interval.h"

namespace terids {

/// Key of one lazily materialized ER-grid cell (a 64-bit polynomial hash of
/// the cell's integer coordinates). Cell-key computation and shard routing
/// live in ShardedErGrid; shards only store and probe the cells routed to
/// them.
using GridCellKey = uint64_t;

/// One partition of the ER-grid synopsis G_ER (Section 5.2, DESIGN.md §7):
/// the hash-map-of-cells logic of the original single-threaded grid, owning
/// the subset of cells whose keys hash to this shard. Cells aggregate the
/// keyword Boolean vector and per-dimension coordinate bounds of their
/// members, exactly as before the split.
///
/// A shard is single-writer: ShardedErGrid routes every Insert/Remove on
/// the maintaining thread and fans Probe out over disjoint shards, so the
/// shard itself needs no synchronization.
///
/// Locking model (DESIGN.md §12): deliberately mutex-free. Mutual exclusion
/// is structural — during a parallel Maintain fan-out each shard is touched
/// by exactly one task, and Probe is const writing only into the caller's
/// per-shard ProbeOutput slot — so there is no capability to annotate; the
/// fan-out barrier (ThreadPool / Scheduler ParallelFor, both ranked
/// mutexes) supplies the happens-before edges.
class ErGridShard {
 public:
  /// `dims` = number of attributes d (needed for the per-cell bound
  /// aggregates).
  explicit ErGridShard(int dims);

  /// Adds `wt` to every cell in `keys` (the coordinator pre-routes only
  /// this shard's keys, sorted and deduplicated).
  void Insert(const WindowTuple* wt, std::vector<GridCellKey> keys);
  /// Removes an expired tuple from every cell it occupies here. Returns
  /// false if the tuple was never routed to this shard.
  bool Remove(const WindowTuple* wt);

  size_t num_tuples() const { return tuple_cells_.size(); }
  size_t num_cells() const { return cells_.size(); }

  /// Per-member probe verdict: 0 = topic-pruned, 1 = sim-pruned,
  /// 2 = candidate. A tuple spanning several cells takes the max verdict
  /// over its cells; the coordinator continues that max-merge across
  /// shards, so the merged verdict is independent of the shard count.
  struct ProbeOutput {
    std::unordered_map<int64_t, std::pair<const WindowTuple*, int>> verdicts;
    uint64_t cells_visited = 0;
    uint64_t cells_pruned = 0;
  };

  /// Scans this shard's cells with cell-level topic and distance-bound
  /// pruning. `q_bounds` are the probe's per-dimension coordinate intervals
  /// (main pivot), `dist_budget` = d - gamma; both are computed once by the
  /// coordinator and shared across the fan-out. Writes only into `out`, so
  /// concurrent Probe calls on distinct shards never touch shared state.
  void Probe(const WindowTuple& probe, const std::vector<Interval>& q_bounds,
             double dist_budget, bool topic_constrained,
             ProbeOutput* out) const;

 private:
  struct Cell {
    std::vector<const WindowTuple*> members;
    uint64_t topic_mask = 0;
    bool any_topic = false;
    std::vector<Interval> bounds;  // per-dim cover of member intervals
  };

  void AddMember(Cell* cell, const WindowTuple* wt) const;
  void RebuildCell(Cell* cell) const;

  int dims_;
  std::unordered_map<GridCellKey, Cell> cells_;
  // rid -> the cell keys the tuple occupies in this shard (for removal).
  std::unordered_map<int64_t, std::vector<GridCellKey>> tuple_cells_;
};

}  // namespace terids

#endif  // TERIDS_SYNOPSIS_ER_GRID_SHARD_H_
