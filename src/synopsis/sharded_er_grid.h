#ifndef TERIDS_SYNOPSIS_SHARDED_ER_GRID_H_
#define TERIDS_SYNOPSIS_SHARDED_ER_GRID_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "stream/sliding_window.h"
#include "synopsis/er_grid_shard.h"
#include "util/interval.h"

namespace terids {

/// The ER-grid synopsis G_ER (Section 5.2), partitioned by cell-key hash
/// across `num_shards` ErGridShards (DESIGN.md §7).
///
/// The coordinator owns cell geometry: it converts a tuple's imputed
/// instances to cell keys once, routes each key to shard `key mod
/// num_shards`, and tracks which shards hold which tuple so removals are
/// targeted. `Candidates` fans the probe out over all shards — on an
/// internal ThreadPool when `num_shards > 1`, or as kCandidate work items
/// on the shared Scheduler when one was passed — and merges the per-shard
/// verdicts deterministically: per-member verdicts are max-merged (the same
/// rule a single grid applies across a tuple's cells), prune counters are
/// summed, and the surviving candidates are emitted in ascending-rid order.
/// The merged result is therefore bit-identical for every shard count and
/// independent of fan-out scheduling.
///
/// With `num_shards == 1` there is no pool, no fan-out, and no extra merge
/// pass — the single-shard configuration is the original ErGrid.
///
/// Locking model (DESIGN.md §12): the coordinator state (`tuple_shards_`,
/// `multi_shard_tuples_`, the shard array) is owned by the single
/// maintaining thread — the ingest stage in the async pipeline — and is
/// never touched from inside a fan-out task; fan-out tasks partition work
/// per shard and write only into per-task slots. The only mutexes on this
/// path are inside the executor (lock_rank::kThreadPool / kScheduler),
/// whose ParallelFor barrier publishes every shard mutation before the
/// next phase reads it.
class ShardedErGrid {
 public:
  /// `dims` = number of attributes d; `cell_width` = side length of a cell
  /// in the converted space; `num_shards` >= 1 partitions. With `scheduler`
  /// null and `num_shards` > 1 the grid owns a private fan-out ThreadPool
  /// (legacy mode); with a scheduler, probe and maintain fan-outs dispatch
  /// as kCandidate / kMaintain work items on the shared workers instead
  /// (not owned, must outlive the grid; DESIGN.md §10).
  ShardedErGrid(int dims, double cell_width, int num_shards,
                Scheduler* scheduler = nullptr);

  void Insert(const WindowTuple* wt);
  /// Removes an expired tuple. Returns false if it was never inserted.
  bool Remove(const WindowTuple* wt);

  /// One arrival's window maintenance in a single call: inserts `insert`
  /// and removes `expired` (either may be null). With `parallel`, the
  /// per-shard work — this shard's insert keys plus its removal of the
  /// expired tuple — fans out across the involved shards on the probe
  /// ThreadPool, or as kMaintain items on the shared Scheduler (DESIGN.md
  /// §9-§10); shards share no state and each task
  /// touches exactly one shard, so the grid contents are identical to the
  /// serial Insert-then-Remove sequence for every setting. Returns false
  /// iff `expired` was non-null but never inserted.
  bool Maintain(const WindowTuple* insert, const WindowTuple* expired,
                bool parallel);

  size_t num_tuples() const { return tuple_shards_.size(); }
  size_t num_cells() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ErGridShard& shard(int i) const { return *shards_[i]; }

  /// Candidate retrieval for a probe tuple, with cell-level topic and
  /// distance-bound pruning.
  struct CandidateResult {
    /// Surviving candidates in ascending-rid order (the canonical merge
    /// order; invariant under the shard count).
    std::vector<const WindowTuple*> candidates;
    /// Tuples (from other streams) pruned because neither they nor the
    /// probe can contain a query keyword (Theorem 4.1 at grid level).
    uint64_t topic_pruned = 0;
    /// Tuples pruned by the cell-level pivot distance bound (Lemma 4.2 at
    /// grid level).
    uint64_t sim_pruned = 0;
    uint64_t cells_visited = 0;
    uint64_t cells_pruned = 0;
  };

  /// `topic_constrained` is false for an unconstrained query (K = all), in
  /// which case topic pruning is skipped. Tuples from the probe's own
  /// stream are ignored entirely (TER-iDS pairs span two streams).
  CandidateResult Candidates(const WindowTuple& probe, double gamma,
                             bool topic_constrained) const;

 private:
  GridCellKey KeyOf(const std::vector<int32_t>& coords) const;
  std::vector<GridCellKey> CellsOf(const ImputedTuple& tuple) const;
  int ShardOf(GridCellKey key) const {
    return static_cast<int>(key % shards_.size());
  }

  int dims_;
  double cell_width_;
  std::vector<std::unique_ptr<ErGridShard>> shards_;
  // rid -> the shard ids holding the tuple (for targeted removal and a
  // distinct-tuple count).
  std::unordered_map<int64_t, std::vector<int>> tuple_shards_;
  // Live tuples currently held by more than one shard. While zero (the
  // common case: one imputed instance -> one cell -> one shard), the merge
  // skips the cross-shard verdict map entirely — every member's max-merge
  // already happened inside its single shard.
  size_t multi_shard_tuples_ = 0;
  // Probe fan-out pool; null when single-sharded or when a shared scheduler
  // was supplied. Mutable because Candidates is logically const but
  // dispatching a job mutates pool state.
  mutable std::unique_ptr<ThreadPool> pool_;
  // Shared scheduler (unified mode); fan-outs go through it when set.
  Scheduler* scheduler_ = nullptr;
};

}  // namespace terids

#endif  // TERIDS_SYNOPSIS_SHARDED_ER_GRID_H_
