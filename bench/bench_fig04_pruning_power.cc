// Figure 4: pruning power of the four strategies over the five datasets.

#include <cstdio>

#include "bench_common.h"
#include "datagen/profiles.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  JsonReporter reporter("Figure 4");
  PrintHeader("Figure 4", "pruning power evaluation over real data sets",
              base);
  std::printf("%-10s %8s %8s %8s %8s %8s %12s\n", "dataset", "topic%",
              "simUB%", "probUB%", "inst%", "total%", "pairs");
  for (const std::string& name : AllDatasets()) {
    Experiment experiment(ProfileByName(name), BaseParams(name));
    PipelineRun run = experiment.Run(PipelineKind::kTerIds);
    const PruneStats& s = run.stats;
    std::printf("%-10s %8.2f %8.2f %8.2f %8.2f %8.2f %12llu\n", name.c_str(),
                100.0 * s.PowerOf(s.topic_pruned),
                100.0 * s.PowerOf(s.sim_ub_pruned),
                100.0 * s.PowerOf(s.prob_ub_pruned),
                100.0 * s.PowerOf(s.instance_pruned),
                100.0 * s.TotalPower(),
                static_cast<unsigned long long>(s.total_pairs));
    reporter.AddRow()
        .Str("dataset", name)
        .Num("topic_pct", 100.0 * s.PowerOf(s.topic_pruned))
        .Num("sim_ub_pct", 100.0 * s.PowerOf(s.sim_ub_pruned))
        .Num("prob_ub_pct", 100.0 * s.PowerOf(s.prob_ub_pruned))
        .Num("instance_pct", 100.0 * s.PowerOf(s.instance_pruned))
        .Num("total_pct", 100.0 * s.TotalPower())
        .Num("pairs", static_cast<double>(s.total_pairs));
  }
  std::printf(
      "\npaper shape: topic keyword pruning dominates (77.51-86.51%%),\n"
      "then similarity UB (5.59-14.23%%), probability UB (2.15-3.64%%),\n"
      "instance-pair-level (1.54-4.35%%); total 98.32-99.43%%.\n");
  return 0;
}
