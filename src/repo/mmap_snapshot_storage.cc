#include "repo/mmap_snapshot_storage.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "repo/snapshot_format.h"

#if defined(__unix__) || defined(__APPLE__)
#define TERIDS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace terids {

// ---------------------------------------------------------------------------
// Mapping
// ---------------------------------------------------------------------------

Status MmapSnapshotStorage::MapFile(const std::string& path) {
#if TERIDS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("cannot stat snapshot: " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    return Status::InvalidArgument("snapshot is empty: " + path);
  }
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive; the fd is not needed.
  if (base == MAP_FAILED) {
    return Status::Internal("mmap failed for snapshot: " + path);
  }
  map_base_ = base;
  map_len_ = len;
  data_ = static_cast<const char*>(base);
  size_ = len;
  return Status::Ok();
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  const std::streamsize len = in.tellg();
  if (len <= 0) {
    return Status::InvalidArgument("snapshot is empty: " + path);
  }
  heap_.resize(static_cast<size_t>(len));
  in.seekg(0);
  in.read(heap_.data(), len);
  if (!in) {
    return Status::Internal("short read from snapshot: " + path);
  }
  data_ = heap_.data();
  size_ = heap_.size();
  return Status::Ok();
#endif
}

void MmapSnapshotStorage::Unmap() {
#if TERIDS_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
    map_base_ = nullptr;
    map_len_ = 0;
  }
#endif
  data_ = nullptr;
  size_ = 0;
}

MmapSnapshotStorage::~MmapSnapshotStorage() { Unmap(); }

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

Status MmapSnapshotStorage::Parse(int num_attributes, const TokenDict* dict) {
  if (size_ < sizeof(snapshot::Header)) {
    return Status::InvalidArgument("snapshot smaller than its header");
  }
  snapshot::Header header;
  std::memcpy(&header, data_, sizeof(header));
  if (std::memcmp(header.magic, snapshot::kMagic, sizeof(header.magic)) != 0) {
    return Status::InvalidArgument("snapshot magic mismatch (not a snapshot)");
  }
  if (header.version != snapshot::kVersion) {
    return Status::InvalidArgument(
        "snapshot version " + std::to_string(header.version) +
        " unsupported (expected " + std::to_string(snapshot::kVersion) + ")");
  }
  if (header.num_attributes != static_cast<uint32_t>(num_attributes)) {
    return Status::FailedPrecondition(
        "snapshot has " + std::to_string(header.num_attributes) +
        " attributes; schema has " + std::to_string(num_attributes));
  }
  if (header.dict_tokens > dict->size()) {
    return Status::FailedPrecondition(
        "snapshot references " + std::to_string(header.dict_tokens) +
        " interned tokens; dictionary holds " + std::to_string(dict->size()));
  }
  const char* payload = data_ + sizeof(header);
  const size_t payload_len = size_ - sizeof(header);
  if (header.payload_bytes != payload_len) {
    return Status::InvalidArgument("snapshot payload truncated");
  }
  if (snapshot::Checksum(payload, payload_len) != header.payload_checksum) {
    return Status::InvalidArgument("snapshot payload checksum mismatch");
  }

  d_ = num_attributes;
  has_pivots_ = header.has_pivots != 0;
  base_samples_ = header.num_samples;

  snapshot::Cursor cur(payload, payload_len);
  auto truncated = [] {
    return Status::InvalidArgument("snapshot payload ran short while parsing");
  };

  // ---- Domains ---------------------------------------------------------
  base_.resize(static_cast<size_t>(d_));
  for (int x = 0; x < d_; ++x) {
    BaseDomain& dom = base_[x];
    uint64_t dom_size = 0;
    uint64_t total_tokens = 0;
    if (!cur.ReadU64(&dom_size)) return truncated();
    if (!cur.ReadU64(&total_tokens)) return truncated();
    const Token* token_ids = cur.Array<Token>(total_tokens);
    const uint64_t* token_offsets = cur.Array<uint64_t>(dom_size + 1);
    uint64_t text_bytes = 0;
    if (!cur.ReadU64(&text_bytes)) return truncated();
    const char* text_blob = cur.Array<char>(text_bytes);
    const uint64_t* text_offsets = cur.Array<uint64_t>(dom_size + 1);
    const int32_t* freqs = cur.Array<int32_t>(dom_size);
    if (!cur.ok()) return truncated();

    dom.size = dom_size;
    dom.freqs = freqs;
    dom.tokens.reserve(dom_size);
    dom.texts.reserve(dom_size);
    for (uint64_t v = 0; v < dom_size; ++v) {
      if (token_offsets[v] > token_offsets[v + 1] ||
          token_offsets[v + 1] > total_tokens ||
          text_offsets[v] > text_offsets[v + 1] ||
          text_offsets[v + 1] > text_bytes) {
        return Status::InvalidArgument("snapshot domain offsets corrupt");
      }
      std::vector<Token> ts(token_ids + token_offsets[v],
                            token_ids + token_offsets[v + 1]);
      for (Token t : ts) {
        if (t >= header.dict_tokens) {
          return Status::FailedPrecondition(
              "snapshot token id outside the dictionary it was built with");
        }
      }
      // The stored runs are already sorted + deduplicated; FromTokens
      // re-normalizes, which is a no-op on well-formed input and heals a
      // hand-edited file instead of breaking merge invariants downstream.
      dom.tokens.push_back(TokenSet::FromTokens(std::move(ts)));
      dom.texts.emplace_back(text_blob + text_offsets[v],
                             text_blob + text_offsets[v + 1]);
      dom.by_hash.emplace(AttributeDomain::HashTokens(dom.tokens.back()),
                          static_cast<ValueId>(v));
    }
  }

  // ---- Pivot geometry --------------------------------------------------
  if (has_pivots_) {
    pivots_.resize(static_cast<size_t>(d_));
    for (int x = 0; x < d_; ++x) {
      uint64_t np = 0;
      if (!cur.ReadU64(&np)) return truncated();
      if (np == 0) {
        return Status::InvalidArgument("snapshot attribute has zero pivots");
      }
      for (uint64_t a = 0; a < np; ++a) {
        uint64_t ntokens = 0;
        if (!cur.ReadU64(&ntokens)) return truncated();
        const Token* ptokens = cur.Array<Token>(ntokens);
        if (!cur.ok()) return truncated();
        pivots_[x].pivots.push_back(TokenSet::FromTokens(
            std::vector<Token>(ptokens, ptokens + ntokens)));
      }
    }
    for (int x = 0; x < d_; ++x) {
      base_[x].dists.resize(pivots_[x].pivots.size());
      for (size_t a = 0; a < pivots_[x].pivots.size(); ++a) {
        base_[x].dists[a] = cur.Array<double>(base_[x].size);
      }
    }
    for (int x = 0; x < d_; ++x) {
      base_[x].coord_keys = cur.Array<double>(base_[x].size);
      base_[x].coord_vids = cur.Array<uint32_t>(base_[x].size);
    }
    if (!cur.ok()) return truncated();
  }

  // ---- Samples ---------------------------------------------------------
  const size_t n = base_samples_;
  const int64_t* rids = cur.Array<int64_t>(n);
  const int32_t* streams = cur.Array<int32_t>(n);
  const int64_t* timestamps = cur.Array<int64_t>(n);
  base_sample_vids_ = cur.Array<uint32_t>(n * static_cast<size_t>(d_));
  uint64_t sample_text_bytes = 0;
  if (!cur.ok() || !cur.ReadU64(&sample_text_bytes)) return truncated();
  const char* sample_texts = cur.Array<char>(sample_text_bytes);
  const uint64_t* sample_text_offsets =
      cur.Array<uint64_t>(n * static_cast<size_t>(d_) + 1);
  if (!cur.ok()) return truncated();

  base_records_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Record r;
    r.rid = rids[i];
    r.stream_id = streams[i];
    r.timestamp = timestamps[i];
    r.values.resize(static_cast<size_t>(d_));
    for (int x = 0; x < d_; ++x) {
      const size_t cell = i * static_cast<size_t>(d_) + x;
      const ValueId vid = base_sample_vids_[cell];
      if (vid >= base_[x].size ||
          sample_text_offsets[cell] > sample_text_offsets[cell + 1] ||
          sample_text_offsets[cell + 1] > sample_text_bytes) {
        return Status::InvalidArgument("snapshot sample table corrupt");
      }
      AttrValue& v = r.values[x];
      v.missing = false;
      v.tokens = base_[x].tokens[vid];
      v.text.assign(sample_texts + sample_text_offsets[cell],
                    sample_texts + sample_text_offsets[cell + 1]);
    }
    base_records_.push_back(std::move(r));
  }

  // ---- Overlay scaffolding --------------------------------------------
  overlay_.resize(static_cast<size_t>(d_));
  for (int x = 0; x < d_; ++x) {
    overlay_[x].dists.resize(has_pivots_ ? pivots_[x].pivots.size() : 0);
  }
  return Status::Ok();
}

Result<std::unique_ptr<MmapSnapshotStorage>> MmapSnapshotStorage::Open(
    int num_attributes, const TokenDict* dict, const std::string& path) {
  TERIDS_CHECK(dict != nullptr);
  TERIDS_CHECK(num_attributes >= 1);
  std::unique_ptr<MmapSnapshotStorage> storage(new MmapSnapshotStorage());
  Status status = storage->MapFile(path);
  if (!status.ok()) {
    return status;
  }
  status = storage->Parse(num_attributes, dict);
  if (!status.ok()) {
    return status;
  }
  return storage;
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

size_t MmapSnapshotStorage::domain_size(int attr) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  return base_[attr].size + overlay_[attr].extra.size();
}

const TokenSet& MmapSnapshotStorage::value_tokens(int attr, ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  if (id < dom.size) {
    return dom.tokens[id];
  }
  return overlay_[attr].extra.tokens(id - static_cast<ValueId>(dom.size));
}

const std::string& MmapSnapshotStorage::value_text(int attr,
                                                   ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  if (id < dom.size) {
    return dom.texts[id];
  }
  return overlay_[attr].extra.text(id - static_cast<ValueId>(dom.size));
}

int MmapSnapshotStorage::value_frequency(int attr, ValueId id) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  const DomainOverlay& over = overlay_[attr];
  if (id < dom.size) {
    const auto it = over.base_freq_delta.find(id);
    return dom.freqs[id] + (it == over.base_freq_delta.end() ? 0 : it->second);
  }
  return over.extra.frequency(id - static_cast<ValueId>(dom.size));
}

ValueId MmapSnapshotStorage::FindValue(int attr, const TokenSet& tokens) const {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  const uint64_t h = AttributeDomain::HashTokens(tokens);
  auto [begin, end] = dom.by_hash.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (dom.tokens[it->second] == tokens) {
      return it->second;
    }
  }
  const ValueId local = overlay_[attr].extra.Find(tokens);
  if (local == kInvalidValueId) {
    return kInvalidValueId;
  }
  return static_cast<ValueId>(dom.size) + local;
}

size_t MmapSnapshotStorage::num_samples() const {
  return base_samples_ + extra_records_.size();
}

const Record& MmapSnapshotStorage::sample(size_t i) const {
  TERIDS_CHECK(i < num_samples());
  if (i < base_samples_) {
    return base_records_[i];
  }
  return extra_records_[i - base_samples_];
}

ValueId MmapSnapshotStorage::sample_value_id(size_t i, int attr) const {
  TERIDS_CHECK(i < num_samples());
  TERIDS_CHECK(attr >= 0 && attr < d_);
  if (i < base_samples_) {
    return base_sample_vids_[i * static_cast<size_t>(d_) + attr];
  }
  return extra_sample_vids_[i - base_samples_][attr];
}

int MmapSnapshotStorage::num_pivots(int attr) const {
  TERIDS_CHECK(has_pivots_);
  TERIDS_CHECK(attr >= 0 && attr < d_);
  return static_cast<int>(pivots_[attr].pivots.size());
}

const TokenSet& MmapSnapshotStorage::pivot_tokens(int attr,
                                                  int pivot_idx) const {
  TERIDS_CHECK(has_pivots_);
  TERIDS_CHECK(attr >= 0 && attr < d_);
  TERIDS_CHECK(pivot_idx >= 0 && pivot_idx < num_pivots(attr));
  return pivots_[attr].pivots[pivot_idx];
}

double MmapSnapshotStorage::pivot_distance(int attr, int pivot_idx,
                                           ValueId vid) const {
  TERIDS_CHECK(has_pivots_);
  TERIDS_CHECK(attr >= 0 && attr < d_);
  TERIDS_CHECK(pivot_idx >= 0 && pivot_idx < num_pivots(attr));
  const BaseDomain& dom = base_[attr];
  if (vid < dom.size) {
    return dom.dists[pivot_idx][vid];
  }
  const ValueId local = vid - static_cast<ValueId>(dom.size);
  const auto& dists = overlay_[attr].dists[pivot_idx];
  TERIDS_CHECK(local < dists.size());
  return dists[local];
}

void MmapSnapshotStorage::AppendValuesInCoordRange(
    int attr, const Interval& interval, std::vector<ValueId>* out) const {
  TERIDS_CHECK(has_pivots_);
  TERIDS_CHECK(attr >= 0 && attr < d_);
  if (interval.empty()) {
    return;
  }
  const BaseDomain& dom = base_[attr];
  const auto& over = overlay_[attr].sorted_coords;
  // Merge the immutable base column with the overlay's sorted list in
  // ascending (coordinate, ValueId) order — the exact sequence the
  // in-memory backend's single maintained list yields.
  size_t bi = static_cast<size_t>(
      std::lower_bound(dom.coord_keys, dom.coord_keys + dom.size,
                       interval.lo) -
      dom.coord_keys);
  auto oi = std::lower_bound(
      over.begin(), over.end(),
      std::make_pair(interval.lo, static_cast<ValueId>(0)));
  while (true) {
    const bool base_ok = bi < dom.size && dom.coord_keys[bi] <= interval.hi;
    const bool over_ok = oi != over.end() && oi->first <= interval.hi;
    if (!base_ok && !over_ok) {
      break;
    }
    if (base_ok &&
        (!over_ok ||
         std::make_pair(dom.coord_keys[bi],
                        static_cast<ValueId>(dom.coord_vids[bi])) < *oi)) {
      out->push_back(dom.coord_vids[bi]);
      ++bi;
    } else {
      out->push_back(oi->second);
      ++oi;
    }
  }
}

// ---------------------------------------------------------------------------
// Write path: the delta overlay
// ---------------------------------------------------------------------------

ValueId MmapSnapshotStorage::RegisterValue(int attr, const TokenSet& tokens,
                                           const std::string& text) {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  // Base values are immutable and deduplicated; only a genuinely new token
  // set lands in the overlay.
  {
    auto [begin, end] =
        dom.by_hash.equal_range(AttributeDomain::HashTokens(tokens));
    for (auto it = begin; it != end; ++it) {
      if (dom.tokens[it->second] == tokens) {
        return it->second;
      }
    }
  }
  DomainOverlay& over = overlay_[attr];
  const size_t before = over.extra.size();
  const ValueId local = over.extra.FindOrAdd(tokens, text);
  const ValueId global = static_cast<ValueId>(dom.size) + local;
  if (over.extra.size() != before && has_pivots_) {
    const size_t np = pivots_[attr].pivots.size();
    for (size_t a = 0; a < np; ++a) {
      over.dists[a].push_back(
          JaccardDistance(tokens, pivots_[attr].pivots[a]));
    }
    const double coord = over.dists[0][local];
    auto& coords = over.sorted_coords;
    coords.insert(std::upper_bound(coords.begin(), coords.end(),
                                   std::make_pair(coord, global)),
                  std::make_pair(coord, global));
  }
  return global;
}

void MmapSnapshotStorage::BumpFrequency(int attr, ValueId id) {
  TERIDS_CHECK(attr >= 0 && attr < d_);
  const BaseDomain& dom = base_[attr];
  DomainOverlay& over = overlay_[attr];
  if (id < dom.size) {
    ++over.base_freq_delta[id];
    return;
  }
  over.extra.BumpFrequency(id - static_cast<ValueId>(dom.size));
}

void MmapSnapshotStorage::AppendSample(const Record& record,
                                       std::vector<ValueId> vids) {
  TERIDS_CHECK(static_cast<int>(vids.size()) == d_);
  extra_records_.push_back(record);
  extra_sample_vids_.push_back(std::move(vids));
}

void MmapSnapshotStorage::AttachPivots(std::vector<AttributePivots> pivots) {
  (void)pivots;
  TERIDS_CHECK(false &&
               "MmapSnapshotStorage is read-only geometry: pivots are baked "
               "into the snapshot at write time");
}

}  // namespace terids
