#ifndef TERIDS_CORE_CONFIG_H_
#define TERIDS_CORE_CONFIG_H_

#include <string>
#include <vector>

#include "repo/repo_backend.h"
#include "stream/overload.h"

namespace terids {

/// Identifies one of the evaluated processing pipelines (Section 6.1).
enum class PipelineKind {
  kTerIds,        // Full approach: CDD-index + DR-index + ER-grid join.
  kIjGer,         // Indexes without join: CDD-index + linear samples + grid.
  kCddEr,         // CDD imputation without indexes + linear ER.
  kDdEr,          // DD imputation + linear ER.
  kEditingEr,     // Editing-rule imputation + linear ER ("er+ER").
  kConstraintEr,  // Constraint-based stream imputation + linear ER.
};

const char* PipelineKindName(PipelineKind kind);

/// Runtime configuration of a TER-iDS query (the problem statement's
/// parameters plus implementation knobs).
struct EngineConfig {
  /// Query topic keywords K; empty = unconstrained (all topics).
  std::vector<std::string> keywords;
  /// Similarity threshold gamma in (0, d). The evaluation uses the ratio
  /// rho = gamma / d; callers set gamma = rho * d.
  double gamma = 2.0;
  /// Probabilistic threshold alpha in [0, 1).
  double alpha = 0.5;
  /// Sliding-window size w per stream (count-based).
  int window_size = 1000;
  /// Cap on materialized instances per imputed tuple (Definition 4 allows
  /// the retained mass to be < 1).
  int max_instances = 16;
  /// Cap on imputation candidates per missing attribute.
  int max_candidates_per_attr = 8;
  /// ER-grid cell side length in the converted space [0,1].
  double cell_width = 0.2;
  /// Micro-batch size callers should feed ProcessBatch (StreamDriver::
  /// NextBatch). 1 = the classic one-arrival-at-a-time operator.
  int batch_size = 1;
  /// Worker count for the post-pruning refinement cascade. 1 = inline
  /// sequential refinement. The defaults (1/1) keep pipeline output and
  /// execution bit-for-bit identical to the unbatched operator.
  int refine_threads = 1;
  /// Number of ER-grid shards (cells partitioned by cell-key hash;
  /// Candidates fans out over shards and merges deterministically). 1 = the
  /// original single grid with no fan-out pool. Every setting produces
  /// identical matches, MatchSet, and PruneStats.
  int grid_shards = 1;
  /// Bound on ingested micro-batches buffered ahead of refinement by the
  /// async ingest path of ProcessStream: 0 = fully synchronous (ingest and
  /// refinement alternate on the calling thread, bit-identical to the
  /// pre-async operator); >= 1 runs ingest on its own thread so
  /// imputation/candidate generation of batch k+1 overlaps refinement of
  /// batch k, at most this many batches ahead.
  int ingest_queue_depth = 0;
  /// Enables the signature-bounded Jaccard kernel inside refinement: the
  /// per-(instance, attribute) token signatures precomputed in each
  /// tuple's TokenArena give an O(words) popcount upper bound that rejects
  /// instance pairs before any token merge runs (DESIGN.md §9, §11). The
  /// bound only skips merges whose sim > gamma verdict is already decided,
  /// so emitted matches, MatchSet, and PruneStats are bit-identical with
  /// the filter on or off (the equivalence sweep enforces it).
  bool signature_filter = true;
  /// Width in bits of the per-(instance, attribute) token signatures: 64,
  /// 128, or 256 (DESIGN.md §11). Wider signatures halve/quarter the hash
  /// collision rate, tightening the popcount upper bound on long token
  /// sets (fewer saturated probes, more merge-free rejects) at the price
  /// of 2x/4x signature memory and popcount work per probe — the batch
  /// sweep vectorizes the extra words (AVX2/NEON when available). Any
  /// width changes merge counts only: matches, MatchSet, and PruneStats'
  /// outcome counters are bit-identical across widths (equivalence sweep
  /// enforced); only the sig_* observability counters may differ.
  int sig_width = 64;
  /// MaintainPhase fan-out: 1 = grid insert/remove runs serially on the
  /// maintaining thread (seed behavior); > 1 = the per-shard insert/remove
  /// work of one arrival is fanned out across the ER-grid's shards on its
  /// ThreadPool (effective width is the number of shards the arrival
  /// touches, at most grid_shards). Shards share no state, so every
  /// setting produces identical grid contents and results.
  int maintain_shards = 1;
  /// Worker count of the unified phase-tagged Scheduler (DESIGN.md §10).
  /// 0 = legacy per-subsystem execution: the refinement ThreadPool, the
  /// ER-grid's probe/maintain pool, and the dedicated SPSC ingest thread,
  /// exactly as configured by the knobs above (seed behavior, the
  /// equivalence oracle). >= 1 = all four phases (ingest, candidate,
  /// refine, maintain) dispatch onto one shared pool of this many workers;
  /// the phase knobs above still gate *whether* each phase fans out, this
  /// knob sets the shared worker budget. Every setting produces identical
  /// matches, MatchSet, and PruneStats (the equivalence sweep enforces it).
  int sched_threads = 0;
  /// Enables the batch-scoped CDD-selection memoization probe
  /// (CostBreakdown::cdd_memo_*). Off by default: the PR-3 measurement
  /// found a near-zero hit rate on every profile, so the hot loop no
  /// longer pays for the signature bookkeeping unless explicitly asked to
  /// re-measure (see ROADMAP).
  bool cdd_memo_probe = false;
  /// Physical storage backend behind the repository R the engines read
  /// (DESIGN.md §8). Engines never construct repositories themselves —
  /// Experiment::BuildRepository consults this (building and mmapping a
  /// snapshot for kMmapSnapshot) — but the selector rides in the config so
  /// runs record which backend produced them and bench artifacts stay
  /// distinguishable. Every backend yields bit-identical results.
  RepoBackend repo_backend = RepoBackend::kInMemory;
  /// How the mmap backend materializes a v2 snapshot (DESIGN.md §8).
  /// kLazy (default): Open validates only the header + section TOC, and
  /// each section decodes under a once_flag on first touch — near-instant
  /// cold open, zero-copy token/text views. kEager: every section decodes
  /// at open, the v1-equivalent oracle. Ignored by the in-memory backend
  /// and for v1 snapshot files (always eager). Both modes yield
  /// bit-identical results (the equivalence sweep enforces it).
  SnapshotDecode snapshot_decode = SnapshotDecode::kLazy;
  /// What the async ingest path does when refinement falls behind the
  /// arrival stream (DESIGN.md §13). kBlock (default, seed behavior, the
  /// equivalence oracle): backpressure — the producer blocks until a queue
  /// slot frees; every arrival is fully processed. kShedNewest: drop the
  /// newest batch before ingestion when the pressure signal fires.
  /// kShedOldest: always ingest, but strip refinement from the
  /// longest-waiting queued batch when the queue is full. kDegrade: admit
  /// everything (the queue bound is waived under pressure) and refine
  /// pressured batches with signature-bound-only verdicts, recording
  /// undecided pairs as deferred. Only meaningful with
  /// ingest_queue_depth >= 1; the synchronous operator never sheds. block
  /// is bit-identical to the oracle; the other policies are bit-identical
  /// too whenever the pressure signal never fires (the equivalence sweep
  /// enforces both).
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
};

}  // namespace terids

#endif  // TERIDS_CORE_CONFIG_H_
