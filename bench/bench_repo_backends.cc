// Repository storage backends: build cost and read-path throughput of the
// in-memory oracle vs the mmap snapshot backend (DESIGN.md §8). Not a paper
// figure — this tracks the ROADMAP multi-backend-repository scaling item.
//
// Section 1 measures construction: the in-memory build (AddSample loop +
// AttachPivots), the snapshot serialization (write cost + file size), and
// the mmap open (validate + materialize). Section 2 replays identical
// random read workloads — point lookups (pivot_distance / value_tokens /
// FindValue) and sorted-coordinate range scans — against both backends,
// with the in-memory results as the correctness oracle. Section 3 runs the
// full TER-iDS pipeline end to end per backend. Expected shape: the mmap
// backend pays a small indirection/merge overhead on reads in exchange for
// a build-once file whose geometry tables live in the page cache instead
// of the heap.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/profiles.h"
#include "repo/repository.h"
#include "repo/snapshot_writer.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace terids;
using namespace terids::bench;

struct ReadWorkload {
  // (attr, vid) point-lookup probes and coordinate bands, shared verbatim
  // across backends.
  std::vector<std::pair<int, ValueId>> points;
  std::vector<std::pair<int, Interval>> bands;
};

ReadWorkload MakeWorkload(const Repository& repo, int num_points,
                          int num_bands) {
  ReadWorkload w;
  Rng rng(42);
  const int d = repo.num_attributes();
  for (int i = 0; i < num_points; ++i) {
    const int x = static_cast<int>(rng.NextBounded(d));
    if (repo.domain_size(x) == 0) continue;
    w.points.emplace_back(
        x, static_cast<ValueId>(rng.NextBounded(repo.domain_size(x))));
  }
  for (int i = 0; i < num_bands; ++i) {
    const int x = static_cast<int>(rng.NextBounded(d));
    const double center = rng.NextDouble();
    const double radius = 0.02 + 0.08 * rng.NextDouble();
    w.bands.emplace_back(x,
                         Interval::Of(center - radius, center + radius));
  }
  return w;
}

/// One backend's read-path numbers; `checksum` doubles as the oracle.
struct ReadStats {
  double lookups_per_sec = 0.0;
  double scans_per_sec = 0.0;
  double scanned_values = 0.0;
  uint64_t checksum = 0;
};

ReadStats MeasureReads(const Repository& repo, const ReadWorkload& w,
                       int rounds) {
  ReadStats stats;
  uint64_t sum = 0;
  Stopwatch lookup_watch;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& [x, vid] : w.points) {
      for (int a = 0; a < repo.num_pivots(x); ++a) {
        sum += static_cast<uint64_t>(1e6 * repo.pivot_distance(x, a, vid));
      }
      sum += repo.value_tokens(x, vid).size();
      sum += repo.FindValue(x, repo.value_tokens(x, vid));
      sum += static_cast<uint64_t>(repo.value_frequency(x, vid));
    }
  }
  const double lookup_seconds = lookup_watch.ElapsedSeconds();
  const double total_lookups =
      static_cast<double>(w.points.size()) * rounds;
  stats.lookups_per_sec =
      lookup_seconds > 0 ? total_lookups / lookup_seconds : 0.0;

  size_t scanned = 0;
  Stopwatch scan_watch;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& [x, band] : w.bands) {
      const std::vector<ValueId> hits = repo.ValuesInCoordRange(x, band);
      scanned += hits.size();
      for (ValueId v : hits) {
        sum += v;
      }
    }
  }
  const double scan_seconds = scan_watch.ElapsedSeconds();
  const double total_scans = static_cast<double>(w.bands.size()) * rounds;
  stats.scans_per_sec = scan_seconds > 0 ? total_scans / scan_seconds : 0.0;
  stats.scanned_values = rounds > 0 ? static_cast<double>(scanned) / rounds : 0;
  stats.checksum = sum;
  return stats;
}

long FileSizeBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

}  // namespace

int main() {
  JsonReporter reporter("repo_backends");
  const ExecKnobs env_knobs = EnvExecKnobs();
  const std::string dataset = "Citations";
  ExperimentParams params = BaseParams(dataset);
  Experiment experiment(ProfileByName(dataset), params);
  PrintHeader("repo_backends",
              "repository build cost + read throughput per storage backend",
              params);

  // --- Section 1: build cost --------------------------------------------
  Stopwatch build_watch;
  std::unique_ptr<Repository> memory =
      experiment.BuildRepository(RepoBackend::kInMemory);
  const double build_seconds = build_watch.ElapsedSeconds();

  const std::string snapshot_path =
      UniqueSnapshotPath("terids-bench-repo-backends");
  Stopwatch write_watch;
  if (!WriteRepositorySnapshot(*memory, snapshot_path).ok()) {
    std::fprintf(stderr, "FATAL: snapshot write failed\n");
    return 1;
  }
  const double write_seconds = write_watch.ElapsedSeconds();
  const long snapshot_bytes = FileSizeBytes(snapshot_path);

  Stopwatch open_watch;
  Result<std::unique_ptr<Repository>> opened = Repository::OpenSnapshot(
      &memory->schema(), &memory->dict(), snapshot_path);
  const double open_seconds = open_watch.ElapsedSeconds();
  if (!opened.ok()) {
    std::fprintf(stderr, "FATAL: snapshot open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Repository> mmapped = std::move(opened).value();
  std::remove(snapshot_path.c_str());  // the mapping keeps the pages alive

  std::printf("\n-- build cost (%zu samples, %d attributes) --\n",
              memory->num_samples(), memory->num_attributes());
  std::printf("%-22s %12.4f ms\n", "in-memory build", 1e3 * build_seconds);
  std::printf("%-22s %12.4f ms  (%ld bytes)\n", "snapshot write",
              1e3 * write_seconds, snapshot_bytes);
  std::printf("%-22s %12.4f ms\n", "mmap open", 1e3 * open_seconds);
  reporter.AddKnobRow(env_knobs)
      .Str("section", "build")
      .Str("dataset", dataset)
      .Num("samples", static_cast<double>(memory->num_samples()))
      .Num("in_memory_build_ms", 1e3 * build_seconds)
      .Num("snapshot_write_ms", 1e3 * write_seconds)
      .Num("snapshot_bytes", static_cast<double>(snapshot_bytes))
      .Num("mmap_open_ms", 1e3 * open_seconds);

  // --- Section 2: read-path throughput ----------------------------------
  const ReadWorkload workload = MakeWorkload(*memory, 20000, 2000);
  const int rounds = 3;
  std::printf(
      "\n-- read path: %zu point lookups + %zu range scans x %d rounds --\n",
      workload.points.size(), workload.bands.size(), rounds);
  std::printf("%-8s %16s %16s %14s\n", "backend", "lookups/s", "scans/s",
              "values/scan");
  ReadStats oracle;
  struct BackendRow {
    const char* name;
    const Repository* repo;
  };
  for (const BackendRow& row : {BackendRow{"memory", memory.get()},
                                BackendRow{"mmap", mmapped.get()}}) {
    const ReadStats stats = MeasureReads(*row.repo, workload, rounds);
    if (std::string(row.name) == "memory") {
      oracle = stats;
    } else if (stats.checksum != oracle.checksum) {
      // The bit-identical-reads contract is load-bearing; a bench run that
      // violates it must not report numbers as if it passed.
      std::fprintf(stderr, "FATAL: %s backend read different data\n",
                   row.name);
      return 1;
    }
    const double per_scan =
        workload.bands.empty()
            ? 0.0
            : stats.scanned_values / static_cast<double>(workload.bands.size());
    std::printf("%-8s %16.0f %16.0f %14.1f\n", row.name,
                stats.lookups_per_sec, stats.scans_per_sec, per_scan);
    std::fflush(stdout);
    reporter.AddKnobRow(env_knobs)
        .Str("section", "read_path")
        .Str("dataset", dataset)
        .Str("backend", row.name)
        .Num("lookups_per_sec", stats.lookups_per_sec)
        .Num("range_scans_per_sec", stats.scans_per_sec)
        .Num("values_per_scan", per_scan);
  }

  // --- Section 3: end-to-end pipeline per backend ------------------------
  std::printf("\n-- end-to-end TER-iDS per backend --\n");
  std::printf("%-8s %14s %14s %9s\n", "backend", "ms/arrival", "arrivals/s",
              "matches");
  for (RepoBackend backend :
       {RepoBackend::kInMemory, RepoBackend::kMmapSnapshot}) {
    ExperimentParams run_params = params;
    run_params.repo_backend = backend;
    Experiment run_experiment(ProfileByName(dataset), run_params);
    PipelineRun run = run_experiment.Run(PipelineKind::kTerIds);
    const double throughput =
        run.total_seconds > 0
            ? static_cast<double>(run.arrivals) / run.total_seconds
            : 0.0;
    std::printf("%-8s %14.4f %14.1f %9zu\n", RepoBackendName(backend),
                1e3 * run.avg_arrival_seconds, throughput,
                run.final_result_size);
    std::fflush(stdout);
    ExecKnobs knobs = env_knobs;
    knobs.repo_backend = backend;
    reporter.AddKnobRow(knobs)
        .Str("section", "end_to_end")
        .Str("dataset", dataset)
        .Num("ms_per_arrival", 1e3 * run.avg_arrival_seconds)
        .Num("arrivals_per_sec", throughput)
        .Num("matches", static_cast<double>(run.final_result_size));
  }

  std::printf(
      "\nexpected shape: snapshot write + mmap open amortize to near-zero\n"
      "against repeated runs (the file is build-once); point lookups pay a\n"
      "branch for the base/overlay split and range scans a two-way merge,\n"
      "so mmap reads trail memory slightly while every byte returned is\n"
      "identical — the oracle checks enforce it.\n");
  return 0;
}
