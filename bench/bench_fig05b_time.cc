// Figure 5(b): wall clock time of all six pipelines per dataset.

#include <cstdio>

#include "bench_common.h"
#include "datagen/profiles.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  const ExecKnobs knobs = EnvExecKnobs();
  JsonReporter reporter("Figure 5(b)");
  PrintHeader("Figure 5(b)", "wall clock time (ms/arrival) vs data sets",
              base);
  std::printf("%-10s", "dataset");
  for (PipelineKind kind : AllPipelines()) {
    std::printf(" %10s", PipelineKindName(kind));
  }
  std::printf("\n");
  for (const std::string& name : AllDatasets()) {
    Experiment experiment(ProfileByName(name), BaseParams(name));
    std::printf("%-10s", name.c_str());
    for (PipelineKind kind : AllPipelines()) {
      // Arrivals replay through the batched operator (ProcessBatch via
      // StreamDriver::NextBatch); with the default 1/1 knobs this is the
      // classic one-at-a-time pipeline.
      PipelineRun run = experiment.Run(kind);
      std::printf(" %10.4f", 1e3 * run.avg_arrival_seconds);
      std::fflush(stdout);
      reporter.AddKnobRow(knobs)
          .Str("dataset", name)
          .Str("pipeline", PipelineKindName(kind))
          .Num("ms_per_arrival", 1e3 * run.avg_arrival_seconds)
          .Raw("cost", run.total_cost.PerArrival(run.arrivals).ToJson());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: TER-iDS fastest; Ij+GER second; con+ER third;\n"
      "DD+ER slowest; EBooks is the most expensive dataset (long\n"
      "description attribute). Gaps grow with |R| and w (see\n"
      "EXPERIMENTS.md on scaling).\n");
  return 0;
}
