#include "datagen/profiles.h"

#include <cstdio>

#include "util/status.h"

namespace terids {

DatasetProfile CitationsProfile() {
  DatasetProfile p;
  p.name = "Citations";
  p.attributes = {"title", "authors", "venue", "year"};
  p.min_tokens = {6, 4, 2, 1};
  p.max_tokens = {12, 8, 5, 1};
  p.vocab_size = {4000, 3000, 400, 40};
  p.topic_core_fraction = {0.25, 0.30, 0.70, 0.0};
  p.size_a = 2614;
  p.size_b = 2294;
  p.match_fraction = 0.85;  // 2224 correct matches over 2294 B records.
  p.perturbation = 0.10;
  return p;
}

DatasetProfile AnimeProfile() {
  DatasetProfile p;
  p.name = "Anime";
  p.attributes = {"title", "genres", "studio", "year", "episodes"};
  p.min_tokens = {3, 3, 1, 1, 1};
  p.max_tokens = {8, 6, 3, 1, 1};
  p.vocab_size = {3000, 60, 300, 40, 100};
  p.topic_core_fraction = {0.25, 0.80, 0.60, 0.0, 0.0};
  p.size_a = 4000;
  p.size_b = 4000;
  // 10704 matches over 4000x4000: entities duplicated several times.
  p.match_fraction = 0.9;
  p.perturbation = 0.12;
  return p;
}

DatasetProfile BikesProfile() {
  DatasetProfile p;
  p.name = "Bikes";
  p.attributes = {"model", "brand", "color", "engine", "price"};
  p.min_tokens = {3, 1, 1, 2, 1};
  p.max_tokens = {7, 2, 2, 4, 1};
  p.vocab_size = {2000, 80, 30, 400, 500};
  p.topic_core_fraction = {0.30, 0.70, 0.50, 0.60, 0.0};
  p.size_a = 4786;
  p.size_b = 9003;
  p.match_fraction = 0.8;
  p.perturbation = 0.12;
  return p;
}

DatasetProfile EBooksProfile() {
  DatasetProfile p;
  p.name = "EBooks";
  p.attributes = {"title", "author", "publisher", "genre", "description",
                  "price"};
  p.min_tokens = {4, 2, 1, 1, 30, 1};
  p.max_tokens = {9, 5, 3, 2, 60, 1};  // Long descriptions: slowest dataset.
  p.vocab_size = {4000, 3000, 500, 40, 8000, 300};
  p.topic_core_fraction = {0.25, 0.30, 0.60, 0.90, 0.50, 0.0};
  p.size_a = 6500;
  p.size_b = 14112;
  p.match_fraction = 0.75;
  p.perturbation = 0.12;
  return p;
}

DatasetProfile SongsProfile() {
  DatasetProfile p;
  p.name = "Songs";
  p.attributes = {"title", "artist", "album", "year", "genre"};
  p.min_tokens = {3, 2, 2, 1, 1};
  p.max_tokens = {7, 4, 5, 1, 2};
  p.vocab_size = {8000, 4000, 5000, 60, 30};
  p.topic_core_fraction = {0.20, 0.40, 0.40, 0.0, 0.90};
  p.size_a = 1000000;
  p.size_b = 1000000;
  p.match_fraction = 0.85;
  p.perturbation = 0.10;
  return p;
}

std::vector<DatasetProfile> AllProfiles() {
  return {CitationsProfile(), AnimeProfile(), BikesProfile(), EBooksProfile(),
          SongsProfile()};
}

DatasetProfile ProfileByName(const std::string& name) {
  for (DatasetProfile& p : AllProfiles()) {
    if (p.name == name) {
      return p;
    }
  }
  std::fprintf(stderr, "unknown dataset profile \"%s\"; expected one of:",
               name.c_str());
  for (const DatasetProfile& p : AllProfiles()) {
    std::fprintf(stderr, " %s", p.name.c_str());
  }
  std::fprintf(stderr, "\n");
  TERIDS_CHECK(false);
  return DatasetProfile();
}

}  // namespace terids
