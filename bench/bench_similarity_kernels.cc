// Similarity-kernel microbenchmarks + the refine-phase end-to-end effect of
// the flat token arena and the signature-bounded Jaccard kernel (ISSUE 5,
// DESIGN.md §9). Not a paper figure — this tracks the refinement hot path
// the TokenSet header has always called "the hot path of the whole system".
//
// Section 1 (intersection): linear merge vs galloping vs the signature
// reject on synthetic sorted token sets at several size-skew shapes, with a
// correctness oracle (all algorithms must agree; the signature bound must
// dominate the exact count).
// Section 2 (layout): per-attribute Jaccard sums over real imputed tuples
// read through heap TokenSets (instance_tokens) vs flat arena views
// (instance_token_view) — the locality payoff in isolation.
// Section 3 (end-to-end): full TER-iDS runs per profile with the signature
// filter off vs on; identical matches / MatchSet / PruneStats are asserted
// (the filter may only skip merges), and the refine-phase seconds are the
// reported effect.

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/profiles.h"
#include "er/similarity.h"
#include "text/similarity_kernels.h"
#include "text/token_set.h"
#include "tuple/imputed_tuple.h"
#include "util/stopwatch.h"

namespace {

using namespace terids;
using namespace terids::bench;

std::vector<Token> RandomSortedTokens(std::mt19937_64* rng, size_t len,
                                      Token universe) {
  std::uniform_int_distribution<Token> dist(0, universe);
  std::vector<Token> tokens;
  tokens.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    tokens.push_back(dist(*rng));
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

struct SetPair {
  std::vector<Token> a;
  std::vector<Token> b;
  uint64_t sig_a = 0;
  uint64_t sig_b = 0;
};

}  // namespace

int main() {
  JsonReporter reporter("similarity_kernels");
  const ExecKnobs env_knobs = EnvExecKnobs();

  // --- Section 1: intersection algorithm throughput -----------------------
  std::printf("==== similarity_kernels: merge vs gallop vs signature ====\n");
  std::printf("\n-- intersection: 20k random pairs per shape, 5 rounds --\n");
  std::printf("%12s %12s %12s %12s %14s %12s\n", "|small|x|large|", "merge M/s",
              "gallop M/s", "auto M/s", "sig-reject M/s", "sig-skip %");
  std::mt19937_64 rng(20210620);
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {8, 8}, {8, 64}, {8, 512}, {64, 64}, {64, 1024}, {4, 4096}};
  const int pairs_per_shape = 2000;
  const int rounds = 5;
  for (const auto& [small, large] : shapes) {
    std::vector<SetPair> pairs(pairs_per_shape);
    for (SetPair& p : pairs) {
      // Universe sized for partial overlap so neither algorithm gets a
      // degenerate all-common or all-disjoint workload.
      const Token universe = static_cast<Token>(4 * large);
      p.a = RandomSortedTokens(&rng, small, universe);
      p.b = RandomSortedTokens(&rng, large, universe);
      p.sig_a = TokenSignature(p.a.data(), p.a.size());
      p.sig_b = TokenSignature(p.b.data(), p.b.size());
    }
    const double total =
        static_cast<double>(pairs.size()) * static_cast<double>(rounds);
    size_t sink_linear = 0;
    Stopwatch w_linear;
    for (int r = 0; r < rounds; ++r) {
      for (const SetPair& p : pairs) {
        sink_linear +=
            IntersectLinear(p.a.data(), p.a.size(), p.b.data(), p.b.size());
      }
    }
    const double s_linear = w_linear.ElapsedSeconds();
    size_t sink_gallop = 0;
    Stopwatch w_gallop;
    for (int r = 0; r < rounds; ++r) {
      for (const SetPair& p : pairs) {
        sink_gallop +=
            IntersectGallop(p.a.data(), p.a.size(), p.b.data(), p.b.size());
      }
    }
    const double s_gallop = w_gallop.ElapsedSeconds();
    size_t sink_auto = 0;
    Stopwatch w_auto;
    for (int r = 0; r < rounds; ++r) {
      for (const SetPair& p : pairs) {
        sink_auto +=
            IntersectSize(p.a.data(), p.a.size(), p.b.data(), p.b.size());
      }
    }
    const double s_auto = w_auto.ElapsedSeconds();
    if (sink_linear != sink_gallop || sink_linear != sink_auto) {
      std::fprintf(stderr,
                   "FATAL: intersection algorithms disagree (shape %zux%zu)\n",
                   small, large);
      return 1;
    }
    // Signature-reject: the O(1) bound, falling back to the exact merge
    // only when the bound cannot decide "empty" — the filter-then-verify
    // shape refinement uses (here with threshold 0: reject iff provably
    // disjoint).
    size_t sink_sig = 0;
    size_t skipped = 0;
    Stopwatch w_sig;
    for (int r = 0; r < rounds; ++r) {
      for (const SetPair& p : pairs) {
        if (SigIntersectionUpperBound(p.a.size(), p.sig_a, p.b.size(),
                                      p.sig_b) == 0) {
          ++skipped;
          continue;
        }
        sink_sig +=
            IntersectSize(p.a.data(), p.a.size(), p.b.data(), p.b.size());
      }
    }
    const double s_sig = w_sig.ElapsedSeconds();
    if (sink_sig != sink_linear) {
      std::fprintf(stderr, "FATAL: signature reject changed a result\n");
      return 1;
    }
    const auto mps = [&](double s) { return s > 0 ? total / s / 1e6 : 0.0; };
    const double skip_pct = 100.0 * static_cast<double>(skipped) / total;
    std::printf("%7zux%-7zu %12.2f %12.2f %12.2f %14.2f %11.1f%%\n", small,
                large, mps(s_linear), mps(s_gallop), mps(s_auto), mps(s_sig),
                skip_pct);
    std::fflush(stdout);
    reporter.AddKnobRow(env_knobs)
        .Str("section", "intersection")
        .Num("small", static_cast<double>(small))
        .Num("large", static_cast<double>(large))
        .Num("merge_mpairs_per_sec", mps(s_linear))
        .Num("gallop_mpairs_per_sec", mps(s_gallop))
        .Num("auto_mpairs_per_sec", mps(s_auto))
        .Num("sig_reject_mpairs_per_sec", mps(s_sig))
        .Num("sig_skip_pct", skip_pct);
  }

  // --- Section 2: arena vs vector layout ----------------------------------
  // Real imputed tuples from a text-heavy profile; the workload is the
  // exact per-attribute Jaccard sum of InstanceSimilarity, read once
  // through the heap TokenSets and once through the flat arena views.
  const std::string layout_dataset = "Citations";
  ExperimentParams layout_params = BaseParams(layout_dataset);
  Experiment layout_experiment(ProfileByName(layout_dataset), layout_params);
  std::unique_ptr<Repository> repo = layout_experiment.BuildRepository();
  std::vector<ImputedTuple> tuples;
  for (const Record& r : layout_experiment.dataset().source_a) {
    if (tuples.size() >= 400) break;
    tuples.push_back(ImputedTuple::FromComplete(r, repo.get()));
  }
  std::printf("\n-- layout: %zu tuples, all-pairs instance similarity --\n",
              tuples.size());
  const int d = repo->num_attributes();
  double sum_vec = 0.0;
  Stopwatch w_vec;
  for (const ImputedTuple& a : tuples) {
    for (const ImputedTuple& b : tuples) {
      double sim = 0.0;
      for (int k = 0; k < d; ++k) {
        sim += JaccardSimilarity(a.instance_tokens(0, k),
                                 b.instance_tokens(0, k));
      }
      sum_vec += sim;
    }
  }
  const double s_vec = w_vec.ElapsedSeconds();
  double sum_arena = 0.0;
  Stopwatch w_arena;
  for (const ImputedTuple& a : tuples) {
    for (const ImputedTuple& b : tuples) {
      sum_arena += InstanceSimilarity(a, 0, b, 0);
    }
  }
  const double s_arena = w_arena.ElapsedSeconds();
  if (sum_vec != sum_arena) {
    std::fprintf(stderr, "FATAL: arena layout changed similarity sums\n");
    return 1;
  }
  const double n_pairs = static_cast<double>(tuples.size()) *
                         static_cast<double>(tuples.size());
  std::printf("%14s %14s %9s\n", "vector Mp/s", "arena Mp/s", "speedup");
  const double vec_mps = s_vec > 0 ? n_pairs / s_vec / 1e6 : 0.0;
  const double arena_mps = s_arena > 0 ? n_pairs / s_arena / 1e6 : 0.0;
  std::printf("%14.3f %14.3f %8.2fx\n", vec_mps, arena_mps,
              vec_mps > 0 ? arena_mps / vec_mps : 0.0);
  reporter.AddKnobRow(env_knobs)
      .Str("section", "layout")
      .Str("dataset", layout_dataset)
      .Num("pairs", n_pairs)
      .Num("vector_mpairs_per_sec", vec_mps)
      .Num("arena_mpairs_per_sec", arena_mps);

  // --- Section 3: end-to-end refine-phase effect per profile --------------
  std::printf("\n-- end-to-end TER-iDS: signature filter off vs on --\n");
  std::printf("%-10s %16s %16s %9s %12s\n", "dataset", "refine-off ms/ar",
              "refine-on ms/ar", "speedup", "matches");
  for (const std::string& dataset : AllDatasets()) {
    ExperimentParams params = BaseParams(dataset);
    Experiment experiment(ProfileByName(dataset), params);
    EngineConfig off_config = experiment.MakeConfig();
    off_config.signature_filter = false;
    PipelineRun off = experiment.Run(PipelineKind::kTerIds, off_config);
    EngineConfig on_config = experiment.MakeConfig();
    on_config.signature_filter = true;
    PipelineRun on = experiment.Run(PipelineKind::kTerIds, on_config);
    // The acceptance contract: the filter skips merges, never changes
    // output. A run violating it must not report numbers as if it passed.
    if (on.stats.matched != off.stats.matched ||
        on.stats.refined != off.stats.refined ||
        on.stats.total_pairs != off.stats.total_pairs ||
        on.final_result_size != off.final_result_size) {
      std::fprintf(stderr,
                   "FATAL: signature filter changed results on %s\n",
                   dataset.c_str());
      return 1;
    }
    const auto refine_ms = [](const PipelineRun& run) {
      return run.arrivals > 0 ? 1e3 * run.total_cost.refine_seconds /
                                    static_cast<double>(run.arrivals)
                              : 0.0;
    };
    const double off_ms = refine_ms(off);
    const double on_ms = refine_ms(on);
    std::printf("%-10s %16.4f %16.4f %8.2fx %12llu\n", dataset.c_str(),
                off_ms, on_ms, on_ms > 0 ? off_ms / on_ms : 0.0,
                static_cast<unsigned long long>(on.stats.matched));
    std::fflush(stdout);
    reporter.AddKnobRow(env_knobs)
        .Str("section", "end_to_end")
        .Str("dataset", dataset)
        .Num("refine_ms_per_arrival_sig_off", off_ms)
        .Num("refine_ms_per_arrival_sig_on", on_ms)
        .Num("total_ms_per_arrival_sig_off", 1e3 * off.avg_arrival_seconds)
        .Num("total_ms_per_arrival_sig_on", 1e3 * on.avg_arrival_seconds)
        .Num("matched", static_cast<double>(on.stats.matched));
  }
  std::printf(
      "\nexpected shape: gallop wins over the merge as the size skew grows;\n"
      "the signature reject approaches bitmap speed on disjoint-heavy\n"
      "workloads; the arena layout wins on locality; and the end-to-end\n"
      "refine phase speeds up most on text-heavy profiles, with identical\n"
      "matches and PruneStats in every cell.\n");
  return 0;
}
