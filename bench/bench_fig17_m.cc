// Figure 17: TER-iDS efficiency vs the number m of missing attributes.

#include "bench_common.h"

int main() {
  using namespace terids;
  using namespace terids::bench;
  TimeSweep("Figure 17", "m", {1, 2, 3},
            [](ExperimentParams* p, double v) {
              p->m = static_cast<int>(v);
            },
            AllPipelines());
  return 0;
}
