#ifndef TERIDS_REPO_REPO_BACKEND_H_
#define TERIDS_REPO_REPO_BACKEND_H_

#include <string>

namespace terids {

/// Selects the physical storage backend behind a Repository (DESIGN.md §8).
/// Split into its own header so configuration layers can name the selector
/// without pulling in the full storage interface.
enum class RepoBackend {
  kInMemory,      // Vectors + interning multimaps; the default.
  kMmapSnapshot,  // Build-once columnar snapshot file, opened via mmap.
};

const char* RepoBackendName(RepoBackend backend);

/// Parses "memory" / "mmap" (the TERIDS_BENCH_REPO_BACKEND spellings).
/// Returns false, leaving *backend untouched, on any other input.
bool ParseRepoBackend(const std::string& name, RepoBackend* backend);

/// How MmapSnapshotStorage materializes a v2 snapshot's sections.
/// Irrelevant to the in-memory backend; v1 snapshot files decode eagerly
/// regardless (their single whole-payload checksum forces a full read).
enum class SnapshotDecode {
  kEager,  // Decode every section at open — the v1-equivalent oracle.
  kLazy,   // O(header + TOC) open; sections decode on first touch.
};

const char* SnapshotDecodeName(SnapshotDecode decode);

/// Parses "eager" / "lazy" (the TERIDS_BENCH_SNAPDECODE spellings).
/// Returns false, leaving *decode untouched, on any other input.
bool ParseSnapshotDecode(const std::string& name, SnapshotDecode* decode);

}  // namespace terids

#endif  // TERIDS_REPO_REPO_BACKEND_H_
