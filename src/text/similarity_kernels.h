#ifndef TERIDS_TEXT_SIMILARITY_KERNELS_H_
#define TERIDS_TEXT_SIMILARITY_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "text/token_dict.h"
#include "util/bits.h"

namespace terids {

/// Flat, allocation-free primitives behind every Jaccard evaluation: sorted
/// token spans (raw pointer + length, as stored by TokenArena), set
/// intersection (linear merge for balanced sizes, galloping for skewed
/// ones), and the 64-bit hashed-bitmap signature whose popcount yields an
/// O(1) upper bound on intersection size. All kernels are exact or sound:
/// the two intersection algorithms return identical counts, and the
/// signature bound is always >= the exact intersection size — it can only
/// skip merges whose verdict is already decided, never change one.

/// Spans whose larger side is at least this many times the smaller one are
/// intersected by galloping instead of the linear merge: the merge is
/// O(n + m) while galloping is O(n log m), which wins once m >> n.
inline constexpr size_t kGallopSkewRatio = 8;

/// Bit index of one token in the 64-bit signature: the top 6 bits of a
/// Fibonacci-style multiplicative hash. Tokens are dense dictionary ids, so
/// taking low bits directly would alias consecutive ids into runs; the
/// multiply spreads them uniformly.
inline int SignatureBit(Token t) {
  const uint64_t h = static_cast<uint64_t>(t) * UINT64_C(0x9E3779B97F4A7C15);
  return static_cast<int>(h >> 58);
}

/// Hashed-bitmap signature of a sorted, deduplicated token span.
inline uint64_t TokenSignature(const Token* tokens, size_t n) {
  uint64_t sig = 0;
  for (size_t i = 0; i < n; ++i) {
    sig |= uint64_t{1} << SignatureBit(tokens[i]);
  }
  return sig;
}

/// |A ∩ B| by linear merge over two sorted spans (the seed algorithm).
size_t IntersectLinear(const Token* a, size_t na, const Token* b, size_t nb);

/// |A ∩ B| by galloping (exponential + binary search) of the smaller span
/// into the larger one. Identical result to IntersectLinear; preferable
/// when the sizes are heavily skewed.
size_t IntersectGallop(const Token* a, size_t na, const Token* b, size_t nb);

/// |A ∩ B| with automatic algorithm choice (kGallopSkewRatio).
inline size_t IntersectSize(const Token* a, size_t na, const Token* b,
                            size_t nb) {
  const size_t small = std::min(na, nb);
  const size_t large = std::max(na, nb);
  if (small * kGallopSkewRatio < large) {
    return IntersectGallop(a, na, b, nb);
  }
  return IntersectLinear(a, na, b, nb);
}

/// Signature-based upper bound on |A ∩ B|, given the exact set sizes and
/// the two signatures. Any common token sets the same bit in both
/// signatures, so disjoint signatures prove an empty intersection outright.
/// Otherwise, let c = popcount(sa & sb) and d_A = popcount(sa): every bit
/// set in sa but not in sb is occupied by at least one token of A that
/// cannot be in B (B has no token hashing there), so at least d_A - c
/// tokens of A are outside the intersection and
/// |A ∩ B| <= |A| - (d_A - c); symmetrically for B. Both are also <= the
/// trivial min(|A|, |B|) bound because c <= d_A and c <= d_B.
inline size_t SigIntersectionUpperBound(size_t na, uint64_t sa, size_t nb,
                                        uint64_t sb) {
  const uint64_t both = sa & sb;
  if (both == 0) {
    return 0;
  }
  const size_t common = static_cast<size_t>(PopCount64(both));
  const size_t ub_a = na - static_cast<size_t>(PopCount64(sa)) + common;
  const size_t ub_b = nb - static_cast<size_t>(PopCount64(sb)) + common;
  return std::min(ub_a, ub_b);
}

/// Upper bound on the Jaccard similarity of two sets from sizes +
/// signatures alone. Jaccard = i / (|A| + |B| - i) is increasing in i, so
/// substituting the intersection upper bound is sound. Two empty sets have
/// similarity 1 by convention (mirrors JaccardSimilarity).
inline double SigJaccardUpperBound(size_t na, uint64_t sa, size_t nb,
                                   uint64_t sb) {
  if (na == 0 && nb == 0) {
    return 1.0;
  }
  const size_t ub = SigIntersectionUpperBound(na, sa, nb, sb);
  return static_cast<double>(ub) / static_cast<double>(na + nb - ub);
}

/// Exact Jaccard similarity of two sorted spans; bit-identical to
/// JaccardSimilarity over the equivalent TokenSets (same integer
/// intersection, same division).
inline double JaccardFromSpans(const Token* a, size_t na, const Token* b,
                               size_t nb) {
  if (na == 0 && nb == 0) {
    return 1.0;
  }
  const size_t inter = IntersectSize(a, na, b, nb);
  const size_t uni = na + nb - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace terids

#endif  // TERIDS_TEXT_SIMILARITY_KERNELS_H_
