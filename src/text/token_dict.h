#ifndef TERIDS_TEXT_TOKEN_DICT_H_
#define TERIDS_TEXT_TOKEN_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace terids {

/// Interned token identifier. Token 0 is valid; kInvalidToken marks lookups
/// that missed.
using Token = uint32_t;
inline constexpr Token kInvalidToken = static_cast<Token>(-1);

/// String-interning dictionary mapping token text to dense uint32 ids.
///
/// Every attribute value in TER-iDS is a token set; interning makes the
/// Jaccard inner loop integer-only and keeps token sets at 4 bytes/token.
/// One TokenDict is shared by a repository, its streams, and the query
/// keywords so that ids are comparable across all of them.
class TokenDict {
 public:
  TokenDict() = default;

  // The dictionary is referenced by pointer throughout the library; moving
  // or copying it would silently invalidate interned ids' provenance.
  TokenDict(const TokenDict&) = delete;
  TokenDict& operator=(const TokenDict&) = delete;

  /// Returns the id for `text`, interning it if unseen.
  Token Intern(std::string_view text);

  /// Returns the id for `text`, or kInvalidToken if it was never interned.
  Token Find(std::string_view text) const;

  /// Returns the text for an id. `token` must be a valid interned id.
  const std::string& TextOf(Token token) const;

  /// Number of distinct tokens interned so far.
  size_t size() const { return texts_.size(); }

 private:
  std::unordered_map<std::string, Token> ids_;
  std::vector<std::string> texts_;
};

}  // namespace terids

#endif  // TERIDS_TEXT_TOKEN_DICT_H_
