#include "repo/snapshot_writer.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <utility>
#include <vector>

#include "repo/repository.h"
#include "repo/snapshot_format.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace terids {

namespace {

void AppendDomain(const Repository& repo, int attr, snapshot::Builder* out) {
  const size_t dom = repo.domain_size(attr);
  out->AppendU64(dom);

  // Concatenated token ids + prefix offsets.
  std::vector<Token> token_ids;
  std::vector<uint64_t> token_offsets;
  token_offsets.reserve(dom + 1);
  token_offsets.push_back(0);
  for (ValueId v = 0; v < dom; ++v) {
    const std::vector<Token>& ts = repo.value_tokens(attr, v).tokens();
    token_ids.insert(token_ids.end(), ts.begin(), ts.end());
    token_offsets.push_back(token_ids.size());
  }
  out->AppendU64(token_ids.size());
  out->AppendArray(token_ids.data(), token_ids.size());
  out->AppendArray(token_offsets.data(), token_offsets.size());

  // Display-text blob + prefix offsets.
  std::string text_blob;
  std::vector<uint64_t> text_offsets;
  text_offsets.reserve(dom + 1);
  text_offsets.push_back(0);
  for (ValueId v = 0; v < dom; ++v) {
    text_blob += repo.value_text(attr, v);
    text_offsets.push_back(text_blob.size());
  }
  out->AppendU64(text_blob.size());
  out->AppendArray(text_blob.data(), text_blob.size());
  out->AppendArray(text_offsets.data(), text_offsets.size());

  std::vector<int32_t> freqs(dom);
  for (ValueId v = 0; v < dom; ++v) {
    freqs[v] = repo.value_frequency(attr, v);
  }
  out->AppendArray(freqs.data(), freqs.size());
}

void AppendPivots(const Repository& repo, snapshot::Builder* out) {
  const int d = repo.num_attributes();
  for (int x = 0; x < d; ++x) {
    const int np = repo.num_pivots(x);
    out->AppendU64(static_cast<uint64_t>(np));
    for (int a = 0; a < np; ++a) {
      const std::vector<Token>& ts = repo.pivot_tokens(x, a).tokens();
      out->AppendU64(ts.size());
      out->AppendArray(ts.data(), ts.size());
    }
  }
  // Distance tables, one contiguous column per (attribute, pivot).
  for (int x = 0; x < d; ++x) {
    const size_t dom = repo.domain_size(x);
    std::vector<double> dists(dom);
    for (int a = 0; a < repo.num_pivots(x); ++a) {
      for (ValueId v = 0; v < dom; ++v) {
        dists[v] = repo.pivot_distance(x, a, v);
      }
      out->AppendArray(dists.data(), dists.size());
    }
  }
  // Sorted main-pivot coordinate lists, as parallel (key, vid) columns.
  for (int x = 0; x < d; ++x) {
    const size_t dom = repo.domain_size(x);
    std::vector<std::pair<double, ValueId>> coords;
    coords.reserve(dom);
    for (ValueId v = 0; v < dom; ++v) {
      coords.emplace_back(repo.coord(x, v), v);
    }
    std::sort(coords.begin(), coords.end());
    std::vector<double> keys(dom);
    std::vector<uint32_t> vids(dom);
    for (size_t i = 0; i < dom; ++i) {
      keys[i] = coords[i].first;
      vids[i] = coords[i].second;
    }
    out->AppendArray(keys.data(), keys.size());
    out->AppendArray(vids.data(), vids.size());
  }
}

void AppendSamples(const Repository& repo, snapshot::Builder* out) {
  const int d = repo.num_attributes();
  const size_t n = repo.num_samples();
  std::vector<int64_t> rids(n);
  std::vector<int32_t> streams(n);
  std::vector<int64_t> timestamps(n);
  std::vector<uint32_t> vids(n * static_cast<size_t>(d));
  std::string text_blob;
  std::vector<uint64_t> text_offsets;
  text_offsets.reserve(n * static_cast<size_t>(d) + 1);
  text_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    const Record& r = repo.sample(i);
    rids[i] = r.rid;
    streams[i] = r.stream_id;
    timestamps[i] = r.timestamp;
    for (int x = 0; x < d; ++x) {
      vids[i * static_cast<size_t>(d) + x] = repo.sample_value_id(i, x);
      // Sample texts are stored verbatim: a later sample may carry a
      // different spelling than the domain's first-seen display text, and
      // reconstruction must not canonicalize it. Token sets are not stored
      // per sample — they are definitionally identical to the domain
      // value's (FindOrAdd deduplicates by token-set equality).
      text_blob += r.values[x].text;
      text_offsets.push_back(text_blob.size());
    }
  }
  out->AppendArray(rids.data(), rids.size());
  out->AppendArray(streams.data(), streams.size());
  out->AppendArray(timestamps.data(), timestamps.size());
  out->AppendArray(vids.data(), vids.size());
  out->AppendU64(text_blob.size());
  out->AppendArray(text_blob.data(), text_blob.size());
  out->AppendArray(text_offsets.data(), text_offsets.size());
}

}  // namespace

std::string UniqueSnapshotPath(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  static const uint64_t tag = std::random_device{}();
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir =
      (tmpdir != nullptr && tmpdir[0] != '\0') ? tmpdir : "/tmp";
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return dir + "/" + prefix + "-" + std::to_string(pid) + "-" +
         std::to_string(tag) + "-" + std::to_string(counter.fetch_add(1)) +
         ".snap";
}

Status WriteRepositorySnapshot(const Repository& repo,
                               const std::string& path) {
  if (!repo.has_pivots()) {
    // Nothing in the snapshot's geometry sections would be meaningful, and
    // the read-only backend cannot run AttachPivots later.
    return Status::FailedPrecondition(
        "snapshot requires a repository with pivots attached");
  }

  snapshot::Builder payload;
  const int d = repo.num_attributes();
  for (int x = 0; x < d; ++x) {
    AppendDomain(repo, x, &payload);
  }
  AppendPivots(repo, &payload);
  AppendSamples(repo, &payload);

  snapshot::Header header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, snapshot::kMagic, sizeof(header.magic));
  header.version = snapshot::kVersion;
  header.num_attributes = static_cast<uint32_t>(d);
  header.num_samples = repo.num_samples();
  header.dict_tokens = repo.dict().size();
  header.payload_bytes = payload.bytes().size();
  header.payload_checksum =
      snapshot::Checksum(payload.bytes().data(), payload.bytes().size());
  header.has_pivots = 1;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open snapshot file for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(payload.bytes().data(),
            static_cast<std::streamsize>(payload.bytes().size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to snapshot file: " + path);
  }
  return Status::Ok();
}

}  // namespace terids
