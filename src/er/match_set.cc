#include "er/match_set.h"

#include <algorithm>

#include "util/status.h"

namespace terids {

uint64_t MatchSet::Key(int64_t a, int64_t b) {
  if (a > b) std::swap(a, b);
  // rids are dense non-negative 32-bit-ish values in practice; pack.
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

void MatchSet::Add(int64_t rid_a, int64_t rid_b, double probability) {
  TERIDS_CHECK(rid_a != rid_b);
  MatchPair pair;
  pair.rid_a = std::min(rid_a, rid_b);
  pair.rid_b = std::max(rid_a, rid_b);
  pair.probability = probability;
  pairs_[Key(rid_a, rid_b)] = pair;
  partners_[rid_a].insert(rid_b);
  partners_[rid_b].insert(rid_a);
}

bool MatchSet::Remove(int64_t rid_a, int64_t rid_b) {
  const auto it = pairs_.find(Key(rid_a, rid_b));
  if (it == pairs_.end()) {
    return false;
  }
  pairs_.erase(it);
  auto erase_partner = [this](int64_t from, int64_t who) {
    auto pit = partners_.find(from);
    if (pit != partners_.end()) {
      pit->second.erase(who);
      if (pit->second.empty()) {
        partners_.erase(pit);
      }
    }
  };
  erase_partner(rid_a, rid_b);
  erase_partner(rid_b, rid_a);
  return true;
}

int MatchSet::RemoveAllWith(int64_t rid) {
  auto it = partners_.find(rid);
  if (it == partners_.end()) {
    return 0;
  }
  // Copy: Remove() mutates partners_[rid].
  std::vector<int64_t> others(it->second.begin(), it->second.end());
  int removed = 0;
  for (int64_t other : others) {
    if (Remove(rid, other)) {
      ++removed;
    }
  }
  return removed;
}

bool MatchSet::Contains(int64_t rid_a, int64_t rid_b) const {
  return pairs_.count(Key(rid_a, rid_b)) > 0;
}

double MatchSet::ProbabilityOf(int64_t rid_a, int64_t rid_b) const {
  const auto it = pairs_.find(Key(rid_a, rid_b));
  return it == pairs_.end() ? -1.0 : it->second.probability;
}

std::vector<MatchPair> MatchSet::ToVector() const {
  std::vector<MatchPair> out;
  out.reserve(pairs_.size());
  for (const auto& [key, pair] : pairs_) {
    (void)key;
    out.push_back(pair);
  }
  std::sort(out.begin(), out.end(), [](const MatchPair& a, const MatchPair& b) {
    return a.rid_a != b.rid_a ? a.rid_a < b.rid_a : a.rid_b < b.rid_b;
  });
  return out;
}

}  // namespace terids
