// LatencyHistogram unit tests: bucket-boundary math pinned against the
// log-bucketing definition, merge associativity, and percentile queries
// validated against a sorted-vector oracle (the histogram's answer must
// fall inside the bucket holding the oracle's rank element).

#include "eval/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace terids {
namespace {

TEST(LatencyHistogramTest, ExactBucketsBelowSubBucketRange) {
  // Durations in [0, kSubBuckets) get one exact bucket each.
  for (uint64_t nanos = 0;
       nanos < static_cast<uint64_t>(LatencyHistogram::kSubBuckets); ++nanos) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(nanos),
              static_cast<int>(nanos));
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<int>(nanos)),
              nanos);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(static_cast<int>(nanos)),
              nanos + 1);
  }
}

TEST(LatencyHistogramTest, BucketBoundsContainTheirValues) {
  // Every probed duration must land in a bucket whose [lo, hi) range
  // contains it — probe powers of two, their neighbors, and mid-octave
  // points across the full range.
  std::vector<uint64_t> probes;
  for (int e = 0; e < 63; ++e) {
    const uint64_t p = static_cast<uint64_t>(1) << e;
    probes.push_back(p);
    probes.push_back(p + 1);
    if (p > 1) {
      probes.push_back(p - 1);
      probes.push_back(p + p / 2);
    }
  }
  for (uint64_t nanos : probes) {
    const int bucket = LatencyHistogram::BucketIndex(nanos);
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, LatencyHistogram::kNumBuckets);
    EXPECT_GE(nanos, LatencyHistogram::BucketLowerBound(bucket))
        << "nanos=" << nanos;
    EXPECT_LT(nanos, LatencyHistogram::BucketUpperBound(bucket))
        << "nanos=" << nanos;
  }
}

TEST(LatencyHistogramTest, BucketsAreMonotoneAndContiguous) {
  // Walking buckets upward, each upper bound is the next lower bound (no
  // gaps, no overlap), and BucketIndex maps each lower bound back to its
  // own bucket.
  int prev = -1;
  for (int b = 0; b < LatencyHistogram::kNumBuckets - 1; ++b) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(b);
    const uint64_t hi = LatencyHistogram::BucketUpperBound(b);
    ASSERT_LT(lo, hi);
    EXPECT_EQ(hi, LatencyHistogram::BucketLowerBound(b + 1));
    const int back = LatencyHistogram::BucketIndex(lo);
    EXPECT_EQ(back, b);
    EXPECT_GT(back, prev);
    prev = back;
  }
}

TEST(LatencyHistogramTest, RelativeBucketWidthIsBounded) {
  // The log-bucketing guarantee: above the exact range, bucket width is at
  // most lo / kSubBuckets, i.e. <= 6.25% relative error at 16 sub-buckets.
  for (int b = LatencyHistogram::kSubBuckets;
       b < LatencyHistogram::kNumBuckets - 1; ++b) {
    const double lo =
        static_cast<double>(LatencyHistogram::BucketLowerBound(b));
    const double width =
        static_cast<double>(LatencyHistogram::BucketUpperBound(b)) - lo;
    EXPECT_LE(width / lo,
              1.0 / static_cast<double>(LatencyHistogram::kSubBuckets) +
                  1e-12)
        << "bucket=" << b;
  }
}

TEST(LatencyHistogramTest, EmptyHistogramIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max_seconds(), 0.0);
}

TEST(LatencyHistogramTest, CountMeanMaxAreExact) {
  // count / mean / max bypass the buckets entirely, so they are exact even
  // though percentiles are bucket-resolved.
  LatencyHistogram hist;
  hist.RecordNanos(1000);
  hist.RecordNanos(3000);
  hist.RecordNanos(500000);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.mean_seconds(), (1000 + 3000 + 500000) / 3.0 * 1e-9);
  EXPECT_DOUBLE_EQ(hist.max_seconds(), 500000 * 1e-9);
}

// Percentile vs. a sorted-vector oracle: the histogram's answer must land
// in the same bucket as the oracle's rank element (that bucket's bounds are
// the tightest guarantee a bucketed histogram can give).
void ExpectPercentilesMatchOracle(const std::vector<uint64_t>& samples) {
  LatencyHistogram hist;
  for (uint64_t s : samples) {
    hist.RecordNanos(s);
  }
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double qc = q * static_cast<double>(sorted.size());
    size_t rank = static_cast<size_t>(std::ceil(qc));
    rank = rank > 0 ? rank - 1 : 0;
    rank = std::min(rank, sorted.size() - 1);
    const uint64_t oracle = sorted[rank];
    const int oracle_bucket = LatencyHistogram::BucketIndex(oracle);
    const double lo =
        static_cast<double>(LatencyHistogram::BucketLowerBound(oracle_bucket));
    const double hi =
        static_cast<double>(LatencyHistogram::BucketUpperBound(oracle_bucket));
    const double got = hist.Percentile(q) * 1e9;
    EXPECT_GE(got, lo) << "q=" << q << " oracle=" << oracle;
    EXPECT_LE(got, hi) << "q=" << q << " oracle=" << oracle;
  }
}

TEST(LatencyHistogramTest, PercentileMatchesSortedVectorOracle) {
  // Deterministic pseudo-random skew: a long-tailed mix spanning five
  // orders of magnitude, the shape arrival latencies actually take.
  std::vector<uint64_t> samples;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(1000 + x % 100000);       // 1-101 us bulk
    if (i % 100 == 0) {
      samples.push_back(10000000 + x % 90000000);  // 10-100 ms tail
    }
  }
  ExpectPercentilesMatchOracle(samples);
}

TEST(LatencyHistogramTest, PercentileOfUniformRamp) {
  std::vector<uint64_t> samples;
  for (uint64_t i = 1; i <= 1000; ++i) {
    samples.push_back(i * 1000);  // 1us .. 1ms ramp
  }
  ExpectPercentilesMatchOracle(samples);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  std::vector<uint64_t> all;
  LatencyHistogram parts[3];
  uint64_t x = 12345;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 500; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const uint64_t nanos = 100 + (x >> 33) % 10000000;
      parts[p].RecordNanos(nanos);
      all.push_back(nanos);
    }
  }
  LatencyHistogram oracle;
  for (uint64_t nanos : all) {
    oracle.RecordNanos(nanos);
  }
  // (a + b) + c and c + (b + a) must both equal the all-at-once histogram.
  LatencyHistogram left;
  left.Merge(parts[0]);
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  LatencyHistogram right;
  right.Merge(parts[2]);
  right.Merge(parts[1]);
  right.Merge(parts[0]);
  for (const LatencyHistogram* merged : {&left, &right}) {
    EXPECT_EQ(merged->count(), oracle.count());
    EXPECT_DOUBLE_EQ(merged->mean_seconds(), oracle.mean_seconds());
    EXPECT_DOUBLE_EQ(merged->max_seconds(), oracle.max_seconds());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_DOUBLE_EQ(merged->Percentile(q), oracle.Percentile(q)) << q;
    }
  }
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram hist;
  hist.Record(0.5);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(hist.max_seconds(), 0.0);
}

TEST(LatencyHistogramTest, ToJsonHasStableSchema) {
  LatencyHistogram hist;
  hist.Record(0.001);
  const std::string json = hist.ToJson();
  for (const char* key : {"\"count\":", "\"p50_ms\":", "\"p99_ms\":",
                          "\"p999_ms\":", "\"mean_ms\":", "\"max_ms\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(LatencyStatsTest, PhasesMergeIndependently) {
  LatencyStats a;
  a.of(ExecPhase::kIngest).RecordNanos(1000);
  a.of(ExecPhase::kRefine).RecordNanos(2000);
  a.end_to_end.RecordNanos(5000);
  LatencyStats b;
  b.of(ExecPhase::kRefine).RecordNanos(3000);
  b.of(ExecPhase::kMaintain).RecordNanos(4000);
  a.Merge(b);
  EXPECT_EQ(a.of(ExecPhase::kIngest).count(), 1u);
  EXPECT_EQ(a.of(ExecPhase::kCandidate).count(), 0u);
  EXPECT_EQ(a.of(ExecPhase::kRefine).count(), 2u);
  EXPECT_EQ(a.of(ExecPhase::kMaintain).count(), 1u);
  EXPECT_EQ(a.end_to_end.count(), 1u);
}

TEST(LatencyStatsTest, ToJsonKeysEveryPhase) {
  LatencyStats stats;
  const std::string json = stats.ToJson();
  for (const char* key : {"\"ingest\":", "\"candidate\":", "\"refine\":",
                          "\"maintain\":", "\"end_to_end\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

}  // namespace
}  // namespace terids
