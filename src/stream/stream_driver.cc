#include "stream/stream_driver.h"

#include <algorithm>
#include <thread>

#include "util/status.h"

namespace terids {

StreamDriver::StreamDriver(std::vector<std::vector<Record>> sources)
    : sources_(std::move(sources)) {
  TERIDS_CHECK(!sources_.empty());
  cursor_.assign(sources_.size(), 0);
  for (const auto& s : sources_) {
    total_ += s.size();
  }
}

bool StreamDriver::HasNext() const { return emitted_ < total_; }

Record StreamDriver::Next() {
  TERIDS_CHECK(HasNext());
  // Round-robin, skipping exhausted sources.
  for (size_t tries = 0; tries < sources_.size(); ++tries) {
    const size_t s = next_stream_;
    next_stream_ = (next_stream_ + 1) % sources_.size();
    if (cursor_[s] < sources_[s].size()) {
      Record r = sources_[s][cursor_[s]++];
      r.stream_id = static_cast<int>(s);
      r.timestamp = clock_++;
      ++emitted_;
      return r;
    }
  }
  TERIDS_CHECK(false);  // HasNext() guaranteed an arrival.
  return Record();
}

std::vector<Record> StreamDriver::NextBatch(size_t max_records) {
  std::vector<Record> batch;
  batch.reserve(std::min(max_records, remaining()));
  while (batch.size() < max_records && HasNext()) {
    batch.push_back(Next());
  }
  return batch;
}

void StreamDriver::Reset() {
  cursor_.assign(sources_.size(), 0);
  next_stream_ = 0;
  emitted_ = 0;
  clock_ = 0;
}

PacedStreamDriver::PacedStreamDriver(std::vector<std::vector<Record>> sources,
                                     std::vector<double> release_seconds)
    : StreamDriver(std::move(sources)), release_(std::move(release_seconds)) {
  TERIDS_CHECK(release_.size() >= total());
  for (size_t i = 1; i < release_.size(); ++i) {
    TERIDS_CHECK(release_[i] >= release_[i - 1]);
  }
}

void PacedStreamDriver::Start() {
  if (!started_) {
    start_ = std::chrono::steady_clock::now();
    started_ = true;
  }
}

double PacedStreamDriver::SecondsSinceStart() const {
  if (!started_) {
    return 0.0;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::vector<Record> PacedStreamDriver::NextBatch(size_t max_records) {
  Start();
  if (!HasNext() || max_records == 0) {
    return {};
  }
  // Sleep until the next unreleased arrival is due, then hand out every
  // arrival that is already due. Under offered load beyond capacity the
  // consumer falls behind the schedule and each call returns a backlog of
  // due arrivals immediately — exactly the overload the benches measure.
  const double due = release_[emitted()];
  const double now = SecondsSinceStart();
  if (due > now) {
    std::this_thread::sleep_for(std::chrono::duration<double>(due - now));
  }
  std::vector<Record> batch;
  const double horizon = SecondsSinceStart();
  while (batch.size() < max_records && HasNext() &&
         release_[emitted()] <= horizon) {
    batch.push_back(Next());
  }
  return batch;
}

void PacedStreamDriver::Reset() {
  StreamDriver::Reset();
  started_ = false;
}

}  // namespace terids
