#ifndef TERIDS_ER_PRUNING_H_
#define TERIDS_ER_PRUNING_H_

#include <cstdint>

#include "er/topic.h"
#include "tuple/imputed_tuple.h"

namespace terids {

/// Per-strategy pruning counters, reported as the "pruning power" of
/// Figure 4. Counters are at tuple-pair granularity and strategies are
/// applied in the paper's order: topic keyword (Theorem 4.1), similarity
/// upper bound (Theorem 4.2), probability upper bound (Theorem 4.3),
/// instance-pair-level (Theorem 4.4).
struct PruneStats {
  uint64_t total_pairs = 0;
  uint64_t topic_pruned = 0;
  uint64_t sim_ub_pruned = 0;
  uint64_t prob_ub_pruned = 0;
  uint64_t instance_pruned = 0;
  /// Pairs that survived all pruning and were fully refined.
  uint64_t refined = 0;
  uint64_t matched = 0;

  void Add(const PruneStats& other) {
    total_pairs += other.total_pairs;
    topic_pruned += other.topic_pruned;
    sim_ub_pruned += other.sim_ub_pruned;
    prob_ub_pruned += other.prob_ub_pruned;
    instance_pruned += other.instance_pruned;
    refined += other.refined;
    matched += other.matched;
  }

  double PowerOf(uint64_t count) const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(count) / static_cast<double>(total_pairs);
  }
  double TotalPower() const {
    return PowerOf(topic_pruned + sim_ub_pruned + prob_ub_pruned +
                   instance_pruned);
  }
};

/// Outcome of evaluating one candidate tuple pair.
enum class PairOutcome {
  kTopicPruned,     // Theorem 4.1
  kSimUbPruned,     // Theorem 4.2 (Lemmas 4.1 / 4.2)
  kProbUbPruned,    // Theorem 4.3 (Lemma 4.3)
  kInstancePruned,  // Theorem 4.4 early termination below alpha
  kRefuted,         // fully refined, probability <= alpha
  kMatched,         // probability > alpha
};

/// Applies the four pruning strategies in the paper's order and, if none
/// fires, refines the exact probability. Updates `stats` (which must not be
/// null) and writes the (possibly partial, see RefineResult) probability to
/// `prob_out` when the outcome is kMatched.
PairOutcome EvaluatePair(const ImputedTuple& a,
                         const TopicQuery::TupleTopic& a_topic,
                         const ImputedTuple& b,
                         const TopicQuery::TupleTopic& b_topic, double gamma,
                         double alpha, PruneStats* stats, double* prob_out);

}  // namespace terids

#endif  // TERIDS_ER_PRUNING_H_
