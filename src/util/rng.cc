#include "util/rng.h"

#include <cmath>

#include "util/status.h"

namespace terids {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(&s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TERIDS_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TERIDS_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  TERIDS_CHECK(n > 0);
  // Inverse-CDF approximation of a Zipf(s) law over ranks 1..n: draw u in
  // (0,1] and invert the continuous approximation of the normalized
  // generalized-harmonic CDF. Accurate enough for workload skew.
  double u = 1.0 - NextDouble();  // (0, 1]
  if (s == 1.0) {
    s = 1.0000001;  // Avoid the removable singularity in the formula below.
  }
  const double nd = static_cast<double>(n);
  const double h = (std::pow(nd, 1.0 - s) - 1.0) / (1.0 - s) + 1.0;
  const double x = u * h;
  double rank;
  if (x <= 1.0) {
    rank = 1.0;
  } else {
    rank = std::pow((x - 1.0) * (1.0 - s) + 1.0, 1.0 / (1.0 - s));
  }
  uint64_t r = static_cast<uint64_t>(rank);
  if (r < 1) r = 1;
  if (r > n) r = n;
  return r - 1;  // 0-based rank.
}

}  // namespace terids
