#include "stream/stream_driver.h"

#include <algorithm>

#include "util/status.h"

namespace terids {

StreamDriver::StreamDriver(std::vector<std::vector<Record>> sources)
    : sources_(std::move(sources)) {
  TERIDS_CHECK(!sources_.empty());
  cursor_.assign(sources_.size(), 0);
  for (const auto& s : sources_) {
    total_ += s.size();
  }
}

bool StreamDriver::HasNext() const { return emitted_ < total_; }

Record StreamDriver::Next() {
  TERIDS_CHECK(HasNext());
  // Round-robin, skipping exhausted sources.
  for (size_t tries = 0; tries < sources_.size(); ++tries) {
    const size_t s = next_stream_;
    next_stream_ = (next_stream_ + 1) % sources_.size();
    if (cursor_[s] < sources_[s].size()) {
      Record r = sources_[s][cursor_[s]++];
      r.stream_id = static_cast<int>(s);
      r.timestamp = clock_++;
      ++emitted_;
      return r;
    }
  }
  TERIDS_CHECK(false);  // HasNext() guaranteed an arrival.
  return Record();
}

std::vector<Record> StreamDriver::NextBatch(size_t max_records) {
  std::vector<Record> batch;
  batch.reserve(std::min(max_records, remaining()));
  while (batch.size() < max_records && HasNext()) {
    batch.push_back(Next());
  }
  return batch;
}

void StreamDriver::Reset() {
  cursor_.assign(sources_.size(), 0);
  next_stream_ = 0;
  emitted_ = 0;
  clock_ = 0;
}

}  // namespace terids
