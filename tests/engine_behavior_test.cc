// Behavioral tests of engine-level guarantees that the integration suite
// does not pin down: n > 2 streams, multi-instance grid residency,
// determinism, and refinement edge cases.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/terids_engine.h"
#include "er/probability.h"
#include "rules/rule_miner.h"
#include "synopsis/sharded_er_grid.h"
#include "test_util.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

class EngineBehaviorTest : public ::testing::Test {
 protected:
  EngineBehaviorTest() : world_(MakeHealthWorld()) {
    MinerOptions opts;
    opts.min_support = 2;
    opts.min_const_freq = 2;
    RuleMiner miner(world_.repo.get(), opts);
    rules_ = miner.MineCdds();
    config_.keywords = {"diabetes"};
    config_.gamma = 2.2;
    config_.alpha = 0.4;
    config_.window_size = 16;
  }

  Record Post(int64_t rid, int stream,
              const std::vector<std::string>& texts) {
    Record r = world_.Make(rid, texts);
    r.stream_id = stream;
    return r;
  }

  ToyWorld world_;
  std::vector<CddRule> rules_;
  EngineConfig config_;
};

TEST_F(EngineBehaviorTest, ThreeStreamsMatchAcrossAnyTwo) {
  TerIdsEngine engine(world_.repo.get(), config_, /*num_streams=*/3, rules_);
  const std::vector<std::string> diabetic = {
      "male", "loss of weight", "diabetes", "drug therapy"};
  engine.ProcessArrival(Post(1, 0, diabetic));
  ArrivalOutcome second = engine.ProcessArrival(Post(2, 1, diabetic));
  EXPECT_EQ(second.new_matches.size(), 1u);  // streams 0-1
  ArrivalOutcome third = engine.ProcessArrival(Post(3, 2, diabetic));
  // Stream 2's tuple matches both earlier tuples (0-2 and 1-2 pairs).
  EXPECT_EQ(third.new_matches.size(), 2u);
  EXPECT_EQ(engine.results().size(), 3u);
}

TEST_F(EngineBehaviorTest, CddMemoProbeCountsBatchScopedRepeats) {
  // The probe is opt-in since the PR-3 measurement found a near-zero hit
  // rate; runs that want to re-measure flip it on explicitly.
  config_.cdd_memo_probe = true;
  TerIdsEngine engine(world_.repo.get(), config_, 2, rules_);
  // Two incomplete arrivals with identical non-missing values and the same
  // missing attribute share a determinant signature; a complete arrival
  // never queries the probe.
  const std::vector<std::string> incomplete = {"male", "blurred vision", "-",
                                               "drug therapy"};
  const std::vector<std::string> complete = {"female", "fever cough", "flu",
                                             "rest"};
  std::vector<Record> batch = {Post(1, 0, incomplete), Post(2, 0, complete),
                               Post(3, 1, incomplete)};
  CostBreakdown batch_cost;
  for (ArrivalOutcome& out : engine.ProcessBatch(batch)) {
    batch_cost.Add(out.cost);
  }
  EXPECT_DOUBLE_EQ(batch_cost.cdd_memo_queries, 2.0);
  EXPECT_DOUBLE_EQ(batch_cost.cdd_memo_repeats, 1.0);
  EXPECT_DOUBLE_EQ(batch_cost.cdd_memo_hit_rate(), 0.5);

  // The probe is batch-scoped: replaying the same signature in a new batch
  // is a fresh miss (a would-be cache would have been reset).
  ArrivalOutcome replay = engine.ProcessArrival(Post(4, 0, incomplete));
  EXPECT_DOUBLE_EQ(replay.cost.cdd_memo_queries, 1.0);
  EXPECT_DOUBLE_EQ(replay.cost.cdd_memo_repeats, 0.0);
}

TEST_F(EngineBehaviorTest, CddMemoProbeOffByDefaultCountsNothing) {
  TerIdsEngine engine(world_.repo.get(), config_, 2, rules_);
  const std::vector<std::string> incomplete = {"male", "blurred vision", "-",
                                               "drug therapy"};
  CostBreakdown cost;
  for (ArrivalOutcome& out : engine.ProcessBatch(
           {Post(1, 0, incomplete), Post(2, 1, incomplete)})) {
    cost.Add(out.cost);
  }
  EXPECT_DOUBLE_EQ(cost.cdd_memo_queries, 0.0);
  EXPECT_DOUBLE_EQ(cost.cdd_memo_repeats, 0.0);
  EXPECT_DOUBLE_EQ(cost.cdd_memo_hit_rate(), 0.0);
}

TEST_F(EngineBehaviorTest, SameStreamDuplicatesNeverPair) {
  TerIdsEngine engine(world_.repo.get(), config_, 2, rules_);
  const std::vector<std::string> diabetic = {
      "male", "loss of weight", "diabetes", "drug therapy"};
  engine.ProcessArrival(Post(1, 0, diabetic));
  ArrivalOutcome dup = engine.ProcessArrival(Post(2, 0, diabetic));
  EXPECT_TRUE(dup.new_matches.empty());
}

TEST_F(EngineBehaviorTest, RepeatedRunsAreDeterministic) {
  std::vector<std::pair<uint64_t, size_t>> signatures;
  for (int run = 0; run < 2; ++run) {
    TerIdsEngine engine(world_.repo.get(), config_, 2, rules_);
    const std::vector<std::vector<std::string>> posts = {
        {"male", "loss of weight", "diabetes", "drug therapy"},
        {"male", "blurred vision", "-", "-"},
        {"female", "fever cough", "flu", "rest"},
        {"male", "loss of weight thirst", "-", "dietary therapy"},
    };
    size_t matches = 0;
    for (size_t i = 0; i < posts.size(); ++i) {
      matches += engine
                     .ProcessArrival(Post(static_cast<int64_t>(i),
                                          static_cast<int>(i % 2), posts[i]))
                     .new_matches.size();
    }
    signatures.emplace_back(engine.cumulative_stats().total_pairs, matches);
  }
  EXPECT_EQ(signatures[0], signatures[1]);
}

TEST_F(EngineBehaviorTest, ImputedTupleOccupiesMultipleGridCells) {
  // An imputed tuple whose candidate values have spread-out pivot
  // coordinates must be inserted into several cells and fully removed.
  // Two shards: a spread-out imputed tuple also exercises the coordinator's
  // multi-shard routing and targeted removal.
  ShardedErGrid grid(world_.repo->num_attributes(), 0.05, /*num_shards=*/2);
  TopicQuery topic(*world_.dict, {"diabetes"});
  Record r = world_.Make(1, {"male", "blurred vision", "-", "drug therapy"});
  r.stream_id = 0;
  const AttributeDomain& dom = world_.repo->domain(2);
  ImputedTuple::ImputedAttr ia;
  ia.attr = 2;
  for (ValueId v = 0; v < dom.size() && v < 5; ++v) {
    ia.candidates.push_back({v, 1.0 / 5});
  }
  auto wt = std::make_shared<WindowTuple>();
  wt->tuple = std::make_shared<const ImputedTuple>(
      ImputedTuple::FromImputation(r, world_.repo.get(), {ia}, 16));
  wt->topic = topic.Classify(*wt->tuple);

  grid.Insert(wt.get());
  EXPECT_GE(grid.num_cells(), 2u);
  EXPECT_TRUE(grid.Remove(wt.get()));
  EXPECT_EQ(grid.num_cells(), 0u);
  EXPECT_EQ(grid.num_tuples(), 0u);
}

TEST_F(EngineBehaviorTest, EarlyAcceptedRefinementStillExceedsAlpha) {
  TopicQuery topic;  // unconstrained
  Record a = world_.Make(1, {"male", "fever", "flu", "rest"});
  Record b = world_.Make(2, {"male", "fever", "flu", "rest"});
  ImputedTuple ta = ImputedTuple::FromComplete(a, world_.repo.get());
  ImputedTuple tb = ImputedTuple::FromComplete(b, world_.repo.get());
  RefineResult refine = RefineProbability(ta, topic.Classify(ta), tb,
                                          topic.Classify(tb), 2.0, 0.5);
  EXPECT_TRUE(refine.early_accepted);
  EXPECT_GT(refine.probability, 0.5);
  EXPECT_EQ(refine.pairs_evaluated, 1);
}

TEST_F(EngineBehaviorTest, WindowSizeOneStillWorks) {
  EngineConfig config = config_;
  config.window_size = 1;
  TerIdsEngine engine(world_.repo.get(), config, 2, rules_);
  const std::vector<std::string> diabetic = {
      "male", "loss of weight", "diabetes", "drug therapy"};
  engine.ProcessArrival(Post(1, 0, diabetic));
  EXPECT_EQ(engine.ProcessArrival(Post(2, 1, diabetic)).new_matches.size(),
            1u);
  // A new stream-0 arrival evicts rid 1 and its pair.
  engine.ProcessArrival(Post(3, 0, {"female", "fever cough", "flu", "rest"}));
  EXPECT_FALSE(engine.results().Contains(1, 2));
}

TEST_F(EngineBehaviorTest, SigSaturationCountersTrackFilterWork) {
  // The sig_* PruneStats counters are filter observability: zero with the
  // filter off; with it on, sig_probes counts the popcount probes of the
  // refined pairs and is width-invariant (the same instance pairs are
  // visited at every width because verdicts are width-invariant), while
  // sig_saturated can only shrink as the width grows (narrower signatures
  // are OR-coarsenings of wider ones, so a saturated 256-bit signature is
  // saturated at 64 bits too). Outcome counters never move.
  const std::vector<std::vector<std::string>> posts = {
      {"male", "loss of weight", "diabetes", "drug therapy"},
      {"male", "loss of weight thirst", "diabetes", "drug therapy"},
      {"male", "blurred vision", "-", "drug therapy"},
      {"female", "loss of weight", "diabetes", "dietary therapy"},
      {"male", "fever cough headache", "flu", "drink more"},
      {"male", "loss of weight", "diabetes", "-"},
  };
  auto run = [&](bool sigfilter, int width) {
    EngineConfig config = config_;
    config.signature_filter = sigfilter;
    config.sig_width = width;
    TerIdsEngine engine(world_.repo.get(), config, 2, rules_);
    for (size_t i = 0; i < posts.size(); ++i) {
      engine.ProcessArrival(
          Post(static_cast<int64_t>(i), static_cast<int>(i % 2), posts[i]));
    }
    return engine.cumulative_stats();
  };

  const PruneStats off = run(false, 64);
  EXPECT_EQ(off.sig_probes, 0u);
  EXPECT_EQ(off.sig_saturated, 0u);
  EXPECT_EQ(off.sig_rejects, 0u);
  EXPECT_DOUBLE_EQ(off.SigSaturatedPct(), 0.0);
  EXPECT_GT(off.refined, 0u);  // the stream must actually refine something

  const PruneStats w64 = run(true, 64);
  const PruneStats w128 = run(true, 128);
  const PruneStats w256 = run(true, 256);
  EXPECT_GT(w64.sig_probes, 0u);
  EXPECT_EQ(w64.sig_probes, w128.sig_probes);
  EXPECT_EQ(w64.sig_probes, w256.sig_probes);
  EXPECT_GE(w64.sig_saturated, w128.sig_saturated);
  EXPECT_GE(w128.sig_saturated, w256.sig_saturated);
  EXPECT_LE(w64.sig_saturated, w64.sig_probes);
  EXPECT_GE(w64.SigSaturatedPct(), 0.0);
  EXPECT_LE(w64.SigSaturatedPct(), 100.0);
  for (const PruneStats* stats : {&w64, &w128, &w256}) {
    EXPECT_EQ(stats->total_pairs, off.total_pairs);
    EXPECT_EQ(stats->topic_pruned, off.topic_pruned);
    EXPECT_EQ(stats->sim_ub_pruned, off.sim_ub_pruned);
    EXPECT_EQ(stats->prob_ub_pruned, off.prob_ub_pruned);
    EXPECT_EQ(stats->instance_pruned, off.instance_pruned);
    EXPECT_EQ(stats->refined, off.refined);
    EXPECT_EQ(stats->matched, off.matched);
  }
}

TEST_F(EngineBehaviorTest, NoRulesMeansUnimputedButStillRunning) {
  TerIdsEngine engine(world_.repo.get(), config_, 2, /*rules=*/{});
  Record incomplete = Post(1, 0, {"male", "loss of weight", "-", "-"});
  ArrivalOutcome outcome = engine.ProcessArrival(incomplete);
  EXPECT_TRUE(outcome.new_matches.empty());
  // The tuple is in the window as a single empty-attribute instance.
  EXPECT_EQ(engine.window(0).size(), 1u);
}

}  // namespace
}  // namespace terids
