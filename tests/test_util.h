#ifndef TERIDS_TESTS_TEST_UTIL_H_
#define TERIDS_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "pivot/pivot_selector.h"
#include "repo/repository.h"
#include "text/token_dict.h"
#include "text/tokenizer.h"
#include "tuple/record.h"
#include "tuple/schema.h"

namespace terids {
namespace testing_util {

/// Builds a record from raw attribute texts; "-" marks a missing value
/// (the paper's notation).
inline Record MakeRecord(const Schema& schema, TokenDict* dict, int64_t rid,
                         const std::vector<std::string>& texts) {
  Tokenizer tok(dict);
  Record r;
  r.rid = rid;
  r.values.resize(schema.num_attributes());
  for (int x = 0; x < schema.num_attributes(); ++x) {
    if (texts[x] == "-") {
      r.values[x] = AttrValue::Missing();
    } else {
      r.values[x].text = texts[x];
      r.values[x].tokens = tok.Tokenize(texts[x]);
      r.values[x].missing = false;
    }
  }
  return r;
}

/// A self-contained toy world: schema, dictionary, repository with samples
/// and attached pivots. Mirrors the health-community example of the paper's
/// introduction (Table 1).
struct ToyWorld {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<TokenDict> dict;
  std::unique_ptr<Repository> repo;

  Record Make(int64_t rid, const std::vector<std::string>& texts) const {
    return MakeRecord(*schema, dict.get(), rid, texts);
  }
};

inline ToyWorld MakeHealthWorld() {
  ToyWorld world;
  world.schema = std::make_unique<Schema>(std::vector<std::string>{
      "gender", "symptom", "diagnosis", "treatment"});
  world.dict = std::make_unique<TokenDict>();
  world.repo =
      std::make_unique<Repository>(world.schema.get(), world.dict.get());

  const std::vector<std::vector<std::string>> samples = {
      {"male", "loss of weight", "diabetes", "dietary therapy drug therapy"},
      {"male", "loss of weight blurred vision", "diabetes", "drug therapy"},
      {"female", "fever low spirit cough", "pneumonia", "antibiotics rest"},
      {"male", "fever poor appetite cough", "flu", "drink more sleep more"},
      {"female", "red eye itchy shed tears", "conjunctivitis", "eye drop"},
      {"male", "blurred vision", "diabetes", "drug therapy"},
      {"female", "fever cough", "flu", "sleep more"},
      {"male", "loss of weight thirst", "diabetes", "dietary therapy"},
      {"female", "eye itchy red eye", "conjunctivitis", "eye drop rest"},
      {"male", "fever cough headache", "flu", "drink more"},
  };
  for (size_t i = 0; i < samples.size(); ++i) {
    Record r = world.Make(static_cast<int64_t>(1000 + i), samples[i]);
    TERIDS_CHECK(world.repo->AddSample(r).ok());
  }
  PivotOptions popts;
  popts.cnt_max = 2;
  PivotSelector selector(world.repo.get(), popts);
  world.repo->AttachPivots(selector.SelectAll());
  return world;
}

}  // namespace testing_util
}  // namespace terids

#endif  // TERIDS_TESTS_TEST_UTIL_H_
