#ifndef TERIDS_CORE_PIPELINE_H_
#define TERIDS_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "er/match_set.h"
#include "er/pruning.h"
#include "er/topic.h"
#include "eval/cost_breakdown.h"
#include "imputation/imputer.h"
#include "index/dr_index.h"
#include "repo/repository.h"
#include "rules/rule.h"
#include "stream/sliding_window.h"
#include "synopsis/er_grid.h"
#include "tuple/record.h"

namespace terids {

/// What one arrival produced.
struct ArrivalOutcome {
  /// Pairs newly added to the result set ES by this arrival.
  std::vector<MatchPair> new_matches;
  /// Break-up cost of this arrival (Figure 6).
  CostBreakdown cost;
  /// Pair pruning statistics of this arrival (Figure 4).
  PruneStats stats;
};

/// Common interface of the TER-iDS engine and all baselines: an online
/// operator that consumes one stream arrival at a time and continuously
/// maintains the TER-iDS result set ES (Algorithm 1).
class ErPipeline {
 public:
  virtual ~ErPipeline() = default;
  virtual const std::string& name() const = 0;
  virtual ArrivalOutcome ProcessArrival(const Record& r) = 0;
  virtual const MatchSet& results() const = 0;
  virtual const PruneStats& cumulative_stats() const = 0;
};

/// Shared implementation: sliding windows, optional ER-grid, result-set
/// maintenance with eviction cascade, and the refinement loop. Subclasses
/// override the imputation hook (and inherit either the grid-based or
/// linear candidate generation depending on configuration).
class PipelineBase : public ErPipeline {
 public:
  /// `num_streams` windows are created. If `use_grid`, candidates come from
  /// the ER-grid with cell-level pruning; otherwise from a linear window
  /// scan. If `use_prunings`, pairs go through Theorems 4.1-4.4 before
  /// refinement; otherwise the exact probability is always computed (the
  /// unpruned baselines).
  PipelineBase(Repository* repo, EngineConfig config, int num_streams,
               bool use_grid, bool use_prunings, std::string name);

  const std::string& name() const override { return name_; }
  ArrivalOutcome ProcessArrival(const Record& r) override;
  const MatchSet& results() const override { return matches_; }
  const PruneStats& cumulative_stats() const override { return cum_stats_; }

  /// Live tuples of one stream's window (inspection / tests).
  const SlidingWindow& window(int stream_id) const;

 protected:
  /// Imputation hook: candidate distributions for the missing attributes of
  /// `r`. Default delegates to `imputer_` (must be set by the subclass).
  virtual std::vector<ImputedTuple::ImputedAttr> Impute(const Record& r,
                                                        const ProbeCoords& pc,
                                                        CostBreakdown* cost);

  Repository* repo_;
  EngineConfig config_;
  TopicQuery topic_;
  std::vector<SlidingWindow> windows_;
  std::unique_ptr<ErGrid> grid_;
  std::unique_ptr<Imputer> imputer_;
  MatchSet matches_;
  PruneStats cum_stats_;
  bool use_prunings_;
  std::string name_;

 private:
  std::vector<const WindowTuple*> LinearCandidates(const WindowTuple& probe,
                                                   PruneStats* stats) const;
};

/// Constructs one of the six evaluated pipelines. The rule vectors are
/// copied into the pipeline (each pipeline owns its rules). `repo` must
/// outlive the pipeline and have pivots attached.
std::unique_ptr<ErPipeline> MakePipeline(PipelineKind kind, Repository* repo,
                                         const EngineConfig& config,
                                         int num_streams,
                                         const std::vector<CddRule>& cdds,
                                         const std::vector<CddRule>& dds,
                                         const std::vector<CddRule>& editing);

}  // namespace terids

#endif  // TERIDS_CORE_PIPELINE_H_
