#ifndef TERIDS_DATAGEN_GENERATOR_H_
#define TERIDS_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "datagen/profiles.h"
#include "text/token_dict.h"
#include "tuple/record.h"
#include "tuple/schema.h"

namespace terids {

/// A fully generated evaluation dataset: two complete record sources (the
/// paper's "Source A" / "Source B"), a complete repository pool drawn from
/// the same entity universe (the paper's assumption that R "can be
/// collected/inferred by historical stream data"), planted ground truth,
/// and the topic keyword vocabulary.
struct GeneratedDataset {
  std::string name;
  std::unique_ptr<Schema> schema;
  std::unique_ptr<TokenDict> dict;
  std::vector<Record> source_a;      // rids [0, |A|)
  std::vector<Record> source_b;      // rids [|A|, |A|+|B|)
  std::vector<Record> repo_records;  // complete samples for R
  std::vector<GroundTruthPair> ground_truth;
  /// One marker keyword per topic; a query K is a subset of these.
  std::vector<std::string> topic_keywords;
};

/// Deterministic synthetic data generator (see DESIGN.md §4 for the
/// substitution rationale).
///
/// Entity model: `|A|` latent entities, each with a topic and canonical
/// per-attribute token sets (drawn from topic-partitioned vocabularies, with
/// the topic's marker keyword embedded in attribute 0). Records perturb
/// their entity's canonical values token-wise; matched source-B records and
/// repository samples re-perturb the same entity, so duplicates are similar
/// but not identical and rule mining can discover the attribute
/// correlations.
class DataGenerator {
 public:
  struct Options {
    /// Scale factor applied to the profile's paper-reported sizes.
    double scale = 0.2;
    /// Repository size as a fraction eta of the total stream size.
    double repo_ratio = 0.3;
    uint64_t seed = 20210620;
  };

  static GeneratedDataset Generate(const DatasetProfile& profile,
                                   const Options& options);

  /// Returns a copy of `records` where a fraction `xi` of records have `m`
  /// random attributes marked missing (MAR model, Section 6.1). At least
  /// one attribute is always left present.
  static std::vector<Record> WithMissing(const std::vector<Record>& records,
                                         double xi, int m, uint64_t seed);
};

}  // namespace terids

#endif  // TERIDS_DATAGEN_GENERATOR_H_
