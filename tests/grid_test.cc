#include <gtest/gtest.h>

#include <memory>

#include "er/similarity.h"
#include "synopsis/sharded_er_grid.h"
#include "test_util.h"
#include "util/rng.h"

namespace terids {
namespace {

using testing_util::MakeHealthWorld;
using testing_util::ToyWorld;

class ErGridTest : public ::testing::Test {
 protected:
  ErGridTest()
      : world_(MakeHealthWorld()),
        topic_(*world_.dict, {"diabetes"}),
        grid_(world_.repo->num_attributes(), 0.2, /*num_shards=*/1) {}

  std::shared_ptr<WindowTuple> MakeTuple(
      int64_t rid, int stream, const std::vector<std::string>& texts) {
    Record r = world_.Make(rid, texts);
    r.stream_id = stream;
    auto wt = std::make_shared<WindowTuple>();
    wt->tuple = std::make_shared<const ImputedTuple>(
        ImputedTuple::FromComplete(r, world_.repo.get()));
    wt->topic = topic_.Classify(*wt->tuple);
    return wt;
  }

  ToyWorld world_;
  TopicQuery topic_;
  ShardedErGrid grid_;
  std::vector<std::shared_ptr<WindowTuple>> keep_alive_;
};

TEST_F(ErGridTest, InsertRemoveBookkeeping) {
  auto a = MakeTuple(1, 0, {"male", "fever", "flu", "rest"});
  auto b = MakeTuple(2, 1, {"female", "cough", "flu", "rest"});
  grid_.Insert(a.get());
  grid_.Insert(b.get());
  EXPECT_EQ(grid_.num_tuples(), 2u);
  EXPECT_GE(grid_.num_cells(), 1u);
  EXPECT_TRUE(grid_.Remove(a.get()));
  EXPECT_EQ(grid_.num_tuples(), 1u);
  EXPECT_FALSE(grid_.Remove(a.get()));  // Already removed.
  EXPECT_TRUE(grid_.Remove(b.get()));
  EXPECT_EQ(grid_.num_cells(), 0u);
}

TEST_F(ErGridTest, CandidatesExcludeSameStream) {
  auto probe = MakeTuple(1, 0, {"male", "fever", "flu", "rest"});
  auto same = MakeTuple(2, 0, {"male", "fever", "flu", "rest"});
  auto other = MakeTuple(3, 1, {"male", "fever", "flu", "rest"});
  grid_.Insert(same.get());
  grid_.Insert(other.get());
  ShardedErGrid::CandidateResult result =
      grid_.Candidates(*probe, /*gamma=*/2.0, /*topic_constrained=*/false);
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_EQ(result.candidates[0]->rid(), 3);
}

TEST_F(ErGridTest, TopicPruningRemovesNonTopicalPairs) {
  // Neither probe nor member mentions diabetes: pair is prunable, even at a
  // similarity threshold the pair easily clears.
  auto probe = MakeTuple(1, 0, {"male", "fever", "flu", "rest"});
  auto member = MakeTuple(2, 1, {"male", "fever", "flu", "rest"});
  grid_.Insert(member.get());
  ShardedErGrid::CandidateResult result =
      grid_.Candidates(*probe, /*gamma=*/2.0, /*topic_constrained=*/true);
  EXPECT_TRUE(result.candidates.empty());
  EXPECT_EQ(result.topic_pruned, 1u);

  // A topical (diabetic) probe revives the pair — either side may carry the
  // topic (gamma low enough that geometry cannot prune).
  auto diabetic =
      MakeTuple(3, 0, {"male", "blurred vision", "diabetes", "drug therapy"});
  result = grid_.Candidates(*diabetic, /*gamma=*/0.5, true);
  EXPECT_EQ(result.candidates.size(), 1u);
}

/// Soundness: every cross-stream tuple whose exact similarity with the
/// probe exceeds gamma must be returned as a candidate (grid pruning may
/// only discard pairs that provably cannot match).
TEST_F(ErGridTest, CandidatesAreSupersetOfTrueMatches) {
  Rng rng(99);
  const std::vector<std::vector<std::string>> pool = {
      {"male", "loss of weight", "diabetes", "drug therapy"},
      {"female", "fever cough", "flu", "rest"},
      {"male", "blurred vision", "diabetes", "dietary therapy"},
      {"female", "red eye shed tears", "conjunctivitis", "eye drop"},
      {"male", "fever poor appetite", "flu", "drink more"},
      {"male", "loss of weight thirst", "diabetes", "dietary therapy"},
  };
  std::vector<std::shared_ptr<WindowTuple>> members;
  for (int i = 0; i < 40; ++i) {
    auto wt = MakeTuple(100 + i, /*stream=*/1,
                        pool[rng.NextBounded(pool.size())]);
    members.push_back(wt);
    grid_.Insert(wt.get());
  }
  const double gamma = 2.5;
  for (int p = 0; p < 10; ++p) {
    auto probe =
        MakeTuple(1000 + p, 0, pool[rng.NextBounded(pool.size())]);
    ShardedErGrid::CandidateResult result =
        grid_.Candidates(*probe, gamma, /*topic_constrained=*/false);
    for (const auto& member : members) {
      const double sim =
          InstanceSimilarity(*probe->tuple, 0, *member->tuple, 0);
      if (sim > gamma) {
        EXPECT_NE(std::find(result.candidates.begin(),
                            result.candidates.end(), member.get()),
                  result.candidates.end())
            << "grid pruned a pair with sim " << sim;
      }
    }
    // Accounting: candidates + pruned = all cross-stream tuples.
    EXPECT_EQ(result.candidates.size() + result.topic_pruned +
                  result.sim_pruned,
              members.size());
  }
}

TEST_F(ErGridTest, RemovalUpdatesAggregates) {
  auto diabetic =
      MakeTuple(1, 1, {"male", "blurred vision", "diabetes", "drug therapy"});
  auto flu = MakeTuple(2, 1, {"male", "fever", "flu", "rest"});
  grid_.Insert(diabetic.get());
  grid_.Insert(flu.get());
  auto probe = MakeTuple(3, 0, {"female", "cough", "flu", "rest"});
  // Probe is non-topical; only the diabetic member is a viable partner.
  ShardedErGrid::CandidateResult result = grid_.Candidates(*probe, 0.5, true);
  EXPECT_EQ(result.candidates.size(), 1u);

  grid_.Remove(diabetic.get());
  result = grid_.Candidates(*probe, 0.5, true);
  EXPECT_TRUE(result.candidates.empty());
  EXPECT_EQ(result.topic_pruned, 1u);
}

}  // namespace
}  // namespace terids
