// Overload resilience: SLO-timely goodput, sojourn tails, shed rate, and
// post-burst recovery time per overload policy under offered load beyond
// capacity (DESIGN.md §13). Not a paper figure — this tracks the ROADMAP
// item "adversarial arrival patterns and overload behavior" on top of the
// reproduced system.
//
// Methodology: the arrival sources are first reshaped adversarially
// (ArrivalShaper: concept drift + duplicate storms + bounded reordering),
// then capacity C (arrivals/s) is calibrated by replaying them unpaced
// through the identical engine. Each measured run replays the same shaped
// sequence through a PacedStreamDriver whose release schedule has three
// phases: warmup (25% of arrivals at 0.7C), burst (50% at load x 0.7C),
// cooldown (25% at 0.7C), with bursty on/off Markov gaps inside each
// phase. An arrival is timely if it was fully processed (not shed, not
// degraded) within SLO = 25 micro-batch service times of its release;
// goodput is timely completions per wall second. Recovery time is how long
// after the cooldown phase opens the pipeline takes to emit its first
// timely cooldown arrival (-1 = never recovered).
//
// Expected shape: block preserves completeness but its sojourn tail and
// recovery explode under sustained overload (every arrival eventually
// processed, almost none timely); shed_newest holds goodput near the 1x
// level through the burst by refusing work at the door; shed_oldest prefers
// fresh arrivals at the cost of evicting queued ones; degrade admits
// everything with bound-only verdicts, trading verdict completeness
// (deferred pairs) for latency. Wall-clock numbers need real cores; the
// policy ordering is visible even on one.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/arrival_shaper.h"
#include "datagen/profiles.h"
#include "stream/stream_driver.h"
#include "util/stopwatch.h"

namespace {

using namespace terids;
using namespace terids::bench;

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

struct RunResult {
  double goodput = 0.0;        // timely completions / wall second
  double timely_frac = 0.0;    // timely / offered
  double p50_ms = 0.0;         // sojourn percentiles over emitted arrivals
  double p99_ms = 0.0;
  double recovery_seconds = -1.0;
  double wall_seconds = 0.0;
  size_t emitted = 0;
  ShedStats shed;
};

}  // namespace

int main() {
  JsonReporter reporter("overload");
  ExecKnobs knobs = EnvExecKnobs();
  // The overload layer only exists on the async ingest path, and pressure
  // needs real batches: force the async knobs up to a floor (env values
  // above the floor are kept).
  knobs.batch_size = std::max(knobs.batch_size, 8);
  knobs.refine_threads = std::max(knobs.refine_threads, 2);
  knobs.ingest_queue_depth = std::max(knobs.ingest_queue_depth, 2);

  const std::string dataset = "Citations";
  ExperimentParams params = BaseParams(dataset);
  params.batch_size = knobs.batch_size;
  params.refine_threads = knobs.refine_threads;
  params.ingest_queue_depth = knobs.ingest_queue_depth;
  Experiment experiment(ProfileByName(dataset), params);
  PrintHeader("overload",
              "SLO-timely goodput / shed rate / recovery per overload "
              "policy at 1x / 2x / 10x offered load",
              params);

  // Adversarial reshaping of both sources: drift across four phases,
  // duplicate storms, bounded out-of-order delivery. Shaped once, replayed
  // identically by every run (seed-deterministic).
  ArrivalShaper::Options shape;
  shape.seed = params.seed;
  shape.duplicate_p = 0.10;
  shape.reorder_horizon = 16;
  int64_t max_rid = 0;
  for (const Record& r : experiment.incomplete_a()) {
    max_rid = std::max(max_rid, r.rid);
  }
  for (const Record& r : experiment.incomplete_b()) {
    max_rid = std::max(max_rid, r.rid);
  }
  TokenDict* dict = experiment.dataset().dict.get();
  shape.drift_period =
      std::max<int>(1, static_cast<int>(experiment.incomplete_a().size()) / 4);
  std::vector<Record> shaped_a = ArrivalShaper::Shape(
      experiment.incomplete_a(), dict, max_rid + 1, shape);
  shape.seed = params.seed + 1;
  std::vector<Record> shaped_b = ArrivalShaper::Shape(
      experiment.incomplete_b(), dict,
      max_rid + 1 + static_cast<int64_t>(shaped_a.size()), shape);

  const size_t total = shaped_a.size() + shaped_b.size();
  const size_t n =
      std::min(total, static_cast<size_t>(params.max_arrivals));

  auto make_pipeline = [&](OverloadPolicy policy,
                           std::unique_ptr<Repository>* repo) {
    EngineConfig config = experiment.MakeConfig();
    config.batch_size = params.batch_size;
    config.refine_threads = params.refine_threads;
    config.ingest_queue_depth = params.ingest_queue_depth;
    config.overload_policy = policy;
    *repo = experiment.BuildRepository();
    return MakePipeline(PipelineKind::kTerIds, repo->get(), config,
                        /*num_streams=*/2, experiment.cdds(),
                        experiment.dds(), experiment.editing_rules());
  };

  // Capacity calibration: the same engine, same shaped arrivals, unpaced.
  double capacity = 0.0;
  {
    std::unique_ptr<Repository> repo;
    auto pipeline = make_pipeline(OverloadPolicy::kBlock, &repo);
    StreamDriver driver({shaped_a, shaped_b});
    Stopwatch watch;
    const size_t processed = pipeline->ProcessStream(
        &driver, n, static_cast<size_t>(params.batch_size),
        [](ArrivalOutcome&&) {});
    const double wall = watch.ElapsedSeconds();
    capacity = wall > 0 ? static_cast<double>(processed) / wall : 1.0;
  }
  const double base_rate = 0.7 * capacity;
  const double slo_seconds =
      25.0 * static_cast<double>(params.batch_size) / capacity;
  std::printf(
      "\ncapacity %.0f arrivals/s (unpaced), offered base rate %.0f/s, "
      "SLO %.1f ms, %zu arrivals per run\n",
      capacity, base_rate, 1e3 * slo_seconds, n);

  // Three-phase release schedule over n arrivals; bursty gaps inside each
  // phase, each phase normalized to its target mean rate.
  const size_t warm_end = std::max<size_t>(1, n / 4);
  const size_t burst_end = std::min(n, warm_end + n / 2);
  auto make_schedule = [&](double load) {
    ArrivalShaper::Options gap_opts;
    gap_opts.seed = params.seed;
    std::vector<double> gaps = ArrivalShaper::OfferedTimeline(n, gap_opts);
    auto normalize = [&](size_t lo, size_t hi, double rate) {
      double sum = 0.0;
      for (size_t i = lo; i < hi; ++i) sum += gaps[i];
      if (sum <= 0 || hi <= lo) return;
      const double scale =
          static_cast<double>(hi - lo) / (rate * sum);
      for (size_t i = lo; i < hi; ++i) gaps[i] *= scale;
    };
    normalize(0, warm_end, base_rate);
    normalize(warm_end, burst_end, load * base_rate);
    normalize(burst_end, n, base_rate);
    std::vector<double> release(total, 0.0);
    double t = 0.0;
    for (size_t i = 0; i < n; ++i) {
      t += gaps[i];
      release[i] = t;
    }
    for (size_t i = n; i < total; ++i) {
      release[i] = t;  // never consumed (ProcessStream caps at n)
    }
    return release;
  };

  auto run_once = [&](OverloadPolicy policy, double load) {
    std::unique_ptr<Repository> repo;
    auto pipeline = make_pipeline(policy, &repo);
    std::vector<double> release = make_schedule(load);
    const double cooldown_open = release[std::min(burst_end, n - 1)];
    PacedStreamDriver driver({shaped_a, shaped_b}, release);
    RunResult r;
    std::vector<double> sojourns;
    size_t timely = 0;
    driver.Start();
    Stopwatch watch;
    pipeline->ProcessStream(
        &driver, n, static_cast<size_t>(params.batch_size),
        [&](ArrivalOutcome&& outcome) {
          ++r.emitted;
          const double now = driver.SecondsSinceStart();
          // Emission index != timestamp under shedding; the stamped
          // timestamp joins the outcome back to its release slot.
          const size_t ts = static_cast<size_t>(outcome.timestamp);
          const double sojourn = now - driver.release_seconds(ts);
          sojourns.push_back(sojourn);
          const bool is_timely =
              outcome.disposition == ArrivalDisposition::kProcessed &&
              sojourn <= slo_seconds;
          if (is_timely) {
            ++timely;
            if (ts >= burst_end && r.recovery_seconds < 0) {
              r.recovery_seconds = now - cooldown_open;
            }
          }
        });
    r.wall_seconds = watch.ElapsedSeconds();
    r.shed = *pipeline->shed_stats();
    const int64_t offered = std::max<int64_t>(1, r.shed.offered_arrivals);
    r.goodput = r.wall_seconds > 0
                    ? static_cast<double>(timely) / r.wall_seconds
                    : 0.0;
    r.timely_frac =
        static_cast<double>(timely) / static_cast<double>(offered);
    r.p50_ms = 1e3 * Percentile(sojourns, 0.50);
    r.p99_ms = 1e3 * Percentile(sojourns, 0.99);
    return r;
  };

  const std::vector<OverloadPolicy> policies = {
      OverloadPolicy::kBlock, OverloadPolicy::kShedNewest,
      OverloadPolicy::kShedOldest, OverloadPolicy::kDegrade};
  const std::vector<double> loads = {1.0, 2.0, 10.0};

  std::printf("\n%-12s %5s %10s %8s %8s %10s %10s %9s %9s\n", "policy",
              "load", "goodput/s", "timely", "shed", "p50 ms", "p99 ms",
              "recov s", "deferred");
  double shed10_goodput = -1.0, shed1_goodput = -1.0;
  double block10_p99 = 0.0, block1_p99 = 0.0;
  for (OverloadPolicy policy : policies) {
    for (double load : loads) {
      const RunResult r = run_once(policy, load);
      std::printf("%-12s %5.0fx %10.1f %7.1f%% %7.1f%% %10.2f %10.2f "
                  "%9.3f %9lld\n",
                  OverloadPolicyName(policy), load, r.goodput,
                  1e2 * r.timely_frac, 1e2 * r.shed.ShedRate(), r.p50_ms,
                  r.p99_ms, r.recovery_seconds,
                  static_cast<long long>(r.shed.deferred_pairs));
      std::fflush(stdout);
      if (policy == OverloadPolicy::kShedNewest && load == 1.0) {
        shed1_goodput = r.goodput;
      }
      if (policy == OverloadPolicy::kShedNewest && load == 10.0) {
        shed10_goodput = r.goodput;
      }
      if (policy == OverloadPolicy::kBlock && load == 1.0) {
        block1_p99 = r.p99_ms;
      }
      if (policy == OverloadPolicy::kBlock && load == 10.0) {
        block10_p99 = r.p99_ms;
      }
      ExecKnobs row_knobs = knobs;
      row_knobs.overload_policy = policy;
      reporter.AddKnobRow(row_knobs)
          .Str("dataset", dataset)
          .Num("load", load)
          .Num("capacity_arrivals_per_sec", capacity)
          .Num("offered_rate", load * base_rate)
          .Num("slo_ms", 1e3 * slo_seconds)
          .Num("goodput_per_sec", r.goodput)
          .Num("timely_frac", r.timely_frac)
          .Num("sojourn_p50_ms", r.p50_ms)
          .Num("sojourn_p99_ms", r.p99_ms)
          .Num("recovery_seconds", r.recovery_seconds)
          .Num("wall_seconds", r.wall_seconds)
          .Num("emitted", static_cast<double>(r.emitted))
          .Raw("shed", r.shed.ToJson());
    }
  }

  // Advisory acceptance: shed_newest at 10x should hold >= 90% of its own
  // 1x goodput while block's sojourn tail blows up. Advisory because on a
  // loaded 1-core CI host timing is noisy; the JSON artifact carries the
  // raw numbers either way.
  if (shed1_goodput > 0 && shed10_goodput >= 0.9 * shed1_goodput) {
    std::printf(
        "\nPASS (advisory): shed_newest@10x sustains %.0f%% of its 1x "
        "goodput (block p99 %.1fx its 1x level)\n",
        1e2 * shed10_goodput / shed1_goodput,
        block1_p99 > 0 ? block10_p99 / block1_p99 : 0.0);
  } else {
    std::printf(
        "\nWARN (advisory): shed_newest@10x at %.0f%% of its 1x goodput "
        "(timing-sensitive; rerun on an idle multi-core host)\n",
        shed1_goodput > 0 ? 1e2 * shed10_goodput / shed1_goodput : 0.0);
  }
  return 0;
}
