#ifndef TERIDS_STREAM_SLIDING_WINDOW_H_
#define TERIDS_STREAM_SLIDING_WINDOW_H_

#include <deque>
#include <memory>

#include "er/topic.h"
#include "tuple/imputed_tuple.h"

namespace terids {

/// A window-resident tuple: the imputed probabilistic tuple plus its
/// (query-dependent) topic classification, computed once at arrival and
/// reused by the ER-grid and every pruning check.
struct WindowTuple {
  std::shared_ptr<const ImputedTuple> tuple;
  TopicQuery::TupleTopic topic;

  int64_t rid() const { return tuple->rid(); }
  int stream_id() const { return tuple->stream_id(); }
};

/// Count-based sliding window W_t (Definition 2): the w most recent tuples
/// of one stream. Pushing into a full window evicts and returns the oldest
/// tuple so the caller can cascade the eviction (ER-grid, result set).
class SlidingWindow {
 public:
  explicit SlidingWindow(int capacity);

  /// Appends `t`; if the window overflows, the evicted oldest tuple is
  /// returned (nullptr otherwise).
  std::shared_ptr<WindowTuple> Push(std::shared_ptr<WindowTuple> t);

  const std::deque<std::shared_ptr<WindowTuple>>& tuples() const {
    return tuples_;
  }
  size_t size() const { return tuples_.size(); }
  int capacity() const { return capacity_; }

 private:
  int capacity_;
  std::deque<std::shared_ptr<WindowTuple>> tuples_;
};

}  // namespace terids

#endif  // TERIDS_STREAM_SLIDING_WINDOW_H_
