#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/profiles.h"

namespace terids {
namespace {

TEST(ProfilesTest, AllFiveDatasetsExist) {
  std::vector<DatasetProfile> all = AllProfiles();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "Citations");
  EXPECT_EQ(all[4].name, "Songs");
  for (const DatasetProfile& p : all) {
    const size_t d = p.attributes.size();
    EXPECT_EQ(p.min_tokens.size(), d);
    EXPECT_EQ(p.max_tokens.size(), d);
    EXPECT_EQ(p.vocab_size.size(), d);
    EXPECT_EQ(p.topic_core_fraction.size(), d);
    for (size_t x = 0; x < d; ++x) {
      EXPECT_LE(p.min_tokens[x], p.max_tokens[x]);
      EXPECT_GT(p.vocab_size[x], 0);
      EXPECT_GE(p.topic_core_fraction[x], 0.0);
      EXPECT_LE(p.topic_core_fraction[x], 1.0);
    }
  }
}

TEST(ProfilesTest, PaperSizesPreserved) {
  // Table 4 of the paper.
  EXPECT_EQ(CitationsProfile().size_a, 2614);
  EXPECT_EQ(CitationsProfile().size_b, 2294);
  EXPECT_EQ(EBooksProfile().size_b, 14112);
  EXPECT_EQ(SongsProfile().size_a, 1000000);
}

TEST(ProfilesTest, LookupByName) {
  EXPECT_EQ(ProfileByName("Bikes").name, "Bikes");
  EXPECT_EQ(ProfileByName("Anime").size_a, 4000);
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() {
    DataGenerator::Options opts;
    opts.scale = 0.05;
    opts.repo_ratio = 0.3;
    opts.seed = 7;
    ds_ = DataGenerator::Generate(CitationsProfile(), opts);
  }
  GeneratedDataset ds_;
};

TEST_F(GeneratorTest, SizesScale) {
  EXPECT_EQ(ds_.source_a.size(), 131u);  // round(2614 * 0.05)
  EXPECT_EQ(ds_.source_b.size(), 115u);  // round(2294 * 0.05)
  EXPECT_EQ(ds_.repo_records.size(), 74u);  // round(0.3 * 246)
}

TEST_F(GeneratorTest, AllGeneratedRecordsAreComplete) {
  for (const Record& r : ds_.source_a) EXPECT_TRUE(r.IsComplete());
  for (const Record& r : ds_.source_b) EXPECT_TRUE(r.IsComplete());
  for (const Record& r : ds_.repo_records) EXPECT_TRUE(r.IsComplete());
}

TEST_F(GeneratorTest, RidsArePartitionedBySource) {
  for (const Record& r : ds_.source_a) {
    EXPECT_GE(r.rid, 0);
    EXPECT_LT(r.rid, static_cast<int64_t>(ds_.source_a.size()));
  }
  for (const Record& r : ds_.source_b) {
    EXPECT_GE(r.rid, static_cast<int64_t>(ds_.source_a.size()));
  }
}

TEST_F(GeneratorTest, GroundTruthReferencesValidRids) {
  EXPECT_FALSE(ds_.ground_truth.empty());
  const int64_t a_max = static_cast<int64_t>(ds_.source_a.size());
  for (const GroundTruthPair& gt : ds_.ground_truth) {
    EXPECT_GE(gt.rid_a, 0);
    EXPECT_LT(gt.rid_a, a_max);
    EXPECT_GE(gt.rid_b, a_max);
  }
}

TEST_F(GeneratorTest, TopicKeywordsAreInTheDictionary) {
  ASSERT_EQ(static_cast<int>(ds_.topic_keywords.size()),
            CitationsProfile().num_topics);
  for (const std::string& kw : ds_.topic_keywords) {
    EXPECT_NE(ds_.dict->Find(kw), kInvalidToken);
  }
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  DataGenerator::Options opts;
  opts.scale = 0.05;
  opts.repo_ratio = 0.3;
  opts.seed = 7;
  GeneratedDataset again = DataGenerator::Generate(CitationsProfile(), opts);
  ASSERT_EQ(again.source_a.size(), ds_.source_a.size());
  for (size_t i = 0; i < again.source_a.size(); ++i) {
    EXPECT_EQ(again.source_a[i].rid, ds_.source_a[i].rid);
    for (int x = 0; x < again.source_a[i].num_attributes(); ++x) {
      EXPECT_EQ(again.source_a[i].values[x].text,
                ds_.source_a[i].values[x].text);
    }
  }
}

TEST_F(GeneratorTest, WithMissingApproximatesRate) {
  std::vector<Record> injected =
      DataGenerator::WithMissing(ds_.source_a, 0.4, 1, 11);
  ASSERT_EQ(injected.size(), ds_.source_a.size());
  int incomplete = 0;
  for (const Record& r : injected) {
    if (!r.IsComplete()) {
      ++incomplete;
      EXPECT_EQ(r.MissingAttributes().size(), 1u);
    }
  }
  const double rate = static_cast<double>(incomplete) / injected.size();
  EXPECT_NEAR(rate, 0.4, 0.12);
}

TEST_F(GeneratorTest, WithMissingNeverBlanksAllAttributes) {
  std::vector<Record> injected =
      DataGenerator::WithMissing(ds_.source_a, 1.0, 99, 13);
  for (const Record& r : injected) {
    EXPECT_FALSE(r.IsComplete());
    EXPECT_LT(r.MissingAttributes().size(),
              static_cast<size_t>(r.num_attributes()));
  }
}

TEST_F(GeneratorTest, ZeroMissingRateIsNoOp) {
  std::vector<Record> injected =
      DataGenerator::WithMissing(ds_.source_a, 0.0, 2, 13);
  for (const Record& r : injected) {
    EXPECT_TRUE(r.IsComplete());
  }
}

TEST(GeneratorTopicTest, MatchedPairsShareTopicKeyword) {
  DataGenerator::Options opts;
  opts.scale = 0.05;
  opts.seed = 3;
  GeneratedDataset ds = DataGenerator::Generate(AnimeProfile(), opts);
  std::unordered_map<int64_t, const Record*> by_rid;
  for (const Record& r : ds.source_a) by_rid[r.rid] = &r;
  for (const Record& r : ds.source_b) by_rid[r.rid] = &r;
  int checked = 0;
  for (const GroundTruthPair& gt : ds.ground_truth) {
    const Record& a = *by_rid.at(gt.rid_a);
    const Record& b = *by_rid.at(gt.rid_b);
    // Both carry the (unperturbed) topic marker as their first attr token.
    bool share = false;
    for (const std::string& kw : ds.topic_keywords) {
      const Token t = ds.dict->Find(kw);
      if (t != kInvalidToken && a.values[0].tokens.Contains(t) &&
          b.values[0].tokens.Contains(t)) {
        share = true;
      }
    }
    EXPECT_TRUE(share);
    if (++checked > 50) break;
  }
}

}  // namespace
}  // namespace terids
