#ifndef TERIDS_TUPLE_IMPUTED_TUPLE_H_
#define TERIDS_TUPLE_IMPUTED_TUPLE_H_

#include <cstdint>
#include <vector>

#include "repo/repository.h"
#include "text/token_arena.h"
#include "text/token_set.h"
#include "tuple/record.h"
#include "util/interval.h"

namespace terids {

/// The imputed (probabilistic) tuple r^p of an incomplete tuple r
/// (Definition 4): a set of mutually exclusive instances r_{i,m}, each with
/// an existence probability, such that sum of probabilities <= 1.
///
/// Instances are the cross product of the per-missing-attribute candidate
/// distributions produced by an imputer (Section 3). The cross product is
/// capped at `max_instances` highest-probability combinations; the retained
/// probabilities are kept unnormalized, which Definition 4 explicitly
/// permits (sum p <= 1).
///
/// After construction the tuple carries the per-attribute aggregates the
/// ER-grid and the pruning lemmas need: token-set size intervals (Lemma
/// 4.1), pivot-distance intervals and expectations (Lemmas 4.2, 4.3).
class ImputedTuple {
 public:
  /// One candidate value for a missing attribute with its confidence
  /// (Equations 3 and 4).
  struct Candidate {
    ValueId vid = kInvalidValueId;
    double prob = 0.0;
  };

  /// Candidate distribution for one missing attribute.
  struct ImputedAttr {
    int attr = -1;
    std::vector<Candidate> candidates;
  };

  /// One materialized instance: `choices[k]` is the ValueId picked for the
  /// k-th imputed attribute (ordered as in imputed_attrs()).
  struct Instance {
    std::vector<ValueId> choices;
    double prob = 1.0;
  };

  /// Wraps a complete record as a single-instance tuple with probability 1.
  /// `sig_bits` selects the token-signature width of the tuple's arena
  /// (EngineConfig::sig_width; 64 = the PR-5 layout and default).
  static ImputedTuple FromComplete(Record record, const Repository* repo,
                                   int sig_bits = 64);

  /// Builds from an incomplete record plus one candidate distribution per
  /// missing attribute. Attributes of `record` that are missing but have no
  /// distribution in `imputed` stay empty in every instance (imputation
  /// found no candidates), contributing an empty token set.
  static ImputedTuple FromImputation(Record record, const Repository* repo,
                                     std::vector<ImputedAttr> imputed,
                                     int max_instances, int sig_bits = 64);

  const Record& base() const { return base_; }
  int64_t rid() const { return base_.rid; }
  int stream_id() const { return base_.stream_id; }
  int64_t timestamp() const { return base_.timestamp; }
  int num_attributes() const { return base_.num_attributes(); }

  bool IsAttrImputed(int attr) const { return attr_to_imputed_[attr] >= 0; }
  const std::vector<ImputedAttr>& imputed_attrs() const { return imputed_; }

  int num_instances() const { return static_cast<int>(instances_.size()); }
  const Instance& instance(int i) const { return instances_[i]; }
  double instance_prob(int i) const { return instances_[i].prob; }
  /// Sum of instance probabilities (<= 1).
  double total_prob() const { return total_prob_; }

  /// Token set of instance `inst` on `attr`, resolving imputed choices
  /// against the repository domain. Never-imputed missing attributes
  /// resolve to the empty token set.
  const TokenSet& instance_tokens(int inst, int attr) const;

  /// Flat arena view of the same token set: contiguous span + precomputed
  /// hashed-bitmap signature (token_arena().sig_bits() wide, DESIGN.md §9,
  /// §11), the representation the refinement kernels read. Bounds-unchecked
  /// beyond the slot math — callers are the hot path.
  TokenView instance_token_view(int inst, int attr) const {
    return arena_.slot(static_cast<size_t>(inst) *
                           static_cast<size_t>(num_attributes()) +
                       static_cast<size_t>(attr));
  }

  /// Cached union token set T(r) of the base record (all non-missing
  /// attributes), used by the heterogeneous-schema similarity so no union
  /// is re-allocated per pair.
  TokenView union_token_view() const { return arena_.range(union_range_); }

  /// The tuple's flat token storage (diagnostics / benches).
  const TokenArena& token_arena() const { return arena_; }

  // ---- Aggregates (valid once pivots are attached to the repository) ----

  /// [min,max] token-set size across instances on `attr` (|T^-|, |T^+|).
  const Interval& token_size_interval(int attr) const;

  /// [lb,ub] of dist(instance[attr], piv_a[attr]) across instances.
  const Interval& pivot_dist_interval(int attr, int pivot_idx) const;

  /// Number of pivots this tuple has distance aggregates for on `attr`
  /// (the repository's per-attribute pivot count).
  int num_pivot_intervals(int attr) const {
    return static_cast<int>(dist_intervals_[attr].size());
  }

  /// E(X_k) w.r.t. pivot `pivot_idx`, expectation over the *normalized*
  /// instance distribution (required for the Paley-Zygmund bound to stay an
  /// upper bound when the instance set is truncated).
  double expected_pivot_dist(int attr, int pivot_idx) const;

  /// Main-pivot coordinate of one instance on one attribute.
  double instance_coord(int inst, int attr) const {
    return instance_pivot_dist(inst, attr, 0);
  }
  double instance_pivot_dist(int inst, int attr, int pivot_idx) const;

 private:
  ImputedTuple() = default;
  void MaterializeInstances(int max_instances);
  void ComputeAggregates();
  void BuildTokenArena();

  Record base_;
  const Repository* repo_ = nullptr;
  std::vector<ImputedAttr> imputed_;
  std::vector<int> attr_to_imputed_;  // attr -> index into imputed_, or -1.
  std::vector<Instance> instances_;
  double total_prob_ = 0.0;

  std::vector<Interval> size_intervals_;                // [attr]
  std::vector<std::vector<Interval>> dist_intervals_;   // [attr][pivot]
  std::vector<std::vector<double>> expected_dists_;     // [attr][pivot]
  std::vector<std::vector<double>> base_dists_;         // [attr][pivot]

  /// Flat copy of every (instance, attribute) token set plus the record
  /// union, built once at construction. Slot layout: inst * d + attr;
  /// aliased ranges dedupe fixed attributes and repeated imputed values.
  TokenArena arena_;
  uint32_t union_range_ = TokenArena::kInvalidRange;
};

}  // namespace terids

#endif  // TERIDS_TUPLE_IMPUTED_TUPLE_H_
