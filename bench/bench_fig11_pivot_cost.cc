// Figure 11: cost of the cost-model-based pivot selection algorithm,
// (a) vs the repository ratio eta, (b) vs cntMax.

#include <cstdio>

#include "bench_common.h"
#include "datagen/generator.h"
#include "datagen/profiles.h"
#include "pivot/pivot_selector.h"
#include "util/stopwatch.h"

namespace {

std::unique_ptr<terids::Repository> BuildRepo(
    const terids::GeneratedDataset& ds) {
  auto repo = std::make_unique<terids::Repository>(ds.schema.get(),
                                                   ds.dict.get());
  for (const terids::Record& r : ds.repo_records) {
    TERIDS_CHECK(repo->AddSample(r).ok());
  }
  return repo;
}

}  // namespace

int main() {
  using namespace terids;
  using namespace terids::bench;
  ExperimentParams base = BaseParams("Citations");
  JsonReporter reporter("Figure 11");
  PrintHeader("Figure 11", "pivot selection cost (seconds)", base);

  std::printf("\n(a) time vs repository ratio eta (P=10, eMin=1.5)\n");
  std::printf("%-10s", "dataset");
  const double etas[] = {0.1, 0.2, 0.3, 0.4, 0.5};
  for (double eta : etas) std::printf(" eta=%-7.1f", eta);
  std::printf("\n");
  for (const std::string& name : AllDatasets()) {
    std::printf("%-10s", name.c_str());
    for (double eta : etas) {
      ExperimentParams params = BaseParams(name);
      DataGenerator::Options opts;
      opts.scale = params.scale;
      opts.repo_ratio = eta;
      opts.seed = params.seed;
      GeneratedDataset ds = DataGenerator::Generate(ProfileByName(name), opts);
      std::unique_ptr<Repository> repo = BuildRepo(ds);
      Stopwatch watch;
      PivotSelector selector(repo.get(), PivotOptions{});
      std::vector<AttributePivots> pivots = selector.SelectAll();
      const double seconds = watch.ElapsedSeconds();
      std::printf(" %-11.4f", seconds);
      std::fflush(stdout);
      reporter.AddRow()
          .Str("part", "eta")
          .Str("dataset", name)
          .Num("eta", eta)
          .Num("seconds", seconds);
    }
    std::printf("\n");
  }

  std::printf("\n(b) time vs cntMax (P=10, eMin=1.5, default eta)\n");
  std::printf("%-10s", "dataset");
  for (int cnt = 1; cnt <= 5; ++cnt) std::printf(" cntMax=%-4d", cnt);
  std::printf("\n");
  for (const std::string& name : AllDatasets()) {
    ExperimentParams params = BaseParams(name);
    DataGenerator::Options opts;
    opts.scale = params.scale;
    opts.repo_ratio = params.eta;
    opts.seed = params.seed;
    GeneratedDataset ds = DataGenerator::Generate(ProfileByName(name), opts);
    std::unique_ptr<Repository> repo = BuildRepo(ds);
    std::printf("%-10s", name.c_str());
    for (int cnt = 1; cnt <= 5; ++cnt) {
      PivotOptions popts;
      popts.cnt_max = cnt;
      Stopwatch watch;
      PivotSelector selector(repo.get(), popts);
      std::vector<AttributePivots> pivots = selector.SelectAll();
      const double seconds = watch.ElapsedSeconds();
      std::printf(" %-11.4f", seconds);
      std::fflush(stdout);
      reporter.AddRow()
          .Str("part", "cnt_max")
          .Str("dataset", name)
          .Num("cnt_max", cnt)
          .Num("seconds", seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: cost grows with eta (more samples to scan) and with\n"
      "cntMax, flattening once the selected pivots reach eMin = 1.5.\n");
  return 0;
}
