// Runs all six pipelines on one workload and prints an accuracy/efficiency
// comparison table (a miniature of the paper's Figure 5). Arrivals replay
// through the streaming operator, so the execution model (micro-batch
// size, refinement threads, ER-grid shards, async ingest queue depth) is a
// command-line choice; results are identical for every setting — only
// throughput changes.
//
// Usage: example_pipeline_comparison [dataset] [scale] [batch] [threads]
//                                    [shards] [queue]
//   dataset: Citations | Anime | Bikes | EBooks | Songs (default Citations)
//   scale:   dataset size factor (default 0.1)
//   batch:   micro-batch size fed to ProcessBatch (default 1)
//   threads: refinement worker count (default 1)
//   shards:  ER-grid shard count (default 1)
//   queue:   async ingest queue depth (default 0 = synchronous)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "datagen/profiles.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace terids;

  const std::string dataset = argc > 1 ? argv[1] : "Citations";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  const int batch_size = argc > 3 ? std::atoi(argv[3]) : 1;
  const int refine_threads = argc > 4 ? std::atoi(argv[4]) : 1;
  const int grid_shards = argc > 5 ? std::atoi(argv[5]) : 1;
  const int queue_depth = argc > 6 ? std::atoi(argv[6]) : 0;

  ExperimentParams params;
  params.scale = scale;
  params.w = 150;
  params.max_arrivals = 600;
  params.batch_size = batch_size > 0 ? batch_size : 1;
  params.refine_threads = refine_threads > 0 ? refine_threads : 1;
  params.grid_shards = grid_shards > 0 ? grid_shards : 1;
  params.ingest_queue_depth = queue_depth > 0 ? queue_depth : 0;

  Experiment experiment(ProfileByName(dataset), params);
  std::printf(
      "%s (scale %.2f, batch %d, refine threads %d, shards %d, queue %d): "
      "truth pairs in windows = %zu\n",
      dataset.c_str(), scale, params.batch_size, params.refine_threads,
      params.grid_shards, params.ingest_queue_depth,
      experiment.effective_truth().size());
  std::printf("%-10s %12s %10s %10s %10s %10s %9s %9s %9s\n", "pipeline",
              "ms/arrival", "precision", "recall", "F-score", "results",
              "sel(ms)", "imp(ms)", "er(ms)");

  const PipelineKind kinds[] = {
      PipelineKind::kTerIds,     PipelineKind::kIjGer,
      PipelineKind::kCddEr,      PipelineKind::kDdEr,
      PipelineKind::kEditingEr,  PipelineKind::kConstraintEr,
  };
  for (PipelineKind kind : kinds) {
    PipelineRun run = experiment.Run(kind);
    const double n = run.arrivals > 0 ? static_cast<double>(run.arrivals) : 1;
    std::printf(
        "%-10s %12.4f %10.3f %10.3f %10.3f %10zu %9.4f %9.4f %9.4f\n",
        run.name.c_str(), 1e3 * run.avg_arrival_seconds,
        run.accuracy.precision, run.accuracy.recall, run.accuracy.f_score,
        run.accuracy.returned, 1e3 * run.total_cost.cdd_select_seconds / n,
        1e3 * run.total_cost.impute_seconds / n,
        1e3 * run.total_cost.er_seconds / n);
  }
  return 0;
}
