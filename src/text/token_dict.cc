#include "text/token_dict.h"

#include "util/status.h"

namespace terids {

Token TokenDict::Intern(std::string_view text) {
  auto it = ids_.find(std::string(text));
  if (it != ids_.end()) {
    return it->second;
  }
  Token id = static_cast<Token>(texts_.size());
  texts_.emplace_back(text);
  ids_.emplace(texts_.back(), id);
  return id;
}

Token TokenDict::Find(std::string_view text) const {
  auto it = ids_.find(std::string(text));
  return it == ids_.end() ? kInvalidToken : it->second;
}

const std::string& TokenDict::TextOf(Token token) const {
  TERIDS_CHECK(token < texts_.size());
  return texts_[token];
}

}  // namespace terids
