#include "text/token_set.h"

#include <algorithm>

#include "text/similarity_kernels.h"

namespace terids {

const TokenSet kEmptyTokenSet;

TokenSet TokenSet::FromTokens(std::vector<Token> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  TokenSet set;
  set.owned_ = std::move(tokens);
  set.data_ = set.owned_.data();
  set.size_ = set.owned_.size();
  return set;
}

TokenSet TokenSet::View(const Token* data, size_t n) {
  TokenSet set;
  set.data_ = data;
  set.size_ = n;
  set.view_ = true;
  return set;
}

void TokenSet::Assign(const TokenSet& other) {
  owned_ = other.owned_;
  view_ = other.view_;
  if (view_) {
    data_ = other.data_;
    size_ = other.size_;
  } else {
    data_ = owned_.data();
    size_ = owned_.size();
  }
}

void TokenSet::Adopt(TokenSet&& other) {
  owned_ = std::move(other.owned_);
  view_ = other.view_;
  if (view_) {
    data_ = other.data_;
    size_ = other.size_;
  } else {
    data_ = owned_.data();
    size_ = owned_.size();
  }
  other.owned_.clear();
  other.data_ = nullptr;
  other.size_ = 0;
  other.view_ = false;
}

bool TokenSet::Contains(Token t) const {
  return std::binary_search(begin(), end(), t);
}

size_t TokenSet::IntersectionSize(const TokenSet& other) const {
  return IntersectSize(data_, size_, other.data_, other.size_);
}

bool TokenSet::operator==(const TokenSet& other) const {
  return size_ == other.size_ && std::equal(begin(), end(), other.begin());
}

double JaccardSimilarity(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  const size_t inter = a.IntersectionSize(b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardDistance(const TokenSet& a, const TokenSet& b) {
  return 1.0 - JaccardSimilarity(a, b);
}

}  // namespace terids
