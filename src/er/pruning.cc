#include "er/pruning.h"

#include "er/bounds.h"
#include "er/probability.h"
#include "text/similarity_kernels.h"

namespace terids {

PairEvaluation EvaluatePair(const ImputedTuple& a,
                            const TopicQuery::TupleTopic& a_topic,
                            const ImputedTuple& b,
                            const TopicQuery::TupleTopic& b_topic,
                            double gamma, double alpha,
                            bool signature_filter) {
  PairEvaluation eval;

  // Theorem 4.1: no instance of either tuple contains a query keyword.
  if (!a_topic.any && !b_topic.any) {
    eval.outcome = PairOutcome::kTopicPruned;
    return eval;
  }

  // Theorem 4.2 via Lemmas 4.1 and 4.2.
  if (UbSim(a, b) <= gamma) {
    eval.outcome = PairOutcome::kSimUbPruned;
    return eval;
  }

  // Theorem 4.3 via Lemma 4.3.
  if (UbProbPaleyZygmund(a, b, gamma) <= alpha) {
    eval.outcome = PairOutcome::kProbUbPruned;
    return eval;
  }

  // Refinement with Theorem 4.4 early termination.
  SigFilterCounters sig;
  RefineResult refine = RefineProbability(a, a_topic, b, b_topic, gamma,
                                          alpha, signature_filter, &sig);
  eval.sig_probes = sig.probes;
  eval.sig_saturated = sig.saturated;
  eval.sig_rejects = sig.rejects;
  if (refine.early_pruned) {
    eval.outcome = PairOutcome::kInstancePruned;
    return eval;
  }
  if (refine.probability > alpha) {
    eval.outcome = PairOutcome::kMatched;
    eval.probability = refine.probability;
    return eval;
  }
  eval.outcome = PairOutcome::kRefuted;
  return eval;
}

PairEvaluation EvaluatePairBounds(const ImputedTuple& a,
                                  const TopicQuery::TupleTopic& a_topic,
                                  const ImputedTuple& b,
                                  const TopicQuery::TupleTopic& b_topic,
                                  double gamma, double alpha) {
  PairEvaluation eval;

  // The merge-free prefix of EvaluatePair, verbatim: Theorems 4.1-4.3.
  if (!a_topic.any && !b_topic.any) {
    eval.outcome = PairOutcome::kTopicPruned;
    return eval;
  }
  if (UbSim(a, b) <= gamma) {
    eval.outcome = PairOutcome::kSimUbPruned;
    return eval;
  }
  if (UbProbPaleyZygmund(a, b, gamma) <= alpha) {
    eval.outcome = PairOutcome::kProbUbPruned;
    return eval;
  }

  // Single-instance pairs are deterministic, so sim(a, b) is the plain
  // attribute-wise Jaccard sum and the §11 signature bound applies per
  // attribute: if even the summed upper bounds cannot clear gamma, the pair
  // is a sound Theorem 4.2-style kill without touching a token.
  if (a.num_instances() == 1 && b.num_instances() == 1) {
    const int words = a.token_arena().sig_words();
    if (b.token_arena().sig_words() == words) {
      const int d = a.num_attributes();
      double sim_ub = 0.0;
      for (int attr = 0; attr < d; ++attr) {
        const TokenView va = a.instance_token_view(0, attr);
        const TokenView vb = b.instance_token_view(0, attr);
        sim_ub += SigJaccardUpperBound(va.len, va.sig, vb.len, vb.sig, words);
        eval.sig_probes += 1;
      }
      if (sim_ub <= gamma) {
        eval.sig_rejects += 1;
        eval.outcome = PairOutcome::kSimUbPruned;
        return eval;
      }
    }
  }

  eval.outcome = PairOutcome::kDeferred;
  return eval;
}

}  // namespace terids
